// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation (see DESIGN.md for the experiment index):
//
//	BenchmarkFigure4*              heat maps of IF vs EF (Fig. 4a/4b/4c)
//	BenchmarkFigure5*              E[T] vs muI curves (Fig. 5a/5b/5c)
//	BenchmarkFigure6*              E[T] vs k curves (Fig. 6a/6b)
//	BenchmarkTheorem6              the 35/12 vs 33/12 counterexample
//	BenchmarkAnalysisVsSimulation  the "within 1%" validation of Section 5
//	BenchmarkSamplePathDominance   the Theorem 3 coupled-work experiment
//	BenchmarkOptimalityScan        Theorem 5 scan over the threshold family
//	BenchmarkSRPTApproximation     Appendix A batch scheduling ratios
//	BenchmarkIdlingInterchange     Appendix B idling-policy comparison
//	BenchmarkBusyPeriodAblation    3-moment Coxian vs 1-moment exponential
//	BenchmarkOptimalPolicyMDP      open-regime optimal policy vs IF/EF
//	BenchmarkMultiClass            3-class priority orderings (Section 6)
//	BenchmarkTailLatency           inelastic p99 under IF vs EF
//	BenchmarkSimulatorThroughput   engine microbenchmark (events/sec)
//
// Key reproduced values are exported with b.ReportMetric so that
// `go test -bench=. -benchmem` output doubles as the results table.
package repro

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/mdp"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/srpt"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func benchFigure4(b *testing.B, rho float64) {
	grid := exp.DefaultMuGrid()
	var ifWins, efWins int
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure4(context.Background(), 4, rho, grid, exp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ifWins, efWins = 0, 0
		for _, p := range points {
			if p.IFWins {
				ifWins++
			} else {
				efWins++
			}
		}
	}
	b.ReportMetric(float64(ifWins), "IF-cells")
	b.ReportMetric(float64(efWins), "EF-cells")
}

func BenchmarkFigure4aLowLoad(b *testing.B)  { benchFigure4(b, 0.5) }
func BenchmarkFigure4bMedLoad(b *testing.B)  { benchFigure4(b, 0.7) }
func BenchmarkFigure4cHighLoad(b *testing.B) { benchFigure4(b, 0.9) }

func benchFigure5(b *testing.B, rho float64) {
	muIs := exp.DefaultMuGrid()
	var left, right exp.CurvePoint
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure5(context.Background(), 4, rho, muIs, exp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		left, right = points[0], points[len(points)-1]
	}
	// The extreme x-positions of each curve, as read off the paper's plot.
	b.ReportMetric(left.TIF, "ET-IF@muI=0.25")
	b.ReportMetric(left.TEF, "ET-EF@muI=0.25")
	b.ReportMetric(right.TIF, "ET-IF@muI=3.5")
	b.ReportMetric(right.TEF, "ET-EF@muI=3.5")
}

func BenchmarkFigure5aLowLoad(b *testing.B)  { benchFigure5(b, 0.5) }
func BenchmarkFigure5bMedLoad(b *testing.B)  { benchFigure5(b, 0.7) }
func BenchmarkFigure5cHighLoad(b *testing.B) { benchFigure5(b, 0.9) }

func benchFigure6(b *testing.B, muI float64) {
	ks := []int{2, 4, 8, 16}
	var first, last exp.KPoint
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure6(context.Background(), 0.9, muI, 1.0, ks, exp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		first, last = points[0], points[len(points)-1]
	}
	b.ReportMetric(first.TIF, "ET-IF@k=2")
	b.ReportMetric(first.TEF, "ET-EF@k=2")
	b.ReportMetric(last.TIF, "ET-IF@k=16")
	b.ReportMetric(last.TEF, "ET-EF@k=16")
}

func BenchmarkFigure6aSmallMuI(b *testing.B) { benchFigure6(b, 0.25) }
func BenchmarkFigure6bLargeMuI(b *testing.B) { benchFigure6(b, 3.25) }

func BenchmarkTheorem6(b *testing.B) {
	var res core.Theorem6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Theorem6(1.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IFTotal, "IF-total(35/12)")
	b.ReportMetric(res.EFTotal, "EF-total(33/12)")
}

func BenchmarkAnalysisVsSimulation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		// 1M measured jobs per point pushes simulation noise well below
		// the 1% the busy-period approximation is being tested against.
		rows, err := exp.ValidateAnalysis(context.Background(), 4, 0.7, []float64{0.5, 2.0},
			core.SimOptions{Seed: 7, WarmupJobs: 50_000, MaxJobs: 1_000_000}, exp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if e := abs(r.RelErr); e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(100*worst, "worst-rel-err-%")
}

func BenchmarkSamplePathDominance(b *testing.B) {
	model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
	trace := model.Trace(3, 20_000)
	rivals := []sim.Policy{policy.ElasticFirst{}, &policy.FCFS{}, policy.Threshold{Cap: 2}}
	var checked, violations int
	for i := 0; i < b.N; i++ {
		checked, violations = 0, 0
		for _, rival := range rivals {
			rep := sim.CompareWork(model.K, trace, policy.InelasticFirst{}, rival, 1e-7)
			checked += rep.Checked
			violations += len(rep.Violations)
		}
	}
	b.ReportMetric(float64(checked), "checks")
	b.ReportMetric(float64(violations), "violations")
}

func BenchmarkOptimalityScan(b *testing.B) {
	// Theorem 5 on exact chains: IF vs the whole threshold family at
	// muI = 1.5 >= muE = 1.
	s := core.ForLoad(4, 0.7, 1.5, 1.0)
	var ifT, bestRival float64
	for i := 0; i < b.N; i++ {
		perf, err := s.SolveExact(ctmc.IFAlloc, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
		ifT = perf.MeanT
		bestRival = 1e18
		for cap := 0; cap < 4; cap++ {
			p, err := s.SolveExact(ctmc.ThresholdAlloc(cap), 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			if p.MeanT < bestRival {
				bestRival = p.MeanT
			}
		}
	}
	b.ReportMetric(ifT, "ET-IF")
	b.ReportMetric(bestRival, "ET-best-rival")
}

func BenchmarkSRPTApproximation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows := core.SRPTExperiment(100, 5)
		worst = 0
		for _, r := range rows {
			if r.WorstRatio > worst {
				worst = r.WorstRatio
			}
		}
	}
	b.ReportMetric(worst, "worst-ratio(bound=4)")
}

func BenchmarkIdlingInterchange(b *testing.B) {
	// Appendix B: the idling DeferElastic policy vs its non-idling
	// interchange (IF), at low load where the idling policy is stable.
	model := workload.ModelForLoad(2, 0.5, 1.0, 1.0)
	var ifT, deferT float64
	for i := 0; i < b.N; i++ {
		ifRes := sim.Run(sim.RunConfig{
			K: model.K, Policy: policy.InelasticFirst{}, Source: model.Source(3),
			WarmupJobs: 10_000, MaxJobs: 150_000,
		})
		deferRes := sim.Run(sim.RunConfig{
			K: model.K, Policy: policy.DeferElastic{}, Source: model.Source(3),
			WarmupJobs: 10_000, MaxJobs: 150_000,
		})
		ifT, deferT = ifRes.MeanT, deferRes.MeanT
	}
	b.ReportMetric(ifT, "ET-IF")
	b.ReportMetric(deferT, "ET-idling")
}

func BenchmarkBusyPeriodAblation(b *testing.B) {
	var errCox, errExp float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.BusyPeriodAblation(context.Background(), 4, 0.8, []float64{1.0}, exp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		errCox, errExp = 0, 0
		for _, r := range rows {
			if e := abs(r.ErrCox); e > errCox {
				errCox = e
			}
			if e := abs(r.ErrExp); e > errExp {
				errExp = e
			}
		}
	}
	b.ReportMetric(100*errCox, "coxian3-err-%")
	b.ReportMetric(100*errExp, "exp1-err-%")
}

func BenchmarkTailLatency(b *testing.B) {
	// Beyond the paper's mean-response objective: the response-time tail
	// of the small class under each policy (reservoir percentiles). IF
	// keeps the inelastic p99 near its service floor; EF pushes it out by
	// an order of magnitude.
	model := workload.ModelForLoad(4, 0.8, 2.0, 1.0)
	var ifP99, efP99 float64
	for i := 0; i < b.N; i++ {
		recIF := sim.NewResponseRecorder(50_000, 3)
		sim.RunWithRecorder(sim.RunConfig{
			K: model.K, Policy: policy.InelasticFirst{}, Source: model.Source(3),
			WarmupJobs: 20_000, MaxJobs: 200_000,
		}, recIF)
		recEF := sim.NewResponseRecorder(50_000, 3)
		sim.RunWithRecorder(sim.RunConfig{
			K: model.K, Policy: policy.ElasticFirst{}, Source: model.Source(3),
			WarmupJobs: 20_000, MaxJobs: 200_000,
		}, recEF)
		ifP99 = recIF.Quantile(sim.Inelastic, 0.99)
		efP99 = recEF.Quantile(sim.Inelastic, 0.99)
	}
	b.ReportMetric(ifP99, "p99-inelastic-IF")
	b.ReportMetric(efP99, "p99-inelastic-EF")
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	model := workload.ModelForLoad(4, 0.8, 1.0, 1.0)
	src := model.Source(1)
	sys := sim.NewSystem(model.K, policy.InelasticFirst{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := src.Next()
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
	}
	b.ReportMetric(float64(sys.Metrics().TotalCompletions())/b.Elapsed().Seconds(), "completions/sec")
}

func BenchmarkSRPTKSchedule(b *testing.B) {
	batch := workload.RandomBatch(xrand.New(9), 256, dist.NewExponential(1), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srpt.SRPTK(batch, 8)
	}
}

func BenchmarkOptimalPolicyMDP(b *testing.B) {
	// The open-regime experiment: the numerically optimal policy vs the
	// two headline policies at muI < muE (extends Theorem 6's message).
	s := core.ForLoad(4, 0.8, 0.4, 1.0)
	m := s.Model2D()
	var optT, ifT, efT float64
	for i := 0; i < b.N; i++ {
		opt, err := mdp.Solve(mdp.Config{Model: m, CapI: 80, CapE: 80, Tol: 1e-10})
		if err != nil {
			b.Fatal(err)
		}
		ifPerf, err := ctmc.SolvePolicy(m, ctmc.IFAlloc, 80, 80)
		if err != nil {
			b.Fatal(err)
		}
		efPerf, err := ctmc.SolvePolicy(m, ctmc.EFAlloc, 80, 80)
		if err != nil {
			b.Fatal(err)
		}
		optT, ifT, efT = opt.MeanT, ifPerf.MeanT, efPerf.MeanT
	}
	b.ReportMetric(optT, "ET-optimal")
	b.ReportMetric(ifT, "ET-IF")
	b.ReportMetric(efT, "ET-EF")
}

func BenchmarkMultiClass(b *testing.B) {
	// Three classes with caps {1, 4, inf} on the unified engine:
	// least-flexible-first vs the reverse ordering (Section 6 direction).
	mix := workload.Mix{Name: "bench3", Classes: []sim.ClassSpec{
		{Name: "rigid", Speedup: sim.CappedSpeedup(1), Lambda: 4.0, Size: dist.NewExponential(4)},
		{Name: "partial", Speedup: sim.CappedSpeedup(4), Lambda: 1.6, Size: dist.NewExponential(1)},
		{Name: "elastic", Speedup: sim.LinearSpeedup(), Lambda: 0.6, Size: dist.NewExponential(0.25)},
	}}
	runOrder := func(order []int) float64 {
		res := sim.Run(sim.RunConfig{
			K: 8, Policy: policy.ClassPriority{Order: order},
			Source: mix.Source(9), Classes: mix.Classes,
			WarmupJobs: 10_000, MaxJobs: 120_000,
		})
		return res.MeanT
	}
	var lff, rev float64
	for i := 0; i < b.N; i++ {
		lff = runOrder([]int{0, 1, 2})
		rev = runOrder([]int{2, 1, 0})
	}
	b.ReportMetric(lff, "ET-least-flexible-first")
	b.ReportMetric(rev, "ET-most-flexible-first")
}

func BenchmarkPartialElasticity(b *testing.B) {
	// Section 6 partial elasticity end to end: the four-class Amdahl mix
	// under LFF vs EQUI on the unified engine.
	mix := workload.PartialElasticity(8, 0.7)
	var lff, equi float64
	for i := 0; i < b.N; i++ {
		lffRes := sim.Run(sim.RunConfig{
			K: 8, Policy: &policy.LeastFlexibleFirst{}, Source: mix.Source(9),
			Classes: mix.Classes, WarmupJobs: 10_000, MaxJobs: 120_000,
		})
		equiRes := sim.Run(sim.RunConfig{
			K: 8, Policy: policy.Equi{}, Source: mix.Source(9),
			Classes: mix.Classes, WarmupJobs: 10_000, MaxJobs: 120_000,
		})
		lff, equi = lffRes.MeanT, equiRes.MeanT
	}
	b.ReportMetric(lff, "ET-LFF")
	b.ReportMetric(equi, "ET-EQUI")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
