#!/usr/bin/env bash
# Engine benchmark harness: runs the hot-path benchmarks (two-class and
# multi-class stepping plus the end-to-end simulator throughput) and emits
# BENCH_engine.json with ns/op, B/op, allocs/op and completions/sec for
# each, so perf PRs can diff engine numbers mechanically.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_engine.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench Engine/Throughput (-benchtime $BENCHTIME)"
go test ./internal/sim -run '^$' -bench 'BenchmarkEngineEvent' \
  -benchmem -benchtime "$BENCHTIME" | tee -a "$RAW"
go test . -run '^$' -bench 'BenchmarkSimulatorThroughput' \
  -benchmem -benchtime "$BENCHTIME" | tee -a "$RAW"

awk -v out="$OUT" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; bop = ""; allocs = ""; cps = ""
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op") nsop = $i
      if ($(i+1) == "B/op") bop = $i
      if ($(i+1) == "allocs/op") allocs = $i
      if ($(i+1) == "completions/sec") cps = $i
    }
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"completions_per_sec\": %s}",
      name, nsop == "" ? "null" : nsop, bop == "" ? "null" : bop,
      allocs == "" ? "null" : allocs, cps == "" ? "null" : cps)
  }
  END {
    print "[" > out
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "") >> out
    print "]" >> out
  }
' "$RAW"

echo "wrote $OUT"
cat "$OUT"
