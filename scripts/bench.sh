#!/usr/bin/env bash
# Engine benchmark harness: runs the hot-path benchmarks (two-class and
# multi-class stepping, the rebuild-vs-incremental occupancy scaling at
# n in {10, 100, 1k, 10k}, the end-to-end simulator throughput, and the
# internal/serve loopback serving path — cache-hit and coalesced req/sec) and
# APPENDS one dated entry to BENCH_engine.json via cmd/benchlog, so the
# perf trajectory across PRs is preserved (a legacy single-snapshot file is
# migrated into the history's first entry automatically).
#
# Each benchmark runs BENCH_COUNT times (default 3) and benchlog records the
# fastest sample, so the history entries — the baselines `benchlog -check`
# gates CI against — carry as little scheduler noise as possible. On a noisy
# shared box, raise BENCH_COUNT (e.g. BENCH_COUNT=7) for a tighter floor.
#
# Usage: scripts/bench.sh [benchtime]            (default 1s)
#        scripts/bench.sh profile [benchtime]    (profile mode)
#
# Profile mode appends nothing: it reruns the occupancy-scaling hot path
# (the incremental-engine legs of BenchmarkEngineEventN10k — the constant
# being attacked; the rebuild legs are O(n)/O(n^2) by design and would
# drown the profile) under the CPU, allocation and mutex profilers and
# drops flamegraph-ready BENCH_cpu.prof / BENCH_mem.prof / BENCH_mutex.prof
# (plus the test binary BENCH_bench.test for symbolizing) next to
# BENCH_engine.json. Inspect with e.g.
#   go tool pprof -http=: BENCH_bench.test BENCH_cpu.prof
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="BENCH_engine.json"

if [ "${1:-}" = "profile" ]; then
  BENCHTIME="${2:-1s}"
  echo "==> profiling BenchmarkEngineEventN10k/incremental* (-benchtime $BENCHTIME)"
  go test ./internal/sim -run '^$' -bench 'BenchmarkEngineEventN10k/incremental' \
    -benchtime "$BENCHTIME" -o BENCH_bench.test \
    -cpuprofile BENCH_cpu.prof -memprofile BENCH_mem.prof -mutexprofile BENCH_mutex.prof
  # Smoke: the profiles must load and be non-trivial, or the wiring rotted.
  go tool pprof -top -nodecount=5 BENCH_bench.test BENCH_cpu.prof
  for p in BENCH_cpu.prof BENCH_mem.prof BENCH_mutex.prof; do
    [ -s "$p" ] || { echo "FAIL: $p missing or empty" >&2; exit 1; }
  done
  echo "profiles written: BENCH_cpu.prof BENCH_mem.prof BENCH_mutex.prof (binary: BENCH_bench.test)"
  exit 0
fi

BENCHTIME="${1:-1s}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench Engine/Throughput (-benchtime $BENCHTIME, best of $BENCH_COUNT)"
# -timeout 0 everywhere: the runs are bounded by benchtime x count, and a
# raised BENCH_COUNT must not trip go test's default 10m package timeout.
go test ./internal/sim -run '^$' -bench 'BenchmarkEngineEvent' -timeout 0 \
  -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" | tee -a "$RAW"
go test . -run '^$' -bench 'BenchmarkSimulatorThroughput' -timeout 0 \
  -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" | tee -a "$RAW"

echo "==> go test -bench BenchmarkServe (-benchtime $BENCHTIME, best of $BENCH_COUNT)"
# Loopback HTTP serving over real sockets; benchlog records the reported
# requests/sec metric as the requests_per_sec column and gates it in CI.
go test ./internal/serve -run '^$' -bench 'BenchmarkServe' -timeout 0 \
  -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" | tee -a "$RAW"

NOTE="$(git rev-parse --short HEAD 2>/dev/null || echo unversioned) benchtime=$BENCHTIME"
go run ./cmd/benchlog -file "$OUT" -date "$(date -u +%Y-%m-%d)" -note "$NOTE" < "$RAW"
