#!/usr/bin/env bash
# Engine benchmark harness: runs the hot-path benchmarks (two-class and
# multi-class stepping, the rebuild-vs-incremental occupancy scaling at
# n in {10, 100, 1k, 10k}, and the end-to-end simulator throughput) and
# APPENDS one dated entry to BENCH_engine.json via cmd/benchlog, so the
# perf trajectory across PRs is preserved (a legacy single-snapshot file is
# migrated into the history's first entry automatically).
#
# Each benchmark runs 3 times and benchlog records the fastest sample
# (best-of-3), so the history entries — the baselines `benchlog -check`
# gates CI against — carry as little scheduler noise as possible.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT="BENCH_engine.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench Engine/Throughput (-benchtime $BENCHTIME, best of 3)"
go test ./internal/sim -run '^$' -bench 'BenchmarkEngineEvent' \
  -benchmem -benchtime "$BENCHTIME" -count 3 | tee -a "$RAW"
go test . -run '^$' -bench 'BenchmarkSimulatorThroughput' \
  -benchmem -benchtime "$BENCHTIME" -count 3 | tee -a "$RAW"

NOTE="$(git rev-parse --short HEAD 2>/dev/null || echo unversioned) benchtime=$BENCHTIME"
go run ./cmd/benchlog -file "$OUT" -date "$(date -u +%Y-%m-%d)" -note "$NOTE" < "$RAW"
