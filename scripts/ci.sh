#!/usr/bin/env bash
# Tier-1 CI gate: build, vet, race-enabled tests, the exp worker-pool
# stress test, a short-budget fuzz pass over the distribution fitters, and
# a package-documentation check. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> package-comment gate (go doc must be useful for every internal package)"
missing=0
for d in internal/*/; do
  pkg=$(basename "$d")
  if ! grep -q "^// Package $pkg" "$d"*.go; then
    echo "FAIL: package $pkg lacks a '// Package $pkg ...' doc comment" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  exit 1
fi

echo "==> unified-engine gate (internal/mcsim must stay deleted)"
if [ -d internal/mcsim ]; then
  echo "FAIL: internal/mcsim reappeared; the unified N-class engine in internal/sim replaced it" >&2
  exit 1
fi
if grep -rn --include='*.go' '"repro/internal/mcsim"' . ; then
  echo "FAIL: an import of repro/internal/mcsim reappeared (use internal/sim's N-class engine)" >&2
  exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> cross-engine equivalence gate (two-class preset bit-identical to the frozen pre-unification engine)"
go test ./internal/sim -run 'TestGolden' -count=1
go test ./internal/exp -run 'TestGoldenFigure' -count=1

echo "==> stepping-engine equivalence gate (rebuild vs incremental: identical completion sequences, stats to 1e-9, incremental goldens bit-frozen)"
go test ./internal/sim -run 'TestEngineEquivalenceMatrix|TestGoldenIncremental' -count=1
go test ./internal/exp -run 'TestEngineSweepEquivalence|TestTailQuantiles' -count=1

echo "==> allocation-regression gate (steady-state stepping <= 1 alloc/event)"
go test ./internal/sim -run 'TestSteadyStateAllocs' -count=1

echo "==> exp worker-pool race stress"
go test -race -run 'TestWorkerPoolStressRace' -count=2 ./internal/exp

echo "==> dispatch-backend equivalence gate (PoolBackend vs ProcBackend bit-identical)"
go test ./internal/exp -run 'TestKeyAndRepSeedPinned|TestProcBackend|TestGoldenFigureCellsProcBackend' -count=1
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/simulate" ./cmd/simulate
sweep_flags="-k 2 -rho 0.5,0.7 -muI 1,2 -muE 1 -policy IF,EF -reps 2 -warmup 200 -jobs 2000 -tail"
"$tmp/simulate" $sweep_flags -backend pool -json "$tmp/pool.json" >/dev/null
"$tmp/simulate" $sweep_flags -backend proc -procs 2 -json "$tmp/proc.json" >/dev/null
if ! cmp "$tmp/pool.json" "$tmp/proc.json"; then
  echo "FAIL: ResultSets differ between -backend pool and -backend proc" >&2
  exit 1
fi
echo "    pool and proc ResultSets byte-identical ($(wc -c < "$tmp/pool.json") bytes)"

echo "==> incremental-engine CLI smoke (simulate -engine incremental, -quantiles)"
"$tmp/simulate" $sweep_flags -engine incremental -quantiles 0.5,0.95,0.999 >/dev/null
# The incremental engine must also be bit-stable across backends: the same
# incremental sweep through pool and proc workers must agree byte for byte.
"$tmp/simulate" $sweep_flags -engine incremental -json "$tmp/pool_inc.json" >/dev/null
"$tmp/simulate" $sweep_flags -engine incremental -backend proc -procs 2 -json "$tmp/proc_inc.json" >/dev/null
if ! cmp "$tmp/pool_inc.json" "$tmp/proc_inc.json"; then
  echo "FAIL: incremental-engine ResultSets differ between -backend pool and -backend proc" >&2
  exit 1
fi
echo "    incremental pool and proc ResultSets byte-identical ($(wc -c < "$tmp/pool_inc.json") bytes)"

echo "==> go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist"
go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist

echo "==> sparse-vs-dense fuzz gate (EQUI class shares, SRPT indexed heap)"
go test -fuzz=FuzzSparseShareSet -fuzztime=10s ./internal/sim

echo "==> benchmark perf gate (ns/op vs BENCH_engine.json; BENCH_GATE=0 skips)"
if [ "${BENCH_GATE:-1}" != "0" ]; then
  # Best-of-3 per benchmark (benchlog keeps the fastest sample) against the
  # newest recorded entry; >10% ns/op slowdown on any pinned benchmark fails.
  go test ./internal/sim -run '^$' -bench 'BenchmarkEngineEvent' \
    -benchmem -benchtime 1s -count 3 | tee "$tmp/bench.txt"
  go run ./cmd/benchlog -check -file BENCH_engine.json < "$tmp/bench.txt"
  # The structure-specific fast paths must beat the rebuild engine >= 10x at
  # n = 10k and run allocation-free in steady state.
  awk '
    /^BenchmarkEngineEventN10k\// {
      name = $1; sub(/^BenchmarkEngineEventN10k\//, "", name); sub(/-[0-9]+$/, "", name)
      if (!(name in ns) || $3 + 0 < ns[name]) ns[name] = $3 + 0
      for (i = 1; i <= NF; i++) if ($i == "allocs/op" && $(i-1) + 0 > alloc[name]) alloc[name] = $(i-1) + 0
    }
    END {
      fail = 0
      split("EQUI SRPT", pols, " ")
      for (p in pols) {
        pol = pols[p]
        reb = ns["rebuild-" pol]; inc = ns["incremental-" pol]
        if (reb == 0 || inc == 0) { printf "FAIL: missing N10k benchmarks for %s\n", pol; fail = 1; continue }
        if (reb / inc < 10) { printf "FAIL: incremental %s only %.1fx faster than rebuild at n=10k (want >= 10x)\n", pol, reb / inc; fail = 1 }
        else printf "    incremental %s: %.0fx faster than rebuild at n=10k\n", pol, reb / inc
        if (alloc["incremental-" pol] != 0) { printf "FAIL: incremental %s allocates %d allocs/op in steady state (want 0)\n", pol, alloc["incremental-" pol]; fail = 1 }
      }
      exit fail
    }' "$tmp/bench.txt"
else
  echo "    skipped (BENCH_GATE=0)"
fi

echo "CI green."
