#!/usr/bin/env bash
# Tier-1 CI gate: build, vet, race-enabled tests, the exp worker-pool
# stress test, a short-budget fuzz pass over the distribution fitters, and
# a package-documentation check. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> package-comment gate (go doc must be useful for every internal package)"
missing=0
for d in internal/*/; do
  pkg=$(basename "$d")
  if ! grep -q "^// Package $pkg" "$d"*.go; then
    echo "FAIL: package $pkg lacks a '// Package $pkg ...' doc comment" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  exit 1
fi

echo "==> unified-engine gate (internal/mcsim must stay deleted)"
if [ -d internal/mcsim ]; then
  echo "FAIL: internal/mcsim reappeared; the unified N-class engine in internal/sim replaced it" >&2
  exit 1
fi
if grep -rn --include='*.go' '"repro/internal/mcsim"' . ; then
  echo "FAIL: an import of repro/internal/mcsim reappeared (use internal/sim's N-class engine)" >&2
  exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> cross-engine equivalence gate (two-class preset bit-identical to the frozen pre-unification engine)"
go test ./internal/sim -run 'TestGolden' -count=1
go test ./internal/exp -run 'TestGoldenFigure' -count=1

echo "==> stepping-engine equivalence gate (rebuild vs incremental on arena job storage: identical completion sequences, stats to 1e-9, incremental goldens bit-frozen)"
go test ./internal/sim -run 'TestEngineEquivalenceMatrix|TestGoldenIncremental' -count=1
go test ./internal/exp -run 'TestEngineSweepEquivalence|TestTailQuantiles' -count=1

echo "==> allocation-regression gate (steady-state stepping <= 1 alloc/event; arena path bounded at n in {100, 10k})"
go test ./internal/sim -run 'TestSteadyStateAllocs|TestSteadyStateBytes' -count=1

echo "==> arena recycle gate (recycled job slots never alias a live handle in any hot structure)"
go test ./internal/sim -run 'TestArena' -count=1

echo "==> exp worker-pool race stress"
go test -race -run 'TestWorkerPoolStressRace' -count=2 ./internal/exp

echo "==> dispatch-backend equivalence gate (PoolBackend vs ProcBackend bit-identical)"
go test ./internal/exp -run 'TestKeyAndRepSeedPinned|TestProcBackend|TestGoldenFigureCellsProcBackend' -count=1
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/simulate" ./cmd/simulate
sweep_flags="-k 2 -rho 0.5,0.7 -muI 1,2 -muE 1 -policy IF,EF -reps 2 -warmup 200 -jobs 2000 -tail"
"$tmp/simulate" $sweep_flags -backend pool -json "$tmp/pool.json" >/dev/null
"$tmp/simulate" $sweep_flags -backend proc -procs 2 -json "$tmp/proc.json" >/dev/null
if ! cmp "$tmp/pool.json" "$tmp/proc.json"; then
  echo "FAIL: ResultSets differ between -backend pool and -backend proc" >&2
  exit 1
fi
echo "    pool and proc ResultSets byte-identical ($(wc -c < "$tmp/pool.json") bytes)"

echo "==> incremental-engine CLI smoke (simulate -engine incremental, -quantiles)"
"$tmp/simulate" $sweep_flags -engine incremental -quantiles 0.5,0.95,0.999 >/dev/null
# The incremental engine must also be bit-stable across backends: the same
# incremental sweep through pool and proc workers must agree byte for byte.
"$tmp/simulate" $sweep_flags -engine incremental -json "$tmp/pool_inc.json" >/dev/null
"$tmp/simulate" $sweep_flags -engine incremental -backend proc -procs 2 -json "$tmp/proc_inc.json" >/dev/null
if ! cmp "$tmp/pool_inc.json" "$tmp/proc_inc.json"; then
  echo "FAIL: incremental-engine ResultSets differ between -backend pool and -backend proc" >&2
  exit 1
fi
echo "    incremental pool and proc ResultSets byte-identical ($(wc -c < "$tmp/pool_inc.json") bytes)"

echo "==> networked fabric gate (fabricd dispatcher + 2 worker daemons on loopback)"
go build -o "$tmp/fabricd" ./cmd/fabricd
go build -o "$tmp/psq" ./cmd/psq
"$tmp/fabricd" -role dispatcher -listen 127.0.0.1:0 -addr-file "$tmp/fabric.addr" \
  >"$tmp/fabricd.log" 2>&1 &
disp_pid=$!
for _ in $(seq 1 100); do [ -s "$tmp/fabric.addr" ] && break; sleep 0.1; done
if [ ! -s "$tmp/fabric.addr" ]; then
  echo "FAIL: fabricd dispatcher did not publish its address" >&2
  cat "$tmp/fabricd.log" >&2
  exit 1
fi
addr="$(cat "$tmp/fabric.addr")"
"$tmp/fabricd" -role worker -dispatcher "$addr" -slots 2 >"$tmp/worker1.log" 2>&1 &
w1_pid=$!
"$tmp/fabricd" -role worker -dispatcher "$addr" -slots 2 >"$tmp/worker2.log" 2>&1 &
w2_pid=$!
trap 'kill -9 "$disp_pid" "$w1_pid" "$w2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
# The same sweep through the fabric must be byte-identical to the pool run
# recorded by the dispatch-backend gate above.
"$tmp/simulate" $sweep_flags -backend fabric -dispatcher "$addr" -json "$tmp/fabric.json" >/dev/null
if ! cmp "$tmp/pool.json" "$tmp/fabric.json"; then
  echo "FAIL: ResultSets differ between -backend pool and -backend fabric" >&2
  exit 1
fi
echo "    pool and fabric ResultSets byte-identical ($(wc -c < "$tmp/fabric.json") bytes)"
# Fault injection, the honest way: SIGKILL one worker daemon while a longer
# sweep is in flight. The dispatcher re-queues whatever it held; the sweep
# must complete on the survivor, still byte-identical to the pool.
kill_flags="-k 2 -rho 0.7 -muI 1,2 -muE 1 -policy IF,EF -reps 2 -warmup 200 -jobs 150000"
"$tmp/simulate" $kill_flags -backend pool -json "$tmp/pool_kill.json" >/dev/null
( sleep 0.3; kill -9 "$w1_pid" 2>/dev/null || true ) &
"$tmp/simulate" $kill_flags -backend fabric -dispatcher "$addr" -json "$tmp/fabric_kill.json" >/dev/null
wait %% 2>/dev/null || true
if ! cmp "$tmp/pool_kill.json" "$tmp/fabric_kill.json"; then
  echo "FAIL: sweep through a SIGKILLed worker differs from the pool" >&2
  cat "$tmp/fabricd.log" >&2
  exit 1
fi
echo "    sweep survived SIGKILL of a worker daemon, byte-identical ($(wc -c < "$tmp/fabric_kill.json") bytes)"
# psq smoke: the finished jobs are visible, canceling a bogus id fails.
"$tmp/psq" -dispatcher "$addr" list | tee "$tmp/psq.out"
grep -q "done" "$tmp/psq.out" || { echo "FAIL: psq list shows no finished jobs" >&2; exit 1; }
if "$tmp/psq" -dispatcher "$addr" cancel no-such-job >/dev/null 2>&1; then
  echo "FAIL: psq cancel of an unknown job succeeded" >&2
  exit 1
fi
kill "$disp_pid" "$w2_pid" 2>/dev/null || true

echo "==> journal-replay unit gate (torn tails, crash points, replay, drain, deadlines, in-process failover)"
go test ./internal/fabric -run 'TestJournal|TestRestoreRecords|TestDispatcherJournal|TestDispatcherDrain|TestFabricDispatcherCrashFailover|TestFabricWorkerDrain|TestFabricTaskDeadline' -count=1

echo "==> dispatcher-crash gate (SIGKILL the real dispatcher mid-sweep; a restart on the same journal and address resumes; byte-identical)"
"$tmp/fabricd" -role dispatcher -listen 127.0.0.1:0 -addr-file "$tmp/crash.addr" \
  -journal "$tmp/jobs.jsonl" >"$tmp/crash_disp1.log" 2>&1 &
cdisp_pid=$!
for _ in $(seq 1 100); do [ -s "$tmp/crash.addr" ] && break; sleep 0.1; done
if [ ! -s "$tmp/crash.addr" ]; then
  echo "FAIL: crash-gate fabricd dispatcher did not publish its address" >&2
  cat "$tmp/crash_disp1.log" >&2
  exit 1
fi
caddr="$(cat "$tmp/crash.addr")"
"$tmp/fabricd" -role worker -dispatcher "$caddr" -slots 2 >"$tmp/crash_worker1.log" 2>&1 &
cw1_pid=$!
"$tmp/fabricd" -role worker -dispatcher "$caddr" -slots 2 >"$tmp/crash_worker2.log" 2>&1 &
cw2_pid=$!
# The chaos script: SIGKILL the dispatcher mid-sweep — no drain, no
# goodbye, a torn journal tail is fair game — then restart it on the SAME
# journal and the SAME address. Workers redial it; the client's fabric
# backend redials and re-attaches by its idempotency ref.
( sleep 0.3
  kill -9 "$cdisp_pid" 2>/dev/null || true
  sleep 0.5
  exec "$tmp/fabricd" -role dispatcher -listen "$caddr" -journal "$tmp/jobs.jsonl" \
    >"$tmp/crash_disp2.log" 2>&1
) &
cdisp2_pid=$!
trap 'kill -9 "$disp_pid" "$w1_pid" "$w2_pid" "$cdisp_pid" "$cdisp2_pid" "$cw1_pid" "$cw2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
"$tmp/simulate" $kill_flags -backend fabric -dispatcher "$caddr" -json "$tmp/crash.json" >/dev/null
if ! cmp "$tmp/pool_kill.json" "$tmp/crash.json"; then
  echo "FAIL: sweep through a SIGKILLed-and-restarted dispatcher differs from the pool" >&2
  cat "$tmp/crash_disp1.log" "$tmp/crash_disp2.log" >&2
  exit 1
fi
echo "    sweep survived SIGKILL of the dispatcher, byte-identical ($(wc -c < "$tmp/crash.json") bytes)"
if wait "$cdisp_pid" 2>/dev/null; then
  echo "FAIL: the first dispatcher exited cleanly (the crash never happened)" >&2
  exit 1
fi
grep -q "replayed" "$tmp/crash_disp2.log" || {
  echo "FAIL: the restarted dispatcher never replayed the journal" >&2
  cat "$tmp/crash_disp2.log" >&2
  exit 1
}
[ -s "$tmp/jobs.jsonl" ] || { echo "FAIL: the job journal is empty" >&2; exit 1; }
"$tmp/psq" -dispatcher "$caddr" list | tee "$tmp/crash_psq.out"
grep -q "done" "$tmp/crash_psq.out" || { echo "FAIL: the resumed job is not done on the restarted dispatcher" >&2; exit 1; }
kill "$cdisp2_pid" "$cw1_pid" "$cw2_pid" 2>/dev/null || true

echo "==> serving gate (resultd on a fabric backend: coalescing, byte-identity vs simulate -json, SSE)"
go build -o "$tmp/resultd" ./cmd/resultd
# Fresh fabric daemons for the serving layer (the fabric gate above tore
# its own down), plus resultd fronting them.
"$tmp/fabricd" -role dispatcher -listen 127.0.0.1:0 -addr-file "$tmp/serve_fabric.addr" \
  >"$tmp/serve_fabricd.log" 2>&1 &
sdisp_pid=$!
for _ in $(seq 1 100); do [ -s "$tmp/serve_fabric.addr" ] && break; sleep 0.1; done
if [ ! -s "$tmp/serve_fabric.addr" ]; then
  echo "FAIL: serving-gate fabricd dispatcher did not publish its address" >&2
  cat "$tmp/serve_fabricd.log" >&2
  exit 1
fi
saddr="$(cat "$tmp/serve_fabric.addr")"
"$tmp/fabricd" -role worker -dispatcher "$saddr" -slots 2 >"$tmp/serve_worker.log" 2>&1 &
sworker_pid=$!
# -backend-redial 1s: the degradation check below kills the fabric and
# wants resultd to 503 misses quickly instead of redialing for the default.
"$tmp/resultd" -listen 127.0.0.1:0 -addr-file "$tmp/resultd.addr" \
  -backend fabric -dispatcher "$saddr" -backend-redial 1s >"$tmp/resultd.log" 2>&1 &
resultd_pid=$!
trap 'kill -9 "$disp_pid" "$w1_pid" "$w2_pid" "$sdisp_pid" "$sworker_pid" "$resultd_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do [ -s "$tmp/resultd.addr" ] && break; sleep 0.1; done
if [ ! -s "$tmp/resultd.addr" ]; then
  echo "FAIL: resultd did not publish its address" >&2
  cat "$tmp/resultd.log" >&2
  exit 1
fi
raddr="$(cat "$tmp/resultd.addr")"
# The spec below is exactly the sweep $sweep_flags makes cmd/simulate build
# (name "simulate", engine "rebuild", baseSeed 1 are what the flag defaults
# produce), so the served bytes must equal the pool.json recorded by the
# dispatch-backend gate — the "same bytes as simulate -json" contract.
cat > "$tmp/spec.json" <<'EOF'
{
  "name": "simulate",
  "grid": {"k": [2], "rho": [0.5, 0.7], "muI": [1, 2], "muE": [1], "policies": ["IF", "EF"]},
  "reps": 2, "baseSeed": 1, "warmup": 200, "jobs": 2000, "tail": true, "engine": "rebuild"
}
EOF
# 8 concurrent identical POSTs: the coalescer must fold them into ONE
# backend computation (later arrivals may be plain cache hits — either way
# the computation count stays 1) and hand every client identical bytes.
curl_pids=()
for i in $(seq 1 8); do
  curl -s -X POST --data-binary @"$tmp/spec.json" "http://$raddr/v1/sweep" \
    -o "$tmp/resp$i.json" &
  curl_pids+=($!)
done
for pid in "${curl_pids[@]}"; do
  wait "$pid" || { echo "FAIL: a POST to resultd failed" >&2; cat "$tmp/resultd.log" >&2; exit 1; }
done
for i in $(seq 1 8); do
  if ! cmp "$tmp/pool.json" "$tmp/resp$i.json"; then
    echo "FAIL: served response $i differs from simulate -json" >&2
    exit 1
  fi
done
echo "    8 concurrent clients served byte-identically to simulate -json ($(wc -c < "$tmp/resp1.json") bytes)"
curl -s "http://$raddr/v1/stats" | tee "$tmp/stats.json"
grep -q '"computations": 1' "$tmp/stats.json" || {
  echo "FAIL: 8 identical requests took != 1 computation (coalescing broken)" >&2
  exit 1
}
echo "    coalescer folded 8 identical requests into 1 computation"
# SSE smoke on a fresh spec (seed 2 misses every cache): partial aggregates
# stream as progress events, then the full result arrives as one result
# event. Re-streaming the now-cached spec must replay just the result.
sed 's/"baseSeed": 1/"baseSeed": 2/' "$tmp/spec.json" > "$tmp/spec2.json"
curl -sN -X POST --data-binary @"$tmp/spec2.json" "http://$raddr/v1/sweep/stream" > "$tmp/sse.out"
grep -q '^event: progress' "$tmp/sse.out" || { echo "FAIL: SSE stream carried no progress events" >&2; exit 1; }
grep -q '^event: result' "$tmp/sse.out" || { echo "FAIL: SSE stream carried no result event" >&2; exit 1; }
curl -sN -X POST --data-binary @"$tmp/spec2.json" "http://$raddr/v1/sweep/stream" > "$tmp/sse2.out"
if grep -q '^event: progress' "$tmp/sse2.out"; then
  echo "FAIL: re-streaming a cached spec recomputed instead of replaying the result" >&2
  exit 1
fi
grep -q '^event: result' "$tmp/sse2.out" || { echo "FAIL: cached SSE re-stream carried no result event" >&2; exit 1; }
echo "    SSE streamed $(grep -c '^event: progress' "$tmp/sse.out") progress events + result; cached re-stream replayed the result"
# psq stats smoke against the live dispatcher: the serving sweeps' jobs and
# the outcome-cache hits from the coalesced burst must be visible.
"$tmp/psq" -dispatcher "$saddr" stats | tee "$tmp/psq_stats.out"
grep -q "workers" "$tmp/psq_stats.out" || { echo "FAIL: psq stats shows no workers line" >&2; exit 1; }
# Degradation: SIGKILL the fabric daemons under the still-running resultd.
# Cache hits must keep serving; a fresh spec must come back 503 with a
# Retry-After hint instead of hanging; /v1/stats must surface the outage.
kill -9 "$sdisp_pid" "$sworker_pid" 2>/dev/null || true
curl -s -X POST --data-binary @"$tmp/spec.json" "http://$raddr/v1/sweep" -o "$tmp/degrade_hit.json"
if ! cmp "$tmp/pool.json" "$tmp/degrade_hit.json"; then
  echo "FAIL: cache hit during a fabric outage is not byte-identical" >&2
  exit 1
fi
sed 's/"baseSeed": 1/"baseSeed": 3/' "$tmp/spec.json" > "$tmp/spec3.json"
code="$(curl -s -X POST --data-binary @"$tmp/spec3.json" "http://$raddr/v1/sweep" \
  -D "$tmp/degrade_hdr.txt" -o /dev/null -w '%{http_code}')"
if [ "$code" != "503" ]; then
  echo "FAIL: miss during a fabric outage returned $code, want 503" >&2
  cat "$tmp/resultd.log" >&2
  exit 1
fi
grep -qi '^retry-after: [0-9]' "$tmp/degrade_hdr.txt" || {
  echo "FAIL: degraded 503 carries no Retry-After hint" >&2
  cat "$tmp/degrade_hdr.txt" >&2
  exit 1
}
curl -s "http://$raddr/v1/stats" | tee "$tmp/degrade_stats.json"
grep -q '"backendDown": true' "$tmp/degrade_stats.json" || {
  echo "FAIL: /v1/stats does not report backendDown during the outage" >&2
  exit 1
}
echo "    resultd degraded gracefully: cache hit served, miss 503 + Retry-After, outage visible in stats"
kill "$resultd_pid" 2>/dev/null || true

echo "==> serving coalescer race stress"
go test -race -run 'TestCoalesceStressRace|TestCoalesceManyWaitersOneSubmit' -count=2 ./internal/serve

echo "==> serving degradation gate (backend outage: cache hits serve, misses 503 with derived Retry-After)"
go test -race -run 'TestBackendDownDegradation|TestBackendRecoveryProbe' -count=1 ./internal/serve

echo "==> wire-codec fuzz gate (frame codec must reject hostile input without panicking)"
go test -fuzz=FuzzFrameCodec -fuzztime=10s ./internal/wire

echo "==> journal fuzz gate (arbitrary journal truncation/corruption must replay to a consistent registry)"
go test -fuzz=FuzzJournalReplay -fuzztime=10s ./internal/fabric

echo "==> go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist"
go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist

echo "==> sparse-vs-dense fuzz gate (EQUI class shares, SRPT indexed heap, arena handle recycling)"
go test -fuzz=FuzzSparseShareSet -fuzztime=10s ./internal/sim

echo "==> profiling-harness smoke (scripts/bench.sh profile must drop loadable, non-empty profiles)"
scripts/bench.sh profile 0.05s >/dev/null
for p in BENCH_cpu.prof BENCH_mem.prof BENCH_mutex.prof; do
  [ -s "$p" ] || { echo "FAIL: bench.sh profile did not write $p" >&2; exit 1; }
done
rm -f BENCH_cpu.prof BENCH_mem.prof BENCH_mutex.prof BENCH_bench.test
echo "    bench.sh profile wrote cpu/mem/mutex profiles"

echo "==> benchmark perf gate (ns/op vs BENCH_engine.json; BENCH_GATE=0 skips)"
if [ "${BENCH_GATE:-1}" != "0" ]; then
  # Best-of-N per benchmark (benchlog keeps the fastest sample; BENCH_COUNT,
  # default 3 — raise it on a noisy box, same knob scripts/bench.sh honors)
  # against the newest recorded entry; >10% slowdown in ns/op — or
  # events/sec for the N-scaling family, or requests/sec for the
  # BenchmarkServe* serving family — on any pinned benchmark fails,
  # with the observed spread printed for diagnosis.
  # -timeout 0: the run is already bounded by benchtime x count, and a
  # raised BENCH_COUNT on a noisy box must not trip go test's default 10m.
  go test ./internal/sim -run '^$' -bench 'BenchmarkEngineEvent' -timeout 0 \
    -benchmem -benchtime 1s -count "${BENCH_COUNT:-3}" | tee "$tmp/bench.txt"
  # The serving path participates in the same gate: requests/sec on the
  # loopback BenchmarkServe* family must stay within threshold too.
  go test ./internal/serve -run '^$' -bench 'BenchmarkServe' -timeout 0 \
    -benchtime 1s -count "${BENCH_COUNT:-3}" | tee -a "$tmp/bench.txt"
  go run ./cmd/benchlog -check -file BENCH_engine.json < "$tmp/bench.txt"
  # The structure-specific fast paths must beat the rebuild engine >= 10x at
  # n = 10k and run allocation-free in steady state.
  awk '
    /^BenchmarkEngineEventN10k\// {
      name = $1; sub(/^BenchmarkEngineEventN10k\//, "", name); sub(/-[0-9]+$/, "", name)
      if (!(name in ns) || $3 + 0 < ns[name]) ns[name] = $3 + 0
      for (i = 1; i <= NF; i++) if ($i == "allocs/op" && $(i-1) + 0 > alloc[name]) alloc[name] = $(i-1) + 0
    }
    END {
      fail = 0
      split("EQUI SRPT", pols, " ")
      for (p in pols) {
        pol = pols[p]
        reb = ns["rebuild-" pol]; inc = ns["incremental-" pol]
        if (reb == 0 || inc == 0) { printf "FAIL: missing N10k benchmarks for %s\n", pol; fail = 1; continue }
        if (reb / inc < 10) { printf "FAIL: incremental %s only %.1fx faster than rebuild at n=10k (want >= 10x)\n", pol, reb / inc; fail = 1 }
        else printf "    incremental %s: %.0fx faster than rebuild at n=10k\n", pol, reb / inc
        if (alloc["incremental-" pol] != 0) { printf "FAIL: incremental %s allocates %d allocs/op in steady state (want 0)\n", pol, alloc["incremental-" pol]; fail = 1 }
      }
      exit fail
    }' "$tmp/bench.txt"
else
  echo "    skipped (BENCH_GATE=0)"
fi

echo "CI green."
