#!/usr/bin/env bash
# Tier-1 CI gate: build, vet, race-enabled tests, plus a short-budget fuzz
# pass over the distribution fitters. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist"
go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist

echo "CI green."
