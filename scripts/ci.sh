#!/usr/bin/env bash
# Tier-1 CI gate: build, vet, race-enabled tests, the exp worker-pool
# stress test, a short-budget fuzz pass over the distribution fitters, and
# a package-documentation check. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> package-comment gate (go doc must be useful for every internal package)"
missing=0
for d in internal/*/; do
  pkg=$(basename "$d")
  if ! grep -q "^// Package $pkg" "$d"*.go; then
    echo "FAIL: package $pkg lacks a '// Package $pkg ...' doc comment" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> exp worker-pool race stress"
go test -race -run 'TestWorkerPoolStressRace' -count=2 ./internal/exp

echo "==> go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist"
go test -fuzz=FuzzFit -fuzztime=10s ./internal/dist

echo "CI green."
