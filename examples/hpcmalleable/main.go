// HPC malleable-jobs scenario (Section 1.3): malleable (elastic) jobs are
// SMALLER on average than rigid (inelastic) ones — the muI < muE regime
// where Inelastic-First loses its optimality (Theorem 6) and Elastic-First
// can win. The example sweeps the threshold-policy family between the two
// extremes and locates the best interior policy, illustrating the paper's
// open question about this regime.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctmc"
)

func main() {
	const k = 8
	// Rigid solver jobs are 4x larger than malleable jobs; high load.
	sys := core.ForLoad(k, 0.9, 0.25, 1.0)
	fmt.Printf("HPC cluster: k=%d, rho=%.2f, rigid mean size %.1f, malleable mean size %.1f\n\n",
		k, sys.Rho(), 1/sys.MuI, 1/sys.MuE)

	ifRes, efRes, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix-analytic: E[T_IF] = %.3f, E[T_EF] = %.3f -> EF wins by %.1f%%\n\n",
		ifRes.T, efRes.T, 100*(ifRes.T-efRes.T)/ifRes.T)

	fmt.Println("threshold-policy sweep (cap = max servers for rigid jobs while malleable jobs wait):")
	fmt.Println("  cap   E[T] (exact chain)")
	bestCap, bestT := -1, ifRes.T*10
	for cap := 0; cap <= k; cap++ {
		perf, err := sys.SolveExact(ctmc.ThresholdAlloc(cap), 1e-9)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if cap == 0 {
			marker = "  (= EF)"
		}
		if cap == k {
			marker = "  (= IF)"
		}
		fmt.Printf("  %2d   %8.4f%s\n", cap, perf.MeanT, marker)
		if perf.MeanT < bestT {
			bestT, bestCap = perf.MeanT, cap
		}
	}
	fmt.Printf("\nbest threshold: cap=%d with E[T]=%.4f\n", bestCap, bestT)
	fmt.Println("The optimal policy for muI < muE is open (Section 6); interior")
	fmt.Println("thresholds can beat both EF and IF, which bounds how far either")
	fmt.Println("headline policy is from optimal within this family.")
}
