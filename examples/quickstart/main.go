// Quickstart: analyze and simulate a 4-server cluster shared by elastic and
// inelastic jobs, and see why Inelastic-First is the right policy when
// inelastic jobs are smaller on average (Theorem 5 of Berg et al.,
// SPAA 2020).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A cluster with k=4 servers at 70% load. Inelastic jobs are twice as
	// small on average (muI = 2, muE = 1) — the paper's "common case".
	sys := core.ForLoad(4, 0.7, 2.0, 1.0)
	fmt.Printf("cluster: k=%d, rho=%.2f, muI=%g, muE=%g\n\n", sys.K, sys.Rho(), sys.MuI, sys.MuE)

	// 1. Exact analysis via the busy-period transformation + matrix
	//    analytic methods (Section 5 of the paper).
	ifRes, efRes, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matrix-analytic mean response times:")
	fmt.Printf("  Inelastic-First: E[T] = %.4f\n", ifRes.T)
	fmt.Printf("  Elastic-First:   E[T] = %.4f\n", efRes.T)
	fmt.Printf("  IF advantage:    %.1f%%\n\n", 100*(efRes.T-ifRes.T)/efRes.T)

	// 2. The same comparison by discrete-event simulation.
	opts := core.SimOptions{Seed: 42, WarmupJobs: 20_000, MaxJobs: 400_000}
	for _, name := range []string{"IF", "EF", "FCFS", "EQUI"} {
		p, err := sys.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Simulate(p, opts)
		fmt.Printf("  simulated %-5s E[T] = %.4f (E[T_I]=%.4f, E[T_E]=%.4f)\n",
			name+":", res.MeanT, res.MeanTI, res.MeanTE)
	}
	fmt.Println("\nTheorem 5: with muI >= muE no policy beats IF — and none of these do.")
}
