// Quickstart: analyze and simulate a 4-server cluster shared by elastic and
// inelastic jobs, see why Inelastic-First is the right policy when
// inelastic jobs are smaller on average (Theorem 5 of Berg et al.,
// SPAA 2020), and sweep the load axis in parallel with internal/exp.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	// A cluster with k=4 servers at 70% load. Inelastic jobs are twice as
	// small on average (muI = 2, muE = 1) — the paper's "common case".
	sys := core.ForLoad(4, 0.7, 2.0, 1.0)
	fmt.Printf("cluster: k=%d, rho=%.2f, muI=%g, muE=%g\n\n", sys.K, sys.Rho(), sys.MuI, sys.MuE)

	// Step 1 — exact analysis. The busy-period transformation + matrix
	// analytic pipeline of Section 5 computes mean response times for both
	// headline policies in milliseconds, no simulation required.
	ifRes, efRes, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matrix-analytic mean response times:")
	fmt.Printf("  Inelastic-First: E[T] = %.4f\n", ifRes.T)
	fmt.Printf("  Elastic-First:   E[T] = %.4f\n", efRes.T)
	fmt.Printf("  IF advantage:    %.1f%%\n\n", 100*(efRes.T-ifRes.T)/efRes.T)

	// Step 2 — the same comparison by discrete-event simulation, one policy
	// at a time through the model-level API. Fixed seed: rerunning this
	// program reproduces these numbers exactly.
	opts := core.SimOptions{Seed: 42, WarmupJobs: 20_000, MaxJobs: 400_000}
	for _, name := range []string{"IF", "EF", "FCFS", "EQUI"} {
		p, err := sys.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Simulate(p, opts)
		fmt.Printf("  simulated %-5s E[T] = %.4f (E[T_I]=%.4f, E[T_E]=%.4f)\n",
			name+":", res.MeanT, res.MeanTI, res.MeanTE)
	}
	fmt.Println("\nTheorem 5: with muI >= muE no policy beats IF — and none of these do.")

	// Step 3 — scale up with the experiment layer. A Sweep declares a
	// parameter grid (here: the load axis under both policies, 2
	// replications each) and exp.Run dispatches every (cell, replication)
	// across a worker pool. Seeds derive from cell identity, so the output
	// is bit-identical no matter how many workers (or re-runs) it takes.
	sweep := exp.Sweep{
		Name: "quickstart-rho-sweep",
		Grid: exp.Grid{
			K:        []int{4},
			Rho:      []float64{0.5, 0.7, 0.9},
			MuI:      []float64{2},
			MuE:      []float64{1},
			Policies: []string{"IF", "EF"},
		},
		Reps:     2,
		BaseSeed: 42,
		Warmup:   20_000,
		Jobs:     200_000,
	}
	rs, err := exp.Run(context.Background(), sweep, exp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nparallel load sweep (exp.Run, 2 replications per cell):")
	fmt.Println("  rho   E[T] IF (±95%)        E[T] EF (±95%)")
	for i := 0; i < len(rs.Cells); i += 2 {
		ifCell, efCell := rs.Cells[i], rs.Cells[i+1]
		fmt.Printf("  %.1f   %.4f (±%.4f)   %.4f (±%.4f)\n",
			ifCell.Cell.Rho, ifCell.ET, ifCell.ETCI, efCell.ET, efCell.ETCI)
	}
	fmt.Println("\nIF's advantage widens with load — Figure 5's story, reproduced in one sweep.")
}
