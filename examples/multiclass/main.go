// Multi-class extension (Section 6 of the paper): more than two job classes
// with different levels of parallelizability, on the unified N-class engine.
// A cluster serves three classes — rigid queries (cap 1), partially elastic
// analytics (cap 4), and fully elastic batch jobs — and the example compares
// every strict priority ordering, showing that the Inelastic-First intuition
// generalizes: defer the most flexible work. A second pass swaps the capped
// analytics class for an Amdahl's-law class to show partial elasticity
// (Section 6's "speedup function" view) on the same engine.
package main

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(k int, mix workload.Mix, p sim.Policy, seed uint64, warmup, jobs int64) sim.Result {
	return sim.Run(sim.RunConfig{
		K: k, Policy: p, Source: mix.Source(seed), Classes: mix.Classes,
		WarmupJobs: warmup, MaxJobs: jobs,
	})
}

func main() {
	const k = 8
	mix := workload.Mix{
		Name: "threeclass",
		Classes: []sim.ClassSpec{
			{Name: "query(cap=1)", Speedup: sim.CappedSpeedup(1), Lambda: 4.0, Size: dist.NewExponential(4)},     // mean 0.25
			{Name: "analytics(cap=4)", Speedup: sim.CappedSpeedup(4), Lambda: 1.6, Size: dist.NewExponential(1)}, // mean 1
			{Name: "batch(elastic)", Speedup: sim.LinearSpeedup(), Lambda: 0.6, Size: dist.NewExponential(0.25)}, // mean 4
		},
	}
	fmt.Printf("three-class cluster: k=%d, rho=%.2f\n", k, mix.Rho(k))
	for _, c := range mix.Classes {
		fmt.Printf("  %-18s lambda=%.1f mean size=%.2f speedup=%s\n", c.Name, c.Lambda, c.Size.Mean(), c.Speedup)
	}
	fmt.Println()

	type result struct {
		order []int
		et    float64
	}
	var results []result
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, order := range perms {
		res := run(k, mix, policy.ClassPriority{Order: order}, 9, 20_000, 250_000)
		results = append(results, result{order, res.MeanT})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].et < results[j].et })

	fmt.Println("strict priority orderings, best to worst (overall E[T]):")
	for _, r := range results {
		names := ""
		for i, c := range r.order {
			if i > 0 {
				names += " > "
			}
			names += mix.Classes[c].Name
		}
		fmt.Printf("  %8.4f  %s\n", r.et, names)
	}
	fmt.Println("\nThe winning orders serve the least parallelizable (and smallest)")
	fmt.Println("class first and defer the fully elastic class — Theorem 5's")
	fmt.Println("Inelastic-First intuition carried to many classes.")

	best := results[0].order
	if !math.IsInf(mix.Classes[best[len(best)-1]].Cap(), 1) {
		fmt.Println("WARNING: best order did not defer the elastic class — worth a look.")
	}

	// Partial elasticity: replace the capped analytics class by an
	// Amdahl's-law class (serial fraction 0.1, at most 4 servers per job)
	// and compare least-flexible-first against EQUI on the same arrival
	// process.
	amdahl := mix
	amdahl.Classes = append([]sim.ClassSpec(nil), mix.Classes...)
	amdahl.Classes[1].Name = "analytics(amdahl)"
	amdahl.Classes[1].Speedup = sim.AmdahlSpeedup(0.1)
	amdahl.Classes[1].MaxServers = 4
	lff := run(k, amdahl, &policy.LeastFlexibleFirst{}, 9, 20_000, 250_000)
	equi := run(k, amdahl, policy.Equi{}, 9, 20_000, 250_000)
	fmt.Printf("\npartial elasticity (Amdahl analytics): E[T] LFF=%.4f EQUI=%.4f\n", lff.MeanT, equi.MeanT)
	for c, spec := range amdahl.Classes {
		fmt.Printf("  %-18s E[T] LFF=%.4f EQUI=%.4f\n", spec.Name, lff.PerClassT[c], equi.PerClassT[c])
	}
}
