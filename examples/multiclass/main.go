// Multi-class extension (Section 6 of the paper): more than two job classes
// with different levels of parallelizability. A cluster serves three
// classes — rigid queries (cap 1), partially elastic analytics (cap 4), and
// fully elastic batch jobs — and the example compares every strict priority
// ordering, showing that the Inelastic-First intuition generalizes: defer
// the most flexible work.
package main

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/mcsim"
)

func main() {
	const k = 8
	classes := []mcsim.ClassSpec{
		{Name: "query(cap=1)", Cap: 1, Lambda: 4.0, Size: dist.NewExponential(4)},                // mean 0.25
		{Name: "analytics(cap=4)", Cap: 4, Lambda: 1.6, Size: dist.NewExponential(1)},            // mean 1
		{Name: "batch(elastic)", Cap: math.Inf(1), Lambda: 0.6, Size: dist.NewExponential(0.25)}, // mean 4
	}
	load := 0.0
	for _, c := range classes {
		load += c.Lambda * c.Size.Mean()
	}
	fmt.Printf("three-class cluster: k=%d, rho=%.2f\n", k, load/k)
	for _, c := range classes {
		fmt.Printf("  %-18s lambda=%.1f mean size=%.2f\n", c.Name, c.Lambda, c.Size.Mean())
	}
	fmt.Println()

	type result struct {
		order []int
		et    float64
	}
	var results []result
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, order := range perms {
		sys := mcsim.Run(k, classes, mcsim.PriorityOrder{Order: order}, 9, 20_000, 250_000)
		results = append(results, result{order, sys.MeanResponseAll()})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].et < results[j].et })

	fmt.Println("strict priority orderings, best to worst (overall E[T]):")
	for _, r := range results {
		names := ""
		for i, c := range r.order {
			if i > 0 {
				names += " > "
			}
			names += classes[c].Name
		}
		fmt.Printf("  %8.4f  %s\n", r.et, names)
	}
	fmt.Println("\nThe winning orders serve the least parallelizable (and smallest)")
	fmt.Println("class first and defer the fully elastic class — Theorem 5's")
	fmt.Println("Inelastic-First intuition carried to many classes.")

	best := results[0].order
	if classes[best[len(best)-1]].Cap != math.Inf(1) {
		fmt.Println("WARNING: best order did not defer the elastic class — worth a look.")
	}
}
