// ML platform scenario (Section 1.3): a shared cluster serves both
// distributed training jobs (elastic, heavy-tailed sizes) and model-serving
// requests (inelastic, tiny, frequent). The example shows that
// Inelastic-First keeps inference latency at its floor while barely
// affecting training throughput — and quantifies the tail behavior, which
// the mean-only theory does not cover.
package main

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const k = 32
	scen := workload.MLPlatform(k, 0.75)
	fmt.Printf("ML platform: k=%d, rho=%.2f\n", k, scen.Rho(k))
	fmt.Printf("  serving  (inelastic): %.1f req/s, mean size %.3fs\n", scen.LambdaI, scen.SizeI.Mean())
	fmt.Printf("  training (elastic):   %.2f jobs/s, mean size %.1fs (bounded Pareto)\n\n",
		scen.LambdaE, scen.SizeE.Mean())

	for _, p := range []sim.Policy{policy.InelasticFirst{}, policy.ElasticFirst{}, policy.Equi{}} {
		rec := sim.NewResponseRecorder(100_000, 11)
		res := sim.RunWithRecorder(sim.RunConfig{
			K: k, Policy: p, Source: scen.Source(11),
			WarmupJobs: 30_000, MaxJobs: 300_000,
		}, rec)
		fmt.Printf("%-22s inference p50=%.4fs p99=%.4fs | training mean=%.1fs\n",
			p.Name()+":",
			rec.Quantile(sim.Inelastic, 0.50),
			rec.Quantile(sim.Inelastic, 0.99),
			res.MeanTE)
	}
	fmt.Println("\nIF gives inference requests preemptive priority: p99 stays near the")
	fmt.Println("service-time floor, while training jobs (huge anyway) barely notice.")
}
