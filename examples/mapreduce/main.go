// MapReduce scenario (Section 1.3 of the paper): a cluster processes map
// stages (elastic — parallelize across any number of servers, large) and
// reduce stages (inelastic — sequential, small). This is the regime where
// Inelastic-First is provably optimal, and the example measures how much
// response time a production scheduler would leave on the table with the
// other natural policies.
package main

import (
	"fmt"
	"log"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const k = 16
	// Map stages carry 8x the work of reduce stages; cluster at 80% load.
	scen := workload.MapReduce(k, 0.8, 8.0)
	fmt.Printf("MapReduce cluster: k=%d, rho=%.2f\n", k, scen.Rho(k))
	fmt.Printf("  reduce (inelastic): rate %.3f, mean size %.2f\n", scen.LambdaI, scen.SizeI.Mean())
	fmt.Printf("  map    (elastic):   rate %.3f, mean size %.2f\n\n", scen.LambdaE, scen.SizeE.Mean())

	policies := []sim.Policy{
		policy.InelasticFirst{},
		policy.ElasticFirst{},
		&policy.FCFS{},
		policy.Equi{},
	}
	type row struct {
		name          string
		t, tMap, tRed float64
	}
	var rows []row
	var best float64
	for i, p := range policies {
		res := sim.Run(sim.RunConfig{
			K: k, Policy: p, Source: scen.Source(7),
			WarmupJobs: 30_000, MaxJobs: 400_000,
		})
		rows = append(rows, row{p.Name(), res.MeanT, res.MeanTE, res.MeanTI})
		if i == 0 {
			best = res.MeanT
		}
	}
	fmt.Println("policy     E[T]      E[T_map]  E[T_reduce]   vs IF")
	for _, r := range rows {
		fmt.Printf("%-9s %9.4f %9.4f %11.4f   %+.1f%%\n",
			r.name, r.t, r.tMap, r.tRed, 100*(r.t-best)/best)
	}
	fmt.Println("\nReduce stages are smaller, so Theorem 5 applies: IF is optimal.")
	fmt.Println("Note how EF devastates reduce-stage latency by starving them")
	fmt.Println("behind long map stages.")
	if rows[0].t > rows[1].t || rows[0].t > rows[2].t {
		log.Fatal("unexpected: IF was not best — investigate")
	}
}
