// Policy search: an empirical tour of Theorem 3's sample-path dominance.
// Two systems are driven in lockstep over the SAME arrival sequence (same
// times, classes and sizes — the coupling of the proof), and the total and
// inelastic work in system are compared at every event. Inelastic-First
// never has more work than any policy in class P, on every sample path, not
// just in expectation.
package main

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
	fmt.Printf("model: k=%d, rho=%.2f, muI=%g, muE=%g (muI > muE: IF is optimal)\n\n",
		model.K, model.Rho(), model.MuI, model.MuE)

	rivals := []sim.Policy{
		policy.ElasticFirst{},
		&policy.FCFS{},
		policy.Threshold{Cap: 1},
		policy.Threshold{Cap: 2},
		policy.Threshold{Cap: 3},
		policy.DeferElastic{},
	}

	fmt.Println("coupled sample paths (10k arrivals each, 3 seeds): does IF ever have")
	fmt.Println("more work in system than the rival, at any instant?")
	fmt.Println()
	fmt.Println("rival            seed  checks   W violations  W_I violations  sum-resp IF/rival")
	for _, rival := range rivals {
		for seed := uint64(1); seed <= 3; seed++ {
			trace := model.Trace(seed, 10_000)
			rep := sim.CompareWork(model.K, trace, policy.InelasticFirst{}, rival, 1e-7)
			wv, wiv := 0, 0
			for _, v := range rep.Violations {
				if v.Quantity == "W" {
					wv++
				} else {
					wiv++
				}
			}
			fmt.Printf("%-16s %4d %7d %13d %15d %12.4f\n",
				rival.Name(), seed, rep.Checked, wv, wiv, rep.SumRespA/rep.SumRespB)
		}
	}
	fmt.Println("\nZero violations everywhere: exactly what Theorem 3 proves. The")
	fmt.Println("response-time ratios < 1 show the work dominance translating into")
	fmt.Println("better mean response time (Theorem 5).")
}
