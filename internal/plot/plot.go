// Package plot renders the repository's figures as standalone SVG files
// using only the standard library. It supports exactly what the paper's
// figures need: multi-series line charts with axes, ticks and a legend
// (Figures 5 and 6) and a two-color scatter grid (the Figure 4 heat maps).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one polyline of a line chart.
type Series struct {
	Name  string
	X, Y  []float64
	Color string
}

// LineChart is a multi-series chart specification.
type LineChart struct {
	Title, XLabel, YLabel string
	Series                []Series
	Width, Height         int
}

// Scatter is a categorical two-color grid (the Figure 4 heat map style).
type Scatter struct {
	Title, XLabel, YLabel string
	X, Y                  []float64
	Class                 []bool // true = first color
	TrueName, FalseName   string
	TrueColor, FalseColor string
	Width, Height         int
}

const (
	marginL = 64.0
	marginR = 16.0
	marginT = 36.0
	marginB = 48.0
)

var defaultPalette = []string{"#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Render writes the chart as an SVG document.
func (c LineChart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	width, height := sizeOrDefault(c.Width, c.Height)
	xmin, xmax, ymin, ymax := math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return fmt.Errorf("plot: series %q has mismatched or empty data", s.Name)
		}
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if ymin > 0 {
		ymin = 0 // response-time plots anchor at zero like the paper's
	}
	xmin, xmax = pad(xmin, xmax)
	ymin, ymax = pad(ymin, ymax)

	var b strings.Builder
	openSVG(&b, width, height, c.Title)
	drawAxes(&b, width, height, xmin, xmax, ymin, ymax, c.XLabel, c.YLabel)

	sx := func(x float64) float64 {
		return marginL + (x-xmin)/(xmax-xmin)*(float64(width)-marginL-marginR)
	}
	sy := func(y float64) float64 {
		return float64(height) - marginB - (y-ymin)/(ymax-ymin)*(float64(height)-marginT-marginB)
	}
	for i, s := range c.Series {
		color := s.Color
		if color == "" {
			color = defaultPalette[i%len(defaultPalette)]
		}
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", sx(s.X[j]), sy(s.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for j := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="2.5" fill="%s"/>`+"\n", sx(s.X[j]), sy(s.Y[j]), color)
		}
		// Legend entry.
		ly := marginT + 8 + float64(i)*18
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="14" height="4" fill="%s"/>`+"\n",
			float64(width)-marginR-110, ly, color)
		fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="12">%s</text>`+"\n",
			float64(width)-marginR-92, ly+6, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Render writes the scatter grid as an SVG document.
func (s Scatter) Render(w io.Writer) error {
	if len(s.X) != len(s.Y) || len(s.X) != len(s.Class) || len(s.X) == 0 {
		return fmt.Errorf("plot: scatter data mismatched or empty")
	}
	width, height := sizeOrDefault(s.Width, s.Height)
	xmin, xmax, ymin, ymax := math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)
	for i := range s.X {
		xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
		ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
	}
	xmin, xmax = pad(xmin, xmax)
	ymin, ymax = pad(ymin, ymax)

	trueColor, falseColor := s.TrueColor, s.FalseColor
	if trueColor == "" {
		trueColor = "#d62728"
	}
	if falseColor == "" {
		falseColor = "#1f77b4"
	}

	var b strings.Builder
	openSVG(&b, width, height, s.Title)
	drawAxes(&b, width, height, xmin, xmax, ymin, ymax, s.XLabel, s.YLabel)
	sx := func(x float64) float64 {
		return marginL + (x-xmin)/(xmax-xmin)*(float64(width)-marginL-marginR)
	}
	sy := func(y float64) float64 {
		return float64(height) - marginB - (y-ymin)/(ymax-ymin)*(float64(height)-marginT-marginB)
	}
	for i := range s.X {
		if s.Class[i] {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="5" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
				sx(s.X[i]), sy(s.Y[i]), trueColor)
		} else {
			x, y := sx(s.X[i]), sy(s.Y[i])
			fmt.Fprintf(&b, `<path d="M %.2f %.2f h 8 M %.2f %.2f v 8" stroke="%s" stroke-width="1.8"/>`+"\n",
				x-4, y, x, y-4, falseColor)
		}
	}
	// Legend.
	fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="5" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
		float64(width)-marginR-120, marginT+10, trueColor)
	fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="12">%s</text>`+"\n",
		float64(width)-marginR-108, marginT+14, escape(s.TrueName))
	fmt.Fprintf(&b, `<path d="M %.2f %.2f h 8 M %.2f %.2f v 8" stroke="%s" stroke-width="1.8"/>`+"\n",
		float64(width)-marginR-124, marginT+28, float64(width)-marginR-120, marginT+24, falseColor)
	fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="12">%s</text>`+"\n",
		float64(width)-marginR-108, marginT+32, escape(s.FalseName))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sizeOrDefault(w, h int) (int, int) {
	if w <= 0 {
		w = 560
	}
	if h <= 0 {
		h = 400
	}
	return w, h
}

func pad(lo, hi float64) (float64, float64) {
	if lo == hi {
		return lo - 1, hi + 1
	}
	d := (hi - lo) * 0.04
	return lo - d, hi + d
}

func openSVG(b *strings.Builder, width, height int, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="20" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
		width/2, escape(title))
}

func drawAxes(b *strings.Builder, width, height int, xmin, xmax, ymin, ymax float64, xlabel, ylabel string) {
	x0, y0 := marginL, float64(height)-marginB
	x1, y1 := float64(width)-marginR, marginT
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0, x1, y0)
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0, y0, x0, y1)
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		// X ticks.
		xv := xmin + f*(xmax-xmin)
		xp := x0 + f*(x1-x0)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", xp, y0, xp, y0+4)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			xp, y0+18, tickLabel(xv))
		// Y ticks.
		yv := ymin + f*(ymax-ymin)
		yp := y0 - f*(y0-y1)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x0-4, yp, x0, yp)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			x0-7, yp+4, tickLabel(yv))
	}
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(x0+x1)/2, float64(height)-10, escape(xlabel))
	fmt.Fprintf(b, `<text x="14" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		(y0+y1)/2, (y0+y1)/2, escape(ylabel))
}

func tickLabel(v float64) string {
	if math.Abs(v) >= 100 || v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
