package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func validXML(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, doc)
		}
	}
}

func TestLineChartRenders(t *testing.T) {
	var sb strings.Builder
	c := LineChart{
		Title: "E[T] vs muI", XLabel: "muI", YLabel: "E[T]",
		Series: []Series{
			{Name: "IF", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
			{Name: "EF", X: []float64{1, 2, 3}, Y: []float64{2.5, 2.2, 2.0}},
		},
	}
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	validXML(t, doc)
	for _, want := range []string{"<svg", "polyline", "IF", "EF", "muI", "E[T]"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	// Two polylines for two series.
	if strings.Count(doc, "<polyline") != 2 {
		t.Fatalf("expected 2 polylines, got %d", strings.Count(doc, "<polyline"))
	}
}

func TestLineChartRejectsBadData(t *testing.T) {
	var sb strings.Builder
	if err := (LineChart{}).Render(&sb); err == nil {
		t.Fatal("empty chart accepted")
	}
	c := LineChart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := c.Render(&sb); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestScatterRenders(t *testing.T) {
	var sb strings.Builder
	s := Scatter{
		Title: "Fig 4", XLabel: "muI", YLabel: "muE",
		X:        []float64{1, 2, 1, 2},
		Y:        []float64{1, 1, 2, 2},
		Class:    []bool{true, true, false, true},
		TrueName: "IF superior", FalseName: "EF superior",
	}
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	validXML(t, doc)
	// 3 true circles + 1 legend circle.
	if got := strings.Count(doc, "<circle"); got != 4 {
		t.Fatalf("circles: %d", got)
	}
	// 1 false cross + 1 legend cross.
	if got := strings.Count(doc, "<path"); got != 2 {
		t.Fatalf("crosses: %d", got)
	}
}

func TestScatterRejectsBadData(t *testing.T) {
	var sb strings.Builder
	s := Scatter{X: []float64{1}, Y: []float64{1, 2}, Class: []bool{true}}
	if err := s.Render(&sb); err == nil {
		t.Fatal("mismatched scatter accepted")
	}
}

func TestEscape(t *testing.T) {
	var sb strings.Builder
	c := LineChart{
		Title:  `a<b & "c"`,
		Series: []Series{{Name: "s>1", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	validXML(t, sb.String())
	if strings.Contains(sb.String(), "a<b") {
		t.Fatal("title not escaped")
	}
}

func TestConstantSeriesDoesNotDivideByZero(t *testing.T) {
	var sb strings.Builder
	c := LineChart{Series: []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{2, 2}}}}
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}
