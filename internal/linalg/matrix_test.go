package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(r *xrand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = 2*r.Float64() - 1
	}
	// Diagonal dominance guarantees non-singularity for property tests.
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	r := xrand.New(1)
	a := randomMatrix(r, 5)
	left := Mul(Identity(5), a)
	right := Mul(a, Identity(5))
	if MaxAbsDiff(left, a) > 1e-14 || MaxAbsDiff(right, a) > 1e-14 {
		t.Fatal("identity multiplication is not a no-op")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(Mul(a, b), want) > 1e-14 {
		t.Fatalf("Mul result:\n%v", Mul(a, b))
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if MaxAbsDiff(AddM(a, b), FromRows([][]float64{{5, 5}, {5, 5}})) > 0 {
		t.Fatal("AddM wrong")
	}
	if MaxAbsDiff(SubM(a, b), FromRows([][]float64{{-3, -1}, {1, 3}})) > 0 {
		t.Fatal("SubM wrong")
	}
	if MaxAbsDiff(Scale(2, a), FromRows([][]float64{{2, 4}, {6, 8}})) > 0 {
		t.Fatal("Scale wrong")
	}
}

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3.
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("solution %v", x)
	}
}

func TestSolveResidualProperty(t *testing.T) {
	r := xrand.New(42)
	f := func(nq uint8) bool {
		n := int(nq%8) + 2
		a := randomMatrix(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := MulVec(a, x)
		for i := range res {
			if !almostEq(res[i], b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseProperty(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%7
		a := randomMatrix(r, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if MaxAbsDiff(Mul(a, inv), Identity(n)) > 1e-9 {
			t.Fatalf("a*a^-1 != I for n=%d", n)
		}
		if MaxAbsDiff(Mul(inv, a), Identity(n)) > 1e-9 {
			t.Fatalf("a^-1*a != I for n=%d", n)
		}
	}
}

func TestSingularDetected(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestDeterminant(t *testing.T) {
	a := FromRows([][]float64{{3, 8}, {4, 6}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -14, 1e-10) {
		t.Fatalf("det %v, want -14", f.Det())
	}
}

func TestVecMulMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := MulVec(a, []float64{1, 1, 1})
	if !almostEq(got[0], 6, 0) || !almostEq(got[1], 15, 0) {
		t.Fatalf("MulVec %v", got)
	}
	row := VecMul([]float64{1, 1}, a)
	want := []float64{5, 7, 9}
	for i := range want {
		if !almostEq(row[i], want[i], 0) {
			t.Fatalf("VecMul %v", row)
		}
	}
}

func TestInfNorm(t *testing.T) {
	a := FromRows([][]float64{{1, -5}, {2, 2}})
	if a.InfNorm() != 6 {
		t.Fatalf("inf norm %v", a.InfNorm())
	}
}

func TestSpectralRadiusDiagonal(t *testing.T) {
	a := FromRows([][]float64{{0.5, 0}, {0, 0.25}})
	if got := SpectralRadius(a, 200); !almostEq(got, 0.5, 1e-6) {
		t.Fatalf("spectral radius %v, want 0.5", got)
	}
}

func TestSpectralRadiusStochastic(t *testing.T) {
	// Row-stochastic matrices have spectral radius exactly 1.
	a := FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}})
	if got := SpectralRadius(a, 500); !almostEq(got, 1, 1e-6) {
		t.Fatalf("spectral radius %v, want 1", got)
	}
}

func TestSolveMatrixColumns(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := FromRows([][]float64{{1, 0}, {0, 1}})
	x, err := SolveMatrix(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(Mul(a, x), b) > 1e-12 {
		t.Fatal("SolveMatrix residual too large")
	}
}

func TestFromRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func BenchmarkMul16(b *testing.B) {
	r := xrand.New(1)
	a := randomMatrix(r, 16)
	c := randomMatrix(r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkFactorSolve16(b *testing.B) {
	r := xrand.New(1)
	a := randomMatrix(r, 16)
	rhs := make([]float64, 16)
	for i := range rhs {
		rhs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Factor(a)
		if err != nil {
			b.Fatal(err)
		}
		f.Solve(rhs)
	}
}
