// Package linalg provides the small dense linear-algebra kernel used by the
// matrix-analytic solver and the CTMC engine.
//
// The matrices in this repository are tiny by numerical-computing standards
// (the QBD phase dimension is k+2 for the Inelastic-First chain and 3 for
// the Elastic-First chain), so clarity and numerical robustness win over
// blocking or SIMD tricks: LU with partial pivoting, straightforward
// triple-loop multiplication, and explicit error reporting for singular
// systems.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular reports that a linear system has no unique solution.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrShape reports incompatible matrix dimensions.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero-valued Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("linalg: non-positive matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty row set")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged row set")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Mul returns a*b. It panics on shape mismatch (a programming error, not a
// data error, in every call site of this repository).
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(ErrShape)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[kk*b.Cols : (kk+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// AddM returns a+b elementwise.
func AddM(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// SubM returns a-b elementwise.
func SubM(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s*a.
func Scale(s float64, a *Matrix) *Matrix {
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// MulVec returns a*x for a column vector x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns x^T * a for a row vector x.
func VecMul(x []float64, a *Matrix) []float64 {
	if a.Rows != len(x) {
		panic(ErrShape)
	}
	out := make([]float64, a.Cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|; it is the convergence metric for
// the R-matrix fixed-point iteration.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	max := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// InfNorm returns the maximum absolute row sum.
func (m *Matrix) InfNorm() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += math.Abs(m.At(i, j))
		}
		if s > max {
			max = s
		}
	}
	return max
}

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of a. It returns ErrSingular when a
// pivot underflows working precision.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in column at or below diag.
		p := col
		max := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if max < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[col*n+j] = lu.Data[col*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with a*x = b for the factored matrix.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(ErrShape)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve returns x with a*x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveMatrix returns X with a*X = B, solving column by column.
func SolveMatrix(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, ErrShape
	}
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(a.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x := f.Solve(col)
		for i := 0; i < a.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Inverse returns a^{-1}.
func Inverse(a *Matrix) (*Matrix, error) {
	return SolveMatrix(a, Identity(a.Rows))
}

// SpectralRadius estimates the largest-magnitude eigenvalue of a by power
// iteration. It is used to verify that the QBD rate matrix R satisfies
// sp(R) < 1 (the stability condition) before summing the geometric tail.
func SpectralRadius(a *Matrix, iters int) float64 {
	if a.Rows != a.Cols {
		panic(ErrShape)
	}
	n := a.Rows
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	radius := 0.0
	for it := 0; it < iters; it++ {
		y := MulVec(a, x)
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		x = y
		radius = norm
	}
	return radius
}
