// Package qbd solves quasi-birth-death Markov chains with matrix-analytic
// methods — the Section 5.3 machinery of the paper.
//
// A QBD is a CTMC whose states factor into a level (unbounded, here the
// queue length of one job class) and a phase (finite, here the busy-period
// Coxian stage plus any boundary structure). For levels at and above a
// repeating threshold the generator blocks are level-independent:
//
//	A0 (level up), A1 (local, with diagonal), A2 (level down).
//
// The stationary vector then has the matrix-geometric form
// pi_{r+n} = pi_r R^n, where R is the minimal nonnegative solution of
// A0 + R A1 + R^2 A2 = 0. This package computes R by functional iteration
// (the default) or by logarithmic reduction (the ablation variant), solves
// the finite boundary system, and exposes level moments in closed form.
package qbd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrNotConverged reports that an R-matrix iteration hit its cap.
var ErrNotConverged = errors.New("qbd: R iteration did not converge")

// ErrUnstable reports sp(R) >= 1, i.e. the chain has no stationary
// distribution.
var ErrUnstable = errors.New("qbd: spectral radius of R is >= 1 (unstable chain)")

// BoundaryLevel holds the generator blocks of one non-repeating level l:
// U maps level l to l+1, Local is the within-level block including the
// diagonal, and D maps level l to l-1 (nil for level 0).
type BoundaryLevel struct {
	U, Local, D *linalg.Matrix
}

// Chain is a QBD specification. Boundary lists levels 0..len(Boundary)-1;
// levels >= len(Boundary) repeat with blocks A0, A1, A2. The level
// len(Boundary) is the first repeating level; its inbound down-block (from
// level len(Boundary)+1) is A2 and its inbound up-block is the last boundary
// level's U.
type Chain struct {
	Phases     int
	Boundary   []BoundaryLevel
	A0, A1, A2 *linalg.Matrix
}

// Validate checks block shapes and that every level's generator rows sum to
// zero (within tol), which catches most construction bugs immediately.
func (c *Chain) Validate(tol float64) error {
	m := c.Phases
	if m <= 0 {
		return fmt.Errorf("qbd: non-positive phase count")
	}
	check := func(name string, mat *linalg.Matrix) error {
		if mat == nil {
			return fmt.Errorf("qbd: missing block %s", name)
		}
		if mat.Rows != m || mat.Cols != m {
			return fmt.Errorf("qbd: block %s is %dx%d, want %dx%d", name, mat.Rows, mat.Cols, m, m)
		}
		return nil
	}
	for _, name := range []string{"A0", "A1", "A2"} {
		var mat *linalg.Matrix
		switch name {
		case "A0":
			mat = c.A0
		case "A1":
			mat = c.A1
		case "A2":
			mat = c.A2
		}
		if err := check(name, mat); err != nil {
			return err
		}
	}
	if len(c.Boundary) == 0 {
		return fmt.Errorf("qbd: need at least boundary level 0")
	}
	// Row sums per level.
	rowSums := func(mats ...*linalg.Matrix) []float64 {
		sums := make([]float64, m)
		for _, mat := range mats {
			if mat == nil {
				continue
			}
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					sums[i] += mat.At(i, j)
				}
			}
		}
		return sums
	}
	for l, b := range c.Boundary {
		if err := check(fmt.Sprintf("Boundary[%d].U", l), b.U); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("Boundary[%d].Local", l), b.Local); err != nil {
			return err
		}
		if l == 0 {
			if b.D != nil {
				return fmt.Errorf("qbd: level 0 cannot have a down block")
			}
		} else if err := check(fmt.Sprintf("Boundary[%d].D", l), b.D); err != nil {
			return err
		}
		for i, s := range rowSums(b.U, b.Local, b.D) {
			if math.Abs(s) > tol {
				return fmt.Errorf("qbd: boundary level %d row %d sums to %g", l, i, s)
			}
		}
	}
	for i, s := range rowSums(c.A0, c.A1, c.A2) {
		if math.Abs(s) > tol {
			return fmt.Errorf("qbd: repeating row %d sums to %g", i, s)
		}
	}
	return nil
}

// RMethod selects the algorithm used to compute the rate matrix R.
type RMethod int

const (
	// FunctionalIteration iterates R <- -(A0 + R^2 A2) A1^{-1}; simple
	// and robust, linear convergence.
	FunctionalIteration RMethod = iota
	// LogarithmicReduction converges quadratically; the ablation
	// benchmark compares it against functional iteration.
	LogarithmicReduction
)

// SolveR computes the minimal nonnegative solution of A0 + R A1 + R^2 A2 = 0.
func SolveR(a0, a1, a2 *linalg.Matrix, method RMethod, tol float64, maxIter int) (*linalg.Matrix, error) {
	switch method {
	case FunctionalIteration:
		return solveRIteration(a0, a1, a2, tol, maxIter)
	case LogarithmicReduction:
		return solveRLogReduction(a0, a1, a2, tol, maxIter)
	}
	return nil, fmt.Errorf("qbd: unknown R method %d", method)
}

func solveRIteration(a0, a1, a2 *linalg.Matrix, tol float64, maxIter int) (*linalg.Matrix, error) {
	negA1Inv, err := linalg.Inverse(linalg.Scale(-1, a1))
	if err != nil {
		return nil, fmt.Errorf("qbd: A1 singular: %w", err)
	}
	r := linalg.Mul(a0, negA1Inv) // R_1 with R_0 = 0
	for iter := 0; iter < maxIter; iter++ {
		next := linalg.Mul(linalg.AddM(a0, linalg.Mul(linalg.Mul(r, r), a2)), negA1Inv)
		if linalg.MaxAbsDiff(next, r) < tol {
			return next, nil
		}
		r = next
	}
	return nil, ErrNotConverged
}

// solveRLogReduction implements the logarithmic-reduction algorithm of
// Latouche & Ramaswami for the G matrix, then converts to R via
// R = A0 (-A1 - A0 G)^{-1}.
func solveRLogReduction(a0, a1, a2 *linalg.Matrix, tol float64, maxIter int) (*linalg.Matrix, error) {
	negA1Inv, err := linalg.Inverse(linalg.Scale(-1, a1))
	if err != nil {
		return nil, fmt.Errorf("qbd: A1 singular: %w", err)
	}
	m := a0.Rows
	// Note the orientation: for computing G (first passage to the level
	// below), the "down" block drives the recursion.
	h := linalg.Mul(negA1Inv, a0) // up
	l := linalg.Mul(negA1Inv, a2) // down
	g := l.Clone()
	t := h.Clone()
	for iter := 0; iter < maxIter; iter++ {
		u := linalg.AddM(linalg.Mul(h, l), linalg.Mul(l, h))
		iu, err := linalg.Inverse(linalg.SubM(linalg.Identity(m), u))
		if err != nil {
			return nil, fmt.Errorf("qbd: log-reduction pivot singular: %w", err)
		}
		h = linalg.Mul(iu, linalg.Mul(h, h))
		l = linalg.Mul(iu, linalg.Mul(l, l))
		gNext := linalg.AddM(g, linalg.Mul(t, l))
		t = linalg.Mul(t, h)
		if linalg.MaxAbsDiff(gNext, g) < tol {
			g = gNext
			break
		}
		g = gNext
		if iter == maxIter-1 {
			return nil, ErrNotConverged
		}
	}
	denom, err := linalg.Inverse(linalg.Scale(-1, linalg.AddM(a1, linalg.Mul(a0, g))))
	if err != nil {
		return nil, fmt.Errorf("qbd: R conversion singular: %w", err)
	}
	return linalg.Mul(a0, denom), nil
}

// Solution is the stationary distribution of a QBD chain.
type Solution struct {
	// Pi holds pi_0 .. pi_r where r = len(Boundary) is the first
	// repeating level.
	Pi [][]float64
	// R is the rate matrix of the geometric tail.
	R *linalg.Matrix
	// IminusRInv caches (I-R)^{-1}.
	IminusRInv *linalg.Matrix
}

// Solve computes the stationary distribution. method selects the R
// algorithm.
func (c *Chain) Solve(method RMethod) (*Solution, error) {
	if err := c.Validate(1e-8); err != nil {
		return nil, err
	}
	m := c.Phases
	r, err := SolveR(c.A0, c.A1, c.A2, method, 1e-14, 1_000_000)
	if err != nil {
		return nil, err
	}
	if sp := linalg.SpectralRadius(r, 2000); sp >= 1-1e-10 {
		return nil, fmt.Errorf("%w: sp(R)=%g", ErrUnstable, sp)
	}
	iminusRInv, err := linalg.Inverse(linalg.SubM(linalg.Identity(m), r))
	if err != nil {
		return nil, err
	}

	// Unknowns: pi_0..pi_rs stacked, rs = len(Boundary).
	rs := len(c.Boundary)
	n := (rs + 1) * m
	a := linalg.NewMatrix(n, n) // transposed balance equations: a * x = b
	b := make([]float64, n)

	// Column block for the balance equations of level l:
	//   sum_l' pi_l' Q_{l',l} = 0.
	// Build as equations over x = (pi_0,...,pi_rs).
	eq := 0
	addBlock := func(eqBase int, varLevel int, block *linalg.Matrix) {
		if block == nil {
			return
		}
		for p := 0; p < m; p++ { // phase of varLevel (row of block)
			for q := 0; q < m; q++ { // phase of equation level (col)
				a.Add(eqBase+q, varLevel*m+p, block.At(p, q))
			}
		}
	}
	downInto := func(l int) *linalg.Matrix { // block from level l+1 down into l
		if l+1 < rs {
			return c.Boundary[l+1].D
		}
		return c.A2
	}
	localOf := func(l int) *linalg.Matrix {
		if l < rs {
			return c.Boundary[l].Local
		}
		return c.A1
	}
	upInto := func(l int) *linalg.Matrix { // block from level l-1 up into l
		if l-1 < rs {
			return c.Boundary[l-1].U
		}
		return c.A0
	}
	for l := 0; l <= rs; l++ {
		base := eq
		if l > 0 {
			addBlock(base, l-1, upInto(l))
		}
		if l < rs {
			addBlock(base, l, localOf(l))
			if l+1 <= rs {
				addBlock(base, l+1, downInto(l))
			}
		} else {
			// Level rs balance folds the geometric tail:
			// pi_{rs-1} U + pi_rs (A1 + R A2) = 0.
			addBlock(base, rs, linalg.AddM(c.A1, linalg.Mul(r, c.A2)))
		}
		eq += m
	}
	// Replace the last equation with normalization:
	// sum_{l<rs} pi_l 1 + pi_rs (I-R)^{-1} 1 = 1.
	last := n - 1
	for j := 0; j < n; j++ {
		a.Set(last, j, 0)
	}
	for l := 0; l < rs; l++ {
		for p := 0; p < m; p++ {
			a.Set(last, l*m+p, 1)
		}
	}
	rowSum1 := linalg.MulVec(iminusRInv, ones(m))
	for p := 0; p < m; p++ {
		a.Set(last, rs*m+p, rowSum1[p])
	}
	b[last] = 1

	// The balance equations are transposed (variables are row vectors):
	// we built sum_p x_p block[p][q] = 0, i.e. A^T x = b with our fill
	// pattern, which is already what linalg.Solve expects.
	x, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("qbd: boundary solve failed: %w", err)
	}
	sol := &Solution{R: r, IminusRInv: iminusRInv}
	for l := 0; l <= rs; l++ {
		sol.Pi = append(sol.Pi, x[l*m:(l+1)*m])
	}
	return sol, nil
}

// LevelProb returns the total stationary probability of level l.
func (s *Solution) LevelProb(l int) float64 {
	rs := len(s.Pi) - 1
	if l < rs {
		return sum(s.Pi[l])
	}
	// pi_{rs+n} = pi_rs R^n.
	v := append([]float64(nil), s.Pi[rs]...)
	for i := rs; i < l; i++ {
		v = linalg.VecMul(v, s.R)
	}
	return sum(v)
}

// PhaseMarginal returns the stationary phase distribution aggregated over
// all levels.
func (s *Solution) PhaseMarginal() []float64 {
	rs := len(s.Pi) - 1
	m := len(s.Pi[0])
	out := make([]float64, m)
	for l := 0; l < rs; l++ {
		for p, v := range s.Pi[l] {
			out[p] += v
		}
	}
	tail := linalg.VecMul(s.Pi[rs], s.IminusRInv)
	for p, v := range tail {
		out[p] += v
	}
	return out
}

// MeanLevel returns E[level] = sum_l l * P(level = l), evaluated in closed
// form over the geometric tail:
//
//	sum_{l<rs} l pi_l 1 + pi_rs [ rs (I-R)^{-1} + R (I-R)^{-2} ] 1.
func (s *Solution) MeanLevel() float64 {
	rs := len(s.Pi) - 1
	total := 0.0
	for l := 0; l < rs; l++ {
		total += float64(l) * sum(s.Pi[l])
	}
	m := len(s.Pi[0])
	tailA := linalg.Scale(float64(rs), s.IminusRInv)
	tailB := linalg.Mul(s.R, linalg.Mul(s.IminusRInv, s.IminusRInv))
	weights := linalg.MulVec(linalg.AddM(tailA, tailB), ones(m))
	for p, w := range weights {
		total += s.Pi[rs][p] * w
	}
	return total
}

// TotalProb returns the total probability mass (should be 1); exposed for
// verification in tests.
func (s *Solution) TotalProb() float64 {
	return sum(s.PhaseMarginal())
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func sum(v []float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}
