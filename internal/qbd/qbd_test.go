package qbd

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/queueing"
)

// mm1Chain encodes M/M/1 as a trivial one-phase QBD.
func mm1Chain(lambda, mu float64) *Chain {
	return &Chain{
		Phases: 1,
		Boundary: []BoundaryLevel{{
			U:     linalg.FromRows([][]float64{{lambda}}),
			Local: linalg.FromRows([][]float64{{-lambda}}),
		}},
		A0: linalg.FromRows([][]float64{{lambda}}),
		A1: linalg.FromRows([][]float64{{-(lambda + mu)}}),
		A2: linalg.FromRows([][]float64{{mu}}),
	}
}

func TestMM1AsQBD(t *testing.T) {
	lambda, mu := 0.6, 1.0
	sol, err := mm1Chain(lambda, mu).Solve(FunctionalIteration)
	if err != nil {
		t.Fatal(err)
	}
	q := queueing.NewMM1(lambda, mu)
	for n := 0; n < 15; n++ {
		if math.Abs(sol.LevelProb(n)-q.StationaryProb(n)) > 1e-10 {
			t.Fatalf("P(N=%d) = %v, want %v", n, sol.LevelProb(n), q.StationaryProb(n))
		}
	}
	if math.Abs(sol.MeanLevel()-q.MeanJobs()) > 1e-10 {
		t.Fatalf("E[N] = %v, want %v", sol.MeanLevel(), q.MeanJobs())
	}
	if math.Abs(sol.TotalProb()-1) > 1e-10 {
		t.Fatalf("total probability %v", sol.TotalProb())
	}
}

// TestMMkAsQBD uses a multi-level boundary: levels 0..k-1 have departure
// rate n*mu; levels >= k repeat with k*mu.
func TestMMkAsQBD(t *testing.T) {
	lambda, mu, k := 3.2, 1.0, 4
	boundary := make([]BoundaryLevel, k)
	for n := 0; n < k; n++ {
		b := BoundaryLevel{
			U:     linalg.FromRows([][]float64{{lambda}}),
			Local: linalg.FromRows([][]float64{{-(lambda + float64(n)*mu)}}),
		}
		if n > 0 {
			b.D = linalg.FromRows([][]float64{{float64(n) * mu}})
		}
		boundary[n] = b
	}
	c := &Chain{
		Phases:   1,
		Boundary: boundary,
		A0:       linalg.FromRows([][]float64{{lambda}}),
		A1:       linalg.FromRows([][]float64{{-(lambda + float64(k)*mu)}}),
		A2:       linalg.FromRows([][]float64{{float64(k) * mu}}),
	}
	sol, err := c.Solve(FunctionalIteration)
	if err != nil {
		t.Fatal(err)
	}
	q := queueing.NewMMk(lambda, mu, k)
	if math.Abs(sol.MeanLevel()-q.MeanJobs()) > 1e-9 {
		t.Fatalf("M/M/%d E[N]: qbd %v, formula %v", k, sol.MeanLevel(), q.MeanJobs())
	}
	for n := 0; n < 12; n++ {
		if math.Abs(sol.LevelProb(n)-q.StationaryProb(n)) > 1e-10 {
			t.Fatalf("P(N=%d): qbd %v, formula %v", n, sol.LevelProb(n), q.StationaryProb(n))
		}
	}
}

// mh2Chain encodes the M/H2/1 queue as a QBD: phase = branch of the
// hyperexponential service of the job at the head of the line.
func mh2Chain(lambda, p, mu1, mu2 float64) *Chain {
	a0 := linalg.FromRows([][]float64{{lambda, 0}, {0, lambda}})
	a1 := linalg.FromRows([][]float64{
		{-(lambda + mu1), 0},
		{0, -(lambda + mu2)},
	})
	// Service completion re-draws the next job's branch.
	a2 := linalg.FromRows([][]float64{
		{mu1 * p, mu1 * (1 - p)},
		{mu2 * p, mu2 * (1 - p)},
	})
	return &Chain{
		Phases: 2,
		Boundary: []BoundaryLevel{{
			U:     linalg.FromRows([][]float64{{lambda * p, lambda * (1 - p)}, {lambda * p, lambda * (1 - p)}}),
			Local: linalg.FromRows([][]float64{{-lambda, 0}, {0, -lambda}}),
		}},
		A0: a0, A1: a1, A2: a2,
	}
}

// TestMH21PollaczekKhinchine checks the two-phase solver against the M/G/1
// mean queue length formula.
func TestMH21PollaczekKhinchine(t *testing.T) {
	lambda, p, mu1, mu2 := 0.5, 0.4, 2.0, 0.5
	es := p/mu1 + (1-p)/mu2                    // 1.4
	es2 := 2 * (p/(mu1*mu1) + (1-p)/(mu2*mu2)) // 5.0
	rho := lambda * es
	wantN := rho + lambda*lambda*es2/(2*(1-rho))
	for _, method := range []RMethod{FunctionalIteration, LogarithmicReduction} {
		sol, err := mh2Chain(lambda, p, mu1, mu2).Solve(method)
		if err != nil {
			t.Fatalf("method %v: %v", method, err)
		}
		if math.Abs(sol.MeanLevel()-wantN) > 1e-8 {
			t.Fatalf("method %v: E[N] = %v, want %v", method, sol.MeanLevel(), wantN)
		}
	}
}

func TestRMethodsAgree(t *testing.T) {
	c := mh2Chain(0.5, 0.4, 2.0, 0.5)
	r1, err := SolveR(c.A0, c.A1, c.A2, FunctionalIteration, 1e-14, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SolveR(c.A0, c.A1, c.A2, LogarithmicReduction, 1e-14, 200)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.MaxAbsDiff(r1, r2) > 1e-10 {
		t.Fatalf("R matrices differ by %v", linalg.MaxAbsDiff(r1, r2))
	}
}

func TestRSatisfiesQuadratic(t *testing.T) {
	c := mh2Chain(0.7, 0.3, 3.0, 0.6)
	r, err := SolveR(c.A0, c.A1, c.A2, FunctionalIteration, 1e-14, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res := linalg.AddM(c.A0, linalg.AddM(linalg.Mul(r, c.A1), linalg.Mul(linalg.Mul(r, r), c.A2)))
	if res.InfNorm() > 1e-10 {
		t.Fatalf("residual of R equation %v", res.InfNorm())
	}
}

func TestUnstableDetected(t *testing.T) {
	// rho = 1.5 > 1.
	_, err := mm1Chain(1.5, 1.0).Solve(FunctionalIteration)
	if err == nil {
		t.Fatal("unstable chain solved without error")
	}
	if !errors.Is(err, ErrUnstable) && !errors.Is(err, ErrNotConverged) {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestValidateCatchesBadRowSums(t *testing.T) {
	c := mm1Chain(0.5, 1.0)
	c.A1 = linalg.FromRows([][]float64{{-1}}) // breaks conservation
	if err := c.Validate(1e-8); err == nil {
		t.Fatal("Validate accepted a non-conservative generator")
	}
}

func TestValidateShapeErrors(t *testing.T) {
	c := mm1Chain(0.5, 1.0)
	c.A0 = linalg.NewMatrix(2, 2)
	if err := c.Validate(1e-8); err == nil {
		t.Fatal("Validate accepted mismatched block shapes")
	}
	c = mm1Chain(0.5, 1.0)
	c.Boundary = nil
	if err := c.Validate(1e-8); err == nil {
		t.Fatal("Validate accepted empty boundary")
	}
	c = mm1Chain(0.5, 1.0)
	c.Boundary[0].D = linalg.FromRows([][]float64{{1}})
	if err := c.Validate(1e-8); err == nil {
		t.Fatal("Validate accepted a down block on level 0")
	}
}

func TestPhaseMarginalMH21(t *testing.T) {
	// Conditional on being busy, the in-service phase distribution of an
	// M/H2/1 is proportional to beta_i/mu_i (time in branch weighting).
	lambda, p, mu1, mu2 := 0.5, 0.4, 2.0, 0.5
	sol, err := mh2Chain(lambda, p, mu1, mu2).Solve(FunctionalIteration)
	if err != nil {
		t.Fatal(err)
	}
	marg := sol.PhaseMarginal()
	if math.Abs(sum(marg)-1) > 1e-10 {
		t.Fatalf("phase marginal sums to %v", sum(marg))
	}
	// Subtract the idle level (uniform across phases in our encoding).
	busy1 := marg[0] - sol.Pi[0][0]
	busy2 := marg[1] - sol.Pi[0][1]
	wantRatio := (p / mu1) / ((1 - p) / mu2)
	if math.Abs(busy1/busy2-wantRatio) > 1e-6 {
		t.Fatalf("busy phase ratio %v, want %v", busy1/busy2, wantRatio)
	}
}

func TestLevelProbDecays(t *testing.T) {
	sol, err := mm1Chain(0.8, 1.0).Solve(LogarithmicReduction)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < 30; n++ {
		if sol.LevelProb(n) >= sol.LevelProb(n-1) {
			t.Fatalf("level probabilities not decaying at %d", n)
		}
	}
}

func BenchmarkSolveRIteration(b *testing.B) {
	c := mh2Chain(0.9, 0.4, 2.0, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveR(c.A0, c.A1, c.A2, FunctionalIteration, 1e-13, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveRLogReduction(b *testing.B) {
	c := mh2Chain(0.9, 0.4, 2.0, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveR(c.A0, c.A1, c.A2, LogarithmicReduction, 1e-13, 200); err != nil {
			b.Fatal(err)
		}
	}
}
