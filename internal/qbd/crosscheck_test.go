package qbd

import (
	"math"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/linalg"
	"repro/internal/xrand"
)

// randomQBD builds a random stable 2-phase QBD: arrivals at rate lambda in
// both phases, phase-dependent service, random phase switching.
func randomQBD(r *xrand.Rand) (*Chain, float64, [2]float64, [2][2]float64) {
	lambda := 0.2 + 0.6*r.Float64()
	mu := [2]float64{lambda/(0.3+0.6*r.Float64()) + 0.2, lambda/(0.3+0.6*r.Float64()) + 0.2}
	// Ensure stability: mean service rate above lambda in both phases.
	sw := [2][2]float64{}
	sw[0][1] = 0.1 + r.Float64()
	sw[1][0] = 0.1 + r.Float64()

	a0 := linalg.FromRows([][]float64{{lambda, 0}, {0, lambda}})
	a2 := linalg.FromRows([][]float64{{mu[0], 0}, {0, mu[1]}})
	a1 := linalg.FromRows([][]float64{
		{-(lambda + mu[0] + sw[0][1]), sw[0][1]},
		{sw[1][0], -(lambda + mu[1] + sw[1][0])},
	})
	b := BoundaryLevel{
		U: a0.Clone(),
		Local: linalg.FromRows([][]float64{
			{-(lambda + sw[0][1]), sw[0][1]},
			{sw[1][0], -(lambda + sw[1][0])},
		}),
	}
	return &Chain{Phases: 2, Boundary: []BoundaryLevel{b}, A0: a0, A1: a1, A2: a2}, lambda, mu, sw
}

// buildEquivalentCTMC materializes the same process as a truncated sparse
// CTMC for the independent ground-truth solver.
func buildEquivalentCTMC(lambda float64, mu [2]float64, sw [2][2]float64, cap int) *ctmc.Chain {
	idx := func(level, phase int) int { return 2*level + phase }
	c := ctmc.New(2 * (cap + 1))
	for level := 0; level <= cap; level++ {
		for phase := 0; phase < 2; phase++ {
			s := idx(level, phase)
			if level < cap {
				c.AddRate(s, idx(level+1, phase), lambda)
			}
			if level > 0 {
				c.AddRate(s, idx(level-1, phase), mu[phase])
			}
			other := 1 - phase
			c.AddRate(s, idx(level, other), sw[phase][other])
		}
	}
	return c
}

// TestQBDMatchesCTMCOnRandomChains is the central cross-validation: the
// matrix-analytic solver and the sparse CTMC engine are fully independent
// implementations, so agreement on random chains pins both.
func TestQBDMatchesCTMCOnRandomChains(t *testing.T) {
	r := xrand.New(2024)
	for trial := 0; trial < 40; trial++ {
		chain, lambda, mu, sw := randomQBD(r)
		sol, err := chain.Solve(FunctionalIteration)
		if err != nil {
			// Random instance may be unstable; skip those.
			continue
		}
		const cap = 400
		ground := buildEquivalentCTMC(lambda, mu, sw, cap)
		pi, err := ground.StationaryDirect()
		if err != nil {
			t.Fatal(err)
		}
		for level := 0; level < 10; level++ {
			want := pi[2*level] + pi[2*level+1]
			got := sol.LevelProb(level)
			if math.Abs(got-want) > 1e-8 {
				t.Fatalf("trial %d level %d: qbd %v vs ctmc %v", trial, level, got, want)
			}
		}
		// Mean levels agree.
		meanCTMC := 0.0
		for level := 0; level <= cap; level++ {
			meanCTMC += float64(level) * (pi[2*level] + pi[2*level+1])
		}
		if math.Abs(sol.MeanLevel()-meanCTMC) > 1e-6*(1+meanCTMC) {
			t.Fatalf("trial %d: mean level qbd %v vs ctmc %v", trial, sol.MeanLevel(), meanCTMC)
		}
	}
}

// TestGeometricTailDecay: the tail decay ratio of level probabilities
// converges to the spectral radius of R.
func TestGeometricTailDecay(t *testing.T) {
	c := mh2Chain(0.7, 0.4, 2.0, 0.5)
	sol, err := c.Solve(FunctionalIteration)
	if err != nil {
		t.Fatal(err)
	}
	sp := linalg.SpectralRadius(sol.R, 2000)
	ratio := sol.LevelProb(40) / sol.LevelProb(39)
	if math.Abs(ratio-sp) > 1e-6 {
		t.Fatalf("tail decay %v vs sp(R) %v", ratio, sp)
	}
}
