package mrt

import (
	"testing"

	"repro/internal/ctmc"
	"repro/internal/queueing"
)

// TestEFAtK1AgainstPriorityOracle checks the full EF pipeline on one server
// against the closed-form preemptive-priority M/M/1: with k = 1,
// Elastic-First is exactly a two-class preemptive priority queue with the
// elastic class on top. The elastic side must match to machine precision;
// the inelastic side carries only the busy-period Coxian approximation.
func TestEFAtK1AgainstPriorityOracle(t *testing.T) {
	for _, tc := range []struct{ rho, muI, muE float64 }{
		{0.5, 1, 1},
		{0.7, 0.5, 1},
		{0.8, 2, 1},
		{0.9, 1, 2},
	} {
		p := params(1, tc.rho, tc.muI, tc.muE)
		res, err := EF(p, Coxian3Moment)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		oracle := queueing.NewPreemptiveMM1(p.LambdaE, p.MuE, p.LambdaI, p.MuI)
		if relErr(res.TE, oracle.MeanResponseHigh()) > 1e-12 {
			t.Fatalf("%+v: elastic side %v, oracle %v", tc, res.TE, oracle.MeanResponseHigh())
		}
		if relErr(res.TI, oracle.MeanResponseLow()) > 0.01 {
			t.Fatalf("%+v: inelastic side %v, oracle %v (err %.3f%%)",
				tc, res.TI, oracle.MeanResponseLow(), 100*relErr(res.TI, oracle.MeanResponseLow()))
		}
		if relErr(res.T, oracle.MeanResponse()) > 0.01 {
			t.Fatalf("%+v: overall %v, oracle %v", tc, res.T, oracle.MeanResponse())
		}
	}
}

// TestPriorityOracleAgainstChain pins the closed form itself against an
// exact truncated-chain solve, so the oracle and the pipeline are validated
// independently.
func TestPriorityOracleAgainstChain(t *testing.T) {
	p := params(1, 0.7, 0.5, 1.0)
	oracle := queueing.NewPreemptiveMM1(p.LambdaE, p.MuE, p.LambdaI, p.MuI)
	exact, err := ctmc.AutoSolvePolicy(toModel2D(p), ctmc.EFAlloc, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(oracle.MeanResponseLow(), exact.MeanTI) > 1e-6 {
		t.Fatalf("oracle low-class %v vs exact chain %v", oracle.MeanResponseLow(), exact.MeanTI)
	}
	if relErr(oracle.MeanResponseHigh(), exact.MeanTE) > 1e-6 {
		t.Fatalf("oracle high-class %v vs exact chain %v", oracle.MeanResponseHigh(), exact.MeanTE)
	}
}
