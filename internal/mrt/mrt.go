// Package mrt computes mean response times under the Elastic-First and
// Inelastic-First policies with the paper's Section 5 / Appendix D analysis
// pipeline:
//
//  1. The exact 2D-infinite chain (Figure 3a / 7a) is reduced to a
//     1D-infinite chain by replacing the periods during which one class
//     starves — an M/M/1 busy period — with special states (Figure 3b/7b).
//  2. The non-exponential busy period is represented by a Coxian-2 matched
//     on its first three moments (Figure 3c/7c; internal/busyperiod).
//  3. The resulting quasi-birth-death chain is solved with matrix-analytic
//     methods (internal/qbd), yielding the starved class's mean queue
//     length.
//  4. The favored class is exact in closed form: under EF the elastic class
//     is an M/M/1 with service rate k*muE; under IF the inelastic class is
//     an M/M/k.
//
// The paper reports this approximation matches simulation within 1%; the
// test suite and the validation benchmark reproduce that comparison.
package mrt

import (
	"errors"
	"fmt"

	"repro/internal/busyperiod"
	"repro/internal/dist"
	"repro/internal/linalg"
	"repro/internal/qbd"
	"repro/internal/queueing"
)

// ErrUnstable reports that the requested configuration has rho >= 1 (or a
// per-class stability violation).
var ErrUnstable = errors.New("mrt: configuration is unstable")

// Params carries the model parameters.
type Params struct {
	K                int
	LambdaI, LambdaE float64
	MuI, MuE         float64
}

// Rho returns the system load of Eq. 1.
func (p Params) Rho() float64 {
	return queueing.SystemLoad(p.K, p.LambdaI, p.MuI, p.LambdaE, p.MuE)
}

func (p Params) validate() error {
	if p.K < 1 || p.LambdaI <= 0 || p.LambdaE <= 0 || p.MuI <= 0 || p.MuE <= 0 {
		return fmt.Errorf("mrt: invalid parameters %+v", p)
	}
	if p.Rho() >= 1 {
		return fmt.Errorf("%w: rho=%g", ErrUnstable, p.Rho())
	}
	return nil
}

// BusyPeriodFit selects how the busy period is absorbed into the 1D chain.
type BusyPeriodFit int

const (
	// Coxian3Moment is the paper's choice: match three moments.
	Coxian3Moment BusyPeriodFit = iota
	// Exponential1Moment matches only the mean; ablation baseline.
	Exponential1Moment
)

// Result is the analytic output for one policy.
type Result struct {
	Policy string
	// T is the overall mean response time; TI and TE the per-class means.
	T, TI, TE float64
	// NI and NE are the per-class mean queue lengths (Little's law).
	NI, NE float64
}

// phaseCox is the busy-period phase structure shared by both chains: the
// fitted Coxian is either 2-phase (b1, b2) or effectively 1-phase when the
// fit degenerates (P = 0 at vanishing load).
type phaseCox struct {
	g1, g2, g3 float64 // b1->exit, b1->b2, b2->exit
}

func fitBusyPeriod(lambda, mu float64, fit BusyPeriodFit) (phaseCox, error) {
	bp := busyperiod.BusyPeriod{Lambda: lambda, Mu: mu}
	switch fit {
	case Coxian3Moment:
		c, err := bp.FitCoxian()
		if err != nil {
			return phaseCox{}, err
		}
		g1, g2, g3 := busyperiod.CoxianRates(c)
		return phaseCox{g1: g1, g2: g2, g3: g3}, nil
	case Exponential1Moment:
		e := bp.FitExponential()
		// One phase: b1 exits at the mean-matched rate; b2 unreachable.
		return phaseCox{g1: e.Rate, g2: 0, g3: 1}, nil
	}
	return phaseCox{}, fmt.Errorf("mrt: unknown busy-period fit %d", fit)
}

// EF computes mean response times under Elastic-First.
//
// Chain structure (Figure 3c): level = number of inelastic jobs; phases
// {0 = no elastic busy period, b1, b2}. Inelastic jobs are served only in
// phase 0 (at rate min(level, k)*muI); an elastic arrival in phase 0 starts
// a busy period of the elastic M/M/1 with service rate k*muE.
func EF(p Params, fit BusyPeriodFit) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	kmuE := float64(p.K) * p.MuE
	if p.LambdaE >= kmuE {
		return Result{}, fmt.Errorf("%w: elastic class overloaded under EF", ErrUnstable)
	}
	cox, err := fitBusyPeriod(p.LambdaE, kmuE, fit)
	if err != nil {
		return Result{}, err
	}

	const m = 3 // phases: 0, b1, b2
	phaseGen := func() *linalg.Matrix {
		g := linalg.NewMatrix(m, m)
		// 0 -> b1: elastic arrival opens a busy period.
		g.Add(0, 1, p.LambdaE)
		g.Add(0, 0, -p.LambdaE)
		// b1 -> 0 and b1 -> b2.
		g.Add(1, 0, cox.g1)
		g.Add(1, 2, cox.g2)
		g.Add(1, 1, -(cox.g1 + cox.g2))
		// b2 -> 0.
		g.Add(2, 0, cox.g3)
		g.Add(2, 2, -cox.g3)
		return g
	}

	mkLevel := func(downRate float64) qbd.BoundaryLevel {
		u := linalg.Scale(p.LambdaI, linalg.Identity(m))
		local := phaseGen()
		for ph := 0; ph < m; ph++ {
			local.Add(ph, ph, -p.LambdaI)
		}
		var d *linalg.Matrix
		if downRate > 0 {
			d = linalg.NewMatrix(m, m)
			d.Set(0, 0, downRate) // inelastic served only in phase 0
			local.Add(0, 0, -downRate)
		}
		return qbd.BoundaryLevel{U: u, Local: local, D: d}
	}

	boundary := make([]qbd.BoundaryLevel, p.K)
	for l := 0; l < p.K; l++ {
		boundary[l] = mkLevel(float64(l) * p.MuI)
	}
	rep := mkLevel(float64(p.K) * p.MuI)
	chain := &qbd.Chain{
		Phases:   m,
		Boundary: boundary,
		A0:       rep.U,
		A1:       rep.Local,
		A2:       rep.D,
	}
	sol, err := chain.Solve(qbd.FunctionalIteration)
	if err != nil {
		return Result{}, fmt.Errorf("mrt: EF chain solve: %w", err)
	}

	ni := sol.MeanLevel()
	ti := ni / p.LambdaI
	te := queueing.NewMM1(p.LambdaE, kmuE).MeanResponse()
	ne := p.LambdaE * te
	return Result{
		Policy: "EF",
		TI:     ti, TE: te, NI: ni, NE: ne,
		T: (p.LambdaI*ti + p.LambdaE*te) / (p.LambdaI + p.LambdaE),
	}, nil
}

// IF computes mean response times under Inelastic-First.
//
// Chain structure (Figure 7c): level = number of elastic jobs; phases
// {0..k-1 = number of inelastic jobs, b1, b2 = the excess period with >= k
// inelastic jobs}. Elastic jobs are served at rate (k-i)*muE in phase i and
// not at all during the excess period, which is an M/M/1 busy period with
// arrival lambdaI and service rate k*muI.
func IF(p Params, fit BusyPeriodFit) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	kmuI := float64(p.K) * p.MuI
	if p.LambdaI >= kmuI {
		return Result{}, fmt.Errorf("%w: inelastic class overloaded under IF", ErrUnstable)
	}
	cox, err := fitBusyPeriod(p.LambdaI, kmuI, fit)
	if err != nil {
		return Result{}, err
	}

	m := p.K + 2 // phases 0..k-1, b1 = k, b2 = k+1
	b1, b2 := p.K, p.K+1
	phaseGen := func() *linalg.Matrix {
		g := linalg.NewMatrix(m, m)
		for i := 0; i < p.K; i++ {
			// Inelastic arrival.
			if i < p.K-1 {
				g.Add(i, i+1, p.LambdaI)
			} else {
				g.Add(i, b1, p.LambdaI)
			}
			g.Add(i, i, -p.LambdaI)
			// Inelastic departure.
			if i > 0 {
				g.Add(i, i-1, float64(i)*p.MuI)
				g.Add(i, i, -float64(i)*p.MuI)
			}
		}
		// Excess-period Coxian: exits return to k-1 inelastic jobs.
		g.Add(b1, p.K-1, cox.g1)
		g.Add(b1, b2, cox.g2)
		g.Add(b1, b1, -(cox.g1 + cox.g2))
		g.Add(b2, p.K-1, cox.g3)
		g.Add(b2, b2, -cox.g3)
		return g
	}

	elasticRate := func(ph int) float64 {
		if ph >= p.K {
			return 0 // starved during the excess period
		}
		return float64(p.K-ph) * p.MuE
	}

	// Boundary level 0: no elastic jobs, no down transitions.
	local0 := phaseGen()
	for ph := 0; ph < m; ph++ {
		local0.Add(ph, ph, -p.LambdaE)
	}
	boundary := []qbd.BoundaryLevel{{
		U:     linalg.Scale(p.LambdaE, linalg.Identity(m)),
		Local: local0,
	}}

	// Repeating levels >= 1.
	a1 := phaseGen()
	a2 := linalg.NewMatrix(m, m)
	for ph := 0; ph < m; ph++ {
		a1.Add(ph, ph, -p.LambdaE)
		if r := elasticRate(ph); r > 0 {
			a2.Set(ph, ph, r)
			a1.Add(ph, ph, -r)
		}
	}
	chain := &qbd.Chain{
		Phases:   m,
		Boundary: boundary,
		A0:       linalg.Scale(p.LambdaE, linalg.Identity(m)),
		A1:       a1,
		A2:       a2,
	}
	sol, err := chain.Solve(qbd.FunctionalIteration)
	if err != nil {
		return Result{}, fmt.Errorf("mrt: IF chain solve: %w", err)
	}

	ne := sol.MeanLevel()
	te := ne / p.LambdaE
	ti := queueing.NewMMk(p.LambdaI, p.MuI, p.K).MeanResponse()
	ni := p.LambdaI * ti
	return Result{
		Policy: "IF",
		TI:     ti, TE: te, NI: ni, NE: ne,
		T: (p.LambdaI*ti + p.LambdaE*te) / (p.LambdaI + p.LambdaE),
	}, nil
}

// Analyze computes both policies with the paper's three-moment fit.
func Analyze(p Params) (ifRes, efRes Result, err error) {
	ifRes, err = IF(p, Coxian3Moment)
	if err != nil {
		return Result{}, Result{}, err
	}
	efRes, err = EF(p, Coxian3Moment)
	if err != nil {
		return Result{}, Result{}, err
	}
	return ifRes, efRes, nil
}

// CoxianPhases exposes the fitted busy-period structure for inspection and
// documentation tooling.
func CoxianPhases(lambda, mu float64) (dist.Coxian2, error) {
	return busyperiod.BusyPeriod{Lambda: lambda, Mu: mu}.FitCoxian()
}
