package mrt

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/queueing"
)

func params(k int, rho, muI, muE float64) Params {
	lI, lE := queueing.RatesForLoad(k, rho, muI, muE)
	return Params{K: k, LambdaI: lI, LambdaE: lE, MuI: muI, MuE: muE}
}

func toModel2D(p Params) ctmc.Model2D {
	return ctmc.Model2D{K: p.K, LambdaI: p.LambdaI, LambdaE: p.LambdaE, MuI: p.MuI, MuE: p.MuE}
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }

// TestEFMatchesGroundTruth compares the busy-period/QBD analysis of EF
// against exact solves of the truncated 2D chain over a parameter sweep.
// The paper reports agreement within 1%.
func TestEFMatchesGroundTruth(t *testing.T) {
	for _, tc := range []struct{ rho, muI, muE float64 }{
		{0.5, 1, 1},
		{0.7, 2, 1},
		{0.7, 0.5, 1},
		{0.9, 1, 1},
		{0.5, 3, 0.5},
	} {
		p := params(4, tc.rho, tc.muI, tc.muE)
		got, err := EF(p, Coxian3Moment)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := ctmc.AutoSolvePolicy(toModel2D(p), ctmc.EFAlloc, 1e-11)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(got.T, want.MeanT) > 0.01 {
			t.Fatalf("%+v: EF E[T] analysis %v vs exact %v (err %.2f%%)",
				tc, got.T, want.MeanT, 100*relErr(got.T, want.MeanT))
		}
		// The elastic side must be exact (it is a closed-form M/M/1).
		if relErr(got.TE, want.MeanTE) > 0.002 {
			t.Fatalf("%+v: EF E[T_E] %v vs exact %v", tc, got.TE, want.MeanTE)
		}
	}
}

// TestIFMatchesGroundTruth does the same for IF.
func TestIFMatchesGroundTruth(t *testing.T) {
	for _, tc := range []struct{ rho, muI, muE float64 }{
		{0.5, 1, 1},
		{0.7, 2, 1},
		{0.7, 0.5, 1},
		{0.9, 1, 1},
		{0.5, 3, 0.5},
	} {
		p := params(4, tc.rho, tc.muI, tc.muE)
		got, err := IF(p, Coxian3Moment)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want, err := ctmc.AutoSolvePolicy(toModel2D(p), ctmc.IFAlloc, 1e-11)
		if err != nil {
			t.Fatal(err)
		}
		if relErr(got.T, want.MeanT) > 0.01 {
			t.Fatalf("%+v: IF E[T] analysis %v vs exact %v (err %.2f%%)",
				tc, got.T, want.MeanT, 100*relErr(got.T, want.MeanT))
		}
		// The inelastic side must be exact (M/M/k).
		if relErr(got.TI, want.MeanTI) > 0.002 {
			t.Fatalf("%+v: IF E[T_I] %v vs exact %v", tc, got.TI, want.MeanTI)
		}
	}
}

func TestEFElasticSideIsMM1(t *testing.T) {
	p := params(4, 0.7, 1, 1)
	res, err := EF(p, Coxian3Moment)
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.NewMM1(p.LambdaE, 4*p.MuE).MeanResponse()
	if math.Abs(res.TE-want) > 1e-12 {
		t.Fatalf("EF elastic E[T] %v, want %v", res.TE, want)
	}
}

func TestIFInelasticSideIsMMk(t *testing.T) {
	p := params(4, 0.7, 1, 1)
	res, err := IF(p, Coxian3Moment)
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.NewMMk(p.LambdaI, p.MuI, 4).MeanResponse()
	if math.Abs(res.TI-want) > 1e-12 {
		t.Fatalf("IF inelastic E[T] %v, want %v", res.TI, want)
	}
}

func TestK1EdgeCase(t *testing.T) {
	// On one server elastic and inelastic jobs are interchangeable; both
	// chains must still solve and IF must match the exact chain.
	p := params(1, 0.6, 1.5, 1)
	ifRes, efRes, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctmc.AutoSolvePolicy(toModel2D(p), ctmc.IFAlloc, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ifRes.T, want.MeanT) > 0.01 {
		t.Fatalf("k=1 IF %v vs exact %v", ifRes.T, want.MeanT)
	}
	if efRes.T <= 0 {
		t.Fatalf("k=1 EF nonsense %v", efRes.T)
	}
}

func TestTheorem5OrderingInAnalysis(t *testing.T) {
	// Whenever muI >= muE, the analysis must rank IF <= EF.
	for _, muI := range []float64{1.0, 1.5, 2.5, 3.5} {
		for _, rho := range []float64{0.5, 0.7, 0.9} {
			p := params(4, rho, muI, 1.0)
			ifRes, efRes, err := Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			if ifRes.T > efRes.T*(1+1e-6) {
				t.Fatalf("muI=%v rho=%v: IF %v > EF %v violates Theorem 5",
					muI, rho, ifRes.T, efRes.T)
			}
		}
	}
}

func TestEFWinsSomewhere(t *testing.T) {
	// Figure 4c's blue region: at high load and muI << muE, EF wins.
	p := params(4, 0.9, 0.25, 1.0)
	ifRes, efRes, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if efRes.T >= ifRes.T {
		t.Fatalf("expected EF (%v) < IF (%v) at muI=0.25, rho=0.9", efRes.T, ifRes.T)
	}
}

// TestAblationThreeMomentsBeatTwo verifies the design choice the paper
// makes: the Coxian 3-moment busy-period fit tracks the exact chain better
// than a mean-only exponential replacement.
func TestAblationThreeMomentsBeatOne(t *testing.T) {
	p := params(4, 0.8, 1, 1)
	exact, err := ctmc.AutoSolvePolicy(toModel2D(p), ctmc.EFAlloc, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	cox, err := EF(p, Coxian3Moment)
	if err != nil {
		t.Fatal(err)
	}
	expo, err := EF(p, Exponential1Moment)
	if err != nil {
		t.Fatal(err)
	}
	errCox := relErr(cox.T, exact.MeanT)
	errExp := relErr(expo.T, exact.MeanT)
	if errCox >= errExp {
		t.Fatalf("3-moment fit (err %v) not better than 1-moment (err %v)", errCox, errExp)
	}
	if errCox > 0.01 {
		t.Fatalf("3-moment fit error %v exceeds the paper's 1%% claim", errCox)
	}
}

func TestUnstableRejected(t *testing.T) {
	p := Params{K: 2, LambdaI: 3, LambdaE: 1, MuI: 1, MuE: 1}
	if _, err := IF(p, Coxian3Moment); !errors.Is(err, ErrUnstable) {
		t.Fatalf("expected ErrUnstable, got %v", err)
	}
	if _, err := EF(p, Coxian3Moment); !errors.Is(err, ErrUnstable) {
		t.Fatalf("expected ErrUnstable, got %v", err)
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	if _, err := IF(Params{K: 0, LambdaI: 1, LambdaE: 1, MuI: 1, MuE: 1}, Coxian3Moment); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := EF(Params{K: 2, LambdaI: -1, LambdaE: 1, MuI: 1, MuE: 1}, Coxian3Moment); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestResultInternallyConsistent(t *testing.T) {
	p := params(4, 0.7, 2, 1)
	ifRes, efRes, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{ifRes, efRes} {
		// Little's law on each class.
		if relErr(r.NI, p.LambdaI*r.TI) > 1e-9 {
			t.Fatalf("%s: N_I inconsistent with Little", r.Policy)
		}
		if relErr(r.NE, p.LambdaE*r.TE) > 1e-9 {
			t.Fatalf("%s: N_E inconsistent with Little", r.Policy)
		}
		// Overall T is the arrival-rate-weighted mix.
		want := (p.LambdaI*r.TI + p.LambdaE*r.TE) / (p.LambdaI + p.LambdaE)
		if relErr(r.T, want) > 1e-12 {
			t.Fatalf("%s: overall T mix wrong", r.Policy)
		}
	}
}

func TestCoxianPhasesExposed(t *testing.T) {
	c, err := CoxianPhases(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Mean()-2) > 1e-9 {
		t.Fatalf("exposed Coxian mean %v", c.Mean())
	}
}
