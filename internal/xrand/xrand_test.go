package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different streams produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// The child must not replay the parent's sequence.
	p2 := New(5)
	p2.Uint64()
	p2.Uint64() // Split consumed two parent draws.
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split child tracks parent sequence (%d/100 collisions)", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		o := r.Float64Open()
		if o <= 0 || o >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", o)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 5*math.Sqrt(n/7.0) {
			t.Fatalf("bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	const n = 400000
	rate := 2.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	m2 := sumSq / n
	if math.Abs(mean-1/rate) > 0.005 {
		t.Fatalf("Exp mean %v, want %v", mean, 1/rate)
	}
	// Second moment of Exp(rate) is 2/rate^2.
	if math.Abs(m2-2/(rate*rate)) > 0.01 {
		t.Fatalf("Exp second moment %v, want %v", m2, 2/(rate*rate))
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const n = 400000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Normal mean %v, want 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Normal variance %v, want 1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 80} {
		r := New(uint64(100 + mean))
		const n = 200000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.02 {
			t.Fatalf("Poisson(%v) mean %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.08*mean+0.05 {
			t.Fatalf("Poisson(%v) variance %v", mean, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, rate float64 }{{0.5, 1}, {2, 3}, {9, 0.5}} {
		r := New(uint64(1000*tc.shape) + uint64(tc.rate))
		const n = 300000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := r.Gamma(tc.shape, tc.rate)
			if v < 0 {
				t.Fatalf("Gamma returned negative %v", v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := tc.shape / tc.rate
		wantVar := tc.shape / (tc.rate * tc.rate)
		if math.Abs(mean-wantMean) > 0.03*wantMean {
			t.Fatalf("Gamma(%v,%v) mean %v want %v", tc.shape, tc.rate, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar {
			t.Fatalf("Gamma(%v,%v) variance %v want %v", tc.shape, tc.rate, variance, wantVar)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(n uint8) bool {
		size := int(n%32) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", freq)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Chi-square over the top 4 bits.
	r := New(31)
	counts := make([]int, 16)
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Uint64()>>60]++
	}
	expected := float64(n) / 16
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is about 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-square statistic %v indicates non-uniform top bits", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(1)
	}
	_ = sink
}
