package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Cache stores completed cell results keyed by Sweep.Key. The dispatcher
// only ever writes fully-completed cells (all replications aggregated), so a
// cache left behind by a canceled or crashed sweep is still consistent:
// re-running the same sweep recomputes exactly the missing cells and reuses
// the rest.
type Cache interface {
	Get(key string) (CellResult, bool)
	Put(key string, cr CellResult) error
}

// MemCache is an in-memory Cache, safe for concurrent use.
type MemCache struct {
	mu sync.RWMutex
	m  map[string]CellResult
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: map[string]CellResult{}} }

// Get implements Cache.
func (c *MemCache) Get(key string) (CellResult, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cr, ok := c.m[key]
	return cr, ok
}

// Put implements Cache.
func (c *MemCache) Put(key string, cr CellResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = cr
	return nil
}

// Len returns the number of cached cells.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// FileCache is a Cache persisted as JSON lines — one completed cell per
// line, appended and flushed as each cell finishes, so an interrupted sweep
// loses at most the in-flight cells. A corrupt line (e.g. truncated by a
// hard kill mid-append) is skipped on load: cached entries are only an
// optimization, never the source of truth.
type FileCache struct {
	mu   sync.Mutex
	path string
	mem  map[string]CellResult
}

type fileCacheRecord struct {
	Key    string     `json:"key"`
	Result CellResult `json:"result"`
}

// OpenFileCache loads (or creates on first Put) the cache at path.
func OpenFileCache(path string) (*FileCache, error) {
	fc := &FileCache{path: path, mem: map[string]CellResult{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fc, nil
		}
		return nil, fmt.Errorf("exp: opening cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec fileCacheRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // skip corrupt lines; see type comment
		}
		fc.mem[rec.Key] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("exp: reading cache %s: %w", path, err)
	}
	return fc, nil
}

// Get implements Cache.
func (c *FileCache) Get(key string) (CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cr, ok := c.mem[key]
	return cr, ok
}

// Put implements Cache: the record is appended to the file and fsynced
// before the in-memory index is updated.
func (c *FileCache) Put(key string, cr CellResult) error {
	line, err := json.Marshal(fileCacheRecord{Key: key, Result: cr})
	if err != nil {
		return fmt.Errorf("exp: encoding cache record: %w", err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	f, err := os.OpenFile(c.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("exp: opening cache for append: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("exp: appending cache record: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("exp: syncing cache: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("exp: closing cache: %w", err)
	}
	c.mem[key] = cr
	return nil
}

// Len returns the number of cached cells.
func (c *FileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}
