package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/lru"
)

// Cache stores completed cell results keyed by Sweep.Key. The dispatcher
// only ever writes fully-completed cells (all replications aggregated), so a
// cache left behind by a canceled or crashed sweep is still consistent:
// re-running the same sweep recomputes exactly the missing cells and reuses
// the rest.
type Cache interface {
	Get(key string) (CellResult, bool)
	Put(key string, cr CellResult) error
}

// OutcomeCache stores individual task outcomes keyed by TaskKey — finer
// grained than Cache (one entry per task, not per aggregated cell), which is
// what lets the point drivers (figures, validation, ablation, dominance)
// memoize their work: those tasks never belong to a Sweep cell, so Cache
// cannot hold them. FileCache implements both interfaces over one file.
type OutcomeCache interface {
	GetOutcome(key string) (Outcome, bool)
	PutOutcome(key string, out Outcome) error
}

// Default caps of NewMemCache. A CellResult with a handful of replications
// runs a few KB of JSON, so 32Ki entries under a 256 MiB byte cap holds any
// realistic working set while bounding a sustained distinct-spec load.
const (
	defaultMemCacheEntries = 1 << 15
	defaultMemCacheBytes   = 256 << 20
)

// MemCache is an in-memory Cache bounded by entry count and accounted bytes
// with LRU eviction (internal/lru); entries are accounted at their JSON
// size. Safe for concurrent use.
type MemCache struct {
	c *lru.Cache[CellResult]
}

// NewMemCache returns an in-memory cache with the default caps.
func NewMemCache() *MemCache {
	return NewMemCacheSized(defaultMemCacheEntries, defaultMemCacheBytes)
}

// NewMemCacheSized returns an in-memory cache capped at maxEntries entries
// and maxBytes accounted bytes; a cap <= 0 leaves that axis unbounded.
func NewMemCacheSized(maxEntries int, maxBytes int64) *MemCache {
	return &MemCache{c: lru.New[CellResult](maxEntries, maxBytes)}
}

// Get implements Cache.
func (c *MemCache) Get(key string) (CellResult, bool) { return c.c.Get(key) }

// Put implements Cache.
func (c *MemCache) Put(key string, cr CellResult) error {
	c.c.Put(key, cr, jsonSize(key, cr))
	return nil
}

// Len returns the number of cached cells.
func (c *MemCache) Len() int { return c.c.Len() }

// Stats snapshots the hit/miss/eviction counters and occupancy.
func (c *MemCache) Stats() lru.Stats { return c.c.Stats() }

// jsonSize accounts a cached value's footprint as its JSON size plus its
// key — the same bytes it would occupy in a FileCache, a stable proxy for
// the in-memory footprint that needs no unsafe introspection.
func jsonSize(key string, v any) int64 {
	b, err := json.Marshal(v)
	if err != nil {
		return int64(len(key))
	}
	return int64(len(key) + len(b))
}

// FileCache persists results as JSON lines — one completed cell (or task
// outcome, see PutOutcome) per line, appended and flushed as each finishes,
// so an interrupted sweep loses at most the in-flight entries. A corrupt
// line (e.g. truncated by a hard kill mid-append) is skipped on load and
// counted (Corrupt): cached entries are only an optimization, never the
// source of truth.
//
// Concurrency contract: within one process the cache is safe for any
// number of goroutines. Across processes, the file is opened O_APPEND and
// every record is a single write(2), so concurrent appenders on a local
// (POSIX) filesystem never interleave records — but each process only sees
// the entries that existed when it opened the cache, and duplicate keys
// resolve last-line-wins on the next load. The supported arrangement is
// one writer per sweep: exp.ProcBackend keeps it that way by design, since
// only the submitting process touches the cache and workers never see its
// path. Do not share a cache file over NFS.
type FileCache struct {
	mu      sync.Mutex
	path    string
	f       *os.File // lazily-opened O_APPEND handle, held for the cache's lifetime
	mem     map[string]CellResult
	outMem  map[string]Outcome
	corrupt int
}

// fileCacheRecord is one line of the file: a cell record sets Result, a
// task-outcome record sets Out. Cell records marshal byte-identically to
// the pre-outcome format, so existing cache files load unchanged.
type fileCacheRecord struct {
	Key    string      `json:"key"`
	Result *CellResult `json:"result,omitempty"`
	Out    *Outcome    `json:"out,omitempty"`
}

// OpenFileCache loads (or creates on first Put) the cache at path.
func OpenFileCache(path string) (*FileCache, error) {
	fc := &FileCache{path: path, mem: map[string]CellResult{}, outMem: map[string]Outcome{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fc, nil
		}
		return nil, fmt.Errorf("exp: opening cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec fileCacheRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			fc.corrupt++ // skip but count corrupt lines; see type comment
			continue
		}
		switch {
		case rec.Result != nil:
			fc.mem[rec.Key] = *rec.Result
		case rec.Out != nil:
			fc.outMem[rec.Key] = *rec.Out
		default:
			fc.corrupt++ // a record carrying neither kind is as useless as an undecodable one
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("exp: reading cache %s: %w", path, err)
	}
	return fc, nil
}

// Get implements Cache.
func (c *FileCache) Get(key string) (CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cr, ok := c.mem[key]
	return cr, ok
}

// Put implements Cache: the record is appended to the file — through a
// persistent O_APPEND handle, one write(2) per record — and fsynced before
// the in-memory index is updated.
func (c *FileCache) Put(key string, cr CellResult) error {
	if err := c.appendRecord(fileCacheRecord{Key: key, Result: &cr}); err != nil {
		return err
	}
	c.mu.Lock()
	c.mem[key] = cr
	c.mu.Unlock()
	return nil
}

// GetOutcome implements OutcomeCache.
func (c *FileCache) GetOutcome(key string) (Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.outMem[key]
	return out, ok
}

// PutOutcome implements OutcomeCache; outcome records share the cell
// records' file and durability discipline.
func (c *FileCache) PutOutcome(key string, out Outcome) error {
	if err := c.appendRecord(fileCacheRecord{Key: key, Out: &out}); err != nil {
		return err
	}
	c.mu.Lock()
	c.outMem[key] = out
	c.mu.Unlock()
	return nil
}

// appendRecord writes one record through the persistent handle and fsyncs.
func (c *FileCache) appendRecord(rec fileCacheRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("exp: encoding cache record: %w", err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		f, err := os.OpenFile(c.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("exp: opening cache for append: %w", err)
		}
		c.f = f
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("exp: appending cache record: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("exp: syncing cache: %w", err)
	}
	return nil
}

// Close releases the append handle; Get keeps serving from memory and the
// next Put reopens the file. A zero-Put cache never created or opened the
// file, and Close on it is a no-op.
func (c *FileCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	if err != nil {
		return fmt.Errorf("exp: closing cache: %w", err)
	}
	return nil
}

// Len returns the number of cached cells (outcome records not included).
func (c *FileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// OutcomeLen returns the number of cached task outcomes.
func (c *FileCache) OutcomeLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.outMem)
}

// Corrupt reports how many undecodable lines the load skipped — nonzero
// after a hard kill mid-append or a concurrent-writer interleaving, and
// worth surfacing to the user (see CorruptWarning).
func (c *FileCache) Corrupt() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupt
}

// CorruptWarning renders the standard corrupt-cache warning, or "" when the
// load skipped nothing. Every cache-flagged cmd (simulate, figures,
// dominance) reports through it, so a mangled cache file reads identically
// everywhere.
func CorruptWarning(path string, skipped int) string {
	if skipped <= 0 {
		return ""
	}
	return fmt.Sprintf("warning: cache %s: skipped %d corrupt line(s); the affected entries will be recomputed", path, skipped)
}
