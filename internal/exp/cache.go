package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Cache stores completed cell results keyed by Sweep.Key. The dispatcher
// only ever writes fully-completed cells (all replications aggregated), so a
// cache left behind by a canceled or crashed sweep is still consistent:
// re-running the same sweep recomputes exactly the missing cells and reuses
// the rest.
type Cache interface {
	Get(key string) (CellResult, bool)
	Put(key string, cr CellResult) error
}

// MemCache is an in-memory Cache, safe for concurrent use.
type MemCache struct {
	mu sync.RWMutex
	m  map[string]CellResult
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: map[string]CellResult{}} }

// Get implements Cache.
func (c *MemCache) Get(key string) (CellResult, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cr, ok := c.m[key]
	return cr, ok
}

// Put implements Cache.
func (c *MemCache) Put(key string, cr CellResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = cr
	return nil
}

// Len returns the number of cached cells.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// FileCache is a Cache persisted as JSON lines — one completed cell per
// line, appended and flushed as each cell finishes, so an interrupted sweep
// loses at most the in-flight cells. A corrupt line (e.g. truncated by a
// hard kill mid-append) is skipped on load and counted (Corrupt): cached
// entries are only an optimization, never the source of truth.
//
// Concurrency contract: within one process the cache is safe for any
// number of goroutines. Across processes, the file is opened O_APPEND and
// every record is a single write(2), so concurrent appenders on a local
// (POSIX) filesystem never interleave records — but each process only sees
// the entries that existed when it opened the cache, and duplicate keys
// resolve last-line-wins on the next load. The supported arrangement is
// one writer per sweep: exp.ProcBackend keeps it that way by design, since
// only the submitting process touches the cache and workers never see its
// path. Do not share a cache file over NFS.
type FileCache struct {
	mu      sync.Mutex
	path    string
	f       *os.File // lazily-opened O_APPEND handle, held for the cache's lifetime
	mem     map[string]CellResult
	corrupt int
}

type fileCacheRecord struct {
	Key    string     `json:"key"`
	Result CellResult `json:"result"`
}

// OpenFileCache loads (or creates on first Put) the cache at path.
func OpenFileCache(path string) (*FileCache, error) {
	fc := &FileCache{path: path, mem: map[string]CellResult{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fc, nil
		}
		return nil, fmt.Errorf("exp: opening cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec fileCacheRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			fc.corrupt++ // skip but count corrupt lines; see type comment
			continue
		}
		fc.mem[rec.Key] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("exp: reading cache %s: %w", path, err)
	}
	return fc, nil
}

// Get implements Cache.
func (c *FileCache) Get(key string) (CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cr, ok := c.mem[key]
	return cr, ok
}

// Put implements Cache: the record is appended to the file — through a
// persistent O_APPEND handle, one write(2) per record — and fsynced before
// the in-memory index is updated.
func (c *FileCache) Put(key string, cr CellResult) error {
	line, err := json.Marshal(fileCacheRecord{Key: key, Result: cr})
	if err != nil {
		return fmt.Errorf("exp: encoding cache record: %w", err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		f, err := os.OpenFile(c.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("exp: opening cache for append: %w", err)
		}
		c.f = f
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("exp: appending cache record: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("exp: syncing cache: %w", err)
	}
	c.mem[key] = cr
	return nil
}

// Close releases the append handle; Get keeps serving from memory and the
// next Put reopens the file. A zero-Put cache never created or opened the
// file, and Close on it is a no-op.
func (c *FileCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	if err != nil {
		return fmt.Errorf("exp: closing cache: %w", err)
	}
	return nil
}

// Len returns the number of cached cells.
func (c *FileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Corrupt reports how many undecodable lines the load skipped — nonzero
// after a hard kill mid-append or a concurrent-writer interleaving, and
// worth surfacing to the user (cmd/simulate warns when it is not zero).
func (c *FileCache) Corrupt() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupt
}
