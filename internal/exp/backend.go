package exp

// This file is the dispatch seam of the experiment layer: it separates
// *what* to run (a serializable Task) from *where* it runs (a Backend).
// Everything a task needs is carried in plain JSON-round-trippable values —
// cells, policies, mixes and speedup functions are referenced by name and
// reconstructed on the executing side — so the same task runs bit-identically
// on a goroutine of this process (PoolBackend), in a worker subprocess
// (ProcBackend), or, eventually, on another host.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mrt"
	"repro/internal/sim"
)

// ErrBackendUnavailable marks a Submit failure caused by the backend being
// unreachable (a networked dispatcher that stayed down past the client's
// redial budget) rather than by the work itself. Serving layers match it
// with errors.Is to degrade gracefully — keep answering from cache, tell
// clients to retry later — instead of treating the outage like a
// deterministic task failure.
var ErrBackendUnavailable = errors.New("exp: backend unavailable")

// TaskSpec identifies one (cell, replication) simulation task of a Sweep.
// It is fully serializable: Cell carries only names and scalars, and Seed
// and Key are precomputed by the submitting side so the executing side can
// cross-check that serialization preserved the seeding and cache-key
// contract exactly.
type TaskSpec struct {
	Cell Cell `json:"cell"`
	// Rep is the replication index within the cell.
	Rep int `json:"rep"`
	// Seed is sw.RepSeed(Cell, Rep) as computed by the submitter; the
	// executor recomputes it and refuses to run on a mismatch (which would
	// mean the cell did not survive serialization bit-exactly).
	Seed uint64 `json:"seed"`
	// Key is sw.Key(Cell), the cache key of the owning cell, cross-checked
	// like Seed.
	Key string `json:"key"`
}

func (ts TaskSpec) String() string {
	return fmt.Sprintf("cell %v rep %d", ts.Cell, ts.Rep)
}

// AnalyzePoint is a serializable matrix-analytic evaluation: both policies
// of the paper's model are analyzed at one (k, rho, muI, muE) point. The
// figure drivers (Figure 4/5/6) submit these.
type AnalyzePoint struct {
	K   int     `json:"k"`
	Rho float64 `json:"rho"`
	MuI float64 `json:"muI"`
	MuE float64 `json:"muE"`
}

// AnalyzeOut is the outcome of an AnalyzePoint.
type AnalyzeOut struct {
	TIF float64 `json:"tif"`
	TEF float64 `json:"tef"`
}

// ValidatePoint is one analysis-vs-simulation comparison of the Section 5
// validation table.
type ValidatePoint struct {
	K      int             `json:"k"`
	Rho    float64         `json:"rho"`
	MuI    float64         `json:"muI"`
	MuE    float64         `json:"muE"`
	Policy string          `json:"policy"`
	Opt    core.SimOptions `json:"opt"`
}

// AblationPoint is one muI position of the busy-period fit ablation.
type AblationPoint struct {
	K   int     `json:"k"`
	Rho float64 `json:"rho"`
	MuI float64 `json:"muI"`
}

// DominanceTrace is one coupled sample-path trace of the Theorem 3
// dominance experiment.
type DominanceTrace struct {
	K        int     `json:"k"`
	Rho      float64 `json:"rho"`
	MuI      float64 `json:"muI"`
	MuE      float64 `json:"muE"`
	PolicyA  string  `json:"policyA"`
	PolicyB  string  `json:"policyB"`
	Arrivals int     `json:"arrivals"`
	Tol      float64 `json:"tol"`
	Seed     uint64  `json:"seed"`
}

// Task is the serializable unit of work a Backend executes; exactly one
// field is set. Sim tasks additionally need the submission's Env.Sweep for
// the replication budget.
type Task struct {
	Sim       *TaskSpec       `json:"sim,omitempty"`
	Analyze   *AnalyzePoint   `json:"analyze,omitempty"`
	Validate  *ValidatePoint  `json:"validate,omitempty"`
	Ablation  *AblationPoint  `json:"ablation,omitempty"`
	Dominance *DominanceTrace `json:"dominance,omitempty"`
}

// Label names the task in error messages, so a failure deep inside a worker
// always carries its cell/replication (or grid-point) identity.
func (t Task) Label() string {
	switch {
	case t.Sim != nil:
		return t.Sim.String()
	case t.Analyze != nil:
		a := t.Analyze
		return fmt.Sprintf("analyze k=%d rho=%g muI=%g muE=%g", a.K, a.Rho, a.MuI, a.MuE)
	case t.Validate != nil:
		v := t.Validate
		return fmt.Sprintf("validate k=%d rho=%g muI=%g policy=%s", v.K, v.Rho, v.MuI, v.Policy)
	case t.Ablation != nil:
		a := t.Ablation
		return fmt.Sprintf("ablation k=%d rho=%g muI=%g", a.K, a.Rho, a.MuI)
	case t.Dominance != nil:
		d := t.Dominance
		return fmt.Sprintf("dominance %s-vs-%s seed %d", d.PolicyA, d.PolicyB, d.Seed)
	}
	return "empty task"
}

// TaskKey derives the cache identity of a task for an OutcomeCache. Every
// task kind is deterministic given its spec — seeds travel inside the spec —
// so every kind is cacheable. Sim tasks key as the cell's config hash
// (Sweep.Key, which covers every parameter that determines the numbers)
// plus the replication index, the exact format the fabric dispatcher has
// always used; the other kinds key as their kind name plus the spec's
// canonical JSON (struct field order is fixed, so the encoding is stable).
// A task with no identity (an empty task, or a Sim spec submitted without
// its precomputed Key) reports false and is never cached.
func TaskKey(t Task) (string, bool) {
	switch {
	case t.Sim != nil:
		if t.Sim.Key == "" {
			return "", false
		}
		return fmt.Sprintf("%s|rep=%d", t.Sim.Key, t.Sim.Rep), true
	case t.Analyze != nil:
		return specKey("analyze", t.Analyze)
	case t.Validate != nil:
		return specKey("validate", t.Validate)
	case t.Ablation != nil:
		return specKey("ablation", t.Ablation)
	case t.Dominance != nil:
		return specKey("dominance", t.Dominance)
	}
	return "", false
}

func specKey(kind string, spec any) (string, bool) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", false
	}
	return kind + "|" + string(b), true
}

// Outcome is the result of one Task; the field matching the task kind is
// set. Like Task it round-trips JSON exactly (float64 values marshal with
// shortest-round-trip precision), which is what makes ProcBackend
// bit-identical to PoolBackend.
type Outcome struct {
	Rep       *Replication       `json:"rep,omitempty"`
	Analyze   *AnalyzeOut        `json:"analyze,omitempty"`
	Validate  *ValidationRow     `json:"validate,omitempty"`
	Ablation  []core.AblationRow `json:"ablation,omitempty"`
	Dominance *DominanceRun      `json:"dominance,omitempty"`
}

// Env is the per-submission context shared by all tasks of one Submit call.
// It is serialized once per worker in ProcBackend's handshake.
type Env struct {
	// Sweep is required by Sim tasks (replication budget, seeds, keys);
	// nil for submissions of analysis-only tasks.
	Sweep *Sweep `json:"sweep,omitempty"`
}

// TaskResult pairs a finished task's index in the submitted slice with its
// outcome.
type TaskResult struct {
	Index   int
	Outcome Outcome
}

// Backend executes a batch of tasks. Implementations must:
//
//   - call emit exactly once per task, with the task's index — possibly
//     concurrently (callers synchronize their emit closures);
//   - stop at the first task error or emit error and return it;
//   - honor ctx cancellation promptly, returning ctx.Err();
//   - isolate panics: a panicking task becomes that task's error, never a
//     crash of the dispatcher.
//
// Because seeds and cache keys are computed from task identity alone
// (TaskSpec.Seed, TaskSpec.Key), any conforming backend produces
// bit-identical results for any worker count and any scheduling order.
type Backend interface {
	Submit(ctx context.Context, env Env, tasks []Task, emit func(TaskResult) error) error
}

// PoolBackend runs tasks on a goroutine worker pool inside this process —
// the default backend, equivalent to (and implemented with) Map.
type PoolBackend struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
}

// Submit implements Backend.
func (p PoolBackend) Submit(ctx context.Context, env Env, tasks []Task, emit func(TaskResult) error) error {
	_, err := Map(ctx, p.Workers, len(tasks), func(i int) (struct{}, error) {
		out, err := runTask(env, tasks[i])
		if err != nil {
			return struct{}{}, err
		}
		return struct{}{}, emit(TaskResult{Index: i, Outcome: out})
	})
	return err
}

// ExecuteTask runs one task in this process. It is the exported face of
// runTask for out-of-package transports — internal/fabric's worker daemons
// execute every assignment through it, which is what keeps a networked run
// byte-identical to PoolBackend: all backends run the same executor.
func ExecuteTask(env Env, t Task) (Outcome, error) { return runTask(env, t) }

// runTask executes one task locally. It is the single executor shared by
// every backend — PoolBackend calls it on a goroutine, ProcBackend's worker
// subprocess calls it behind the wire protocol, fabric workers call it via
// ExecuteTask — so all backends run byte-identical code. A panic anywhere
// inside the task surfaces as this task's error.
func runTask(env Env, t Task) (out Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: %s panicked: %v", t.Label(), p)
		}
	}()
	switch {
	case t.Sim != nil:
		return runSimTask(env, *t.Sim)
	case t.Analyze != nil:
		a := *t.Analyze
		s := core.ForLoad(a.K, a.Rho, a.MuI, a.MuE)
		ifRes, efRes, aerr := s.Analyze()
		if aerr != nil {
			return out, fmt.Errorf("exp: %s: %w", t.Label(), aerr)
		}
		return Outcome{Analyze: &AnalyzeOut{TIF: ifRes.T, TEF: efRes.T}}, nil
	case t.Validate != nil:
		row, verr := runValidateTask(*t.Validate)
		if verr != nil {
			return out, fmt.Errorf("exp: %s: %w", t.Label(), verr)
		}
		return Outcome{Validate: &row}, nil
	case t.Ablation != nil:
		a := *t.Ablation
		rows, aerr := core.BusyPeriodAblation(a.K, a.Rho, []float64{a.MuI})
		if aerr != nil {
			return out, fmt.Errorf("exp: %s: %w", t.Label(), aerr)
		}
		return Outcome{Ablation: rows}, nil
	case t.Dominance != nil:
		run, derr := runDominanceTrace(*t.Dominance)
		if derr != nil {
			return out, fmt.Errorf("exp: %s: %w", t.Label(), derr)
		}
		return Outcome{Dominance: &run}, nil
	}
	return out, fmt.Errorf("exp: empty task submitted")
}

// runSimTask runs one sweep replication, cross-checking that the spec's
// precomputed seed and cache key survive re-derivation from the (possibly
// JSON-round-tripped) cell — the invariant that makes multi-process
// dispatch safe.
func runSimTask(env Env, spec TaskSpec) (Outcome, error) {
	if env.Sweep == nil {
		return Outcome{}, fmt.Errorf("exp: %s submitted without a sweep", spec)
	}
	sw := *env.Sweep
	if want := sw.RepSeed(spec.Cell, spec.Rep); spec.Seed != 0 && spec.Seed != want {
		return Outcome{}, fmt.Errorf("exp: %s: seed drift across dispatch boundary: spec has %d, re-derived %d", spec, spec.Seed, want)
	}
	if want := sw.Key(spec.Cell); spec.Key != "" && spec.Key != want {
		return Outcome{}, fmt.Errorf("exp: %s: cache-key drift across dispatch boundary: spec has %s, re-derived %s", spec, spec.Key, want)
	}
	r, err := sw.runReplication(spec.Cell, spec.Rep)
	if err != nil {
		return Outcome{}, fmt.Errorf("exp: %s: %w", spec, err)
	}
	return Outcome{Rep: &r}, nil
}

func runValidateTask(v ValidatePoint) (ValidationRow, error) {
	s := core.ForLoad(v.K, v.Rho, v.MuI, v.MuE)
	analyze := mrt.IF
	if v.Policy == "EF" {
		analyze = mrt.EF
	}
	anRes, err := analyze(s.Params(), mrt.Coxian3Moment)
	if err != nil {
		return ValidationRow{}, err
	}
	p, err := s.PolicyByName(v.Policy)
	if err != nil {
		return ValidationRow{}, err
	}
	res := s.Simulate(p, v.Opt)
	return ValidationRow{
		K: v.K, Rho: v.Rho, MuI: v.MuI, MuE: v.MuE,
		Policy:   v.Policy,
		Analysis: anRes.T, Simulation: res.MeanT,
		RelErr:         (res.MeanT - anRes.T) / anRes.T,
		SimCompletions: res.Completions,
	}, nil
}

func runDominanceTrace(d DominanceTrace) (DominanceRun, error) {
	s := core.ForLoad(d.K, d.Rho, d.MuI, d.MuE)
	// Policy instances are constructed per trace: stateful policies (FCFS,
	// SRPT, LFF, SMF) hold reusable buffers that must not be shared.
	a, err := s.PolicyByName(d.PolicyA)
	if err != nil {
		return DominanceRun{}, err
	}
	b, err := s.PolicyByName(d.PolicyB)
	if err != nil {
		return DominanceRun{}, err
	}
	trace := s.Model().Trace(d.Seed, d.Arrivals)
	rep := sim.CompareWork(d.K, trace, a, b, d.Tol)
	if rep.CompletedA == 0 || rep.CompletedB == 0 {
		return DominanceRun{}, fmt.Errorf("trace of %d arrivals completed %d/%d jobs; too short to compare",
			d.Arrivals, rep.CompletedA, rep.CompletedB)
	}
	run := DominanceRun{
		Seed: d.Seed, Checked: rep.Checked, Violations: len(rep.Violations),
		RatioAB: (rep.SumRespA / float64(rep.CompletedA)) / (rep.SumRespB / float64(rep.CompletedB)),
	}
	if len(rep.Violations) > 0 {
		run.First = rep.Violations[0].String()
	}
	return run, nil
}

// submitAll submits tasks on opt's backend and collects the outcomes in
// task order — the convenience used by the figure drivers, which have no
// per-task streaming needs. When Options.TaskCache is set it is consulted
// first (keyed by TaskKey) and only the misses reach the backend; a hit is
// kind-checked like any backend result, so a stale or mismatched cache
// entry falls through to recomputation instead of corrupting the driver.
// Each outcome is checked against its task's kind, so a misbehaving custom
// backend (or a drifted worker binary that answers with empty outcomes)
// surfaces as a clear error instead of a nil dereference in the driver.
func submitAll(ctx context.Context, opt Options, env Env, tasks []Task) ([]Outcome, error) {
	out := make([]Outcome, len(tasks))
	missing := make([]int, 0, len(tasks))
	var sub []Task
	for i, t := range tasks {
		if opt.TaskCache != nil {
			if key, ok := TaskKey(t); ok {
				if o, hit := opt.TaskCache.GetOutcome(key); hit && t.checkOutcome(o) == nil {
					out[i] = o
					continue
				}
			}
		}
		missing = append(missing, i)
		sub = append(sub, t)
	}
	if len(sub) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	var mu sync.Mutex
	err := opt.backend().Submit(ctx, env, sub, func(tr TaskResult) error {
		i := missing[tr.Index]
		if err := tasks[i].checkOutcome(tr.Outcome); err != nil {
			return err
		}
		if opt.TaskCache != nil {
			if key, ok := TaskKey(tasks[i]); ok {
				if err := opt.TaskCache.PutOutcome(key, tr.Outcome); err != nil {
					return fmt.Errorf("exp: caching %s: %w", tasks[i].Label(), err)
				}
			}
		}
		mu.Lock()
		out[i] = tr.Outcome
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// checkOutcome verifies that an outcome carries the field matching the
// task's kind.
func (t Task) checkOutcome(out Outcome) error {
	ok := true
	switch {
	case t.Sim != nil:
		ok = out.Rep != nil
	case t.Analyze != nil:
		ok = out.Analyze != nil
	case t.Validate != nil:
		ok = out.Validate != nil
	case t.Ablation != nil:
		ok = out.Ablation != nil
	case t.Dominance != nil:
		ok = out.Dominance != nil
	}
	if !ok {
		return fmt.Errorf("exp: backend returned no result for %s (worker/backend drift?)", t.Label())
	}
	return nil
}
