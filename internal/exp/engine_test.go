package exp

// Sweep-level coverage for the stepping-engine knob and the configurable
// tail-quantile set. TestEngineSweepEquivalence is the engine-equivalence
// CI gate (scripts/ci.sh): a small sweep run under both engines must agree
// on every count exactly and on every statistic to 1e-9 relative — the
// engines round floating point differently by construction (each is
// individually bit-frozen by its own golden set in internal/sim), so the
// gate pins agreement, not byte identity.

import (
	"context"
	"math"
	"strings"
	"testing"
)

const engineTol = 1e-9

func engClose(a, b float64) bool {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= engineTol*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}

func engineGateSweep() Sweep {
	return Sweep{
		Name: "engine-gate",
		Grid: Grid{
			K:        []int{2},
			Rho:      []float64{0.5, 0.9},
			MuI:      []float64{1, 2},
			MuE:      []float64{1},
			Policies: []string{"IF", "EF", "SRPT", "EQUI"},
		},
		Reps: 2, BaseSeed: 3, Warmup: 200, Jobs: 2000, Tail: true,
	}
}

// diffResultSets diffs two sweep ResultSets cell by cell: identical
// completion counts and rep seeds, statistics within engineTol.
func diffResultSets(t *testing.T, aName, bName string, ra, rb *ResultSet) {
	t.Helper()
	if len(ra.Cells) != len(rb.Cells) {
		t.Fatalf("cell counts differ: %s %d, %s %d", aName, len(ra.Cells), bName, len(rb.Cells))
	}
	for i := range ra.Cells {
		a, b := ra.Cells[i], rb.Cells[i]
		if a.Cell != b.Cell {
			t.Fatalf("cell %d identity differs: %v vs %v", i, a.Cell, b.Cell)
		}
		if a.Completions != b.Completions {
			t.Errorf("cell %v: completions %s %d, %s %d", a.Cell, aName, a.Completions, bName, b.Completions)
		}
		for _, c := range []struct {
			name string
			x, y float64
		}{
			{"ET", a.ET, b.ET}, {"ETI", a.ETI, b.ETI}, {"ETE", a.ETE, b.ETE},
			{"EN", a.EN, b.EN}, {"Util", a.Util, b.Util}, {"P99", a.P99, b.P99},
		} {
			if !engClose(c.x, c.y) {
				t.Errorf("cell %v: %s diverges beyond %g: %s %v, %s %v",
					a.Cell, c.name, engineTol, aName, c.x, bName, c.y)
			}
		}
		for r := range a.Reps {
			if a.Reps[r].Seed != b.Reps[r].Seed {
				t.Errorf("cell %v rep %d: seeds differ (%d vs %d)", a.Cell, r, a.Reps[r].Seed, b.Reps[r].Seed)
			}
			if a.Reps[r].Completions != b.Reps[r].Completions {
				t.Errorf("cell %v rep %d: completions %d vs %d", a.Cell, r, a.Reps[r].Completions, b.Reps[r].Completions)
			}
		}
	}
}

// TestEngineSweepEquivalence runs the gate sweep under both engines and
// diffs the ResultSets: identical completion counts, statistics within
// 1e-9. A second leg covers a class-mix grid so capped and partially
// elastic classes cross the gate too, and a third leg re-runs the
// incremental sweep with SIM_FORCE_DENSE set — the sparse fast paths
// (EQUI's class shares, SRPT's indexed heap, the write-set protocol) must
// be invisible at sweep level compared to the dense fallback.
func TestEngineSweepEquivalence(t *testing.T) {
	grids := []Grid{
		engineGateSweep().Grid,
		{K: []int{4}, Rho: []float64{0.7}, Mixes: []string{"threeclass", "partialelastic", "cappedladder"},
			Policies: []string{"LFF", "EQUI", "SRPT"}},
	}
	for _, grid := range grids {
		sw := engineGateSweep()
		sw.Grid = grid
		inc := sw
		inc.Engine = "incremental"
		rsReb, err := Run(context.Background(), sw, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rsInc, err := Run(context.Background(), inc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		diffResultSets(t, "rebuild", "incremental", rsReb, rsInc)
		t.Setenv("SIM_FORCE_DENSE", "1")
		rsDense, err := Run(context.Background(), inc, Options{})
		t.Setenv("SIM_FORCE_DENSE", "")
		if err != nil {
			t.Fatal(err)
		}
		diffResultSets(t, "incremental", "incremental/dense", rsInc, rsDense)
	}
}

// TestEngineValidation rejects unknown engine spellings at sweep
// validation time, not inside a worker.
func TestEngineValidation(t *testing.T) {
	sw := engineGateSweep()
	sw.Engine = "warpdrive"
	if _, err := Run(context.Background(), sw, Options{}); err == nil || !strings.Contains(err.Error(), "warpdrive") {
		t.Fatalf("bad engine not rejected: %v", err)
	}
}

// TestTailQuantiles pins the configurable quantile set: values are
// monotone in q, consistent with the p99 field at q=0.99, present per
// class, aggregated into the cell, and emitted by the CSV writer.
func TestTailQuantiles(t *testing.T) {
	sw := Sweep{
		Name: "quantiles",
		Grid: Grid{K: []int{4}, Rho: []float64{0.7}, MuI: []float64{1.5}, MuE: []float64{1}, Policies: []string{"IF"}},
		Reps: 2, BaseSeed: 5, Warmup: 500, Jobs: 10_000,
		Tail: true, TailQuantiles: []float64{0.5, 0.95, 0.99, 0.999},
	}
	rs, err := Run(context.Background(), sw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cr := rs.Cells[0]
	if len(cr.Quantiles) != 4 || len(cr.QuantilesPerClass) != 2 {
		t.Fatalf("quantile shapes: got %d overall, %d classes", len(cr.Quantiles), len(cr.QuantilesPerClass))
	}
	for i := 1; i < len(cr.Quantiles); i++ {
		if cr.Quantiles[i] < cr.Quantiles[i-1] {
			t.Fatalf("quantiles not monotone: %v", cr.Quantiles)
		}
	}
	if cr.Quantiles[0] <= 0 {
		t.Fatalf("p50 not positive: %v", cr.Quantiles)
	}
	// The q=0.99 entry and the legacy p99 field sample the same recorder.
	if cr.Quantiles[2] != cr.P99 {
		t.Fatalf("q=0.99 (%v) != p99 (%v)", cr.Quantiles[2], cr.P99)
	}
	for cl, qs := range cr.QuantilesPerClass {
		if len(qs) != 4 || qs[3] < qs[0] {
			t.Fatalf("class %d quantiles malformed: %v", cl, qs)
		}
		if qs[2] != cr.P99PerClass[cl] {
			t.Fatalf("class %d: q=0.99 (%v) != p99 (%v)", cl, qs[2], cr.P99PerClass[cl])
		}
	}
	var csv strings.Builder
	if err := rs.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(csv.String(), "\n")
	if !strings.Contains(lines[0], "quantiles,quantiles_per_class") {
		t.Fatalf("CSV header missing quantile columns: %s", lines[0])
	}
	if !strings.Contains(lines[1], "0.5=") || !strings.Contains(lines[1], "0.999=") || !strings.Contains(lines[1], "|") {
		t.Fatalf("CSV row missing quantile groups: %s", lines[1])
	}

	// Quantile validation: out-of-range and non-increasing sets fail fast.
	for _, bad := range [][]float64{{0}, {1}, {0.9, 0.5}, {0.5, 0.5}} {
		b := sw
		b.TailQuantiles = bad
		if _, err := Run(context.Background(), b, Options{}); err == nil {
			t.Fatalf("bad quantile set %v not rejected", bad)
		}
	}
	noTail := sw
	noTail.Tail = false
	if _, err := Run(context.Background(), noTail, Options{}); err == nil {
		t.Fatal("TailQuantiles without Tail not rejected")
	}
}
