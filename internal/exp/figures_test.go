package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFigure4Theorem5Region: in the muI >= muE half of every heat map, IF
// must win — that is the content of Theorem 5 and the visually striking
// feature of Figure 4.
func TestFigure4Theorem5Region(t *testing.T) {
	grid := []float64{0.5, 1.0, 1.5, 2.5, 3.5}
	for _, rho := range []float64{0.5, 0.7, 0.9} {
		points, err := Figure4(context.Background(), 4, rho, grid, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			if p.MuI >= p.MuE && !p.IFWins {
				t.Fatalf("rho=%v: EF wins at muI=%v >= muE=%v (IF=%v EF=%v), contradicting Theorem 5",
					rho, p.MuI, p.MuE, p.TIF, p.TEF)
			}
		}
	}
}

// TestFigure4EFRegionGrowsWithLoad reproduces the qualitative finding of
// Figure 4: the EF-superior region grows as rho increases.
func TestFigure4EFRegionGrowsWithLoad(t *testing.T) {
	grid := []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}
	count := func(rho float64) int {
		points, err := Figure4(context.Background(), 4, rho, grid, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, p := range points {
			if !p.IFWins {
				n++
			}
		}
		return n
	}
	low, med, high := count(0.5), count(0.7), count(0.9)
	if !(low <= med && med <= high) {
		t.Fatalf("EF region sizes not increasing with load: %d, %d, %d", low, med, high)
	}
	if high == 0 {
		t.Fatal("no EF-superior cells at rho=0.9; Figure 4c should show some")
	}
}

// TestFigure4ParallelMatchesSerial: the ported driver must produce the
// serial loop's points in the serial loop's order, for any worker count.
func TestFigure4ParallelMatchesSerial(t *testing.T) {
	grid := []float64{0.5, 1.0, 2.0}
	serial, err := Figure4(context.Background(), 4, 0.7, grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure4(context.Background(), 4, 0.7, grid, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
	// Row-major muI-outer order, as the serial driver produced.
	if serial[0].MuI != 0.5 || serial[0].MuE != 0.5 || serial[1].MuE != 1.0 {
		t.Fatalf("unexpected point order: %+v", serial[:2])
	}
}

// TestFigure5Shape checks the qualitative features of Figure 5: both curves
// decrease in muI (faster inelastic service shrinks response times), IF is
// optimal right of muI = 1, and the gap is large at the left edge under
// high load.
func TestFigure5Shape(t *testing.T) {
	muIs := []float64{0.25, 0.5, 1.0, 2.0, 3.5}
	points, err := Figure5(context.Background(), 4, 0.9, muIs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].TIF >= points[i-1].TIF {
			t.Fatalf("IF curve not decreasing at muI=%v", points[i].MuI)
		}
	}
	for _, p := range points {
		if p.MuI >= 1.0 && p.TIF > p.TEF*(1+1e-9) {
			t.Fatalf("IF worse than EF at muI=%v >= muE=1", p.MuI)
		}
	}
	// Left edge at high load: EF beats IF (the crossover of Figure 5c).
	if points[0].TEF >= points[0].TIF {
		t.Fatalf("expected EF < IF at muI=0.25 under rho=0.9: EF=%v IF=%v",
			points[0].TEF, points[0].TIF)
	}
}

// TestFigure6Shape: with rho fixed, E[T] decreases in k for the optimal
// policy, and the IF/EF ranking at each endpoint matches Figure 6's panels.
func TestFigure6Shape(t *testing.T) {
	ks := []int{2, 4, 8, 16}
	// Panel (a): muI = 0.25 (EF better everywhere).
	a, err := Figure6(context.Background(), 0.9, 0.25, 1.0, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a {
		if p.TEF >= p.TIF {
			t.Fatalf("panel a at k=%d: EF (%v) should beat IF (%v)", p.K, p.TEF, p.TIF)
		}
	}
	// Panel (b): muI = 3.25 (IF better everywhere).
	b, err := Figure6(context.Background(), 0.9, 3.25, 1.0, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range b {
		if p.TIF > p.TEF {
			t.Fatalf("panel b at k=%d: IF (%v) should beat EF (%v)", p.K, p.TIF, p.TEF)
		}
	}
	// "Even when k = 16, the difference between IF and EF remains large."
	last := b[len(b)-1]
	if last.TEF/last.TIF < 1.2 {
		t.Fatalf("k=16 gap too small: IF=%v EF=%v", last.TIF, last.TEF)
	}
}

func TestRenderHeatmapASCII(t *testing.T) {
	points := []HeatmapPoint{
		{MuI: 1, MuE: 1, IFWins: true},
		{MuI: 2, MuE: 1, IFWins: true},
		{MuI: 1, MuE: 2, IFWins: false},
		{MuI: 2, MuE: 2, IFWins: true},
	}
	out := RenderHeatmapASCII(points)
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Fatalf("heatmap missing markers:\n%s", out)
	}
	if !strings.Contains(out, "muE= 2.00 | + o") {
		t.Fatalf("unexpected layout:\n%s", out)
	}
}

func TestCSVWriters(t *testing.T) {
	var sb strings.Builder
	err := WriteHeatmapCSV(&sb, []HeatmapPoint{{MuI: 1, MuE: 2, TIF: 3, TEF: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1,2,3.000000,4.000000,EF") {
		t.Fatalf("heatmap csv: %s", sb.String())
	}
	sb.Reset()
	if err := WriteCurveCSV(&sb, []CurvePoint{{MuI: 1, TIF: 2, TEF: 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1,2.000000,3.000000") {
		t.Fatalf("curve csv: %s", sb.String())
	}
	sb.Reset()
	if err := WriteKCurveCSV(&sb, []KPoint{{K: 4, TIF: 2, TEF: 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "4,2.000000,3.000000") {
		t.Fatalf("k csv: %s", sb.String())
	}
	sb.Reset()
	if err := WriteValidationTable(&sb, []ValidationRow{{K: 4, Rho: 0.5, MuI: 1, MuE: 1, Policy: "IF", Analysis: 1, Simulation: 1.005, RelErr: 0.005}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "IF") {
		t.Fatalf("validation table: %s", sb.String())
	}
}

// TestValidateAnalysisWithinOnePercent is the repository's version of the
// paper's Section 5 claim: "We compared our analysis with simulation, and
// all numbers agree within 1%."
func TestValidateAnalysisWithinOnePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation run")
	}
	rows, err := ValidateAnalysis(context.Background(), 4, 0.7, []float64{0.5, 1.0, 2.0},
		core.SimOptions{Seed: 17, WarmupJobs: 30_000, MaxJobs: 600_000}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.RelErr) > 0.015 {
			t.Fatalf("%s at muI=%v: analysis %v vs sim %v (err %.2f%%)",
				r.Policy, r.MuI, r.Analysis, r.Simulation, 100*r.RelErr)
		}
	}
}

// TestDominanceTheorem3 reproduces the coupled sample-path experiment: IF
// work-dominates rivals in class P on every sampled trace.
func TestDominanceTheorem3(t *testing.T) {
	runs, err := Dominance(context.Background(), DominanceConfig{
		K: 4, Rho: 0.8, MuI: 1.5, MuE: 1.0,
		PolicyA: "IF", PolicyB: "EF",
		Arrivals: 4_000, Seeds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("want 3 runs, got %d", len(runs))
	}
	for _, run := range runs {
		if run.Violations != 0 {
			t.Fatalf("seed %d: dominance violated: %s", run.Seed, run.First)
		}
		if run.Checked == 0 {
			t.Fatalf("seed %d: no checks performed", run.Seed)
		}
	}
}

func TestDominanceRejectsBadConfig(t *testing.T) {
	bad := []DominanceConfig{
		{K: 0, Rho: 0.5, MuI: 1, MuE: 1, PolicyA: "IF", PolicyB: "EF", Arrivals: 10, Seeds: 1},
		{K: 2, Rho: 1.2, MuI: 1, MuE: 1, PolicyA: "IF", PolicyB: "EF", Arrivals: 10, Seeds: 1},
		{K: 2, Rho: 0.5, MuI: 1, MuE: 1, PolicyA: "NOPE", PolicyB: "EF", Arrivals: 10, Seeds: 1},
		{K: 2, Rho: 0.5, MuI: 1, MuE: 1, PolicyA: "IF", PolicyB: "EF", Arrivals: 0, Seeds: 1},
	}
	for i, cfg := range bad {
		if _, err := Dominance(context.Background(), cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestBusyPeriodAblationParallel(t *testing.T) {
	rows, err := BusyPeriodAblation(context.Background(), 4, 0.8, []float64{1.0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // IF and EF
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	serial, err := core.BusyPeriodAblation(4, 0.8, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != serial[i] {
			t.Fatalf("row %d differs from serial driver: %+v vs %+v", i, rows[i], serial[i])
		}
	}
}
