// Package exp is the experiment-orchestration layer of the repository: it
// turns the paper's evaluation protocol — parameter sweeps (load rho, server
// count k, service rates, policy) over many simulator replications — into a
// declarative description that a goroutine worker pool executes in parallel.
//
// Every table and figure in the paper (BergHMWW20, SPAA 2020) is such a
// sweep, and before this package existed each cmd/* driver re-implemented
// its own serial loop. The design separates, in the spirit of batch
// simulation-queue managers, three concerns:
//
//   - defining an experiment: a Sweep holds a cartesian Grid over
//     k × rho × muI × muE × policy (or the Section 1.3 scenario presets from
//     internal/workload) plus a per-replication simulation budget;
//   - running it: Run turns every cell × replication pair into a
//     serializable task and submits the batch to a pluggable Backend — the
//     in-process goroutine pool (PoolBackend, the default) or sharded
//     worker subprocesses speaking a length-delimited JSONL protocol
//     (ProcBackend, cmd/expworker) — with deterministic per-task seeding
//     via internal/xrand-compatible hashing, panic isolation, and context
//     cancellation; results are bit-identical for any worker count and any
//     backend, because seeds and cache keys derive from task identity
//     alone and every backend executes the same runTask code;
//   - collecting results: replications aggregate through internal/stats
//     (replication CIs, within-replication batch-means CIs, MSER
//     autocorrelation-aware warmup trimming), and completed cells are cached
//     keyed by a config hash so interrupted or repeated sweeps are
//     incremental. ResultSet emits CSV/JSON and plot.Series for
//     internal/plot.
//
// The generic Map primitive underlies the figure drivers (Figure 4/5/6 heat
// maps and curves, the Section 5 validation table, the busy-period ablation)
// and the Theorem 3 coupled-trace dominance experiment.
package exp

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Cell is one parameter assignment of a sweep: a fully-specified system
// configuration plus the policy to run. Exactly one of the exponential
// model fields (MuI, MuE), a two-class Scenario preset name, or an N-class
// Mix preset name is set.
type Cell struct {
	K        int     `json:"k"`
	Rho      float64 `json:"rho"`
	MuI      float64 `json:"muI,omitempty"`
	MuE      float64 `json:"muE,omitempty"`
	Policy   string  `json:"policy"`
	Scenario string  `json:"scenario,omitempty"`
	// Mix names an N-class workload preset (workload.MixByName): the
	// Section 6 scenarios with capped and partially elastic classes.
	Mix string `json:"mix,omitempty"`
}

// String returns the canonical form used for hashing and seeding; two cells
// with equal strings are the same experiment point.
func (c Cell) String() string {
	if c.Mix != "" {
		return fmt.Sprintf("mix=%s k=%d rho=%g policy=%s", c.Mix, c.K, c.Rho, c.Policy)
	}
	if c.Scenario != "" {
		return fmt.Sprintf("scenario=%s k=%d rho=%g policy=%s", c.Scenario, c.K, c.Rho, c.Policy)
	}
	return fmt.Sprintf("k=%d rho=%g muI=%g muE=%g policy=%s", c.K, c.Rho, c.MuI, c.MuE, c.Policy)
}

func (c Cell) validate() error {
	if c.K < 1 {
		return fmt.Errorf("cell %v: k must be >= 1", c)
	}
	if !(c.Rho > 0 && c.Rho < 1) {
		return fmt.Errorf("cell %v: rho must be in (0, 1)", c)
	}
	if c.Scenario != "" && c.Mix != "" {
		return fmt.Errorf("cell %v: Scenario and Mix are mutually exclusive", c)
	}
	if c.Scenario == "" && c.Mix == "" && (c.MuI <= 0 || c.MuE <= 0) {
		return fmt.Errorf("cell %v: service rates must be positive", c)
	}
	if c.Scenario != "" {
		if _, err := scenarioByName(c.Scenario, c.K, c.Rho); err != nil {
			return err
		}
	}
	specs, err := c.classesImpl()
	if err != nil {
		return err
	}
	pol, err := c.policyImpl()
	if err != nil {
		return err
	}
	if err := core.ValidatePolicyClasses(pol, specs); err != nil {
		return fmt.Errorf("cell %v: %w", c, err)
	}
	return nil
}

// classesImpl returns the cell's job classes. Two-class cells (classic and
// scenario) return the preset with their size distributions attached, so
// size-aware class orderings (SMF) work on every cell kind; the engine
// itself ignores the extra fields, so this is behavior-identical to the
// bare preset for size-blind policies.
func (c Cell) classesImpl() ([]sim.ClassSpec, error) {
	if c.Mix != "" {
		mix, err := workload.MixByName(c.Mix, c.K, c.Rho)
		if err != nil {
			return nil, err
		}
		return mix.Classes, nil
	}
	specs := sim.TwoClassSpecs()
	if c.Scenario != "" {
		sc, err := scenarioByName(c.Scenario, c.K, c.Rho)
		if err != nil {
			return nil, err
		}
		specs[0].Lambda, specs[0].Size = sc.LambdaI, sc.SizeI
		specs[1].Lambda, specs[1].Size = sc.LambdaE, sc.SizeE
		return specs, nil
	}
	model := workload.ModelForLoad(c.K, c.Rho, c.MuI, c.MuE)
	specs[0].Lambda, specs[0].Size = model.LambdaI, dist.NewExponential(c.MuI)
	specs[1].Lambda, specs[1].Size = model.LambdaE, dist.NewExponential(c.MuE)
	return specs, nil
}

// policyImpl resolves the cell's policy name. Scenario cells derive the
// rate parameters needed by GREEDY from the preset's mean sizes; mix cells
// resolve class-generic policies (IF, EF, LFF, SMF, EQUI, FCFS, DEFER,
// SRPT, PRIO:...).
func (c Cell) policyImpl() (sim.Policy, error) {
	if c.Mix != "" {
		return core.PolicyByName(c.Policy, 0, 0)
	}
	s := core.System{K: c.K, LambdaI: 1, LambdaE: 1, MuI: c.MuI, MuE: c.MuE}
	if c.Scenario != "" {
		sc, err := scenarioByName(c.Scenario, c.K, c.Rho)
		if err != nil {
			return nil, err
		}
		s = core.System{K: c.K, LambdaI: sc.LambdaI, LambdaE: sc.LambdaE,
			MuI: 1 / sc.SizeI.Mean(), MuE: 1 / sc.SizeE.Mean()}
	}
	return s.PolicyByName(c.Policy)
}

// sourceImpl builds the cell's arrival source for one replication seed.
func (c Cell) sourceImpl(seed uint64) (sim.ArrivalSource, error) {
	if c.Mix != "" {
		mix, err := workload.MixByName(c.Mix, c.K, c.Rho)
		if err != nil {
			return nil, err
		}
		return mix.Source(seed), nil
	}
	if c.Scenario != "" {
		sc, err := scenarioByName(c.Scenario, c.K, c.Rho)
		if err != nil {
			return nil, err
		}
		return sc.Source(seed), nil
	}
	return workload.ModelForLoad(c.K, c.Rho, c.MuI, c.MuE).Source(seed), nil
}

// mapReduceElasticWork fixes the MapReduce preset's elastic/inelastic size
// ratio at the paper's "common case" (elastic jobs larger).
const mapReduceElasticWork = 4

// scenarioByName builds a Section 1.3 workload preset, converting the
// constructors' panics (e.g. MLPlatform with rho below its serving load)
// into errors so a bad cell fails its task instead of killing the pool.
func scenarioByName(name string, k int, rho float64) (sc workload.Scenario, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: scenario %s(k=%d, rho=%g): %v", name, k, rho, p)
		}
	}()
	switch name {
	case "mapreduce":
		return workload.MapReduce(k, rho, mapReduceElasticWork), nil
	case "mlplatform":
		return workload.MLPlatform(k, rho), nil
	case "hpcmalleable":
		return workload.HPCMalleable(k, rho), nil
	}
	return workload.Scenario{}, fmt.Errorf("exp: unknown scenario %q (want mapreduce, mlplatform or hpcmalleable)", name)
}

// Grid declares a cartesian parameter grid. Cells expand in row-major order
// K → Rho → MuI → MuE → Policy (or K → Rho → Scenario → Policy when
// Scenarios is set, or K → Rho → Mix → Policy when Mixes is set; the three
// axes are mutually exclusive and MuI/MuE must be empty with either preset
// axis). An empty Policies list defaults to IF.
type Grid struct {
	K         []int     `json:"k"`
	Rho       []float64 `json:"rho"`
	MuI       []float64 `json:"muI,omitempty"`
	MuE       []float64 `json:"muE,omitempty"`
	Policies  []string  `json:"policies"`
	Scenarios []string  `json:"scenarios,omitempty"`
	// Mixes sweeps N-class workload presets (workload.MixNames) — the
	// class-mix axis over the Section 6 scenarios.
	Mixes []string `json:"mixes,omitempty"`
}

// Cells expands the grid into its cartesian product.
func (g Grid) Cells() []Cell {
	pols := g.Policies
	if len(pols) == 0 {
		pols = []string{"IF"}
	}
	var out []Cell
	for _, k := range g.K {
		for _, rho := range g.Rho {
			if len(g.Mixes) > 0 {
				for _, mix := range g.Mixes {
					for _, p := range pols {
						out = append(out, Cell{K: k, Rho: rho, Mix: mix, Policy: p})
					}
				}
				continue
			}
			if len(g.Scenarios) > 0 {
				for _, sc := range g.Scenarios {
					for _, p := range pols {
						out = append(out, Cell{K: k, Rho: rho, Scenario: sc, Policy: p})
					}
				}
				continue
			}
			for _, muI := range g.MuI {
				for _, muE := range g.MuE {
					for _, p := range pols {
						out = append(out, Cell{K: k, Rho: rho, MuI: muI, MuE: muE, Policy: p})
					}
				}
			}
		}
	}
	return out
}

// Sweep is a declarative experiment: a grid of cells, a replication count,
// and a per-replication simulation budget. The zero values of Reps and
// BaseSeed mean 1.
type Sweep struct {
	Name string `json:"name"`
	Grid Grid   `json:"grid"`
	// Reps is the number of independent replications per cell; the cell
	// aggregate reports a 95% CI over replication means when Reps >= 2.
	Reps int `json:"reps,omitempty"`
	// BaseSeed anchors the deterministic per-(cell, replication) seeds.
	BaseSeed uint64 `json:"baseSeed,omitempty"`
	// Warmup completions are discarded before measuring (ignored when
	// AutoWarmup is set).
	Warmup int64 `json:"warmup,omitempty"`
	// Jobs is the number of measured completions per replication.
	Jobs int64 `json:"jobs"`
	// AutoWarmup replaces the fixed Warmup budget with MSER-5
	// autocorrelation-aware trimming of the recorded response series
	// (stats.MSER5Trim). Response-time statistics then come from the
	// trimmed series; time-average statistics (E[N], utilization) still
	// cover the full run.
	AutoWarmup bool `json:"autoWarmup,omitempty"`
	// Batches > 1 records the response series and adds a within-replication
	// batch-means 95% CI (stats.BatchMeans) to each replication.
	Batches int `json:"batches,omitempty"`
	// Tail attaches a reservoir-sampled per-class percentile recorder
	// (sim.NewClassResponseRecorder) to every replication and reports p99
	// response times — overall and per class — alongside the means in the
	// CSV/JSON emitters. Tail sweeps key their cache entries separately;
	// keys of non-Tail sweeps are unchanged.
	Tail bool `json:"tail,omitempty"`
	// TailQuantiles extends Tail's fixed p99 to a configurable quantile
	// set (e.g. 0.5, 0.95, 0.99, 0.999), reported per replication and per
	// cell — overall and per class — alongside the p99 fields, in the
	// given order. Requires Tail; quantiles must be strictly increasing in
	// (0, 1). Mirroring the |tail=1 convention, a non-empty set appends a
	// |tailq=... component to the cache key, so the keys of plain-Tail and
	// non-Tail sweeps are unchanged.
	TailQuantiles []float64 `json:"tailQuantiles,omitempty"`
	// Engine selects the sim stepping engine for every replication:
	// "" or "rebuild" (the default, bit-frozen by the goldens) or
	// "incremental" (O(changed·log n) stepping for high-occupancy
	// sweeps; see sim.Engine). Only the non-default engine is keyed
	// (|engine=incremental), so all pre-existing cache keys stay valid.
	Engine string `json:"engine,omitempty"`
}

func (sw Sweep) reps() int {
	if sw.Reps < 1 {
		return 1
	}
	return sw.Reps
}

func (sw Sweep) seed() uint64 {
	if sw.BaseSeed == 0 {
		return 1
	}
	return sw.BaseSeed
}

func (sw Sweep) collectSeries() bool { return sw.AutoWarmup || sw.Batches > 1 }

// Validate checks the sweep the same way Run does before executing it —
// the exported face for services (internal/serve) that must reject a bad
// client spec at admission time, before any scheduling happens.
func (sw Sweep) Validate() error { return sw.validate() }

func (sw Sweep) validate() error {
	if sw.Jobs <= 0 {
		return fmt.Errorf("exp: sweep %q needs Jobs > 0", sw.Name)
	}
	if sw.Warmup < 0 {
		return fmt.Errorf("exp: sweep %q has negative Warmup", sw.Name)
	}
	if sw.Batches < 0 || sw.Batches == 1 {
		return fmt.Errorf("exp: sweep %q: Batches must be 0 (off) or >= 2 (got %d)", sw.Name, sw.Batches)
	}
	if _, err := sim.ParseEngine(sw.Engine); err != nil {
		return fmt.Errorf("exp: sweep %q: %w", sw.Name, err)
	}
	if len(sw.TailQuantiles) > 0 && !sw.Tail {
		return fmt.Errorf("exp: sweep %q sets TailQuantiles without Tail", sw.Name)
	}
	for i, q := range sw.TailQuantiles {
		if !(q > 0 && q < 1) {
			return fmt.Errorf("exp: sweep %q: tail quantile %g outside (0, 1)", sw.Name, q)
		}
		if i > 0 && q <= sw.TailQuantiles[i-1] {
			return fmt.Errorf("exp: sweep %q: tail quantiles must be strictly increasing (%g after %g)", sw.Name, q, sw.TailQuantiles[i-1])
		}
	}
	if (len(sw.Grid.Scenarios) > 0 || len(sw.Grid.Mixes) > 0) && (len(sw.Grid.MuI) > 0 || len(sw.Grid.MuE) > 0) {
		return fmt.Errorf("exp: sweep %q: Scenarios/Mixes and MuI/MuE are mutually exclusive (presets fix their size distributions)", sw.Name)
	}
	if len(sw.Grid.Scenarios) > 0 && len(sw.Grid.Mixes) > 0 {
		return fmt.Errorf("exp: sweep %q: Scenarios and Mixes are mutually exclusive", sw.Name)
	}
	cells := sw.Grid.Cells()
	if len(cells) == 0 {
		return fmt.Errorf("exp: sweep %q has an empty grid (need K, Rho and MuI/MuE, Scenarios or Mixes)", sw.Name)
	}
	for _, c := range cells {
		if err := c.validate(); err != nil {
			return fmt.Errorf("exp: sweep %q: %w", sw.Name, err)
		}
	}
	return nil
}

// Key returns the config hash identifying a completed cell result in a
// Cache. It covers everything that determines the numbers: the cell itself,
// the replication count, the seeds and the simulation budget.
func (sw Sweep) Key(c Cell) string {
	return fmt.Sprintf("%016x", fnvHash(sw.keyString(c)))
}

func (sw Sweep) keyString(c Cell) string {
	warmup := sw.Warmup
	if sw.AutoWarmup {
		warmup = 0 // the fixed budget is ignored in AutoWarmup mode
	}
	s := fmt.Sprintf("exp1|%s|reps=%d|seed=%d|warmup=%d|jobs=%d|auto=%t|batches=%d",
		c, sw.reps(), sw.seed(), warmup, sw.Jobs, sw.AutoWarmup, sw.Batches)
	// The tail, quantile-set and engine components are appended only when
	// enabled so that every pre-existing cache key stays valid (PR 4's
	// "unchanged cache keys" contract).
	if sw.Tail {
		s += "|tail=1"
	}
	if len(sw.TailQuantiles) > 0 {
		s += "|tailq="
		for i, q := range sw.TailQuantiles {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%g", q)
		}
	}
	if eng, err := sim.ParseEngine(sw.Engine); err == nil && eng != sim.EngineRebuild {
		s += "|engine=" + eng.String()
	}
	return s
}

// RepSeed derives the RNG seed of one replication purely from the cell
// identity, the base seed and the replication index — never from worker or
// scheduling state — so aggregates are bit-identical for any worker count.
// Seed and rep are hashed as separate fields (no algebraic combination), so
// nearby base seeds never share replication streams.
func (sw Sweep) RepSeed(c Cell, rep int) uint64 {
	return mix(fnvHash(fmt.Sprintf("%s|seed=%d|rep=%d", c, sw.seed(), rep)))
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix is the SplitMix64 finalizer, used to spread structured key material
// over the seed space.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
