package exp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func smallSweep() Sweep {
	return Sweep{
		Name: "test",
		Grid: Grid{
			K:        []int{2},
			Rho:      []float64{0.5, 0.7},
			MuI:      []float64{1, 2},
			MuE:      []float64{1},
			Policies: []string{"IF", "EF"},
		},
		Reps:   3,
		Warmup: 500,
		Jobs:   3_000,
	}
}

func TestGridCells(t *testing.T) {
	g := smallSweep().Grid
	cells := g.Cells()
	if len(cells) != 2*2*1*2 {
		t.Fatalf("want 8 cells, got %d", len(cells))
	}
	// Row-major: K, Rho, MuI, MuE, Policy.
	want := Cell{K: 2, Rho: 0.5, MuI: 1, MuE: 1, Policy: "IF"}
	if cells[0] != want {
		t.Fatalf("first cell %+v, want %+v", cells[0], want)
	}
	if cells[1].Policy != "EF" || cells[2].MuI != 2 {
		t.Fatalf("unexpected expansion order: %+v", cells[:4])
	}
}

func TestGridScenarioCells(t *testing.T) {
	g := Grid{K: []int{4}, Rho: []float64{0.7}, Scenarios: []string{"mapreduce", "hpcmalleable"}, Policies: []string{"IF"}}
	cells := g.Cells()
	if len(cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(cells))
	}
	if cells[0].Scenario != "mapreduce" || cells[1].Scenario != "hpcmalleable" {
		t.Fatalf("unexpected scenario cells: %+v", cells)
	}
}

func TestSweepValidate(t *testing.T) {
	ok := smallSweep()
	if err := ok.validate(); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Sweep)
		want string
	}{
		{"no jobs", func(s *Sweep) { s.Jobs = 0 }, "Jobs"},
		{"empty grid", func(s *Sweep) { s.Grid = Grid{} }, "empty grid"},
		{"bad rho", func(s *Sweep) { s.Grid.Rho = []float64{1.5} }, "rho"},
		{"bad k", func(s *Sweep) { s.Grid.K = []int{0} }, "k"},
		{"bad mu", func(s *Sweep) { s.Grid.MuI = []float64{-1} }, "service rates"},
		{"bad policy", func(s *Sweep) { s.Grid.Policies = []string{"NOPE"} }, "unknown policy"},
		{"bad scenario", func(s *Sweep) {
			s.Grid = Grid{K: []int{2}, Rho: []float64{0.5}, Scenarios: []string{"nope"}}
		}, "unknown scenario"},
		{"scenario plus mu", func(s *Sweep) { s.Grid.Scenarios = []string{"mapreduce"} }, "mutually exclusive"},
		{"bad batches", func(s *Sweep) { s.Batches = 1 }, "Batches"},
		{"negative warmup", func(s *Sweep) { s.Warmup = -1 }, "Warmup"},
	}
	for _, tc := range cases {
		sw := smallSweep()
		tc.mod(&sw)
		err := sw.validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the engine's core guarantee: the
// same sweep yields bit-identical aggregates for any pool size, because
// seeds derive from cell identity and aggregation consumes replications in
// index order.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	sw := smallSweep()
	var sets []*ResultSet
	for _, workers := range []int{1, 3, 8} {
		rs, err := Run(context.Background(), sw, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sets = append(sets, rs)
	}
	for i := 1; i < len(sets); i++ {
		if !reflect.DeepEqual(sets[0].Cells, sets[i].Cells) {
			t.Fatalf("results differ between worker counts 1 and %d", []int{1, 3, 8}[i])
		}
	}
}

// TestReplicationSeedsDistinct: every (cell, replication) pair must draw an
// independent stream.
func TestReplicationSeedsDistinct(t *testing.T) {
	rs, err := Run(context.Background(), smallSweep(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]string{}
	for _, cr := range rs.Cells {
		for _, rep := range cr.Reps {
			at := fmt.Sprintf("%v rep %d", cr.Cell, rep.Rep)
			if prev, dup := seen[rep.Seed]; dup {
				t.Fatalf("seed %d reused by %s and %s", rep.Seed, prev, at)
			}
			seen[rep.Seed] = at
		}
	}
}

// TestSeedsIndependentAcrossBaseSeeds guards against algebraic seed
// derivation: (BaseSeed=1, rep=1) must not collide with (BaseSeed=2,
// rep=0), or pooling data from two base seeds would double-count samples.
func TestSeedsIndependentAcrossBaseSeeds(t *testing.T) {
	cell := smallSweep().Grid.Cells()[0]
	seen := map[uint64]string{}
	for base := uint64(1); base <= 4; base++ {
		sw := smallSweep()
		sw.BaseSeed = base
		for rep := 0; rep < 8; rep++ {
			seed := sw.RepSeed(cell, rep)
			at := fmt.Sprintf("base %d rep %d", base, rep)
			if prev, dup := seen[seed]; dup {
				t.Fatalf("seed %d shared by %s and %s", seed, prev, at)
			}
			seen[seed] = at
		}
	}
}

// countingCache wraps a MemCache and counts hits and puts.
type countingCache struct {
	inner *MemCache
	hits  atomic.Int64
	puts  atomic.Int64
}

func (c *countingCache) Get(key string) (CellResult, bool) {
	cr, ok := c.inner.Get(key)
	if ok {
		c.hits.Add(1)
	}
	return cr, ok
}

func (c *countingCache) Put(key string, cr CellResult) error {
	c.puts.Add(1)
	return c.inner.Put(key, cr)
}

func TestCacheMakesRerunsIncremental(t *testing.T) {
	sw := smallSweep()
	cache := &countingCache{inner: NewMemCache()}
	first, err := Run(context.Background(), sw, Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.puts.Load(); got != int64(len(first.Cells)) {
		t.Fatalf("first run put %d cells, want %d", got, len(first.Cells))
	}
	second, err := Run(context.Background(), sw, Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.puts.Load(); got != int64(len(first.Cells)) {
		t.Fatalf("second run recomputed cells: %d puts total", got)
	}
	if got := cache.hits.Load(); got != int64(len(first.Cells)) {
		t.Fatalf("second run hit cache %d times, want %d", got, len(first.Cells))
	}
	if !reflect.DeepEqual(first.Cells, second.Cells) {
		t.Fatal("cached results differ from computed results")
	}
	// A different budget must not hit the old entries.
	swLonger := sw
	swLonger.Jobs *= 2
	if _, err := Run(context.Background(), swLonger, Options{Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if got := cache.puts.Load(); got != 2*int64(len(first.Cells)) {
		t.Fatalf("changed budget reused stale cache entries (%d puts)", got)
	}
}

// cancelAfterCache cancels the context once nputs cells have been cached.
type cancelAfterCache struct {
	inner  Cache
	cancel context.CancelFunc
	nputs  int
	mu     sync.Mutex
	count  int
}

func (c *cancelAfterCache) Get(key string) (CellResult, bool) { return c.inner.Get(key) }

func (c *cancelAfterCache) Put(key string, cr CellResult) error {
	err := c.inner.Put(key, cr)
	c.mu.Lock()
	c.count++
	if c.count == c.nputs {
		c.cancel()
	}
	c.mu.Unlock()
	return err
}

// TestCancellationLeavesCacheConsistent: canceling mid-sweep must (a) abort
// Run with the context error and (b) leave only fully-completed cells in the
// cache, so a rerun completes and matches an uncached run exactly.
func TestCancellationLeavesCacheConsistent(t *testing.T) {
	sw := smallSweep()
	mem := NewMemCache()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trigger := &cancelAfterCache{inner: mem, cancel: cancel, nputs: 2}
	_, err := Run(ctx, sw, Options{Workers: 2, Cache: trigger})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	banked := mem.Len()
	if banked == 0 {
		t.Fatal("no cells banked before cancellation")
	}
	if banked == len(sw.Grid.Cells()) {
		t.Skip("sweep finished before cancellation took effect")
	}

	resumed, err := Run(context.Background(), sw, Options{Workers: 2, Cache: mem})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(context.Background(), sw, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Cells, fresh.Cells) {
		t.Fatal("resumed-from-cache results differ from a fresh run")
	}
}

func TestFileCacheRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	fc, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := smallSweep()
	sw.Reps = 1
	sw.Jobs = 1_000
	first, err := Run(context.Background(), sw, Options{Workers: 2, Cache: fc})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh handle on the same file must serve every cell.
	reopened, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != len(first.Cells) {
		t.Fatalf("reopened cache has %d cells, want %d", reopened.Len(), len(first.Cells))
	}
	for _, c := range sw.Grid.Cells() {
		cr, ok := reopened.Get(sw.Key(c))
		if !ok {
			t.Fatalf("cell %v missing after reload", c)
		}
		if !reflect.DeepEqual(cr, first.Cells[indexOfCell(first, c)]) {
			t.Fatalf("cell %v corrupted by roundtrip", c)
		}
	}
	// A truncated trailing line (hard kill mid-append) must not poison the
	// cache: the corrupt line is skipped, the rest load.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte(`{"key":"abc","result":{tru`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	damaged, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if damaged.Len() != len(first.Cells) {
		t.Fatalf("damaged cache lost valid lines: %d of %d", damaged.Len(), len(first.Cells))
	}
	// ... and the skip is counted, not silent (cmd/simulate warns on it).
	if got := damaged.Corrupt(); got != 1 {
		t.Fatalf("damaged cache reports %d corrupt lines, want 1", got)
	}
	if got := reopened.Corrupt(); got != 0 {
		t.Fatalf("clean cache reports %d corrupt lines", got)
	}
	if err := damaged.Close(); err != nil {
		t.Fatal(err)
	}
	// Close with no Put ever issued must also be a no-op.
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileCachePersistentAppendHandle: Puts go through one long-lived
// O_APPEND handle; Close releases it and a later Put transparently reopens.
func TestFileCachePersistentAppendHandle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	fc, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.Put("k1", CellResult{ET: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fc.Put("k2", CellResult{ET: 2}); err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	back, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("cache holds %d entries after close/reopen-append, want 2", back.Len())
	}
}

func indexOfCell(rs *ResultSet, c Cell) int {
	for i, cr := range rs.Cells {
		if cr.Cell == c {
			return i
		}
	}
	return -1
}

func TestMapOrderAndParallelism(t *testing.T) {
	got, err := Map(context.Background(), 8, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapPanicIsolation(t *testing.T) {
	_, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	sentinel := errors.New("task failed")
	var ran atomic.Int64
	_, err := Map(context.Background(), 2, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 5 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("error did not cancel remaining tasks")
	}
}

func TestCachePutErrorSurfaced(t *testing.T) {
	sw := smallSweep()
	sw.Reps = 1
	_, err := Run(context.Background(), sw, Options{Workers: 2, Cache: failingCache{}})
	if err == nil || !strings.Contains(err.Error(), "caching cell") {
		t.Fatalf("cache failure not surfaced: %v", err)
	}
}

type failingCache struct{}

func (failingCache) Get(string) (CellResult, bool) { return CellResult{}, false }
func (failingCache) Put(string, CellResult) error  { return errors.New("disk full") }

// TestWorkerPoolStressRace hammers the dispatcher with more workers than
// cells, shared caches, and repeated runs; run under -race it is the
// regression net for pool data races (scripts/ci.sh runs it explicitly).
func TestWorkerPoolStressRace(t *testing.T) {
	sw := Sweep{
		Name: "stress",
		Grid: Grid{
			K:        []int{1, 2},
			Rho:      []float64{0.4, 0.6},
			MuI:      []float64{1, 2},
			MuE:      []float64{1},
			Policies: []string{"IF", "EF", "FCFS"},
		},
		Reps: 2,
		Jobs: 300,
	}
	cache := NewMemCache()
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Run(context.Background(), sw, Options{Workers: 16, Cache: cache}); err != nil {
				t.Errorf("stress run: %v", err)
			}
		}()
	}
	wg.Wait()
	rs, err := Run(context.Background(), sw, Options{Workers: 16, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range rs.Cells {
		if cr.ET <= 0 {
			t.Fatalf("cell %v has nonsense E[T] %v", cr.Cell, cr.ET)
		}
	}
}

func TestAutoWarmupAndBatchCI(t *testing.T) {
	sw := Sweep{
		Name:       "series",
		Grid:       Grid{K: []int{2}, Rho: []float64{0.6}, MuI: []float64{1}, MuE: []float64{1}, Policies: []string{"IF"}},
		Reps:       1,
		Jobs:       4_000,
		AutoWarmup: true,
		Batches:    10,
	}
	rs, err := Run(context.Background(), sw, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cr := rs.Cells[0]
	rep := cr.Reps[0]
	if rep.Trimmed < 0 || rep.Trimmed > int(sw.Jobs)/2+5 {
		t.Fatalf("implausible trim %d", rep.Trimmed)
	}
	if rep.BatchCI <= 0 {
		t.Fatalf("batch-means CI not computed: %+v", rep)
	}
	if rep.ESS <= 0 || rep.ESS > float64(rep.Completions) {
		t.Fatalf("implausible effective sample size %v of %d", rep.ESS, rep.Completions)
	}
	// Single replication: the cell CI falls back to the batch-means CI.
	if cr.ETCI != rep.BatchCI {
		t.Fatalf("cell CI %v != batch CI %v", cr.ETCI, rep.BatchCI)
	}
	if cr.ET <= 0 {
		t.Fatalf("nonsense E[T] %v", cr.ET)
	}
}

func TestScenarioSweepRuns(t *testing.T) {
	sw := Sweep{
		Name: "scenarios",
		Grid: Grid{
			K:         []int{4},
			Rho:       []float64{0.6},
			Scenarios: []string{"mapreduce", "hpcmalleable"},
			Policies:  []string{"IF", "EF"},
		},
		Reps: 1,
		Jobs: 2_000,
	}
	rs, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range rs.Cells {
		if cr.ET <= 0 {
			t.Fatalf("scenario cell %v has nonsense E[T] %v", cr.Cell, cr.ET)
		}
	}
}

func TestResultSetEmitters(t *testing.T) {
	sw := smallSweep()
	sw.Reps = 2
	sw.Jobs = 1_000
	rs, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := rs.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(rs.Cells) {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+len(rs.Cells))
	}
	if !strings.HasPrefix(lines[0], "k,rho,muI,muE,scenario,mix,policy") {
		t.Fatalf("csv header: %s", lines[0])
	}
	var js strings.Builder
	if err := rs.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"cells"`) || !strings.Contains(js.String(), `"reps"`) {
		t.Fatalf("json missing fields: %.200s", js.String())
	}
	curve := rs.Curve("IF", func(c Cell) float64 { return c.Rho })
	if len(curve.X) != 4 { // 2 rho × 2 muI cells run IF
		t.Fatalf("curve has %d points, want 4", len(curve.X))
	}
}
