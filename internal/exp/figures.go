package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mrt"
	"repro/internal/sim"
)

// This file holds the paper's figure and table drivers, ported from their
// original serial loops onto the worker pool: each grid point is one Map
// task, so a figure-scale sweep scales with the core count while producing
// exactly the same points in the same order.

// DefaultMuGrid reproduces the paper's 0.25..3.5 axes.
func DefaultMuGrid() []float64 {
	grid := make([]float64, 14)
	for i := range grid {
		grid[i] = 0.25 * float64(i+1)
	}
	return grid
}

// HeatmapPoint is one cell of the Figure 4 heat maps: the relative
// performance of IF and EF at a (muI, muE) grid point with rho held fixed.
type HeatmapPoint struct {
	MuI, MuE float64
	TIF, TEF float64
	// IFWins is true when IF's mean response time is at most EF's.
	IFWins bool
}

// Figure4 computes one heat map: for each (muI, muE) pair the arrival rates
// are rescaled to hold rho constant with lambdaI = lambdaE (the paper's
// protocol), then both policies are analyzed. Points come back in the serial
// driver's order (muI outer, muE inner) regardless of worker count.
func Figure4(ctx context.Context, k int, rho float64, grid []float64, workers int) ([]HeatmapPoint, error) {
	n := len(grid)
	return Map(ctx, workers, n*n, func(i int) (HeatmapPoint, error) {
		muI, muE := grid[i/n], grid[i%n]
		s := core.ForLoad(k, rho, muI, muE)
		ifRes, efRes, err := s.Analyze()
		if err != nil {
			return HeatmapPoint{}, fmt.Errorf("figure4 at (muI=%g, muE=%g): %w", muI, muE, err)
		}
		return HeatmapPoint{
			MuI: muI, MuE: muE,
			TIF: ifRes.T, TEF: efRes.T,
			IFWins: ifRes.T <= efRes.T,
		}, nil
	})
}

// CurvePoint is one x-position of the Figure 5 response-time curves.
type CurvePoint struct {
	MuI      float64
	TIF, TEF float64
}

// Figure5 computes E[T] under IF and EF as a function of muI with muE = 1,
// rho fixed, lambdaI = lambdaE, k servers.
func Figure5(ctx context.Context, k int, rho float64, muIs []float64, workers int) ([]CurvePoint, error) {
	return Map(ctx, workers, len(muIs), func(i int) (CurvePoint, error) {
		muI := muIs[i]
		s := core.ForLoad(k, rho, muI, 1.0)
		ifRes, efRes, err := s.Analyze()
		if err != nil {
			return CurvePoint{}, fmt.Errorf("figure5 at muI=%g: %w", muI, err)
		}
		return CurvePoint{MuI: muI, TIF: ifRes.T, TEF: efRes.T}, nil
	})
}

// KPoint is one x-position of the Figure 6 scaling curves.
type KPoint struct {
	K        int
	TIF, TEF float64
}

// Figure6 computes E[T] under IF and EF as the number of servers grows with
// rho held constant; the paper uses rho = 0.9 and the two extreme muI values
// of Figure 5c.
func Figure6(ctx context.Context, rho, muI, muE float64, ks []int, workers int) ([]KPoint, error) {
	return Map(ctx, workers, len(ks), func(i int) (KPoint, error) {
		k := ks[i]
		s := core.ForLoad(k, rho, muI, muE)
		ifRes, efRes, err := s.Analyze()
		if err != nil {
			return KPoint{}, fmt.Errorf("figure6 at k=%d: %w", k, err)
		}
		return KPoint{K: k, TIF: ifRes.T, TEF: efRes.T}, nil
	})
}

// ValidationRow is one line of the analysis-vs-simulation table backing the
// paper's "all numbers agree within 1%" claim.
type ValidationRow struct {
	K              int
	Rho, MuI, MuE  float64
	Policy         string
	Analysis       float64
	Simulation     float64
	RelErr         float64
	SimCompletions int64
}

// ValidateAnalysis compares the matrix-analytic E[T] against long
// simulations for both policies at each configuration. Each (muI, policy)
// pair is one pool task; rows keep the serial driver's order.
func ValidateAnalysis(ctx context.Context, k int, rho float64, muIs []float64, opt core.SimOptions, workers int) ([]ValidationRow, error) {
	pols := []string{"IF", "EF"}
	return Map(ctx, workers, len(muIs)*len(pols), func(i int) (ValidationRow, error) {
		muI, polName := muIs[i/len(pols)], pols[i%len(pols)]
		s := core.ForLoad(k, rho, muI, 1.0)
		analyze := mrt.IF
		if polName == "EF" {
			analyze = mrt.EF
		}
		anRes, err := analyze(s.Params(), mrt.Coxian3Moment)
		if err != nil {
			return ValidationRow{}, err
		}
		analysis := anRes.T
		p, err := s.PolicyByName(polName)
		if err != nil {
			return ValidationRow{}, err
		}
		res := s.Simulate(p, opt)
		return ValidationRow{
			K: k, Rho: rho, MuI: muI, MuE: 1.0,
			Policy:   polName,
			Analysis: analysis, Simulation: res.MeanT,
			RelErr:         (res.MeanT - analysis) / analysis,
			SimCompletions: res.Completions,
		}, nil
	})
}

// BusyPeriodAblation fans the busy-period fit ablation (core.BusyPeriodAblation)
// out over the muI grid, one pool task per point.
func BusyPeriodAblation(ctx context.Context, k int, rho float64, muIs []float64, workers int) ([]core.AblationRow, error) {
	perMu, err := Map(ctx, workers, len(muIs), func(i int) ([]core.AblationRow, error) {
		return core.BusyPeriodAblation(k, rho, []float64{muIs[i]})
	})
	if err != nil {
		return nil, err
	}
	var out []core.AblationRow
	for _, rows := range perMu {
		out = append(out, rows...)
	}
	return out, nil
}

// DominanceConfig describes the Theorem 3 coupled sample-path experiment:
// policies A and B driven in lockstep over identical arrival traces, work
// compared at every event epoch, repeated over independent traces.
type DominanceConfig struct {
	K                int
	Rho, MuI, MuE    float64
	PolicyA, PolicyB string
	// Arrivals per trace.
	Arrivals int
	// Seeds is the number of independent traces (seeds 1..Seeds).
	Seeds int
	// Tol absorbs floating-point noise in the work comparison (default 1e-7).
	Tol     float64
	Workers int
}

// DominanceRun is the outcome of one coupled trace.
type DominanceRun struct {
	Seed       uint64
	Checked    int
	Violations int
	// First is the first violation's description, empty when A dominated.
	First string
	// RatioAB is mean response under A divided by mean response under B on
	// the coupled trace.
	RatioAB float64
}

// Dominance runs the coupled experiment, one trace per pool task.
func Dominance(ctx context.Context, cfg DominanceConfig) ([]DominanceRun, error) {
	if cfg.K < 1 || cfg.Arrivals < 1 || cfg.Seeds < 1 {
		return nil, fmt.Errorf("exp: dominance needs k, arrivals and seeds >= 1 (got k=%d n=%d seeds=%d)",
			cfg.K, cfg.Arrivals, cfg.Seeds)
	}
	if !(cfg.Rho > 0 && cfg.Rho < 1) || cfg.MuI <= 0 || cfg.MuE <= 0 {
		return nil, fmt.Errorf("exp: dominance needs rho in (0,1) and positive service rates")
	}
	s := core.ForLoad(cfg.K, cfg.Rho, cfg.MuI, cfg.MuE)
	// Validate the policy names up front; the per-task instances are
	// constructed inside each task because stateful policies (FCFS, SRPT,
	// LFF, SMF) maintain reusable buffers that must not be shared across
	// pool workers.
	if _, err := s.PolicyByName(cfg.PolicyA); err != nil {
		return nil, err
	}
	if _, err := s.PolicyByName(cfg.PolicyB); err != nil {
		return nil, err
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-7
	}
	model := s.Model()
	return Map(ctx, cfg.Workers, cfg.Seeds, func(i int) (DominanceRun, error) {
		seed := uint64(i + 1)
		a, err := s.PolicyByName(cfg.PolicyA)
		if err != nil {
			return DominanceRun{}, err
		}
		b, err := s.PolicyByName(cfg.PolicyB)
		if err != nil {
			return DominanceRun{}, err
		}
		trace := model.Trace(seed, cfg.Arrivals)
		rep := sim.CompareWork(cfg.K, trace, a, b, tol)
		if rep.CompletedA == 0 || rep.CompletedB == 0 {
			return DominanceRun{}, fmt.Errorf("exp: dominance seed %d: trace of %d arrivals completed %d/%d jobs; too short to compare",
				seed, cfg.Arrivals, rep.CompletedA, rep.CompletedB)
		}
		run := DominanceRun{
			Seed: seed, Checked: rep.Checked, Violations: len(rep.Violations),
			RatioAB: (rep.SumRespA / float64(rep.CompletedA)) / (rep.SumRespB / float64(rep.CompletedB)),
		}
		if len(rep.Violations) > 0 {
			run.First = rep.Violations[0].String()
		}
		return run, nil
	})
}

// RenderHeatmapASCII draws the Figure 4 heat map in the terminal: rows are
// muE (descending, like the paper's y-axis), columns are muI; 'o' marks
// cells where IF dominates and '+' where EF dominates, matching the paper's
// red-circle/blue-plus convention.
func RenderHeatmapASCII(points []HeatmapPoint) string {
	muIs := uniqueSorted(points, func(p HeatmapPoint) float64 { return p.MuI })
	muEs := uniqueSorted(points, func(p HeatmapPoint) float64 { return p.MuE })
	cell := make(map[[2]float64]bool, len(points))
	for _, p := range points {
		cell[[2]float64{p.MuI, p.MuE}] = p.IFWins
	}
	var b strings.Builder
	for r := len(muEs) - 1; r >= 0; r-- {
		fmt.Fprintf(&b, "muE=%5.2f |", muEs[r])
		for _, muI := range muIs {
			if cell[[2]float64{muI, muEs[r]}] {
				b.WriteString(" o")
			} else {
				b.WriteString(" +")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("           ")
	for range muIs {
		b.WriteString("--")
	}
	b.WriteString("\n            muI: ")
	for _, muI := range muIs {
		fmt.Fprintf(&b, "%.2g ", muI)
	}
	b.WriteString("\n( o = IF superior, + = EF superior )\n")
	return b.String()
}

// WriteHeatmapCSV emits the Figure 4 data as CSV.
func WriteHeatmapCSV(w io.Writer, points []HeatmapPoint) error {
	if _, err := fmt.Fprintln(w, "muI,muE,ET_IF,ET_EF,winner"); err != nil {
		return err
	}
	for _, p := range points {
		winner := "EF"
		if p.IFWins {
			winner = "IF"
		}
		if _, err := fmt.Fprintf(w, "%g,%g,%.6f,%.6f,%s\n", p.MuI, p.MuE, p.TIF, p.TEF, winner); err != nil {
			return err
		}
	}
	return nil
}

// WriteCurveCSV emits the Figure 5 data as CSV.
func WriteCurveCSV(w io.Writer, points []CurvePoint) error {
	if _, err := fmt.Fprintln(w, "muI,ET_IF,ET_EF"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%g,%.6f,%.6f\n", p.MuI, p.TIF, p.TEF); err != nil {
			return err
		}
	}
	return nil
}

// WriteKCurveCSV emits the Figure 6 data as CSV.
func WriteKCurveCSV(w io.Writer, points []KPoint) error {
	if _, err := fmt.Fprintln(w, "k,ET_IF,ET_EF"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f\n", p.K, p.TIF, p.TEF); err != nil {
			return err
		}
	}
	return nil
}

// WriteValidationTable renders the analysis-vs-simulation comparison.
func WriteValidationTable(w io.Writer, rows []ValidationRow) error {
	if _, err := fmt.Fprintln(w, "k,rho,muI,muE,policy,ET_analysis,ET_simulation,rel_err"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%s,%.6f,%.6f,%+.4f%%\n",
			r.K, r.Rho, r.MuI, r.MuE, r.Policy, r.Analysis, r.Simulation, 100*r.RelErr); err != nil {
			return err
		}
	}
	return nil
}

func uniqueSorted(points []HeatmapPoint, get func(HeatmapPoint) float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range points {
		v := get(p)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}
