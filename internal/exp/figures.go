package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// This file holds the paper's figure and table drivers, ported from their
// original serial loops onto the dispatch backends: each grid point is one
// serializable task submitted to opt's Backend (the in-process goroutine
// pool by default, worker subprocesses under ProcBackend), so a
// figure-scale sweep scales with the hardware while producing exactly the
// same points in the same order. Options.Cache (cell granularity) does not
// apply to these drivers — their tasks belong to no Sweep cell — but
// Options.TaskCache memoizes the individual grid points, keyed by
// exp.TaskKey, so a re-run of a figure recomputes only what changed.

// DefaultMuGrid reproduces the paper's 0.25..3.5 axes.
func DefaultMuGrid() []float64 {
	grid := make([]float64, 14)
	for i := range grid {
		grid[i] = 0.25 * float64(i+1)
	}
	return grid
}

// HeatmapPoint is one cell of the Figure 4 heat maps: the relative
// performance of IF and EF at a (muI, muE) grid point with rho held fixed.
type HeatmapPoint struct {
	MuI, MuE float64
	TIF, TEF float64
	// IFWins is true when IF's mean response time is at most EF's.
	IFWins bool
}

// analyzePoints fans the exact-analysis points out on opt's backend and
// returns the per-point results in order — the shared engine of the Figure
// 4/5/6 drivers.
func analyzePoints(ctx context.Context, opt Options, pts []AnalyzePoint) ([]AnalyzeOut, error) {
	tasks := make([]Task, len(pts))
	for i := range pts {
		tasks[i] = Task{Analyze: &pts[i]}
	}
	outs, err := submitAll(ctx, opt, Env{}, tasks)
	if err != nil {
		return nil, err
	}
	res := make([]AnalyzeOut, len(outs))
	for i, out := range outs {
		res[i] = *out.Analyze
	}
	return res, nil
}

// Figure4 computes one heat map: for each (muI, muE) pair the arrival rates
// are rescaled to hold rho constant with lambdaI = lambdaE (the paper's
// protocol), then both policies are analyzed. Points come back in the serial
// driver's order (muI outer, muE inner) regardless of worker count or
// backend.
func Figure4(ctx context.Context, k int, rho float64, grid []float64, opt Options) ([]HeatmapPoint, error) {
	n := len(grid)
	pts := make([]AnalyzePoint, n*n)
	for i := range pts {
		pts[i] = AnalyzePoint{K: k, Rho: rho, MuI: grid[i/n], MuE: grid[i%n]}
	}
	outs, err := analyzePoints(ctx, opt, pts)
	if err != nil {
		return nil, err
	}
	points := make([]HeatmapPoint, len(outs))
	for i, out := range outs {
		points[i] = HeatmapPoint{
			MuI: pts[i].MuI, MuE: pts[i].MuE,
			TIF: out.TIF, TEF: out.TEF,
			IFWins: out.TIF <= out.TEF,
		}
	}
	return points, nil
}

// CurvePoint is one x-position of the Figure 5 response-time curves.
type CurvePoint struct {
	MuI      float64
	TIF, TEF float64
}

// Figure5 computes E[T] under IF and EF as a function of muI with muE = 1,
// rho fixed, lambdaI = lambdaE, k servers.
func Figure5(ctx context.Context, k int, rho float64, muIs []float64, opt Options) ([]CurvePoint, error) {
	pts := make([]AnalyzePoint, len(muIs))
	for i, muI := range muIs {
		pts[i] = AnalyzePoint{K: k, Rho: rho, MuI: muI, MuE: 1.0}
	}
	outs, err := analyzePoints(ctx, opt, pts)
	if err != nil {
		return nil, err
	}
	points := make([]CurvePoint, len(outs))
	for i, out := range outs {
		points[i] = CurvePoint{MuI: muIs[i], TIF: out.TIF, TEF: out.TEF}
	}
	return points, nil
}

// KPoint is one x-position of the Figure 6 scaling curves.
type KPoint struct {
	K        int
	TIF, TEF float64
}

// Figure6 computes E[T] under IF and EF as the number of servers grows with
// rho held constant; the paper uses rho = 0.9 and the two extreme muI values
// of Figure 5c.
func Figure6(ctx context.Context, rho, muI, muE float64, ks []int, opt Options) ([]KPoint, error) {
	pts := make([]AnalyzePoint, len(ks))
	for i, k := range ks {
		pts[i] = AnalyzePoint{K: k, Rho: rho, MuI: muI, MuE: muE}
	}
	outs, err := analyzePoints(ctx, opt, pts)
	if err != nil {
		return nil, err
	}
	points := make([]KPoint, len(outs))
	for i, out := range outs {
		points[i] = KPoint{K: ks[i], TIF: out.TIF, TEF: out.TEF}
	}
	return points, nil
}

// ValidationRow is one line of the analysis-vs-simulation table backing the
// paper's "all numbers agree within 1%" claim.
type ValidationRow struct {
	K              int
	Rho, MuI, MuE  float64
	Policy         string
	Analysis       float64
	Simulation     float64
	RelErr         float64
	SimCompletions int64
}

// ValidateAnalysis compares the matrix-analytic E[T] against long
// simulations for both policies at each configuration. Each (muI, policy)
// pair is one backend task; rows keep the serial driver's order.
func ValidateAnalysis(ctx context.Context, k int, rho float64, muIs []float64, opt core.SimOptions, o Options) ([]ValidationRow, error) {
	pols := []string{"IF", "EF"}
	tasks := make([]Task, len(muIs)*len(pols))
	for i := range tasks {
		tasks[i] = Task{Validate: &ValidatePoint{
			K: k, Rho: rho, MuI: muIs[i/len(pols)], MuE: 1.0,
			Policy: pols[i%len(pols)], Opt: opt,
		}}
	}
	outs, err := submitAll(ctx, o, Env{}, tasks)
	if err != nil {
		return nil, err
	}
	rows := make([]ValidationRow, len(outs))
	for i, out := range outs {
		rows[i] = *out.Validate
	}
	return rows, nil
}

// BusyPeriodAblation fans the busy-period fit ablation (core.BusyPeriodAblation)
// out over the muI grid, one backend task per point.
func BusyPeriodAblation(ctx context.Context, k int, rho float64, muIs []float64, o Options) ([]core.AblationRow, error) {
	tasks := make([]Task, len(muIs))
	for i, muI := range muIs {
		tasks[i] = Task{Ablation: &AblationPoint{K: k, Rho: rho, MuI: muI}}
	}
	outs, err := submitAll(ctx, o, Env{}, tasks)
	if err != nil {
		return nil, err
	}
	var rows []core.AblationRow
	for _, out := range outs {
		rows = append(rows, out.Ablation...)
	}
	return rows, nil
}

// DominanceConfig describes the Theorem 3 coupled sample-path experiment:
// policies A and B driven in lockstep over identical arrival traces, work
// compared at every event epoch, repeated over independent traces.
type DominanceConfig struct {
	K                int
	Rho, MuI, MuE    float64
	PolicyA, PolicyB string
	// Arrivals per trace.
	Arrivals int
	// Seeds is the number of independent traces (seeds 1..Seeds).
	Seeds int
	// Tol absorbs floating-point noise in the work comparison (default 1e-7).
	Tol     float64
	Workers int
	// Backend optionally overrides where the traces run (nil means the
	// in-process pool with Workers goroutines).
	Backend Backend
	// Cache optionally memoizes per-trace outcomes keyed by exp.TaskKey, so
	// repeating the experiment (or extending Seeds) recomputes only the
	// missing traces.
	Cache OutcomeCache
}

// DominanceRun is the outcome of one coupled trace.
type DominanceRun struct {
	Seed       uint64
	Checked    int
	Violations int
	// First is the first violation's description, empty when A dominated.
	First string
	// RatioAB is mean response under A divided by mean response under B on
	// the coupled trace.
	RatioAB float64
}

// Dominance runs the coupled experiment, one trace per backend task (seeds
// 1..Seeds, in order).
func Dominance(ctx context.Context, cfg DominanceConfig) ([]DominanceRun, error) {
	if cfg.K < 1 || cfg.Arrivals < 1 || cfg.Seeds < 1 {
		return nil, fmt.Errorf("exp: dominance needs k, arrivals and seeds >= 1 (got k=%d n=%d seeds=%d)",
			cfg.K, cfg.Arrivals, cfg.Seeds)
	}
	if !(cfg.Rho > 0 && cfg.Rho < 1) || cfg.MuI <= 0 || cfg.MuE <= 0 {
		return nil, fmt.Errorf("exp: dominance needs rho in (0,1) and positive service rates")
	}
	// Validate the policy names up front; per-trace instances are
	// constructed inside each task (see runDominanceTrace) because stateful
	// policies maintain reusable buffers that must not be shared across
	// workers.
	s := core.ForLoad(cfg.K, cfg.Rho, cfg.MuI, cfg.MuE)
	if _, err := s.PolicyByName(cfg.PolicyA); err != nil {
		return nil, err
	}
	if _, err := s.PolicyByName(cfg.PolicyB); err != nil {
		return nil, err
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-7
	}
	tasks := make([]Task, cfg.Seeds)
	for i := range tasks {
		tasks[i] = Task{Dominance: &DominanceTrace{
			K: cfg.K, Rho: cfg.Rho, MuI: cfg.MuI, MuE: cfg.MuE,
			PolicyA: cfg.PolicyA, PolicyB: cfg.PolicyB,
			Arrivals: cfg.Arrivals, Tol: tol, Seed: uint64(i + 1),
		}}
	}
	outs, err := submitAll(ctx, Options{Workers: cfg.Workers, Backend: cfg.Backend, TaskCache: cfg.Cache}, Env{}, tasks)
	if err != nil {
		return nil, err
	}
	runs := make([]DominanceRun, len(outs))
	for i, out := range outs {
		runs[i] = *out.Dominance
	}
	return runs, nil
}

// RenderHeatmapASCII draws the Figure 4 heat map in the terminal: rows are
// muE (descending, like the paper's y-axis), columns are muI; 'o' marks
// cells where IF dominates and '+' where EF dominates, matching the paper's
// red-circle/blue-plus convention.
func RenderHeatmapASCII(points []HeatmapPoint) string {
	muIs := uniqueSorted(points, func(p HeatmapPoint) float64 { return p.MuI })
	muEs := uniqueSorted(points, func(p HeatmapPoint) float64 { return p.MuE })
	cell := make(map[[2]float64]bool, len(points))
	for _, p := range points {
		cell[[2]float64{p.MuI, p.MuE}] = p.IFWins
	}
	var b strings.Builder
	for r := len(muEs) - 1; r >= 0; r-- {
		fmt.Fprintf(&b, "muE=%5.2f |", muEs[r])
		for _, muI := range muIs {
			if cell[[2]float64{muI, muEs[r]}] {
				b.WriteString(" o")
			} else {
				b.WriteString(" +")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("           ")
	for range muIs {
		b.WriteString("--")
	}
	b.WriteString("\n            muI: ")
	for _, muI := range muIs {
		fmt.Fprintf(&b, "%.2g ", muI)
	}
	b.WriteString("\n( o = IF superior, + = EF superior )\n")
	return b.String()
}

// WriteHeatmapCSV emits the Figure 4 data as CSV.
func WriteHeatmapCSV(w io.Writer, points []HeatmapPoint) error {
	if _, err := fmt.Fprintln(w, "muI,muE,ET_IF,ET_EF,winner"); err != nil {
		return err
	}
	for _, p := range points {
		winner := "EF"
		if p.IFWins {
			winner = "IF"
		}
		if _, err := fmt.Fprintf(w, "%g,%g,%.6f,%.6f,%s\n", p.MuI, p.MuE, p.TIF, p.TEF, winner); err != nil {
			return err
		}
	}
	return nil
}

// WriteCurveCSV emits the Figure 5 data as CSV.
func WriteCurveCSV(w io.Writer, points []CurvePoint) error {
	if _, err := fmt.Fprintln(w, "muI,ET_IF,ET_EF"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%g,%.6f,%.6f\n", p.MuI, p.TIF, p.TEF); err != nil {
			return err
		}
	}
	return nil
}

// WriteKCurveCSV emits the Figure 6 data as CSV.
func WriteKCurveCSV(w io.Writer, points []KPoint) error {
	if _, err := fmt.Fprintln(w, "k,ET_IF,ET_EF"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f\n", p.K, p.TIF, p.TEF); err != nil {
			return err
		}
	}
	return nil
}

// WriteValidationTable renders the analysis-vs-simulation comparison.
func WriteValidationTable(w io.Writer, rows []ValidationRow) error {
	if _, err := fmt.Fprintln(w, "k,rho,muI,muE,policy,ET_analysis,ET_simulation,rel_err"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%s,%.6f,%.6f,%+.4f%%\n",
			r.K, r.Rho, r.MuI, r.MuE, r.Policy, r.Analysis, r.Simulation, 100*r.RelErr); err != nil {
			return err
		}
	}
	return nil
}

func uniqueSorted(points []HeatmapPoint, get func(HeatmapPoint) float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range points {
		v := get(p)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}
