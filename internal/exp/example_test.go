package exp_test

import (
	"context"
	"fmt"

	"repro/internal/exp"
)

// ExampleRun declares a 3-point load sweep and executes it on the worker
// pool. Seeds derive from cell identity, so the printed numbers are
// identical no matter how many workers run the sweep.
func ExampleRun() {
	sweep := exp.Sweep{
		Name: "rho-sweep",
		Grid: exp.Grid{
			K:        []int{4},
			Rho:      []float64{0.5, 0.7, 0.9},
			MuI:      []float64{2},
			MuE:      []float64{1},
			Policies: []string{"IF"},
		},
		Reps:     2,
		BaseSeed: 1,
		Warmup:   2_000,
		Jobs:     30_000,
	}
	rs, err := exp.Run(context.Background(), sweep, exp.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	for _, cr := range rs.Cells {
		fmt.Printf("rho=%.1f E[T]=%.3f\n", cr.Cell.Rho, cr.ET)
	}
	// Output:
	// rho=0.5 E[T]=0.512
	// rho=0.7 E[T]=0.722
	// rho=0.9 E[T]=1.662
}
