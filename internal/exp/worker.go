package exp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WorkerEnv is the environment variable ProcBackend sets in its worker
// subprocesses. A binary that may serve as a dispatch worker (cmd/simulate,
// cmd/figures, cmd/dominance, and any custom ProcBackend.Command target)
// calls MaybeServeWorker first thing in main; cmd/expworker serves
// unconditionally.
const WorkerEnv = "REPRO_EXP_WORKER"

// workerDieAfterEnv is a fault-injection hook for the worker-death retry
// tests: when set to N > 0 the worker process exits abruptly (simulating a
// crash or OOM kill) after serving N tasks.
const workerDieAfterEnv = "REPRO_EXP_WORKER_DIE_AFTER"

// MaybeServeWorker turns the current process into a dispatch worker when
// WorkerEnv is set: it serves the ProcBackend wire protocol on
// stdin/stdout until stdin closes, then exits. Call it first thing in
// main: ProcBackend re-executes the parent binary's path with *no*
// arguments, so the worker must take over before the driver parses its
// (empty) flags and starts acting on their defaults. When WorkerEnv is
// unset it returns immediately.
func MaybeServeWorker() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "expworker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker is the worker side of ProcBackend's protocol: it reads the
// hello frame (protocol version + submission Env), then answers request
// frames with response frames until r reaches a clean EOF. Task panics are
// recovered into per-task errors by runTask, so a poisoned task is reported
// without killing the session; only the process-level failures ProcBackend
// is built to survive (crashes, kills) end a worker abnormally.
func ServeWorker(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	var hello helloMsg
	if err := readFrame(br, &hello); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // parent went away before the handshake
		}
		return fmt.Errorf("reading hello: %w", err)
	}
	if hello.V != wireVersion {
		return fmt.Errorf("protocol version mismatch: parent speaks v%d, worker speaks v%d (rebuild the worker binary)", hello.V, wireVersion)
	}
	if err := writeFrame(bw, respMsg{ID: readyID}); err != nil {
		return fmt.Errorf("acknowledging hello: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("acknowledging hello: %w", err)
	}
	dieAfter, _ := strconv.Atoi(os.Getenv(workerDieAfterEnv))
	served := 0
	for {
		var req reqMsg
		if err := readFrame(br, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("reading request: %w", err)
		}
		out, err := runTask(hello.Env, req.Task)
		resp := respMsg{ID: req.ID, Out: out}
		if err != nil {
			resp.Err = err.Error()
		}
		if werr := writeFrame(bw, resp); werr != nil {
			// Result not representable (e.g. NaN in a field json cannot
			// carry): degrade to a task error, which always marshals.
			resp = respMsg{ID: req.ID, Err: fmt.Sprintf("exp: %s: un-encodable result: %v", req.Task.Label(), werr)}
			if werr := writeFrame(bw, resp); werr != nil {
				return fmt.Errorf("writing response: %w", werr)
			}
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("flushing response: %w", err)
		}
		served++
		if dieAfter > 0 && served >= dieAfter {
			os.Exit(3) // fault injection: die without cleanup, mid-session
		}
	}
}
