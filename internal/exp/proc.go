package exp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"sync/atomic"
)

// ProcBackend shards tasks across worker subprocesses speaking the
// length-delimited JSONL protocol of this package over stdin/stdout. Each
// worker serves one task at a time; tasks are pulled from a shared queue,
// so fast workers naturally take more of the load. The backend survives
// worker death (crash, OOM kill): the slot restarts its worker and retries
// the in-flight task as the fresh worker's first task — up to
// MaxTaskAttempts per task. Canceling the submit context kills the whole
// worker set.
//
// Because every task is serializable and seeds/cache keys ride inside the
// TaskSpec, a ProcBackend run is bit-identical to a PoolBackend run of the
// same submission (the executing code is the same runTask on both sides of
// the pipe). This is the load-bearing seam for a future multi-host backend:
// replacing the pipe transport with a socket changes nothing above it.
//
// Each Submit call spawns a fresh worker set and tears it down when the
// batch completes, so process startup is paid per submission. That cost is
// negligible against simulation-scale sweeps (the backend's purpose) but
// dominates micro-batches of cheap analytic tasks — drivers that issue
// many small submissions (e.g. figures -fig all) work correctly under
// proc, just without a speedup on the tiny grids.
type ProcBackend struct {
	// Procs is the number of worker subprocesses; <= 0 means GOMAXPROCS.
	Procs int
	// Command is the worker argv. Empty means re-executing this binary
	// (os.Executable) — which works for any binary that calls
	// MaybeServeWorker first thing in main, as cmd/simulate, cmd/figures
	// and cmd/dominance do. Point it at a built cmd/expworker to keep the
	// worker image separate.
	Command []string
	// MaxTaskAttempts bounds how many times one task is attempted across
	// worker deaths before the submission fails; <= 0 means 3. A task
	// *error* (bad cell, panic) is never retried — errors are
	// deterministic and surface immediately; only worker death triggers a
	// retry.
	MaxTaskAttempts int
	// Stderr receives the workers' stderr; nil means os.Stderr.
	Stderr io.Writer

	restarts atomic.Int64
}

// Restarts reports how many worker deaths this backend has survived — an
// observability hook for the retry tests and for operators watching a
// flaky fleet.
func (p *ProcBackend) Restarts() int64 { return p.restarts.Load() }

// Submit implements Backend.
func (p *ProcBackend) Submit(ctx context.Context, env Env, tasks []Task, emit func(TaskResult) error) error {
	n := len(tasks)
	if n == 0 {
		return ctx.Err()
	}
	procs := p.Procs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	if procs > n {
		procs = n
	}
	command := p.Command
	if len(command) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("exp: proc backend: resolving worker binary: %w", err)
		}
		command = []string{exe}
	}
	maxAttempts := p.MaxTaskAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	stderr := p.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s := &procSubmit{
		backend:     p,
		command:     command,
		env:         env,
		stderr:      stderr,
		tasks:       tasks,
		queue:       make(chan int, n), // capacity n so give-backs never block
		allDone:     make(chan struct{}),
		maxAttempts: maxAttempts,
		emit:        emit,
		cancel:      cancel,
		attempts:    make([]int, n),
	}
	for i := range tasks {
		s.queue <- i
	}

	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runWorkerLoop(ctx)
		}()
	}
	wg.Wait()

	s.mu.Lock()
	err := s.firstErr
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return nil
}

// procSubmit is the shared state of one Submit call: the immutable batch
// plus the mutex-guarded progress accounting the worker slots coordinate
// through.
type procSubmit struct {
	backend     *ProcBackend
	command     []string
	env         Env
	stderr      io.Writer
	tasks       []Task
	queue       chan int      // indices of tasks not currently owned by a slot
	allDone     chan struct{} // closed when the last task completes
	maxAttempts int
	emit        func(TaskResult) error
	cancel      context.CancelFunc

	mu       sync.Mutex
	firstErr error
	attempts []int // failed attempts per task
	done     int
}

// fail records the submission's first error and cancels the worker set.
func (s *procSubmit) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil && err != nil {
		s.firstErr = err
		s.cancel()
	}
	s.mu.Unlock()
}

// runWorkerLoop owns one worker slot: it keeps a subprocess alive, feeds it
// tasks one at a time, and restarts it when it dies.
func (s *procSubmit) runWorkerLoop(ctx context.Context) {
	var proc *workerProc
	defer func() {
		if proc != nil {
			proc.kill()
		}
	}()
	var i int
	haveTask := false
	for {
		if !haveTask {
			select {
			case <-ctx.Done():
				return
			case <-s.allDone:
				return
			case i = <-s.queue:
				haveTask = true
			}
		}

		if proc == nil {
			wp, err := startWorker(ctx, s.command, s.env, s.stderr)
			if err != nil {
				s.queue <- i // give the task back before giving up the slot
				if ctx.Err() == nil {
					s.fail(fmt.Errorf("exp: proc backend: starting worker %v: %w", s.command, err))
				}
				return
			}
			proc = wp
		}

		resp, err := proc.do(reqMsg{ID: i, Task: s.tasks[i]})
		if err != nil {
			// The worker passed the handshake but died (or desynced) with
			// this task in flight. Keep the task in this slot and retry it
			// as the restarted worker's *first* task — so a task that was
			// merely collateral of a flaky worker converges instead of
			// repeatedly landing at another worker's death boundary —
			// within its attempt budget.
			proc.kill()
			proc = nil
			if ctx.Err() != nil {
				s.queue <- i
				return
			}
			s.backend.restarts.Add(1)
			s.mu.Lock()
			s.attempts[i]++
			a := s.attempts[i]
			s.mu.Unlock()
			if a >= s.maxAttempts {
				s.fail(fmt.Errorf("exp: proc backend: %s failed %d times across worker deaths (last: %v)", s.tasks[i].Label(), a, err))
				return
			}
			continue
		}
		haveTask = false
		if resp.Err != "" {
			// Deterministic task failure: do not retry, surface it.
			s.fail(fmt.Errorf("%s", resp.Err))
			return
		}
		if err := s.emit(TaskResult{Index: i, Outcome: resp.Out}); err != nil {
			s.fail(err)
			return
		}
		s.mu.Lock()
		s.done++
		finished := s.done == len(s.tasks)
		s.mu.Unlock()
		if finished {
			close(s.allDone)
			return
		}
	}
}

// workerProc is one live worker subprocess with its pipes, past the hello
// handshake.
type workerProc struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	bw  *bufio.Writer
	br  *bufio.Reader
}

// startWorker launches a worker, completes the hello handshake, and returns
// the live session. The context is wired into the process itself
// (exec.CommandContext), so cancellation kills the whole worker set even if
// a worker is wedged mid-task.
func startWorker(ctx context.Context, command []string, env Env, stderr io.Writer) (*workerProc, error) {
	cmd := exec.CommandContext(ctx, command[0], command[1:]...)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stderr = stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	wp := &workerProc{cmd: cmd, in: in, bw: bufio.NewWriter(in), br: bufio.NewReader(out)}
	if err := writeFrame(wp.bw, helloMsg{V: wireVersion, Env: env}); err != nil {
		wp.kill()
		return nil, fmt.Errorf("sending hello: %w", err)
	}
	if err := wp.bw.Flush(); err != nil {
		wp.kill()
		return nil, fmt.Errorf("sending hello: %w", err)
	}
	// The ready ack separates "this binary does not speak the protocol"
	// (handshake fails here, before any task is risked) from "a task
	// crashed the worker" (death after a successful handshake, handled by
	// the per-task retry accounting).
	var ready respMsg
	if err := readFrame(wp.br, &ready); err != nil {
		wp.kill()
		return nil, fmt.Errorf("handshake failed — is %q a protocol worker (cmd/expworker, or a binary calling exp.MaybeServeWorker first thing in main)? its stderr may name the cause: %w", command[0], err)
	}
	if ready.ID != readyID {
		wp.kill()
		return nil, fmt.Errorf("handshake desync: worker %q answered hello with id %d", command[0], ready.ID)
	}
	return wp, nil
}

// do runs one request/response exchange.
func (wp *workerProc) do(req reqMsg) (respMsg, error) {
	if err := writeFrame(wp.bw, req); err != nil {
		return respMsg{}, err
	}
	if err := wp.bw.Flush(); err != nil {
		return respMsg{}, err
	}
	var resp respMsg
	if err := readFrame(wp.br, &resp); err != nil {
		return respMsg{}, fmt.Errorf("worker exited mid-task: %w", err)
	}
	if resp.ID != req.ID {
		return respMsg{}, fmt.Errorf("protocol desync: sent task %d, got response for %d", req.ID, resp.ID)
	}
	return resp, nil
}

// kill tears the worker down and reaps it.
func (wp *workerProc) kill() {
	wp.in.Close()
	if wp.cmd.Process != nil {
		wp.cmd.Process.Kill()
	}
	wp.cmd.Wait()
}
