package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Replication is the outcome of one independent simulation run of a cell.
type Replication struct {
	Rep    int     `json:"rep"`
	Seed   uint64  `json:"seed"`
	MeanT  float64 `json:"meanT"`
	MeanTI float64 `json:"meanTI"`
	MeanTE float64 `json:"meanTE"`
	// PerClass holds the per-class mean response times for cells with more
	// than two classes (class-mix cells); MeanTI/MeanTE mirror classes 0/1.
	PerClass    []float64 `json:"perClass,omitempty"`
	MeanN       float64   `json:"meanN"`
	Util        float64   `json:"util"`
	Completions int64     `json:"completions"`
	// Trimmed counts observations discarded by MSER warmup trimming
	// (AutoWarmup mode only).
	Trimmed int `json:"trimmed,omitempty"`
	// BatchCI is the within-replication batch-means 95% half-width
	// (Batches > 1 only).
	BatchCI float64 `json:"batchCI,omitempty"`
	// ESS is the effective sample size of the response series, n/tau with
	// tau the integrated autocorrelation time (series modes only).
	ESS float64 `json:"ess,omitempty"`
}

// runReplication executes one (cell, replication) task. Panics anywhere in
// the model, policy or simulator surface as errors for this task only.
func (sw Sweep) runReplication(c Cell, rep int) (r Replication, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: cell %v replication %d panicked: %v", c, rep, p)
		}
	}()
	seed := sw.repSeed(c, rep)
	pol, err := c.policyImpl()
	if err != nil {
		return r, err
	}
	src, err := c.sourceImpl(seed)
	if err != nil {
		return r, err
	}
	specs, err := c.classesImpl()
	if err != nil {
		return r, err
	}
	warmup := sw.Warmup
	if sw.AutoWarmup {
		warmup = 0
	}
	cfg := sim.RunConfig{K: c.K, Policy: pol, Source: src, Classes: specs,
		WarmupJobs: warmup, MaxJobs: sw.Jobs}
	r = Replication{Rep: rep, Seed: seed}

	if !sw.collectSeries() {
		res := sim.Run(cfg)
		r.MeanT, r.MeanTI, r.MeanTE = res.MeanT, res.MeanTI, res.MeanTE
		if len(res.PerClassT) > 2 {
			r.PerClass = res.PerClassT
		}
		r.MeanN = res.MeanN
		r.Util = res.Metrics.Utilization(c.K)
		r.Completions = res.Completions
		return r, nil
	}

	numClasses := 2
	if specs != nil {
		numClasses = len(specs)
	}
	series := make([]float64, 0, sw.Jobs)
	classes := make([]sim.Class, 0, sw.Jobs)
	res := sim.RunObserved(cfg, func(done sim.Completion) {
		series = append(series, done.Response())
		classes = append(classes, done.Job.Class)
	})
	trim := 0
	if sw.AutoWarmup {
		trim = stats.MSER5Trim(series)
	}
	tail := series[trim:]
	if len(tail) == 0 {
		return r, fmt.Errorf("exp: cell %v replication %d: empty response series after trimming", c, rep)
	}
	var total stats.Summary
	byClass := make([]stats.Summary, numClasses)
	for i, v := range tail {
		total.Add(v)
		byClass[classes[trim+i]].Add(v)
	}
	r.MeanT = total.Mean()
	r.MeanTI = byClass[sim.Inelastic].Mean()
	if numClasses > 1 {
		r.MeanTE = byClass[sim.Elastic].Mean()
	}
	if numClasses > 2 {
		r.PerClass = make([]float64, numClasses)
		for i := range byClass {
			r.PerClass[i] = byClass[i].Mean()
		}
	}
	r.MeanN = res.MeanN
	r.Util = res.Metrics.Utilization(c.K)
	r.Completions = int64(len(tail))
	r.Trimmed = trim
	r.ESS = stats.EffectiveSampleSize(tail)
	if sw.Batches > 1 {
		bm, err := stats.BatchMeans(tail, sw.Batches)
		if err != nil {
			return r, fmt.Errorf("exp: cell %v replication %d: %w", c, rep, err)
		}
		r.BatchCI = bm.CI95()
	}
	return r, nil
}

// CellResult aggregates a cell's replications. All aggregates are computed
// from the Reps slice in replication order, never in completion order.
type CellResult struct {
	Cell Cell          `json:"cell"`
	Reps []Replication `json:"reps"`
	// ET is the mean response time over replication means; ETCI its 95%
	// half-width (from replication variance when Reps >= 2, else the single
	// replication's batch-means CI when available).
	ET   float64 `json:"et"`
	ETCI float64 `json:"etCI"`
	ETI  float64 `json:"etI"`
	ETE  float64 `json:"etE"`
	// ETPerClass holds per-class aggregates for class-mix cells with more
	// than two classes.
	ETPerClass  []float64 `json:"etPerClass,omitempty"`
	EN          float64   `json:"en"`
	Util        float64   `json:"util"`
	Completions int64     `json:"completions"`
}

func aggregate(c Cell, reps []Replication) CellResult {
	var t, ti, te, n, u stats.Summary
	var perClass []stats.Summary
	var comp int64
	for _, r := range reps {
		t.Add(r.MeanT)
		ti.Add(r.MeanTI)
		te.Add(r.MeanTE)
		n.Add(r.MeanN)
		u.Add(r.Util)
		comp += r.Completions
		if len(r.PerClass) > 0 {
			if perClass == nil {
				perClass = make([]stats.Summary, len(r.PerClass))
			}
			for i, v := range r.PerClass {
				perClass[i].Add(v)
			}
		}
	}
	cr := CellResult{
		Cell: c, Reps: reps,
		ET: t.Mean(), ETI: ti.Mean(), ETE: te.Mean(),
		EN: n.Mean(), Util: u.Mean(), Completions: comp,
	}
	for i := range perClass {
		cr.ETPerClass = append(cr.ETPerClass, perClass[i].Mean())
	}
	if t.N() >= 2 {
		cr.ETCI = t.CI95()
	} else if len(reps) == 1 {
		cr.ETCI = reps[0].BatchCI
	}
	return cr
}

// ResultSet is a completed sweep: one CellResult per grid cell, in grid
// order.
type ResultSet struct {
	Sweep Sweep        `json:"sweep"`
	Cells []CellResult `json:"cells"`
}

// WriteCSV emits one row per cell. For class-mix cells with more than two
// classes the per-class means are joined with ';' in the last column.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "k,rho,muI,muE,scenario,mix,policy,reps,ET,ET_ci95,ET_I,ET_E,EN,util,completions,ET_per_class"); err != nil {
		return err
	}
	for _, cr := range rs.Cells {
		c := cr.Cell
		perClass := make([]string, len(cr.ETPerClass))
		for i, v := range cr.ETPerClass {
			perClass[i] = fmt.Sprintf("%.6f", v)
		}
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%s,%s,%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.4f,%d,%s\n",
			c.K, c.Rho, c.MuI, c.MuE, c.Scenario, c.Mix, c.Policy, len(cr.Reps),
			cr.ET, cr.ETCI, cr.ETI, cr.ETE, cr.EN, cr.Util, cr.Completions,
			strings.Join(perClass, ";")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the full result set, including per-replication detail.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// Curve extracts a plot series for one policy: x is read off each matching
// cell, y is the cell's mean response time. Cells keep grid order, so a grid
// swept over a sorted axis yields a sorted curve.
func (rs *ResultSet) Curve(policy string, x func(Cell) float64) plot.Series {
	s := plot.Series{Name: policy}
	for _, cr := range rs.Cells {
		if cr.Cell.Policy != policy {
			continue
		}
		s.X = append(s.X, x(cr.Cell))
		s.Y = append(s.Y, cr.ET)
	}
	return s
}
