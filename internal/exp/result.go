package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Replication is the outcome of one independent simulation run of a cell.
type Replication struct {
	Rep    int     `json:"rep"`
	Seed   uint64  `json:"seed"`
	MeanT  float64 `json:"meanT"`
	MeanTI float64 `json:"meanTI"`
	MeanTE float64 `json:"meanTE"`
	// PerClass holds the per-class mean response times for cells with more
	// than two classes (class-mix cells); MeanTI/MeanTE mirror classes 0/1.
	PerClass    []float64 `json:"perClass,omitempty"`
	MeanN       float64   `json:"meanN"`
	Util        float64   `json:"util"`
	Completions int64     `json:"completions"`
	// Trimmed counts observations discarded by MSER warmup trimming
	// (AutoWarmup mode only).
	Trimmed int `json:"trimmed,omitempty"`
	// BatchCI is the within-replication batch-means 95% half-width
	// (Batches > 1 only).
	BatchCI float64 `json:"batchCI,omitempty"`
	// ESS is the effective sample size of the response series, n/tau with
	// tau the integrated autocorrelation time (series modes only).
	ESS float64 `json:"ess,omitempty"`
	// P99 is the 99th-percentile response time over all classes and
	// P99PerClass the per-class tails, recorded through a reservoir-sampled
	// sim.ResponseRecorder when Sweep.Tail is set (0 for a class with no
	// completions). In AutoWarmup mode the recorder covers the untrimmed
	// post-warmup stream.
	P99         float64   `json:"p99,omitempty"`
	P99PerClass []float64 `json:"p99PerClass,omitempty"`
	// Quantiles holds the response-time quantiles of Sweep.TailQuantiles,
	// in that order, over all classes; QuantilesPerClass[c][i] is class c's
	// TailQuantiles[i] quantile (0 for a class with no completions).
	Quantiles         []float64   `json:"quantiles,omitempty"`
	QuantilesPerClass [][]float64 `json:"quantilesPerClass,omitempty"`
}

// runReplication executes one (cell, replication) task. Panics anywhere in
// the model, policy or simulator surface as errors for this task only; the
// dispatching backend (runTask) prefixes every error with the cell and
// replication identity.
func (sw Sweep) runReplication(c Cell, rep int) (r Replication, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panicked: %v", p)
		}
	}()
	seed := sw.RepSeed(c, rep)
	pol, err := c.policyImpl()
	if err != nil {
		return r, err
	}
	src, err := c.sourceImpl(seed)
	if err != nil {
		return r, err
	}
	specs, err := c.classesImpl()
	if err != nil {
		return r, err
	}
	warmup := sw.Warmup
	if sw.AutoWarmup {
		warmup = 0
	}
	engine, err := sim.ParseEngine(sw.Engine)
	if err != nil {
		return r, err
	}
	cfg := sim.RunConfig{K: c.K, Policy: pol, Source: src, Classes: specs,
		WarmupJobs: warmup, MaxJobs: sw.Jobs, Engine: engine}
	r = Replication{Rep: rep, Seed: seed}

	numClasses := 2
	if specs != nil {
		numClasses = len(specs)
	}
	// The tail recorder draws its reservoir decisions from a stream of the
	// replication seed, so p99 values are as deterministic as the means.
	var rr *sim.ResponseRecorder
	if sw.Tail {
		rr = sim.NewClassResponseRecorder(numClasses, tailReservoirCap, seed)
	}
	record := func(done sim.Completion) {
		if rr != nil {
			rr.Observe(done)
		}
	}
	recordTail := func() {
		if rr == nil {
			return
		}
		r.P99 = zeroNaN(rr.QuantileAll(0.99))
		r.P99PerClass = make([]float64, numClasses)
		for cl := range r.P99PerClass {
			r.P99PerClass[cl] = zeroNaN(rr.Quantile(sim.Class(cl), 0.99))
		}
		if len(sw.TailQuantiles) == 0 {
			return
		}
		r.Quantiles = make([]float64, len(sw.TailQuantiles))
		for i, q := range sw.TailQuantiles {
			r.Quantiles[i] = zeroNaN(rr.QuantileAll(q))
		}
		r.QuantilesPerClass = make([][]float64, numClasses)
		for cl := range r.QuantilesPerClass {
			qs := make([]float64, len(sw.TailQuantiles))
			for i, q := range sw.TailQuantiles {
				qs[i] = zeroNaN(rr.Quantile(sim.Class(cl), q))
			}
			r.QuantilesPerClass[cl] = qs
		}
	}

	if !sw.collectSeries() {
		var res sim.Result
		if rr != nil {
			res = sim.RunObserved(cfg, record)
		} else {
			res = sim.Run(cfg)
		}
		// Per-class means are NaN for a class with no completions in the
		// measured window; Replication carries 0 instead (see zeroNaN) so
		// results stay JSON-encodable — identical under every backend and
		// in the FileCache.
		r.MeanT = res.MeanT
		r.MeanTI, r.MeanTE = zeroNaN(res.MeanTI), zeroNaN(res.MeanTE)
		if len(res.PerClassT) > 2 {
			r.PerClass = make([]float64, len(res.PerClassT))
			for i, v := range res.PerClassT {
				r.PerClass[i] = zeroNaN(v)
			}
		}
		r.MeanN = res.MeanN
		r.Util = res.Metrics.Utilization(c.K)
		r.Completions = res.Completions
		recordTail()
		return r, nil
	}

	series := make([]float64, 0, sw.Jobs)
	classes := make([]sim.Class, 0, sw.Jobs)
	res := sim.RunObserved(cfg, func(done sim.Completion) {
		series = append(series, done.Response())
		classes = append(classes, done.Job.Class)
		record(done)
	})
	trim := 0
	if sw.AutoWarmup {
		trim = stats.MSER5Trim(series)
	}
	tail := series[trim:]
	if len(tail) == 0 {
		return r, fmt.Errorf("empty response series after trimming")
	}
	var total stats.Summary
	byClass := make([]stats.Summary, numClasses)
	for i, v := range tail {
		total.Add(v)
		byClass[classes[trim+i]].Add(v)
	}
	r.MeanT = total.Mean()
	r.MeanTI = zeroNaN(byClass[sim.Inelastic].Mean())
	if numClasses > 1 {
		r.MeanTE = zeroNaN(byClass[sim.Elastic].Mean())
	}
	if numClasses > 2 {
		r.PerClass = make([]float64, numClasses)
		for i := range byClass {
			r.PerClass[i] = zeroNaN(byClass[i].Mean())
		}
	}
	r.MeanN = res.MeanN
	r.Util = res.Metrics.Utilization(c.K)
	r.Completions = int64(len(tail))
	r.Trimmed = trim
	r.ESS = stats.EffectiveSampleSize(tail)
	if sw.Batches > 1 {
		bm, err := stats.BatchMeans(tail, sw.Batches)
		if err != nil {
			return r, err
		}
		r.BatchCI = bm.CI95()
	}
	recordTail()
	return r, nil
}

// tailReservoirCap bounds the per-class sample memory of the Sweep.Tail
// percentile recorder; beyond it the recorder switches to reservoir
// sampling (deterministic given the replication seed).
const tailReservoirCap = 1 << 16

// zeroNaN maps the recorder's NaN (class never observed) to 0 so tail
// fields stay JSON-encodable — NaN cannot cross the FileCache or the
// ProcBackend wire.
func zeroNaN(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// CellResult aggregates a cell's replications. All aggregates are computed
// from the Reps slice in replication order, never in completion order.
type CellResult struct {
	Cell Cell          `json:"cell"`
	Reps []Replication `json:"reps"`
	// ET is the mean response time over replication means; ETCI its 95%
	// half-width (from replication variance when Reps >= 2, else the single
	// replication's batch-means CI when available).
	ET   float64 `json:"et"`
	ETCI float64 `json:"etCI"`
	ETI  float64 `json:"etI"`
	ETE  float64 `json:"etE"`
	// ETPerClass holds per-class aggregates for class-mix cells with more
	// than two classes.
	ETPerClass []float64 `json:"etPerClass,omitempty"`
	// P99 and P99PerClass average the per-replication tail percentiles
	// (Sweep.Tail sweeps only).
	P99         float64   `json:"p99,omitempty"`
	P99PerClass []float64 `json:"p99PerClass,omitempty"`
	// Quantiles and QuantilesPerClass average the per-replication
	// quantile sets (Sweep.TailQuantiles sweeps only), index-aligned with
	// Sweep.TailQuantiles.
	Quantiles         []float64   `json:"quantiles,omitempty"`
	QuantilesPerClass [][]float64 `json:"quantilesPerClass,omitempty"`
	EN                float64     `json:"en"`
	Util              float64     `json:"util"`
	Completions       int64       `json:"completions"`
}

func aggregate(c Cell, reps []Replication) CellResult {
	var t, ti, te, n, u, p99 stats.Summary
	var perClass, p99PerClass, quantiles []stats.Summary
	var quantilesPerClass [][]stats.Summary
	var comp int64
	for _, r := range reps {
		t.Add(r.MeanT)
		// Per-class statistics use 0 as the "class completed nothing in
		// this replication" marker (responses are strictly positive, so 0
		// never occurs naturally); such replications are excluded from
		// that class's mean rather than biasing it toward 0.
		if r.MeanTI > 0 {
			ti.Add(r.MeanTI)
		}
		if r.MeanTE > 0 {
			te.Add(r.MeanTE)
		}
		n.Add(r.MeanN)
		u.Add(r.Util)
		comp += r.Completions
		if len(r.PerClass) > 0 {
			if perClass == nil {
				perClass = make([]stats.Summary, len(r.PerClass))
			}
			for i, v := range r.PerClass {
				if v > 0 {
					perClass[i].Add(v)
				}
			}
		}
		if len(r.P99PerClass) > 0 {
			if r.P99 > 0 {
				p99.Add(r.P99)
			}
			if p99PerClass == nil {
				p99PerClass = make([]stats.Summary, len(r.P99PerClass))
			}
			for i, v := range r.P99PerClass {
				if v > 0 {
					p99PerClass[i].Add(v)
				}
			}
		}
		if len(r.Quantiles) > 0 {
			if quantiles == nil {
				quantiles = make([]stats.Summary, len(r.Quantiles))
				quantilesPerClass = make([][]stats.Summary, len(r.QuantilesPerClass))
				for cl := range quantilesPerClass {
					quantilesPerClass[cl] = make([]stats.Summary, len(r.Quantiles))
				}
			}
			for i, v := range r.Quantiles {
				if v > 0 {
					quantiles[i].Add(v)
				}
			}
			for cl, qs := range r.QuantilesPerClass {
				for i, v := range qs {
					if v > 0 {
						quantilesPerClass[cl][i].Add(v)
					}
				}
			}
		}
	}
	mean0 := func(s stats.Summary) float64 {
		if s.N() == 0 {
			return 0 // the class completed nothing in any replication
		}
		return s.Mean()
	}
	cr := CellResult{
		Cell: c, Reps: reps,
		ET: t.Mean(), ETI: mean0(ti), ETE: mean0(te),
		EN: n.Mean(), Util: u.Mean(), Completions: comp,
	}
	for i := range perClass {
		cr.ETPerClass = append(cr.ETPerClass, mean0(perClass[i]))
	}
	if p99.N() > 0 {
		cr.P99 = p99.Mean()
	}
	for i := range p99PerClass {
		cr.P99PerClass = append(cr.P99PerClass, mean0(p99PerClass[i]))
	}
	for i := range quantiles {
		cr.Quantiles = append(cr.Quantiles, mean0(quantiles[i]))
	}
	for cl := range quantilesPerClass {
		qs := make([]float64, len(quantilesPerClass[cl]))
		for i := range qs {
			qs[i] = mean0(quantilesPerClass[cl][i])
		}
		cr.QuantilesPerClass = append(cr.QuantilesPerClass, qs)
	}
	if t.N() >= 2 {
		cr.ETCI = t.CI95()
	} else if len(reps) == 1 {
		cr.ETCI = reps[0].BatchCI
	}
	return cr
}

// ResultSet is a completed sweep: one CellResult per grid cell, in grid
// order.
type ResultSet struct {
	Sweep Sweep        `json:"sweep"`
	Cells []CellResult `json:"cells"`
}

// WriteCSV emits one row per cell. Per-class columns (means, and p99 tails
// for Sweep.Tail sweeps) are joined with ';'. For Sweep.TailQuantiles
// sweeps the quantiles column holds q=value pairs joined with ';' and the
// quantiles_per_class column holds one such group per class, classes
// joined with '|'.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "k,rho,muI,muE,scenario,mix,policy,reps,ET,ET_ci95,ET_I,ET_E,EN,util,completions,ET_per_class,p99,p99_per_class,quantiles,quantiles_per_class"); err != nil {
		return err
	}
	joined := func(vs []float64) string {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = fmt.Sprintf("%.6f", v)
		}
		return strings.Join(parts, ";")
	}
	qJoined := func(vs []float64) string {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = fmt.Sprintf("%g=%.6f", rs.Sweep.TailQuantiles[i], v)
		}
		return strings.Join(parts, ";")
	}
	for _, cr := range rs.Cells {
		c := cr.Cell
		p99 := ""
		if len(cr.P99PerClass) > 0 {
			p99 = fmt.Sprintf("%.6f", cr.P99)
		}
		qPerClass := make([]string, len(cr.QuantilesPerClass))
		for cl, qs := range cr.QuantilesPerClass {
			qPerClass[cl] = qJoined(qs)
		}
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%s,%s,%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.4f,%d,%s,%s,%s,%s,%s\n",
			c.K, c.Rho, c.MuI, c.MuE, c.Scenario, c.Mix, c.Policy, len(cr.Reps),
			cr.ET, cr.ETCI, cr.ETI, cr.ETE, cr.EN, cr.Util, cr.Completions,
			joined(cr.ETPerClass), p99, joined(cr.P99PerClass),
			qJoined(cr.Quantiles), strings.Join(qPerClass, "|")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the full result set, including per-replication detail.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// Curve extracts a plot series for one policy: x is read off each matching
// cell, y is the cell's mean response time. Cells keep grid order, so a grid
// swept over a sorted axis yields a sorted curve.
func (rs *ResultSet) Curve(policy string, x func(Cell) float64) plot.Series {
	s := plot.Series{Name: policy}
	for _, cr := range rs.Cells {
		if cr.Cell.Policy != policy {
			continue
		}
		s.X = append(s.X, x(cr.Cell))
		s.Y = append(s.Y, cr.ET)
	}
	return s
}
