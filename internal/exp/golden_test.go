package exp

// Figure-pipeline goldens: small Figure 4/5/6 grids frozen bit-exactly, so
// the engine unification (and any later refactor below this layer) can be
// checked against the pre-refactor pipeline end to end. Regenerate with
//
//	go test ./internal/exp -run TestGoldenFigure -update
//
// only on an intentional semantic change.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from the current pipeline")

func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

type goldenFigures struct {
	Figure4 [][3]string `json:"figure4"` // muI|muE key, TIF, TEF
	Figure5 [][3]string `json:"figure5"` // muI key, TIF, TEF
	Figure6 [][3]string `json:"figure6"` // k key, TIF, TEF
}

func computeGoldenFigures(t *testing.T) goldenFigures {
	t.Helper()
	ctx := context.Background()
	var g goldenFigures
	grid := []float64{0.5, 1.0, 2.0}
	f4, err := Figure4(ctx, 4, 0.7, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f4 {
		key := hexf(p.MuI) + "|" + hexf(p.MuE)
		g.Figure4 = append(g.Figure4, [3]string{key, hexf(p.TIF), hexf(p.TEF)})
	}
	f5, err := Figure5(ctx, 4, 0.7, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f5 {
		g.Figure5 = append(g.Figure5, [3]string{hexf(p.MuI), hexf(p.TIF), hexf(p.TEF)})
	}
	f6, err := Figure6(ctx, 0.8, 0.5, 1.0, []int{2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f6 {
		g.Figure6 = append(g.Figure6, [3]string{strconv.Itoa(p.K), hexf(p.TIF), hexf(p.TEF)})
	}
	return g
}

// TestGoldenFigureCells pins small Figure 4/5/6 grids bit-exactly.
func TestGoldenFigureCells(t *testing.T) {
	got := computeGoldenFigures(t)
	path := filepath.Join("testdata", "golden_figures.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (generate with -update): %v", err)
	}
	var want goldenFigures
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want [][3]string) {
		if len(got) != len(want) {
			t.Fatalf("%s: got %d cells, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s cell %d: got %v, want %v", name, i, got[i], want[i])
			}
		}
	}
	check("figure4", got.Figure4, want.Figure4)
	check("figure5", got.Figure5, want.Figure5)
	check("figure6", got.Figure6, want.Figure6)
}
