package exp

// Tests for the dispatch-backend seam: the serialization contract
// (cells, keys and seeds must survive the process boundary bit-exactly),
// PoolBackend/ProcBackend equivalence on both sweeps and the frozen figure
// goldens, and ProcBackend's fault model (worker death retry, deterministic
// task errors, cancellation). The proc tests re-execute this test binary as
// the worker via TestMain + MaybeServeWorker.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestKeyAndRepSeedPinned freezes the cache-key and seeding contract as
// literal strings: these values identify cached results on disk and choose
// every replication's random stream, so they must never drift — a change
// here silently invalidates caches and reshuffles all published numbers.
// The same values must re-derive after a JSON round-trip of the cell,
// because ProcBackend ships cells across process boundaries as JSON.
func TestKeyAndRepSeedPinned(t *testing.T) {
	sw := Sweep{Name: "pin", Reps: 2, BaseSeed: 7, Warmup: 100, Jobs: 1000}
	cases := []struct {
		cell      Cell
		keyString string
		key       string
		seed0     uint64
		seed1     uint64
	}{
		{
			Cell{K: 4, Rho: 0.7, MuI: 2, MuE: 1, Policy: "IF"},
			"exp1|k=4 rho=0.7 muI=2 muE=1 policy=IF|reps=2|seed=7|warmup=100|jobs=1000|auto=false|batches=0",
			"0d5dd4442fb4fa81", 2917704610814949436, 5240475585674092860,
		},
		{
			Cell{K: 8, Rho: 0.9, Scenario: "mapreduce", Policy: "EF"},
			"exp1|scenario=mapreduce k=8 rho=0.9 policy=EF|reps=2|seed=7|warmup=100|jobs=1000|auto=false|batches=0",
			"f737267f7af5dacf", 7263033840379087353, 4116425416877151070,
		},
		{
			Cell{K: 8, Rho: 0.5, Mix: "threeclass", Policy: "LFF"},
			"exp1|mix=threeclass k=8 rho=0.5 policy=LFF|reps=2|seed=7|warmup=100|jobs=1000|auto=false|batches=0",
			"7a6563300a728456", 13083668052069352814, 2653965135885897409,
		},
	}
	for _, tc := range cases {
		if got := sw.keyString(tc.cell); got != tc.keyString {
			t.Errorf("keyString(%v) = %q, want pinned %q", tc.cell, got, tc.keyString)
		}
		if got := sw.Key(tc.cell); got != tc.key {
			t.Errorf("Key(%v) = %q, want pinned %q", tc.cell, got, tc.key)
		}
		if got := sw.RepSeed(tc.cell, 0); got != tc.seed0 {
			t.Errorf("RepSeed(%v, 0) = %d, want pinned %d", tc.cell, got, tc.seed0)
		}
		if got := sw.RepSeed(tc.cell, 1); got != tc.seed1 {
			t.Errorf("RepSeed(%v, 1) = %d, want pinned %d", tc.cell, got, tc.seed1)
		}

		// Round-trip the cell the way the wire protocol does; key and seed
		// must re-derive identically on the far side.
		data, err := json.Marshal(tc.cell)
		if err != nil {
			t.Fatal(err)
		}
		var back Cell
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != tc.cell {
			t.Errorf("cell %v did not survive JSON round-trip: %v", tc.cell, back)
		}
		if got := sw.Key(back); got != tc.key {
			t.Errorf("Key after round-trip = %q, want %q", got, tc.key)
		}
		if got := sw.RepSeed(back, 1); got != tc.seed1 {
			t.Errorf("repSeed after round-trip = %d, want %d", got, tc.seed1)
		}
	}
	// The tail component must extend, not replace, the key material — and
	// only for Tail sweeps, so every pre-existing cache key stays valid.
	tailed := sw
	tailed.Tail = true
	if got, want := tailed.keyString(cases[0].cell), cases[0].keyString+"|tail=1"; got != want {
		t.Errorf("Tail keyString = %q, want %q", got, want)
	}
	// Same rule for the quantile set (appended after the tail component)
	// and the stepping engine: only the non-default spellings are keyed.
	quantiled := tailed
	quantiled.TailQuantiles = []float64{0.5, 0.95, 0.999}
	if got, want := quantiled.keyString(cases[0].cell), cases[0].keyString+"|tail=1|tailq=0.5,0.95,0.999"; got != want {
		t.Errorf("TailQuantiles keyString = %q, want %q", got, want)
	}
	for _, spelling := range []string{"", "rebuild"} {
		def := sw
		def.Engine = spelling
		if got := def.keyString(cases[0].cell); got != cases[0].keyString {
			t.Errorf("Engine=%q keyString = %q, want the unchanged %q", spelling, got, cases[0].keyString)
		}
	}
	inc := sw
	inc.Engine = "incremental"
	if got, want := inc.keyString(cases[0].cell), cases[0].keyString+"|engine=incremental"; got != want {
		t.Errorf("incremental keyString = %q, want %q", got, want)
	}
}

// TestPoolBackendMatchesLegacyRun: the Backend refactor must be invisible —
// Options{Workers: n} (implicit PoolBackend) and an explicit PoolBackend
// must agree bit-for-bit for every worker count.
func TestPoolBackendMatchesLegacyRun(t *testing.T) {
	sw := smallSweep()
	implicit, err := Run(context.Background(), sw, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(context.Background(), sw, Options{Backend: PoolBackend{Workers: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(implicit.Cells, explicit.Cells) {
		t.Fatal("explicit PoolBackend differs from implicit pool dispatch")
	}
}

// procSweep is a small but multi-cell sweep for the subprocess tests.
func procSweep() Sweep {
	return Sweep{
		Name: "proc",
		Grid: Grid{
			K:        []int{2},
			Rho:      []float64{0.5, 0.7},
			MuI:      []float64{1, 2},
			MuE:      []float64{1},
			Policies: []string{"IF", "EF"},
		},
		Reps:   2,
		Warmup: 200,
		Jobs:   1_500,
	}
}

// TestProcBackendBitIdenticalToPool is the PR's correctness bar for sweeps:
// the same Sweep through 2+ worker subprocesses must produce a ResultSet
// whose JSON serialization is byte-for-byte the pool's.
func TestProcBackendBitIdenticalToPool(t *testing.T) {
	sw := procSweep()
	pool, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pb := &ProcBackend{Procs: 2}
	proc, err := Run(context.Background(), sw, Options{Backend: pb})
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := pool.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := proc.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("ProcBackend ResultSet JSON differs from PoolBackend")
	}
	if pb.Restarts() != 0 {
		t.Fatalf("healthy run restarted workers %d times", pb.Restarts())
	}
}

// TestProcBackendTailBitIdentical covers the serialization of the new tail
// fields: p99 values ride inside Replication across the wire.
func TestProcBackendTailBitIdentical(t *testing.T) {
	sw := procSweep()
	sw.Tail = true
	sw.Grid.Rho = []float64{0.6}
	pool, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := Run(context.Background(), sw, Options{Backend: &ProcBackend{Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pool.Cells, proc.Cells) {
		t.Fatal("tail sweep differs between pool and proc backends")
	}
	for _, cr := range pool.Cells {
		if cr.P99 <= 0 || len(cr.P99PerClass) != 2 {
			t.Fatalf("cell %v: missing tail aggregates: p99=%v perClass=%v", cr.Cell, cr.P99, cr.P99PerClass)
		}
	}
}

// TestProcBackendWorkerDeathRetry kills every worker after two tasks (the
// fault-injection hook in ServeWorker) and checks that the sweep still
// completes, bit-identical to the pool, with the deaths visible in
// Restarts.
func TestProcBackendWorkerDeathRetry(t *testing.T) {
	sw := procSweep()
	pool, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(workerDieAfterEnv, "2")
	pb := &ProcBackend{Procs: 2}
	proc, err := Run(context.Background(), sw, Options{Backend: pb})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pool.Cells, proc.Cells) {
		t.Fatal("results differ after worker deaths")
	}
	// 16 tasks at 2 tasks per worker life: at least a handful of deaths.
	if pb.Restarts() < 2 {
		t.Fatalf("expected several worker restarts, got %d", pb.Restarts())
	}
}

// TestProcBackendTaskErrorIdentity: a deterministic task failure must not
// be retried into oblivion — it surfaces once, carrying the cell and
// replication identity (the satellite fix: errors used to name only a task
// index).
func TestProcBackendTaskErrorIdentity(t *testing.T) {
	bad := Cell{K: 2, Rho: 0.5, MuI: 1, MuE: 1, Policy: "NOPE"}
	sw := Sweep{Name: "bad", Jobs: 100}
	tasks := []Task{{Sim: &TaskSpec{Cell: bad, Rep: 1, Seed: sw.RepSeed(bad, 1), Key: sw.Key(bad)}}}
	for name, be := range map[string]Backend{
		"pool": PoolBackend{Workers: 2},
		"proc": &ProcBackend{Procs: 1},
	} {
		err := be.Submit(context.Background(), Env{Sweep: &sw}, tasks, func(TaskResult) error { return nil })
		if err == nil {
			t.Fatalf("%s: bad policy accepted", name)
		}
		for _, want := range []string{"cell", "rho=0.5", "rep 1", "NOPE"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("%s: error %q does not carry %q", name, err, want)
			}
		}
	}
}

// TestProcBackendSeedDriftRefused: a worker recomputes the seed and key
// from the shipped cell and refuses a task whose precomputed values do not
// match — the tripwire for serialization drift between parent and worker.
func TestProcBackendSeedDriftRefused(t *testing.T) {
	sw := smallSweep()
	c := sw.Grid.Cells()[0]
	tasks := []Task{{Sim: &TaskSpec{Cell: c, Rep: 0, Seed: sw.RepSeed(c, 0) + 1, Key: sw.Key(c)}}}
	err := (&ProcBackend{Procs: 1}).Submit(context.Background(), Env{Sweep: &sw}, tasks, func(TaskResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "seed drift") {
		t.Fatalf("seed drift not detected: %v", err)
	}
}

// TestProcBackendCancellation: canceling the context must kill the worker
// set and return promptly with the context error.
func TestProcBackendCancellation(t *testing.T) {
	sw := figureScaleSweep(200_000) // long enough to still be running when canceled
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, sw, Options{Backend: &ProcBackend{Procs: 2}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v; workers not killed", elapsed)
	}
}

// TestProcBackendDominance: the Theorem 3 coupled-trace experiment must
// shard across subprocesses with identical verdicts.
func TestProcBackendDominance(t *testing.T) {
	cfg := DominanceConfig{
		K: 2, Rho: 0.7, MuI: 1.5, MuE: 1.0,
		PolicyA: "IF", PolicyB: "EF", Arrivals: 3_000, Seeds: 3,
	}
	pool, err := Dominance(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = &ProcBackend{Procs: 2}
	proc, err := Dominance(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pool, proc) {
		t.Fatalf("dominance runs differ:\npool %+v\nproc %+v", pool, proc)
	}
}

// TestProcBackendNonWorkerCommandFailsFast: pointing Command at a binary
// that does not speak the protocol must fail with a diagnosis after a
// couple of cold deaths — not burn MaxTaskAttempts on every task or hang.
func TestProcBackendNonWorkerCommandFailsFast(t *testing.T) {
	sw := smallSweep()
	c := sw.Grid.Cells()[0]
	tasks := []Task{{Sim: &TaskSpec{Cell: c, Rep: 0}}}
	pb := &ProcBackend{Procs: 1, Command: []string{"/bin/true"}}
	done := make(chan error, 1)
	go func() {
		done <- pb.Submit(context.Background(), Env{Sweep: &sw}, tasks, func(TaskResult) error { return nil })
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("non-worker command accepted")
		}
		if !strings.Contains(err.Error(), "proc backend") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Submit hung on a non-worker command")
	}
}

// TestProcBackendValidateAblation closes the equivalence matrix: the
// Validate and Ablation task kinds must also round-trip the wire
// bit-identically (the other kinds are covered by the sweep, golden-figure
// and dominance tests).
func TestProcBackendValidateAblation(t *testing.T) {
	simOpt := core.SimOptions{Seed: 3, WarmupJobs: 500, MaxJobs: 5_000}
	poolV, err := ValidateAnalysis(context.Background(), 2, 0.6, []float64{1.0}, simOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	procV, err := ValidateAnalysis(context.Background(), 2, 0.6, []float64{1.0}, simOpt,
		Options{Backend: &ProcBackend{Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(poolV, procV) {
		t.Fatalf("validation rows differ:\npool %+v\nproc %+v", poolV, procV)
	}
	poolA, err := BusyPeriodAblation(context.Background(), 2, 0.6, []float64{0.5, 1.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	procA, err := BusyPeriodAblation(context.Background(), 2, 0.6, []float64{0.5, 1.5},
		Options{Backend: &ProcBackend{Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(poolA, procA) {
		t.Fatalf("ablation rows differ:\npool %+v\nproc %+v", poolA, procA)
	}
}

// TestDegenerateCellBackendParity: a measured window so short that one
// class completes nothing used to yield NaN means — which PoolBackend
// passed through but the ProcBackend wire could not encode, failing the
// sweep under proc only. The 0 marker (zeroNaN) must keep both backends
// succeeding with identical results.
func TestDegenerateCellBackendParity(t *testing.T) {
	sw := Sweep{
		Name: "degenerate",
		Grid: Grid{K: []int{4}, Rho: []float64{0.9}, MuI: []float64{1}, MuE: []float64{1}, Policies: []string{"EF"}},
		Jobs: 1,
	}
	pool, err := Run(context.Background(), sw, Options{Workers: 2})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	proc, err := Run(context.Background(), sw, Options{Backend: &ProcBackend{Procs: 1}})
	if err != nil {
		t.Fatalf("proc: %v", err)
	}
	if !reflect.DeepEqual(pool.Cells, proc.Cells) {
		t.Fatalf("degenerate cell differs:\npool %+v\nproc %+v", pool.Cells, proc.Cells)
	}
	// The single completion belongs to one class; the other must carry the
	// 0 marker, not NaN (which would also poison any FileCache put).
	r := pool.Cells[0].Reps[0]
	if math.IsNaN(r.MeanTI) || math.IsNaN(r.MeanTE) {
		t.Fatalf("NaN leaked into replication: %+v", r)
	}
}
