package exp

import (
	"os"
	"testing"
)

// TestMain lets the test binary double as a ProcBackend worker: the proc
// tests leave ProcBackend.Command empty, so the backend re-executes this
// binary with WorkerEnv set and MaybeServeWorker takes over before any
// test runs — exactly the path cmd/simulate, cmd/figures and cmd/dominance
// use in production.
func TestMain(m *testing.M) {
	MaybeServeWorker()
	os.Exit(m.Run())
}
