package exp

// Wire protocol between ProcBackend and its worker subprocesses: a
// length-delimited JSONL framing over the worker's stdin/stdout. Each frame
// is an ASCII decimal payload length, a newline, the JSON payload, and a
// trailing newline — so a transcript is both unambiguous to parse (no
// scanner line limits, binary-safe) and readable line-by-line by a human.
//
//	4 2\n{"id":3,"task":{...}}\n
//
// The conversation is: parent sends one hello frame (protocol version +
// submission Env) and the worker acknowledges it with a ready frame (a
// response with ID readyID) — so a binary that does not speak the protocol
// fails the handshake immediately and is never handed a task. Then the
// parent sends request frames and the worker answers every one with
// exactly one response frame, in order. Closing the worker's stdin ends
// the session cleanly.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// wireVersion guards against mixed parent/worker binaries: a worker
// refuses a hello whose version it does not speak.
const wireVersion = 1

// readyID is the response ID of the handshake acknowledgement — outside
// the task-index space, which starts at 0.
const readyID = -1

// maxFrame bounds a frame payload (64 MiB, matching the FileCache reader's
// ceiling); a length beyond it means a corrupt or hostile stream.
const maxFrame = 64 << 20

// helloMsg opens a worker session.
type helloMsg struct {
	V   int `json:"v"`
	Env Env `json:"env"`
}

// reqMsg asks the worker to run one task. ID is the task's index in the
// submitted batch; the worker echoes it so the parent can detect protocol
// desync after worker restarts.
type reqMsg struct {
	ID   int  `json:"id"`
	Task Task `json:"task"`
}

// respMsg reports one finished task. Err carries a task-level failure
// (including recovered panics) as text; the worker process itself stays
// alive, so one poisoned task cannot take unrelated tasks down with it.
type respMsg struct {
	ID  int     `json:"id"`
	Err string  `json:"err,omitempty"`
	Out Outcome `json:"out"`
}

// writeFrame marshals v and writes one frame. The caller flushes.
func writeFrame(w *bufio.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("exp: encoding frame: %w", err)
	}
	if _, err := fmt.Fprintf(w, "%d\n", len(data)); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// readFrame reads one frame into v. A clean EOF at a frame boundary returns
// io.EOF; EOF mid-frame returns io.ErrUnexpectedEOF.
func readFrame(r *bufio.Reader, v any) error {
	line, err := readLengthLine(r)
	if err != nil {
		return err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 || n > maxFrame {
		return fmt.Errorf("exp: bad frame length %q", strings.TrimSpace(line))
	}
	buf := make([]byte, n+1) // payload + trailing newline
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if buf[n] != '\n' {
		return fmt.Errorf("exp: frame missing trailing newline")
	}
	if err := json.Unmarshal(buf[:n], v); err != nil {
		return fmt.Errorf("exp: decoding frame: %w", err)
	}
	return nil
}

// maxLengthLine bounds the frame-length line: maxFrame has 8 digits, so a
// longer line can only come from a peer that is not speaking the protocol
// (e.g. a misconfigured worker binary streaming arbitrary output) — fail
// fast instead of buffering its stream without limit.
const maxLengthLine = 16

// readLengthLine reads up to a newline with a hard size cap. A clean EOF
// before any byte returns io.EOF; EOF mid-line returns io.ErrUnexpectedEOF.
func readLengthLine(r *bufio.Reader) (string, error) {
	var line []byte
	for {
		b, err := r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				if len(line) == 0 {
					return "", io.EOF
				}
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		if b == '\n' {
			return string(line), nil
		}
		line = append(line, b)
		if len(line) > maxLengthLine {
			return "", fmt.Errorf("exp: frame length line exceeds %d bytes; peer is not speaking the protocol", maxLengthLine)
		}
	}
}
