package exp

// Wire protocol between ProcBackend and its worker subprocesses: the
// length-delimited JSONL framing of internal/wire ("<len>\n<json>\n")
// over the worker's stdin/stdout. The frame codec itself lives in
// internal/wire, where the internal/fabric TCP daemons share it (and fuzz
// it); this file keeps the message vocabulary of the subprocess dialect.
//
// The conversation is: parent sends one hello frame (protocol version +
// submission Env) and the worker acknowledges it with a ready frame (a
// response with ID readyID) — so a binary that does not speak the protocol
// fails the handshake immediately and is never handed a task. Then the
// parent sends request frames and the worker answers every one with
// exactly one response frame, in order. Closing the worker's stdin ends
// the session cleanly.

import (
	"bufio"

	"repro/internal/wire"
)

// wireVersion guards against mixed parent/worker binaries: a worker
// refuses a hello whose version it does not speak.
const wireVersion = 1

// readyID is the response ID of the handshake acknowledgement — outside
// the task-index space, which starts at 0.
const readyID = -1

// helloMsg opens a worker session.
type helloMsg struct {
	V   int `json:"v"`
	Env Env `json:"env"`
}

// reqMsg asks the worker to run one task. ID is the task's index in the
// submitted batch; the worker echoes it so the parent can detect protocol
// desync after worker restarts.
type reqMsg struct {
	ID   int  `json:"id"`
	Task Task `json:"task"`
}

// respMsg reports one finished task. Err carries a task-level failure
// (including recovered panics) as text; the worker process itself stays
// alive, so one poisoned task cannot take unrelated tasks down with it.
type respMsg struct {
	ID  int     `json:"id"`
	Err string  `json:"err,omitempty"`
	Out Outcome `json:"out"`
}

// writeFrame marshals v and writes one frame. The caller flushes.
func writeFrame(w *bufio.Writer, v any) error { return wire.WriteFrame(w, v) }

// readFrame reads one frame into v. A clean EOF at a frame boundary returns
// io.EOF; EOF mid-frame returns io.ErrUnexpectedEOF.
func readFrame(r *bufio.Reader, v any) error { return wire.ReadFrame(r, v) }
