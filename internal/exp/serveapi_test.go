package exp

import (
	"context"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// Tests for the serving-layer surface of exp: RunProgress streaming,
// TaskKey/OutcomeCache memoization in the point drivers, the mixed
// cell/outcome FileCache records, and the bounded MemCache.

func progressSweep() Sweep {
	return Sweep{
		Name: "progress",
		Grid: Grid{K: []int{2}, Rho: []float64{0.5, 0.7}, MuI: []float64{1}, MuE: []float64{1},
			Policies: []string{"IF"}},
		Reps: 3, BaseSeed: 11, Warmup: 100, Jobs: 1500,
	}
}

func TestRunProgressStreamsPartialAggregates(t *testing.T) {
	sw := progressSweep()
	var events []Progress
	rs, err := RunProgress(context.Background(), sw, Options{Workers: 2}, func(p Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := sw.Grid.Cells()
	wantEvents := len(cells) * sw.Reps
	if len(events) != wantEvents {
		t.Fatalf("got %d progress events, want %d (one per finished replication)", len(events), wantEvents)
	}
	// Per cell: DoneReps monotone 1..Reps, and the final event's Partial is
	// exactly the cell's entry in the ResultSet.
	last := make(map[int]Progress)
	prev := make(map[int]int)
	for _, ev := range events {
		if ev.FromCache {
			t.Fatalf("cell %d claimed a cache hit with no cache configured", ev.CellIndex)
		}
		if ev.TotalReps != sw.Reps {
			t.Fatalf("TotalReps = %d, want %d", ev.TotalReps, sw.Reps)
		}
		if ev.DoneReps != prev[ev.CellIndex]+1 {
			t.Fatalf("cell %d: DoneReps jumped from %d to %d", ev.CellIndex, prev[ev.CellIndex], ev.DoneReps)
		}
		prev[ev.CellIndex] = ev.DoneReps
		if got := len(ev.Partial.Reps); got != ev.DoneReps {
			t.Fatalf("partial aggregate covers %d reps, event says %d", got, ev.DoneReps)
		}
		last[ev.CellIndex] = ev
	}
	for ci := range cells {
		fin, ok := last[ci]
		if !ok || fin.DoneReps != sw.Reps {
			t.Fatalf("cell %d never reached DoneReps == Reps", ci)
		}
		if !reflect.DeepEqual(fin.Partial, rs.Cells[ci]) {
			t.Fatalf("cell %d: final progress aggregate differs from ResultSet entry", ci)
		}
	}
}

func TestRunProgressCachedCellsAnnounced(t *testing.T) {
	sw := progressSweep()
	cache := NewMemCache()
	if _, err := Run(context.Background(), sw, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	var events []Progress
	rs, err := RunProgress(context.Background(), sw, Options{Cache: cache}, func(p Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := sw.Grid.Cells()
	if len(events) != len(cells) {
		t.Fatalf("warm re-run emitted %d events, want one FromCache event per cell (%d)", len(events), len(cells))
	}
	for i, ev := range events {
		if !ev.FromCache || ev.DoneReps != sw.Reps {
			t.Fatalf("event %d: %+v, want FromCache with all reps done", i, ev)
		}
		if !reflect.DeepEqual(ev.Partial, rs.Cells[ev.CellIndex]) {
			t.Fatalf("cached cell %d: announced aggregate differs from ResultSet", ev.CellIndex)
		}
	}
}

func TestRunProgressNilCallbackMatchesRun(t *testing.T) {
	sw := progressSweep()
	a, err := Run(context.Background(), sw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProgress(context.Background(), sw, Options{}, func(Progress) {})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunProgress with a callback produced a different ResultSet than Run")
	}
}

func TestTaskKeyKinds(t *testing.T) {
	sw := progressSweep()
	c := sw.Grid.Cells()[0]
	sim := Task{Sim: &TaskSpec{Cell: c, Rep: 2, Seed: sw.RepSeed(c, 2), Key: sw.Key(c)}}
	key, ok := TaskKey(sim)
	if !ok || key != sw.Key(c)+"|rep=2" {
		t.Fatalf("sim TaskKey = %q, %t; want %q (the fabric dispatcher's historical format)", key, ok, sw.Key(c)+"|rep=2")
	}
	if _, ok := TaskKey(Task{Sim: &TaskSpec{Cell: c, Rep: 2}}); ok {
		t.Fatal("a Sim spec without its precomputed Key must not be cacheable")
	}
	if _, ok := TaskKey(Task{}); ok {
		t.Fatal("an empty task must not be cacheable")
	}
	kinds := []Task{
		{Analyze: &AnalyzePoint{K: 2, Rho: 0.5, MuI: 1, MuE: 1}},
		{Ablation: &AblationPoint{K: 2, Rho: 0.5, MuI: 1}},
		{Dominance: &DominanceTrace{K: 2, Rho: 0.5, MuI: 1, MuE: 1, PolicyA: "IF", PolicyB: "EF", Arrivals: 10, Tol: 1e-7, Seed: 1}},
	}
	seen := map[string]bool{}
	for _, task := range kinds {
		k, ok := TaskKey(task)
		if !ok {
			t.Fatalf("%s: no key", task.Label())
		}
		if seen[k] {
			t.Fatalf("%s: key %q collides with another kind", task.Label(), k)
		}
		seen[k] = true
		// Identity must be stable: the same spec keys the same way twice.
		if k2, _ := TaskKey(task); k2 != k {
			t.Fatalf("%s: TaskKey not deterministic (%q vs %q)", task.Label(), k, k2)
		}
	}
}

// countingBackend wraps PoolBackend and counts tasks actually submitted.
type countingBackend struct {
	submitted atomic.Int64
	inner     Backend
}

func (b *countingBackend) Submit(ctx context.Context, env Env, tasks []Task, emit func(TaskResult) error) error {
	b.submitted.Add(int64(len(tasks)))
	return b.inner.Submit(ctx, env, tasks, emit)
}

func TestTaskCacheMemoizesPointDrivers(t *testing.T) {
	dir := t.TempDir()
	fc, err := OpenFileCache(filepath.Join(dir, "tasks.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	be := &countingBackend{inner: PoolBackend{}}
	opt := Options{TaskCache: fc, Backend: be}
	muIs := []float64{0.5, 1, 2}
	cold, err := Figure5(context.Background(), 2, 0.5, muIs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := be.submitted.Load(); got != int64(len(muIs)) {
		t.Fatalf("cold run submitted %d tasks, want %d", got, len(muIs))
	}
	// Warm run: same points, zero backend submissions, identical numbers —
	// including through a fresh handle on the same file (persistence).
	fc2, err := OpenFileCache(filepath.Join(dir, "tasks.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if fc2.OutcomeLen() != len(muIs) {
		t.Fatalf("reloaded cache holds %d outcomes, want %d", fc2.OutcomeLen(), len(muIs))
	}
	warm, err := Figure5(context.Background(), 2, 0.5, muIs, Options{TaskCache: fc2, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	if got := be.submitted.Load(); got != int64(len(muIs)) {
		t.Fatalf("warm run submitted %d extra tasks, want 0", got-int64(len(muIs)))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm (cached) Figure5 points differ from the cold run")
	}
}

func TestFileCacheMixedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mixed.jsonl")
	fc, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	cr := CellResult{Cell: Cell{K: 2, Rho: 0.5, MuI: 1, MuE: 1, Policy: "IF"}, ET: 1.5}
	if err := fc.Put("cell-key", cr); err != nil {
		t.Fatal(err)
	}
	out := Outcome{Analyze: &AnalyzeOut{TIF: 1, TEF: 2}}
	if err := fc.PutOutcome("task-key", out); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	re, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Corrupt() != 0 {
		t.Fatalf("mixed file reported %d corrupt lines", re.Corrupt())
	}
	gotCR, ok := re.Get("cell-key")
	if !ok || !reflect.DeepEqual(gotCR, cr) {
		t.Fatalf("cell record did not round-trip: %+v, %t", gotCR, ok)
	}
	gotOut, ok := re.GetOutcome("task-key")
	if !ok || !reflect.DeepEqual(gotOut, out) {
		t.Fatalf("outcome record did not round-trip: %+v, %t", gotOut, ok)
	}
	// The two namespaces are disjoint.
	if _, ok := re.Get("task-key"); ok {
		t.Fatal("outcome key leaked into the cell namespace")
	}
	if _, ok := re.GetOutcome("cell-key"); ok {
		t.Fatal("cell key leaked into the outcome namespace")
	}
}

func TestMemCacheBounded(t *testing.T) {
	c := NewMemCacheSized(4, 0)
	cr := CellResult{ET: 1}
	for i := 0; i < 10; i++ {
		if err := c.Put(string(rune('a'+i)), cr); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want the cap 4", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 6 {
		t.Fatalf("Evictions = %d, want 6", st.Evictions)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("the coldest entry survived past the cap")
	}
	if _, ok := c.Get(string(rune('a' + 9))); !ok {
		t.Fatal("the hottest entry was evicted")
	}
}

func TestCorruptWarning(t *testing.T) {
	if msg := CorruptWarning("c.jsonl", 0); msg != "" {
		t.Fatalf("clean cache produced a warning: %q", msg)
	}
	msg := CorruptWarning("c.jsonl", 3)
	want := "warning: cache c.jsonl: skipped 3 corrupt line(s); the affected entries will be recomputed"
	if msg != want {
		t.Fatalf("warning = %q, want %q", msg, want)
	}
}
