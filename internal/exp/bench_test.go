package exp

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// figureScaleSweep is a Figure-5c-sized simulation sweep: the paper's full
// 14-point muI grid under both policies at high load, one replication per
// cell — 28 independent simulations, the unit of work the dispatcher is
// built to spread across cores.
func figureScaleSweep(jobs int64) Sweep {
	return Sweep{
		Name: "figure-scale",
		Grid: Grid{
			K:        []int{4},
			Rho:      []float64{0.9},
			MuI:      DefaultMuGrid(),
			MuE:      []float64{1},
			Policies: []string{"IF", "EF"},
		},
		Reps:   1,
		Warmup: jobs / 10,
		Jobs:   jobs,
	}
}

// benchSweep reports the wall-clock scaling of the dispatcher. Compare
// BenchmarkFigureSweepWorkers1 (the serial baseline, equivalent to the old
// per-driver loops) against BenchmarkFigureSweepWorkers8 on a multicore
// machine; the acceptance target is >= 3x at 8 workers. On a single-core
// machine all variants degenerate to the serial time.
func benchSweep(b *testing.B, workers int) {
	sw := figureScaleSweep(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), sw, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigureSweepWorkers1(b *testing.B) { benchSweep(b, 1) }
func BenchmarkFigureSweepWorkers2(b *testing.B) { benchSweep(b, 2) }
func BenchmarkFigureSweepWorkers4(b *testing.B) { benchSweep(b, 4) }
func BenchmarkFigureSweepWorkers8(b *testing.B) { benchSweep(b, 8) }

// TestParallelSpeedup measures the dispatcher's speedup directly. It needs
// real cores to mean anything, so it skips on small machines and in -short
// runs; the benchmarks above are the durable artifact.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("only %d CPUs; speedup not measurable", runtime.NumCPU())
	}
	sw := figureScaleSweep(20_000)
	timeIt := func(workers int) time.Duration {
		start := time.Now()
		if _, err := Run(context.Background(), sw, Options{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := timeIt(1)
	parallel := timeIt(8)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, 8 workers %v, speedup %.2fx", serial, parallel, speedup)
	// Conservative floor: the acceptance target is 3x on 8 free cores, but
	// shared CI machines are noisy.
	if speedup < 2 {
		t.Fatalf("8-worker speedup only %.2fx", speedup)
	}
}

// BenchmarkFigureSweepProc2 is the subprocess counterpart of the worker
// benchmarks above: the same figure-scale sweep sharded over two worker
// processes, measuring the wire protocol's overhead against in-process
// dispatch (compare with BenchmarkFigureSweepWorkers2).
func BenchmarkFigureSweepProc2(b *testing.B) {
	sw := figureScaleSweep(10_000)
	be := &ProcBackend{Procs: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), sw, Options{Backend: be}); err != nil {
			b.Fatal(err)
		}
	}
}
