package exp

// End-to-end coverage for the class-mix sweep axis (ISSUE 3 acceptance):
// a >= 3-class partial-elasticity scenario must run through the declarative
// sweep pipeline — grid expansion, worker pool, caching keys, per-class
// aggregation and CSV emission — on the unified N-class engine.

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestMixSweepEndToEnd(t *testing.T) {
	sw := Sweep{
		Name: "mix-e2e",
		Grid: Grid{
			K:        []int{8},
			Rho:      []float64{0.6},
			Mixes:    []string{"threeclass", "partialelastic"},
			Policies: []string{"LFF", "EQUI"},
		},
		Reps: 2, Warmup: 2_000, Jobs: 20_000,
	}
	rs, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != 4 {
		t.Fatalf("mix sweep produced %d cells, want 4", len(rs.Cells))
	}
	for _, cr := range rs.Cells {
		if cr.Cell.Mix == "" {
			t.Fatalf("cell %v lost its mix", cr.Cell)
		}
		if math.IsNaN(cr.ET) || cr.ET <= 0 {
			t.Fatalf("cell %v: bad E[T] %v", cr.Cell, cr.ET)
		}
		wantClasses := 3
		if cr.Cell.Mix == "partialelastic" {
			wantClasses = 4
		}
		if len(cr.ETPerClass) != wantClasses {
			t.Fatalf("cell %v: %d per-class aggregates, want %d", cr.Cell, len(cr.ETPerClass), wantClasses)
		}
		for c, v := range cr.ETPerClass {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("cell %v class %d: bad per-class E[T] %v", cr.Cell, c, v)
			}
		}
	}
	var csv strings.Builder
	if err := rs.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "threeclass") || !strings.Contains(csv.String(), ";") {
		t.Fatalf("mix CSV missing mix name or per-class column:\n%.400s", csv.String())
	}
}

// TestMixSweepDeterminism: mix cells must be bit-identical across worker
// counts, like every other cell kind.
func TestMixSweepDeterminism(t *testing.T) {
	sw := Sweep{
		Name: "mix-det",
		Grid: Grid{
			K:        []int{8},
			Rho:      []float64{0.5},
			Mixes:    []string{"cappedladder"},
			Policies: []string{"LFF"},
		},
		Reps: 2, Warmup: 500, Jobs: 5_000,
	}
	a, err := Run(context.Background(), sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sw, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells[0].ET != b.Cells[0].ET {
		t.Fatalf("mix sweep not deterministic across worker counts: %v vs %v",
			a.Cells[0].ET, b.Cells[0].ET)
	}
	for c := range a.Cells[0].ETPerClass {
		if a.Cells[0].ETPerClass[c] != b.Cells[0].ETPerClass[c] {
			t.Fatalf("per-class aggregate %d differs across worker counts", c)
		}
	}
}

// TestMixPolicyValidation: two-class-only policies are rejected for mix
// cells at validation time, not deep inside a worker.
func TestMixPolicyValidation(t *testing.T) {
	sw := Sweep{
		Name: "mix-bad",
		Grid: Grid{
			K:        []int{8},
			Rho:      []float64{0.5},
			Mixes:    []string{"nonsense"},
			Policies: []string{"LFF"},
		},
		Jobs: 100,
	}
	if _, err := Run(context.Background(), sw, Options{}); err == nil {
		t.Fatal("unknown mix accepted")
	}
	sw.Grid.Mixes = []string{"threeclass"}
	sw.Grid.Scenarios = []string{"mapreduce"}
	if _, err := Run(context.Background(), sw, Options{}); err == nil {
		t.Fatal("Scenarios+Mixes accepted")
	}
	sw.Grid.Scenarios = nil
	for _, pol := range []string{"THRESH:2", "GREEDY", "PRIO:0,1", "PRIO:0,1,2,3", "PRIO:0,0,1,2"} {
		sw.Grid.Policies = []string{pol}
		if _, err := Run(context.Background(), sw, Options{}); err == nil {
			t.Fatalf("two-class-only or non-covering policy %q accepted for a 3-class mix", pol)
		}
	}
	sw.Grid.Policies = []string{"PRIO:2,1,0"}
	sw.Jobs = 2_000
	if _, err := Run(context.Background(), sw, Options{Workers: 2}); err != nil {
		t.Fatalf("covering PRIO rejected: %v", err)
	}
}

// TestTwoClassPrioValidation: PRIO orders are validated against the
// two-class preset on classic cells too.
func TestTwoClassPrioValidation(t *testing.T) {
	sw := Sweep{
		Name: "prio-2c",
		Grid: Grid{
			K: []int{4}, Rho: []float64{0.5}, MuI: []float64{1}, MuE: []float64{1},
			Policies: []string{"PRIO:0"},
		},
		Jobs: 100,
	}
	if _, err := Run(context.Background(), sw, Options{}); err == nil {
		t.Fatal("PRIO:0 (never serves class 1) accepted for a two-class cell")
	}
}

// TestMixTailPercentiles covers the ROADMAP "tail metrics on mixes" item:
// a Tail sweep over an N-class mix must report per-class p99 response
// times alongside the means, in the aggregates and in the CSV emitter.
func TestMixTailPercentiles(t *testing.T) {
	sw := Sweep{
		Name: "mix-tail",
		Grid: Grid{
			K:        []int{8},
			Rho:      []float64{0.6},
			Mixes:    []string{"threeclass"},
			Policies: []string{"LFF"},
		},
		Reps: 2, Warmup: 1_000, Jobs: 10_000,
		Tail: true,
	}
	rs, err := Run(context.Background(), sw, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cr := rs.Cells[0]
	if len(cr.P99PerClass) != 3 {
		t.Fatalf("want 3 per-class p99 aggregates, got %v", cr.P99PerClass)
	}
	if cr.P99 < cr.ET {
		t.Fatalf("p99 %v below the mean %v", cr.P99, cr.ET)
	}
	for c, v := range cr.P99PerClass {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("class %d: bad p99 %v", c, v)
		}
		if v < cr.ETPerClass[c] {
			t.Fatalf("class %d: p99 %v below its mean %v", c, v, cr.ETPerClass[c])
		}
	}
	var csv strings.Builder
	if err := rs.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	if !strings.Contains(header, "p99") || !strings.Contains(header, "p99_per_class") {
		t.Fatalf("CSV header missing tail columns: %s", header)
	}
	row := strings.SplitN(csv.String(), "\n", 3)[1]
	fields := strings.Split(row, ",")
	// The row tail is p99, p99_per_class, quantiles, quantiles_per_class;
	// the quantile columns are empty unless Sweep.TailQuantiles is set.
	if got := fields[len(fields)-4]; got == "" || got == "0.000000" {
		t.Fatalf("CSV p99 column empty: %q (row %s)", got, row)
	}
	if got := strings.Split(fields[len(fields)-3], ";"); len(got) != 3 {
		t.Fatalf("CSV p99_per_class column has %d entries, want 3 (row %s)", len(got), row)
	}
	if fields[len(fields)-2] != "" || fields[len(fields)-1] != "" {
		t.Fatalf("quantile columns not empty without TailQuantiles (row %s)", row)
	}
}
