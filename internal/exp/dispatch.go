package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Map runs fn(0), …, fn(n-1) on a worker pool and returns the results in
// index order. workers <= 0 means GOMAXPROCS. The first error (or recovered
// panic) cancels the remaining tasks and is returned; cancellation of ctx
// stops feeding tasks and returns ctx's error. Map is the generic primitive
// behind the figure drivers and the dominance experiment.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("exp: negative task count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if ctx.Err() != nil {
					continue // drain quickly once canceled
				}
				v, err := protect(i, fn)
				if err != nil {
					fail(err)
					continue
				}
				out[i] = v
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case tasks <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// protect isolates one task: a panic inside fn becomes an error for that
// task instead of crashing the whole pool.
func protect[T any](i int, fn func(int) (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: task %d panicked: %v", i, p)
		}
	}()
	return fn(i)
}

// Options configure the dispatcher.
type Options struct {
	// Workers is the pool size of the default PoolBackend; <= 0 means
	// GOMAXPROCS. Ignored when Backend is set.
	Workers int
	// Cache, when non-nil, is consulted before running a cell and updated
	// the moment a cell's last replication finishes — so a canceled sweep
	// still banks its completed cells and a re-run is incremental. The
	// cache is only ever touched by the submitting process, never by
	// ProcBackend workers.
	Cache Cache
	// TaskCache, when non-nil, memoizes individual task outcomes keyed by
	// TaskKey. It is consulted by the point drivers (figures, validation,
	// ablation, dominance — see submitAll), whose tasks never belong to a
	// Sweep cell and so cannot land in Cache; sweeps keep their coarser
	// cell-granularity caching. Like Cache it is only touched by the
	// submitting process.
	TaskCache OutcomeCache
	// Backend executes the tasks; nil means PoolBackend{Workers: Workers}
	// (goroutines of this process). Use &ProcBackend{...} to shard tasks
	// across worker subprocesses.
	Backend Backend
}

// backend resolves the effective Backend.
func (o Options) backend() Backend {
	if o.Backend != nil {
		return o.Backend
	}
	return PoolBackend{Workers: o.Workers}
}

// Tasks validates the sweep and expands it into its full task list — one
// Sim task per (cell, replication) pair, with the seed and cache key
// precomputed exactly as Run would. This is the submission payload for
// detached fabric jobs (cmd/psq), where no Run loop is present on the
// client to build tasks lazily.
func (sw Sweep) Tasks() ([]Task, error) {
	if err := sw.validate(); err != nil {
		return nil, err
	}
	var tasks []Task
	for _, c := range sw.Grid.Cells() {
		key := sw.Key(c)
		for rep := 0; rep < sw.reps(); rep++ {
			tasks = append(tasks, Task{Sim: &TaskSpec{
				Cell: c, Rep: rep, Seed: sw.RepSeed(c, rep), Key: key,
			}})
		}
	}
	return tasks, nil
}

// Run executes the sweep: every (cell, replication) pair is one task
// submitted to the configured Backend (the in-process goroutine pool by
// default). Replication seeds depend only on cell identity and replication
// index, and per-cell aggregation always consumes replications in index
// order, so the returned ResultSet is bit-identical for any worker count
// and any backend. On error or cancellation Run returns nil and the error;
// cells that completed before the interruption are in the cache (if one was
// given).
func Run(ctx context.Context, sw Sweep, opt Options) (*ResultSet, error) {
	return RunProgress(ctx, sw, opt, nil)
}

// Progress is one progress event of RunProgress: a cell gained a finished
// replication (or was served whole from the cache). Events for one cell are
// monotone in DoneReps; the event with DoneReps == TotalReps carries the
// cell's final aggregate in Partial.
type Progress struct {
	// CellIndex positions the cell in the sweep's Grid.Cells() order — the
	// same order ResultSet.Cells uses.
	CellIndex int
	// DoneReps counts the replications aggregated into Partial, of
	// TotalReps.
	DoneReps  int
	TotalReps int
	// FromCache marks a cell answered whole from Options.Cache; its single
	// event has DoneReps == TotalReps.
	FromCache bool
	// Partial aggregates the replications that have arrived so far, in
	// replication-index order — the same deterministic order the final
	// aggregate uses, so CIs tighten monotonically in expectation and the
	// last event's Partial equals the cell's ResultSet entry exactly.
	Partial CellResult
}

// RunProgress is Run with a progress stream: onProgress (when non-nil) is
// invoked after every finished replication with the owning cell's partial
// aggregate — this is what lets a serving layer stream CIs that tighten
// live instead of forcing clients to poll for the final ResultSet. Events
// are delivered serially (never concurrently) and in a deterministic
// per-cell order, but interleaving across cells follows completion order;
// onProgress must not block for long, since it is called on the result
// path. Partial aggregation is skipped entirely when onProgress is nil, so
// Run pays nothing for the capability.
func RunProgress(ctx context.Context, sw Sweep, opt Options, onProgress func(Progress)) (*ResultSet, error) {
	if err := sw.validate(); err != nil {
		return nil, err
	}
	cells := sw.Grid.Cells()
	rs := &ResultSet{Sweep: sw, Cells: make([]CellResult, len(cells))}
	reps := sw.reps()

	type slot struct{ ci, rep int }
	var pending []slot
	var tasks []Task
	repsByCell := make([][]Replication, len(cells))
	got := make([][]bool, len(cells))
	left := make([]int, len(cells))
	for ci, c := range cells {
		if opt.Cache != nil {
			if cr, ok := opt.Cache.Get(sw.Key(c)); ok {
				rs.Cells[ci] = cr
				if onProgress != nil {
					onProgress(Progress{CellIndex: ci, DoneReps: reps, TotalReps: reps, FromCache: true, Partial: cr})
				}
				continue
			}
		}
		repsByCell[ci] = make([]Replication, reps)
		got[ci] = make([]bool, reps)
		left[ci] = reps
		key := sw.Key(c)
		for rep := 0; rep < reps; rep++ {
			pending = append(pending, slot{ci, rep})
			tasks = append(tasks, Task{Sim: &TaskSpec{
				Cell: c, Rep: rep, Seed: sw.RepSeed(c, rep), Key: key,
			}})
		}
	}

	var mu sync.Mutex
	err := opt.backend().Submit(ctx, Env{Sweep: &sw}, tasks, func(tr TaskResult) error {
		t := pending[tr.Index]
		if err := tasks[tr.Index].checkOutcome(tr.Outcome); err != nil {
			return err
		}
		mu.Lock()
		repsByCell[t.ci][t.rep] = *tr.Outcome.Rep
		got[t.ci][t.rep] = true
		left[t.ci]--
		done := left[t.ci] == 0
		var cr CellResult
		if done {
			cr = aggregate(cells[t.ci], repsByCell[t.ci])
			rs.Cells[t.ci] = cr
		}
		if onProgress != nil {
			// The partial aggregate covers exactly the arrived replications,
			// in index order (completion order never leaks into aggregates).
			// Holding mu across the callback keeps events serial and each
			// cell's DoneReps monotone.
			ev := Progress{CellIndex: t.ci, DoneReps: reps - left[t.ci], TotalReps: reps}
			if done {
				ev.Partial = cr
			} else {
				arrived := make([]Replication, 0, ev.DoneReps)
				for rep, ok := range got[t.ci] {
					if ok {
						arrived = append(arrived, repsByCell[t.ci][rep])
					}
				}
				ev.Partial = aggregate(cells[t.ci], arrived)
			}
			onProgress(ev)
		}
		mu.Unlock()
		if done && opt.Cache != nil {
			if err := opt.Cache.Put(tasks[tr.Index].Sim.Key, cr); err != nil {
				return fmt.Errorf("exp: caching cell %v: %w", cells[t.ci], err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rs, nil
}
