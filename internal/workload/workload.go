// Package workload generates the arrival processes fed to the simulator:
// the paper's two-class Poisson/exponential model, plus the motivating
// scenario presets of Section 1.3 (MapReduce, ML platforms, HPC malleable
// jobs) used by the example programs.
package workload

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Model is the paper's stochastic model: independent Poisson arrivals for
// each class with exponential sizes.
type Model struct {
	K                int
	LambdaI, LambdaE float64
	MuI, MuE         float64
}

// NewModel returns a validated model; it panics on non-positive parameters.
func NewModel(k int, lambdaI, muI, lambdaE, muE float64) Model {
	m := Model{K: k, LambdaI: lambdaI, LambdaE: lambdaE, MuI: muI, MuE: muE}
	m.mustValidate()
	return m
}

// ModelForLoad returns the model with total load rho on k servers and
// lambdaI = lambdaE, the convention used by every figure in the paper.
func ModelForLoad(k int, rho, muI, muE float64) Model {
	lI, lE := queueing.RatesForLoad(k, rho, muI, muE)
	return NewModel(k, lI, muI, lE, muE)
}

func (m Model) mustValidate() {
	if m.K < 1 || m.LambdaI <= 0 || m.LambdaE <= 0 || m.MuI <= 0 || m.MuE <= 0 {
		panic(fmt.Sprintf("workload: invalid model %+v", m))
	}
}

// Rho returns the system load of Eq. 1.
func (m Model) Rho() float64 {
	return queueing.SystemLoad(m.K, m.LambdaI, m.MuI, m.LambdaE, m.MuE)
}

// Stable reports whether rho < 1.
func (m Model) Stable() bool { return m.Rho() < 1 }

// Source returns an unbounded streaming arrival source for the model.
// Separate RNG streams drive each class's arrival process and size draws,
// so changing one parameter never perturbs the other class's sample path.
func (m Model) Source(seed uint64) *PoissonSource {
	m.mustValidate()
	return &PoissonSource{
		classes: [2]classStream{
			{rateArr: m.LambdaI, size: dist.NewExponential(m.MuI),
				arrRng: xrand.NewStream(seed, 1), sizeRng: xrand.NewStream(seed, 2)},
			{rateArr: m.LambdaE, size: dist.NewExponential(m.MuE),
				arrRng: xrand.NewStream(seed, 3), sizeRng: xrand.NewStream(seed, 4)},
		},
	}
}

// Trace materializes the first n arrivals as a slice for replay/coupling.
func (m Model) Trace(seed uint64, n int) []sim.Arrival {
	src := m.Source(seed)
	out := make([]sim.Arrival, 0, n)
	for len(out) < n {
		a, _ := src.Next()
		out = append(out, a)
	}
	return out
}

type classStream struct {
	rateArr  float64
	size     dist.Distribution
	arrRng   *xrand.Rand
	sizeRng  *xrand.Rand
	nextTime float64
	primed   bool
}

func (c *classStream) peek() float64 {
	if !c.primed {
		c.nextTime += c.arrRng.Exp(c.rateArr)
		c.primed = true
	}
	return c.nextTime
}

func (c *classStream) pop() float64 {
	t := c.peek()
	c.primed = false
	return t
}

// PoissonSource merges the two class streams into one time-ordered arrival
// stream. It implements sim.ArrivalSource and never ends.
type PoissonSource struct {
	classes [2]classStream
}

// Next implements sim.ArrivalSource.
func (p *PoissonSource) Next() (sim.Arrival, bool) {
	ci := sim.Inelastic
	if p.classes[sim.Elastic].peek() < p.classes[sim.Inelastic].peek() {
		ci = sim.Elastic
	}
	c := &p.classes[ci]
	t := c.pop()
	return sim.Arrival{Time: t, Class: sim.Class(ci), Size: c.size.Sample(c.sizeRng)}, true
}

// Scenario is a named workload preset with general size distributions, used
// by the example programs to mimic the mixes described in Section 1.3.
type Scenario struct {
	Name             string
	LambdaI, LambdaE float64
	SizeI, SizeE     dist.Distribution
}

// Source returns a streaming source for the scenario.
func (s Scenario) Source(seed uint64) sim.ArrivalSource {
	return &scenarioSource{
		classes: [2]classStream{
			{rateArr: s.LambdaI, size: s.SizeI,
				arrRng: xrand.NewStream(seed, 11), sizeRng: xrand.NewStream(seed, 12)},
			{rateArr: s.LambdaE, size: s.SizeE,
				arrRng: xrand.NewStream(seed, 13), sizeRng: xrand.NewStream(seed, 14)},
		},
	}
}

// Rho returns the scenario's offered load on k servers.
func (s Scenario) Rho(k int) float64 {
	return (s.LambdaI*s.SizeI.Mean() + s.LambdaE*s.SizeE.Mean()) / float64(k)
}

type scenarioSource struct {
	classes [2]classStream
}

func (p *scenarioSource) Next() (sim.Arrival, bool) {
	ci := sim.Inelastic
	if p.classes[sim.Elastic].peek() < p.classes[sim.Inelastic].peek() {
		ci = sim.Elastic
	}
	c := &p.classes[ci]
	t := c.pop()
	return sim.Arrival{Time: t, Class: sim.Class(ci), Size: c.size.Sample(c.sizeRng)}, true
}

// MapReduce models the cluster of Section 1.3: map stages are elastic with
// large exponential sizes, reduce stages are inelastic and much smaller.
// elasticWork controls how much larger map stages are (the paper's "common
// case" has elasticWork > 1). Load rho is offered on k servers with equal
// arrival rates per class.
func MapReduce(k int, rho, elasticWork float64) Scenario {
	if elasticWork <= 0 {
		panic("workload: elasticWork must be positive")
	}
	meanI := 1.0
	meanE := elasticWork
	lambda := rho * float64(k) / (meanI + meanE)
	return Scenario{
		Name:    "mapreduce",
		LambdaI: lambda, LambdaE: lambda,
		SizeI: dist.NewExponential(1 / meanI),
		SizeE: dist.NewExponential(1 / meanE),
	}
}

// MLPlatform models a shared training/serving cluster: elastic training jobs
// with heavy-tailed sizes and frequent tiny inelastic inference requests.
func MLPlatform(k int, rho float64) Scenario {
	// Serving requests are ~50x more frequent and ~100x smaller.
	sizeI := dist.NewExponential(20)           // mean 0.05
	sizeE := dist.NewBoundedPareto(1.5, 1, 64) // heavy-tailed training
	lambdaI := 50.0
	loadI := lambdaI * sizeI.Mean()
	loadE := rho*float64(k) - loadI
	if loadE <= 0 {
		panic("workload: MLPlatform rho too small for the serving load")
	}
	return Scenario{
		Name:    "mlplatform",
		LambdaI: lambdaI, LambdaE: loadE / sizeE.Mean(),
		SizeI: sizeI, SizeE: sizeE,
	}
}

// HPCMalleable models the HPC setting of Section 1.3 where malleable
// (elastic) jobs are *smaller* than rigid (inelastic) ones — the muI < muE
// regime where Elastic-First can win (Theorem 6).
func HPCMalleable(k int, rho float64) Scenario {
	meanI := 4.0 // rigid jobs: long-running solvers
	meanE := 1.0 // malleable jobs
	lambda := rho * float64(k) / (meanI + meanE)
	return Scenario{
		Name:    "hpcmalleable",
		LambdaI: lambda, LambdaE: lambda,
		SizeI: dist.NewExponential(1 / meanI),
		SizeE: dist.NewExponential(1 / meanE),
	}
}

// BatchJob is one job of a batch (time-zero) instance for the Appendix A
// experiments.
type BatchJob struct {
	Size float64
	Cap  int // parallelizability bound k_j
}

// RandomBatch draws n batch jobs with sizes from sizeDist and caps uniform
// in [1, maxCap].
func RandomBatch(r *xrand.Rand, n int, sizeDist dist.Distribution, maxCap int) []BatchJob {
	jobs := make([]BatchJob, n)
	for i := range jobs {
		jobs[i] = BatchJob{Size: sizeDist.Sample(r), Cap: 1 + r.Intn(maxCap)}
	}
	return jobs
}

// Horizon estimates a simulation horizon long enough for n arrivals from
// the model (used to bound Drain calls).
func (m Model) Horizon(n int) float64 {
	return 2 * float64(n) / (m.LambdaI + m.LambdaE) * math.Max(1, 1/(1-m.Rho()))
}
