package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestModelRho(t *testing.T) {
	m := NewModel(4, 1, 1, 1, 1)
	if math.Abs(m.Rho()-0.5) > 1e-12 || !m.Stable() {
		t.Fatalf("rho %v", m.Rho())
	}
}

func TestModelForLoad(t *testing.T) {
	f := func(rq, mq uint16) bool {
		rho := 0.05 + 0.9*float64(rq)/65536
		muI := 0.1 + 3*float64(mq)/65536
		m := ModelForLoad(4, rho, muI, 1.0)
		return math.Abs(m.Rho()-rho) < 1e-9 && m.LambdaI == m.LambdaE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceTimeOrderedAndReproducible(t *testing.T) {
	m := NewModel(4, 2, 1, 3, 2)
	a := m.Source(42)
	b := m.Source(42)
	prev := 0.0
	for i := 0; i < 10000; i++ {
		av, _ := a.Next()
		bv, _ := b.Next()
		if av != bv {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, av, bv)
		}
		if av.Time < prev {
			t.Fatalf("arrivals out of order at %d", i)
		}
		if av.Size <= 0 {
			t.Fatalf("non-positive size at %d", i)
		}
		prev = av.Time
	}
}

func TestSourceRates(t *testing.T) {
	m := NewModel(4, 2, 1, 3, 2)
	src := m.Source(7)
	const n = 200000
	var counts [2]int
	var sizeSums [2]float64
	last := 0.0
	for i := 0; i < n; i++ {
		a, _ := src.Next()
		counts[a.Class]++
		sizeSums[a.Class] += a.Size
		last = a.Time
	}
	// Empirical class split: lambdaI/(lambdaI+lambdaE) = 0.4.
	frac := float64(counts[sim.Inelastic]) / n
	if math.Abs(frac-0.4) > 0.01 {
		t.Fatalf("inelastic fraction %v, want 0.4", frac)
	}
	// Total arrival rate 5.
	if math.Abs(float64(n)/last-5) > 0.05 {
		t.Fatalf("total rate %v, want 5", float64(n)/last)
	}
	// Mean sizes 1/muI = 1 and 1/muE = 0.5.
	if m1 := sizeSums[sim.Inelastic] / float64(counts[sim.Inelastic]); math.Abs(m1-1) > 0.02 {
		t.Fatalf("inelastic mean size %v", m1)
	}
	if m2 := sizeSums[sim.Elastic] / float64(counts[sim.Elastic]); math.Abs(m2-0.5) > 0.01 {
		t.Fatalf("elastic mean size %v", m2)
	}
}

func TestSeedIndependencePerClass(t *testing.T) {
	// Changing muE must not perturb the inelastic sample path (separate
	// RNG streams) — the coupling trick used for variance reduction.
	a := NewModel(4, 2, 1, 3, 2).Source(9)
	b := NewModel(4, 2, 1, 3, 5).Source(9)
	var inelA, inelB []sim.Arrival
	for len(inelA) < 1000 || len(inelB) < 1000 {
		if len(inelA) < 1000 {
			if v, _ := a.Next(); v.Class == sim.Inelastic {
				inelA = append(inelA, v)
			}
		}
		if len(inelB) < 1000 {
			if v, _ := b.Next(); v.Class == sim.Inelastic {
				inelB = append(inelB, v)
			}
		}
	}
	for i := range inelA {
		if inelA[i] != inelB[i] {
			t.Fatalf("inelastic stream perturbed by muE change at %d", i)
		}
	}
}

func TestTraceLengthAndOrder(t *testing.T) {
	m := NewModel(2, 1, 1, 1, 1)
	tr := m.Trace(3, 5000)
	if len(tr) != 5000 {
		t.Fatalf("trace length %d", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Time < tr[i-1].Time {
			t.Fatal("trace out of order")
		}
	}
}

func TestMapReduceScenario(t *testing.T) {
	s := MapReduce(16, 0.8, 8)
	if math.Abs(s.Rho(16)-0.8) > 1e-9 {
		t.Fatalf("rho %v", s.Rho(16))
	}
	if s.SizeE.Mean() != 8*s.SizeI.Mean() {
		t.Fatal("map/reduce size ratio wrong")
	}
	if s.LambdaI != s.LambdaE {
		t.Fatal("stage arrival rates should match")
	}
}

func TestMLPlatformScenario(t *testing.T) {
	s := MLPlatform(32, 0.75)
	if math.Abs(s.Rho(32)-0.75) > 1e-9 {
		t.Fatalf("rho %v", s.Rho(32))
	}
	if s.SizeI.Mean() >= s.SizeE.Mean() {
		t.Fatal("serving requests should be smaller than training jobs")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("tiny rho accepted")
		}
	}()
	MLPlatform(4, 0.1)
}

func TestHPCMalleableScenario(t *testing.T) {
	s := HPCMalleable(8, 0.9)
	if math.Abs(s.Rho(8)-0.9) > 1e-9 {
		t.Fatalf("rho %v", s.Rho(8))
	}
	// The defining property: elastic (malleable) jobs are SMALLER.
	if s.SizeE.Mean() >= s.SizeI.Mean() {
		t.Fatal("malleable jobs must be smaller than rigid ones")
	}
}

func TestScenarioSourceRuns(t *testing.T) {
	src := MapReduce(8, 0.5, 4).Source(1)
	prev := 0.0
	for i := 0; i < 1000; i++ {
		a, ok := src.Next()
		if !ok || a.Time < prev || a.Size <= 0 {
			t.Fatalf("bad scenario arrival %+v", a)
		}
		prev = a.Time
	}
}

func TestRandomBatch(t *testing.T) {
	r := xrand.New(5)
	batch := RandomBatch(r, 100, dist.NewExponential(1), 8)
	if len(batch) != 100 {
		t.Fatalf("batch size %d", len(batch))
	}
	for _, j := range batch {
		if j.Size <= 0 || j.Cap < 1 || j.Cap > 8 {
			t.Fatalf("bad batch job %+v", j)
		}
	}
}

func TestHorizonScalesWithLoad(t *testing.T) {
	low := ModelForLoad(4, 0.5, 1, 1)
	high := ModelForLoad(4, 0.95, 1, 1)
	if high.Horizon(1000) <= low.Horizon(1000) {
		t.Fatal("horizon should grow with load")
	}
}

func TestInvalidModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid model accepted")
		}
	}()
	NewModel(0, 1, 1, 1, 1)
}
