package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/eventq"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Mix is a named N-class stochastic workload: one sim.ClassSpec per class
// with Lambda (Poisson arrival rate) and Size (job-size distribution) set.
// It generalizes the two-class Model/Scenario to the Section 6 extensions:
// arbitrary class counts with capped, Amdahl or power-law speedups.
type Mix struct {
	Name    string
	Classes []sim.ClassSpec
}

func (m Mix) mustValidate() {
	if len(m.Classes) == 0 {
		panic("workload: mix has no classes")
	}
	for i, c := range m.Classes {
		if c.Lambda <= 0 || c.Size == nil {
			panic(fmt.Sprintf("workload: mix %q class %d needs Lambda > 0 and a Size distribution", m.Name, i))
		}
	}
}

// Rho returns the mix's offered (work-based) load on k servers,
// sum_c lambda_c E[S_c] / k. For capped and partially elastic classes this
// is the standard load of the paper's Eq. 1 generalized to N classes.
func (m Mix) Rho(k int) float64 {
	load := 0.0
	for _, c := range m.Classes {
		load += c.Lambda * c.Size.Mean()
	}
	return load / float64(k)
}

// Source returns an unbounded streaming arrival source for the mix.
// Separate RNG streams drive each class's arrival process and size draws,
// so changing one class never perturbs another class's sample path. The
// per-class next-arrival times are merged through an eventq min-heap, so a
// draw costs O(log C) for C classes instead of a linear scan.
func (m Mix) Source(seed uint64) *MixSource {
	m.mustValidate()
	s := &MixSource{classes: make([]mixStream, len(m.Classes))}
	for c, spec := range m.Classes {
		s.classes[c] = mixStream{
			lambda:  spec.Lambda,
			size:    spec.Size,
			arrRng:  xrand.NewStream(seed, uint64(2*c+21)),
			sizeRng: xrand.NewStream(seed, uint64(2*c+22)),
		}
		s.next.Push(s.classes[c].arrRng.Exp(spec.Lambda), c)
	}
	return s
}

// Trace materializes the first n arrivals as a slice for replay/coupling.
func (m Mix) Trace(seed uint64, n int) []sim.Arrival {
	src := m.Source(seed)
	out := make([]sim.Arrival, 0, n)
	for len(out) < n {
		a, _ := src.Next()
		out = append(out, a)
	}
	return out
}

type mixStream struct {
	lambda  float64
	size    dist.Distribution
	arrRng  *xrand.Rand
	sizeRng *xrand.Rand
}

// MixSource merges the per-class Poisson streams into one time-ordered
// arrival stream. It implements sim.ArrivalSource and never ends.
type MixSource struct {
	classes []mixStream
	next    eventq.Queue[int]
}

// Next implements sim.ArrivalSource.
func (s *MixSource) Next() (sim.Arrival, bool) {
	e := s.next.Pop()
	c := e.Payload
	cs := &s.classes[c]
	s.next.Push(e.Time+cs.arrRng.Exp(cs.lambda), c)
	return sim.Arrival{Time: e.Time, Class: sim.Class(c), Size: cs.size.Sample(cs.sizeRng)}, true
}

// equalLoadLambdas assigns each class an equal share of the total load
// rho*k given its mean size.
func equalLoadLambdas(k int, rho float64, specs []sim.ClassSpec) []sim.ClassSpec {
	share := rho * float64(k) / float64(len(specs))
	out := make([]sim.ClassSpec, len(specs))
	for i, c := range specs {
		c.Lambda = share / c.Size.Mean()
		out[i] = c
	}
	return out
}

// ThreeClassCaps is the Section 6 scenario with three levels of
// parallelizability: rigid queries (cap 1, small), partially elastic
// analytics (cap 4, medium), and fully elastic batch jobs (large). Load rho
// is offered on k servers, split equally over the classes.
func ThreeClassCaps(k int, rho float64) Mix {
	return Mix{
		Name: "threeclass",
		Classes: equalLoadLambdas(k, rho, []sim.ClassSpec{
			{Name: "rigid", Speedup: sim.CappedSpeedup(1), Size: dist.NewExponential(4)},
			{Name: "partial", Speedup: sim.CappedSpeedup(4), Size: dist.NewExponential(1)},
			{Name: "elastic", Speedup: sim.LinearSpeedup(), Size: dist.NewExponential(0.25)},
		}),
	}
}

// PartialElasticity is the Section 6 partial-elasticity scenario: one rigid
// class plus two Amdahl classes with different serial fractions, and one
// fully elastic class. The Amdahl classes carry a per-job allocation bound
// (MaxServers 4, the Appendix A k_j) near their efficient operating point,
// so strict-priority policies do not park the whole cluster on one
// saturating job.
func PartialElasticity(k int, rho float64) Mix {
	return Mix{
		Name: "partialelastic",
		Classes: equalLoadLambdas(k, rho, []sim.ClassSpec{
			{Name: "rigid", Speedup: sim.InelasticSpeedup(), Size: dist.NewExponential(2)},
			{Name: "amdahl10", Speedup: sim.AmdahlSpeedup(0.10), MaxServers: 4, Size: dist.NewExponential(1)},
			{Name: "amdahl02", Speedup: sim.AmdahlSpeedup(0.02), MaxServers: 4, Size: dist.NewExponential(0.5)},
			{Name: "elastic", Speedup: sim.LinearSpeedup(), Size: dist.NewExponential(0.5)},
		}),
	}
}

// CappedLadder sweeps a ladder of caps {1, 2, 4, 8}: the Section 2
// "elastic up to C servers" extension with several C values side by side.
// Classes with larger caps carry larger jobs, mirroring the paper's common
// case where more parallelizable work is bigger.
func CappedLadder(k int, rho float64) Mix {
	return Mix{
		Name: "cappedladder",
		Classes: equalLoadLambdas(k, rho, []sim.ClassSpec{
			{Name: "cap1", Speedup: sim.CappedSpeedup(1), Size: dist.NewExponential(2)},
			{Name: "cap2", Speedup: sim.CappedSpeedup(2), Size: dist.NewExponential(1)},
			{Name: "cap4", Speedup: sim.CappedSpeedup(4), Size: dist.NewExponential(0.5)},
			{Name: "cap8", Speedup: sim.CappedSpeedup(8), Size: dist.NewExponential(0.25)},
		}),
	}
}

// TwoClassMix expresses the paper's exponential two-class model as a Mix,
// so the unified sweep axis can also drive the classic configuration.
func TwoClassMix(k int, rho, muI, muE float64) Mix {
	model := ModelForLoad(k, rho, muI, muE)
	classes := sim.TwoClassSpecs()
	classes[0].Lambda = model.LambdaI
	classes[0].Size = dist.NewExponential(muI)
	classes[1].Lambda = model.LambdaE
	classes[1].Size = dist.NewExponential(muE)
	return Mix{Name: "twoclass", Classes: classes}
}

// MixByName builds a named class-mix preset at load rho on k servers.
func MixByName(name string, k int, rho float64) (Mix, error) {
	switch name {
	case "threeclass":
		return ThreeClassCaps(k, rho), nil
	case "partialelastic":
		return PartialElasticity(k, rho), nil
	case "cappedladder":
		return CappedLadder(k, rho), nil
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q (want threeclass, partialelastic or cappedladder)", name)
}

// MixNames lists the built-in class-mix presets.
func MixNames() []string { return []string{"threeclass", "partialelastic", "cappedladder"} }
