// Package eventq implements the future-event list of the discrete-event
// simulator: a binary min-heap ordered by event time with a monotone
// sequence number breaking ties, so that simultaneous events dequeue in
// insertion order and runs are exactly reproducible.
package eventq

// Event is an entry in the queue. Payload is opaque to the queue.
type Event struct {
	Time    float64
	Payload any
	seq     uint64
}

// Queue is a min-heap of events. The zero value is ready to use.
type Queue struct {
	heap    []Event
	nextSeq uint64
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.heap) }

// Empty reports whether the queue has no events.
func (q *Queue) Empty() bool { return len(q.heap) == 0 }

// Push inserts an event at the given time.
func (q *Queue) Push(time float64, payload any) {
	e := Event{Time: time, Payload: payload, seq: q.nextSeq}
	q.nextSeq++
	q.heap = append(q.heap, e)
	q.up(len(q.heap) - 1)
}

// Append inserts an event without restoring the heap invariant; callers
// must invoke Fix after a batch of Appends before using Peek or Pop. A
// batch of n Appends plus one Fix costs O(n) versus O(n log n) for n
// Pushes — the fast path for rebuilding a future-event list from scratch
// (the simulator engine does this whenever service rates change).
func (q *Queue) Append(time float64, payload any) {
	q.heap = append(q.heap, Event{Time: time, Payload: payload, seq: q.nextSeq})
	q.nextSeq++
}

// Fix restores the heap invariant after a batch of Appends (Floyd's
// bottom-up heapify). Tie-breaking is unaffected: the minimum is taken over
// the (time, insertion order) total order however the heap was built.
func (q *Queue) Fix() {
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// Peek returns the earliest event without removing it. It panics on an
// empty queue.
func (q *Queue) Peek() Event {
	if len(q.heap) == 0 {
		panic("eventq: Peek on empty queue")
	}
	return q.heap[0]
}

// Pop removes and returns the earliest event. Ties in time resolve in
// insertion order. It panics on an empty queue.
func (q *Queue) Pop() Event {
	if len(q.heap) == 0 {
		panic("eventq: Pop on empty queue")
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

// Clear removes all events but keeps the allocated capacity.
func (q *Queue) Clear() {
	q.heap = q.heap[:0]
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
