// Package eventq implements the future-event list of the discrete-event
// simulator: a binary min-heap ordered by event time with a monotone
// sequence number breaking ties, so that simultaneous events dequeue in
// insertion order and runs are exactly reproducible.
//
// The queue is generic in its payload type. Monomorphic instantiation keeps
// the hot path free of interface boxing and type asserts: a Queue[*Job]
// stores job pointers inline and Peek/Pop hand them back without a dynamic
// dispatch, which matters at tens of millions of events per second.
//
// The queue supports two usage styles. The rebuild style clears and refills
// the heap from the live job set at every event (Clear + a batch of Appends
// + one Fix). The incremental style keeps events across steps and
// invalidates superseded ones lazily: entries carry a caller-managed
// generation stamp (PushGen), the caller discards entries whose stamp no
// longer matches on Peek/Pop, and Compact drops accumulated stale entries
// in one pass when they start to dominate the heap.
package eventq

// Event is an entry in the queue. Payload is opaque to the queue.
type Event[P any] struct {
	Time    float64
	Payload P
	// Gen is an optional payload generation stamp (set via PushGen) for
	// callers that invalidate queued events lazily: bump the payload's
	// live generation and the stale entries are recognized — and skipped
	// — when they surface. The queue itself never reads it.
	Gen uint64
	seq uint64
}

// Queue is a min-heap of events with payload type P. The zero value is
// ready to use.
type Queue[P any] struct {
	heap    []Event[P]
	nextSeq uint64
}

// Len returns the number of queued events.
func (q *Queue[P]) Len() int { return len(q.heap) }

// Empty reports whether the queue has no events.
func (q *Queue[P]) Empty() bool { return len(q.heap) == 0 }

// Push inserts an event at the given time.
func (q *Queue[P]) Push(time float64, payload P) {
	q.PushGen(time, payload, 0)
}

// PushGen inserts an event carrying a generation stamp. Tie-breaking is by
// insertion order exactly as for Push; the stamp only serves the caller's
// lazy-invalidation protocol (see Event.Gen).
func (q *Queue[P]) PushGen(time float64, payload P, gen uint64) {
	e := Event[P]{Time: time, Payload: payload, Gen: gen, seq: q.nextSeq}
	q.nextSeq++
	q.heap = append(q.heap, e)
	q.up(len(q.heap) - 1)
}

// Append inserts an event without restoring the heap invariant; callers
// must invoke Fix after a batch of Appends before using Peek or Pop. A
// batch of n Appends plus one Fix costs O(n) versus O(n log n) for n
// Pushes — the fast path for rebuilding a future-event list from scratch
// (the simulator engine does this whenever service rates change).
func (q *Queue[P]) Append(time float64, payload P) {
	q.heap = append(q.heap, Event[P]{Time: time, Payload: payload, seq: q.nextSeq})
	q.nextSeq++
}

// Fix restores the heap invariant after a batch of Appends (Floyd's
// bottom-up heapify). Tie-breaking is unaffected: the minimum is taken over
// the (time, insertion order) total order however the heap was built.
func (q *Queue[P]) Fix() {
	for i := len(q.heap)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// Peek returns the earliest event without removing it. It panics on an
// empty queue.
func (q *Queue[P]) Peek() Event[P] {
	if len(q.heap) == 0 {
		panic("eventq: Peek on empty queue")
	}
	return q.heap[0]
}

// Pop removes and returns the earliest event. Ties in time resolve in
// insertion order. It panics on an empty queue.
func (q *Queue[P]) Pop() Event[P] {
	if len(q.heap) == 0 {
		panic("eventq: Pop on empty queue")
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

// Clear removes all events but keeps the allocated capacity.
func (q *Queue[P]) Clear() {
	q.heap = q.heap[:0]
}

// Remove deletes the first stored event (in internal heap order, which is
// arbitrary) for which match returns true and restores the heap invariant;
// it reports whether an event was removed. The relative dequeue order of
// the remaining events is unchanged. Cost is O(n) for the search plus
// O(log n) for the repair; callers deleting many events at once should
// prefer Compact.
func (q *Queue[P]) Remove(match func(Event[P]) bool) bool {
	for i := range q.heap {
		if !match(q.heap[i]) {
			continue
		}
		last := len(q.heap) - 1
		q.heap[i] = q.heap[last]
		q.heap[last] = Event[P]{}
		q.heap = q.heap[:last]
		if i < last {
			q.down(i)
			q.up(i)
		}
		return true
	}
	return false
}

// Compact drops every event for which live returns false and restores the
// heap invariant in one O(n) pass (filter in place + Floyd heapify). The
// dequeue order of the surviving events is unchanged: the (time, insertion
// order) total order is a property of the entries, not of the heap shape.
// This is the incremental simulator engine's safety valve against stale
// entries accumulating faster than they surface.
func (q *Queue[P]) Compact(live func(Event[P]) bool) {
	kept := q.heap[:0]
	for _, e := range q.heap {
		if live(e) {
			kept = append(kept, e)
		}
	}
	// Zero the dropped tail so discarded payloads do not pin memory.
	for i := len(kept); i < len(q.heap); i++ {
		q.heap[i] = Event[P]{}
	}
	q.heap = kept
	q.Fix()
}

func (q *Queue[P]) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue[P]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue[P]) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
