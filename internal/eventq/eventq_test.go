package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestOrdering(t *testing.T) {
	var q Queue[float64]
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		q.Push(tm, tm)
	}
	prev := -1.0
	for !q.Empty() {
		e := q.Pop()
		if e.Time < prev {
			t.Fatalf("events out of order: %v after %v", e.Time, prev)
		}
		prev = e.Time
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(1.0, i)
	}
	for i := 0; i < 100; i++ {
		e := q.Pop()
		if e.Payload != i {
			t.Fatalf("tie broken out of insertion order: got %v at position %d", e.Payload, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[string]
	q.Push(2, "b")
	q.Push(1, "a")
	if q.Peek().Payload != "a" || q.Len() != 2 {
		t.Fatal("Peek wrong")
	}
	if q.Pop().Payload != "a" || q.Len() != 1 {
		t.Fatal("Pop after Peek wrong")
	}
}

func TestEmptyPanics(t *testing.T) {
	var q Queue[int]
	for name, fn := range map[string]func(){
		"Pop":  func() { q.Pop() },
		"Peek": func() { q.Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on empty queue did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClear(t *testing.T) {
	var q Queue[string]
	q.Push(1, "")
	q.Push(2, "")
	q.Clear()
	if !q.Empty() {
		t.Fatal("Clear left events")
	}
	q.Push(3, "x")
	if q.Pop().Payload != "x" {
		t.Fatal("queue unusable after Clear")
	}
}

// TestHeapSortProperty checks that popping yields a sorted sequence for
// arbitrary inputs interleaved with partial pops.
func TestHeapSortProperty(t *testing.T) {
	r := xrand.New(99)
	f := func(n uint8) bool {
		var q Queue[int]
		var want []float64
		for i := 0; i < int(n); i++ {
			v := r.Float64() * 100
			q.Push(v, i)
			want = append(want, v)
		}
		sort.Float64s(want)
		for _, w := range want {
			if q.Pop().Time != w {
				return false
			}
		}
		return q.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[int]
	r := xrand.New(7)
	clock := 0.0
	// Simulate a workload: always push events in the future of the last
	// popped event, pop in between, and verify the clock never reverses.
	for i := 0; i < 10000; i++ {
		if q.Empty() || r.Bernoulli(0.6) {
			q.Push(clock+r.Float64()*10, i)
		} else {
			e := q.Pop()
			if e.Time < clock {
				t.Fatalf("clock reversed: %v < %v", e.Time, clock)
			}
			clock = e.Time
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	r := xrand.New(1)
	for i := 0; i < 1024; i++ {
		q.Push(r.Float64()*1e6, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Pop()
		q.Push(e.Time+r.Float64()*100, e.Payload)
	}
}

// TestAppendFixMatchesPush: building a heap with bulk Append + Fix must
// dequeue in exactly the same order as incremental Push, including
// insertion-order tie-breaking.
func TestAppendFixMatchesPush(t *testing.T) {
	r := xrand.New(7)
	times := make([]float64, 300)
	for i := range times {
		// Coarse values force plenty of exact ties.
		times[i] = float64(r.Intn(20))
	}
	var pushed, appended Queue[int]
	for i, tm := range times {
		pushed.Push(tm, i)
		appended.Append(tm, i)
	}
	appended.Fix()
	for pushed.Len() > 0 {
		a, b := pushed.Pop(), appended.Pop()
		if a.Time != b.Time || a.Payload != b.Payload {
			t.Fatalf("Append+Fix order diverged: Push gave (%v, %v), Append gave (%v, %v)",
				a.Time, a.Payload, b.Time, b.Payload)
		}
	}
	if appended.Len() != 0 {
		t.Fatal("length mismatch")
	}
}

// TestAppendFixReusesCapacity: Clear + Append within capacity must not
// allocate — the engine rebuilds its future-event list every event.
func TestAppendFixReusesCapacity(t *testing.T) {
	var q Queue[*int]
	payloads := make([]*int, 64)
	for i := range payloads {
		payloads[i] = new(int)
	}
	for i, p := range payloads {
		q.Append(float64(i), p)
	}
	q.Fix()
	allocs := testing.AllocsPerRun(100, func() {
		q.Clear()
		for i, p := range payloads {
			q.Append(float64(63-i), p)
		}
		q.Fix()
		q.Peek()
	})
	if allocs > 0 {
		t.Fatalf("Clear+Append+Fix allocated %.1f times per rebuild", allocs)
	}
}
