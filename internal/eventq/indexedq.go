package eventq

// IndexedQueue is the incremental engine's future-event list: a binary
// min-heap over (time, seq) exactly like Queue, but keyed by small integer
// handles with a dense position index, so a superseded event is rescheduled
// in place instead of being abandoned as a stale entry. Where the lazy
// protocol pays one push per rate change and lets garbage accumulate until
// a Compact sweep, the indexed heap holds exactly one entry per scheduled
// handle — the heap depth is the live event count, its sift paths stay in
// cache, and Peek/Pop never filter.
//
// Dequeue order is identical to the lazy protocol's: ties in time resolve
// by seq, and Set stamps a fresh seq on every call — rescheduling an event
// reorders it among equal times exactly as bump-generation-and-repush did.

// hEvent is one heap entry: 24 bytes, pointer-free.
type hEvent struct {
	time float64
	seq  uint64
	h    int32
	_    int32
}

// IndexedQueue is a min-heap of at most one event per handle. The zero
// value is ready to use.
type IndexedQueue struct {
	heap    []hEvent
	pos     []int32 // pos[h] = index of h's entry in heap, -1 when absent
	nextSeq uint64
}

// Len returns the number of scheduled handles.
func (q *IndexedQueue) Len() int { return len(q.heap) }

// Empty reports whether no handle is scheduled.
func (q *IndexedQueue) Empty() bool { return len(q.heap) == 0 }

// Contains reports whether handle h currently has a scheduled event.
func (q *IndexedQueue) Contains(h int32) bool {
	return int(h) < len(q.pos) && q.pos[h] >= 0
}

// Set schedules handle h at the given time, replacing any previous schedule
// in place. Every call stamps a fresh sequence number, so among equal times
// the most recently (re)scheduled handle dequeues last.
func (q *IndexedQueue) Set(t float64, h int32) {
	for int(h) >= len(q.pos) {
		q.pos = append(q.pos, make([]int32, 64)...)
		for i := len(q.pos) - 64; i < len(q.pos); i++ {
			q.pos[i] = -1
		}
	}
	seq := q.nextSeq
	q.nextSeq++
	if i := q.pos[h]; i >= 0 {
		q.heap[i].time = t
		q.heap[i].seq = seq
		q.down(int(i))
		q.up(int(i))
		return
	}
	q.heap = append(q.heap, hEvent{time: t, seq: seq, h: h})
	q.pos[h] = int32(len(q.heap) - 1)
	q.up(len(q.heap) - 1)
}

// Remove unschedules handle h; it reports whether an event was removed.
func (q *IndexedQueue) Remove(h int32) bool {
	if int(h) >= len(q.pos) {
		return false
	}
	i := q.pos[h]
	if i < 0 {
		return false
	}
	last := len(q.heap) - 1
	q.pos[h] = -1
	if int(i) != last {
		q.heap[i] = q.heap[last]
		q.pos[q.heap[i].h] = i
	}
	q.heap = q.heap[:last]
	if int(i) < last {
		q.down(int(i))
		q.up(int(i))
	}
	return true
}

// Peek returns the earliest handle and its time without removing it. It
// panics on an empty queue.
func (q *IndexedQueue) Peek() (int32, float64) {
	if len(q.heap) == 0 {
		panic("eventq: Peek on empty queue")
	}
	return q.heap[0].h, q.heap[0].time
}

// Pop removes and returns the earliest handle and its time. Ties in time
// resolve by scheduling order. It panics on an empty queue.
func (q *IndexedQueue) Pop() (int32, float64) {
	if len(q.heap) == 0 {
		panic("eventq: Pop on empty queue")
	}
	top := q.heap[0]
	q.pos[top.h] = -1
	last := len(q.heap) - 1
	if last > 0 {
		q.heap[0] = q.heap[last]
		q.pos[q.heap[0].h] = 0
	}
	q.heap = q.heap[:last]
	if last > 1 {
		q.down(0)
	}
	return top.h, top.time
}

func (q *IndexedQueue) less(i, j int) bool {
	a, b := &q.heap[i], &q.heap[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *IndexedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *IndexedQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *IndexedQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i].h] = int32(i)
	q.pos[q.heap[j].h] = int32(j)
}
