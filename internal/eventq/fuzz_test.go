package eventq

// Fuzz coverage for the queue's ordering contract: under ANY interleaving
// of Push, PushGen, Append(+Fix) and Pop, dequeues must follow the
// (time, insertion order) total order over the events still in the queue.
// The fuzz target replays an opcode tape against a straightforward sorted
// reference model; a divergence in dequeue order, length, payload identity
// or generation stamp fails the target. The micro-benchmarks below pin the
// Push-vs-Append/Fix trade-off the simulator engines depend on (rebuild
// rebuilds the list per event; incremental pushes only changed jobs).

import (
	"math"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// refEvent mirrors one queued event in the reference model.
type refEvent struct {
	time float64
	seq  int
	gen  uint64
}

// refModel is the executable specification: a slice kept sorted lazily by
// (time, seq) at pop time.
type refModel struct {
	events []refEvent
	seq    int
}

func (m *refModel) push(time float64, gen uint64) {
	m.events = append(m.events, refEvent{time: time, seq: m.seq, gen: gen})
	m.seq++
}

func (m *refModel) pop() refEvent {
	best := 0
	for i, e := range m.events {
		b := m.events[best]
		if e.time < b.time || (e.time == b.time && e.seq < b.seq) {
			best = i
		}
	}
	e := m.events[best]
	m.events = append(m.events[:best], m.events[best+1:]...)
	return e
}

// FuzzTotalOrder drives a Queue and the reference model with the same
// opcode tape: each input byte selects Push / PushGen / Append / Fix+drain
// checkpoints / Pop, with times derived from a seeded RNG so ties are
// frequent. Appends are only popped after a Fix, matching the documented
// contract.
func FuzzTotalOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 0, 4, 4}, uint64(1))
	f.Add([]byte{2, 2, 2, 3, 4, 4, 4}, uint64(7))
	f.Add([]byte{0, 2, 1, 3, 0, 4, 2, 3, 4, 4, 4}, uint64(42))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		if len(ops) > 4096 {
			t.Skip("tape too long")
		}
		r := xrand.New(seed)
		var q Queue[int]
		var ref refModel
		unfixed := 0 // Appends since the last Fix; Pop/Peek are illegal until fixed
		for _, op := range ops {
			switch op % 5 {
			case 0: // Push
				tm := float64(r.Intn(16))
				q.Push(tm, ref.seq)
				ref.push(tm, 0)
			case 1: // PushGen
				tm := float64(r.Intn(16))
				gen := uint64(r.Intn(4))
				q.PushGen(tm, ref.seq, gen)
				ref.push(tm, gen)
			case 2: // Append (deferred heapification)
				tm := float64(r.Intn(16))
				q.Append(tm, ref.seq)
				ref.push(tm, 0)
				unfixed++
			case 3: // Fix
				q.Fix()
				unfixed = 0
			case 4: // Pop
				if unfixed > 0 {
					q.Fix()
					unfixed = 0
				}
				if q.Empty() {
					if len(ref.events) != 0 {
						t.Fatalf("queue empty but model holds %d events", len(ref.events))
					}
					continue
				}
				got := q.Pop()
				want := ref.pop()
				if got.Time != want.time || got.Payload != want.seq || got.Gen != want.gen {
					t.Fatalf("pop mismatch: got (t=%v, seq=%v, gen=%d), want (t=%v, seq=%v, gen=%d)",
						got.Time, got.Payload, got.Gen, want.time, want.seq, want.gen)
				}
			}
		}
		// Drain: the tail must come out in model order too.
		if unfixed > 0 {
			q.Fix()
		}
		if q.Len() != len(ref.events) {
			t.Fatalf("length mismatch after tape: queue %d, model %d", q.Len(), len(ref.events))
		}
		for !q.Empty() {
			got, want := q.Pop(), ref.pop()
			if got.Time != want.time || got.Payload != want.seq || got.Gen != want.gen {
				t.Fatalf("drain mismatch: got (t=%v, seq=%v), want (t=%v, seq=%v)",
					got.Time, got.Payload, want.time, want.seq)
			}
		}
	})
}

// TestRemove exercises predicate removal: the matched event disappears,
// everything else dequeues in unchanged order.
func TestRemove(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 200; trial++ {
		var q Queue[int]
		n := 1 + r.Intn(40)
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(r.Intn(8))
			q.Push(times[i], i)
		}
		victim := r.Intn(n)
		if !q.Remove(func(e Event[int]) bool { return e.Payload == victim }) {
			t.Fatalf("trial %d: Remove failed to find payload %d", trial, victim)
		}
		if q.Remove(func(e Event[int]) bool { return e.Payload == victim }) {
			t.Fatalf("trial %d: Remove found payload %d twice", trial, victim)
		}
		// Expected order: (time, insertion index) over the survivors.
		type pair struct {
			time float64
			idx  int
		}
		var want []pair
		for i, tm := range times {
			if i != victim {
				want = append(want, pair{tm, i})
			}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].time != want[b].time {
				return want[a].time < want[b].time
			}
			return want[a].idx < want[b].idx
		})
		for _, w := range want {
			e := q.Pop()
			if e.Time != w.time || e.Payload != w.idx {
				t.Fatalf("trial %d: after Remove got (%v, %v), want (%v, %v)",
					trial, e.Time, e.Payload, w.time, w.idx)
			}
		}
		if !q.Empty() {
			t.Fatalf("trial %d: events left after drain", trial)
		}
	}
	var q Queue[int]
	if q.Remove(func(Event[int]) bool { return true }) {
		t.Fatal("Remove on empty queue reported success")
	}
}

// TestCompact drops stale generations and preserves the dequeue order of
// the survivors, reusing the backing array.
func TestCompact(t *testing.T) {
	var q Queue[int]
	r := xrand.New(9)
	live := make(map[int]uint64)
	for i := 0; i < 300; i++ {
		gen := uint64(r.Intn(3))
		q.PushGen(float64(r.Intn(10)), i, gen)
		live[i] = gen
	}
	isLive := func(e Event[int]) bool { return e.Gen == 2 }
	q.Compact(isLive)
	wantLen := 0
	for _, g := range live {
		if g == 2 {
			wantLen++
		}
	}
	if q.Len() != wantLen {
		t.Fatalf("Compact kept %d events, want %d", q.Len(), wantLen)
	}
	prevTime, prevPayload := math.Inf(-1), -1
	for !q.Empty() {
		e := q.Pop()
		if e.Gen != 2 {
			t.Fatalf("stale event survived Compact: %+v", e)
		}
		if e.Time < prevTime || (e.Time == prevTime && e.Payload < prevPayload) {
			t.Fatalf("Compact broke ordering: (%v, %v) after (%v, %v)", e.Time, e.Payload, prevTime, prevPayload)
		}
		prevTime, prevPayload = e.Time, e.Payload
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 32; i++ {
			q.PushGen(float64(i%7), i, uint64(i%2))
		}
		q.Compact(func(e Event[int]) bool { return e.Gen == 0 })
		q.Clear()
	})
	if allocs > 0 {
		t.Fatalf("Compact allocated %.1f times per pass", allocs)
	}
}

// benchSizes are the occupancies pinned by the Push-vs-Append/Fix
// micro-benchmarks: small (cache-resident), medium, and large heaps.
var benchSizes = []struct {
	name string
	n    int
}{{"16", 16}, {"256", 256}, {"4096", 4096}}

// BenchmarkBuildPush measures building an n-event list with n heap Pushes
// (O(n log n)) — the cost profile of the incremental engine's worst event.
func BenchmarkBuildPush(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			times := benchTimes(sz.n)
			var q Queue[int]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Clear()
				for j, tm := range times {
					q.Push(tm, j)
				}
			}
		})
	}
}

// BenchmarkBuildAppendFix measures building the same list with bulk Append
// plus one Floyd Fix (O(n)) — the rebuild engine's per-event pattern.
func BenchmarkBuildAppendFix(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			times := benchTimes(sz.n)
			var q Queue[int]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Clear()
				for j, tm := range times {
					q.Append(tm, j)
				}
				q.Fix()
			}
		})
	}
}

// BenchmarkPushPopSteady measures the incremental engine's steady-state
// pattern on a standing heap of size n: pop one event, push its successor.
func BenchmarkPushPopSteady(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			var q Queue[int]
			r := xrand.New(5)
			for i := 0; i < sz.n; i++ {
				q.Push(r.Float64()*1e3, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := q.Pop()
				q.Push(e.Time+r.Float64()*10, e.Payload)
			}
		})
	}
}

func benchTimes(n int) []float64 {
	r := xrand.New(11)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 1e3
	}
	return out
}
