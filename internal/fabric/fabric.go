// Package fabric is the networked sweep tier of the experiment layer: a
// dispatcher daemon that owns the task queue and a config-hash-keyed result
// cache, plus worker daemons on any reachable host that connect to it over
// TCP and execute tasks through the same exp.ExecuteTask every other
// backend uses — so a fabric run is byte-identical to exp.PoolBackend for
// the same submission.
//
// The transport reuses the repository's length-delimited JSONL framing
// (internal/wire, "<len>\n<json>\n"), generalizing exp.ProcBackend's
// stdin/stdout dialect to sockets, in the spirit of batch simulation-queue
// managers split into a dispatcher, simulation daemons and a submission
// CLI:
//
//   - workers dial the dispatcher and open with a hello frame carrying the
//     protocol version and an Env probe — a fingerprint of the binary's
//     seeding/cache-key derivation — so a drifted or mismatched worker
//     binary is refused at the handshake, before any task is risked;
//   - the dispatcher assigns one task at a time per worker (fast workers
//     naturally take more of the load), re-queues the in-flight task when a
//     worker is lost (connection drop, or heartbeat silence past the
//     configured timeout), and bounds retries per task — generalizing
//     ProcBackend's in-slot retry and MaxTaskAttempts to the network;
//   - deterministic task errors are never retried: they surface once to the
//     submitter, exactly like every other backend;
//   - workers heartbeat while connected (including mid-task), so a slow
//     task does not look like a dead worker, and reconnect with exponential
//     backoff when the dispatcher restarts or the link drops;
//   - clients (Backend, the exp.Backend implementation behind
//     `-backend fabric`, and cmd/psq) submit task batches as jobs, stream
//     results back, and can list or cancel jobs on a running dispatcher.
//
// Entry points: NewDispatcher + Dispatcher.Serve (cmd/fabricd -role
// dispatcher), Worker.Run (cmd/fabricd -role worker), Backend (drivers),
// Client (cmd/psq).
package fabric

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/lru"
)

// protoVersion guards against mixed dispatcher/worker/client binaries: the
// dispatcher refuses a hello whose version it does not speak.
const protoVersion = 1

// Connection roles, declared in the hello frame.
const (
	roleWorker = "worker"
	roleClient = "client"
)

// helloMsg opens every fabric connection, worker or client.
type helloMsg struct {
	V    int    `json:"v"`
	Role string `json:"role"`
	// Name identifies a worker in logs and diagnostics.
	Name string `json:"name,omitempty"`
	// Probe is the worker's Env fingerprint (EnvProbe): a digest of its
	// seeding/cache-key derivation. Required for workers; a mismatch means
	// the worker binary would compute different numbers than the
	// dispatcher's clients expect, so the hello is refused.
	Probe string `json:"probe,omitempty"`
}

// helloAck answers a hello. A refused connection carries the reason and is
// then closed.
type helloAck struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// assignMsg hands one task to a worker (dispatcher → worker). Seq is a
// per-connection sequence number the worker echoes, so a desynced or
// replayed result is detectable.
type assignMsg struct {
	Seq  int64    `json:"seq"`
	Env  exp.Env  `json:"env"`
	Task exp.Task `json:"task"`
}

// workerMsg is any worker → dispatcher frame: a bare heartbeat, or a task
// result. Every frame — results included — refreshes the worker's liveness
// deadline.
type workerMsg struct {
	HB     bool       `json:"hb,omitempty"`
	Result *resultMsg `json:"result,omitempty"`
}

// resultMsg reports one finished assignment. Err carries a deterministic
// task-level failure (including recovered panics) as text; the worker
// itself stays alive and keeps taking tasks.
type resultMsg struct {
	Seq int64       `json:"seq"`
	Err string      `json:"err,omitempty"`
	Out exp.Outcome `json:"out"`
}

// clientReq is the single request a client connection issues after its
// hello; exactly one field is set.
type clientReq struct {
	Submit *submitReq `json:"submit,omitempty"`
	List   bool       `json:"list,omitempty"`
	Cancel string     `json:"cancel,omitempty"`
	// Stats requests the dispatcher's operational counters (psq stats).
	Stats bool `json:"stats,omitempty"`
}

// submitReq submits a batch of tasks as one job. Detached jobs run to
// completion (warming the dispatcher's result cache) with no client
// attached; attached jobs stream results back on the same connection.
type submitReq struct {
	Name   string     `json:"name,omitempty"`
	Env    exp.Env    `json:"env"`
	Tasks  []exp.Task `json:"tasks"`
	Detach bool       `json:"detach,omitempty"`
	// Ref is a client-generated idempotency token: a resubmission carrying
	// the Ref of a job the dispatcher already knows re-attaches to that job
	// instead of creating a duplicate. This is what makes redial-after-
	// disconnect (and re-attach after a journaled dispatcher restart) safe.
	Ref string `json:"ref,omitempty"`
}

// clientResp is any dispatcher → client frame.
type clientResp struct {
	// Submitted acknowledges a submit with the new job's ID.
	Submitted string `json:"submitted,omitempty"`
	// Result streams one finished task of an attached job.
	Result *streamMsg `json:"result,omitempty"`
	// Done terminates an attached job's stream.
	Done *doneMsg `json:"done,omitempty"`
	// Jobs answers a list request.
	Jobs []JobStatus `json:"jobs,omitempty"`
	// Stats answers a stats request.
	Stats *StatsReply `json:"stats,omitempty"`
	// OK acknowledges a cancel.
	OK bool `json:"ok,omitempty"`
	// Err reports a request-level failure (unknown job, bad submit, ...).
	Err string `json:"err,omitempty"`
}

// streamMsg is one finished task of an attached job: the task's index in
// the submitted batch plus its outcome. Because outcomes are addressed by
// index, results may stream in any completion order without affecting the
// submitter's aggregation.
type streamMsg struct {
	Index int         `json:"index"`
	Out   exp.Outcome `json:"out"`
}

// doneMsg ends an attached job's stream; a non-empty Err is the job's
// failure (a deterministic task error, a retry budget exhausted, or a
// cancellation), surfaced exactly once.
type doneMsg struct {
	Err string `json:"err,omitempty"`
}

// StatsReply is the dispatcher's operational snapshot, as reported to psq
// stats: the numbers the Dispatcher accessors (WorkerCount, CacheHits, ...)
// already expose in-process, made reachable over the wire. CacheLen and
// CacheStats appear only when an outcome cache is configured (CacheStats
// only for caches that expose lru.Stats, i.e. MemOutcomeCache).
type StatsReply struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queueDepth"`
	Jobs       int   `json:"jobs"`
	CacheHits  int64 `json:"cacheHits"`
	Requeues   int64 `json:"requeues"`
	Handshakes int64 `json:"handshakes"`
	Refusals   int64 `json:"refusals"`
	// DeadlineExpiries counts assignments abandoned because the per-task
	// execution deadline (fabricd -task-deadline) expired.
	DeadlineExpiries int64      `json:"deadlineExpiries,omitempty"`
	CacheLen         int        `json:"cacheLen,omitempty"`
	CacheStats       *lru.Stats `json:"cacheStats,omitempty"`
}

// JobStatus is one job's public state, as reported to psq list.
type JobStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Err   string `json:"err,omitempty"`
}

// Job states reported by JobStatus.
const (
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// EnvProbe fingerprints this binary's seeding and cache-key derivation by
// evaluating the contract pinned in exp's TestKeyAndRepSeedPinned on a
// canonical probe cell. Two binaries with equal probes derive identical
// seeds and cache keys for every task, which is exactly the invariant that
// makes distributing tasks safe; a worker whose probe differs would compute
// different numbers, so the dispatcher refuses its hello.
func EnvProbe() string {
	sw := exp.Sweep{Name: "fabric-probe", Reps: 2, BaseSeed: 7, Warmup: 100, Jobs: 1000}
	c := exp.Cell{K: 4, Rho: 0.7, MuI: 2, MuE: 1, Policy: "IF"}
	return fmt.Sprintf("v%d|%s|%016x|%016x", protoVersion, sw.Key(c), sw.RepSeed(c, 0), sw.RepSeed(c, 1))
}

// taskCacheKey derives the dispatcher-cache key of a task, delegating to
// exp.TaskKey — the same derivation the submitting-process OutcomeCache
// uses. Sim tasks keep the dispatcher's historical key format (the cell's
// config hash plus the replication index), so caches filled by older
// dispatchers stay valid; analysis points, validation rows, ablations and
// dominance traces are deterministic given their specs and now cache too.
func taskCacheKey(t exp.Task) (string, bool) { return exp.TaskKey(t) }
