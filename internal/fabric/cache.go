package fabric

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/exp"
	"repro/internal/lru"
)

// OutcomeCache stores finished task outcomes keyed by task identity
// (taskCacheKey: the cell's config hash plus the replication index). The
// dispatcher consults it before assigning a task and fills it as results
// arrive, so a re-submitted sweep — from any client — is answered without
// recomputation. Because outcomes round-trip JSON exactly (the invariant
// ProcBackend's byte-identity gate pins), a cache hit is bit-identical to a
// fresh execution.
//
// This is the dispatcher-side complement of exp.Cache: exp.Cache memoizes
// aggregated cells in the *submitting* process, OutcomeCache memoizes raw
// task outcomes in the *dispatcher*, where they are shared by every client
// of the fabric.
type OutcomeCache interface {
	Get(key string) (exp.Outcome, bool)
	Put(key string, out exp.Outcome) error
}

// Default caps of NewMemOutcomeCache. Raw task outcomes are smaller than
// aggregated cells (one replication each, a few hundred bytes to a few KB of
// JSON), so the entry cap is generous; the byte cap is the real bound under
// sustained distinct-spec load.
const (
	defaultOutcomeCacheEntries = 1 << 17
	defaultOutcomeCacheBytes   = 256 << 20
)

// MemOutcomeCache is an in-memory OutcomeCache bounded by entry count and
// accounted bytes with LRU eviction (internal/lru); entries are accounted
// at their JSON size. Safe for concurrent use.
type MemOutcomeCache struct {
	c *lru.Cache[exp.Outcome]
}

// NewMemOutcomeCache returns an in-memory outcome cache with the default
// caps.
func NewMemOutcomeCache() *MemOutcomeCache {
	return NewMemOutcomeCacheSized(defaultOutcomeCacheEntries, defaultOutcomeCacheBytes)
}

// NewMemOutcomeCacheSized returns an in-memory outcome cache capped at
// maxEntries entries and maxBytes accounted bytes; a cap <= 0 leaves that
// axis unbounded.
func NewMemOutcomeCacheSized(maxEntries int, maxBytes int64) *MemOutcomeCache {
	return &MemOutcomeCache{c: lru.New[exp.Outcome](maxEntries, maxBytes)}
}

// Get implements OutcomeCache.
func (c *MemOutcomeCache) Get(key string) (exp.Outcome, bool) { return c.c.Get(key) }

// Put implements OutcomeCache.
func (c *MemOutcomeCache) Put(key string, out exp.Outcome) error {
	size := int64(len(key))
	if b, err := json.Marshal(out); err == nil {
		size += int64(len(b))
	}
	c.c.Put(key, out, size)
	return nil
}

// Len returns the number of cached outcomes.
func (c *MemOutcomeCache) Len() int { return c.c.Len() }

// Stats snapshots the hit/miss/eviction counters and occupancy; the
// dispatcher surfaces them through psq stats.
func (c *MemOutcomeCache) Stats() lru.Stats { return c.c.Stats() }

// FileOutcomeCache persists outcomes as JSON lines, one per finished task,
// appended and flushed as results arrive — the same crash-tolerant layout
// as exp.FileCache: a corrupt line (truncated by a hard kill mid-append) is
// skipped on load, because cached entries are an optimization, never the
// source of truth. One dispatcher owns the file; do not share it.
type FileOutcomeCache struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	mem     map[string]exp.Outcome
	corrupt int
	// tornTail is set when the file existed but did not end in a newline
	// (a record torn by a hard kill); the first append then starts with a
	// newline so the new record lands on its own line instead of being
	// absorbed into the torn one.
	tornTail bool
}

type outcomeRecord struct {
	Key string      `json:"key"`
	Out exp.Outcome `json:"out"`
}

// OpenFileOutcomeCache loads (or creates on first Put) the cache at path.
func OpenFileOutcomeCache(path string) (*FileOutcomeCache, error) {
	c := &FileOutcomeCache{path: path, mem: make(map[string]exp.Outcome)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, fmt.Errorf("fabric: opening outcome cache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec outcomeRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			c.corrupt++
			continue
		}
		c.mem[rec.Key] = rec.Out
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fabric: reading outcome cache %s: %w", path, err)
	}
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, st.Size()-1); err == nil && tail[0] != '\n' {
			c.tornTail = true
		}
	}
	return c, nil
}

// Get implements OutcomeCache.
func (c *FileOutcomeCache) Get(key string) (exp.Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.mem[key]
	return out, ok
}

// Put implements OutcomeCache: the record is appended through a persistent
// O_APPEND handle (one write(2) per record) before the in-memory index is
// updated.
func (c *FileOutcomeCache) Put(key string, out exp.Outcome) error {
	line, err := json.Marshal(outcomeRecord{Key: key, Out: out})
	if err != nil {
		return fmt.Errorf("fabric: encoding outcome record: %w", err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tornTail {
		line = append([]byte{'\n'}, line...)
		c.tornTail = false
	}
	if c.f == nil {
		f, err := os.OpenFile(c.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("fabric: opening outcome cache for append: %w", err)
		}
		c.f = f
	}
	if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("fabric: appending outcome record: %w", err)
	}
	c.mem[key] = out
	return nil
}

// Close releases the append handle; Get keeps serving from memory and the
// next Put reopens the file.
func (c *FileOutcomeCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	if err != nil {
		return fmt.Errorf("fabric: closing outcome cache: %w", err)
	}
	return nil
}

// Len returns the number of cached outcomes.
func (c *FileOutcomeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Corrupt reports how many undecodable lines the load skipped.
func (c *FileOutcomeCache) Corrupt() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupt
}
