package fabric

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/wire"
)

// errHandshakeRefused marks a dispatcher's refusal (version or env drift) —
// a permanent condition the reconnect loop must not retry into.
var errHandshakeRefused = errors.New("fabric: dispatcher refused handshake")

// errFaultStop is returned by the fault-injection hooks when a test worker
// has played its scripted death and must not reconnect.
var errFaultStop = errors.New("fabric: fault injection: worker stopped")

// errDrained is returned by a session when the worker was asked to drain:
// it finished (or never started) its in-flight task and must not redial.
var errDrained = errors.New("fabric: worker drained")

// Worker is a fabric worker daemon: it dials the dispatcher, handshakes,
// and executes assigned tasks through exp.ExecuteTask — the same executor
// every backend runs, which is what keeps fabric output byte-identical to
// the in-process pool. While connected it heartbeats (including mid-task,
// so long tasks are not mistaken for death); when the link drops it
// reconnects with exponential backoff. One Worker serves one task at a
// time; run several (fabricd -slots) to use more cores.
type Worker struct {
	// Dispatcher is the dispatcher's host:port.
	Dispatcher string
	// Name identifies this worker in dispatcher logs.
	Name string
	// HeartbeatInterval is the idle gap between heartbeat frames; <= 0
	// means 3s. Keep it well under the dispatcher's HeartbeatTimeout.
	HeartbeatInterval time.Duration
	// ReconnectBackoff is the initial redial delay after a failed dial or
	// dropped session; it doubles per consecutive failure up to
	// MaxReconnectBackoff. <= 0 means 250ms.
	ReconnectBackoff time.Duration
	// MaxReconnectBackoff caps the redial delay; <= 0 means 15s.
	MaxReconnectBackoff time.Duration
	// DialTimeout bounds one dial attempt; <= 0 means 5s.
	DialTimeout time.Duration
	// Logf receives session events; nil discards them.
	Logf func(format string, args ...any)

	// Fault-injection hooks, settable only by in-package tests (the CI
	// gate injects faults the honest way: SIGKILL on a fabricd process).
	//
	// dieAfterResults > 0: abruptly close the connection after sending N
	// results and stop for good — a crash that never comes back.
	dieAfterResults int
	// dieAfterAssigns > 0: abruptly close the connection upon *receiving*
	// the Nth assignment, without answering it, and stop for good — a crash
	// mid-task, the case that forces the dispatcher to re-queue in-flight
	// work.
	dieAfterAssigns int
	// dropAfterResults > 0: abruptly close the connection after sending N
	// results each session, but keep the reconnect loop running — a flaky
	// link that heals.
	dropAfterResults int
	// freezeAfterAssigns > 0: upon receiving the Nth assignment, stop
	// heartbeating and go completely silent (no result, no frames) until
	// the dispatcher reaps the connection, then stop for good — a process
	// wedged hard (SIGSTOP, kernel hang).
	freezeAfterAssigns int
	// probeOverride, when non-empty, replaces the hello's Env probe — a
	// worker binary whose seeding/cache-key derivation drifted.
	probeOverride string

	sessions atomic.Int64
	served   atomic.Int64

	drainMu sync.Mutex
	drainCh chan struct{}
	// inTask is true between receiving an assignment and flushing its
	// result; the drain watcher leaves a busy worker's connection alone so
	// the in-flight task lands before the worker deregisters.
	inTask atomic.Bool
}

// drainChan lazily creates the drain signal channel, so Drain works whether
// it is called before, during, or after Run.
func (w *Worker) drainChan() chan struct{} {
	w.drainMu.Lock()
	defer w.drainMu.Unlock()
	if w.drainCh == nil {
		w.drainCh = make(chan struct{})
	}
	return w.drainCh
}

// Drain asks the worker to exit gracefully: an idle worker disconnects
// immediately; a worker mid-task finishes the task, delivers the result,
// and then disconnects. Run returns nil after a drain. Safe to call from
// any goroutine, any number of times.
func (w *Worker) Drain() {
	ch := w.drainChan()
	w.drainMu.Lock()
	defer w.drainMu.Unlock()
	select {
	case <-ch:
	default:
		close(ch)
	}
}

// draining reports whether Drain has been called.
func (w *Worker) draining() bool {
	select {
	case <-w.drainChan():
		return true
	default:
		return false
	}
}

// Sessions reports how many sessions reached a completed handshake —
// observability for the reconnect tests.
func (w *Worker) Sessions() int64 { return w.sessions.Load() }

// Served reports how many task results this worker has sent.
func (w *Worker) Served() int64 { return w.served.Load() }

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) heartbeatInterval() time.Duration {
	if w.HeartbeatInterval > 0 {
		return w.HeartbeatInterval
	}
	return 3 * time.Second
}

// Run dials, serves and redials until ctx is canceled, the dispatcher
// refuses the handshake (a permanent condition: version or env drift), or
// a scripted fault stops the worker. The returned error is nil only for a
// fault stop; cancellation returns ctx's error.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.ReconnectBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	maxBackoff := w.MaxReconnectBackoff
	if maxBackoff <= 0 {
		maxBackoff = 15 * time.Second
	}
	delay := backoff
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining() {
			return nil
		}
		handshook, err := w.session(ctx)
		switch {
		case errors.Is(err, errHandshakeRefused):
			return err
		case errors.Is(err, errFaultStop), errors.Is(err, errDrained):
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		}
		if w.draining() {
			return nil
		}
		if handshook {
			delay = backoff // a healthy session resets the backoff
		}
		if err != nil {
			w.logf("fabric worker %s: session ended: %v (redial in %v)", w.Name, err, delay)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > maxBackoff {
			delay = maxBackoff
		}
	}
}

// session runs one connection: dial, hello, then serve assignments until
// the link drops. handshook reports whether the handshake completed, so
// Run can distinguish "dispatcher not up yet" (keep backing off) from a
// healthy session that dropped (reset backoff).
func (w *Worker) session(ctx context.Context) (handshook bool, err error) {
	dialTimeout := w.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	dialer := net.Dialer{Timeout: dialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", w.Dispatcher)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	// Kill the connection when ctx cancels, so a blocked read unwinds. A
	// drain closes the connection too, but only while the worker is idle —
	// mid-task the assignment loop sees the drain itself, after the result
	// is delivered.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-w.drainChan():
			if !w.inTask.Load() {
				conn.Close()
			}
		case <-watchDone:
		}
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var wmu sync.Mutex // bw is shared by the heartbeat goroutine

	probe := w.probeOverride
	if probe == "" {
		probe = EnvProbe()
	}
	if err := wire.WriteFrame(bw, helloMsg{V: protoVersion, Role: roleWorker, Name: w.Name, Probe: probe}); err != nil {
		return false, fmt.Errorf("sending hello: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return false, fmt.Errorf("sending hello: %w", err)
	}
	var ack helloAck
	if err := wire.ReadFrame(br, &ack); err != nil {
		return false, fmt.Errorf("reading hello ack: %w", err)
	}
	if !ack.OK {
		return false, fmt.Errorf("%w: %s", errHandshakeRefused, ack.Err)
	}
	w.sessions.Add(1)

	// Heartbeats run for the life of the session — through task execution
	// too, which is what distinguishes a slow worker from a dead one.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go func() {
		t := time.NewTicker(w.heartbeatInterval())
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				wmu.Lock()
				werr := wire.WriteFrame(bw, workerMsg{HB: true})
				if werr == nil {
					werr = bw.Flush()
				}
				wmu.Unlock()
				if werr != nil {
					return // the main read loop will see the dead conn
				}
			}
		}
	}()

	results, assigns := 0, 0
	for {
		var a assignMsg
		if err := wire.ReadFrame(br, &a); err != nil {
			if w.draining() {
				return true, errDrained
			}
			return true, fmt.Errorf("reading assignment: %w", err)
		}
		w.inTask.Store(true)
		assigns++
		if w.dieAfterAssigns > 0 && assigns >= w.dieAfterAssigns {
			conn.Close()
			return true, errFaultStop
		}
		if w.freezeAfterAssigns > 0 && assigns >= w.freezeAfterAssigns {
			// Scripted hard wedge: stop heartbeating, go silent, and wait
			// for the dispatcher to reap the connection.
			hbCancel()
			buf := make([]byte, 1)
			for {
				if _, err := conn.Read(buf); err != nil {
					return true, errFaultStop
				}
			}
		}
		out, terr := exp.ExecuteTask(a.Env, a.Task)
		res := resultMsg{Seq: a.Seq, Out: out}
		if terr != nil {
			res.Err = terr.Error()
		}
		wmu.Lock()
		werr := wire.WriteFrame(bw, workerMsg{Result: &res})
		if werr != nil && res.Err == "" {
			// Result not representable (e.g. NaN in a field JSON cannot
			// carry): degrade to a task error, which always marshals.
			res = resultMsg{Seq: a.Seq, Err: fmt.Sprintf("fabric: %s: un-encodable result: %v", a.Task.Label(), werr)}
			werr = wire.WriteFrame(bw, workerMsg{Result: &res})
		}
		if werr == nil {
			werr = bw.Flush()
		}
		wmu.Unlock()
		if werr != nil {
			return true, fmt.Errorf("writing result: %w", werr)
		}
		w.inTask.Store(false)
		results++
		w.served.Add(1)
		if w.draining() {
			w.logf("fabric worker %s: drained after in-flight task", w.Name)
			conn.Close()
			return true, errDrained
		}
		if w.dieAfterResults > 0 && results >= w.dieAfterResults {
			conn.Close()
			return true, errFaultStop
		}
		if w.dropAfterResults > 0 && results >= w.dropAfterResults {
			conn.Close()
			return true, fmt.Errorf("fabric: fault injection: dropped connection after %d results", results)
		}
	}
}
