package fabric

// The dispatcher's write-ahead job journal. Every state transition that
// matters after a crash — a job submitted, a task granted to a worker, a
// task finished, a job failed or canceled, a clean drain — is appended as
// one JSON line *before* the in-memory registry mutates, with the same
// torn-tail-repair discipline as FileOutcomeCache: a record torn by a hard
// kill mid-write(2) is skipped on load (counted, never trusted), and the
// first append after loading a torn file starts with a newline so the new
// record lands on its own line instead of being absorbed into the stump.
//
// Replay (Dispatcher restore) is idempotent by construction: submissions
// are keyed by job ID (first record wins), completions by (job, index)
// with the same emitted-guard the live dispatcher uses, and a grant with
// no matching completion is exactly an interrupted in-flight execution —
// it consumes one unit of the task's retry budget and the task is
// re-queued. Because every task is idempotent (seeds and cache keys derive
// from task identity alone), re-running an interrupted grant is always
// safe, and a configured outcome cache dedupes re-queued tasks whose
// results landed there before the crash.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"

	"repro/internal/exp"
)

// errJournalCrash is returned by the test-only crash point when an append
// was deliberately torn mid-write — the in-process stand-in for a SIGKILL
// landing between the first and last byte of a write(2).
var errJournalCrash = errors.New("fabric: journal crash point: append torn mid-write")

// journalRecord is one line of the write-ahead journal; exactly one field
// is set. An all-empty record is treated as corrupt on load.
type journalRecord struct {
	Submit *journalSubmit `json:"submit,omitempty"`
	Grant  *journalGrant  `json:"grant,omitempty"`
	Done   *journalDone   `json:"done,omitempty"`
	Fail   *journalMark   `json:"fail,omitempty"`
	Cancel *journalMark   `json:"cancel,omitempty"`
	// Shutdown marks a clean drain: the dispatcher stopped granting,
	// waited out its in-flight tasks, and exited on purpose. A journal
	// whose last record is a shutdown replays with no interrupted grants.
	Shutdown bool `json:"shutdown,omitempty"`
}

// journalSubmit records a job submission — the full spec, so replay can
// rebuild the registry entry without any other source of truth.
type journalSubmit struct {
	ID     string     `json:"id"`
	Ref    string     `json:"ref,omitempty"`
	Name   string     `json:"name,omitempty"`
	Env    exp.Env    `json:"env"`
	Tasks  []exp.Task `json:"tasks"`
	Detach bool       `json:"detach,omitempty"`
}

// journalGrant records a task handed to a worker, written before the
// assignment frame is sent. On replay, a grant without a matching done is
// an execution the crash interrupted: one unit of the task's retry budget.
type journalGrant struct {
	Job string `json:"job"`
	Idx int    `json:"idx"`
}

// journalDone records a finished task with its outcome, written before the
// in-memory registry marks it emitted — so a completion that reached the
// journal is never recomputed and can be re-streamed to a re-attaching
// client after a restart.
type journalDone struct {
	Job string      `json:"job"`
	Idx int         `json:"idx"`
	Out exp.Outcome `json:"out"`
}

// journalMark records a terminal job transition (fail or cancel).
type journalMark struct {
	Job string `json:"job"`
	Msg string `json:"msg,omitempty"`
}

// Journal is the dispatcher's write-ahead job journal: open it with
// OpenJournal, hand it to DispatcherOptions.Journal (NewDispatcher replays
// the loaded records into its registry), and Close it when the process
// exits. One dispatcher owns the file; do not share it.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	recs     []journalRecord
	corrupt  int
	tornTail bool
	clean    bool

	// failAfter, when >= 0, is a test-only crash point: it bounds the
	// bytes this session may append, and the write that would cross the
	// bound is truncated exactly at it and answered with errJournalCrash —
	// simulating a hard kill mid-write. < 0 disables it.
	failAfter int64
	written   int64
}

// OpenJournal loads (or creates on first append) the journal at path,
// skipping — and counting — corrupt lines, and detecting a torn tail.
func OpenJournal(path string) (*Journal, error) {
	jl := &Journal{path: path, failAfter: -1}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return jl, nil
		}
		return nil, fmt.Errorf("fabric: reading journal %s: %w", path, err)
	}
	jl.recs, jl.corrupt, jl.tornTail = decodeJournal(data)
	jl.clean = len(jl.recs) > 0 && jl.recs[len(jl.recs)-1].Shutdown
	return jl, nil
}

// decodeJournal parses journal bytes into the records that survived: one
// JSON object per line, corrupt (undecodable or empty) lines skipped and
// counted, torn reporting whether the data ends mid-record (no trailing
// newline). It never fails: a journal is an optimization to replay, not a
// source of truth to refuse.
func decodeJournal(data []byte) (recs []journalRecord, corrupt int, torn bool) {
	torn = len(data) > 0 && data[len(data)-1] != '\n'
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			corrupt++
			continue
		}
		if rec.Submit == nil && rec.Grant == nil && rec.Done == nil &&
			rec.Fail == nil && rec.Cancel == nil && !rec.Shutdown {
			corrupt++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, corrupt, torn
}

// appendRecord appends one record through a persistent O_APPEND handle —
// one write(2) per record, flushed by the kernel, so the most a hard kill
// can cost is the record being written (which replay then skips as torn).
func (jl *Journal) appendRecord(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fabric: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.tornTail {
		line = append([]byte{'\n'}, line...)
		jl.tornTail = false
	}
	if jl.f == nil {
		f, err := os.OpenFile(jl.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("fabric: opening journal for append: %w", err)
		}
		jl.f = f
	}
	if jl.failAfter >= 0 && jl.written+int64(len(line)) > jl.failAfter {
		keep := jl.failAfter - jl.written
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			jl.f.Write(line[:keep])
			jl.written += keep
		}
		return errJournalCrash
	}
	if _, err := jl.f.Write(line); err != nil {
		return fmt.Errorf("fabric: appending journal record: %w", err)
	}
	jl.written += int64(len(line))
	return nil
}

// records returns the records loaded at open time; the dispatcher consumes
// them once in NewDispatcher's restore.
func (jl *Journal) records() []journalRecord {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.recs
}

// Len reports how many intact records the open loaded.
func (jl *Journal) Len() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return len(jl.recs)
}

// Corrupt reports how many undecodable lines the open skipped.
func (jl *Journal) Corrupt() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.corrupt
}

// CleanShutdown reports whether the loaded journal ended with a clean
// shutdown record — the previous dispatcher drained rather than crashed.
func (jl *Journal) CleanShutdown() bool {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.clean
}

// Path returns the journal's file path.
func (jl *Journal) Path() string { return jl.path }

// Close releases the append handle; the next append reopens it.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	if err != nil {
		return fmt.Errorf("fabric: closing journal: %w", err)
	}
	return nil
}

// restoredState is the registry a journal replays to: the same structures
// the live dispatcher maintains, rebuilt record by record with the live
// transition guards (first submit wins, completions only on running jobs
// and unemitted indices, terminal states are sticky).
type restoredState struct {
	jobs     map[string]*job
	jobOrder []string
	refs     map[string]string
	nextJob  int
	// failed lists jobs whose retry budget was already exhausted by
	// interrupted grants at replay time; the dispatcher journals their
	// failure and surfaces it like any other budget exhaustion.
	failed []string
}

// restoreRecords replays journal records into a fresh registry.
// maxAttempts is the dispatcher's per-task retry budget: a grant with no
// matching done is an interrupted execution and consumes one attempt, so
// the budget is unified across restarts — a task cannot crash-loop the
// fabric by wedging every dispatcher incarnation.
func restoreRecords(recs []journalRecord, maxAttempts int) *restoredState {
	st := &restoredState{
		jobs: make(map[string]*job),
		refs: make(map[string]string),
	}
	for _, rec := range recs {
		switch {
		case rec.Submit != nil:
			s := rec.Submit
			if s.ID == "" || len(s.Tasks) == 0 {
				continue
			}
			if _, ok := st.jobs[s.ID]; ok {
				continue // duplicate submit record: first wins
			}
			j := &job{
				id:       s.ID,
				ref:      s.Ref,
				name:     s.Name,
				env:      s.Env,
				tasks:    s.Tasks,
				detach:   s.Detach,
				state:    JobRunning,
				attempts: make([]int, len(s.Tasks)),
				emitted:  make([]bool, len(s.Tasks)),
				outs:     make([]*exp.Outcome, len(s.Tasks)),
				notify:   make(chan struct{}),
			}
			st.jobs[j.id] = j
			st.jobOrder = append(st.jobOrder, j.id)
			if s.Ref != "" {
				if _, ok := st.refs[s.Ref]; !ok {
					st.refs[s.Ref] = j.id
				}
			}
			if n, ok := jobNum(s.ID); ok && n > st.nextJob {
				st.nextJob = n
			}
		case rec.Grant != nil:
			g := rec.Grant
			j := st.jobs[g.Job]
			if j == nil || g.Idx < 0 || g.Idx >= len(j.tasks) {
				continue
			}
			if j.state != JobRunning || j.emitted[g.Idx] {
				continue
			}
			j.attempts[g.Idx]++
		case rec.Done != nil:
			dn := rec.Done
			j := st.jobs[dn.Job]
			if j == nil || dn.Idx < 0 || dn.Idx >= len(j.tasks) {
				continue
			}
			if j.state != JobRunning || j.emitted[dn.Idx] {
				continue
			}
			out := dn.Out
			j.emitted[dn.Idx] = true
			j.done++
			j.outs[dn.Idx] = &out
			// The execution this grant recorded finished; it is not an
			// interrupted attempt.
			if j.attempts[dn.Idx] > 0 {
				j.attempts[dn.Idx]--
			}
			if j.done == len(j.tasks) {
				j.state = JobDone
			}
		case rec.Fail != nil:
			j := st.jobs[rec.Fail.Job]
			if j == nil || j.state != JobRunning {
				continue
			}
			j.state = JobFailed
			j.err = rec.Fail.Msg
		case rec.Cancel != nil:
			j := st.jobs[rec.Cancel.Job]
			if j == nil || j.state != JobRunning {
				continue
			}
			j.state = JobCanceled
			j.err = rec.Cancel.Msg
		case rec.Shutdown:
			// Informational: the previous incarnation drained cleanly.
		}
	}
	// Enforce the unified retry budget: a task whose interrupted grants
	// already consumed every attempt fails its job at replay, exactly as
	// the live requeueOnLoss would have.
	for _, id := range st.jobOrder {
		j := st.jobs[id]
		if j.state != JobRunning {
			continue
		}
		for idx := range j.tasks {
			if !j.emitted[idx] && j.attempts[idx] >= maxAttempts {
				j.state = JobFailed
				j.err = fmt.Sprintf("fabric: %s failed %d times across dispatcher restarts (retry budget %d exhausted by interrupted grants)",
					j.tasks[idx].Label(), j.attempts[idx], maxAttempts)
				st.failed = append(st.failed, id)
				break
			}
		}
	}
	return st
}

// jobNum parses the numeric suffix of a dispatcher job ID ("j17" -> 17).
func jobNum(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
