package fabric

// Heartbeat-timeout semantics under a fake clock: liveness is pure
// bookkeeping over injected timestamps, so the dead/alive decision is
// tested here with no real timers at all — a silent worker expires exactly
// when its silence exceeds the timeout, and a worker that keeps sending
// frames (heartbeats or results, either counts) never does.

import (
	"testing"
	"time"
)

func TestLivenessSilentWorkerExpires(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	l := newLiveness(10 * time.Second)
	l.seen(1, base)

	if got := l.expired(base.Add(10 * time.Second)); len(got) != 0 {
		t.Fatalf("worker expired at exactly the timeout: %v", got)
	}
	got := l.expired(base.Add(10*time.Second + time.Nanosecond))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("silent worker not expired just past the timeout: %v", got)
	}
}

func TestLivenessHeartbeatingWorkerSurvives(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	l := newLiveness(10 * time.Second)
	// A slow-but-alive worker: no results for a minute, but a frame every
	// 3s. It must never be declared dead.
	now := base
	l.seen(1, now)
	for i := 0; i < 20; i++ {
		now = now.Add(3 * time.Second)
		if got := l.expired(now); len(got) != 0 {
			t.Fatalf("heartbeating worker expired at +%v: %v", now.Sub(base), got)
		}
		l.seen(1, now)
	}
	// The moment it goes silent, the clock starts: dead after timeout.
	if got := l.expired(now.Add(11 * time.Second)); len(got) != 1 {
		t.Fatalf("worker not expired after going silent: %v", got)
	}
}

func TestLivenessMixedWorkers(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	l := newLiveness(5 * time.Second)
	l.seen(1, base) // goes silent
	l.seen(2, base) // keeps heartbeating
	l.seen(2, base.Add(4*time.Second))
	l.seen(2, base.Add(8*time.Second))

	got := l.expired(base.Add(9 * time.Second))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("want only worker 1 expired, got %v", got)
	}
	if l.tracked() != 2 {
		t.Fatalf("tracked = %d, want 2", l.tracked())
	}
}

func TestLivenessDropForgets(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	l := newLiveness(time.Second)
	l.seen(7, base)
	l.drop(7)
	if got := l.expired(base.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("dropped worker still expires: %v", got)
	}
	if l.tracked() != 0 {
		t.Fatalf("tracked = %d after drop, want 0", l.tracked())
	}
}
