package fabric

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/lru"
	"repro/internal/wire"
)

// DispatcherOptions configure a Dispatcher. The zero value is usable.
type DispatcherOptions struct {
	// MaxTaskAttempts bounds how many times one task is attempted across
	// worker losses before its job fails; <= 0 means 3. A task *error*
	// (bad cell, panic) is never retried — errors are deterministic and
	// surface immediately; only worker loss triggers a retry. This mirrors
	// exp.ProcBackend.MaxTaskAttempts across the network. With a Journal,
	// the budget is unified across dispatcher restarts: an interrupted
	// grant replayed from the journal counts as a consumed attempt.
	MaxTaskAttempts int
	// HeartbeatTimeout is the silence after which a connected worker is
	// declared dead, its connection closed, and its in-flight task
	// re-queued; <= 0 means 15s. Workers heartbeat while executing, so a
	// slow-but-alive worker is never reaped.
	HeartbeatTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange on a fresh connection,
	// so a slow-loris peer (or a port scanner) cannot hold a connection
	// open indefinitely without completing a handshake; <= 0 means 5s.
	HandshakeTimeout time.Duration
	// TaskDeadline, when > 0, bounds one task execution end to end: an
	// assignment unanswered after this long closes the worker's connection
	// and funnels through the same re-queue path (and the same
	// MaxTaskAttempts budget) as a worker loss. Heartbeats keep a slow
	// worker alive past the heartbeat timeout, so this is the only bound
	// on a worker that is alive but wedged inside a task. 0 disables it.
	TaskDeadline time.Duration
	// Cache, when non-nil, memoizes task outcomes across jobs and clients.
	Cache OutcomeCache
	// Journal, when non-nil, makes the dispatcher durable: submissions,
	// grants, completions and cancellations are appended write-ahead to
	// the journal, and NewDispatcher replays the records the journal
	// loaded — rebuilding the job registry, re-queueing interrupted
	// in-flight tasks and restoring finished outcomes so re-attaching
	// clients can be answered. Without a journal the dispatcher behaves
	// exactly as before: in-memory only, attached jobs die with their
	// client.
	Journal *Journal
	// Logf receives operational events (worker joins, losses, re-queues);
	// nil discards them.
	Logf func(format string, args ...any)
	// Clock overrides the time source for liveness decisions (tests); nil
	// means time.Now.
	Clock func() time.Time
}

// Dispatcher owns the fabric's task queue, job registry and result cache,
// and serves worker and client connections over TCP. See the package
// comment for the protocol; construct with NewDispatcher, run with Serve,
// stop with Close (or Drain then Close for a clean shutdown).
type Dispatcher struct {
	opts DispatcherOptions
	live *liveness

	mu         sync.Mutex
	cond       *sync.Cond
	ln         net.Listener
	queue      []taskRef
	jobs       map[string]*job
	jobOrder   []string
	refs       map[string]string // submit ref -> job id (idempotent resubmission)
	workers    map[int64]*workerLink
	conns      map[net.Conn]struct{}
	nextWorker int64
	nextJob    int
	inflight   int // tasks granted to workers and not yet concluded
	draining   bool
	closed     bool
	closedCh   chan struct{}

	requeues   atomic.Int64
	cacheHits  atomic.Int64
	handshakes atomic.Int64
	refusals   atomic.Int64
	expiries   atomic.Int64
}

// taskRef addresses one task of one job.
type taskRef struct {
	j   *job
	idx int
}

// job is one submitted batch.
type job struct {
	id       string
	ref      string
	name     string
	env      exp.Env
	tasks    []exp.Task
	detach   bool
	state    string
	err      string
	done     int
	attempts []int
	emitted  []bool
	// outs holds every finished outcome by task index, kept for the job's
	// lifetime so a client that re-attaches (same submit ref) after a
	// redial or a dispatcher restart can be streamed the tasks it missed.
	outs []*exp.Outcome
	// notify is closed and replaced under the dispatcher lock on every
	// state change a streaming client could care about (task finished,
	// terminal transition); stream loops snapshot it, drain outs, and
	// wait on the snapshot.
	notify chan struct{}
}

// wake signals every streaming client of j; callers hold d.mu.
func (j *job) wake() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// workerLink is one live worker connection.
type workerLink struct {
	id   int64
	name string
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// results carries result frames from the read loop to the assignment
	// loop.
	results chan resultMsg
	// readDone closes when the read loop exits (connection lost).
	readDone chan struct{}
	// dead is set under the dispatcher lock when the connection is lost,
	// so a blocked task wait wakes and gives the slot up.
	dead bool
}

// NewDispatcher returns a dispatcher ready to Serve. When opts.Journal is
// set, the journal's loaded records are replayed first: jobs resume where
// the previous incarnation left them, with finished tasks restored and
// interrupted in-flight tasks re-queued (each consuming one retry attempt).
func NewDispatcher(opts DispatcherOptions) *Dispatcher {
	if opts.MaxTaskAttempts <= 0 {
		opts.MaxTaskAttempts = 3
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 15 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	d := &Dispatcher{
		opts:     opts,
		live:     newLiveness(opts.HeartbeatTimeout),
		jobs:     make(map[string]*job),
		refs:     make(map[string]string),
		workers:  make(map[int64]*workerLink),
		conns:    make(map[net.Conn]struct{}),
		closedCh: make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	if opts.Journal != nil {
		d.replayJournal()
	}
	return d
}

// replayJournal rebuilds the registry from the journal loaded at open and
// re-queues the unfinished tasks of running jobs.
func (d *Dispatcher) replayJournal() {
	jl := d.opts.Journal
	recs := jl.records()
	st := restoreRecords(recs, d.opts.MaxTaskAttempts)
	d.jobs = st.jobs
	d.jobOrder = st.jobOrder
	d.refs = st.refs
	d.nextJob = st.nextJob
	// Budget exhaustion discovered at replay is a real terminal
	// transition: journal it so the next incarnation agrees.
	for _, id := range st.failed {
		j := d.jobs[id]
		d.journalLocked(journalRecord{Fail: &journalMark{Job: id, Msg: j.err}})
		d.opts.Logf("fabric: job %s failed at replay: %s", id, j.err)
	}
	restored, requeued := 0, 0
	for _, id := range d.jobOrder {
		j := d.jobs[id]
		restored += j.done
		if j.state != JobRunning {
			continue
		}
		for i := range j.tasks {
			if !j.emitted[i] {
				d.queue = append(d.queue, taskRef{j: j, idx: i})
				requeued++
			}
		}
	}
	if msg := exp.CorruptWarning(jl.Path(), jl.Corrupt()); msg != "" {
		d.opts.Logf("%s", msg)
	}
	if len(recs) > 0 || jl.Corrupt() > 0 {
		d.opts.Logf("fabric: journal %s replayed: %d records (%d corrupt), %d jobs, %d finished tasks restored, %d tasks re-queued, clean shutdown %t",
			jl.Path(), len(recs), jl.Corrupt(), len(d.jobOrder), restored, requeued, jl.CleanShutdown())
	}
}

// journalLocked appends one record write-ahead; callers hold d.mu. Append
// failures are logged and tolerated: the journal is an optimization to
// replay after a crash, never a gate on live progress — losing a record
// only means the affected task re-runs (idempotently) after a restart.
func (d *Dispatcher) journalLocked(rec journalRecord) {
	if d.opts.Journal == nil {
		return
	}
	if err := d.opts.Journal.appendRecord(rec); err != nil {
		d.opts.Logf("fabric: journal: %v", err)
	}
}

func (d *Dispatcher) now() time.Time { return d.opts.Clock() }

// Serve accepts connections on ln until Close. It owns ln and closes it on
// return.
func (d *Dispatcher) Serve(ln net.Listener) error {
	defer ln.Close()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.ln = ln
	d.mu.Unlock()
	go d.reapLoop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-d.closedCh:
				return nil
			default:
			}
			return fmt.Errorf("fabric: accept: %w", err)
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return nil
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		go d.handleConn(conn)
	}
}

// Close stops the dispatcher: the listener and every live connection are
// closed and all handler goroutines unblock. Running jobs are left in
// their current state; with a journal, the next incarnation replays them.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.closedCh)
	ln := d.ln
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// Drain performs the graceful half of a shutdown: new grants (and new
// submissions) stop, in-flight tasks are given until timeout to conclude,
// and — when everything concluded in time — a clean-shutdown record is
// journaled so the next incarnation knows no grant was interrupted.
// Callers follow with Close; timeout <= 0 means 30s.
func (d *Dispatcher) Drain(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	d.mu.Lock()
	if d.closed || d.draining {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	d.cond.Broadcast() // idle workers give their slot up and disconnect
	n := d.inflight
	d.mu.Unlock()
	d.opts.Logf("fabric: draining: %d task(s) in flight", n)
	deadline := time.Now().Add(timeout)
	for {
		d.mu.Lock()
		n = d.inflight
		d.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			d.opts.Logf("fabric: drain timed out with %d task(s) still in flight", n)
			return fmt.Errorf("fabric: drain timed out with %d task(s) in flight", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.mu.Lock()
	d.journalLocked(journalRecord{Shutdown: true})
	d.mu.Unlock()
	d.opts.Logf("fabric: drained cleanly")
	return nil
}

// Requeues reports how many in-flight tasks were re-queued after a worker
// loss — the fabric's analogue of ProcBackend.Restarts.
func (d *Dispatcher) Requeues() int64 { return d.requeues.Load() }

// CacheHits reports how many tasks were answered from the outcome cache.
func (d *Dispatcher) CacheHits() int64 { return d.cacheHits.Load() }

// Handshakes reports how many worker hellos were accepted (a worker that
// reconnects counts once per connection).
func (d *Dispatcher) Handshakes() int64 { return d.handshakes.Load() }

// Refusals reports how many hellos were refused (version or probe drift).
func (d *Dispatcher) Refusals() int64 { return d.refusals.Load() }

// DeadlineExpiries reports how many assignments were abandoned because the
// per-task execution deadline (TaskDeadline) expired.
func (d *Dispatcher) DeadlineExpiries() int64 { return d.expiries.Load() }

// WorkerCount reports the number of currently connected workers.
func (d *Dispatcher) WorkerCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers)
}

// QueueDepth reports the number of queued, not-yet-assigned tasks.
func (d *Dispatcher) QueueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queue)
}

// Stats snapshots the dispatcher's operational counters — the payload of a
// psq stats request. Cache occupancy (and, for MemOutcomeCache, the LRU
// hit/eviction counters) is included when an outcome cache is configured.
func (d *Dispatcher) Stats() StatsReply {
	d.mu.Lock()
	st := StatsReply{
		Workers:    len(d.workers),
		QueueDepth: len(d.queue),
		Jobs:       len(d.jobs),
	}
	d.mu.Unlock()
	st.CacheHits = d.cacheHits.Load()
	st.Requeues = d.requeues.Load()
	st.Handshakes = d.handshakes.Load()
	st.Refusals = d.refusals.Load()
	st.DeadlineExpiries = d.expiries.Load()
	if c, ok := d.opts.Cache.(interface{ Len() int }); ok {
		st.CacheLen = c.Len()
	}
	if c, ok := d.opts.Cache.(interface{ Stats() lru.Stats }); ok {
		s := c.Stats()
		st.CacheStats = &s
	}
	return st
}

// Jobs reports every job in submission order.
func (d *Dispatcher) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.jobOrder))
	for _, id := range d.jobOrder {
		j := d.jobs[id]
		out = append(out, JobStatus{
			ID: j.id, Name: j.name, State: j.state,
			Done: j.done, Total: len(j.tasks), Err: j.err,
		})
	}
	return out
}

// reapLoop periodically reaps silent workers. The tick only drives
// *when* the check runs; the decision itself is reapSilent over d.now(),
// so tests drive it directly with a fake clock.
func (d *Dispatcher) reapLoop() {
	interval := d.opts.HeartbeatTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.closedCh:
			return
		case <-t.C:
			d.reapSilent(d.now())
		}
	}
}

// reapSilent closes the connection of every worker whose last frame is
// older than the heartbeat timeout. Closing the connection funnels the
// death through the same path as a network drop: the worker's read loop
// errors, the assignment loop re-queues the in-flight task, and the slot
// is released.
func (d *Dispatcher) reapSilent(now time.Time) int {
	n := 0
	for _, id := range d.live.expired(now) {
		d.mu.Lock()
		w := d.workers[id]
		d.mu.Unlock()
		d.live.drop(id)
		if w == nil {
			continue
		}
		d.opts.Logf("fabric: worker %s silent for > %v, declaring dead", w.name, d.opts.HeartbeatTimeout)
		w.conn.Close()
		n++
	}
	return n
}

// handleConn performs the handshake and dispatches by role.
func (d *Dispatcher) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	// The handshake deadline uses the real clock, not opts.Clock: socket
	// deadlines are interpreted against real time by the runtime, and Clock
	// only virtualizes liveness decisions.
	conn.SetDeadline(time.Now().Add(d.opts.HandshakeTimeout))
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var hello helloMsg
	if err := wire.ReadFrame(br, &hello); err != nil {
		return // slow-loris, port scan, or peer gave up: drop silently
	}
	refuse := func(format string, args ...any) {
		d.refusals.Add(1)
		msg := fmt.Sprintf(format, args...)
		d.opts.Logf("fabric: refusing %s hello from %s: %s", hello.Role, conn.RemoteAddr(), msg)
		wire.WriteFrame(bw, helloAck{Err: msg})
		bw.Flush()
	}
	if hello.V != protoVersion {
		refuse("protocol version mismatch: dispatcher speaks v%d, peer speaks v%d (rebuild the older binary)", protoVersion, hello.V)
		return
	}
	switch hello.Role {
	case roleWorker:
		if probe := EnvProbe(); hello.Probe != probe {
			refuse("env drift: worker %q derives %q for the probe cell, dispatcher derives %q — the worker binary would compute different seeds/keys, refusing to hand it tasks", hello.Name, hello.Probe, probe)
			return
		}
	case roleClient:
		// Version check above is all a client needs.
	default:
		refuse("unknown role %q", hello.Role)
		return
	}
	if err := wire.WriteFrame(bw, helloAck{OK: true}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	conn.SetDeadline(time.Time{}) // liveness takes over from here
	if hello.Role == roleWorker {
		d.handshakes.Add(1)
		d.handleWorker(conn, br, bw, hello)
		return
	}
	d.handleClient(conn, br, bw)
}

// handleWorker runs the assignment loop of one worker connection: pull a
// task, send it, wait for the result or the connection's death, repeat.
func (d *Dispatcher) handleWorker(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, hello helloMsg) {
	d.mu.Lock()
	d.nextWorker++
	w := &workerLink{
		id:   d.nextWorker,
		name: fmt.Sprintf("%s@%s", hello.Name, conn.RemoteAddr()),
		conn: conn, br: br, bw: bw,
		results:  make(chan resultMsg, 1),
		readDone: make(chan struct{}),
	}
	d.workers[w.id] = w
	d.mu.Unlock()
	d.live.seen(w.id, d.now())
	d.opts.Logf("fabric: worker %s connected", w.name)
	defer func() {
		d.mu.Lock()
		delete(d.workers, w.id)
		d.mu.Unlock()
		d.live.drop(w.id)
		conn.Close()
		d.opts.Logf("fabric: worker %s gone", w.name)
	}()
	go d.workerReadLoop(w)

	var seq int64
	for {
		ref, ok := d.nextTask(w)
		if !ok {
			return
		}
		seq++
		if err := d.sendAssign(w, assignMsg{Seq: seq, Env: ref.j.env, Task: ref.j.tasks[ref.idx]}); err != nil {
			d.grantConcluded()
			d.requeueOnLoss(ref, w, fmt.Errorf("send failed: %w", err))
			return
		}
		res, cause := d.awaitResult(w, seq)
		d.grantConcluded()
		if cause != nil {
			d.requeueOnLoss(ref, w, cause)
			return
		}
		if res.Err != "" {
			// Deterministic task failure: never retried, surfaces once as
			// the job's error — the same contract as every other backend.
			d.failJob(ref.j, res.Err)
			continue
		}
		d.finishTask(ref, res.Out, false)
	}
}

// grantConcluded releases one in-flight grant (result, loss, or deadline)
// and wakes Drain waiters.
func (d *Dispatcher) grantConcluded() {
	d.mu.Lock()
	d.inflight--
	d.cond.Broadcast()
	d.mu.Unlock()
}

// workerReadLoop drains frames from one worker: every frame refreshes
// liveness, results are forwarded to the assignment loop. On read error it
// marks the link dead and wakes any blocked task wait.
func (d *Dispatcher) workerReadLoop(w *workerLink) {
	for {
		var m workerMsg
		if err := wire.ReadFrame(w.br, &m); err != nil {
			d.mu.Lock()
			w.dead = true
			d.cond.Broadcast()
			d.mu.Unlock()
			close(w.readDone)
			w.conn.Close()
			return
		}
		d.live.seen(w.id, d.now())
		if m.Result != nil {
			select {
			case w.results <- *m.Result:
			default:
				// A result with no assignment outstanding: protocol abuse;
				// drop it.
			}
		}
	}
}

// sendAssign writes one assignment frame.
func (d *Dispatcher) sendAssign(w *workerLink, a assignMsg) error {
	if err := wire.WriteFrame(w.bw, a); err != nil {
		return err
	}
	return w.bw.Flush()
}

// awaitResult waits for the result of the outstanding assignment, the death
// of the connection, the per-task deadline, or dispatcher shutdown. A nil
// cause means res is the answer; a non-nil cause is the reason the
// assignment concluded without one (the task is then re-queued against its
// attempt budget). When the connection dies with a result already delivered
// (the worker answered and dropped in the same instant), the result wins —
// the task completed.
func (d *Dispatcher) awaitResult(w *workerLink, seq int64) (res resultMsg, cause error) {
	// The deadline uses the real clock for the same reason socket deadlines
	// do; opts.Clock only virtualizes liveness decisions.
	var expired <-chan time.Time
	if d.opts.TaskDeadline > 0 {
		t := time.NewTimer(d.opts.TaskDeadline)
		defer t.Stop()
		expired = t.C
	}
	for {
		select {
		case res := <-w.results:
			if res.Seq != seq {
				d.opts.Logf("fabric: worker %s answered seq %d for assignment %d (protocol desync), dropping worker", w.name, res.Seq, seq)
				w.conn.Close()
				return resultMsg{}, fmt.Errorf("protocol desync (answered seq %d for %d)", res.Seq, seq)
			}
			return res, nil
		case <-w.readDone:
			select {
			case res := <-w.results:
				if res.Seq == seq {
					return res, nil
				}
			default:
			}
			return resultMsg{}, fmt.Errorf("connection lost mid-task")
		case <-expired:
			d.expiries.Add(1)
			d.opts.Logf("fabric: worker %s exceeded the %v task deadline, dropping worker", w.name, d.opts.TaskDeadline)
			w.conn.Close()
			return resultMsg{}, fmt.Errorf("task deadline %v exceeded", d.opts.TaskDeadline)
		case <-d.closedCh:
			return resultMsg{}, fmt.Errorf("dispatcher shut down")
		}
	}
}

// nextTask blocks until a runnable task is available and claims it for w,
// journaling the grant write-ahead. Tasks of finished (failed, canceled)
// jobs are discarded on the way; cache hits are answered immediately
// without occupying the worker. ok is false when the dispatcher closed or
// is draining, or the worker died.
func (d *Dispatcher) nextTask(w *workerLink) (taskRef, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed || d.draining || w.dead {
			return taskRef{}, false
		}
		for len(d.queue) > 0 {
			ref := d.queue[0]
			d.queue = d.queue[1:]
			if ref.j.state != JobRunning {
				continue
			}
			if d.opts.Cache != nil {
				if key, ok := taskCacheKey(ref.j.tasks[ref.idx]); ok {
					if out, hit := d.opts.Cache.Get(key); hit {
						d.cacheHits.Add(1)
						d.finishTaskLocked(ref, out)
						continue
					}
				}
			}
			d.journalLocked(journalRecord{Grant: &journalGrant{Job: ref.j.id, Idx: ref.idx}})
			d.inflight++
			return ref, true
		}
		d.cond.Wait()
	}
}

// requeueOnLoss returns a lost worker's in-flight task to the queue —
// the network generalization of ProcBackend's in-slot retry — failing the
// job when the task has exhausted its attempt budget.
func (d *Dispatcher) requeueOnLoss(ref taskRef, w *workerLink, cause error) {
	d.requeues.Add(1)
	d.mu.Lock()
	defer d.mu.Unlock()
	j := ref.j
	if j.state != JobRunning || j.emitted[ref.idx] {
		return
	}
	j.attempts[ref.idx]++
	if j.attempts[ref.idx] >= d.opts.MaxTaskAttempts {
		d.failJobLocked(j, fmt.Sprintf("fabric: %s failed %d times across worker losses (last worker %s: %v)",
			j.tasks[ref.idx].Label(), j.attempts[ref.idx], w.name, cause))
		return
	}
	d.opts.Logf("fabric: re-queueing %s after loss of worker %s (attempt %d/%d)",
		j.tasks[ref.idx].Label(), w.name, j.attempts[ref.idx], d.opts.MaxTaskAttempts)
	d.queue = append(d.queue, ref)
	d.cond.Broadcast()
}

// finishTask records one finished task: caches the outcome, journals the
// completion, stores it for streaming clients, and closes the job when it
// was the last.
func (d *Dispatcher) finishTask(ref taskRef, out exp.Outcome, fromCache bool) {
	if !fromCache && d.opts.Cache != nil {
		if key, ok := taskCacheKey(ref.j.tasks[ref.idx]); ok {
			if err := d.opts.Cache.Put(key, out); err != nil {
				d.opts.Logf("fabric: caching %s: %v", ref.j.tasks[ref.idx].Label(), err)
			}
		}
	}
	d.mu.Lock()
	d.finishTaskLocked(ref, out)
	d.mu.Unlock()
}

func (d *Dispatcher) finishTaskLocked(ref taskRef, out exp.Outcome) {
	j := ref.j
	if j.state != JobRunning || j.emitted[ref.idx] {
		return // late result of a re-queued, canceled or failed task
	}
	d.journalLocked(journalRecord{Done: &journalDone{Job: j.id, Idx: ref.idx, Out: out}})
	j.emitted[ref.idx] = true
	j.done++
	j.outs[ref.idx] = &out
	if j.done == len(j.tasks) {
		j.state = JobDone
	}
	j.wake()
}

// failJob moves a job to the failed state (deterministic task error or
// exhausted retry budget); the attached client, if any, is woken with the
// error.
func (d *Dispatcher) failJob(j *job, msg string) {
	d.mu.Lock()
	d.failJobLocked(j, msg)
	d.mu.Unlock()
}

func (d *Dispatcher) failJobLocked(j *job, msg string) {
	if j.state != JobRunning {
		return
	}
	d.journalLocked(journalRecord{Fail: &journalMark{Job: j.id, Msg: msg}})
	j.state = JobFailed
	j.err = msg
	j.wake()
	d.opts.Logf("fabric: job %s failed: %s", j.id, msg)
}

// cancelJob moves a job to the canceled state; queued tasks are discarded
// lazily and in-flight results dropped.
func (d *Dispatcher) cancelJob(j *job, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.state != JobRunning {
		return
	}
	d.journalLocked(journalRecord{Cancel: &journalMark{Job: j.id, Msg: "canceled: " + reason}})
	j.state = JobCanceled
	j.err = "canceled: " + reason
	j.wake()
	d.opts.Logf("fabric: job %s canceled (%s)", j.id, reason)
}

// submitJob registers a batch as a new job and queues its tasks, journaling
// the full spec write-ahead. A submission whose Ref matches a live job is a
// re-attach, not a new job: the existing job is returned (reattached true)
// and nothing is queued — this is what makes client redial idempotent
// across connection losses and dispatcher restarts.
func (d *Dispatcher) submitJob(req *submitReq) (j *job, reattached bool, err error) {
	if len(req.Tasks) == 0 {
		return nil, false, fmt.Errorf("fabric: empty task batch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, fmt.Errorf("fabric: dispatcher is shut down")
	}
	if req.Ref != "" {
		if id, ok := d.refs[req.Ref]; ok {
			j := d.jobs[id]
			d.opts.Logf("fabric: job %s re-attached (ref %s)", j.id, req.Ref)
			return j, true, nil
		}
	}
	if d.draining {
		return nil, false, fmt.Errorf("fabric: dispatcher is draining")
	}
	d.nextJob++
	id := fmt.Sprintf("j%d", d.nextJob)
	d.journalLocked(journalRecord{Submit: &journalSubmit{
		ID: id, Ref: req.Ref, Name: req.Name, Env: req.Env, Tasks: req.Tasks, Detach: req.Detach,
	}})
	j = &job{
		id:       id,
		ref:      req.Ref,
		name:     req.Name,
		env:      req.Env,
		tasks:    req.Tasks,
		detach:   req.Detach,
		state:    JobRunning,
		attempts: make([]int, len(req.Tasks)),
		emitted:  make([]bool, len(req.Tasks)),
		outs:     make([]*exp.Outcome, len(req.Tasks)),
		notify:   make(chan struct{}),
	}
	d.jobs[j.id] = j
	d.jobOrder = append(d.jobOrder, j.id)
	if req.Ref != "" {
		d.refs[req.Ref] = j.id
	}
	for i := range j.tasks {
		d.queue = append(d.queue, taskRef{j: j, idx: i})
	}
	d.cond.Broadcast()
	d.opts.Logf("fabric: job %s (%s): %d tasks queued (detach=%t)", j.id, j.name, len(j.tasks), req.Detach)
	return j, false, nil
}

// handleClient serves one client request: submit (attached or detached),
// list, or cancel.
func (d *Dispatcher) handleClient(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	reply := func(resp clientResp) bool {
		if err := wire.WriteFrame(bw, resp); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	var req clientReq
	if err := wire.ReadFrame(br, &req); err != nil {
		return
	}
	switch {
	case req.List:
		reply(clientResp{Jobs: d.Jobs(), OK: true})
	case req.Stats:
		st := d.Stats()
		reply(clientResp{Stats: &st, OK: true})
	case req.Cancel != "":
		d.mu.Lock()
		j := d.jobs[req.Cancel]
		d.mu.Unlock()
		if j == nil {
			reply(clientResp{Err: fmt.Sprintf("fabric: unknown job %q", req.Cancel)})
			return
		}
		d.cancelJob(j, "psq cancel")
		reply(clientResp{OK: true})
	case req.Submit != nil:
		d.serveSubmit(conn, br, reply, req.Submit)
	default:
		reply(clientResp{Err: "fabric: empty client request"})
	}
}

// clientGone handles an attached client's disconnection. Without a journal
// an attached client owns its submission, so the job is canceled — the
// historical contract. With a journal the job survives: the client is
// expected to redial and re-attach by ref (and the work is durable anyway),
// so cancellation only ever happens explicitly.
func (d *Dispatcher) clientGone(j *job, how string) {
	if d.opts.Journal == nil {
		d.cancelJob(j, how)
		return
	}
	d.opts.Logf("fabric: %s from job %s; job continues (journaled, re-attach by ref)", how, j.id)
}

// serveSubmit registers (or, by ref, re-attaches to) the job and, for
// attached submissions, streams its results until the job finishes or the
// client goes away. Results are streamed from the job's outs snapshot, so
// a re-attaching client first catches up on everything it missed and then
// follows live completions.
func (d *Dispatcher) serveSubmit(conn net.Conn, br *bufio.Reader, reply func(clientResp) bool, req *submitReq) {
	j, _, err := d.submitJob(req)
	if err != nil {
		reply(clientResp{Err: err.Error()})
		return
	}
	if !reply(clientResp{Submitted: j.id}) {
		if !req.Detach {
			d.clientGone(j, "client disconnected")
		}
		return
	}
	if req.Detach {
		return
	}
	// Watch for the client hanging up: it sends nothing after the submit,
	// so any read completion means the connection is gone.
	connGone := make(chan struct{})
	go func() {
		var discard clientReq
		for {
			if err := wire.ReadFrame(br, &discard); err != nil {
				close(connGone)
				return
			}
		}
	}()
	sent := make([]bool, len(j.tasks))
	for {
		d.mu.Lock()
		var batch []streamMsg
		for i, out := range j.outs {
			if out != nil && !sent[i] {
				batch = append(batch, streamMsg{Index: i, Out: *out})
				sent[i] = true
			}
		}
		state, errMsg := j.state, j.err
		notify := j.notify
		d.mu.Unlock()
		for i := range batch {
			if !reply(clientResp{Result: &batch[i]}) {
				d.clientGone(j, "client disconnected mid-stream")
				return
			}
		}
		if state != JobRunning {
			reply(clientResp{Done: &doneMsg{Err: errMsg}})
			return
		}
		select {
		case <-notify:
		case <-connGone:
			d.clientGone(j, "client disconnected")
			return
		case <-d.closedCh:
			return
		}
	}
}
