package fabric

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/lru"
	"repro/internal/wire"
)

// DispatcherOptions configure a Dispatcher. The zero value is usable.
type DispatcherOptions struct {
	// MaxTaskAttempts bounds how many times one task is attempted across
	// worker losses before its job fails; <= 0 means 3. A task *error*
	// (bad cell, panic) is never retried — errors are deterministic and
	// surface immediately; only worker loss triggers a retry. This mirrors
	// exp.ProcBackend.MaxTaskAttempts across the network.
	MaxTaskAttempts int
	// HeartbeatTimeout is the silence after which a connected worker is
	// declared dead, its connection closed, and its in-flight task
	// re-queued; <= 0 means 15s. Workers heartbeat while executing, so a
	// slow-but-alive worker is never reaped.
	HeartbeatTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange on a fresh connection,
	// so a slow-loris peer (or a port scanner) cannot hold a connection
	// open indefinitely without completing a handshake; <= 0 means 5s.
	HandshakeTimeout time.Duration
	// Cache, when non-nil, memoizes task outcomes across jobs and clients.
	Cache OutcomeCache
	// Logf receives operational events (worker joins, losses, re-queues);
	// nil discards them.
	Logf func(format string, args ...any)
	// Clock overrides the time source for liveness decisions (tests); nil
	// means time.Now.
	Clock func() time.Time
}

// Dispatcher owns the fabric's task queue, job registry and result cache,
// and serves worker and client connections over TCP. See the package
// comment for the protocol; construct with NewDispatcher, run with Serve,
// stop with Close.
type Dispatcher struct {
	opts DispatcherOptions
	live *liveness

	mu         sync.Mutex
	cond       *sync.Cond
	ln         net.Listener
	queue      []taskRef
	jobs       map[string]*job
	jobOrder   []string
	workers    map[int64]*workerLink
	conns      map[net.Conn]struct{}
	nextWorker int64
	nextJob    int
	closed     bool
	closedCh   chan struct{}

	requeues   atomic.Int64
	cacheHits  atomic.Int64
	handshakes atomic.Int64
	refusals   atomic.Int64
}

// taskRef addresses one task of one job.
type taskRef struct {
	j   *job
	idx int
}

// job is one submitted batch.
type job struct {
	id       string
	name     string
	env      exp.Env
	tasks    []exp.Task
	state    string
	err      string
	done     int
	attempts []int
	emitted  []bool
	// stream carries finished tasks to the attached client; nil for
	// detached jobs. Capacity is len(tasks), so pushing under the
	// dispatcher lock never blocks.
	stream chan streamMsg
	// doneCh closes exactly once, when the job reaches a terminal state.
	doneCh chan struct{}
}

// workerLink is one live worker connection.
type workerLink struct {
	id   int64
	name string
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// results carries result frames from the read loop to the assignment
	// loop.
	results chan resultMsg
	// readDone closes when the read loop exits (connection lost).
	readDone chan struct{}
	// dead is set under the dispatcher lock when the connection is lost,
	// so a blocked task wait wakes and gives the slot up.
	dead bool
}

// NewDispatcher returns a dispatcher ready to Serve.
func NewDispatcher(opts DispatcherOptions) *Dispatcher {
	if opts.MaxTaskAttempts <= 0 {
		opts.MaxTaskAttempts = 3
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 15 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	d := &Dispatcher{
		opts:     opts,
		live:     newLiveness(opts.HeartbeatTimeout),
		jobs:     make(map[string]*job),
		workers:  make(map[int64]*workerLink),
		conns:    make(map[net.Conn]struct{}),
		closedCh: make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *Dispatcher) now() time.Time { return d.opts.Clock() }

// Serve accepts connections on ln until Close. It owns ln and closes it on
// return.
func (d *Dispatcher) Serve(ln net.Listener) error {
	defer ln.Close()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.ln = ln
	d.mu.Unlock()
	go d.reapLoop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-d.closedCh:
				return nil
			default:
			}
			return fmt.Errorf("fabric: accept: %w", err)
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return nil
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		go d.handleConn(conn)
	}
}

// Close stops the dispatcher: the listener and every live connection are
// closed and all handler goroutines unblock. Running jobs are left in
// their current state; a dispatcher is not meant to survive its process.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.closedCh)
	ln := d.ln
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// Requeues reports how many in-flight tasks were re-queued after a worker
// loss — the fabric's analogue of ProcBackend.Restarts.
func (d *Dispatcher) Requeues() int64 { return d.requeues.Load() }

// CacheHits reports how many tasks were answered from the outcome cache.
func (d *Dispatcher) CacheHits() int64 { return d.cacheHits.Load() }

// Handshakes reports how many worker hellos were accepted (a worker that
// reconnects counts once per connection).
func (d *Dispatcher) Handshakes() int64 { return d.handshakes.Load() }

// Refusals reports how many hellos were refused (version or probe drift).
func (d *Dispatcher) Refusals() int64 { return d.refusals.Load() }

// WorkerCount reports the number of currently connected workers.
func (d *Dispatcher) WorkerCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers)
}

// QueueDepth reports the number of queued, not-yet-assigned tasks.
func (d *Dispatcher) QueueDepth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queue)
}

// Stats snapshots the dispatcher's operational counters — the payload of a
// psq stats request. Cache occupancy (and, for MemOutcomeCache, the LRU
// hit/eviction counters) is included when an outcome cache is configured.
func (d *Dispatcher) Stats() StatsReply {
	d.mu.Lock()
	st := StatsReply{
		Workers:    len(d.workers),
		QueueDepth: len(d.queue),
		Jobs:       len(d.jobs),
	}
	d.mu.Unlock()
	st.CacheHits = d.cacheHits.Load()
	st.Requeues = d.requeues.Load()
	st.Handshakes = d.handshakes.Load()
	st.Refusals = d.refusals.Load()
	if c, ok := d.opts.Cache.(interface{ Len() int }); ok {
		st.CacheLen = c.Len()
	}
	if c, ok := d.opts.Cache.(interface{ Stats() lru.Stats }); ok {
		s := c.Stats()
		st.CacheStats = &s
	}
	return st
}

// Jobs reports every job in submission order.
func (d *Dispatcher) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.jobOrder))
	for _, id := range d.jobOrder {
		j := d.jobs[id]
		out = append(out, JobStatus{
			ID: j.id, Name: j.name, State: j.state,
			Done: j.done, Total: len(j.tasks), Err: j.err,
		})
	}
	return out
}

// reapLoop periodically reaps silent workers. The tick only drives
// *when* the check runs; the decision itself is reapSilent over d.now(),
// so tests drive it directly with a fake clock.
func (d *Dispatcher) reapLoop() {
	interval := d.opts.HeartbeatTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.closedCh:
			return
		case <-t.C:
			d.reapSilent(d.now())
		}
	}
}

// reapSilent closes the connection of every worker whose last frame is
// older than the heartbeat timeout. Closing the connection funnels the
// death through the same path as a network drop: the worker's read loop
// errors, the assignment loop re-queues the in-flight task, and the slot
// is released.
func (d *Dispatcher) reapSilent(now time.Time) int {
	n := 0
	for _, id := range d.live.expired(now) {
		d.mu.Lock()
		w := d.workers[id]
		d.mu.Unlock()
		d.live.drop(id)
		if w == nil {
			continue
		}
		d.opts.Logf("fabric: worker %s silent for > %v, declaring dead", w.name, d.opts.HeartbeatTimeout)
		w.conn.Close()
		n++
	}
	return n
}

// handleConn performs the handshake and dispatches by role.
func (d *Dispatcher) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	// The handshake deadline uses the real clock, not opts.Clock: socket
	// deadlines are interpreted against real time by the runtime, and Clock
	// only virtualizes liveness decisions.
	conn.SetDeadline(time.Now().Add(d.opts.HandshakeTimeout))
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var hello helloMsg
	if err := wire.ReadFrame(br, &hello); err != nil {
		return // slow-loris, port scan, or peer gave up: drop silently
	}
	refuse := func(format string, args ...any) {
		d.refusals.Add(1)
		msg := fmt.Sprintf(format, args...)
		d.opts.Logf("fabric: refusing %s hello from %s: %s", hello.Role, conn.RemoteAddr(), msg)
		wire.WriteFrame(bw, helloAck{Err: msg})
		bw.Flush()
	}
	if hello.V != protoVersion {
		refuse("protocol version mismatch: dispatcher speaks v%d, peer speaks v%d (rebuild the older binary)", protoVersion, hello.V)
		return
	}
	switch hello.Role {
	case roleWorker:
		if probe := EnvProbe(); hello.Probe != probe {
			refuse("env drift: worker %q derives %q for the probe cell, dispatcher derives %q — the worker binary would compute different seeds/keys, refusing to hand it tasks", hello.Name, hello.Probe, probe)
			return
		}
	case roleClient:
		// Version check above is all a client needs.
	default:
		refuse("unknown role %q", hello.Role)
		return
	}
	if err := wire.WriteFrame(bw, helloAck{OK: true}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	conn.SetDeadline(time.Time{}) // liveness takes over from here
	if hello.Role == roleWorker {
		d.handshakes.Add(1)
		d.handleWorker(conn, br, bw, hello)
		return
	}
	d.handleClient(conn, br, bw)
}

// handleWorker runs the assignment loop of one worker connection: pull a
// task, send it, wait for the result or the connection's death, repeat.
func (d *Dispatcher) handleWorker(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, hello helloMsg) {
	d.mu.Lock()
	d.nextWorker++
	w := &workerLink{
		id:   d.nextWorker,
		name: fmt.Sprintf("%s@%s", hello.Name, conn.RemoteAddr()),
		conn: conn, br: br, bw: bw,
		results:  make(chan resultMsg, 1),
		readDone: make(chan struct{}),
	}
	d.workers[w.id] = w
	d.mu.Unlock()
	d.live.seen(w.id, d.now())
	d.opts.Logf("fabric: worker %s connected", w.name)
	defer func() {
		d.mu.Lock()
		delete(d.workers, w.id)
		d.mu.Unlock()
		d.live.drop(w.id)
		conn.Close()
		d.opts.Logf("fabric: worker %s gone", w.name)
	}()
	go d.workerReadLoop(w)

	var seq int64
	for {
		ref, ok := d.nextTask(w)
		if !ok {
			return
		}
		seq++
		if err := d.sendAssign(w, assignMsg{Seq: seq, Env: ref.j.env, Task: ref.j.tasks[ref.idx]}); err != nil {
			d.requeueOnLoss(ref, w, fmt.Errorf("send failed: %w", err))
			return
		}
		res, ok := d.awaitResult(w, seq)
		if !ok {
			d.requeueOnLoss(ref, w, fmt.Errorf("connection lost mid-task"))
			return
		}
		if res.Err != "" {
			// Deterministic task failure: never retried, surfaces once as
			// the job's error — the same contract as every other backend.
			d.failJob(ref.j, res.Err)
			continue
		}
		d.finishTask(ref, res.Out, false)
	}
}

// workerReadLoop drains frames from one worker: every frame refreshes
// liveness, results are forwarded to the assignment loop. On read error it
// marks the link dead and wakes any blocked task wait.
func (d *Dispatcher) workerReadLoop(w *workerLink) {
	for {
		var m workerMsg
		if err := wire.ReadFrame(w.br, &m); err != nil {
			d.mu.Lock()
			w.dead = true
			d.cond.Broadcast()
			d.mu.Unlock()
			close(w.readDone)
			w.conn.Close()
			return
		}
		d.live.seen(w.id, d.now())
		if m.Result != nil {
			select {
			case w.results <- *m.Result:
			default:
				// A result with no assignment outstanding: protocol abuse;
				// drop it.
			}
		}
	}
}

// sendAssign writes one assignment frame.
func (d *Dispatcher) sendAssign(w *workerLink, a assignMsg) error {
	if err := wire.WriteFrame(w.bw, a); err != nil {
		return err
	}
	return w.bw.Flush()
}

// awaitResult waits for the result of the outstanding assignment, the death
// of the connection, or dispatcher shutdown. When the connection dies with
// a result already delivered (the worker answered and dropped in the same
// instant), the result wins — the task completed.
func (d *Dispatcher) awaitResult(w *workerLink, seq int64) (resultMsg, bool) {
	for {
		select {
		case res := <-w.results:
			if res.Seq != seq {
				d.opts.Logf("fabric: worker %s answered seq %d for assignment %d (protocol desync), dropping worker", w.name, res.Seq, seq)
				w.conn.Close()
				return resultMsg{}, false
			}
			return res, true
		case <-w.readDone:
			select {
			case res := <-w.results:
				if res.Seq == seq {
					return res, true
				}
			default:
			}
			return resultMsg{}, false
		case <-d.closedCh:
			return resultMsg{}, false
		}
	}
}

// nextTask blocks until a runnable task is available and claims it for w.
// Tasks of finished (failed, canceled) jobs are discarded on the way;
// cache hits are answered immediately without occupying the worker. ok is
// false when the dispatcher closed or the worker died.
func (d *Dispatcher) nextTask(w *workerLink) (taskRef, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed || w.dead {
			return taskRef{}, false
		}
		for len(d.queue) > 0 {
			ref := d.queue[0]
			d.queue = d.queue[1:]
			if ref.j.state != JobRunning {
				continue
			}
			if d.opts.Cache != nil {
				if key, ok := taskCacheKey(ref.j.tasks[ref.idx]); ok {
					if out, hit := d.opts.Cache.Get(key); hit {
						d.cacheHits.Add(1)
						d.finishTaskLocked(ref, out)
						continue
					}
				}
			}
			return ref, true
		}
		d.cond.Wait()
	}
}

// requeueOnLoss returns a lost worker's in-flight task to the queue —
// the network generalization of ProcBackend's in-slot retry — failing the
// job when the task has exhausted its attempt budget.
func (d *Dispatcher) requeueOnLoss(ref taskRef, w *workerLink, cause error) {
	d.requeues.Add(1)
	d.mu.Lock()
	defer d.mu.Unlock()
	j := ref.j
	if j.state != JobRunning || j.emitted[ref.idx] {
		return
	}
	j.attempts[ref.idx]++
	if j.attempts[ref.idx] >= d.opts.MaxTaskAttempts {
		d.failJobLocked(j, fmt.Sprintf("fabric: %s failed %d times across worker losses (last worker %s: %v)",
			j.tasks[ref.idx].Label(), j.attempts[ref.idx], w.name, cause))
		return
	}
	d.opts.Logf("fabric: re-queueing %s after loss of worker %s (attempt %d/%d)",
		j.tasks[ref.idx].Label(), w.name, j.attempts[ref.idx], d.opts.MaxTaskAttempts)
	d.queue = append(d.queue, ref)
	d.cond.Broadcast()
}

// finishTask records one finished task: caches the outcome, streams it to
// an attached client, and closes the job when it was the last.
func (d *Dispatcher) finishTask(ref taskRef, out exp.Outcome, fromCache bool) {
	if !fromCache && d.opts.Cache != nil {
		if key, ok := taskCacheKey(ref.j.tasks[ref.idx]); ok {
			if err := d.opts.Cache.Put(key, out); err != nil {
				d.opts.Logf("fabric: caching %s: %v", ref.j.tasks[ref.idx].Label(), err)
			}
		}
	}
	d.mu.Lock()
	d.finishTaskLocked(ref, out)
	d.mu.Unlock()
}

func (d *Dispatcher) finishTaskLocked(ref taskRef, out exp.Outcome) {
	j := ref.j
	if j.state != JobRunning || j.emitted[ref.idx] {
		return // late result of a re-queued, canceled or failed task
	}
	j.emitted[ref.idx] = true
	j.done++
	if j.stream != nil {
		j.stream <- streamMsg{Index: ref.idx, Out: out}
	}
	if j.done == len(j.tasks) {
		j.state = JobDone
		close(j.doneCh)
	}
}

// failJob moves a job to the failed state (deterministic task error or
// exhausted retry budget); the attached client, if any, is woken with the
// error.
func (d *Dispatcher) failJob(j *job, msg string) {
	d.mu.Lock()
	d.failJobLocked(j, msg)
	d.mu.Unlock()
}

func (d *Dispatcher) failJobLocked(j *job, msg string) {
	if j.state != JobRunning {
		return
	}
	j.state = JobFailed
	j.err = msg
	close(j.doneCh)
	d.opts.Logf("fabric: job %s failed: %s", j.id, msg)
}

// cancelJob moves a job to the canceled state; queued tasks are discarded
// lazily and in-flight results dropped.
func (d *Dispatcher) cancelJob(j *job, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.state != JobRunning {
		return
	}
	j.state = JobCanceled
	j.err = "canceled: " + reason
	close(j.doneCh)
	d.opts.Logf("fabric: job %s canceled (%s)", j.id, reason)
}

// submitJob registers a batch as a new job and queues its tasks.
func (d *Dispatcher) submitJob(req *submitReq) (*job, error) {
	if len(req.Tasks) == 0 {
		return nil, fmt.Errorf("fabric: empty task batch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("fabric: dispatcher is shut down")
	}
	d.nextJob++
	j := &job{
		id:       fmt.Sprintf("j%d", d.nextJob),
		name:     req.Name,
		env:      req.Env,
		tasks:    req.Tasks,
		state:    JobRunning,
		attempts: make([]int, len(req.Tasks)),
		emitted:  make([]bool, len(req.Tasks)),
		doneCh:   make(chan struct{}),
	}
	if !req.Detach {
		j.stream = make(chan streamMsg, len(req.Tasks))
	}
	d.jobs[j.id] = j
	d.jobOrder = append(d.jobOrder, j.id)
	for i := range j.tasks {
		d.queue = append(d.queue, taskRef{j: j, idx: i})
	}
	d.cond.Broadcast()
	d.opts.Logf("fabric: job %s (%s): %d tasks queued (detach=%t)", j.id, j.name, len(j.tasks), req.Detach)
	return j, nil
}

// handleClient serves one client request: submit (attached or detached),
// list, or cancel.
func (d *Dispatcher) handleClient(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	reply := func(resp clientResp) bool {
		if err := wire.WriteFrame(bw, resp); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	var req clientReq
	if err := wire.ReadFrame(br, &req); err != nil {
		return
	}
	switch {
	case req.List:
		reply(clientResp{Jobs: d.Jobs(), OK: true})
	case req.Stats:
		st := d.Stats()
		reply(clientResp{Stats: &st, OK: true})
	case req.Cancel != "":
		d.mu.Lock()
		j := d.jobs[req.Cancel]
		d.mu.Unlock()
		if j == nil {
			reply(clientResp{Err: fmt.Sprintf("fabric: unknown job %q", req.Cancel)})
			return
		}
		d.cancelJob(j, "psq cancel")
		reply(clientResp{OK: true})
	case req.Submit != nil:
		d.serveSubmit(conn, br, reply, req.Submit)
	default:
		reply(clientResp{Err: "fabric: empty client request"})
	}
}

// serveSubmit registers the job and, for attached submissions, streams its
// results until the job finishes or the client goes away (which cancels
// the job — an attached client owns its submission).
func (d *Dispatcher) serveSubmit(conn net.Conn, br *bufio.Reader, reply func(clientResp) bool, req *submitReq) {
	j, err := d.submitJob(req)
	if err != nil {
		reply(clientResp{Err: err.Error()})
		return
	}
	if !reply(clientResp{Submitted: j.id}) {
		if !req.Detach {
			d.cancelJob(j, "client disconnected")
		}
		return
	}
	if req.Detach {
		return
	}
	// Watch for the client hanging up: it sends nothing after the submit,
	// so any read completion means the connection is gone.
	connGone := make(chan struct{})
	go func() {
		var discard clientReq
		for {
			if err := wire.ReadFrame(br, &discard); err != nil {
				close(connGone)
				return
			}
		}
	}()
	for {
		select {
		case m := <-j.stream:
			if !reply(clientResp{Result: &m}) {
				d.cancelJob(j, "client disconnected mid-stream")
				return
			}
		case <-j.doneCh:
			// Drain results that were queued before the terminal state.
			for {
				select {
				case m := <-j.stream:
					if !reply(clientResp{Result: &m}) {
						return
					}
					continue
				default:
				}
				break
			}
			d.mu.Lock()
			errMsg := j.err
			d.mu.Unlock()
			reply(clientResp{Done: &doneMsg{Err: errMsg}})
			return
		case <-connGone:
			d.cancelJob(j, "client disconnected")
			return
		case <-d.closedCh:
			return
		}
	}
}
