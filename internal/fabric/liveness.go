package fabric

import (
	"sync"
	"time"
)

// liveness tracks the last frame seen from each worker connection and
// decides which workers are dead. It is pure bookkeeping over injected
// timestamps — the dispatcher feeds it d.now() — so the heartbeat/timeout
// semantics are unit-testable with a fake clock, independent of real
// timers: a silent worker expires exactly when now-lastSeen exceeds the
// timeout, and a slow-but-heartbeating worker never does.
type liveness struct {
	timeout time.Duration

	mu   sync.Mutex
	last map[int64]time.Time
}

func newLiveness(timeout time.Duration) *liveness {
	return &liveness{timeout: timeout, last: make(map[int64]time.Time)}
}

// seen records a frame from worker id at time now. Any frame counts —
// heartbeat or result — because either proves the process is alive.
func (l *liveness) seen(id int64, now time.Time) {
	l.mu.Lock()
	l.last[id] = now
	l.mu.Unlock()
}

// drop forgets a worker (it disconnected or was reaped).
func (l *liveness) drop(id int64) {
	l.mu.Lock()
	delete(l.last, id)
	l.mu.Unlock()
}

// expired returns the workers whose last frame is older than the timeout at
// time now. The caller is expected to reap them (close their connections),
// which re-queues whatever they had in flight.
func (l *liveness) expired(now time.Time) []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int64
	for id, t := range l.last {
		if now.Sub(t) > l.timeout {
			out = append(out, id)
		}
	}
	return out
}

// tracked reports how many workers are currently tracked.
func (l *liveness) tracked() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.last)
}
