package fabric

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/exp"
	"repro/internal/wire"
)

// Backend submits task batches to a running fabric dispatcher — the
// exp.Backend implementation behind `-backend fabric`. The submission is
// attached: results stream back on the same connection and the job is
// canceled if this process goes away. Because the dispatcher's workers all
// execute the shared exp task executor and outcomes are addressed by index,
// a fabric run is byte-identical to PoolBackend for any worker fleet and
// any completion order.
type Backend struct {
	// Addr is the dispatcher's host:port.
	Addr string
	// Name labels the job in `psq list`; empty means "submit".
	Name string
	// DialTimeout bounds the dial; <= 0 means 10s.
	DialTimeout time.Duration
}

// Submit implements exp.Backend.
func (b *Backend) Submit(ctx context.Context, env exp.Env, tasks []exp.Task, emit func(exp.TaskResult) error) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	name := b.Name
	if name == "" {
		name = "submit"
	}
	sess, err := dialFabric(ctx, b.Addr, b.DialTimeout)
	if err != nil {
		return err
	}
	defer sess.close()
	if err := sess.send(clientReq{Submit: &submitReq{Name: name, Env: env, Tasks: tasks}}); err != nil {
		return fmt.Errorf("fabric: submitting job: %w", err)
	}
	seen := make([]bool, len(tasks))
	emitted := 0
	for {
		var resp clientResp
		if err := sess.read(&resp); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fabric: dispatcher connection lost with %d/%d results delivered: %w", emitted, len(tasks), err)
		}
		switch {
		case resp.Err != "":
			return errors.New(resp.Err)
		case resp.Result != nil:
			i := resp.Result.Index
			if i < 0 || i >= len(tasks) {
				return fmt.Errorf("fabric: dispatcher streamed result for task %d of %d", i, len(tasks))
			}
			if seen[i] {
				return fmt.Errorf("fabric: dispatcher streamed task %d twice", i)
			}
			seen[i] = true
			emitted++
			if err := emit(exp.TaskResult{Index: i, Outcome: resp.Result.Out}); err != nil {
				return err
			}
		case resp.Done != nil:
			if resp.Done.Err != "" {
				return errors.New(resp.Done.Err)
			}
			if emitted != len(tasks) {
				return fmt.Errorf("fabric: job done with only %d/%d results streamed", emitted, len(tasks))
			}
			return ctx.Err()
		case resp.Submitted != "":
			// Informational; results follow.
		}
	}
}

// Client issues psq-style control operations against a running dispatcher.
type Client struct {
	// Addr is the dispatcher's host:port.
	Addr string
	// DialTimeout bounds the dial; <= 0 means 10s.
	DialTimeout time.Duration
}

// SubmitDetached registers a job that runs with no client attached: the
// dispatcher executes it to completion (filling its outcome cache), and
// `psq list` tracks its progress. Returns the job ID.
func (c *Client) SubmitDetached(ctx context.Context, name string, env exp.Env, tasks []exp.Task) (string, error) {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return "", err
	}
	defer sess.close()
	if err := sess.send(clientReq{Submit: &submitReq{Name: name, Env: env, Tasks: tasks, Detach: true}}); err != nil {
		return "", fmt.Errorf("fabric: submitting detached job: %w", err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return "", fmt.Errorf("fabric: reading submit ack: %w", err)
	}
	if resp.Err != "" {
		return "", errors.New(resp.Err)
	}
	if resp.Submitted == "" {
		return "", fmt.Errorf("fabric: dispatcher acknowledged without a job id")
	}
	return resp.Submitted, nil
}

// List returns every job on the dispatcher in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer sess.close()
	if err := sess.send(clientReq{List: true}); err != nil {
		return nil, fmt.Errorf("fabric: listing jobs: %w", err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return nil, fmt.Errorf("fabric: reading job list: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Jobs, nil
}

// Stats fetches the dispatcher's operational counters (worker count, queue
// depth, cache hits, ...) — the transport behind `psq stats`.
func (c *Client) Stats(ctx context.Context) (StatsReply, error) {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return StatsReply{}, err
	}
	defer sess.close()
	if err := sess.send(clientReq{Stats: true}); err != nil {
		return StatsReply{}, fmt.Errorf("fabric: requesting stats: %w", err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return StatsReply{}, fmt.Errorf("fabric: reading stats: %w", err)
	}
	if resp.Err != "" {
		return StatsReply{}, errors.New(resp.Err)
	}
	if resp.Stats == nil {
		return StatsReply{}, fmt.Errorf("fabric: dispatcher answered without stats (older dispatcher binary?)")
	}
	return *resp.Stats, nil
}

// Cancel cancels a running job by ID.
func (c *Client) Cancel(ctx context.Context, id string) error {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return err
	}
	defer sess.close()
	if err := sess.send(clientReq{Cancel: id}); err != nil {
		return fmt.Errorf("fabric: canceling job %s: %w", id, err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return fmt.Errorf("fabric: reading cancel ack: %w", err)
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// clientSession is one handshaken client connection.
type clientSession struct {
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	watchDone chan struct{}
}

// dialFabric dials the dispatcher, completes the client handshake, and
// arranges for ctx cancellation to kill the connection (unblocking reads).
func dialFabric(ctx context.Context, addr string, timeout time.Duration) (*clientSession, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: dialing dispatcher %s: %w", addr, err)
	}
	s := &clientSession{
		conn:      conn,
		br:        bufio.NewReader(conn),
		bw:        bufio.NewWriter(conn),
		watchDone: make(chan struct{}),
	}
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-s.watchDone:
		}
	}()
	if err := s.send(helloMsg{V: protoVersion, Role: roleClient}); err != nil {
		s.close()
		return nil, fmt.Errorf("fabric: sending hello to %s: %w", addr, err)
	}
	var ack helloAck
	if err := s.read(&ack); err != nil {
		s.close()
		return nil, fmt.Errorf("fabric: reading hello ack from %s — is a fabric dispatcher (cmd/fabricd -role dispatcher) listening there?: %w", addr, err)
	}
	if !ack.OK {
		s.close()
		return nil, fmt.Errorf("%w: %s", errHandshakeRefused, ack.Err)
	}
	return s, nil
}

func (s *clientSession) send(v any) error {
	if err := wire.WriteFrame(s.bw, v); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *clientSession) read(v any) error { return wire.ReadFrame(s.br, v) }

func (s *clientSession) close() {
	close(s.watchDone)
	s.conn.Close()
}
