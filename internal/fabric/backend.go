package fabric

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/exp"
	"repro/internal/wire"
)

// Backend submits task batches to a running fabric dispatcher — the
// exp.Backend implementation behind `-backend fabric`. The submission is
// attached: results stream back on the same connection. When the
// connection drops (network blip, dispatcher restart), the backend redials
// with the workers' exponential backoff and resubmits under the same
// idempotency ref — the dispatcher re-attaches it to the existing job (or,
// after a journaled restart, to the replayed one) and streams the results
// it missed, so a dispatcher restart is a stall, not a failure. Because the
// dispatcher's workers all execute the shared exp task executor and
// outcomes are addressed by index, a fabric run is byte-identical to
// PoolBackend for any worker fleet, any completion order, and any number
// of redials.
type Backend struct {
	// Addr is the dispatcher's host:port.
	Addr string
	// Name labels the job in `psq list`; empty means "submit".
	Name string
	// DialTimeout bounds the dial; <= 0 means 10s.
	DialTimeout time.Duration
	// ReconnectBackoff is the initial redial delay after a lost dispatcher
	// connection; it doubles per consecutive failure up to
	// MaxReconnectBackoff. <= 0 means 250ms.
	ReconnectBackoff time.Duration
	// MaxReconnectBackoff caps the redial delay; <= 0 means 15s.
	MaxReconnectBackoff time.Duration
	// RedialBudget bounds how long the dispatcher may stay continuously
	// unreachable before Submit gives up with an error wrapping
	// exp.ErrBackendUnavailable; a completed handshake resets it. <= 0
	// means 30s. Serving layers set it low to detect outages quickly.
	RedialBudget time.Duration
}

// newSubmitRef returns a fresh idempotency ref for one logical submission.
func newSubmitRef() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a ref that
		// at least never collides within a process lifetime.
		return fmt.Sprintf("r-fallback-%p", &buf)
	}
	return "r" + hex.EncodeToString(buf[:])
}

// Submit implements exp.Backend.
func (b *Backend) Submit(ctx context.Context, env exp.Env, tasks []exp.Task, emit func(exp.TaskResult) error) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	name := b.Name
	if name == "" {
		name = "submit"
	}
	backoff := b.ReconnectBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	maxBackoff := b.MaxReconnectBackoff
	if maxBackoff <= 0 {
		maxBackoff = 15 * time.Second
	}
	budget := b.RedialBudget
	if budget <= 0 {
		budget = 30 * time.Second
	}

	st := &submitState{
		ref:  newSubmitRef(),
		seen: make([]bool, len(tasks)),
	}
	delay := backoff
	var downSince time.Time
	for {
		if ctx.Err() != nil {
			return b.abandon(st.jobID, ctx.Err())
		}
		sess, err := dialFabric(ctx, b.Addr, b.DialTimeout)
		if err == nil {
			downSince = time.Time{}
			delay = backoff
			retry, serr := b.runSession(ctx, sess, st, name, env, tasks, emit)
			sess.close()
			if !retry {
				return serr
			}
			// Connection lost mid-stream: redial and re-attach by ref.
		} else {
			if errors.Is(err, errHandshakeRefused) {
				return err // permanent: version drift, never retried
			}
			if ctx.Err() != nil {
				return b.abandon(st.jobID, ctx.Err())
			}
		}
		if downSince.IsZero() {
			downSince = time.Now()
		}
		if down := time.Since(downSince); down > budget {
			return fmt.Errorf("fabric: dispatcher %s unreachable for %v with %d/%d results delivered: %w",
				b.Addr, down.Round(time.Millisecond), st.emitted, len(tasks), exp.ErrBackendUnavailable)
		}
		select {
		case <-ctx.Done():
			return b.abandon(st.jobID, ctx.Err())
		case <-time.After(delay):
		}
		if delay *= 2; delay > maxBackoff {
			delay = maxBackoff
		}
	}
}

// submitState carries one logical submission across redials: the
// idempotency ref, which task indices already reached emit (a re-attach
// streams them again; duplicates are skipped, not errors), and the job ID
// once known.
type submitState struct {
	ref     string
	seen    []bool
	emitted int
	jobID   string
}

// runSession submits (or, by ref, re-attaches) on one connection and
// streams results until the job ends or the connection drops. retry
// reports whether the submission should continue on a fresh connection;
// when retry is false, err is Submit's final answer.
func (b *Backend) runSession(ctx context.Context, sess *clientSession, st *submitState, name string, env exp.Env, tasks []exp.Task, emit func(exp.TaskResult) error) (retry bool, err error) {
	if err := sess.send(clientReq{Submit: &submitReq{Name: name, Env: env, Tasks: tasks, Ref: st.ref}}); err != nil {
		if ctx.Err() != nil {
			return false, b.abandon(st.jobID, ctx.Err())
		}
		return true, nil
	}
	for {
		var resp clientResp
		if err := sess.read(&resp); err != nil {
			if ctx.Err() != nil {
				return false, b.abandon(st.jobID, ctx.Err())
			}
			return true, nil
		}
		switch {
		case resp.Err != "":
			return false, errors.New(resp.Err)
		case resp.Result != nil:
			i := resp.Result.Index
			if i < 0 || i >= len(tasks) {
				return false, b.abandon(st.jobID, fmt.Errorf("fabric: dispatcher streamed result for task %d of %d", i, len(tasks)))
			}
			if st.seen[i] {
				continue // re-attach catch-up overlap: already delivered
			}
			st.seen[i] = true
			st.emitted++
			if err := emit(exp.TaskResult{Index: i, Outcome: resp.Result.Out}); err != nil {
				return false, b.abandon(st.jobID, err)
			}
		case resp.Done != nil:
			if resp.Done.Err != "" {
				return false, errors.New(resp.Done.Err)
			}
			if st.emitted != len(tasks) {
				return false, fmt.Errorf("fabric: job done with only %d/%d results streamed", st.emitted, len(tasks))
			}
			return false, ctx.Err()
		case resp.Submitted != "":
			st.jobID = resp.Submitted
		}
	}
}

// abandon is the terminal path for a submission the client is walking away
// from mid-run (context canceled, emit failure): with a journaled
// dispatcher a disconnect alone no longer cancels the job, so the client
// cancels explicitly — best effort, on a short independent timeout — and
// returns cause.
func (b *Backend) abandon(jobID string, cause error) error {
	if jobID != "" {
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c := &Client{Addr: b.Addr, DialTimeout: b.DialTimeout}
		c.Cancel(cctx, jobID) // best effort; the job is orphaned either way
	}
	return cause
}

// Client issues psq-style control operations against a running dispatcher.
type Client struct {
	// Addr is the dispatcher's host:port.
	Addr string
	// DialTimeout bounds the dial; <= 0 means 10s.
	DialTimeout time.Duration
	// RedialBudget, when > 0, makes SubmitDetached survive an unreachable
	// or restarting dispatcher: it redials with exponential backoff for up
	// to this long, resubmitting under one idempotency ref. 0 keeps the
	// historical fail-fast behavior. List, Stats and Cancel always fail
	// fast — they are observations of a live dispatcher.
	RedialBudget time.Duration
}

// SubmitDetached registers a job that runs with no client attached: the
// dispatcher executes it to completion (filling its outcome cache), and
// `psq list` tracks its progress. Returns the job ID.
func (c *Client) SubmitDetached(ctx context.Context, name string, env exp.Env, tasks []exp.Task) (string, error) {
	req := &submitReq{Name: name, Env: env, Tasks: tasks, Detach: true}
	if c.RedialBudget <= 0 {
		return c.submitDetachedOnce(ctx, req)
	}
	req.Ref = newSubmitRef()
	delay := 250 * time.Millisecond
	start := time.Now()
	for {
		id, err := c.submitDetachedOnce(ctx, req)
		if err == nil || errors.Is(err, errHandshakeRefused) || ctx.Err() != nil {
			return id, err
		}
		if down := time.Since(start); down > c.RedialBudget {
			return "", fmt.Errorf("fabric: dispatcher %s unreachable for %v: %w",
				c.Addr, down.Round(time.Millisecond), exp.ErrBackendUnavailable)
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > 15*time.Second {
			delay = 15 * time.Second
		}
	}
}

func (c *Client) submitDetachedOnce(ctx context.Context, req *submitReq) (string, error) {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return "", err
	}
	defer sess.close()
	if err := sess.send(clientReq{Submit: req}); err != nil {
		return "", fmt.Errorf("fabric: submitting detached job: %w", err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return "", fmt.Errorf("fabric: reading submit ack: %w", err)
	}
	if resp.Err != "" {
		return "", errors.New(resp.Err)
	}
	if resp.Submitted == "" {
		return "", fmt.Errorf("fabric: dispatcher acknowledged without a job id")
	}
	return resp.Submitted, nil
}

// List returns every job on the dispatcher in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer sess.close()
	if err := sess.send(clientReq{List: true}); err != nil {
		return nil, fmt.Errorf("fabric: listing jobs: %w", err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return nil, fmt.Errorf("fabric: reading job list: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Jobs, nil
}

// Stats fetches the dispatcher's operational counters (worker count, queue
// depth, cache hits, ...) — the transport behind `psq stats`.
func (c *Client) Stats(ctx context.Context) (StatsReply, error) {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return StatsReply{}, err
	}
	defer sess.close()
	if err := sess.send(clientReq{Stats: true}); err != nil {
		return StatsReply{}, fmt.Errorf("fabric: requesting stats: %w", err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return StatsReply{}, fmt.Errorf("fabric: reading stats: %w", err)
	}
	if resp.Err != "" {
		return StatsReply{}, errors.New(resp.Err)
	}
	if resp.Stats == nil {
		return StatsReply{}, fmt.Errorf("fabric: dispatcher answered without stats (older dispatcher binary?)")
	}
	return *resp.Stats, nil
}

// Cancel cancels a running job by ID.
func (c *Client) Cancel(ctx context.Context, id string) error {
	sess, err := dialFabric(ctx, c.Addr, c.DialTimeout)
	if err != nil {
		return err
	}
	defer sess.close()
	if err := sess.send(clientReq{Cancel: id}); err != nil {
		return fmt.Errorf("fabric: canceling job %s: %w", id, err)
	}
	var resp clientResp
	if err := sess.read(&resp); err != nil {
		return fmt.Errorf("fabric: reading cancel ack: %w", err)
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// clientSession is one handshaken client connection.
type clientSession struct {
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	watchDone chan struct{}
}

// dialFabric dials the dispatcher, completes the client handshake, and
// arranges for ctx cancellation to kill the connection (unblocking reads).
func dialFabric(ctx context.Context, addr string, timeout time.Duration) (*clientSession, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: dialing dispatcher %s: %w", addr, err)
	}
	s := &clientSession{
		conn:      conn,
		br:        bufio.NewReader(conn),
		bw:        bufio.NewWriter(conn),
		watchDone: make(chan struct{}),
	}
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-s.watchDone:
		}
	}()
	if err := s.send(helloMsg{V: protoVersion, Role: roleClient}); err != nil {
		s.close()
		return nil, fmt.Errorf("fabric: sending hello to %s: %w", addr, err)
	}
	var ack helloAck
	if err := s.read(&ack); err != nil {
		s.close()
		return nil, fmt.Errorf("fabric: reading hello ack from %s — is a fabric dispatcher (cmd/fabricd -role dispatcher) listening there?: %w", addr, err)
	}
	if !ack.OK {
		s.close()
		return nil, fmt.Errorf("%w: %s", errHandshakeRefused, ack.Err)
	}
	return s, nil
}

func (s *clientSession) send(v any) error {
	if err := wire.WriteFrame(s.bw, v); err != nil {
		return err
	}
	return s.bw.Flush()
}

func (s *clientSession) read(v any) error { return wire.ReadFrame(s.br, v) }

func (s *clientSession) close() {
	close(s.watchDone)
	s.conn.Close()
}
