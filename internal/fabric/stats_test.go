package fabric

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/exp"
)

// TestFabricStatsOverWire drives a real dispatcher + worker and checks that
// the psq stats transport reports the same numbers the in-process accessors
// do: a live worker, the cache hits of a re-submitted sweep, and the
// MemOutcomeCache's LRU counters.
func TestFabricStatsOverWire(t *testing.T) {
	cache := NewMemOutcomeCache()
	d, addr := startDispatcher(t, DispatcherOptions{Cache: cache})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})
	waitFor(t, "worker connect", 5*time.Second, func() bool { return d.WorkerCount() == 1 })

	cl := &Client{Addr: addr}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 || st.QueueDepth != 0 || st.CacheHits != 0 {
		t.Fatalf("fresh dispatcher stats = %+v, want 1 worker, empty queue, 0 hits", st)
	}

	sw := fabricSweep()
	first := resultJSON(t, runFabric(t, addr, sw))
	second := resultJSON(t, runFabric(t, addr, sw))
	if first != second {
		t.Fatal("cached re-run not byte-identical")
	}
	tasks, err := sw.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	st, err = cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != int64(len(tasks)) {
		t.Fatalf("stats report %d cache hits, want %d (one per task of the re-run)", st.CacheHits, len(tasks))
	}
	if st.CacheHits != d.CacheHits() {
		t.Fatalf("wire stats (%d hits) disagree with the in-process accessor (%d)", st.CacheHits, d.CacheHits())
	}
	if st.Jobs != 2 {
		t.Fatalf("stats report %d jobs, want 2", st.Jobs)
	}
	if st.CacheLen != len(tasks) {
		t.Fatalf("stats report cacheLen %d, want %d", st.CacheLen, len(tasks))
	}
	if st.CacheStats == nil {
		t.Fatal("MemOutcomeCache stats missing from the reply")
	}
	if st.CacheStats.Entries != len(tasks) || st.CacheStats.Hits != st.CacheHits {
		t.Fatalf("cacheStats = %+v, want %d entries and %d hits", st.CacheStats, len(tasks), st.CacheHits)
	}
}

// TestMemOutcomeCacheBounded pins the satellite requirement: the
// dispatcher's in-memory outcome cache must not grow without limit under
// sustained distinct-key load, and its eviction counter must be observable.
func TestMemOutcomeCacheBounded(t *testing.T) {
	c := NewMemOutcomeCacheSized(8, 0)
	out := exp.Outcome{Analyze: &exp.AnalyzeOut{TIF: 1, TEF: 2}}
	for i := 0; i < 100; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), out); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want the cap 8", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 92 {
		t.Fatalf("Evictions = %d, want 92", st.Evictions)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("the coldest entry survived past the cap")
	}
	if got, ok := c.Get("k99"); !ok || got.Analyze == nil || got.Analyze.TIF != 1 {
		t.Fatalf("hottest entry lost or mangled: %+v, %t", got, ok)
	}
}
