package fabric

// FileOutcomeCache durability: outcomes appended by one dispatcher life are
// served by the next, and a line truncated by a hard kill mid-append is
// skipped — never fatal — because cached entries are an optimization, not
// the source of truth.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exp"
)

// sampleOutcome produces a real task outcome (so the JSON shape under test
// is the production one, not a synthetic stub).
func sampleOutcome(t *testing.T) exp.Outcome {
	t.Helper()
	sw := exp.Sweep{Name: "cache", Reps: 1, Warmup: 50, Jobs: 300}
	c := exp.Cell{K: 2, Rho: 0.5, MuI: 1, MuE: 1, Policy: "IF"}
	out, err := exp.ExecuteTask(
		exp.Env{Sweep: &sw},
		exp.Task{Sim: &exp.TaskSpec{Cell: c, Rep: 0, Seed: sw.RepSeed(c, 0), Key: sw.Key(c)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFileOutcomeCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jsonl")
	out := sampleOutcome(t)

	c, err := OpenFileOutcomeCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache reports a hit")
	}
	if err := c.Put("k1", out); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open (a dispatcher restart) must serve the same outcome.
	c2, err := OpenFileOutcomeCache(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("k1")
	if !ok {
		t.Fatal("outcome lost across reopen")
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("outcome changed across reopen:\nput %+v\ngot %+v", out, got)
	}
	if c2.Len() != 1 || c2.Corrupt() != 0 {
		t.Fatalf("len=%d corrupt=%d, want 1/0", c2.Len(), c2.Corrupt())
	}
}

func TestFileOutcomeCacheSkipsCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jsonl")
	out := sampleOutcome(t)
	c, err := OpenFileOutcomeCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("good", out); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a hard kill mid-append: a truncated trailing record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","out":{"rep`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenFileOutcomeCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("good"); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := c2.Get("torn"); ok {
		t.Fatal("torn record served")
	}
	if c2.Corrupt() != 1 {
		t.Fatalf("Corrupt = %d, want 1", c2.Corrupt())
	}
	// The next Put must land on a fresh line, not be absorbed into the
	// torn one.
	if err := c2.Put("after", out); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3, err := OpenFileOutcomeCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get("after"); !ok {
		t.Fatal("post-corruption append lost")
	}
}
