package fabric

// Journal and crash-recovery tests: the write-ahead journal's file
// discipline (torn tails, crash points mid-write), the replay semantics
// (restoreRecords as a pure function, then a full dispatcher restarted on
// its journal), client failover across a dispatcher restart on the same
// address, graceful drain (dispatcher and worker), and the per-task
// execution deadline. The correctness bar stays the repo's: whatever was
// crashed, killed or drained on the way, a completed sweep must serialize
// byte-for-byte identically to the in-process pool.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
)

// journalPath returns a fresh journal path in the test's temp dir.
func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.jsonl")
}

// sampleRecords is a plausible journal history: one two-task job granted,
// finished, and cleanly shut down.
func sampleRecords() []journalRecord {
	sw := fabricSweep()
	return []journalRecord{
		{Submit: &journalSubmit{ID: "j1", Ref: "r1", Name: "sweep", Env: exp.Env{Sweep: &sw}, Tasks: []exp.Task{{}, {}}}},
		{Grant: &journalGrant{Job: "j1", Idx: 0}},
		{Done: &journalDone{Job: "j1", Idx: 0, Out: exp.Outcome{Rep: &exp.Replication{Rep: 0, MeanT: 1.5}}}},
		{Grant: &journalGrant{Job: "j1", Idx: 1}},
		{Done: &journalDone{Job: "j1", Idx: 1, Out: exp.Outcome{Rep: &exp.Replication{Rep: 1, MeanT: 2.5}}}},
		{Shutdown: true},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if err := jl.appendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if jl2.Len() != len(recs) {
		t.Fatalf("reloaded %d records, wrote %d", jl2.Len(), len(recs))
	}
	if jl2.Corrupt() != 0 {
		t.Fatalf("clean journal reports %d corrupt lines", jl2.Corrupt())
	}
	if !jl2.CleanShutdown() {
		t.Fatal("journal ending in a shutdown record reports CleanShutdown = false")
	}
	got := jl2.records()
	for i := range recs {
		a, _ := json.Marshal(recs[i])
		b, _ := json.Marshal(got[i])
		if string(a) != string(b) {
			t.Fatalf("record %d changed across the round trip:\n wrote %s\n read  %s", i, a, b)
		}
	}
}

// TestJournalTornTailRepair kills a journal mid-record (no trailing
// newline): the torn stump must be skipped and counted, the intact prefix
// kept, and the first append after reopening must land on its own line —
// not be absorbed into the stump.
func TestJournalTornTailRepair(t *testing.T) {
	path := journalPath(t)
	intact := `{"grant":{"job":"j1","idx":0}}` + "\n"
	torn := `{"done":{"job":"j1","idx":0,"out":{"et":`
	if err := os.WriteFile(path, []byte(intact+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if jl.Len() != 1 || jl.Corrupt() != 1 {
		t.Fatalf("torn journal loaded %d records / %d corrupt, want 1 / 1", jl.Len(), jl.Corrupt())
	}
	if jl.CleanShutdown() {
		t.Fatal("torn journal claims a clean shutdown")
	}
	if err := jl.appendRecord(journalRecord{Shutdown: true}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	// The stump stays corrupt, the old record and the new one both load.
	if jl2.Len() != 2 || jl2.Corrupt() != 1 {
		t.Fatalf("repaired journal loaded %d records / %d corrupt, want 2 / 1", jl2.Len(), jl2.Corrupt())
	}
	if !jl2.CleanShutdown() {
		t.Fatal("repaired journal should end in the appended shutdown record")
	}
}

// TestJournalCrashPoints tears an append at every byte offset of a full
// journal history — the in-process stand-in for SIGKILL landing mid
// write(2). Whatever the offset, reopening must recover exactly the
// records whose lines fit the surviving bytes, never a mangled one.
func TestJournalCrashPoints(t *testing.T) {
	recs := sampleRecords()
	// Reference: the full file and its cumulative line boundaries.
	full := journalPath(t)
	jl, err := OpenJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := jl.appendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for offset := 0; offset <= len(data); offset++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("crash-%d.jsonl", offset))
		cj, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		cj.failAfter = int64(offset)
		var crashed bool
		for _, rec := range recs {
			if err := cj.appendRecord(rec); err != nil {
				if !errors.Is(err, errJournalCrash) {
					t.Fatalf("offset %d: append: %v", offset, err)
				}
				crashed = true
				break
			}
		}
		cj.Close()
		if !crashed && offset < len(data) {
			t.Fatalf("offset %d: no crash fired before the full history", offset)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(data[:offset]) {
			t.Fatalf("offset %d: file is not the exact prefix of the reference", offset)
		}
		// Reopen: exactly the complete lines within the prefix survive, and
		// every survivor matches the reference record byte for byte.
		re, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", offset, err)
		}
		wantRecs, wantCorrupt, wantTorn := decodeJournal(data[:offset])
		if re.Len() != len(wantRecs) || re.Corrupt() != wantCorrupt {
			t.Fatalf("offset %d: reopen loaded %d/%d, decode says %d/%d",
				offset, re.Len(), re.Corrupt(), len(wantRecs), wantCorrupt)
		}
		complete := 0
		for i, rec := range re.records() {
			a, _ := json.Marshal(rec)
			b, _ := json.Marshal(recs[i])
			if string(a) != string(b) {
				t.Fatalf("offset %d: recovered record %d mangled", offset, i)
			}
			complete++
		}
		if wantTorn && offset == len(data) {
			t.Fatalf("full file reported torn")
		}
		// Recovery must replay to a consistent registry, whatever the cut.
		st := restoreRecords(re.records(), 3)
		if err := checkRestored(st, 3); err != nil {
			t.Fatalf("offset %d (%d records): %v", offset, complete, err)
		}
		re.Close()
	}
}

// TestRestoreRecordsBudget: grants with no completion are interrupted
// executions and consume the unified retry budget; a task whose grants
// already exhausted it fails the job at replay.
func TestRestoreRecordsBudget(t *testing.T) {
	sw := fabricSweep()
	submit := journalRecord{Submit: &journalSubmit{ID: "j1", Env: exp.Env{Sweep: &sw}, Tasks: []exp.Task{{}}}}
	grant := journalRecord{Grant: &journalGrant{Job: "j1", Idx: 0}}

	st := restoreRecords([]journalRecord{submit, grant, grant}, 3)
	if j := st.jobs["j1"]; j.state != JobRunning || j.attempts[0] != 2 {
		t.Fatalf("2 interrupted grants against budget 3: state %s attempts %d", j.state, j.attempts[0])
	}
	st = restoreRecords([]journalRecord{submit, grant, grant, grant}, 3)
	j := st.jobs["j1"]
	if j.state != JobFailed || len(st.failed) != 1 {
		t.Fatalf("3 interrupted grants against budget 3 should fail the job at replay: state %s failed %v", j.state, st.failed)
	}
	if !strings.Contains(j.err, "restart") {
		t.Fatalf("budget-exhausted error does not mention restarts: %q", j.err)
	}
	// A grant followed by its completion is not an interrupted attempt.
	done := journalRecord{Done: &journalDone{Job: "j1", Idx: 0, Out: exp.Outcome{}}}
	st = restoreRecords([]journalRecord{submit, grant, grant, grant, done}, 3)
	if j := st.jobs["j1"]; j.state != JobDone || j.done != 1 {
		t.Fatalf("completed task failed at replay anyway: state %s done %d", j.state, j.done)
	}
}

// serveDispatcherOn serves an existing dispatcher on a specific address
// (":0" style or a concrete one, for restart-on-same-port tests) and tears
// it down with the test.
func serveDispatcherOn(t *testing.T, d *Dispatcher, addr string) string {
	t.Helper()
	var ln net.Listener
	var err error
	// A just-killed dispatcher's port can need a beat to rebind.
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve(ln) }()
	t.Cleanup(func() {
		d.Close()
		if err := <-done; err != nil {
			t.Errorf("dispatcher Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestDispatcherJournalReplayResumes: a dispatcher with queued (ungranted)
// work dies; a new dispatcher on the same journal resumes the job and a
// worker completes it, with the completions journaled for the next life.
func TestDispatcherJournalReplayResumes(t *testing.T) {
	path := journalPath(t)
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := fabricSweep()
	tasks, err := sw.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	d1 := NewDispatcher(DispatcherOptions{Journal: jl})
	if _, _, err := d1.submitJob(&submitReq{Name: "resume", Env: exp.Env{Sweep: &sw}, Tasks: tasks, Detach: true, Ref: "r-resume"}); err != nil {
		t.Fatal(err)
	}
	d1.Close()
	jl.Close()

	jl2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	d2 := NewDispatcher(DispatcherOptions{Journal: jl2})
	if got := d2.QueueDepth(); got != len(tasks) {
		t.Fatalf("replayed queue depth %d, want all %d tasks", got, len(tasks))
	}
	jobs := d2.Jobs()
	if len(jobs) != 1 || jobs[0].State != JobRunning || jobs[0].Done != 0 {
		t.Fatalf("replayed registry: %+v", jobs)
	}
	addr := serveDispatcherOn(t, d2, "127.0.0.1:0")
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})
	waitFor(t, "replayed job to finish", 30*time.Second, func() bool {
		jobs := d2.Jobs()
		return len(jobs) == 1 && jobs[0].State == JobDone && jobs[0].Done == len(tasks)
	})
}

// TestDispatcherJournalReplayServesFinishedJob: after a completed job, a
// restarted dispatcher must answer a re-attach (same submit ref) entirely
// from replayed outcomes — every result streamed, no worker connected.
func TestDispatcherJournalReplayServesFinishedJob(t *testing.T) {
	path := journalPath(t)
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := fabricSweep()
	tasks, err := sw.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	d1 := NewDispatcher(DispatcherOptions{Journal: jl})
	addr1 := serveDispatcherOn(t, d1, "127.0.0.1:0")
	startWorker(t, &Worker{Dispatcher: addr1, Name: "w1"})

	const ref = "r-fixed-reattach"
	ctx := context.Background()
	attach := func(t *testing.T, addr string) map[int]exp.Outcome {
		t.Helper()
		sess, err := dialFabric(ctx, addr, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.close()
		if err := sess.send(clientReq{Submit: &submitReq{Name: "reattach", Env: exp.Env{Sweep: &sw}, Tasks: tasks, Ref: ref}}); err != nil {
			t.Fatal(err)
		}
		outs := make(map[int]exp.Outcome)
		for {
			var resp clientResp
			if err := sess.read(&resp); err != nil {
				t.Fatal(err)
			}
			switch {
			case resp.Err != "":
				t.Fatal(resp.Err)
			case resp.Result != nil:
				if _, dup := outs[resp.Result.Index]; dup {
					t.Fatalf("task %d streamed twice on one connection", resp.Result.Index)
				}
				outs[resp.Result.Index] = resp.Result.Out
			case resp.Done != nil:
				if resp.Done.Err != "" {
					t.Fatal(resp.Done.Err)
				}
				return outs
			}
		}
	}
	first := attach(t, addr1)
	if len(first) != len(tasks) {
		t.Fatalf("first attach streamed %d/%d results", len(first), len(tasks))
	}
	d1.Close()
	jl.Close()

	jl2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	d2 := NewDispatcher(DispatcherOptions{Journal: jl2})
	if d2.QueueDepth() != 0 {
		t.Fatalf("finished job re-queued %d tasks at replay", d2.QueueDepth())
	}
	addr2 := serveDispatcherOn(t, d2, "127.0.0.1:0")
	// No worker on d2: every streamed result below is a replayed outcome.
	second := attach(t, addr2)
	if len(second) != len(tasks) {
		t.Fatalf("re-attach streamed %d/%d results", len(second), len(tasks))
	}
	for i := range tasks {
		a, _ := json.Marshal(first[i])
		b, _ := json.Marshal(second[i])
		if string(a) != string(b) {
			t.Fatalf("task %d: replayed outcome differs from the computed one:\n %s\nvs\n %s", i, a, b)
		}
	}
}

// TestFabricDispatcherCrashFailover is the tentpole end to end, in process:
// an attached sweep is mid-flight when the dispatcher dies; a new
// dispatcher starts on the same address and journal; workers redial, the
// client's Backend redials and re-attaches by ref, and the finished sweep
// is byte-identical to the pool.
func TestFabricDispatcherCrashFailover(t *testing.T) {
	sw := fabricSweep()
	sw.Jobs = 50_000 // long enough to still be mid-flight at the kill
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	path := journalPath(t)
	jl1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	d1 := NewDispatcher(DispatcherOptions{Journal: jl1})
	d1done := make(chan error, 1)
	go func() { d1done <- d1.Serve(ln) }()
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w2"})

	type runOut struct {
		rs  *exp.ResultSet
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		rs, err := exp.Run(context.Background(), sw, exp.Options{
			Backend: &Backend{
				Addr: addr, Name: "failover",
				ReconnectBackoff: 10 * time.Millisecond,
				RedialBudget:     30 * time.Second,
			},
		})
		resCh <- runOut{rs, err}
	}()

	// Kill the dispatcher mid-sweep...
	time.Sleep(200 * time.Millisecond)
	d1.Close()
	if err := <-d1done; err != nil {
		t.Fatalf("dispatcher 1 Serve: %v", err)
	}
	jl1.Close()

	// ...and restart it on the same journal and the same address.
	jl2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	d2 := NewDispatcher(DispatcherOptions{Journal: jl2})
	serveDispatcherOn(t, d2, addr)

	out := <-resCh
	if out.err != nil {
		t.Fatalf("sweep failed across the dispatcher crash: %v", out.err)
	}
	if resultJSON(t, pool) != resultJSON(t, out.rs) {
		t.Fatal("sweep across a dispatcher crash differs from the pool")
	}
	// The job must have come through d2 as a single re-attached job — not a
	// duplicate — whether or not d1 granted anything before dying.
	jobs := d2.Jobs()
	if len(jobs) != 1 || jobs[0].State != JobDone {
		t.Fatalf("post-failover registry: %+v", jobs)
	}
}

// TestDispatcherDrain: draining stops grants and submissions, waits out
// in-flight work, and journals a clean shutdown the next open reports.
func TestDispatcherDrain(t *testing.T) {
	path := journalPath(t)
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := fabricSweep()
	d, addr := startDispatcher(t, DispatcherOptions{Journal: jl})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})
	runFabric(t, addr, sw)

	if err := d.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain with nothing in flight: %v", err)
	}
	tasks, err := sw.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.submitJob(&submitReq{Env: exp.Env{Sweep: &sw}, Tasks: tasks}); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("submit on a draining dispatcher: %v", err)
	}
	d.Close()
	jl.Close()

	jl2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if !jl2.CleanShutdown() {
		t.Fatal("drained dispatcher's journal does not end in a clean shutdown")
	}
	// And the clean journal replays with nothing to redo.
	d2 := NewDispatcher(DispatcherOptions{Journal: jl2})
	if d2.QueueDepth() != 0 {
		t.Fatalf("cleanly drained journal re-queued %d tasks", d2.QueueDepth())
	}
}

// TestFabricWorkerDrain: draining one of two workers mid-sweep lets it
// finish its in-flight task and deregister; the survivor completes the
// sweep byte-identically and the drained worker's Run returns nil.
func TestFabricWorkerDrain(t *testing.T) {
	sw := fabricSweep()
	sw.Jobs = 20_000
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDispatcher(t, DispatcherOptions{})
	startWorker(t, &Worker{Dispatcher: addr, Name: "stays"})
	leaving := &Worker{Dispatcher: addr, Name: "leaving"}
	ctx := context.Background()
	leftDone := make(chan error, 1)
	go func() { leftDone <- leaving.Run(ctx) }()
	waitFor(t, "both workers connected", 5*time.Second, func() bool { return d.WorkerCount() == 2 })

	go func() {
		time.Sleep(100 * time.Millisecond)
		leaving.Drain()
	}()
	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("sweep across a worker drain differs from the pool")
	}
	select {
	case err := <-leftDone:
		if err != nil {
			t.Fatalf("drained worker Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker never exited")
	}
	waitFor(t, "drained worker deregistered", 5*time.Second, func() bool { return d.WorkerCount() == 1 })
}

// TestFabricTaskDeadline: a worker wedged solid inside a task (frozen, so
// heartbeat reaping with a long timeout never fires) is cut off by the
// per-task execution deadline; the task re-queues within the same retry
// budget and the sweep completes byte-identically on the healthy worker.
func TestFabricTaskDeadline(t *testing.T) {
	sw := fabricSweep()
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDispatcher(t, DispatcherOptions{
		TaskDeadline:     500 * time.Millisecond,
		HeartbeatTimeout: time.Hour, // the deadline, not the reaper, must fire
	})
	startWorker(t, &Worker{Dispatcher: addr, Name: "healthy"})
	startWorker(t, &Worker{Dispatcher: addr, Name: "wedged", freezeAfterAssigns: 1})

	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("sweep across a task-deadline expiry differs from the pool")
	}
	if d.DeadlineExpiries() < 1 {
		t.Fatalf("wedged worker held a task but DeadlineExpiries = %d", d.DeadlineExpiries())
	}
	if d.Requeues() < 1 {
		t.Fatalf("expired assignment was not re-queued: Requeues = %d", d.Requeues())
	}
	if st := d.Stats(); st.DeadlineExpiries != d.DeadlineExpiries() {
		t.Fatalf("StatsReply.DeadlineExpiries = %d, accessor says %d", st.DeadlineExpiries, d.DeadlineExpiries())
	}
}

// checkRestored asserts the internal consistency of a replayed registry:
// the invariants the live dispatcher maintains must hold whatever bytes
// the journal fed the replay.
func checkRestored(st *restoredState, maxAttempts int) error {
	if len(st.jobOrder) != len(st.jobs) {
		return fmt.Errorf("jobOrder has %d entries for %d jobs", len(st.jobOrder), len(st.jobs))
	}
	seen := make(map[string]bool)
	for _, id := range st.jobOrder {
		if seen[id] {
			return fmt.Errorf("job %s appears twice in jobOrder", id)
		}
		seen[id] = true
		j := st.jobs[id]
		if j == nil {
			return fmt.Errorf("jobOrder names unknown job %s", id)
		}
		n := len(j.tasks)
		if len(j.attempts) != n || len(j.emitted) != n || len(j.outs) != n {
			return fmt.Errorf("job %s: slice lengths diverge from %d tasks", id, n)
		}
		done := 0
		for i := 0; i < n; i++ {
			if j.emitted[i] != (j.outs[i] != nil) {
				return fmt.Errorf("job %s task %d: emitted=%t but outcome presence=%t (a completed task was lost or invented)", id, i, j.emitted[i], j.outs[i] != nil)
			}
			if j.emitted[i] {
				done++
			}
			if j.attempts[i] < 0 {
				return fmt.Errorf("job %s task %d: negative attempts", id, i)
			}
			if j.state == JobRunning && !j.emitted[i] && j.attempts[i] >= maxAttempts {
				return fmt.Errorf("job %s task %d: running with attempts %d >= budget %d", id, i, j.attempts[i], maxAttempts)
			}
		}
		if j.done != done {
			return fmt.Errorf("job %s: done=%d but %d emitted", id, j.done, done)
		}
		if (j.state == JobDone) != (done == n) {
			return fmt.Errorf("job %s: state %s with %d/%d done", id, j.state, done, n)
		}
		switch j.state {
		case JobRunning, JobDone, JobFailed, JobCanceled:
		default:
			return fmt.Errorf("job %s: unknown state %q", id, j.state)
		}
	}
	for ref, id := range st.refs {
		if st.jobs[id] == nil {
			return fmt.Errorf("ref %s points at unknown job %s", ref, id)
		}
	}
	return nil
}

// restoredSummary renders a registry deterministically for equality checks.
func restoredSummary(st *restoredState) string {
	var b strings.Builder
	for _, id := range st.jobOrder {
		j := st.jobs[id]
		fmt.Fprintf(&b, "%s|%s|%s|%d|%v|%v\n", id, j.ref, j.state, j.done, j.attempts, j.emitted)
	}
	fmt.Fprintf(&b, "next=%d refs=%d failed=%v\n", st.nextJob, len(st.refs), st.failed)
	return b.String()
}

// FuzzJournalReplay feeds arbitrary bytes through the journal decoder and
// the registry replay. Whatever the truncation or corruption: no panic,
// the replayed registry is internally consistent (a completed task is
// never lost — emitted always has its outcome — and a running task never
// exceeds its grant budget), replay is deterministic, and appending more
// records never un-completes a task.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a real history, rendered to bytes...
	var full []byte
	for _, rec := range sampleRecords() {
		line, err := json.Marshal(rec)
		if err != nil {
			f.Fatal(err)
		}
		full = append(full, line...)
		full = append(full, '\n')
	}
	f.Add(full)
	// ...its torn and corrupted variants...
	f.Add(full[:len(full)-9])
	f.Add(append([]byte("garbage line\n"), full...))
	f.Add([]byte(`{"submit":{"id":"j1","env":{},"tasks":[{},{}]}}` + "\n" +
		`{"grant":{"job":"j1","idx":0}}` + "\n" +
		`{"grant":{"job":"j1","idx":0}}` + "\n" +
		`{"grant":{"job":"j1","idx":0}}` + "\n"))
	f.Add([]byte(`{"submit":{"id":"j1","ref":"r1","env":{},"tasks":[{}]}}` + "\n" +
		`{"submit":{"id":"j1","ref":"r1","env":{},"tasks":[{}]}}` + "\n" +
		`{"done":{"job":"j1","idx":0,"out":{}}}` + "\n" +
		`{"cancel":{"job":"j1","msg":"late"}}` + "\n"))
	f.Add([]byte(`{"done":{"job":"ghost","idx":5,"out":{}}}` + "\n" + `{"shutdown":true}` + "\n"))
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, _ := decodeJournal(data)
		const budget = 3
		st := restoreRecords(recs, budget)
		if err := checkRestored(st, budget); err != nil {
			t.Fatal(err)
		}
		// Determinism: the same records replay to the same registry.
		if a, b := restoredSummary(st), restoredSummary(restoreRecords(recs, budget)); a != b {
			t.Fatalf("replay is nondeterministic:\n%s\nvs\n%s", a, b)
		}
		// Monotonicity: replaying one record fewer never shows a completion
		// the full replay lost.
		if len(recs) > 0 {
			prev := restoreRecords(recs[:len(recs)-1], budget)
			for id, pj := range prev.jobs {
				j := st.jobs[id]
				if j == nil {
					t.Fatalf("job %s vanished when a record was appended", id)
				}
				for i := range pj.emitted {
					if pj.emitted[i] && !j.emitted[i] {
						t.Fatalf("job %s task %d: completion lost when a record was appended", id, i)
					}
				}
			}
		}
	})
}
