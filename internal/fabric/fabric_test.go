package fabric

// The in-test fabric harness: a real dispatcher and N real workers on
// loopback TCP, exercised through the public Backend/Client API, with
// scripted fault injection (a worker crashing mid-task, a flaky link that
// drops and reconnects, a worker frozen solid mid-task, a slow-loris
// handshake, a stale-version hello, a drifted Env probe). The correctness
// bar throughout is the one the repo pins for every backend: a fabric sweep
// must serialize byte-for-byte identically to the in-process pool, no
// matter which faults fired on the way.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/wire"
)

// fabricSweep is a small but multi-cell sweep (8 cells x 2 reps = 16
// tasks), sized so fault-injection tests still finish in well under a
// second per run.
func fabricSweep() exp.Sweep {
	return exp.Sweep{
		Name: "fabric",
		Grid: exp.Grid{
			K:        []int{2},
			Rho:      []float64{0.5, 0.7},
			MuI:      []float64{1, 2},
			MuE:      []float64{1},
			Policies: []string{"IF", "EF"},
		},
		Reps:   2,
		Warmup: 200,
		Jobs:   1_500,
	}
}

// startDispatcher serves a dispatcher on loopback and returns it with its
// address. It is torn down when the test ends.
func startDispatcher(t *testing.T, opts DispatcherOptions) (*Dispatcher, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(opts)
	done := make(chan error, 1)
	go func() { done <- d.Serve(ln) }()
	t.Cleanup(func() {
		d.Close()
		if err := <-done; err != nil {
			t.Errorf("dispatcher Serve: %v", err)
		}
	})
	return d, ln.Addr().String()
}

// startWorker runs w against the dispatcher until the test ends (or the
// worker stops itself: fault stop or handshake refusal).
func startWorker(t *testing.T, w *Worker) {
	t.Helper()
	if w.HeartbeatInterval == 0 {
		w.HeartbeatInterval = 50 * time.Millisecond
	}
	if w.ReconnectBackoff == 0 {
		w.ReconnectBackoff = 10 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := w.Run(ctx)
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, errHandshakeRefused) {
			t.Errorf("worker %s: %v", w.Name, err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// runFabric runs sw through the fabric backend at addr.
func runFabric(t *testing.T, addr string, sw exp.Sweep) *exp.ResultSet {
	t.Helper()
	rs, err := exp.Run(context.Background(), sw, exp.Options{
		Backend: &Backend{Addr: addr, Name: sw.Name},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// resultJSON is the byte-identity probe: the full ResultSet serialization.
func resultJSON(t *testing.T, rs *exp.ResultSet) string {
	t.Helper()
	var b strings.Builder
	if err := rs.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFabricBitIdenticalToPool is the PR's correctness bar: the same sweep
// through a dispatcher and two TCP workers must produce a ResultSet whose
// JSON serialization is byte-for-byte the in-process pool's.
func TestFabricBitIdenticalToPool(t *testing.T) {
	sw := fabricSweep()
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDispatcher(t, DispatcherOptions{})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w2"})

	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("fabric ResultSet JSON differs from PoolBackend")
	}
	if d.Requeues() != 0 {
		t.Fatalf("healthy run re-queued %d tasks", d.Requeues())
	}
	if d.Handshakes() < 2 {
		t.Fatalf("want 2 worker handshakes, got %d", d.Handshakes())
	}
}

// TestFabricWorkerKilledMidTask crashes one of three workers while it holds
// an un-answered assignment. The dispatcher must re-queue the in-flight
// task onto the survivors and the sweep must stay byte-identical to the
// pool.
func TestFabricWorkerKilledMidTask(t *testing.T) {
	sw := fabricSweep()
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDispatcher(t, DispatcherOptions{})
	startWorker(t, &Worker{Dispatcher: addr, Name: "healthy1"})
	startWorker(t, &Worker{Dispatcher: addr, Name: "healthy2"})
	startWorker(t, &Worker{Dispatcher: addr, Name: "doomed", dieAfterAssigns: 2})

	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("results differ after a worker died mid-task")
	}
	if d.Requeues() < 1 {
		t.Fatalf("worker died holding a task but Requeues = %d", d.Requeues())
	}
}

// TestFabricWorkerReconnectResumes runs the whole sweep through a single
// flaky worker whose connection drops every three results. The reconnect
// loop must redial (several sessions on one Worker) and the sweep must
// complete, byte-identical.
func TestFabricWorkerReconnectResumes(t *testing.T) {
	sw := fabricSweep()
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The flaky link forces a re-queue per drop; give the budget headroom
	// so no single task can exhaust it by bad luck.
	d, addr := startDispatcher(t, DispatcherOptions{MaxTaskAttempts: 10})
	w := &Worker{Dispatcher: addr, Name: "flaky", dropAfterResults: 3}
	startWorker(t, w)

	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("results differ across reconnects")
	}
	if w.Sessions() < 2 {
		t.Fatalf("flaky worker should have reconnected: sessions = %d", w.Sessions())
	}
	if d.Handshakes() != w.Sessions() {
		t.Fatalf("dispatcher saw %d handshakes, worker counts %d sessions", d.Handshakes(), w.Sessions())
	}
}

// TestFabricFrozenWorkerReaped wedges a worker solid after its first
// assignment: it stops heartbeating and goes completely silent without
// dropping the connection. The heartbeat reaper must declare it dead after
// the timeout, re-queue its in-flight task, and let the healthy worker
// finish the sweep.
func TestFabricFrozenWorkerReaped(t *testing.T) {
	sw := fabricSweep()
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDispatcher(t, DispatcherOptions{HeartbeatTimeout: 300 * time.Millisecond})
	startWorker(t, &Worker{Dispatcher: addr, Name: "healthy"})
	startWorker(t, &Worker{Dispatcher: addr, Name: "frozen", freezeAfterAssigns: 1})

	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("results differ after a frozen worker was reaped")
	}
	if d.Requeues() < 1 {
		t.Fatalf("frozen worker held a task but Requeues = %d", d.Requeues())
	}
}

// TestFabricSlowWorkerNotReaped is the other half of the heartbeat
// contract: a worker that takes far longer than the heartbeat timeout to
// answer a task — but keeps heartbeating through it — must NOT be declared
// dead. The heartbeat interval (50ms) exceeds nothing; the task (~several
// hundred ms of simulated work behind a tiny timeout of 150ms) exceeds the
// timeout many times over.
func TestFabricSlowWorkerNotReaped(t *testing.T) {
	sw := fabricSweep()
	sw.Jobs = 40_000 // one task now far outlasts the 150ms heartbeat timeout
	sw.Grid.Rho = []float64{0.7}
	sw.Grid.MuI = []float64{2}
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDispatcher(t, DispatcherOptions{HeartbeatTimeout: 150 * time.Millisecond})
	w := &Worker{Dispatcher: addr, Name: "slow", HeartbeatInterval: 20 * time.Millisecond}
	startWorker(t, w)

	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("slow-worker sweep differs from pool")
	}
	if d.Requeues() != 0 {
		t.Fatalf("slow-but-heartbeating worker was reaped: Requeues = %d", d.Requeues())
	}
	if w.Sessions() != 1 {
		t.Fatalf("slow worker should have kept one session, got %d", w.Sessions())
	}
}

// TestFabricReapDecisionFakeClock drives the dispatcher's reap decision
// directly with an injected clock — no real timers: a worker that has sent
// nothing for longer than the timeout is reaped the moment the (fake) clock
// says so, while a worker whose frames carry fresh timestamps is not.
func TestFabricReapDecisionFakeClock(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var offset atomic.Int64 // fake nanoseconds since base
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }

	// A huge timeout keeps the real reapLoop irrelevant; only explicit
	// reapSilent calls below decide anything.
	d, addr := startDispatcher(t, DispatcherOptions{HeartbeatTimeout: time.Hour, Clock: clock})
	// The silent worker heartbeats "never" and must not redial once reaped.
	silent := &Worker{
		Dispatcher: addr, Name: "silent",
		HeartbeatInterval: time.Hour, ReconnectBackoff: time.Hour,
	}
	startWorker(t, silent)
	// The chatty worker keeps frames flowing; each one is stamped with the
	// current fake time by the dispatcher's read loop.
	chatty := &Worker{Dispatcher: addr, Name: "chatty", HeartbeatInterval: 10 * time.Millisecond}
	startWorker(t, chatty)
	waitFor(t, "both workers connected", 5*time.Second, func() bool { return d.WorkerCount() == 2 })

	// Advance the fake clock past the timeout, then give the chatty worker
	// a beat to stamp frames with the new time. The silent worker's last
	// frame is still at t=0.
	offset.Store(int64(2 * time.Hour))
	time.Sleep(60 * time.Millisecond)
	if n := d.reapSilent(clock()); n != 1 {
		t.Fatalf("reapSilent reaped %d workers, want exactly the silent one", n)
	}
	waitFor(t, "silent worker deregistered", 5*time.Second, func() bool { return d.WorkerCount() == 1 })

	// The survivor must still be serviceable.
	time.Sleep(30 * time.Millisecond)
	if n := d.reapSilent(clock()); n != 0 {
		t.Fatalf("heartbeating worker reaped: %d", n)
	}
}

// TestFabricStaleVersionRefused opens a raw connection speaking a future
// protocol version; the dispatcher must refuse the hello with a reason
// naming both versions rather than hand tasks to a binary it cannot trust.
func TestFabricStaleVersionRefused(t *testing.T) {
	d, addr := startDispatcher(t, DispatcherOptions{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := wire.WriteFrame(bw, helloMsg{V: protoVersion + 1, Role: roleWorker, Name: "future", Probe: EnvProbe()}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := wire.ReadFrame(bufio.NewReader(conn), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("dispatcher accepted a future protocol version")
	}
	if !strings.Contains(ack.Err, "version") {
		t.Fatalf("refusal does not explain the version mismatch: %q", ack.Err)
	}
	if d.Refusals() != 1 {
		t.Fatalf("Refusals = %d, want 1", d.Refusals())
	}
}

// TestFabricEnvProbeDriftRefused connects a worker whose Env probe differs
// from the dispatcher's — the fingerprint a drifted binary would present.
// The refusal must be permanent: the worker must not sit in a reconnect
// loop hammering a dispatcher that will never accept it.
func TestFabricEnvProbeDriftRefused(t *testing.T) {
	d, addr := startDispatcher(t, DispatcherOptions{})
	w := &Worker{
		Dispatcher: addr, Name: "drifted",
		probeOverride: "v1|deadbeef|0000000000000000|0000000000000000",
	}
	err := w.Run(context.Background())
	if !errors.Is(err, errHandshakeRefused) {
		t.Fatalf("want errHandshakeRefused, got %v", err)
	}
	if !strings.Contains(err.Error(), "drift") {
		t.Fatalf("refusal does not explain the drift: %v", err)
	}
	if d.Refusals() != 1 {
		t.Fatalf("Refusals = %d, want 1 (no retry loop)", d.Refusals())
	}
	if d.Handshakes() != 0 {
		t.Fatalf("drifted worker completed a handshake")
	}
}

// TestFabricDeterministicTaskErrorNoRetry submits a task that fails
// deterministically (an unknown policy). The error must surface exactly
// once, carrying the cell and replication identity, with zero re-queues —
// retrying a deterministic failure would just fail again elsewhere.
func TestFabricDeterministicTaskErrorNoRetry(t *testing.T) {
	d, addr := startDispatcher(t, DispatcherOptions{})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})

	bad := exp.Cell{K: 2, Rho: 0.5, MuI: 1, MuE: 1, Policy: "NOPE"}
	sw := exp.Sweep{Name: "bad", Jobs: 100}
	tasks := []exp.Task{{Sim: &exp.TaskSpec{Cell: bad, Rep: 1, Seed: sw.RepSeed(bad, 1), Key: sw.Key(bad)}}}
	b := &Backend{Addr: addr}
	err := b.Submit(context.Background(), exp.Env{Sweep: &sw}, tasks, func(exp.TaskResult) error { return nil })
	if err == nil {
		t.Fatal("bad policy accepted")
	}
	for _, want := range []string{"cell", "rho=0.5", "rep 1", "NOPE"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not carry %q", err, want)
		}
	}
	if d.Requeues() != 0 {
		t.Fatalf("deterministic task error was retried: Requeues = %d", d.Requeues())
	}
}

// TestFabricSlowLorisHandshake holds connections open without ever
// completing a hello. The dispatcher must cut them off at the handshake
// deadline and stay fully serviceable for honest peers throughout.
func TestFabricSlowLorisHandshake(t *testing.T) {
	_, addr := startDispatcher(t, DispatcherOptions{HandshakeTimeout: 150 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Dribble a plausible frame prefix, then stall forever.
		if _, err := conn.Write([]byte("12")); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The dispatcher must hang up on us; a healthy handshake would
			// instead deliver an ack frame.
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			buf := make([]byte, 64)
			if n, err := conn.Read(buf); err == nil {
				t.Errorf("slow-loris connection got %d bytes instead of a hang-up", n)
			}
		}()
	}

	// With the loris connections still (at most) mid-timeout, honest
	// traffic must flow: a worker handshakes and a one-task sweep runs.
	startWorker(t, &Worker{Dispatcher: addr, Name: "honest"})
	sw := fabricSweep()
	sw.Grid.Rho = []float64{0.5}
	sw.Grid.MuI = []float64{1}
	sw.Reps = 1
	runFabric(t, addr, sw)
	wg.Wait()
}

// TestFabricClientDisconnectCancelsJob: an attached submission is owned by
// its client — when the client's context cancels mid-sweep, the Backend
// returns ctx.Err() and the dispatcher cancels the job instead of burning
// workers on results nobody will read.
func TestFabricClientDisconnectCancelsJob(t *testing.T) {
	d, addr := startDispatcher(t, DispatcherOptions{})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})

	sw := fabricSweep()
	sw.Jobs = 50_000 // long enough to still be running when canceled
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	_, err := exp.Run(ctx, sw, exp.Options{Backend: &Backend{Addr: addr}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitFor(t, "job canceled on dispatcher", 5*time.Second, func() bool {
		jobs := d.Jobs()
		return len(jobs) == 1 && jobs[0].State == JobCanceled
	})
}

// TestFabricDetachedLifecycleAndCache is the psq lifecycle: submit a sweep
// detached, watch it run to completion via List, then resubmit the same
// sweep attached and observe it answered from the dispatcher's outcome
// cache — byte-identical to a pool run — plus the cancel error paths.
func TestFabricDetachedLifecycleAndCache(t *testing.T) {
	sw := fabricSweep()
	pool, err := exp.Run(context.Background(), sw, exp.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMemOutcomeCache()
	d, addr := startDispatcher(t, DispatcherOptions{Cache: cache})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w1"})
	startWorker(t, &Worker{Dispatcher: addr, Name: "w2"})

	tasks, err := sw.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	cl := &Client{Addr: addr}
	ctx := context.Background()
	id, err := cl.SubmitDetached(ctx, "warmup", exp.Env{Sweep: &sw}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "detached job to finish", 30*time.Second, func() bool {
		jobs, err := cl.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if j.ID == id {
				return j.State == JobDone && j.Done == len(tasks)
			}
		}
		t.Fatalf("job %s missing from list", id)
		return false
	})
	if cache.Len() != len(tasks) {
		t.Fatalf("detached run cached %d outcomes, want %d", cache.Len(), len(tasks))
	}

	// The resubmission must be answered from the cache, bit-identical.
	fab := runFabric(t, addr, sw)
	if resultJSON(t, pool) != resultJSON(t, fab) {
		t.Fatal("cache-served sweep differs from pool")
	}
	if d.CacheHits() != int64(len(tasks)) {
		t.Fatalf("CacheHits = %d, want %d", d.CacheHits(), len(tasks))
	}

	// Cancel error paths: unknown job is an error, finished job is a no-op.
	if err := cl.Cancel(ctx, "j999"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("cancel of unknown job: %v", err)
	}
	if err := cl.Cancel(ctx, id); err != nil {
		t.Fatalf("cancel of finished job should be a no-op, got %v", err)
	}
	jobs, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].State != JobDone || jobs[1].State != JobDone {
		t.Fatalf("unexpected final job list: %+v", jobs)
	}
}
