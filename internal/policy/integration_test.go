package policy

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// singleClassSource emits Poisson arrivals of one class only, for tests that
// reduce the model to a classical queue.
type singleClassSource struct {
	class  sim.Class
	lambda float64
	size   dist.Distribution
	arr    *xrand.Rand
	szr    *xrand.Rand
	clock  float64
}

func newSingleClassSource(class sim.Class, lambda float64, size dist.Distribution, seed uint64) *singleClassSource {
	return &singleClassSource{
		class: class, lambda: lambda, size: size,
		arr: xrand.NewStream(seed, 100), szr: xrand.NewStream(seed, 101),
	}
}

func (s *singleClassSource) Next() (sim.Arrival, bool) {
	s.clock += s.arr.Exp(s.lambda)
	return sim.Arrival{Time: s.clock, Class: s.class, Size: s.size.Sample(s.szr)}, true
}

// TestSimulatorMatchesMM1 reduces the model to M/M/1: only inelastic jobs on
// a single server under IF.
func TestSimulatorMatchesMM1(t *testing.T) {
	lambda, mu := 0.7, 1.0
	src := newSingleClassSource(sim.Inelastic, lambda, dist.NewExponential(mu), 42)
	res := sim.Run(sim.RunConfig{
		K: 1, Policy: InelasticFirst{}, Source: src,
		WarmupJobs: 20000, MaxJobs: 400000,
	})
	want := queueing.NewMM1(lambda, mu).MeanResponse()
	if relErr(res.MeanTI, want) > 0.03 {
		t.Fatalf("M/M/1 E[T]: sim %v, theory %v", res.MeanTI, want)
	}
}

// TestSimulatorMatchesFastMM1 reduces the model to an M/M/1 with service
// rate k*mu: only elastic jobs on k servers (Observation 1 of Section 5.2).
func TestSimulatorMatchesFastMM1(t *testing.T) {
	k := 4
	lambda, mu := 2.0, 1.0 // rho = 2/(4*1) = 0.5
	src := newSingleClassSource(sim.Elastic, lambda, dist.NewExponential(mu), 43)
	res := sim.Run(sim.RunConfig{
		K: k, Policy: ElasticFirst{}, Source: src,
		WarmupJobs: 20000, MaxJobs: 400000,
	})
	want := queueing.NewMM1(lambda, float64(k)*mu).MeanResponse()
	if relErr(res.MeanTE, want) > 0.03 {
		t.Fatalf("fast M/M/1 E[T]: sim %v, theory %v", res.MeanTE, want)
	}
}

// TestSimulatorMatchesMMk reduces the model to M/M/k: only inelastic jobs on
// k servers (Appendix D's observation for IF).
func TestSimulatorMatchesMMk(t *testing.T) {
	k := 4
	lambda, mu := 3.0, 1.0 // rho = 0.75
	src := newSingleClassSource(sim.Inelastic, lambda, dist.NewExponential(mu), 44)
	res := sim.Run(sim.RunConfig{
		K: k, Policy: InelasticFirst{}, Source: src,
		WarmupJobs: 20000, MaxJobs: 400000,
	})
	want := queueing.NewMMk(lambda, mu, k).MeanResponse()
	if relErr(res.MeanTI, want) > 0.03 {
		t.Fatalf("M/M/k E[T]: sim %v, theory %v", res.MeanTI, want)
	}
}

// TestLittlesLawInSimulation checks E[N] = lambda E[T] on measured output of
// the full two-class model, which ties together the time-average and
// per-job sides of the metrics pipeline.
func TestLittlesLawInSimulation(t *testing.T) {
	model := workload.ModelForLoad(4, 0.7, 2.0, 1.0)
	for _, p := range []sim.Policy{InelasticFirst{}, ElasticFirst{}, Equi{}, &FCFS{}} {
		res := sim.Run(sim.RunConfig{
			K: model.K, Policy: p, Source: model.Source(45),
			WarmupJobs: 20000, MaxJobs: 300000,
		})
		lambda := model.LambdaI + model.LambdaE
		if relErr(res.MeanN, lambda*res.MeanT) > 0.03 {
			t.Fatalf("%s: E[N]=%v vs lambda*E[T]=%v", p.Name(), res.MeanN, lambda*res.MeanT)
		}
	}
}

// TestUtilizationMatchesLoad checks that work-conserving policies keep the
// servers busy at exactly the offered load in the long run.
func TestUtilizationMatchesLoad(t *testing.T) {
	model := workload.ModelForLoad(4, 0.6, 1.5, 1.0)
	for _, p := range []sim.Policy{InelasticFirst{}, ElasticFirst{}} {
		res := sim.Run(sim.RunConfig{
			K: model.K, Policy: p, Source: model.Source(46),
			WarmupJobs: 20000, MaxJobs: 300000,
		})
		if relErr(res.Metrics.Utilization(model.K), 0.6) > 0.03 {
			t.Fatalf("%s utilization %v, want 0.6", p.Name(), res.Metrics.Utilization(model.K))
		}
	}
}

// TestTheorem3SamplePathDominance is the coupled sample-path experiment:
// on identical arrival sequences, IF must never have more total work or more
// inelastic work than any policy in class P. This is a deterministic
// property of every sample path, so a single violation fails.
func TestTheorem3SamplePathDominance(t *testing.T) {
	rivals := []sim.Policy{
		ElasticFirst{}, &FCFS{},
		Threshold{Cap: 1}, Threshold{Cap: 2}, Threshold{Cap: 3},
		DeferElastic{},
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for _, muI := range []float64{0.5, 1.0, 2.0} {
			model := workload.ModelForLoad(4, 0.8, muI, 1.0)
			trace := model.Trace(seed, 4000)
			for _, rival := range rivals {
				rep := sim.CompareWork(model.K, trace, InelasticFirst{}, rival, 1e-7)
				if !rep.Dominates() {
					t.Fatalf("seed %d muI=%v: IF work dominance vs %s violated: %v (of %d checks)",
						seed, muI, rival.Name(), rep.Violations[0], rep.Checked)
				}
			}
		}
	}
}

// TestTheorem3DominanceIsNontrivial guards against a vacuous dominance
// checker: EF must NOT work-dominate IF on typical traces (the relation is
// strict in one direction).
func TestTheorem3DominanceIsNontrivial(t *testing.T) {
	model := workload.ModelForLoad(4, 0.8, 1.0, 1.0)
	trace := model.Trace(7, 4000)
	rep := sim.CompareWork(model.K, trace, ElasticFirst{}, InelasticFirst{}, 1e-7)
	if rep.Dominates() {
		t.Fatal("EF unexpectedly work-dominates IF; the checker may be vacuous")
	}
}

// TestTheorem5IFOptimalWhenInelasticSmaller: with muI >= muE, IF's mean
// response time must not exceed any rival's (within simulation noise).
func TestTheorem5IFOptimalWhenInelasticSmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("long stochastic comparison")
	}
	// DeferElastic is deliberately absent: idling policies can be unstable
	// at this load (their effective capacity is below k), so they are
	// exercised separately at low load in TestAppendixBIdlingDominated.
	rivals := []sim.Policy{
		ElasticFirst{}, &FCFS{}, Equi{},
		Threshold{Cap: 2},
	}
	for _, muI := range []float64{1.0, 2.0} {
		model := workload.ModelForLoad(4, 0.8, muI, 1.0)
		ifRes := sim.Run(sim.RunConfig{
			K: model.K, Policy: InelasticFirst{}, Source: model.Source(99),
			WarmupJobs: 15000, MaxJobs: 150000,
		})
		for _, rival := range rivals {
			res := sim.Run(sim.RunConfig{
				K: model.K, Policy: rival, Source: model.Source(99),
				WarmupJobs: 15000, MaxJobs: 150000,
			})
			// Allow 2% statistical slack; Theorem 5 says IF <= rival.
			if ifRes.MeanT > res.MeanT*1.02 {
				t.Fatalf("muI=%v: E[T_IF]=%v > E[T_%s]=%v", muI, ifRes.MeanT, rival.Name(), res.MeanT)
			}
		}
	}
}

// TestEFBeatsIFWhenElasticMuchSmaller reproduces the qualitative content of
// Theorem 6 in the arrivals setting: for muE >> muI and high load, EF's mean
// response time beats IF's.
func TestEFBeatsIFWhenElasticMuchSmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("long stochastic comparison")
	}
	model := workload.ModelForLoad(4, 0.9, 0.25, 1.0) // muI=0.25 << muE=1
	ifRes := sim.Run(sim.RunConfig{
		K: model.K, Policy: InelasticFirst{}, Source: model.Source(7),
		WarmupJobs: 30000, MaxJobs: 400000,
	})
	efRes := sim.Run(sim.RunConfig{
		K: model.K, Policy: ElasticFirst{}, Source: model.Source(7),
		WarmupJobs: 30000, MaxJobs: 400000,
	})
	if efRes.MeanT >= ifRes.MeanT {
		t.Fatalf("expected EF < IF at muI=0.25: EF=%v IF=%v", efRes.MeanT, ifRes.MeanT)
	}
}

// TestAppendixBIdlingDominated: the idling DeferElastic policy must be no
// better than its non-idling interchange (IF), per Theorem 12.
func TestAppendixBIdlingDominated(t *testing.T) {
	// Low load keeps the idling policy itself stable (its effective
	// capacity is below k, so high loads would blow up its queues).
	model := workload.ModelForLoad(2, 0.5, 1.0, 1.0)
	ifRes := sim.Run(sim.RunConfig{
		K: model.K, Policy: InelasticFirst{}, Source: model.Source(3),
		WarmupJobs: 10000, MaxJobs: 150000,
	})
	deferRes := sim.Run(sim.RunConfig{
		K: model.K, Policy: DeferElastic{}, Source: model.Source(3),
		WarmupJobs: 10000, MaxJobs: 150000,
	})
	if ifRes.MeanT > deferRes.MeanT*1.02 {
		t.Fatalf("idling policy beat IF: IF=%v defer=%v", ifRes.MeanT, deferRes.MeanT)
	}
}

// TestStabilityAppendixC: for rho < 1 every work-conserving policy keeps the
// system stable; the measured number in system stays bounded and arrivals
// are matched by completions.
func TestStabilityAppendixC(t *testing.T) {
	model := workload.ModelForLoad(4, 0.9, 0.5, 1.0)
	for _, p := range []sim.Policy{InelasticFirst{}, ElasticFirst{}, &FCFS{}} {
		res := sim.Run(sim.RunConfig{
			K: model.K, Policy: p, Source: model.Source(8),
			WarmupJobs: 20000, MaxJobs: 200000,
		})
		if math.IsNaN(res.MeanN) || res.MeanN > 1000 {
			t.Fatalf("%s: E[N]=%v suggests instability at rho=0.9", p.Name(), res.MeanN)
		}
	}
}

// TestSRPTKClairvoyantAdvantage: with known sizes SRPT-k should beat FCFS
// on mean response time (sanity for the clairvoyant baseline).
func TestSRPTKClairvoyantAdvantage(t *testing.T) {
	model := workload.ModelForLoad(4, 0.8, 1.0, 1.0)
	srpt := sim.Run(sim.RunConfig{
		K: model.K, Policy: &SRPTK{}, Source: model.Source(5),
		WarmupJobs: 10000, MaxJobs: 150000,
	})
	fcfs := sim.Run(sim.RunConfig{
		K: model.K, Policy: &FCFS{}, Source: model.Source(5),
		WarmupJobs: 10000, MaxJobs: 150000,
	})
	if srpt.MeanT >= fcfs.MeanT {
		t.Fatalf("SRPT-k (%v) not better than FCFS (%v)", srpt.MeanT, fcfs.MeanT)
	}
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func ExampleInelasticFirst() {
	model := workload.NewModel(4, 1, 1, 1, 1)
	res := sim.Run(sim.RunConfig{
		K: model.K, Policy: InelasticFirst{}, Source: model.Source(1),
		WarmupJobs: 1000, MaxJobs: 5000,
	})
	fmt.Println(res.Policy)
	// Output: IF
}
