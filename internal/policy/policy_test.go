package policy

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
)

// state builds a two-class scheduler state with i inelastic and j elastic
// jobs on k servers, arrival order by index (inelastic first).
func state(k, i, j int) (*sim.State, *sim.Allocation) {
	st := &sim.State{K: k, Classes: sim.TwoClassSpecs(), Queues: make([][]*sim.Job, 2)}
	for n := 0; n < i; n++ {
		st.Queues[sim.Inelastic] = append(st.Queues[sim.Inelastic],
			&sim.Job{ID: n, Class: sim.Inelastic, Arrival: float64(n)})
	}
	for n := 0; n < j; n++ {
		st.Queues[sim.Elastic] = append(st.Queues[sim.Elastic],
			&sim.Job{ID: i + n, Class: sim.Elastic, Arrival: float64(i + n)})
	}
	alloc := &sim.Allocation{Classes: [][]float64{make([]float64, i), make([]float64, j)}}
	return st, alloc
}

// mcState builds a state over explicit class specs with the given queue
// lengths, arrivals ordered by (class, index).
func mcState(k int, classes []sim.ClassSpec, counts ...int) (*sim.State, *sim.Allocation) {
	st := &sim.State{K: k, Classes: classes, Queues: make([][]*sim.Job, len(classes))}
	alloc := &sim.Allocation{Classes: make([][]float64, len(classes))}
	id := 0
	for c, n := range counts {
		for i := 0; i < n; i++ {
			st.Queues[c] = append(st.Queues[c], &sim.Job{ID: id, Class: sim.Class(c), Arrival: float64(id)})
			id++
		}
		alloc.Classes[c] = make([]float64, n)
	}
	return st, alloc
}

func inelasticAlloc(a *sim.Allocation) []float64 { return a.Classes[sim.Inelastic] }
func elasticAlloc(a *sim.Allocation) []float64   { return a.Classes[sim.Elastic] }

func totalAlloc(a *sim.Allocation) float64 {
	s := 0.0
	for _, cls := range a.Classes {
		for _, v := range cls {
			s += v
		}
	}
	return s
}

func TestIFAllocations(t *testing.T) {
	cases := []struct {
		k, i, j          int
		wantI            []float64
		wantElasticTotal float64
	}{
		{4, 2, 1, []float64{1, 1}, 2},             // paper's canonical split
		{4, 0, 3, nil, 4},                         // all servers to the head elastic job
		{4, 6, 2, []float64{1, 1, 1, 1, 0, 0}, 0}, // saturated by inelastic
		{4, 4, 1, []float64{1, 1, 1, 1}, 0},
		{4, 3, 0, []float64{1, 1, 1}, 0},
	}
	for _, c := range cases {
		st, alloc := state(c.k, c.i, c.j)
		InelasticFirst{}.Allocate(st, alloc)
		for idx, want := range c.wantI {
			if inelasticAlloc(alloc)[idx] != want {
				t.Fatalf("IF k=%d (i=%d,j=%d): inelastic[%d]=%v want %v",
					c.k, c.i, c.j, idx, inelasticAlloc(alloc)[idx], want)
			}
		}
		et := 0.0
		for _, v := range elasticAlloc(alloc) {
			et += v
		}
		if et != c.wantElasticTotal {
			t.Fatalf("IF k=%d (i=%d,j=%d): elastic total %v want %v", c.k, c.i, c.j, et, c.wantElasticTotal)
		}
		// Head-of-line elastic job gets everything.
		if c.j > 1 && elasticAlloc(alloc)[1] != 0 {
			t.Fatal("IF split elastic allocation beyond the head job")
		}
	}
}

func TestEFAllocations(t *testing.T) {
	st, alloc := state(4, 3, 2)
	ElasticFirst{}.Allocate(st, alloc)
	if elasticAlloc(alloc)[0] != 4 || elasticAlloc(alloc)[1] != 0 {
		t.Fatalf("EF elastic alloc %v", elasticAlloc(alloc))
	}
	for i, v := range inelasticAlloc(alloc) {
		if v != 0 {
			t.Fatalf("EF gave inelastic[%d]=%v with elastic present", i, v)
		}
	}
	st, alloc = state(4, 6, 0)
	ElasticFirst{}.Allocate(st, alloc)
	want := []float64{1, 1, 1, 1, 0, 0}
	for i, v := range want {
		if inelasticAlloc(alloc)[i] != v {
			t.Fatalf("EF inelastic alloc %v", inelasticAlloc(alloc))
		}
	}
}

func TestFCFSBlocksOnElastic(t *testing.T) {
	// Arrival order: inelastic(0), elastic(1), inelastic(2). FCFS gives
	// the first inelastic 1 server, then the elastic takes all remaining,
	// starving the later inelastic.
	st := &sim.State{K: 4, Classes: sim.TwoClassSpecs(), Queues: [][]*sim.Job{
		{{ID: 0, Arrival: 0}, {ID: 2, Arrival: 2}},
		{{ID: 1, Class: sim.Elastic, Arrival: 1}},
	}}
	alloc := &sim.Allocation{Classes: [][]float64{make([]float64, 2), make([]float64, 1)}}
	(&FCFS{}).Allocate(st, alloc)
	if inelasticAlloc(alloc)[0] != 1 || elasticAlloc(alloc)[0] != 3 || inelasticAlloc(alloc)[1] != 0 {
		t.Fatalf("FCFS alloc I=%v E=%v", inelasticAlloc(alloc), elasticAlloc(alloc))
	}
}

func TestEquiWaterFilling(t *testing.T) {
	// k=4, 2 inelastic + 2 elastic: share=1 each, no excess.
	st, alloc := state(4, 2, 2)
	Equi{}.Allocate(st, alloc)
	for _, v := range inelasticAlloc(alloc) {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("EQUI inelastic %v", inelasticAlloc(alloc))
		}
	}
	for _, v := range elasticAlloc(alloc) {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("EQUI elastic %v", elasticAlloc(alloc))
		}
	}
	// k=8, 1 inelastic + 1 elastic: inelastic capped at 1, elastic gets 7.
	st, alloc = state(8, 1, 1)
	Equi{}.Allocate(st, alloc)
	if inelasticAlloc(alloc)[0] != 1 || elasticAlloc(alloc)[0] != 7 {
		t.Fatalf("EQUI cap redistribution I=%v E=%v", inelasticAlloc(alloc), elasticAlloc(alloc))
	}
	// Oversubscribed: k=2, 4 inelastic: each gets 1/2.
	st, alloc = state(2, 4, 0)
	Equi{}.Allocate(st, alloc)
	for _, v := range inelasticAlloc(alloc) {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("EQUI oversubscribed %v", inelasticAlloc(alloc))
		}
	}
}

// TestEquiWaterFillingCapped: a cap-2 middle class takes min(share, 2) and
// the elastic class soaks up the slack.
func TestEquiWaterFillingCapped(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "rigid", Speedup: sim.InelasticSpeedup()},
		{Name: "cap2", Speedup: sim.CappedSpeedup(2)},
		{Name: "elastic", Speedup: sim.LinearSpeedup()},
	}
	// k=12, one job per class: share=4; rigid takes 1, cap2 takes 2,
	// elastic takes 12-3 = 9.
	st, alloc := mcState(12, classes, 1, 1, 1)
	Equi{}.Allocate(st, alloc)
	if alloc.Classes[0][0] != 1 || alloc.Classes[1][0] != 2 || alloc.Classes[2][0] != 9 {
		t.Fatalf("EQUI capped water-fill %v", alloc.Classes)
	}
}

func TestGreedyMatchesIFAndEF(t *testing.T) {
	st, allocG := state(4, 2, 2)
	_, allocIF := state(4, 2, 2)
	Greedy{MuI: 2, MuE: 1}.Allocate(st, allocG)
	InelasticFirst{}.Allocate(st, allocIF)
	for i := range inelasticAlloc(allocG) {
		if inelasticAlloc(allocG)[i] != inelasticAlloc(allocIF)[i] {
			t.Fatal("GREEDY with muI>muE differs from IF")
		}
	}
	_, allocG2 := state(4, 2, 2)
	_, allocEF := state(4, 2, 2)
	Greedy{MuI: 1, MuE: 2}.Allocate(st, allocG2)
	ElasticFirst{}.Allocate(st, allocEF)
	if elasticAlloc(allocG2)[0] != elasticAlloc(allocEF)[0] {
		t.Fatal("GREEDY with muE>muI differs from EF")
	}
}

func TestThresholdEndpoints(t *testing.T) {
	st, allocT := state(4, 3, 1)
	Threshold{Cap: 4}.Allocate(st, allocT)
	_, allocIF := state(4, 3, 1)
	InelasticFirst{}.Allocate(st, allocIF)
	for i := range inelasticAlloc(allocT) {
		if inelasticAlloc(allocT)[i] != inelasticAlloc(allocIF)[i] {
			t.Fatal("Threshold(k) differs from IF")
		}
	}
	st, allocT = state(4, 3, 1)
	Threshold{Cap: 0}.Allocate(st, allocT)
	if elasticAlloc(allocT)[0] != 4 {
		t.Fatal("Threshold(0) differs from EF when elastic present")
	}
	// Without elastic jobs the cap is lifted (work conservation).
	st, allocT = state(4, 3, 0)
	Threshold{Cap: 0}.Allocate(st, allocT)
	if inelasticAlloc(allocT)[0] != 1 {
		t.Fatal("Threshold(0) idles servers with no elastic jobs")
	}
	// Intermediate cap.
	st, allocT = state(4, 3, 1)
	Threshold{Cap: 2}.Allocate(st, allocT)
	if inelasticAlloc(allocT)[0] != 1 || inelasticAlloc(allocT)[1] != 1 || inelasticAlloc(allocT)[2] != 0 {
		t.Fatalf("Threshold(2) inelastic %v", inelasticAlloc(allocT))
	}
	if elasticAlloc(allocT)[0] != 2 {
		t.Fatalf("Threshold(2) elastic %v", elasticAlloc(allocT))
	}
}

func TestDeferElasticIdles(t *testing.T) {
	st, alloc := state(4, 1, 1)
	DeferElastic{}.Allocate(st, alloc)
	if inelasticAlloc(alloc)[0] != 1 || elasticAlloc(alloc)[0] != 0 {
		t.Fatalf("DeferElastic alloc I=%v E=%v", inelasticAlloc(alloc), elasticAlloc(alloc))
	}
	if totalAlloc(alloc) != 1 {
		t.Fatal("DeferElastic should idle 3 servers here")
	}
	st, alloc = state(4, 0, 2)
	DeferElastic{}.Allocate(st, alloc)
	if elasticAlloc(alloc)[0] != 4 {
		t.Fatal("DeferElastic must serve elastic when no inelastic present")
	}
}

func TestSRPTKOrdersBySize(t *testing.T) {
	st := &sim.State{K: 4, Classes: sim.TwoClassSpecs(), Queues: [][]*sim.Job{
		{{ID: 0, Remaining: 5}, {ID: 1, Remaining: 0.5}},
		{{ID: 2, Class: sim.Elastic, Remaining: 2}},
	}}
	alloc := &sim.Allocation{Classes: [][]float64{make([]float64, 2), make([]float64, 1)}}
	(&SRPTK{}).Allocate(st, alloc)
	// Order: inelastic(0.5) first (1 server), elastic(2) next (3 servers),
	// inelastic(5) starved.
	if inelasticAlloc(alloc)[1] != 1 || elasticAlloc(alloc)[0] != 3 || inelasticAlloc(alloc)[0] != 0 {
		t.Fatalf("SRPT-k alloc I=%v E=%v", inelasticAlloc(alloc), elasticAlloc(alloc))
	}
}

// TestClassPriorityName pins the parseable PRIO name format.
func TestClassPriorityName(t *testing.T) {
	if got := (ClassPriority{Order: []int{2, 0, 1}}).Name(); got != "PRIO:2>0>1" {
		t.Fatalf("ClassPriority name %q", got)
	}
}

// TestClassPriorityRobustOrder: a partial or out-of-range Order must not
// panic the allocator — unlisted classes get nothing, bogus indices are
// ignored (resolution layers reject such orders up front).
func TestClassPriorityRobustOrder(t *testing.T) {
	st, alloc := state(4, 2, 2)
	ClassPriority{Order: []int{1}}.Allocate(st, alloc)
	if elasticAlloc(alloc)[0] != 4 || inelasticAlloc(alloc)[0] != 0 {
		t.Fatalf("partial order alloc I=%v E=%v", inelasticAlloc(alloc), elasticAlloc(alloc))
	}
	st, alloc = state(4, 2, 2)
	ClassPriority{Order: []int{7, 0, -1, 1}}.Allocate(st, alloc)
	if inelasticAlloc(alloc)[0] != 1 || elasticAlloc(alloc)[0] != 2 {
		t.Fatalf("out-of-range order alloc I=%v E=%v", inelasticAlloc(alloc), elasticAlloc(alloc))
	}
	// Duplicated entries must not double-subtract capacity: the full k
	// servers still flow to the queues.
	st, alloc = state(4, 2, 2)
	ClassPriority{Order: []int{0, 0, 1}}.Allocate(st, alloc)
	if got := totalAlloc(alloc); got != 4 {
		t.Fatalf("duplicate order allocated %v of 4 servers (I=%v E=%v)",
			got, inelasticAlloc(alloc), elasticAlloc(alloc))
	}
}

// TestEquiWorkConservingAllCapped: with no fully elastic class, EQUI must
// water-fill the excess over capped jobs below their caps instead of
// stranding it (the cappedladder preset regression).
func TestEquiWorkConservingAllCapped(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "cap1", Speedup: sim.CappedSpeedup(1)},
		{Name: "cap8", Speedup: sim.CappedSpeedup(8)},
	}
	// k=8, one job each: share=4 → cap1 takes 1, cap8 takes 4, then the
	// stranded 3 refill onto the cap8 job: 1 + 7 = 8 allocated.
	st, alloc := mcState(8, classes, 1, 1)
	Equi{}.Allocate(st, alloc)
	if alloc.Classes[0][0] != 1 || math.Abs(alloc.Classes[1][0]-7) > 1e-12 {
		t.Fatalf("EQUI all-capped water-fill %v", alloc.Classes)
	}
	// Saturated: k=8, 4 cap-1 jobs and 1 cap-2 job: everyone at cap,
	// 8-6 = 2 genuinely strand.
	st, alloc = mcState(8, []sim.ClassSpec{
		{Name: "cap1", Speedup: sim.CappedSpeedup(1)},
		{Name: "cap2", Speedup: sim.CappedSpeedup(2)},
	}, 4, 1)
	Equi{}.Allocate(st, alloc)
	if alloc.Classes[0][0] != 1 || alloc.Classes[1][0] != 2 {
		t.Fatalf("EQUI saturated caps %v", alloc.Classes)
	}
}

// TestLFFOrderingOnLadder: LFF must allocate strictly by ascending cap on a
// capped ladder, independent of class index order.
func TestLFFOrderingOnLadder(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "elastic", Speedup: sim.LinearSpeedup()},
		{Name: "cap2", Speedup: sim.CappedSpeedup(2)},
		{Name: "cap1", Speedup: sim.CappedSpeedup(1)},
	}
	// k=4, one job each: cap1 job gets 1, cap2 job gets 2, elastic gets 1.
	st, alloc := mcState(4, classes, 1, 1, 1)
	lff := &LeastFlexibleFirst{}
	lff.Allocate(st, alloc)
	if alloc.Classes[2][0] != 1 || alloc.Classes[1][0] != 2 || alloc.Classes[0][0] != 1 {
		t.Fatalf("LFF ladder alloc %v", alloc.Classes)
	}
	// Second call reuses the maintained order (same class slice identity).
	for c := range alloc.Classes {
		for i := range alloc.Classes[c] {
			alloc.Classes[c][i] = 0
		}
	}
	lff.Allocate(st, alloc)
	if alloc.Classes[1][0] != 2 {
		t.Fatalf("LFF maintained-order re-allocation broke: %v", alloc.Classes)
	}
}

// TestSMFOrderingByMeanSize: SMF must allocate strictly by ascending mean
// job size.
func TestSMFOrderingByMeanSize(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "big", Speedup: sim.InelasticSpeedup(), Size: dist.NewExponential(0.5)},
		{Name: "small", Speedup: sim.InelasticSpeedup(), Size: dist.NewExponential(4)},
	}
	// k=1, one job each: only the small-mean class is served.
	st, alloc := mcState(1, classes, 1, 1)
	(&SmallestMeanFirst{}).Allocate(st, alloc)
	if alloc.Classes[0][0] != 0 || alloc.Classes[1][0] != 1 {
		t.Fatalf("SMF alloc %v", alloc.Classes)
	}
}

// TestAllPoliciesFeasible drives every policy through a randomized state
// space checking the model constraints the engine enforces.
func TestAllPoliciesFeasible(t *testing.T) {
	policies := []sim.Policy{
		InelasticFirst{}, ElasticFirst{}, &FCFS{}, Equi{},
		Greedy{MuI: 1, MuE: 2}, Greedy{MuI: 2, MuE: 1},
		Threshold{Cap: 0}, Threshold{Cap: 2}, Threshold{Cap: 4},
		DeferElastic{}, &SRPTK{},
		ClassPriority{Order: []int{1, 0}}, &LeastFlexibleFirst{},
	}
	for _, p := range policies {
		for k := 1; k <= 6; k++ {
			for i := 0; i <= 2*k; i++ {
				for j := 0; j <= 2*k; j++ {
					st, alloc := state(k, i, j)
					p.Allocate(st, alloc)
					total := 0.0
					for _, v := range inelasticAlloc(alloc) {
						if v < 0 || v > 1+1e-12 {
							t.Fatalf("%s k=%d (%d,%d): inelastic alloc %v", p.Name(), k, i, j, v)
						}
						total += v
					}
					for _, v := range elasticAlloc(alloc) {
						if v < 0 {
							t.Fatalf("%s k=%d (%d,%d): negative elastic alloc", p.Name(), k, i, j)
						}
						total += v
					}
					if total > float64(k)+1e-9 {
						t.Fatalf("%s k=%d (%d,%d): total alloc %v > k", p.Name(), k, i, j, total)
					}
				}
			}
		}
	}
}

// TestWorkConservingPolicies checks the Section 2 work-conservation
// definition for the policies in class P: with elastic jobs present all k
// servers run; without, min(i, k) servers run.
func TestWorkConservingPolicies(t *testing.T) {
	policies := []sim.Policy{
		InelasticFirst{}, ElasticFirst{}, &FCFS{},
		Threshold{Cap: 0}, Threshold{Cap: 1}, Threshold{Cap: 3}, Threshold{Cap: 4},
		&SRPTK{},
	}
	k := 4
	for _, p := range policies {
		for i := 0; i <= 8; i++ {
			for j := 0; j <= 8; j++ {
				st, alloc := state(k, i, j)
				// SRPTK sorts by Remaining; give jobs distinct sizes.
				for n, jb := range st.Queues[sim.Inelastic] {
					jb.Remaining = 1 + float64(n)
				}
				for n, jb := range st.Queues[sim.Elastic] {
					jb.Remaining = 0.5 + float64(n)
				}
				p.Allocate(st, alloc)
				total := totalAlloc(alloc)
				var want float64
				if j > 0 {
					want = float64(k)
				} else {
					want = math.Min(float64(i), float64(k))
				}
				if math.Abs(total-want) > 1e-9 {
					t.Fatalf("%s (i=%d,j=%d): total %v, work conservation wants %v", p.Name(), i, j, total, want)
				}
			}
		}
	}
}
