package policy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// state builds a scheduler state with i inelastic and j elastic jobs on k
// servers, arrival order by index (inelastic first).
func state(k, i, j int) (*sim.State, *sim.Allocation) {
	st := &sim.State{K: k}
	for n := 0; n < i; n++ {
		st.Inelastic = append(st.Inelastic, &sim.Job{ID: n, Class: sim.Inelastic, Arrival: float64(n)})
	}
	for n := 0; n < j; n++ {
		st.Elastic = append(st.Elastic, &sim.Job{ID: i + n, Class: sim.Elastic, Arrival: float64(i + n)})
	}
	alloc := &sim.Allocation{
		Inelastic: make([]float64, i),
		Elastic:   make([]float64, j),
	}
	return st, alloc
}

func totalAlloc(a *sim.Allocation) float64 {
	s := 0.0
	for _, v := range a.Inelastic {
		s += v
	}
	for _, v := range a.Elastic {
		s += v
	}
	return s
}

func TestIFAllocations(t *testing.T) {
	cases := []struct {
		k, i, j          int
		wantI            []float64
		wantElasticTotal float64
	}{
		{4, 2, 1, []float64{1, 1}, 2},             // paper's canonical split
		{4, 0, 3, nil, 4},                         // all servers to the head elastic job
		{4, 6, 2, []float64{1, 1, 1, 1, 0, 0}, 0}, // saturated by inelastic
		{4, 4, 1, []float64{1, 1, 1, 1}, 0},
		{4, 3, 0, []float64{1, 1, 1}, 0},
	}
	for _, c := range cases {
		st, alloc := state(c.k, c.i, c.j)
		InelasticFirst{}.Allocate(st, alloc)
		for idx, want := range c.wantI {
			if alloc.Inelastic[idx] != want {
				t.Fatalf("IF k=%d (i=%d,j=%d): inelastic[%d]=%v want %v",
					c.k, c.i, c.j, idx, alloc.Inelastic[idx], want)
			}
		}
		et := 0.0
		for _, v := range alloc.Elastic {
			et += v
		}
		if et != c.wantElasticTotal {
			t.Fatalf("IF k=%d (i=%d,j=%d): elastic total %v want %v", c.k, c.i, c.j, et, c.wantElasticTotal)
		}
		// Head-of-line elastic job gets everything.
		if c.j > 1 && alloc.Elastic[1] != 0 {
			t.Fatal("IF split elastic allocation beyond the head job")
		}
	}
}

func TestEFAllocations(t *testing.T) {
	st, alloc := state(4, 3, 2)
	ElasticFirst{}.Allocate(st, alloc)
	if alloc.Elastic[0] != 4 || alloc.Elastic[1] != 0 {
		t.Fatalf("EF elastic alloc %v", alloc.Elastic)
	}
	for i, v := range alloc.Inelastic {
		if v != 0 {
			t.Fatalf("EF gave inelastic[%d]=%v with elastic present", i, v)
		}
	}
	st, alloc = state(4, 6, 0)
	ElasticFirst{}.Allocate(st, alloc)
	want := []float64{1, 1, 1, 1, 0, 0}
	for i, v := range want {
		if alloc.Inelastic[i] != v {
			t.Fatalf("EF inelastic alloc %v", alloc.Inelastic)
		}
	}
}

func TestFCFSBlocksOnElastic(t *testing.T) {
	// Arrival order: inelastic(0), elastic(1), inelastic(2). FCFS gives
	// the first inelastic 1 server, then the elastic takes all remaining,
	// starving the later inelastic.
	st := &sim.State{K: 4}
	st.Inelastic = []*sim.Job{
		{ID: 0, Arrival: 0}, {ID: 2, Arrival: 2},
	}
	st.Elastic = []*sim.Job{{ID: 1, Arrival: 1}}
	alloc := &sim.Allocation{Inelastic: make([]float64, 2), Elastic: make([]float64, 1)}
	FCFS{}.Allocate(st, alloc)
	if alloc.Inelastic[0] != 1 || alloc.Elastic[0] != 3 || alloc.Inelastic[1] != 0 {
		t.Fatalf("FCFS alloc I=%v E=%v", alloc.Inelastic, alloc.Elastic)
	}
}

func TestEquiWaterFilling(t *testing.T) {
	// k=4, 2 inelastic + 2 elastic: share=1 each, no excess.
	st, alloc := state(4, 2, 2)
	Equi{}.Allocate(st, alloc)
	for _, v := range alloc.Inelastic {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("EQUI inelastic %v", alloc.Inelastic)
		}
	}
	for _, v := range alloc.Elastic {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("EQUI elastic %v", alloc.Elastic)
		}
	}
	// k=8, 1 inelastic + 1 elastic: inelastic capped at 1, elastic gets 7.
	st, alloc = state(8, 1, 1)
	Equi{}.Allocate(st, alloc)
	if alloc.Inelastic[0] != 1 || alloc.Elastic[0] != 7 {
		t.Fatalf("EQUI cap redistribution I=%v E=%v", alloc.Inelastic, alloc.Elastic)
	}
	// Oversubscribed: k=2, 4 inelastic: each gets 1/2.
	st, alloc = state(2, 4, 0)
	Equi{}.Allocate(st, alloc)
	for _, v := range alloc.Inelastic {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("EQUI oversubscribed %v", alloc.Inelastic)
		}
	}
}

func TestGreedyMatchesIFAndEF(t *testing.T) {
	st, allocG := state(4, 2, 2)
	_, allocIF := state(4, 2, 2)
	Greedy{MuI: 2, MuE: 1}.Allocate(st, allocG)
	InelasticFirst{}.Allocate(st, allocIF)
	for i := range allocG.Inelastic {
		if allocG.Inelastic[i] != allocIF.Inelastic[i] {
			t.Fatal("GREEDY with muI>muE differs from IF")
		}
	}
	_, allocG2 := state(4, 2, 2)
	_, allocEF := state(4, 2, 2)
	Greedy{MuI: 1, MuE: 2}.Allocate(st, allocG2)
	ElasticFirst{}.Allocate(st, allocEF)
	if allocG2.Elastic[0] != allocEF.Elastic[0] {
		t.Fatal("GREEDY with muE>muI differs from EF")
	}
}

func TestThresholdEndpoints(t *testing.T) {
	st, allocT := state(4, 3, 1)
	Threshold{Cap: 4}.Allocate(st, allocT)
	_, allocIF := state(4, 3, 1)
	InelasticFirst{}.Allocate(st, allocIF)
	for i := range allocT.Inelastic {
		if allocT.Inelastic[i] != allocIF.Inelastic[i] {
			t.Fatal("Threshold(k) differs from IF")
		}
	}
	st, allocT = state(4, 3, 1)
	Threshold{Cap: 0}.Allocate(st, allocT)
	if allocT.Elastic[0] != 4 {
		t.Fatal("Threshold(0) differs from EF when elastic present")
	}
	// Without elastic jobs the cap is lifted (work conservation).
	st, allocT = state(4, 3, 0)
	Threshold{Cap: 0}.Allocate(st, allocT)
	if allocT.Inelastic[0] != 1 {
		t.Fatal("Threshold(0) idles servers with no elastic jobs")
	}
	// Intermediate cap.
	st, allocT = state(4, 3, 1)
	Threshold{Cap: 2}.Allocate(st, allocT)
	if allocT.Inelastic[0] != 1 || allocT.Inelastic[1] != 1 || allocT.Inelastic[2] != 0 {
		t.Fatalf("Threshold(2) inelastic %v", allocT.Inelastic)
	}
	if allocT.Elastic[0] != 2 {
		t.Fatalf("Threshold(2) elastic %v", allocT.Elastic)
	}
}

func TestDeferElasticIdles(t *testing.T) {
	st, alloc := state(4, 1, 1)
	DeferElastic{}.Allocate(st, alloc)
	if alloc.Inelastic[0] != 1 || alloc.Elastic[0] != 0 {
		t.Fatalf("DeferElastic alloc I=%v E=%v", alloc.Inelastic, alloc.Elastic)
	}
	if totalAlloc(alloc) != 1 {
		t.Fatal("DeferElastic should idle 3 servers here")
	}
	st, alloc = state(4, 0, 2)
	DeferElastic{}.Allocate(st, alloc)
	if alloc.Elastic[0] != 4 {
		t.Fatal("DeferElastic must serve elastic when no inelastic present")
	}
}

func TestSRPTKOrdersBySize(t *testing.T) {
	st := &sim.State{K: 4}
	st.Inelastic = []*sim.Job{
		{ID: 0, Remaining: 5},
		{ID: 1, Remaining: 0.5},
	}
	st.Elastic = []*sim.Job{{ID: 2, Remaining: 2}}
	alloc := &sim.Allocation{Inelastic: make([]float64, 2), Elastic: make([]float64, 1)}
	SRPTK{}.Allocate(st, alloc)
	// Order: inelastic(0.5) first (1 server), elastic(2) next (3 servers),
	// inelastic(5) starved.
	if alloc.Inelastic[1] != 1 || alloc.Elastic[0] != 3 || alloc.Inelastic[0] != 0 {
		t.Fatalf("SRPT-k alloc I=%v E=%v", alloc.Inelastic, alloc.Elastic)
	}
}

// TestAllPoliciesFeasible drives every policy through a randomized state
// space checking the model constraints the engine enforces.
func TestAllPoliciesFeasible(t *testing.T) {
	policies := []sim.Policy{
		InelasticFirst{}, ElasticFirst{}, FCFS{}, Equi{},
		Greedy{MuI: 1, MuE: 2}, Greedy{MuI: 2, MuE: 1},
		Threshold{Cap: 0}, Threshold{Cap: 2}, Threshold{Cap: 4},
		DeferElastic{}, SRPTK{},
	}
	for _, p := range policies {
		for k := 1; k <= 6; k++ {
			for i := 0; i <= 2*k; i++ {
				for j := 0; j <= 2*k; j++ {
					st, alloc := state(k, i, j)
					p.Allocate(st, alloc)
					total := 0.0
					for _, v := range alloc.Inelastic {
						if v < 0 || v > 1+1e-12 {
							t.Fatalf("%s k=%d (%d,%d): inelastic alloc %v", p.Name(), k, i, j, v)
						}
						total += v
					}
					for _, v := range alloc.Elastic {
						if v < 0 {
							t.Fatalf("%s k=%d (%d,%d): negative elastic alloc", p.Name(), k, i, j)
						}
						total += v
					}
					if total > float64(k)+1e-9 {
						t.Fatalf("%s k=%d (%d,%d): total alloc %v > k", p.Name(), k, i, j, total)
					}
				}
			}
		}
	}
}

// TestWorkConservingPolicies checks the Section 2 work-conservation
// definition for the policies in class P: with elastic jobs present all k
// servers run; without, min(i, k) servers run.
func TestWorkConservingPolicies(t *testing.T) {
	policies := []sim.Policy{
		InelasticFirst{}, ElasticFirst{}, FCFS{},
		Threshold{Cap: 0}, Threshold{Cap: 1}, Threshold{Cap: 3}, Threshold{Cap: 4},
		SRPTK{},
	}
	k := 4
	for _, p := range policies {
		for i := 0; i <= 8; i++ {
			for j := 0; j <= 8; j++ {
				st, alloc := state(k, i, j)
				// SRPTK sorts by Remaining; give jobs distinct sizes.
				for n, jb := range st.Inelastic {
					jb.Remaining = 1 + float64(n)
				}
				for n, jb := range st.Elastic {
					jb.Remaining = 0.5 + float64(n)
				}
				p.Allocate(st, alloc)
				total := totalAlloc(alloc)
				var want float64
				if j > 0 {
					want = float64(k)
				} else {
					want = math.Min(float64(i), float64(k))
				}
				if math.Abs(total-want) > 1e-9 {
					t.Fatalf("%s (i=%d,j=%d): total %v, work conservation wants %v", p.Name(), i, j, total, want)
				}
			}
		}
	}
}
