// Package policy implements the server-allocation policies studied in the
// paper plus the baseline and ablation families used in the optimality
// experiments.
//
// All policies are stationary, deterministic and (except DeferElastic,
// which exists to demonstrate Appendix B) work-conserving. The paper's
// headline policies are:
//
//   - InelasticFirst (IF): strict preemptive priority to inelastic jobs;
//     optimal for mean response time whenever muI >= muE (Theorems 1, 5).
//   - ElasticFirst (EF): strict preemptive priority to elastic jobs; can
//     beat IF when muI < muE (Theorem 6).
//
// Within a class every policy serves FCFS, matching the class P of
// Section 4.2.
package policy

import (
	"fmt"

	"repro/internal/sim"
)

// InelasticFirst returns the IF policy: in state (i, j) with i < k, each
// inelastic job receives one server and the earliest-arriving elastic job
// receives the remaining k-i; with i >= k the k earliest inelastic jobs are
// served.
type InelasticFirst struct{}

// Name implements sim.Policy.
func (InelasticFirst) Name() string { return "IF" }

// Allocate implements sim.Policy.
func (InelasticFirst) Allocate(st *sim.State, alloc *sim.Allocation) {
	remaining := float64(st.K)
	for i := range st.Inelastic {
		if remaining <= 0 {
			break
		}
		alloc.Inelastic[i] = 1
		remaining--
	}
	if remaining > 0 && len(st.Elastic) > 0 {
		alloc.Elastic[0] = remaining
	}
}

// ElasticFirst returns the EF policy: whenever an elastic job is present,
// the earliest-arriving one receives all k servers; otherwise inelastic jobs
// are served FCFS, one server each.
type ElasticFirst struct{}

// Name implements sim.Policy.
func (ElasticFirst) Name() string { return "EF" }

// Allocate implements sim.Policy.
func (ElasticFirst) Allocate(st *sim.State, alloc *sim.Allocation) {
	if len(st.Elastic) > 0 {
		alloc.Elastic[0] = float64(st.K)
		return
	}
	remaining := float64(st.K)
	for i := range st.Inelastic {
		if remaining <= 0 {
			break
		}
		alloc.Inelastic[i] = 1
		remaining--
	}
}

// FCFS serves jobs of both classes in one global first-come-first-serve
// order: walking jobs by arrival time, an inelastic job claims one server
// and an elastic job claims everything left (blocking later jobs). It is a
// natural cluster-scheduler baseline outside the paper's two headline
// policies.
type FCFS struct{}

// Name implements sim.Policy.
func (FCFS) Name() string { return "FCFS" }

// Allocate implements sim.Policy.
func (FCFS) Allocate(st *sim.State, alloc *sim.Allocation) {
	remaining := float64(st.K)
	ii, ei := 0, 0
	for remaining > 0 && (ii < len(st.Inelastic) || ei < len(st.Elastic)) {
		takeInelastic := ei >= len(st.Elastic)
		if !takeInelastic && ii < len(st.Inelastic) {
			takeInelastic = st.Inelastic[ii].Arrival <= st.Elastic[ei].Arrival
		}
		if takeInelastic {
			alloc.Inelastic[ii] = 1
			remaining--
			ii++
		} else {
			alloc.Elastic[ei] = remaining
			remaining = 0
			ei++
		}
	}
}

// Equi is generalized processor sharing: every job in the system receives an
// equal share k/n of the servers, with inelastic shares capped at one server
// and the excess redistributed to elastic jobs (water-filling). It is the
// stochastic analogue of the EQUI algorithm from the worst-case literature
// discussed in Sections 1.4 and 3.
type Equi struct{}

// Name implements sim.Policy.
func (Equi) Name() string { return "EQUI" }

// Allocate implements sim.Policy.
func (Equi) Allocate(st *sim.State, alloc *sim.Allocation) {
	nI, nE := len(st.Inelastic), len(st.Elastic)
	n := nI + nE
	if n == 0 {
		return
	}
	share := float64(st.K) / float64(n)
	inelasticShare := share
	if inelasticShare > 1 {
		inelasticShare = 1
	}
	for i := range st.Inelastic {
		alloc.Inelastic[i] = inelasticShare
	}
	if nE > 0 {
		perElastic := (float64(st.K) - float64(nI)*inelasticShare) / float64(nE)
		for i := range st.Elastic {
			alloc.Elastic[i] = perElastic
		}
	}
	// With no elastic jobs present the inelastic cap may strand capacity;
	// that is inherent to the model (inelastic jobs cannot use more than
	// one server) and EQUI remains work-conserving in the paper's sense.
}

// Greedy maximizes the instantaneous total departure rate
// piI*muI + piE*muE (the GREEDY class of [7] referenced in Theorem 1).
// When MuI >= MuE it allocates like IF; otherwise like EF with inelastic
// jobs soaking up leftover servers. Ties favor inelastic jobs, which makes
// this implementation simultaneously a member of GREEDY* (minimal elastic
// allocation among GREEDY policies).
type Greedy struct {
	MuI, MuE float64
}

// Name implements sim.Policy.
func (g Greedy) Name() string { return fmt.Sprintf("GREEDY(muI=%g,muE=%g)", g.MuI, g.MuE) }

// Allocate implements sim.Policy.
func (g Greedy) Allocate(st *sim.State, alloc *sim.Allocation) {
	if g.MuI >= g.MuE {
		InelasticFirst{}.Allocate(st, alloc)
		return
	}
	// muE > muI: all servers to the elastic head job maximizes rate;
	// leftovers (j = 0) go to inelastic jobs.
	ElasticFirst{}.Allocate(st, alloc)
}

// Threshold interpolates between EF and IF: when elastic jobs are present,
// inelastic jobs receive at most Cap servers (FCFS) and the elastic head job
// receives the rest; with no elastic jobs, inelastic jobs are served on all
// k servers. Cap = k reproduces IF and Cap = 0 reproduces EF, so scanning
// Cap provides the policy family for the optimality experiments of
// Section 4.
type Threshold struct {
	Cap int
}

// Name implements sim.Policy.
func (t Threshold) Name() string { return fmt.Sprintf("THRESH(%d)", t.Cap) }

// Allocate implements sim.Policy.
func (t Threshold) Allocate(st *sim.State, alloc *sim.Allocation) {
	remaining := float64(st.K)
	capLeft := float64(t.Cap)
	if len(st.Elastic) == 0 {
		capLeft = remaining
	}
	for i := range st.Inelastic {
		if remaining <= 0 || capLeft <= 0 {
			break
		}
		alloc.Inelastic[i] = 1
		remaining--
		capLeft--
	}
	if remaining > 0 && len(st.Elastic) > 0 {
		alloc.Elastic[0] = remaining
	}
}

// DeferElastic is the deliberately idling policy used to exercise the
// Appendix B interchange argument: when any inelastic job is present it
// serves only inelastic jobs and idles every server that IF would have given
// to an elastic job. Theorem 12 implies it is weakly dominated by IF.
type DeferElastic struct{}

// Name implements sim.Policy.
func (DeferElastic) Name() string { return "DEFER-E(idling)" }

// Allocate implements sim.Policy.
func (DeferElastic) Allocate(st *sim.State, alloc *sim.Allocation) {
	remaining := float64(st.K)
	for i := range st.Inelastic {
		if remaining <= 0 {
			break
		}
		alloc.Inelastic[i] = 1
		remaining--
	}
	if len(st.Inelastic) == 0 && len(st.Elastic) > 0 {
		alloc.Elastic[0] = float64(st.K)
	}
}

// SRPTK is a size-aware baseline extending SRPT-k (Section 1.4, [18]) to
// the elastic/inelastic model: jobs are prioritized by remaining size;
// an inelastic job claims one server, an elastic job claims all servers
// left after smaller jobs. It requires known sizes, which the paper's
// stochastic setting forbids — it is included as the clairvoyant reference
// point.
type SRPTK struct{}

// Name implements sim.Policy.
func (SRPTK) Name() string { return "SRPT-k" }

// Allocate implements sim.Policy.
func (SRPTK) Allocate(st *sim.State, alloc *sim.Allocation) {
	type ref struct {
		remaining float64
		elastic   bool
		idx       int
	}
	jobs := make([]ref, 0, len(st.Inelastic)+len(st.Elastic))
	for i, j := range st.Inelastic {
		jobs = append(jobs, ref{j.Remaining, false, i})
	}
	for i, j := range st.Elastic {
		jobs = append(jobs, ref{j.Remaining, true, i})
	}
	// Insertion sort by remaining size; job counts are small and the
	// allocation is recomputed at every event, so avoiding sort.Slice
	// keeps the hot path allocation-free.
	for i := 1; i < len(jobs); i++ {
		for p := i; p > 0 && jobs[p].remaining < jobs[p-1].remaining; p-- {
			jobs[p], jobs[p-1] = jobs[p-1], jobs[p]
		}
	}
	remaining := float64(st.K)
	for _, j := range jobs {
		if remaining <= 0 {
			break
		}
		if j.elastic {
			alloc.Elastic[j.idx] = remaining
			remaining = 0
		} else {
			alloc.Inelastic[j.idx] = 1
			remaining--
		}
	}
}
