// Package policy implements the server-allocation policies studied in the
// paper plus the baseline and ablation families used in the optimality
// experiments, all expressed over the unified N-class engine: a policy
// receives per-class FCFS queues (sim.State.Queues) and fills a per-class
// allocation matrix.
//
// The paper's headline policies are members of the strict class-priority
// family (ClassPriority): walk the classes in a fixed order and give each
// job up to its class's saturation cap until the servers run out.
//
//   - InelasticFirst (IF): priority by ascending class index — on the
//     two-class preset, strict preemptive priority to inelastic jobs;
//     optimal for mean response time whenever muI >= muE (Theorems 1, 5).
//   - ElasticFirst (EF): priority by descending class index — on the
//     two-class preset, strict preemptive priority to elastic jobs; can
//     beat IF when muI < muE (Theorem 6).
//   - LeastFlexibleFirst (LFF): priority by ascending saturation cap — the
//     Section 6 generalization of IF's "defer the flexible work" intuition.
//   - SmallestMeanFirst (SMF): priority by ascending mean job size — the
//     generalization suggested by Theorems 1 and 5.
//
// All policies are stationary, deterministic and (except DeferElastic,
// which exists to demonstrate Appendix B) work-conserving. Within a class
// every policy serves FCFS, matching the class P of Section 4.2. Class
// orderings that depend on the class set (LFF, SMF) are computed once and
// maintained across events rather than re-sorted per event, keeping every
// Allocate call allocation-free in steady state.
//
// Policies whose served set is small regardless of occupancy — the strict
// class-priority family, FCFS, THRESH, GREEDY and DEFER — additionally
// implement sim.SparsePolicy: AllocateSparse reports the same decision as
// Allocate as an explicit write-set, which is what lets the incremental
// engine step in O(changed · log n). EQUI's equal split touches every job,
// so it implements sim.ClassSharePolicy instead: ClassShares reports the
// water-filled per-class share vector and the engine tracks whole classes
// on virtual-time coordinates. SRPT-k must read settled remaining sizes, so
// it is marked sim.RemainingOrderedPolicy and the engine executes its rule
// natively on an indexed heap. The cross-engine equivalence suite in
// internal/sim holds every policy's faces together, and the dense faces
// stay reachable forever through sim.Options.ForceDense / SIM_FORCE_DENSE.
package policy

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// Compile-time checks: every member of the sparse family keeps both faces.
// EQUI's fast face is the class-share vector and SRPT-k's is the
// remaining-order marker (see the package comment); their dense faces stay
// reachable through sim.Options.ForceDense.
var (
	_ sim.SparsePolicy           = InelasticFirst{}
	_ sim.SparsePolicy           = ElasticFirst{}
	_ sim.SparsePolicy           = ClassPriority{}
	_ sim.SparsePolicy           = (*LeastFlexibleFirst)(nil)
	_ sim.SparsePolicy           = (*SmallestMeanFirst)(nil)
	_ sim.SparsePolicy           = (*FCFS)(nil)
	_ sim.SparsePolicy           = Greedy{}
	_ sim.SparsePolicy           = Threshold{}
	_ sim.SparsePolicy           = DeferElastic{}
	_ sim.ClassSharePolicy       = Equi{}
	_ sim.RemainingOrderedPolicy = (*SRPTK)(nil)
)

// The strict class-priority family additionally implements
// sim.ArrivalShadowPolicy: its walk order is a function of the class set
// alone (never of arrival times or sizes), so "would a tail arrival to
// class c receive anything" reduces to comparing c's walk position against
// the position where the previous walk's budget ran out. FCFS, THRESH and
// DEFER are deliberately excluded — their walks depend on arrival-time
// ties or on which classes are occupied, which a single walk position
// cannot summarize soundly.
var (
	_ sim.ArrivalShadowPolicy = InelasticFirst{}
	_ sim.ArrivalShadowPolicy = ElasticFirst{}
	_ sim.ArrivalShadowPolicy = ClassPriority{}
	_ sim.ArrivalShadowPolicy = (*LeastFlexibleFirst)(nil)
	_ sim.ArrivalShadowPolicy = (*SmallestMeanFirst)(nil)
	_ sim.ArrivalShadowPolicy = Greedy{}
)

// orderShadowed is the shared shadow test for order-walk policies: a new
// class-c job joins the tail of its class queue, so the walk reaches it
// after every job the previous walk served at positions < exhaustedAt and
// after class c's existing jobs at position orderPos. If the budget died at
// or before c's walk position, the walk dies at the same job it died at
// before (nothing earlier changed), and the arrival provably receives
// nothing. Classes absent from a non-nil order are never served, so
// arrivals to them are always shadowed.
func orderShadowed(exhaustedAt int, c sim.Class, order []int) bool {
	if order == nil {
		return exhaustedAt <= int(c)
	}
	for i, o := range order {
		if o == int(c) {
			return exhaustedAt <= i
		}
	}
	return true
}

// priorityAllocate walks classes in the given order (nil means ascending
// class index), giving each job in FCFS order up to its class's saturation
// cap until the servers run out. Order entries outside the class set are
// ignored and classes absent from a non-nil order receive nothing (strict
// priority over the listed classes only); resolution layers validate full
// coverage up front (core.ValidatePolicyClasses).
func priorityAllocate(st *sim.State, alloc *sim.Allocation, order []int) {
	remaining := float64(st.K)
	n := len(st.Queues)
	if order != nil {
		n = len(order)
	}
	for i := 0; i < n; i++ {
		c := i
		if order != nil {
			c = order[i]
			if c < 0 || c >= len(st.Queues) {
				continue
			}
			// A duplicated order entry would re-subtract the class's
			// allocation from remaining and starve later classes; skip
			// classes already served (a served nonempty class always has a
			// positive head allocation — a zero head means remaining hit 0,
			// which returns below).
			if len(st.Queues[c]) > 0 && alloc.Classes[c][0] > 0 {
				continue
			}
		}
		capC := st.Classes[c].Cap()
		for n := range st.Queues[c] {
			if remaining <= 0 {
				return
			}
			// min(capC, remaining) via a branch: math.Min is not inlined
			// and this is the allocator's innermost loop.
			a := capC
			if remaining < a {
				a = remaining
			}
			alloc.Classes[c][n] = a
			remaining -= a
		}
	}
}

// priorityAllocateSparse is priorityAllocate's write-set face: identical
// walk, identical shares, reported through ws.Add instead of the dense
// buffer. The duplicate-order guard uses ws.Served in place of reading the
// (absent) zeroed allocation matrix.
func priorityAllocateSparse(st *sim.State, ws *sim.ShareSet, order []int) {
	remaining := float64(st.K)
	n := len(st.Queues)
	if order != nil {
		n = len(order)
	}
	for i := 0; i < n; i++ {
		c := i
		if order != nil {
			c = order[i]
			if c < 0 || c >= len(st.Queues) {
				continue
			}
			if ws.Served(c) {
				continue
			}
		}
		ws.MarkServed(c)
		capC := st.Classes[c].Cap()
		for _, j := range st.Queues[c] {
			if remaining <= 0 {
				ws.MarkExhausted(i)
				return
			}
			a := capC
			if remaining < a {
				a = remaining
			}
			ws.Add(j, a)
			remaining -= a
		}
	}
}

// ClassPriority serves classes in a fixed strict preemptive priority order,
// FCFS within a class: walking classes in Order, each job takes up to its
// class's saturation cap until the servers run out. On the two-class preset,
// Order {0, 1} is exactly Inelastic-First and {1, 0} is Elastic-First.
type ClassPriority struct {
	Order []int
}

// Name implements sim.Policy.
func (p ClassPriority) Name() string {
	parts := make([]string, len(p.Order))
	for i, c := range p.Order {
		parts[i] = fmt.Sprint(c)
	}
	return "PRIO:" + strings.Join(parts, ">")
}

// Allocate implements sim.Policy.
func (p ClassPriority) Allocate(st *sim.State, alloc *sim.Allocation) {
	priorityAllocate(st, alloc, p.Order)
}

// AllocateSparse implements sim.SparsePolicy.
func (p ClassPriority) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	priorityAllocateSparse(st, ws, p.Order)
}

// ArrivalShadowed implements sim.ArrivalShadowPolicy.
func (p ClassPriority) ArrivalShadowed(_ *sim.State, exhaustedAt int, c sim.Class) bool {
	return orderShadowed(exhaustedAt, c, p.Order)
}

// InelasticFirst is the IF policy: strict class priority by ascending class
// index. On the two-class preset, in state (i, j) with i < k each inelastic
// job receives one server and the earliest-arriving elastic job receives the
// remaining k-i; with i >= k the k earliest inelastic jobs are served.
type InelasticFirst struct{}

// Name implements sim.Policy.
func (InelasticFirst) Name() string { return "IF" }

// Allocate implements sim.Policy.
func (InelasticFirst) Allocate(st *sim.State, alloc *sim.Allocation) {
	priorityAllocate(st, alloc, nil)
}

// AllocateSparse implements sim.SparsePolicy.
func (InelasticFirst) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	priorityAllocateSparse(st, ws, nil)
}

// ArrivalShadowed implements sim.ArrivalShadowPolicy.
func (InelasticFirst) ArrivalShadowed(_ *sim.State, exhaustedAt int, c sim.Class) bool {
	return orderShadowed(exhaustedAt, c, nil)
}

// ElasticFirst is the EF policy: strict class priority by descending class
// index. On the two-class preset, whenever an elastic job is present the
// earliest-arriving one receives all k servers; otherwise inelastic jobs
// are served FCFS, one server each.
type ElasticFirst struct{}

// Name implements sim.Policy.
func (ElasticFirst) Name() string { return "EF" }

// Allocate implements sim.Policy.
func (ElasticFirst) Allocate(st *sim.State, alloc *sim.Allocation) {
	remaining := float64(st.K)
	for c := len(st.Queues) - 1; c >= 0; c-- {
		capC := st.Classes[c].Cap()
		for n := range st.Queues[c] {
			if remaining <= 0 {
				return
			}
			a := capC
			if remaining < a {
				a = remaining
			}
			alloc.Classes[c][n] = a
			remaining -= a
		}
	}
}

// AllocateSparse implements sim.SparsePolicy.
func (ElasticFirst) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	remaining := float64(st.K)
	for c := len(st.Queues) - 1; c >= 0; c-- {
		capC := st.Classes[c].Cap()
		for _, j := range st.Queues[c] {
			if remaining <= 0 {
				// Walk position: classes in descending index order.
				ws.MarkExhausted(len(st.Queues) - 1 - c)
				return
			}
			a := capC
			if remaining < a {
				a = remaining
			}
			ws.Add(j, a)
			remaining -= a
		}
	}
}

// ArrivalShadowed implements sim.ArrivalShadowPolicy: EF's walk position of
// class c is its rank in descending index order.
func (ElasticFirst) ArrivalShadowed(st *sim.State, exhaustedAt int, c sim.Class) bool {
	return exhaustedAt <= len(st.Queues)-1-int(c)
}

// classOrder caches a derived class ordering so that it is computed once per
// class set and maintained across events instead of re-sorted per event.
// The cache is keyed on the identity of the State.Classes slice, which is
// fixed for the lifetime of a System.
type classOrder struct {
	classes []sim.ClassSpec // identity key: the slice seen last
	order   []int
}

func (co *classOrder) get(classes []sim.ClassSpec, less func(a, b sim.ClassSpec) bool) []int {
	if len(co.order) == len(classes) && len(classes) > 0 &&
		len(co.classes) == len(classes) && &co.classes[0] == &classes[0] {
		return co.order
	}
	if cap(co.order) < len(classes) {
		co.order = make([]int, len(classes))
	}
	co.order = co.order[:len(classes)]
	for i := range co.order {
		co.order[i] = i
	}
	// Insertion sort: stable, in place, and the class count is tiny.
	for i := 1; i < len(co.order); i++ {
		for p := i; p > 0 && less(classes[co.order[p]], classes[co.order[p-1]]); p-- {
			co.order[p], co.order[p-1] = co.order[p-1], co.order[p]
		}
	}
	co.classes = classes
	return co.order
}

// LeastFlexibleFirst prioritizes classes by ascending saturation cap: serve
// the jobs that cannot make use of spare capacity first, deferring flexible
// work — the efficiency intuition behind Inelastic-First extended to many
// classes (Section 6). Use the pointer form (&LeastFlexibleFirst{}) so the
// maintained class ordering is cached across events.
type LeastFlexibleFirst struct {
	co classOrder
}

// Name implements sim.Policy.
func (*LeastFlexibleFirst) Name() string { return "LFF" }

// Allocate implements sim.Policy.
func (p *LeastFlexibleFirst) Allocate(st *sim.State, alloc *sim.Allocation) {
	order := p.co.get(st.Classes, func(a, b sim.ClassSpec) bool { return a.Cap() < b.Cap() })
	priorityAllocate(st, alloc, order)
}

// AllocateSparse implements sim.SparsePolicy.
func (p *LeastFlexibleFirst) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	order := p.co.get(st.Classes, func(a, b sim.ClassSpec) bool { return a.Cap() < b.Cap() })
	priorityAllocateSparse(st, ws, order)
}

// ArrivalShadowed implements sim.ArrivalShadowPolicy.
func (p *LeastFlexibleFirst) ArrivalShadowed(st *sim.State, exhaustedAt int, c sim.Class) bool {
	order := p.co.get(st.Classes, func(a, b sim.ClassSpec) bool { return a.Cap() < b.Cap() })
	return orderShadowed(exhaustedAt, c, order)
}

// SmallestMeanFirst prioritizes classes by ascending mean job size — the
// natural generalization of "give priority to the smaller class" suggested
// by Theorems 1 and 5. Classes should carry a Size distribution (the sweep
// layers attach one to every cell kind); classes without one sort last.
// Use the pointer form (&SmallestMeanFirst{}) so the maintained class
// ordering is cached across events.
type SmallestMeanFirst struct {
	co classOrder
}

// Name implements sim.Policy.
func (*SmallestMeanFirst) Name() string { return "SMF" }

func meanSize(c sim.ClassSpec) float64 {
	if c.Size == nil {
		return math.Inf(1)
	}
	return c.Size.Mean()
}

// Allocate implements sim.Policy.
func (p *SmallestMeanFirst) Allocate(st *sim.State, alloc *sim.Allocation) {
	order := p.co.get(st.Classes, func(a, b sim.ClassSpec) bool { return meanSize(a) < meanSize(b) })
	priorityAllocate(st, alloc, order)
}

// AllocateSparse implements sim.SparsePolicy.
func (p *SmallestMeanFirst) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	order := p.co.get(st.Classes, func(a, b sim.ClassSpec) bool { return meanSize(a) < meanSize(b) })
	priorityAllocateSparse(st, ws, order)
}

// ArrivalShadowed implements sim.ArrivalShadowPolicy.
func (p *SmallestMeanFirst) ArrivalShadowed(st *sim.State, exhaustedAt int, c sim.Class) bool {
	order := p.co.get(st.Classes, func(a, b sim.ClassSpec) bool { return meanSize(a) < meanSize(b) })
	return orderShadowed(exhaustedAt, c, order)
}

// FCFS serves jobs of every class in one global first-come-first-serve
// order: walking jobs by arrival time (ties to the lower class index), each
// job claims up to its class cap; a fully elastic job therefore claims
// everything left, blocking later jobs. It is a natural cluster-scheduler
// baseline outside the paper's two headline policies. Use the pointer form
// (&FCFS{}) so the per-class cursors are reused across events.
type FCFS struct {
	cur []int
}

// Name implements sim.Policy.
func (*FCFS) Name() string { return "FCFS" }

// reset prepares the per-class cursors for one walk.
func (p *FCFS) reset(nc int) {
	if cap(p.cur) < nc {
		p.cur = make([]int, nc)
	}
	p.cur = p.cur[:nc]
	for c := range p.cur {
		p.cur[c] = 0
	}
}

// next returns the class whose cursor heads the global FCFS order (earliest
// arrival, ties to the lower class index), or -1 when all queues are
// exhausted. Both allocation faces share it so the tie-break can never
// diverge between engines; only the write sinks differ.
func (p *FCFS) next(st *sim.State) int {
	best := -1
	var bestArr float64
	for c := 0; c < len(st.Queues); c++ {
		if p.cur[c] >= len(st.Queues[c]) {
			continue
		}
		arr := st.Queues[c][p.cur[c]].Arrival
		if best == -1 || arr < bestArr {
			best, bestArr = c, arr
		}
	}
	return best
}

// Allocate implements sim.Policy.
func (p *FCFS) Allocate(st *sim.State, alloc *sim.Allocation) {
	p.reset(len(st.Queues))
	remaining := float64(st.K)
	for remaining > 0 {
		best := p.next(st)
		if best == -1 {
			return
		}
		a := math.Min(st.Classes[best].Cap(), remaining)
		alloc.Classes[best][p.cur[best]] = a
		remaining -= a
		p.cur[best]++
	}
}

// AllocateSparse implements sim.SparsePolicy: the same global-FCFS walk
// reported as a write-set. Every served job takes at least min(1, rest) of
// a server (caps are >= 1), so the set has at most k+1 entries.
func (p *FCFS) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	p.reset(len(st.Queues))
	remaining := float64(st.K)
	for remaining > 0 {
		best := p.next(st)
		if best == -1 {
			return
		}
		a := math.Min(st.Classes[best].Cap(), remaining)
		ws.Add(st.Queues[best][p.cur[best]], a)
		remaining -= a
		p.cur[best]++
	}
}

// Equi is generalized processor sharing: every job in the system receives an
// equal share k/n of the servers, with the shares of finitely capped classes
// clamped at their cap and the excess water-filled back — first equally over
// the jobs of fully elastic classes, and when none are present, over the
// capped jobs still below their caps. It is the stochastic analogue of the
// EQUI algorithm from the worst-case literature discussed in Sections 1.4
// and 3.
type Equi struct{}

// Name implements sim.Policy.
func (Equi) Name() string { return "EQUI" }

// Allocate implements sim.Policy.
func (Equi) Allocate(st *sim.State, alloc *sim.Allocation) {
	n := 0
	for _, q := range st.Queues {
		n += len(q)
	}
	if n == 0 {
		return
	}
	share := float64(st.K) / float64(n)
	// Finitely capped classes take min(share, cap) each; the remainder is
	// split equally over the jobs of fully elastic classes.
	remaining := float64(st.K)
	uncapped := 0
	for c, q := range st.Queues {
		capC := st.Classes[c].Cap()
		if math.IsInf(capC, 1) {
			uncapped += len(q)
			continue
		}
		s := share
		if s > capC {
			s = capC
		}
		for i := range q {
			alloc.Classes[c][i] = s
		}
		remaining -= float64(len(q)) * s
	}
	if uncapped > 0 {
		per := remaining / float64(uncapped)
		for c, q := range st.Queues {
			if !math.IsInf(st.Classes[c].Cap(), 1) {
				continue
			}
			for i := range q {
				alloc.Classes[c][i] = per
			}
		}
		return
	}
	// No fully elastic class: water-fill the excess over capped jobs still
	// below their cap, so EQUI stays work-conserving on all-capped mixes
	// (e.g. the cappedladder preset). Each round either saturates at least
	// one class or distributes everything, so len(Queues) rounds suffice.
	// Per-class shares are uniform, so the running share is read back from
	// each class's first entry — no scratch state, the hot path stays
	// allocation-free. Once every job sits at its cap the leftover is
	// genuinely unusable and strands, as the model prescribes.
	for round := 0; round <= len(st.Queues) && remaining > 1e-12; round++ {
		m := 0
		for c, q := range st.Queues {
			if len(q) > 0 && alloc.Classes[c][0] < st.Classes[c].Cap() {
				m += len(q)
			}
		}
		if m == 0 {
			return
		}
		add := remaining / float64(m)
		for c, q := range st.Queues {
			if len(q) == 0 {
				continue
			}
			capC := st.Classes[c].Cap()
			cur := alloc.Classes[c][0]
			if cur >= capC {
				continue
			}
			delta := add
			if cur+delta > capC {
				delta = capC - cur
			}
			for i := range q {
				alloc.Classes[c][i] = cur + delta
			}
			remaining -= float64(len(q)) * delta
		}
	}
}

// ClassShares implements sim.ClassSharePolicy: the same water-filling
// decision as Allocate, reported as one per-class share instead of n
// per-job entries. The arithmetic below mirrors Allocate line for line —
// same operations in the same order on the same values — so both faces
// produce bit-identical shares; the cross-engine equivalence suite holds
// them together.
func (Equi) ClassShares(st *sim.State, shares []float64) {
	n := 0
	for _, q := range st.Queues {
		n += len(q)
	}
	if n == 0 {
		return
	}
	share := float64(st.K) / float64(n)
	remaining := float64(st.K)
	uncapped := 0
	for c, q := range st.Queues {
		capC := st.Classes[c].Cap()
		if math.IsInf(capC, 1) {
			uncapped += len(q)
			continue
		}
		s := share
		if s > capC {
			s = capC
		}
		shares[c] = s
		remaining -= float64(len(q)) * s
	}
	if uncapped > 0 {
		per := remaining / float64(uncapped)
		for c := range st.Queues {
			if !math.IsInf(st.Classes[c].Cap(), 1) {
				continue
			}
			shares[c] = per
		}
		return
	}
	for round := 0; round <= len(st.Queues) && remaining > 1e-12; round++ {
		m := 0
		for c, q := range st.Queues {
			if len(q) > 0 && shares[c] < st.Classes[c].Cap() {
				m += len(q)
			}
		}
		if m == 0 {
			return
		}
		add := remaining / float64(m)
		for c, q := range st.Queues {
			if len(q) == 0 {
				continue
			}
			capC := st.Classes[c].Cap()
			cur := shares[c]
			if cur >= capC {
				continue
			}
			delta := add
			if cur+delta > capC {
				delta = capC - cur
			}
			shares[c] = cur + delta
			remaining -= float64(len(q)) * delta
		}
	}
}

// Greedy maximizes the instantaneous total departure rate
// piI*muI + piE*muE (the GREEDY class of [7] referenced in Theorem 1) on
// the two-class preset. When MuI >= MuE it allocates like IF; otherwise
// like EF with inelastic jobs soaking up leftover servers. Ties favor
// inelastic jobs, which makes this implementation simultaneously a member
// of GREEDY* (minimal elastic allocation among GREEDY policies).
type Greedy struct {
	MuI, MuE float64
}

// Name implements sim.Policy.
func (g Greedy) Name() string { return fmt.Sprintf("GREEDY(muI=%g,muE=%g)", g.MuI, g.MuE) }

// Allocate implements sim.Policy.
func (g Greedy) Allocate(st *sim.State, alloc *sim.Allocation) {
	if g.MuI >= g.MuE {
		InelasticFirst{}.Allocate(st, alloc)
		return
	}
	// muE > muI: all servers to the elastic head job maximizes rate;
	// leftovers go to inelastic jobs.
	ElasticFirst{}.Allocate(st, alloc)
}

// AllocateSparse implements sim.SparsePolicy.
func (g Greedy) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	if g.MuI >= g.MuE {
		InelasticFirst{}.AllocateSparse(st, ws)
		return
	}
	ElasticFirst{}.AllocateSparse(st, ws)
}

// ArrivalShadowed implements sim.ArrivalShadowPolicy.
func (g Greedy) ArrivalShadowed(st *sim.State, exhaustedAt int, c sim.Class) bool {
	if g.MuI >= g.MuE {
		return InelasticFirst{}.ArrivalShadowed(st, exhaustedAt, c)
	}
	return ElasticFirst{}.ArrivalShadowed(st, exhaustedAt, c)
}

// Threshold interpolates between EF and IF on the two-class preset: when
// elastic jobs are present, inelastic jobs receive at most Cap servers
// (FCFS) and the elastic head job receives the rest; with no elastic jobs,
// inelastic jobs are served on all k servers. Cap = k reproduces IF and
// Cap = 0 reproduces EF, so scanning Cap provides the policy family for the
// optimality experiments of Section 4.
type Threshold struct {
	Cap int
}

// Name implements sim.Policy.
func (t Threshold) Name() string { return fmt.Sprintf("THRESH(%d)", t.Cap) }

// Allocate implements sim.Policy.
func (t Threshold) Allocate(st *sim.State, alloc *sim.Allocation) {
	if len(st.Queues) < 2 {
		priorityAllocate(st, alloc, nil)
		return
	}
	inelastic, elastic := st.Queues[sim.Inelastic], st.Queues[sim.Elastic]
	remaining := float64(st.K)
	capLeft := float64(t.Cap)
	if len(elastic) == 0 {
		capLeft = remaining
	}
	for i := range inelastic {
		if remaining <= 0 || capLeft <= 0 {
			break
		}
		alloc.Classes[sim.Inelastic][i] = 1
		remaining--
		capLeft--
	}
	if remaining > 0 && len(elastic) > 0 {
		alloc.Classes[sim.Elastic][0] = remaining
	}
}

// AllocateSparse implements sim.SparsePolicy.
func (t Threshold) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	if len(st.Queues) < 2 {
		priorityAllocateSparse(st, ws, nil)
		return
	}
	inelastic, elastic := st.Queues[sim.Inelastic], st.Queues[sim.Elastic]
	remaining := float64(st.K)
	capLeft := float64(t.Cap)
	if len(elastic) == 0 {
		capLeft = remaining
	}
	for _, j := range inelastic {
		if remaining <= 0 || capLeft <= 0 {
			break
		}
		ws.Add(j, 1)
		remaining--
		capLeft--
	}
	if remaining > 0 && len(elastic) > 0 {
		ws.Add(elastic[0], remaining)
	}
}

// DeferElastic is the deliberately idling policy used to exercise the
// Appendix B interchange argument: when any job of a finitely capped class
// is present it serves only those classes (in class order, up to their
// caps) and idles every server that IF would have given to a fully elastic
// job. Theorem 12 implies it is weakly dominated by IF.
type DeferElastic struct{}

// Name implements sim.Policy.
func (DeferElastic) Name() string { return "DEFER-E(idling)" }

// Allocate implements sim.Policy.
func (DeferElastic) Allocate(st *sim.State, alloc *sim.Allocation) {
	remaining := float64(st.K)
	capped := false
	for c, q := range st.Queues {
		capC := st.Classes[c].Cap()
		if math.IsInf(capC, 1) {
			continue
		}
		for i := range q {
			capped = true
			if remaining <= 0 {
				break
			}
			a := math.Min(capC, remaining)
			alloc.Classes[c][i] = a
			remaining -= a
		}
	}
	if capped {
		return
	}
	for c, q := range st.Queues {
		if !math.IsInf(st.Classes[c].Cap(), 1) || len(q) == 0 {
			continue
		}
		alloc.Classes[c][0] = float64(st.K)
		return
	}
}

// AllocateSparse implements sim.SparsePolicy.
func (DeferElastic) AllocateSparse(st *sim.State, ws *sim.ShareSet) {
	remaining := float64(st.K)
	capped := false
	for c, q := range st.Queues {
		capC := st.Classes[c].Cap()
		if math.IsInf(capC, 1) {
			continue
		}
		for _, j := range q {
			capped = true
			if remaining <= 0 {
				break
			}
			a := math.Min(capC, remaining)
			ws.Add(j, a)
			remaining -= a
		}
	}
	if capped {
		return
	}
	for c, q := range st.Queues {
		if !math.IsInf(st.Classes[c].Cap(), 1) || len(q) == 0 {
			continue
		}
		ws.Add(q[0], float64(st.K))
		return
	}
}

// SRPTK is a size-aware baseline extending SRPT-k (Section 1.4, [18]) to
// the elastic/inelastic model: jobs are prioritized by remaining size
// (ties to the lower class, FCFS within a class); each job claims up to its
// class cap, so a fully elastic job claims all servers left after smaller
// jobs. It requires known sizes, which the paper's stochastic setting
// forbids — it is included as the clairvoyant reference point. Use the
// pointer form (&SRPTK{}) so the ordering buffer is reused across events.
type SRPTK struct {
	buf []srptRef
}

type srptRef struct {
	remaining float64
	class     int
	idx       int
}

// Name implements sim.Policy.
func (*SRPTK) Name() string { return "SRPT-k" }

// Allocate implements sim.Policy.
func (p *SRPTK) Allocate(st *sim.State, alloc *sim.Allocation) {
	jobs := p.buf[:0]
	for c, q := range st.Queues {
		for i, j := range q {
			jobs = append(jobs, srptRef{j.Remaining, c, i})
		}
	}
	// Insertion sort by remaining size; job counts are small and the
	// allocation is recomputed at every event, so avoiding sort.Slice
	// keeps the hot path allocation-free (the buffer is reused).
	for i := 1; i < len(jobs); i++ {
		for q := i; q > 0 && jobs[q].remaining < jobs[q-1].remaining; q-- {
			jobs[q], jobs[q-1] = jobs[q-1], jobs[q]
		}
	}
	p.buf = jobs
	remaining := float64(st.K)
	for _, j := range jobs {
		if remaining <= 0 {
			break
		}
		a := math.Min(st.Classes[j.class].Cap(), remaining)
		alloc.Classes[j.class][j.idx] = a
		remaining -= a
	}
}

// RemainingOrdered implements sim.RemainingOrderedPolicy: Allocate above is
// exactly the ascending-remaining walk (the stable insertion sort over
// class-then-FCFS enumeration breaks ties by lower class, then lower ID)
// handing each job min(cap, leftover), so the incremental engine may
// execute the rule natively on its indexed heap.
func (*SRPTK) RemainingOrdered() {}
