package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// BenchmarkServeCacheHit measures the tentpole number: cache-hit serving
// throughput over real loopback HTTP. The client is a raw-TCP pipeliner —
// batches of keep-alive requests written in one syscall, responses drained
// in order — because a lock-step client would measure loopback round-trip
// latency, not the server. Reported as requests/sec (benchlog gates it like
// the engine throughput numbers).
func BenchmarkServeCacheHit(b *testing.B) {
	s := New(Options{})
	defer s.Close()
	sw := testSweep(7, 1)
	body, err := jsonBody(sw)
	if err != nil {
		b.Fatal(err)
	}
	// Prewarm: one computed flight, everything after is the hit path.
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body)))
	if rr.Code != http.StatusOK {
		b.Fatalf("prewarm failed: %d %s", rr.Code, rr.Body)
	}
	respLen := rr.Body.Len()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := &http.Server{Handler: s}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	req := fmt.Sprintf("POST /v1/sweep HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body)
	const depth = 64
	batch := []byte(strings.Repeat(req, depth))
	br := bufio.NewReaderSize(conn, 1<<16)

	b.ResetTimer()
	for done := 0; done < b.N; {
		n := depth
		if left := b.N - done; left < n {
			n = left
		}
		if _, err := conn.Write(batch[:n*len(req)]); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := drainResponse(br, respLen); err != nil {
				b.Fatal(err)
			}
		}
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "requests/sec")
}

// drainResponse consumes one pipelined HTTP/1.1 response, checking the
// status and that the body length matches the cached payload.
func drainResponse(br *bufio.Reader, wantLen int) error {
	status, err := br.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.HasPrefix(status, "HTTP/1.1 200") {
		return fmt.Errorf("unexpected status line %q", status)
	}
	cl := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		if line == "\r\n" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			if cl, err = strconv.Atoi(strings.TrimSpace(v)); err != nil {
				return err
			}
		}
	}
	if cl != wantLen {
		return fmt.Errorf("Content-Length %d, want %d", cl, wantLen)
	}
	if _, err := br.Discard(cl); err != nil {
		return err
	}
	return nil
}

func jsonBody(sw exp.Sweep) ([]byte, error) { return json.Marshal(sw) }

// instantBackend completes every task immediately with a canned outcome,
// after consuming one release token — it isolates the coalescer's own
// overhead from simulation time. The buffered token channel makes the
// handoff order-independent: the releaser may send before or after Submit
// arrives at the receive.
type instantBackend struct {
	release chan struct{}
}

func (ib *instantBackend) Submit(ctx context.Context, env exp.Env, tasks []exp.Task, emit func(exp.TaskResult) error) error {
	select {
	case <-ib.release:
	case <-ctx.Done():
		return ctx.Err()
	}
	for i, t := range tasks {
		rep := exp.Replication{Rep: t.Sim.Rep, Seed: t.Sim.Seed, MeanT: 1, MeanTI: 1, MeanTE: 1, MeanN: 1, Util: 0.5, Completions: 100}
		if err := emit(exp.TaskResult{Index: i, Outcome: exp.Outcome{Rep: &rep}}); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// BenchmarkServeCoalesced measures the coalescer under contention: per
// iteration, `fanout` concurrent identical requests for a never-seen spec
// pile onto one flight (the backend is gated until all have joined), then
// the flight completes instantly and releases them all. Reported as
// requests/sec over all waiters.
func BenchmarkServeCoalesced(b *testing.B) {
	const fanout = 64
	ib := &instantBackend{release: make(chan struct{}, 1)}
	s := New(Options{Exp: exp.Options{Backend: ib}})
	defer s.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := testSweep(uint64(1000+i), 1)
		body, err := jsonBody(sw)
		if err != nil {
			b.Fatal(err)
		}
		joined := s.coalesced.Load()
		var wg sync.WaitGroup
		fail := make(chan error, fanout)
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rr := httptest.NewRecorder()
				s.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body)))
				if rr.Code != http.StatusOK {
					fail <- fmt.Errorf("status %d: %s", rr.Code, rr.Body)
				}
			}()
		}
		for s.coalesced.Load() < joined+fanout-1 {
			time.Sleep(10 * time.Microsecond)
		}
		ib.release <- struct{}{}
		wg.Wait()
		select {
		case err := <-fail:
			b.Fatal(err)
		default:
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*fanout)/b.Elapsed().Seconds(), "requests/sec")
	if got := s.computations.Load(); got != int64(b.N) {
		b.Fatalf("computations = %d, want %d (one per fanout batch)", got, b.N)
	}
}
