package serve

// Graceful-degradation tests: a server whose fabric backend became
// unreachable keeps serving cache hits, answers misses with 503 and a
// backoff-derived Retry-After instead of hanging, and surfaces the outage
// in /v1/stats. Uses a real in-process dispatcher and worker from
// internal/fabric, then kills them under the running server.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
)

func statsSnapshot(t *testing.T, s *Server) Stats {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	var st Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats endpoint: %v (%s)", err, rr.Body)
	}
	return st
}

func TestBackendDownDegradation(t *testing.T) {
	// A real fabric under the server, so the outage below is a real one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := fabric.NewDispatcher(fabric.DispatcherOptions{})
	dDone := make(chan error, 1)
	go func() { dDone <- d.Serve(ln) }()
	addr := ln.Addr().String()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	wDone := make(chan struct{})
	go func() {
		defer close(wDone)
		w := &fabric.Worker{
			Dispatcher:        addr,
			Name:              "w1",
			HeartbeatInterval: 50 * time.Millisecond,
			ReconnectBackoff:  10 * time.Millisecond,
		}
		w.Run(wctx)
	}()

	// A short redial budget so a miss against the dead fabric degrades in
	// ~300ms instead of the production default.
	s := New(Options{
		Exp: exp.Options{Backend: &fabric.Backend{
			Addr:             addr,
			Name:             "degrade-test",
			ReconnectBackoff: 10 * time.Millisecond,
			RedialBudget:     300 * time.Millisecond,
		}},
		BackendRetryBase: 2 * time.Second,
	})
	defer s.Close()

	swA := testSweep(31, 1)
	if rr := post(s, "/v1/sweep", specJSON(t, swA)); rr.Code != http.StatusOK {
		t.Fatalf("healthy compute: status %d: %s", rr.Code, rr.Body)
	}

	// Kill the fabric under the running server.
	wcancel()
	<-wDone
	d.Close()
	if err := <-dDone; err != nil {
		t.Fatalf("dispatcher Serve: %v", err)
	}

	// Cache hits are untouched by the outage.
	rr := post(s, "/v1/sweep", specJSON(t, swA))
	if rr.Code != http.StatusOK {
		t.Fatalf("cache hit during outage: status %d: %s", rr.Code, rr.Body)
	}

	// A miss probes the backend, exhausts the redial budget, and degrades:
	// 503 with a Retry-After derived from the open backoff window.
	swB := testSweep(32, 1)
	rr = post(s, "/v1/sweep", specJSON(t, swB))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("miss during outage: status %d, want 503: %s", rr.Code, rr.Body)
	}
	ra, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 300 {
		t.Fatalf("miss during outage: Retry-After %q, want an integer in [1,300]", rr.Header().Get("Retry-After"))
	}

	// The window is now open: the next miss is refused up front — no
	// redial loop, so the answer comes back much faster than the budget.
	start := time.Now()
	rr = post(s, "/v1/sweep", specJSON(t, swB))
	if took := time.Since(start); rr.Code != http.StatusServiceUnavailable || took > 200*time.Millisecond {
		t.Fatalf("second miss: status %d in %v, want a fast 503 from the open window", rr.Code, took)
	}
	if _, err := strconv.Atoi(rr.Header().Get("Retry-After")); err != nil {
		t.Fatalf("windowed 503 without a Retry-After hint: %q", rr.Header().Get("Retry-After"))
	}

	// And a cache hit still serves while the window is open.
	if rr := post(s, "/v1/sweep", specJSON(t, swA)); rr.Code != http.StatusOK {
		t.Fatalf("cache hit with window open: status %d", rr.Code)
	}

	st := statsSnapshot(t, s)
	if st.BackendUnavailable < 1 {
		t.Fatalf("stats backendUnavailable = %d, want >= 1", st.BackendUnavailable)
	}
	if !st.BackendDown || st.BackendRetryInSec < 1 {
		t.Fatalf("stats = %+v, want backendDown with a positive retry hint", st)
	}
}

// TestBackendRecoveryProbe: once the backoff window closes, the first miss
// probes the (restored) backend and service resumes — and the down
// markers clear.
func TestBackendRecoveryProbe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening yet: the fabric starts out dead

	s := New(Options{
		Exp: exp.Options{Backend: &fabric.Backend{
			Addr:             addr,
			Name:             "probe-test",
			ReconnectBackoff: 10 * time.Millisecond,
			RedialBudget:     200 * time.Millisecond,
		}},
		BackendRetryBase: 300 * time.Millisecond,
	})
	defer s.Close()

	sw := testSweep(33, 1)
	if rr := post(s, "/v1/sweep", specJSON(t, sw)); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("miss against dead fabric: status %d, want 503", rr.Code)
	}

	// Bring the fabric up on the same address while the window runs out.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	d := fabric.NewDispatcher(fabric.DispatcherOptions{})
	dDone := make(chan error, 1)
	go func() { dDone <- d.Serve(ln2) }()
	defer func() {
		d.Close()
		if err := <-dDone; err != nil {
			t.Errorf("dispatcher Serve: %v", err)
		}
	}()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	go func() {
		w := &fabric.Worker{
			Dispatcher:        addr,
			Name:              "w1",
			HeartbeatInterval: 50 * time.Millisecond,
			ReconnectBackoff:  10 * time.Millisecond,
		}
		w.Run(wctx)
	}()

	waitFor(t, "window to close and the probe to succeed", func() bool {
		return post(s, "/v1/sweep", specJSON(t, sw)).Code == http.StatusOK
	})
	st := statsSnapshot(t, s)
	if st.BackendDown {
		t.Fatalf("stats still report backendDown after a successful probe: %+v", st)
	}
}
