package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
)

// testSweep is a spec small enough to compute inline in tests; distinct
// seeds make distinct canonical keys.
func testSweep(seed uint64, reps int) exp.Sweep {
	return exp.Sweep{
		Name: "serve-test",
		Grid: exp.Grid{
			K:        []int{2},
			Rho:      []float64{0.5},
			MuI:      []float64{1},
			MuE:      []float64{1},
			Policies: []string{"IF"},
		},
		Reps:     reps,
		BaseSeed: seed,
		Warmup:   50,
		Jobs:     300,
	}
}

func specJSON(t *testing.T, sw exp.Sweep) []byte {
	t.Helper()
	b, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// wantJSON computes the reference bytes the service must serve: the sweep
// run through the ordinary exp path and rendered with ResultSet.WriteJSON —
// i.e. exactly what `simulate -json` writes.
func wantJSON(t *testing.T, sw exp.Sweep) []byte {
	t.Helper()
	rs, err := exp.Run(context.Background(), sw, exp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func post(s *Server, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	return rr
}

// gateBackend counts Submit calls and optionally holds them at a gate so
// tests can pile up waiters before any computation proceeds.
type gateBackend struct {
	inner   exp.Backend
	submits atomic.Int64
	gate    chan struct{} // nil means open
}

func (b *gateBackend) Submit(ctx context.Context, env exp.Env, tasks []exp.Task, emit func(exp.TaskResult) error) error {
	b.submits.Add(1)
	if b.gate != nil {
		select {
		case <-b.gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return b.inner.Submit(ctx, env, tasks, emit)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeCacheHitByteIdentity is the tentpole contract: the first request
// computes, every repeat is a cache hit, and the served bytes are identical
// — byte for byte — to what `simulate -json` writes for the same spec.
func TestServeCacheHitByteIdentity(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	sw := testSweep(7, 2)
	body := specJSON(t, sw)
	want := wantJSON(t, sw)

	first := post(s, "/v1/sweep", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", first.Code, first.Body)
	}
	if !bytes.Equal(first.Body.Bytes(), want) {
		t.Fatal("computed response differs from simulate -json bytes")
	}
	second := post(s, "/v1/sweep", body)
	if second.Code != http.StatusOK || !bytes.Equal(second.Body.Bytes(), want) {
		t.Fatalf("cached response differs (status %d)", second.Code)
	}
	if ct := second.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// Whitespace-different but semantically identical spec coalesces to the
	// same cache entry (canonical key), still byte-identical.
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, body, "", "   "); err != nil {
		t.Fatal(err)
	}
	third := post(s, "/v1/sweep", pretty.Bytes())
	if third.Code != http.StatusOK || !bytes.Equal(third.Body.Bytes(), want) {
		t.Fatal("reformatted spec missed the cache or changed bytes")
	}
	if got := s.computations.Load(); got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
	if got := s.hits.Load(); got != 2 {
		t.Fatalf("cache hits = %d, want 2", got)
	}
}

// TestCoalesceManyWaitersOneSubmit pins the singleflight guarantee: N
// concurrent identical POSTs cause exactly one backend submission, and all
// N responses are byte-identical.
func TestCoalesceManyWaitersOneSubmit(t *testing.T) {
	const n = 16
	gb := &gateBackend{inner: exp.PoolBackend{}, gate: make(chan struct{})}
	s := New(Options{Exp: exp.Options{Backend: gb}})
	defer s.Close()
	sw := testSweep(11, 1)
	body := specJSON(t, sw)

	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := post(s, "/v1/sweep", body)
			codes[i] = rr.Code
			bodies[i] = rr.Body.Bytes()
		}(i)
	}
	// All n requests must be parked on one flight before the backend is
	// released: 1 starter + n-1 coalesced joins.
	waitFor(t, "waiters to coalesce", func() bool { return s.coalesced.Load() == n-1 })
	close(gb.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("waiter %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("waiter %d received different bytes", i)
		}
	}
	if got := gb.submits.Load(); got != 1 {
		t.Fatalf("backend submissions = %d, want exactly 1", got)
	}
	if got := s.computations.Load(); got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
	if !bytes.Equal(bodies[0], wantJSON(t, sw)) {
		t.Fatal("coalesced response differs from simulate -json bytes")
	}
}

// TestCancelledWaiterKeepsComputation: a waiter that disconnects must not
// cancel the shared flight — the surviving waiter still gets bytes and the
// result still lands in the cache.
func TestCancelledWaiterKeepsComputation(t *testing.T) {
	gb := &gateBackend{inner: exp.PoolBackend{}, gate: make(chan struct{})}
	s := New(Options{Exp: exp.Options{Backend: gb}})
	defer s.Close()
	sw := testSweep(13, 1)
	body := specJSON(t, sw)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	cancelled := make(chan struct{})
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body)).WithContext(ctx)
		s.ServeHTTP(httptest.NewRecorder(), req)
		close(cancelled)
	}()
	var survivor *httptest.ResponseRecorder
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivor = post(s, "/v1/sweep", body)
	}()
	waitFor(t, "both waiters to join", func() bool { return s.coalesced.Load() == 1 })

	cancel()
	select {
	case <-cancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter's handler did not return")
	}
	// The flight must still be running: the cancelled waiter's departure
	// must not have propagated into the backend context.
	s.mu.Lock()
	inflight := s.inflight
	s.mu.Unlock()
	if inflight != 1 {
		t.Fatalf("inflight = %d after waiter cancellation, want 1", inflight)
	}
	close(gb.gate)
	wg.Wait()

	if survivor.Code != http.StatusOK {
		t.Fatalf("surviving waiter: status %d: %s", survivor.Code, survivor.Body)
	}
	if !bytes.Equal(survivor.Body.Bytes(), wantJSON(t, sw)) {
		t.Fatal("surviving waiter's bytes differ from simulate -json")
	}
	if _, hit := s.results.Get(canonicalKey(t, body)); !hit {
		t.Fatal("completed flight's result missing from the response cache")
	}
	if got := gb.submits.Load(); got != 1 {
		t.Fatalf("backend submissions = %d, want 1", got)
	}
}

func canonicalKey(t *testing.T, body []byte) string {
	t.Helper()
	_, key, err := canonicalSpec(body)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestSSEStream drives /v1/sweep/stream end to end: progress events with
// monotonically tightening coverage per cell, then a result event whose
// reassembled data is byte-identical to simulate -json.
func TestSSEStream(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	sw := testSweep(17, 3)
	body := specJSON(t, sw)
	want := wantJSON(t, sw)

	rr := post(s, "/v1/sweep/stream", body)
	if rr.Code != http.StatusOK {
		t.Fatalf("stream: status %d: %s", rr.Code, rr.Body)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := parseSSE(t, rr.Body.String())
	cells := len(sw.Grid.Cells())
	wantProgress := cells * sw.Reps
	var progress int
	lastDone := map[int]int{}
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("unexpected %q event before the result", ev.name)
		}
		var p progressEvent
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("bad progress payload %q: %v", ev.data, err)
		}
		if p.DoneReps != lastDone[p.Cell]+1 || p.TotalReps != sw.Reps {
			t.Fatalf("non-monotone progress for cell %d: %+v after %d done", p.Cell, p, lastDone[p.Cell])
		}
		lastDone[p.Cell] = p.DoneReps
		progress++
	}
	if progress != wantProgress {
		t.Fatalf("saw %d progress events, want %d (cells x reps)", progress, wantProgress)
	}
	final := events[len(events)-1]
	if final.name != "result" {
		t.Fatalf("final event is %q, want result", final.name)
	}
	// SSE strips the payload's trailing newline; restore it before the
	// byte comparison.
	if got := final.data + "\n"; got != string(want) {
		t.Fatal("streamed result differs from simulate -json bytes")
	}

	// A second stream for the now-cached spec is a single result event.
	rr = post(s, "/v1/sweep/stream", body)
	events = parseSSE(t, rr.Body.String())
	if len(events) != 1 || events[0].name != "result" || events[0].data+"\n" != string(want) {
		t.Fatalf("cached stream: got %d events, want 1 identical result", len(events))
	}
}

type sseEvent struct {
	name string
	data string
}

// parseSSE reassembles a raw SSE stream: data lines of one event joined
// with '\n' (the trailing newline stays stripped, as the SSE spec demands).
func parseSSE(t *testing.T, raw string) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, block := range strings.Split(raw, "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var ev sseEvent
		var data []string
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				data = append(data, line[len("data: "):])
			default:
				t.Fatalf("unparseable SSE line %q", line)
			}
		}
		// Mimic a spec-conformant SSE client: join data lines with '\n',
		// then strip the single trailing newline the framing adds.
		ev.data = strings.TrimSuffix(strings.Join(data, "\n"), "\n")
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no SSE events in stream")
	}
	return events
}

// TestAdmission covers the request-validation surface: malformed and
// unknown-field specs, oversized bodies and grids, wrong method, and the
// MaxInflight refusal with Retry-After.
func TestAdmission(t *testing.T) {
	gb := &gateBackend{inner: exp.PoolBackend{}, gate: make(chan struct{})}
	s := New(Options{Exp: exp.Options{Backend: gb}, MaxInflight: 1, MaxBodyBytes: 1 << 10, MaxCells: 4})
	defer s.Close()

	if rr := post(s, "/v1/sweep", []byte("{not json")); rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d, want 400", rr.Code)
	}
	if rr := post(s, "/v1/sweep", []byte(`{"jbos": 100}`)); rr.Code != http.StatusBadRequest ||
		!strings.Contains(rr.Body.String(), "jbos") {
		t.Fatalf("unknown field: status %d body %q, want 400 naming the field", rr.Code, rr.Body)
	}
	if rr := post(s, "/v1/sweep", bytes.Repeat([]byte("x"), 2<<10)); rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rr.Code)
	}
	wide := testSweep(1, 1)
	wide.Grid.K = []int{1, 2, 3, 4, 5}
	if rr := post(s, "/v1/sweep", specJSON(t, wide)); rr.Code != http.StatusBadRequest ||
		!strings.Contains(rr.Body.String(), "admission cap") {
		t.Fatalf("oversized grid: status %d body %q, want 400", rr.Code, rr.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/sweep", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", rr.Code)
	}

	// Saturate the single inflight slot, then ask for a distinct spec.
	done := make(chan struct{})
	go func() { defer close(done); post(s, "/v1/sweep", specJSON(t, testSweep(2, 1))) }()
	waitFor(t, "first flight to start", func() bool { return s.computations.Load() == 1 })
	rr = post(s, "/v1/sweep", specJSON(t, testSweep(3, 1)))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-inflight miss: status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}
	// An identical spec, though, joins the running flight — coalesced
	// requests bypass the inflight cap.
	joined := make(chan int, 1)
	go func() { joined <- post(s, "/v1/sweep", specJSON(t, testSweep(2, 1))).Code }()
	waitFor(t, "identical spec to coalesce", func() bool { return s.coalesced.Load() == 1 })
	close(gb.gate)
	<-done
	if code := <-joined; code != http.StatusOK {
		t.Fatalf("coalesced join during saturation: status %d, want 200", code)
	}
}

// TestBoundedUnderDistinctLoad pins the always-on guarantee: sustained
// distinct-spec traffic must not grow server memory without bound — the
// response cache evicts at its cap and the flights table drains to empty.
func TestBoundedUnderDistinctLoad(t *testing.T) {
	s := New(Options{MaxEntries: 4})
	defer s.Close()
	const n = 12
	for i := 0; i < n; i++ {
		sw := testSweep(uint64(100+i), 1)
		if rr := post(s, "/v1/sweep", specJSON(t, sw)); rr.Code != http.StatusOK {
			t.Fatalf("spec %d: status %d: %s", i, rr.Code, rr.Body)
		}
	}
	st := s.results.Stats()
	if st.Entries > 4 {
		t.Fatalf("response cache holds %d entries past its cap 4", st.Entries)
	}
	if st.Evictions != n-4 {
		t.Fatalf("evictions = %d, want %d", st.Evictions, n-4)
	}
	s.mu.Lock()
	flights, inflight := len(s.flights), s.inflight
	s.mu.Unlock()
	if flights != 0 || inflight != 0 {
		t.Fatalf("flights table not drained: %d entries, %d inflight", flights, inflight)
	}
	// The stats endpoint surfaces the same counters.
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	var got Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("stats endpoint: %v (%s)", err, rr.Body)
	}
	if got.Computations != n || got.Results.Evictions != n-4 {
		t.Fatalf("stats = %+v, want %d computations and %d evictions", got, n, n-4)
	}
}

// TestCoalesceStressRace hammers the flight table from many goroutines
// mixing repeated and distinct specs — run under -race, it is the data-race
// gate for the coalescer; functionally it checks every answer for a spec is
// byte-identical and no spec is computed more than once.
func TestCoalesceStressRace(t *testing.T) {
	gb := &gateBackend{inner: exp.PoolBackend{}}
	s := New(Options{Exp: exp.Options{Backend: gb}, MaxInflight: 64})
	defer s.Close()
	const specs = 4
	const waiters = 8
	bodies := make([][]byte, specs)
	for i := range bodies {
		bodies[i] = specJSON(t, testSweep(uint64(200+i), 1))
	}
	got := make([][][]byte, specs)
	for i := range got {
		got[i] = make([][]byte, waiters)
	}
	var wg sync.WaitGroup
	for i := 0; i < specs; i++ {
		for j := 0; j < waiters; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				rr := post(s, "/v1/sweep", bodies[i])
				if rr.Code == http.StatusOK {
					got[i][j] = rr.Body.Bytes()
				}
			}(i, j)
		}
	}
	wg.Wait()
	for i := 0; i < specs; i++ {
		var ref []byte
		for j := 0; j < waiters; j++ {
			if got[i][j] == nil {
				t.Fatalf("spec %d waiter %d failed", i, j)
			}
			if ref == nil {
				ref = got[i][j]
			} else if !bytes.Equal(ref, got[i][j]) {
				t.Fatalf("spec %d: divergent responses across waiters", i)
			}
		}
	}
	if sub := gb.submits.Load(); sub != specs {
		t.Fatalf("backend submissions = %d, want %d (one per distinct spec)", sub, specs)
	}
}

// TestHealthz is the liveness probe contract cmd/resultd's -addr-file
// startup handshake relies on.
func TestHealthz(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK || rr.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rr.Code, rr.Body)
	}
}
