package serve

// Backend-health tracking: the serving layer's graceful-degradation seam.
// When a flight fails because the compute backend is unreachable (the
// fabric client exhausted its redial budget — errors.Is on
// exp.ErrBackendUnavailable), the server opens a backend-down window with
// exponential backoff: cache hits keep serving at memory speed, but new
// computations are refused with 503 and a Retry-After derived from the
// window, instead of every miss hanging for a full redial budget. The
// first miss after the window closes is admitted as a probe; its success
// resets the backoff, its failure doubles the window.
//
// The same machinery derives the Retry-After of inflight-cap 503s: an EWMA
// of recent flight durations estimates when a computation slot will free
// up, replacing the old hardcoded "Retry-After: 1".

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/exp"
)

// Defaults for the backend-down backoff window.
const (
	defaultBackendRetryBase = 1 * time.Second
	defaultBackendRetryMax  = 60 * time.Second
	// retryAfterCap bounds any Retry-After hint we hand out; beyond this a
	// client should be polling anyway.
	retryAfterCap = 300
	// ewmaAlpha is the weight of the newest flight duration in the
	// inflight-pressure estimate.
	ewmaAlpha = 0.3
)

// noteFlightOutcome folds one finished flight into the backend-health
// state: a success closes any down window and feeds the duration EWMA; a
// backend-unavailable failure opens (or doubles) the down window. Other
// errors are deterministic task failures and say nothing about backend
// health.
func (s *Server) noteFlightOutcome(err error, took time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.backendFailures = 0
		s.backendDownUntil = time.Time{}
		sec := took.Seconds()
		if s.flightEWMA == 0 {
			s.flightEWMA = sec
		} else {
			s.flightEWMA = (1-ewmaAlpha)*s.flightEWMA + ewmaAlpha*sec
		}
		return
	}
	if !errors.Is(err, exp.ErrBackendUnavailable) {
		return
	}
	s.backendUnavail.Add(1)
	s.backendFailures++
	window := s.backendRetryBase() << (s.backendFailures - 1)
	if max := s.backendRetryMax(); window > max || window <= 0 {
		window = max
	}
	s.backendDownUntil = time.Now().Add(window)
	s.opts.Logf("serve: backend unavailable (failure %d): refusing new computations for %v; cache hits keep serving", s.backendFailures, window)
}

func (s *Server) backendRetryBase() time.Duration {
	if s.opts.BackendRetryBase > 0 {
		return s.opts.BackendRetryBase
	}
	return defaultBackendRetryBase
}

func (s *Server) backendRetryMax() time.Duration {
	if s.opts.BackendRetryMax > 0 {
		return s.opts.BackendRetryMax
	}
	return defaultBackendRetryMax
}

// backendDown reports whether the down window is currently open, and if so
// for how much longer; callers must not hold s.mu.
func (s *Server) backendDown() (bool, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	left := time.Until(s.backendDownUntil)
	return left > 0, left
}

// retryAfterSeconds derives the Retry-After hint for a 503: the remainder
// of the backend-down window when one is open, else the flight-duration
// EWMA (when the 503 is inflight pressure, a slot frees up after about one
// flight). Always >= 1, capped at retryAfterCap.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	left := time.Until(s.backendDownUntil)
	ewma := s.flightEWMA
	s.mu.Unlock()
	var sec float64
	if left > 0 {
		sec = left.Seconds()
	} else {
		sec = ewma
	}
	n := int(math.Ceil(sec))
	if n < 1 {
		n = 1
	}
	if n > retryAfterCap {
		n = retryAfterCap
	}
	return n
}

// errBackendDownWindow is the refusal handed to misses while the down
// window is open; it wraps exp.ErrBackendUnavailable so handlers route it
// to 503 + Retry-After like a fresh probe failure.
func errBackendDownWindow(left time.Duration) error {
	return fmt.Errorf("serve: compute backend unreachable, retrying in %v (cache hits still served): %w",
		left.Round(time.Second), exp.ErrBackendUnavailable)
}
