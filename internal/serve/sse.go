package serve

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
)

// handleStream is POST /v1/sweep/stream: the same spec resolution as
// /v1/sweep, answered as a Server-Sent Events stream. A cached spec yields
// a single "result" event; a miss joins (or starts) the flight and streams
// one "progress" event per finished replication — the cell's partial
// aggregate, its CI tightening live — then the final "result" (or "error")
// event. Late joiners are replayed the flight's history first.
//
// The "result" data is the canonical ResultSet JSON split across data:
// lines; rejoining them with newlines (plus the SSE-stripped trailing one)
// reproduces `simulate -json` byte-for-byte.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	key, sw, ok := s.readSpec(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if resp, hit := s.results.Get(key); hit {
		s.hits.Add(1)
		sseHeaders(w)
		writeSSEEvent(w, "result", resp)
		flush()
		return
	}
	f, status, err := s.getFlight(key, sw)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		http.Error(w, err.Error(), status)
		return
	}
	sseHeaders(w)
	flush()
	next := 0
	final := func() {
		evs, _ := f.snapshot(next)
		for _, ev := range evs {
			writeSSEEvent(w, "progress", ev)
		}
		if f.err != nil {
			writeSSEEvent(w, "error", []byte(f.err.Error()))
		} else {
			writeSSEEvent(w, "result", f.resp)
		}
		flush()
	}
	for {
		evs, update := f.snapshot(next)
		next += len(evs)
		for _, ev := range evs {
			writeSSEEvent(w, "progress", ev)
		}
		if len(evs) > 0 {
			flush()
		}
		select {
		case <-update:
		case <-f.done:
			final()
			return
		case <-r.Context().Done():
			// Subscriber gone; the flight keeps running on the server's
			// base context for the remaining waiters and the cache.
			return
		}
	}
}

func sseHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
}

// writeSSEEvent emits one event, splitting multi-line data across data:
// lines as the SSE framing requires. A trailing newline in data yields a
// final empty data: line, so a client that rejoins lines with '\n' (and
// restores the one newline SSE strips from the end) recovers data exactly.
func writeSSEEvent(w io.Writer, name string, data []byte) {
	io.WriteString(w, "event: ")
	io.WriteString(w, name)
	io.WriteString(w, "\n")
	for _, line := range bytes.Split(data, []byte("\n")) {
		io.WriteString(w, "data: ")
		w.Write(line)
		io.WriteString(w, "\n")
	}
	io.WriteString(w, "\n")
}
