// Package serve is the always-on results service of the experiment layer:
// an HTTP server (cmd/resultd) where clients POST a sweep spec — the same
// JSON shape cmd/simulate's grid uses, i.e. a serialized exp.Sweep — and
// get back the completed ResultSet, byte-identical to what `simulate -json`
// would have written for the same spec.
//
// The layering is three caches deep, fastest first:
//
//  1. a size-bounded LRU of fully-rendered response bytes (internal/lru),
//     keyed by the canonical spec hash, with a second raw-body memo LRU in
//     front of it so the hot path answers repeat requests without even
//     parsing JSON — a cache hit is two map lookups and one write;
//  2. exp.Options.Cache (cell granularity): a miss recomputes only the
//     cells the underlying cache does not hold;
//  3. the configured exp.Backend — the in-process pool, worker subprocesses,
//     or a fabric dispatcher (`resultd -backend fabric`).
//
// Concurrent identical requests are coalesced singleflight-style: N waiters
// share 1 backend submission and all receive the same bytes; a waiter that
// disconnects never cancels the shared computation (it runs on the server's
// base context, and its result still lands in the cache). Long sweeps can
// be watched on /v1/sweep/stream, which streams partial aggregates over SSE
// — cells completed so far, CIs tightening — as RunProgress events, with
// late subscribers replayed from the start of the flight.
//
// Endpoints: POST /v1/sweep (JSON), POST /v1/sweep/stream (SSE),
// GET /v1/stats (counters of every layer), GET /healthz.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/lru"
)

// Defaults for the zero Options value.
const (
	defaultMaxEntries   = 1 << 14
	defaultMaxBytes     = 256 << 20
	defaultMaxCells     = 4096
	defaultMaxBodyBytes = 1 << 20
	defaultMaxInflight  = 4
	// rawMemo entries are (body bytes -> 64-byte key); bound them tighter
	// on bytes since hostile clients control body size.
	defaultMemoEntries = 1 << 15
	defaultMemoBytes   = 64 << 20
)

// Options configure a Server. The zero value serves on the in-process pool
// with default caps.
type Options struct {
	// Exp configures how misses are computed: Workers, Cache (the
	// cell-granularity layer under the response cache) and Backend (pool,
	// proc or fabric) — exactly the knobs cmd/simulate exposes.
	Exp exp.Options
	// MaxEntries and MaxBytes cap the rendered-response LRU; <= 0 picks the
	// defaults (16Ki entries, 256 MiB). The raw-body memo in front of it is
	// capped proportionally.
	MaxEntries int
	MaxBytes   int64
	// MaxCells bounds the grid size of an admitted spec (<= 0 means 4096):
	// a sweep's response is rendered whole, so unbounded grids would let one
	// request hold arbitrary memory.
	MaxCells int
	// MaxBodyBytes bounds the request body (<= 0 means 1 MiB).
	MaxBodyBytes int64
	// MaxInflight bounds concurrently *distinct* computations (<= 0 means
	// 4); excess misses are refused with 503 + Retry-After instead of piling
	// onto the backend. Coalesced joins of an existing flight are always
	// admitted — they cost no backend work.
	MaxInflight int
	// BackendRetryBase and BackendRetryMax shape the backend-down backoff
	// window: after a flight fails with exp.ErrBackendUnavailable, new
	// computations are refused (503 + Retry-After) for BackendRetryBase,
	// doubling per consecutive failure up to BackendRetryMax; cache hits
	// keep serving throughout. <= 0 means 1s and 60s.
	BackendRetryBase time.Duration
	BackendRetryMax  time.Duration
	// Logf receives operational events; nil discards them.
	Logf func(format string, args ...any)
}

// Server implements the results service; construct with New, mount via
// http.Server{Handler: s}, stop with Close.
type Server struct {
	opts    Options
	baseCtx context.Context
	cancel  context.CancelFunc

	// results maps canonical spec hash -> rendered response bytes; rawMemo
	// maps exact raw body bytes -> (canonical spec hash, parsed sweep), so
	// repeat bodies skip JSON entirely on a hit and can still start a
	// computation without re-parsing on a response-cache miss.
	results *lru.Cache[[]byte]
	rawMemo *lru.Cache[memoEntry]

	mu       sync.Mutex
	flights  map[string]*flight
	inflight int
	// backendDownUntil, when in the future, is the open backend-down
	// window: new computations are refused until it passes. backendFailures
	// counts consecutive backend-unavailable flights (the backoff
	// exponent); flightEWMA tracks recent flight durations in seconds (the
	// inflight-pressure Retry-After hint). See degrade.go.
	backendDownUntil time.Time
	backendFailures  int
	flightEWMA       float64

	bufPool sync.Pool

	requests       atomic.Int64
	hits           atomic.Int64
	coalesced      atomic.Int64
	computations   atomic.Int64
	rejected       atomic.Int64
	backendUnavail atomic.Int64
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = defaultMaxEntries
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = defaultMaxBytes
	}
	if opts.MaxCells <= 0 {
		opts.MaxCells = defaultMaxCells
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBodyBytes
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = defaultMaxInflight
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		baseCtx: ctx,
		cancel:  cancel,
		results: lru.New[[]byte](opts.MaxEntries, opts.MaxBytes),
		rawMemo: lru.New[memoEntry](min(opts.MaxEntries*2, defaultMemoEntries*4), defaultMemoBytes),
		flights: map[string]*flight{},
	}
	s.bufPool.New = func() any { b := make([]byte, 4096); return &b }
	return s
}

// Close cancels the server's base context, aborting in-flight computations.
// In-progress handlers finish with errors; the caches stay readable.
func (s *Server) Close() { s.cancel() }

// ServeHTTP routes the service's four endpoints. Routing is a direct path
// switch rather than a ServeMux: the cache-hit path is the product's hot
// loop and every allocation on it shows up at six figures of requests/sec.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/sweep":
		s.handleSweep(w, r)
	case "/v1/sweep/stream":
		s.handleStream(w, r)
	case "/v1/stats":
		s.handleStats(w, r)
	case "/healthz":
		io.WriteString(w, "ok\n")
	default:
		http.NotFound(w, r)
	}
}

// memoEntry is the rawMemo value: the canonical key plus the parsed sweep
// (a shallow struct copy — sweeps are read-only once admitted), so neither
// the hit path nor a later flight start touches the JSON decoder again.
type memoEntry struct {
	key string
	sw  exp.Sweep
}

// readSpec reads the request body into a pooled buffer and resolves it to
// (canonical key, parsed sweep). On the hot path — a body seen before — the
// raw-memo lookup resolves both without any JSON work.
func (s *Server) readSpec(w http.ResponseWriter, r *http.Request) (key string, sw exp.Sweep, ok bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a sweep spec (the cmd/simulate grid JSON)", http.StatusMethodNotAllowed)
		return "", sw, false
	}
	cl := r.ContentLength
	if cl < 0 || cl > s.opts.MaxBodyBytes {
		s.rejected.Add(1)
		http.Error(w, fmt.Sprintf("spec body must declare Content-Length <= %d", s.opts.MaxBodyBytes), http.StatusRequestEntityTooLarge)
		return "", sw, false
	}
	bufp := s.bufPool.Get().(*[]byte)
	defer s.bufPool.Put(bufp)
	if int64(cap(*bufp)) < cl {
		*bufp = make([]byte, cl)
	}
	body := (*bufp)[:cl]
	if _, err := io.ReadFull(r.Body, body); err != nil {
		s.rejected.Add(1)
		http.Error(w, "short body: "+err.Error(), http.StatusBadRequest)
		return "", sw, false
	}
	if m, hit := s.rawMemo.GetBytes(body); hit {
		return m.key, m.sw, true
	}
	sw, key, err := canonicalSpec(body)
	if err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return "", sw, false
	}
	if n := len(sw.Grid.Cells()); n > s.opts.MaxCells {
		s.rejected.Add(1)
		http.Error(w, fmt.Sprintf("spec expands to %d cells, over the admission cap %d", n, s.opts.MaxCells), http.StatusBadRequest)
		return "", sw, false
	}
	s.rawMemo.Put(string(body), memoEntry{key: key, sw: sw}, int64(len(body)+len(key)))
	return key, sw, true
}

// handleSweep is POST /v1/sweep: answer from the response cache, else join
// (or start) the flight for this spec and reply with its bytes.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	key, sw, ok := s.readSpec(w, r)
	if !ok {
		return
	}
	if resp, hit := s.results.Get(key); hit {
		s.hits.Add(1)
		writeJSONBytes(w, resp)
		return
	}
	f, status, err := s.getFlight(key, sw)
	if err != nil {
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		http.Error(w, err.Error(), status)
		return
	}
	select {
	case <-f.done:
	case <-r.Context().Done():
		// The waiter is gone; the flight keeps computing on the server's
		// base context and its result still lands in the cache.
		return
	}
	if f.err != nil {
		if errors.Is(f.err, exp.ErrBackendUnavailable) {
			// The work is fine, the backend is gone: tell the client when to
			// come back instead of calling it a server error.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			http.Error(w, f.err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, f.err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, f.resp)
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight := s.inflight
	s.mu.Unlock()
	down, downLeft := s.backendDown()
	st := Stats{
		Requests:           s.requests.Load(),
		CacheHits:          s.hits.Load(),
		Coalesced:          s.coalesced.Load(),
		Computations:       s.computations.Load(),
		Rejected:           s.rejected.Load(),
		BackendUnavailable: s.backendUnavail.Load(),
		BackendDown:        down,
		Inflight:           inflight,
		Results:            s.results.Stats(),
		RawMemo:            s.rawMemo.Stats(),
	}
	if down {
		st.BackendRetryInSec = int(downLeft.Seconds()) + 1
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

// Stats is the /v1/stats payload: request-level counters plus the LRU
// counters of both cache layers, so "is the cache the right size" and "is
// coalescing working" are observable questions.
type Stats struct {
	// Requests counts sweep requests (both endpoints); CacheHits the ones
	// answered from the response cache; Coalesced the ones that joined an
	// existing flight; Computations the flights started (backend
	// submissions); Rejected the admission refusals.
	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cacheHits"`
	Coalesced    int64 `json:"coalesced"`
	Computations int64 `json:"computations"`
	Rejected     int64 `json:"rejected"`
	// BackendUnavailable counts flights that failed because the compute
	// backend was unreachable; BackendDown reports an open backend-down
	// window (misses currently refused with 503 + Retry-After, cache hits
	// still served), with BackendRetryInSec the window's remainder.
	BackendUnavailable int64 `json:"backendUnavailable"`
	BackendDown        bool  `json:"backendDown"`
	BackendRetryInSec  int   `json:"backendRetryInSec,omitempty"`
	Inflight           int   `json:"inflight"`
	// Results and RawMemo are the LRU layers' counters (hits at this level
	// double-count CacheHits; evictions and occupancy are the news here).
	Results lru.Stats `json:"results"`
	RawMemo lru.Stats `json:"rawMemo"`
}

// canonicalSpec parses and validates a sweep spec and derives its canonical
// key: the hex SHA-256 of the *re-marshaled* sweep, so bodies differing
// only in whitespace, field order or JSON escaping coalesce to one identity.
func canonicalSpec(body []byte) (exp.Sweep, string, error) {
	var sw exp.Sweep
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		return sw, "", fmt.Errorf("bad sweep spec: %w", err)
	}
	if dec.More() {
		return sw, "", fmt.Errorf("bad sweep spec: trailing data after the JSON object")
	}
	if err := sw.Validate(); err != nil {
		return sw, "", err
	}
	canon, err := json.Marshal(sw)
	if err != nil {
		return sw, "", fmt.Errorf("canonicalizing spec: %w", err)
	}
	sum := sha256.Sum256(canon)
	return sw, hex.EncodeToString(sum[:]), nil
}

// writeJSONBytes writes a fully-rendered JSON response in one Write with an
// explicit Content-Length (no chunking on the hot path).
func writeJSONBytes(w http.ResponseWriter, b []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}
