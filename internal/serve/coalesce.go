package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/exp"
)

// flight is one in-progress computation of a sweep, shared by every request
// that asked for the same canonical spec while it runs. Plain waiters block
// on done; SSE subscribers additionally replay events — the rendered
// progress stream — from any index, so a subscriber that joins mid-flight
// sees the full history before going live.
//
// The flight runs on the *server's* base context, deliberately detached
// from any request context: a waiter that disconnects must not cancel work
// other waiters (and the cache) are counting on.
type flight struct {
	key string

	mu     sync.Mutex
	events [][]byte      // rendered progress-event JSON, in emit order
	update chan struct{} // closed and replaced on every append

	done chan struct{} // closed after resp/err are set and events are final
	resp []byte
	err  error
}

func newFlight(key string) *flight {
	return &flight{
		key:    key,
		update: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// progressEvent is the SSE "progress" payload: one line of the partial
// aggregate per finished replication — enough for a client to watch a
// cell's CI tighten without waiting for the full ResultSet.
type progressEvent struct {
	Cell      int     `json:"cell"`
	DoneReps  int     `json:"doneReps"`
	TotalReps int     `json:"totalReps"`
	FromCache bool    `json:"fromCache,omitempty"`
	ET        float64 `json:"et"`
	ETCI      float64 `json:"etCI"`
}

// record is the exp.RunProgress callback: render the event once and wake
// every subscriber. RunProgress serializes callbacks, but append under the
// flight's own lock anyway — subscribers read events concurrently.
func (f *flight) record(p exp.Progress) {
	ev, err := json.Marshal(progressEvent{
		Cell:      p.CellIndex,
		DoneReps:  p.DoneReps,
		TotalReps: p.TotalReps,
		FromCache: p.FromCache,
		ET:        p.Partial.ET,
		ETCI:      p.Partial.ETCI,
	})
	if err != nil {
		return
	}
	f.mu.Lock()
	f.events = append(f.events, ev)
	close(f.update)
	f.update = make(chan struct{})
	f.mu.Unlock()
}

// snapshot returns the events at index >= from plus the channel that will
// be closed on the next append — the subscriber's poll-free wait handle.
func (f *flight) snapshot(from int) ([][]byte, chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.events[from:], f.update
}

// getFlight joins the in-progress flight for key, or starts one. A join is
// free (the backend work is already paid for) and always admitted; starting
// a new flight is refused with 503 once MaxInflight computations are
// running.
func (s *Server) getFlight(key string, sw exp.Sweep) (*flight, int, error) {
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		return f, 0, nil
	}
	if left := time.Until(s.backendDownUntil); left > 0 {
		// Backend-down window open: don't start a computation that will only
		// hang on redials. The first miss after the window closes probes.
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, http.StatusServiceUnavailable, errBackendDownWindow(left)
	}
	if s.inflight >= s.opts.MaxInflight {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("serve: %d computations already in flight (cap %d); retry shortly", s.opts.MaxInflight, s.opts.MaxInflight)
	}
	f := newFlight(key)
	s.flights[key] = f
	s.inflight++
	s.mu.Unlock()
	s.computations.Add(1)
	go s.runFlight(f, sw)
	return f, 0, nil
}

// runFlight computes the sweep, renders the canonical response bytes
// (exactly what `simulate -json` writes for this spec), installs them in
// the response cache, and releases every waiter.
func (s *Server) runFlight(f *flight, sw exp.Sweep) {
	start := time.Now()
	rs, err := exp.RunProgress(s.baseCtx, sw, s.opts.Exp, f.record)
	if err == nil {
		var buf bytes.Buffer
		if werr := rs.WriteJSON(&buf); werr != nil {
			err = fmt.Errorf("serve: rendering result: %w", werr)
		} else {
			f.resp = buf.Bytes()
			s.results.Put(f.key, f.resp, int64(len(f.key)+len(f.resp)))
		}
	}
	// Fold the outcome into backend health *before* releasing waiters, so a
	// waiter's Retry-After reflects the window this flight just opened.
	s.noteFlightOutcome(err, time.Since(start))
	if err != nil {
		f.err = fmt.Errorf("serve: computing sweep: %w", err)
		s.opts.Logf("serve: flight %.12s failed: %v", f.key, err)
	}
	s.mu.Lock()
	delete(s.flights, f.key)
	s.inflight--
	s.mu.Unlock()
	close(f.done)
}
