package mcsim

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/policy"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/workload"
)

// twoClass builds the paper's two-class configuration: class 0 inelastic
// (cap 1), class 1 elastic (cap inf).
func twoClass(lambdaI, muI, lambdaE, muE float64) []ClassSpec {
	return []ClassSpec{
		{Name: "inelastic", Cap: 1, Lambda: lambdaI, Size: dist.NewExponential(muI)},
		{Name: "elastic", Cap: math.Inf(1), Lambda: lambdaE, Size: dist.NewExponential(muE)},
	}
}

// TestReducesToTwoClassEngine replays an identical arrival sequence through
// internal/sim (under IF) and mcsim (under PriorityOrder{0,1}) and demands
// identical completion counts and mean response times: the generalized
// engine must reproduce the specialized one exactly.
func TestReducesToTwoClassEngine(t *testing.T) {
	model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
	trace := model.Trace(11, 20_000)

	// Specialized engine.
	spec := sim.NewSystem(4, policy.InelasticFirst{})
	for _, a := range trace {
		spec.AdvanceTo(a.Time)
		spec.Arrive(a)
	}
	spec.Drain(math.Inf(1))

	// Generalized engine with the same jobs.
	gen := NewSystem(4, twoClass(model.LambdaI, model.MuI, model.LambdaE, model.MuE),
		PriorityOrder{Order: []int{0, 1}})
	for _, a := range trace {
		gen.Arrive(Arrival{Time: a.Time, Class: int(a.Class), Size: a.Size})
	}
	gen.Drain(math.Inf(1))

	if gen.Completions() != int64(len(trace)) {
		t.Fatalf("generalized engine completed %d of %d", gen.Completions(), len(trace))
	}
	for c := 0; c < 2; c++ {
		specMean := spec.Metrics().MeanResponse(sim.Class(c))
		genMean := gen.MeanResponse(c)
		if math.Abs(specMean-genMean) > 1e-9*specMean {
			t.Fatalf("class %d mean response: specialized %v, generalized %v", c, specMean, genMean)
		}
	}
}

// TestElasticUpToCRenormalization checks the Section 2 remark: a system
// where "inelastic" jobs can use up to C servers is equivalent to the C = 1
// system after renormalizing servers into units of C. We verify the
// equivalence by simulating both and comparing mean response times.
func TestElasticUpToCRenormalization(t *testing.T) {
	const cFactor = 2
	k := 8
	lambda, muI, muE := 1.2, 1.0, 1.0
	// Original: k=8 servers, capped class can use up to 2 servers, so a
	// size-x job on 2 servers takes x/2. Renormalized: k=4 units, cap 1,
	// sizes halved (each unit processes at rate 2 in original terms).
	capped := []ClassSpec{
		{Name: "capped", Cap: cFactor, Lambda: lambda, Size: dist.NewExponential(muI)},
		{Name: "elastic", Cap: math.Inf(1), Lambda: lambda, Size: dist.NewExponential(muE)},
	}
	renorm := []ClassSpec{
		{Name: "capped", Cap: 1, Lambda: lambda, Size: dist.NewExponential(muI * cFactor)},
		{Name: "elastic", Cap: math.Inf(1), Lambda: lambda, Size: dist.NewExponential(muE * cFactor)},
	}
	p := PriorityOrder{Order: []int{0, 1}}
	a := Run(k, capped, p, 5, 10_000, 150_000)
	b := Run(k/cFactor, renorm, p, 5, 10_000, 150_000)
	// Response times in the renormalized system are in halved time units.
	for c := 0; c < 2; c++ {
		orig := a.MeanResponse(c)
		scaled := b.MeanResponse(c) // sizes halved => same clock
		if math.Abs(orig-scaled) > 0.05*orig {
			t.Fatalf("class %d: capped system %v vs renormalized %v", c, orig, scaled)
		}
	}
}

// TestSingleClassMMk: one cap-1 class on k servers is an M/M/k.
func TestSingleClassMMk(t *testing.T) {
	classes := []ClassSpec{{Name: "jobs", Cap: 1, Lambda: 3.0, Size: dist.NewExponential(1)}}
	sys := Run(4, classes, PriorityOrder{Order: []int{0}}, 7, 20_000, 300_000)
	want := queueing.NewMMk(3.0, 1, 4).MeanResponse()
	if math.Abs(sys.MeanResponse(0)-want)/want > 0.03 {
		t.Fatalf("M/M/4 E[T]: %v, want %v", sys.MeanResponse(0), want)
	}
}

// TestThreeClassPriorityOrdering: with three classes of ascending mean size
// and caps {1, 4, inf} on k=8, the least-flexible-first and
// smallest-mean-first orders coincide and beat the reverse order.
func TestThreeClassPriorityOrdering(t *testing.T) {
	classes := []ClassSpec{
		{Name: "tiny-rigid", Cap: 1, Lambda: 1.5, Size: dist.NewExponential(4)},
		{Name: "mid-partial", Cap: 4, Lambda: 0.8, Size: dist.NewExponential(1)},
		{Name: "big-elastic", Cap: math.Inf(1), Lambda: 0.4, Size: dist.NewExponential(0.25)},
	}
	forward := Run(8, classes, PriorityOrder{Order: []int{0, 1, 2}}, 3, 20_000, 250_000)
	reverse := Run(8, classes, PriorityOrder{Order: []int{2, 1, 0}}, 3, 20_000, 250_000)
	if forward.MeanResponseAll() >= reverse.MeanResponseAll() {
		t.Fatalf("deferring flexible work should win: forward %v, reverse %v",
			forward.MeanResponseAll(), reverse.MeanResponseAll())
	}
}

func TestSmallestMeanFirstOrdersClasses(t *testing.T) {
	classes := []ClassSpec{
		{Name: "big", Cap: 1, Lambda: 1, Size: dist.NewExponential(0.5)},
		{Name: "small", Cap: 1, Lambda: 1, Size: dist.NewExponential(5)},
	}
	sys := NewSystem(4, classes, SmallestMeanFirst{})
	sys.Arrive(Arrival{Time: 0, Class: 0, Size: 10})
	sys.Arrive(Arrival{Time: 0, Class: 1, Size: 10})
	// Both cap-1 on k=4: both served anyway. Use k=1 for discrimination.
	sys2 := NewSystem(1, classes, SmallestMeanFirst{})
	sys2.Arrive(Arrival{Time: 0, Class: 0, Size: 10})
	sys2.Arrive(Arrival{Time: 0, Class: 1, Size: 1})
	sys2.AdvanceTo(1.5)
	// The small-mean class (class 1) should have been served first and
	// completed at t=1.
	if sys2.MeanResponse(1) != 1 {
		t.Fatalf("small class response %v, want 1", sys2.MeanResponse(1))
	}
	_ = sys
}

func TestLeastFlexibleFirstOrdersByCaps(t *testing.T) {
	classes := []ClassSpec{
		{Name: "elastic", Cap: math.Inf(1), Lambda: 1, Size: dist.NewExponential(1)},
		{Name: "rigid", Cap: 1, Lambda: 1, Size: dist.NewExponential(1)},
	}
	sys := NewSystem(2, classes, LeastFlexibleFirst{})
	sys.Arrive(Arrival{Time: 0, Class: 0, Size: 2}) // elastic
	sys.Arrive(Arrival{Time: 0, Class: 1, Size: 1}) // rigid, must get a server
	sys.AdvanceTo(1.0)
	if got := sys.MeanResponse(1); got != 1 {
		t.Fatalf("rigid job response %v, want 1 (LFF must serve it first)", got)
	}
}

func TestWorkAndJobsAccounting(t *testing.T) {
	classes := twoClass(1, 1, 1, 1)
	sys := NewSystem(4, classes, PriorityOrder{Order: []int{0, 1}})
	sys.Arrive(Arrival{Time: 0, Class: 0, Size: 3})
	sys.Arrive(Arrival{Time: 0, Class: 1, Size: 5})
	if sys.Work() != 8 || sys.NumJobs() != 2 {
		t.Fatalf("work %v jobs %d", sys.Work(), sys.NumJobs())
	}
	sys.AdvanceTo(1)
	// 1 server on the rigid job + 3 on the elastic: 8-4 = 4 left.
	if math.Abs(sys.Work()-4) > 1e-9 {
		t.Fatalf("work after 1s: %v", sys.Work())
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	classes := twoClass(1, 1, 1, 1)
	for name, fn := range map[string]func(){
		"zero k":    func() { NewSystem(0, classes, PriorityOrder{Order: []int{0, 1}}) },
		"nil pol":   func() { NewSystem(2, classes, nil) },
		"bad class": func() { NewSystem(2, []ClassSpec{{Cap: 0}}, PriorityOrder{}) },
		"bad arrival": func() {
			s := NewSystem(2, classes, PriorityOrder{Order: []int{0, 1}})
			s.Arrive(Arrival{Time: 0, Class: 5, Size: 1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
