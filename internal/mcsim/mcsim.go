// Package mcsim generalizes the two-class simulator to the extensions the
// paper sketches in Section 2 (inelastic jobs that may use up to C servers)
// and Section 6 (more than two classes with different levels of
// parallelizability): an arbitrary number of job classes, each with its own
// arrival rate, size distribution, and per-job parallelizability cap.
//
// A class with cap 1 is the paper's inelastic class; a class with cap >= k
// is fully elastic; intermediate caps model partially elastic jobs. The
// two-class configuration reproduces internal/sim exactly (tested by
// running both engines on identical arrival sequences).
package mcsim

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// ClassSpec describes one job class.
type ClassSpec struct {
	Name string
	// Cap is the maximum number of servers a single job of this class can
	// use at once; math.Inf(1) means fully elastic.
	Cap float64
	// Lambda is the Poisson arrival rate.
	Lambda float64
	// Size is the job-size distribution.
	Size dist.Distribution
}

// Job is a job in system.
type Job struct {
	ID        int
	Class     int
	Arrival   float64
	Size      float64
	Remaining float64
	rate      float64
}

// Arrival is an externally scheduled arrival.
type Arrival struct {
	Time  float64
	Class int
	Size  float64
}

// State is the policy-visible system state: per-class FCFS queues.
type State struct {
	K       int
	Time    float64
	Classes []ClassSpec
	Queues  [][]*Job
}

// Policy allocates servers. alloc[c][i] receives the share for
// Queues[c][i]; entries are pre-zeroed. Per-job allocations must respect
// the class cap and sum to at most K.
type Policy interface {
	Name() string
	Allocate(st *State, alloc [][]float64)
}

// PriorityOrder serves classes in strict preemptive priority, FCFS within a
// class: walking classes in Order, each job takes up to its class cap until
// the servers run out. With Order = [inelastic, elastic] and caps {1, inf}
// this is exactly Inelastic-First.
type PriorityOrder struct {
	Order []int
}

// Name implements Policy.
func (p PriorityOrder) Name() string { return fmt.Sprintf("PRIO%v", p.Order) }

// Allocate implements Policy.
func (p PriorityOrder) Allocate(st *State, alloc [][]float64) {
	remaining := float64(st.K)
	for _, c := range p.Order {
		cap := st.Classes[c].Cap
		for i := range st.Queues[c] {
			if remaining <= 0 {
				return
			}
			a := math.Min(cap, remaining)
			alloc[c][i] = a
			remaining -= a
		}
	}
}

// SmallestMeanFirst prioritizes classes by ascending mean size — the
// natural generalization of "give priority to the smaller class" suggested
// by Theorems 1 and 5.
type SmallestMeanFirst struct{}

// Name implements Policy.
func (SmallestMeanFirst) Name() string { return "SMF" }

// Allocate implements Policy.
func (SmallestMeanFirst) Allocate(st *State, alloc [][]float64) {
	order := make([]int, len(st.Classes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for p := i; p > 0 && st.Classes[order[p]].Size.Mean() < st.Classes[order[p-1]].Size.Mean(); p-- {
			order[p], order[p-1] = order[p-1], order[p]
		}
	}
	PriorityOrder{Order: order}.Allocate(st, alloc)
}

// LeastFlexibleFirst prioritizes classes by ascending parallelizability cap:
// serve the jobs that cannot make use of spare capacity first, deferring
// flexible work — the efficiency intuition behind Inelastic-First extended
// to many classes.
type LeastFlexibleFirst struct{}

// Name implements Policy.
func (LeastFlexibleFirst) Name() string { return "LFF" }

// Allocate implements Policy.
func (LeastFlexibleFirst) Allocate(st *State, alloc [][]float64) {
	order := make([]int, len(st.Classes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for p := i; p > 0 && st.Classes[order[p]].Cap < st.Classes[order[p-1]].Cap; p-- {
			order[p], order[p-1] = order[p-1], order[p]
		}
	}
	PriorityOrder{Order: order}.Allocate(st, alloc)
}

// System is a multi-class simulated cluster.
type System struct {
	k       int
	classes []ClassSpec
	policy  Policy
	clock   float64
	nextID  int
	queues  [][]*Job
	st      State
	alloc   [][]float64
	dirty   bool

	// Metrics.
	start        float64
	elapsed      float64
	areaN        []float64
	completions  []int64
	sumResponse  []float64
	arrivalCount []int64
}

// NewSystem builds an empty multi-class system.
func NewSystem(k int, classes []ClassSpec, p Policy) *System {
	if k < 1 || len(classes) == 0 || p == nil {
		panic("mcsim: invalid system construction")
	}
	for _, c := range classes {
		if c.Cap < 1 || c.Size == nil {
			panic(fmt.Sprintf("mcsim: invalid class %+v", c))
		}
	}
	s := &System{
		k: k, classes: classes, policy: p,
		queues:       make([][]*Job, len(classes)),
		alloc:        make([][]float64, len(classes)),
		areaN:        make([]float64, len(classes)),
		completions:  make([]int64, len(classes)),
		sumResponse:  make([]float64, len(classes)),
		arrivalCount: make([]int64, len(classes)),
	}
	s.st = State{K: k, Classes: classes}
	return s
}

// Clock returns the current time.
func (s *System) Clock() float64 { return s.clock }

// NumJobs returns the total jobs in system.
func (s *System) NumJobs() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// Work returns the total remaining work.
func (s *System) Work() float64 {
	w := 0.0
	for _, q := range s.queues {
		for _, j := range q {
			w += j.Remaining
		}
	}
	return w
}

// Arrive injects a job.
func (s *System) Arrive(a Arrival) {
	if a.Time < s.clock-1e-12 || a.Size <= 0 || a.Class < 0 || a.Class >= len(s.classes) {
		panic(fmt.Sprintf("mcsim: bad arrival %+v at clock %v", a, s.clock))
	}
	if a.Time > s.clock {
		s.advanceTo(a.Time)
	}
	j := &Job{ID: s.nextID, Class: a.Class, Arrival: s.clock, Size: a.Size, Remaining: a.Size}
	s.nextID++
	s.queues[a.Class] = append(s.queues[a.Class], j)
	s.arrivalCount[a.Class]++
	s.dirty = true
}

// AdvanceTo advances the clock, processing completions.
func (s *System) AdvanceTo(t float64) {
	if t < s.clock-1e-12 {
		panic("mcsim: AdvanceTo into the past")
	}
	s.advanceTo(t)
	s.clock = t
}

// Drain runs until empty or horizon.
func (s *System) Drain(horizon float64) {
	s.advanceTo(horizon)
	if s.clock < horizon {
		s.clock = horizon
	}
}

func (s *System) advanceTo(t float64) {
	for s.clock < t {
		s.refresh()
		job, tc := s.nextCompletion()
		if job == nil || tc > t {
			s.integrate(t - s.clock)
			s.clock = t
			return
		}
		s.integrate(tc - s.clock)
		s.clock = tc
		s.complete(job)
	}
}

func (s *System) refresh() {
	if !s.dirty {
		return
	}
	s.dirty = false
	s.st.Time = s.clock
	s.st.Queues = s.queues
	total := 0.0
	for c, q := range s.queues {
		if cap(s.alloc[c]) < len(q) {
			s.alloc[c] = make([]float64, len(q))
		}
		s.alloc[c] = s.alloc[c][:len(q)]
		for i := range s.alloc[c] {
			s.alloc[c][i] = 0
		}
	}
	s.policy.Allocate(&s.st, s.alloc)
	for c, q := range s.queues {
		capC := s.classes[c].Cap
		for i, j := range q {
			a := s.alloc[c][i]
			if a < -1e-9 || a > capC+1e-9 {
				panic(fmt.Sprintf("mcsim: policy %s broke the class-%d cap: %v", s.policy.Name(), c, a))
			}
			j.rate = math.Max(0, math.Min(a, capC))
			total += j.rate
		}
	}
	if total > float64(s.k)+1e-6 {
		panic(fmt.Sprintf("mcsim: policy %s allocated %v > k", s.policy.Name(), total))
	}
}

func (s *System) nextCompletion() (*Job, float64) {
	best := math.Inf(1)
	var job *Job
	for _, q := range s.queues {
		for _, j := range q {
			var t float64
			switch {
			case j.Remaining <= 0:
				t = s.clock
			case j.rate > 0:
				t = s.clock + j.Remaining/j.rate
			default:
				continue
			}
			if t < best {
				best, job = t, j
			}
		}
	}
	return job, best
}

func (s *System) integrate(dt float64) {
	if dt <= 0 {
		return
	}
	s.elapsed += dt
	for c, q := range s.queues {
		s.areaN[c] += float64(len(q)) * dt
		for _, j := range q {
			if j.rate > 0 {
				j.Remaining = math.Max(0, j.Remaining-j.rate*dt)
			}
		}
	}
}

func (s *System) complete(j *Job) {
	q := s.queues[j.Class]
	for i, cand := range q {
		if cand == j {
			copy(q[i:], q[i+1:])
			s.queues[j.Class] = q[:len(q)-1]
			s.completions[j.Class]++
			s.sumResponse[j.Class] += s.clock - j.Arrival
			s.dirty = true
			return
		}
	}
	panic("mcsim: completing unknown job")
}

// ResetMetrics restarts the observation window.
func (s *System) ResetMetrics() {
	s.start = s.clock
	s.elapsed = 0
	for c := range s.classes {
		s.areaN[c] = 0
		s.completions[c] = 0
		s.sumResponse[c] = 0
		s.arrivalCount[c] = 0
	}
}

// MeanResponse returns the mean response time of class c (NaN if none
// completed).
func (s *System) MeanResponse(c int) float64 {
	if s.completions[c] == 0 {
		return math.NaN()
	}
	return s.sumResponse[c] / float64(s.completions[c])
}

// MeanResponseAll returns the mean response time across classes.
func (s *System) MeanResponseAll() float64 {
	var n int64
	var sum float64
	for c := range s.classes {
		n += s.completions[c]
		sum += s.sumResponse[c]
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Completions returns total completed jobs.
func (s *System) Completions() int64 {
	var n int64
	for _, c := range s.completions {
		n += c
	}
	return n
}

// MeanJobs returns the time-average number of class-c jobs.
func (s *System) MeanJobs(c int) float64 {
	if s.elapsed == 0 {
		return math.NaN()
	}
	return s.areaN[c] / s.elapsed
}

// Run drives a complete stochastic simulation of the class set under the
// policy: Poisson arrivals per class, warmup discard, fixed measured
// completions.
func Run(k int, classes []ClassSpec, p Policy, seed uint64, warmup, maxJobs int64) *System {
	sys := NewSystem(k, classes, p)
	arr := make([]*xrand.Rand, len(classes))
	szr := make([]*xrand.Rand, len(classes))
	next := make([]float64, len(classes))
	for c := range classes {
		arr[c] = xrand.NewStream(seed, uint64(2*c+1))
		szr[c] = xrand.NewStream(seed, uint64(2*c+2))
		next[c] = arr[c].Exp(classes[c].Lambda)
	}
	warm := false
	for {
		// Next arrival across classes.
		cMin, tMin := 0, math.Inf(1)
		for c, t := range next {
			if t < tMin {
				cMin, tMin = c, t
			}
		}
		sys.AdvanceTo(tMin)
		if !warm && sys.Completions() >= warmup {
			sys.ResetMetrics()
			warm = true
		}
		if warm && sys.Completions() >= maxJobs {
			return sys
		}
		sys.Arrive(Arrival{Time: tMin, Class: cMin, Size: classes[cMin].Size.Sample(szr[cMin])})
		next[cMin] += arr[cMin].Exp(classes[cMin].Lambda)
	}
}
