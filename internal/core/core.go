// Package core is the model-level face of the library: a System type
// holding the paper's parameters, one-call analysis and simulation entry
// points, policy-by-name resolution, and the single-configuration
// experiments (the Theorem 6 counterexample, the Appendix A SRPT-k batch
// experiment, the busy-period fit ablation). The parameter sweeps behind
// Figures 4-6 and the Section 5 validation table are orchestrated one layer
// up, in internal/exp.
package core

import (
	"fmt"

	"repro/internal/ctmc"
	"repro/internal/mrt"
	"repro/internal/policy"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/workload"
)

// System is one instance of the paper's model: k servers, Poisson arrivals
// of inelastic (rate LambdaI, sizes Exp(MuI)) and elastic (rate LambdaE,
// sizes Exp(MuE)) jobs.
type System struct {
	K                int
	LambdaI, LambdaE float64
	MuI, MuE         float64
}

// NewSystem validates and returns a system; it panics on non-positive
// parameters (programming error at every call site in this repository).
func NewSystem(k int, lambdaI, muI, lambdaE, muE float64) System {
	s := System{K: k, LambdaI: lambdaI, LambdaE: lambdaE, MuI: muI, MuE: muE}
	if k < 1 || lambdaI <= 0 || lambdaE <= 0 || muI <= 0 || muE <= 0 {
		panic(fmt.Sprintf("core: invalid system %+v", s))
	}
	return s
}

// ForLoad builds the system with total load rho and lambdaI = lambdaE — the
// parameterization used by every figure in the paper.
func ForLoad(k int, rho, muI, muE float64) System {
	lI, lE := queueing.RatesForLoad(k, rho, muI, muE)
	return NewSystem(k, lI, muI, lE, muE)
}

// Rho returns the system load of Eq. 1.
func (s System) Rho() float64 {
	return queueing.SystemLoad(s.K, s.LambdaI, s.MuI, s.LambdaE, s.MuE)
}

// Params converts to the analysis parameter struct.
func (s System) Params() mrt.Params {
	return mrt.Params{K: s.K, LambdaI: s.LambdaI, LambdaE: s.LambdaE, MuI: s.MuI, MuE: s.MuE}
}

// Model converts to the workload generator model.
func (s System) Model() workload.Model {
	return workload.NewModel(s.K, s.LambdaI, s.MuI, s.LambdaE, s.MuE)
}

// Model2D converts to the exact-chain model.
func (s System) Model2D() ctmc.Model2D {
	return ctmc.Model2D{K: s.K, LambdaI: s.LambdaI, LambdaE: s.LambdaE, MuI: s.MuI, MuE: s.MuE}
}

// Analyze returns the matrix-analytic mean response times for IF and EF
// (Section 5 pipeline).
func (s System) Analyze() (ifRes, efRes mrt.Result, err error) {
	return mrt.Analyze(s.Params())
}

// PolicyByName returns one of the built-in allocation policies. Recognized
// names: IF, EF, FCFS, EQUI, GREEDY, DEFER, SRPT and THRESH:<cap>.
func (s System) PolicyByName(name string) (sim.Policy, error) {
	switch name {
	case "IF":
		return policy.InelasticFirst{}, nil
	case "EF":
		return policy.ElasticFirst{}, nil
	case "FCFS":
		return policy.FCFS{}, nil
	case "EQUI":
		return policy.Equi{}, nil
	case "GREEDY":
		return policy.Greedy{MuI: s.MuI, MuE: s.MuE}, nil
	case "DEFER":
		return policy.DeferElastic{}, nil
	case "SRPT":
		return policy.SRPTK{}, nil
	}
	var capN int
	if n, _ := fmt.Sscanf(name, "THRESH:%d", &capN); n == 1 {
		return policy.Threshold{Cap: capN}, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", name)
}

// SimOptions controls a simulation run.
type SimOptions struct {
	Seed       uint64
	WarmupJobs int64
	MaxJobs    int64
}

// DefaultSimOptions is sized so that mean response times resolve to about
// one percent at the loads used in the figures.
func DefaultSimOptions() SimOptions {
	return SimOptions{Seed: 1, WarmupJobs: 50_000, MaxJobs: 1_000_000}
}

// Simulate runs the event-driven simulator under the given policy.
func (s System) Simulate(p sim.Policy, opt SimOptions) sim.Result {
	return sim.Run(sim.RunConfig{
		K:          s.K,
		Policy:     p,
		Source:     s.Model().Source(opt.Seed),
		WarmupJobs: opt.WarmupJobs,
		MaxJobs:    opt.MaxJobs,
	})
}

// SolveExact computes ground-truth mean response times from the truncated
// 2D chain for any stationary allocation rule.
func (s System) SolveExact(alloc ctmc.Alloc, tol float64) (ctmc.Perf, error) {
	return ctmc.AutoSolvePolicy(s.Model2D(), alloc, tol)
}
