// Package core is the model-level face of the library: a System type
// holding the paper's parameters, one-call analysis and simulation entry
// points, policy-by-name resolution, and the single-configuration
// experiments (the Theorem 6 counterexample, the Appendix A SRPT-k batch
// experiment, the busy-period fit ablation). The parameter sweeps behind
// Figures 4-6 and the Section 5 validation table are orchestrated one layer
// up, in internal/exp.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ctmc"
	"repro/internal/mrt"
	"repro/internal/policy"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/workload"
)

// System is one instance of the paper's model: k servers, Poisson arrivals
// of inelastic (rate LambdaI, sizes Exp(MuI)) and elastic (rate LambdaE,
// sizes Exp(MuE)) jobs.
type System struct {
	K                int
	LambdaI, LambdaE float64
	MuI, MuE         float64
}

// NewSystem validates and returns a system; it panics on non-positive
// parameters (programming error at every call site in this repository).
func NewSystem(k int, lambdaI, muI, lambdaE, muE float64) System {
	s := System{K: k, LambdaI: lambdaI, LambdaE: lambdaE, MuI: muI, MuE: muE}
	if k < 1 || lambdaI <= 0 || lambdaE <= 0 || muI <= 0 || muE <= 0 {
		panic(fmt.Sprintf("core: invalid system %+v", s))
	}
	return s
}

// ForLoad builds the system with total load rho and lambdaI = lambdaE — the
// parameterization used by every figure in the paper.
func ForLoad(k int, rho, muI, muE float64) System {
	lI, lE := queueing.RatesForLoad(k, rho, muI, muE)
	return NewSystem(k, lI, muI, lE, muE)
}

// Rho returns the system load of Eq. 1.
func (s System) Rho() float64 {
	return queueing.SystemLoad(s.K, s.LambdaI, s.MuI, s.LambdaE, s.MuE)
}

// Params converts to the analysis parameter struct.
func (s System) Params() mrt.Params {
	return mrt.Params{K: s.K, LambdaI: s.LambdaI, LambdaE: s.LambdaE, MuI: s.MuI, MuE: s.MuE}
}

// Model converts to the workload generator model.
func (s System) Model() workload.Model {
	return workload.NewModel(s.K, s.LambdaI, s.MuI, s.LambdaE, s.MuE)
}

// Model2D converts to the exact-chain model.
func (s System) Model2D() ctmc.Model2D {
	return ctmc.Model2D{K: s.K, LambdaI: s.LambdaI, LambdaE: s.LambdaE, MuI: s.MuI, MuE: s.MuE}
}

// Analyze returns the matrix-analytic mean response times for IF and EF
// (Section 5 pipeline).
func (s System) Analyze() (ifRes, efRes mrt.Result, err error) {
	return mrt.Analyze(s.Params())
}

// PolicyByName returns one of the built-in allocation policies. Recognized
// names: IF, EF, FCFS, EQUI, GREEDY, DEFER, SRPT, LFF, SMF, THRESH:<cap>
// and PRIO:<c0>,<c1>,... (strict class priority in the given order). Each
// call returns a fresh policy instance: stateful policies maintain reusable
// buffers, so instances must not be shared across concurrently running
// systems.
func (s System) PolicyByName(name string) (sim.Policy, error) {
	return PolicyByName(name, s.MuI, s.MuE)
}

// PolicyByName resolves a policy name without a full two-class System; muI
// and muE parameterize GREEDY (pass zeros when it is not used).
func PolicyByName(name string, muI, muE float64) (sim.Policy, error) {
	switch name {
	case "IF":
		return policy.InelasticFirst{}, nil
	case "EF":
		return policy.ElasticFirst{}, nil
	case "FCFS":
		return &policy.FCFS{}, nil
	case "EQUI":
		return policy.Equi{}, nil
	case "GREEDY":
		return policy.Greedy{MuI: muI, MuE: muE}, nil
	case "DEFER":
		return policy.DeferElastic{}, nil
	case "SRPT":
		return &policy.SRPTK{}, nil
	case "LFF":
		return &policy.LeastFlexibleFirst{}, nil
	case "SMF":
		return &policy.SmallestMeanFirst{}, nil
	}
	var capN int
	if n, _ := fmt.Sscanf(name, "THRESH:%d", &capN); n == 1 {
		return policy.Threshold{Cap: capN}, nil
	}
	if rest, ok := strings.CutPrefix(name, "PRIO:"); ok {
		var order []int
		for _, part := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == '>' }) {
			c, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || c < 0 {
				return nil, fmt.Errorf("core: bad class index %q in policy %q", part, name)
			}
			order = append(order, c)
		}
		if len(order) == 0 {
			return nil, fmt.Errorf("core: empty priority order in policy %q", name)
		}
		return policy.ClassPriority{Order: order}, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", name)
}

// ValidatePolicyClasses checks that a resolved policy is applicable to a
// system with the given job classes: PRIO orders must be a permutation of
// the class set (out-of-range, missing or duplicated classes would starve
// work or idle servers), the two-class-only families (THRESH, GREEDY) are
// rejected on other class counts, and SMF requires size distributions.
// Sweep layers call this at validation time so a bad combination fails the
// flag parse, not a worker mid-simulation.
func ValidatePolicyClasses(p sim.Policy, classes []sim.ClassSpec) error {
	numClasses := len(classes)
	switch pol := p.(type) {
	case policy.ClassPriority:
		seen := make([]bool, numClasses)
		for _, c := range pol.Order {
			if c < 0 || c >= numClasses {
				return fmt.Errorf("core: policy %s names class %d on a %d-class system", pol.Name(), c, numClasses)
			}
			if seen[c] {
				return fmt.Errorf("core: policy %s lists class %d twice (a priority order must be a permutation of the classes)", pol.Name(), c)
			}
			seen[c] = true
		}
		for c, ok := range seen {
			if !ok {
				return fmt.Errorf("core: policy %s never serves class %d (a priority order must cover every class)", pol.Name(), c)
			}
		}
	case policy.Threshold, policy.Greedy:
		if numClasses != 2 {
			return fmt.Errorf("core: policy %s is two-class only (system has %d classes)", p.Name(), numClasses)
		}
	case *policy.SmallestMeanFirst:
		for c, spec := range classes {
			if spec.Size == nil {
				return fmt.Errorf("core: policy SMF needs a size distribution for every class (class %d has none)", c)
			}
		}
	}
	return nil
}

// SimOptions controls a simulation run.
type SimOptions struct {
	Seed       uint64
	WarmupJobs int64
	MaxJobs    int64
	// Engine selects the sim stepping engine; the zero value is the
	// default rebuild engine.
	Engine sim.Engine
}

// DefaultSimOptions is sized so that mean response times resolve to about
// one percent at the loads used in the figures.
func DefaultSimOptions() SimOptions {
	return SimOptions{Seed: 1, WarmupJobs: 50_000, MaxJobs: 1_000_000}
}

// Simulate runs the event-driven simulator under the given policy.
func (s System) Simulate(p sim.Policy, opt SimOptions) sim.Result {
	return sim.Run(sim.RunConfig{
		K:          s.K,
		Policy:     p,
		Source:     s.Model().Source(opt.Seed),
		WarmupJobs: opt.WarmupJobs,
		MaxJobs:    opt.MaxJobs,
		Engine:     opt.Engine,
	})
}

// SolveExact computes ground-truth mean response times from the truncated
// 2D chain for any stationary allocation rule.
func (s System) SolveExact(alloc ctmc.Alloc, tol float64) (ctmc.Perf, error) {
	return ctmc.AutoSolvePolicy(s.Model2D(), alloc, tol)
}
