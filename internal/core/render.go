package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderHeatmapASCII draws the Figure 4 heat map in the terminal: rows are
// muE (descending, like the paper's y-axis), columns are muI; 'o' marks
// cells where IF dominates and '+' where EF dominates, matching the paper's
// red-circle/blue-plus convention.
func RenderHeatmapASCII(points []HeatmapPoint) string {
	muIs := uniqueSorted(points, func(p HeatmapPoint) float64 { return p.MuI })
	muEs := uniqueSorted(points, func(p HeatmapPoint) float64 { return p.MuE })
	cell := make(map[[2]float64]bool, len(points))
	for _, p := range points {
		cell[[2]float64{p.MuI, p.MuE}] = p.IFWins
	}
	var b strings.Builder
	for r := len(muEs) - 1; r >= 0; r-- {
		fmt.Fprintf(&b, "muE=%5.2f |", muEs[r])
		for _, muI := range muIs {
			if cell[[2]float64{muI, muEs[r]}] {
				b.WriteString(" o")
			} else {
				b.WriteString(" +")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("           ")
	for range muIs {
		b.WriteString("--")
	}
	b.WriteString("\n            muI: ")
	for _, muI := range muIs {
		fmt.Fprintf(&b, "%.2g ", muI)
	}
	b.WriteString("\n( o = IF superior, + = EF superior )\n")
	return b.String()
}

// WriteHeatmapCSV emits the Figure 4 data as CSV.
func WriteHeatmapCSV(w io.Writer, points []HeatmapPoint) error {
	if _, err := fmt.Fprintln(w, "muI,muE,ET_IF,ET_EF,winner"); err != nil {
		return err
	}
	for _, p := range points {
		winner := "EF"
		if p.IFWins {
			winner = "IF"
		}
		if _, err := fmt.Fprintf(w, "%g,%g,%.6f,%.6f,%s\n", p.MuI, p.MuE, p.TIF, p.TEF, winner); err != nil {
			return err
		}
	}
	return nil
}

// WriteCurveCSV emits the Figure 5 data as CSV.
func WriteCurveCSV(w io.Writer, points []CurvePoint) error {
	if _, err := fmt.Fprintln(w, "muI,ET_IF,ET_EF"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%g,%.6f,%.6f\n", p.MuI, p.TIF, p.TEF); err != nil {
			return err
		}
	}
	return nil
}

// WriteKCurveCSV emits the Figure 6 data as CSV.
func WriteKCurveCSV(w io.Writer, points []KPoint) error {
	if _, err := fmt.Fprintln(w, "k,ET_IF,ET_EF"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f\n", p.K, p.TIF, p.TEF); err != nil {
			return err
		}
	}
	return nil
}

// WriteValidationTable renders the analysis-vs-simulation comparison.
func WriteValidationTable(w io.Writer, rows []ValidationRow) error {
	if _, err := fmt.Fprintln(w, "k,rho,muI,muE,policy,ET_analysis,ET_simulation,rel_err"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%s,%.6f,%.6f,%+.4f%%\n",
			r.K, r.Rho, r.MuI, r.MuE, r.Policy, r.Analysis, r.Simulation, 100*r.RelErr); err != nil {
			return err
		}
	}
	return nil
}

func uniqueSorted(points []HeatmapPoint, get func(HeatmapPoint) float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range points {
		v := get(p)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}
