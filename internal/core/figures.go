package core

import (
	"fmt"

	"repro/internal/ctmc"
	"repro/internal/dist"
	"repro/internal/mrt"
	"repro/internal/srpt"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// HeatmapPoint is one cell of the Figure 4 heat maps: the relative
// performance of IF and EF at a (muI, muE) grid point with rho held fixed.
type HeatmapPoint struct {
	MuI, MuE float64
	TIF, TEF float64
	// IFWins is true when IF's mean response time is at most EF's.
	IFWins bool
}

// DefaultMuGrid reproduces the paper's 0.25..3.5 axes.
func DefaultMuGrid() []float64 {
	grid := make([]float64, 14)
	for i := range grid {
		grid[i] = 0.25 * float64(i+1)
	}
	return grid
}

// Figure4 computes one heat map: for each (muI, muE) pair the arrival rates
// are rescaled to hold rho constant with lambdaI = lambdaE (the paper's
// protocol), then both policies are analyzed.
func Figure4(k int, rho float64, grid []float64) ([]HeatmapPoint, error) {
	var out []HeatmapPoint
	for _, muI := range grid {
		for _, muE := range grid {
			s := ForLoad(k, rho, muI, muE)
			ifRes, efRes, err := s.Analyze()
			if err != nil {
				return nil, fmt.Errorf("figure4 at (muI=%g, muE=%g): %w", muI, muE, err)
			}
			out = append(out, HeatmapPoint{
				MuI: muI, MuE: muE,
				TIF: ifRes.T, TEF: efRes.T,
				IFWins: ifRes.T <= efRes.T,
			})
		}
	}
	return out, nil
}

// CurvePoint is one x-position of the Figure 5 response-time curves.
type CurvePoint struct {
	MuI      float64
	TIF, TEF float64
}

// Figure5 computes E[T] under IF and EF as a function of muI with muE = 1,
// rho fixed, lambdaI = lambdaE, k servers.
func Figure5(k int, rho float64, muIs []float64) ([]CurvePoint, error) {
	var out []CurvePoint
	for _, muI := range muIs {
		s := ForLoad(k, rho, muI, 1.0)
		ifRes, efRes, err := s.Analyze()
		if err != nil {
			return nil, fmt.Errorf("figure5 at muI=%g: %w", muI, err)
		}
		out = append(out, CurvePoint{MuI: muI, TIF: ifRes.T, TEF: efRes.T})
	}
	return out, nil
}

// KPoint is one x-position of the Figure 6 scaling curves.
type KPoint struct {
	K        int
	TIF, TEF float64
}

// Figure6 computes E[T] under IF and EF as the number of servers grows with
// rho held constant; the paper uses rho = 0.9 and the two extreme muI values
// of Figure 5c.
func Figure6(rho, muI, muE float64, ks []int) ([]KPoint, error) {
	var out []KPoint
	for _, k := range ks {
		s := ForLoad(k, rho, muI, muE)
		ifRes, efRes, err := s.Analyze()
		if err != nil {
			return nil, fmt.Errorf("figure6 at k=%d: %w", k, err)
		}
		out = append(out, KPoint{K: k, TIF: ifRes.T, TEF: efRes.T})
	}
	return out, nil
}

// Theorem6Result carries the exact counterexample values.
type Theorem6Result struct {
	MuI, MuE           float64
	IFTotal, EFTotal   float64
	IFExpect, EFExpect float64
}

// Theorem6 computes the counterexample of Section 4.3 by first-step
// analysis: k = 2, muE = 2 muI, two inelastic and one elastic job at time 0,
// no arrivals. The exact totals are 35/12/muI (IF) and 33/12/muI (EF).
func Theorem6(muI float64) (Theorem6Result, error) {
	m := ctmc.Model2D{K: 2, MuI: muI, MuE: 2 * muI}
	ifTotal, err := ctmc.BatchTotalResponse(m, ctmc.IFAlloc, 2, 1)
	if err != nil {
		return Theorem6Result{}, err
	}
	efTotal, err := ctmc.BatchTotalResponse(m, ctmc.EFAlloc, 2, 1)
	if err != nil {
		return Theorem6Result{}, err
	}
	return Theorem6Result{
		MuI: muI, MuE: 2 * muI,
		IFTotal: ifTotal, EFTotal: efTotal,
		IFExpect: 35.0 / 12 / muI, EFExpect: 33.0 / 12 / muI,
	}, nil
}

// ValidationRow is one line of the analysis-vs-simulation table backing the
// paper's "all numbers agree within 1%" claim.
type ValidationRow struct {
	K              int
	Rho, MuI, MuE  float64
	Policy         string
	Analysis       float64
	Simulation     float64
	RelErr         float64
	SimCompletions int64
}

// ValidateAnalysis compares the matrix-analytic E[T] against long
// simulations for both policies at each configuration.
func ValidateAnalysis(k int, rho float64, muIs []float64, opt SimOptions) ([]ValidationRow, error) {
	var rows []ValidationRow
	for _, muI := range muIs {
		s := ForLoad(k, rho, muI, 1.0)
		ifRes, efRes, err := s.Analyze()
		if err != nil {
			return nil, err
		}
		for _, pr := range []struct {
			name     string
			analysis float64
		}{{"IF", ifRes.T}, {"EF", efRes.T}} {
			p, err := s.PolicyByName(pr.name)
			if err != nil {
				return nil, err
			}
			res := s.Simulate(p, opt)
			rows = append(rows, ValidationRow{
				K: k, Rho: rho, MuI: muI, MuE: 1.0,
				Policy:   pr.name,
				Analysis: pr.analysis, Simulation: res.MeanT,
				RelErr:         (res.MeanT - pr.analysis) / pr.analysis,
				SimCompletions: res.Completions,
			})
		}
	}
	return rows, nil
}

// SRPTRow is one instance family of the Appendix A experiment.
type SRPTRow struct {
	N, K       int
	SizeDist   string
	WorstRatio float64
	MeanRatio  float64
	Trials     int
}

// SRPTExperiment samples random batch instances and reports the SRPT-k
// total response time relative to the LP lower bound; Theorem 9 guarantees
// the ratio to optimal is at most 4.
func SRPTExperiment(trials int, seed uint64) []SRPTRow {
	type family struct {
		n, k int
		name string
		mk   func() dist.Distribution
	}
	families := []family{
		{8, 4, "exp(1)", func() dist.Distribution { return dist.NewExponential(1) }},
		{16, 4, "exp(1)", func() dist.Distribution { return dist.NewExponential(1) }},
		{16, 8, "pareto(1.5)", func() dist.Distribution { return dist.NewBoundedPareto(1.5, 0.1, 100) }},
		{32, 8, "uniform(0.5,1.5)", func() dist.Distribution { return dist.NewUniform(0.5, 1.5) }},
		{32, 16, "pareto(1.5)", func() dist.Distribution { return dist.NewBoundedPareto(1.5, 0.1, 100) }},
	}
	r := xrand.New(seed)
	var rows []SRPTRow
	for _, f := range families {
		worst, sum := 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			batch := workload.RandomBatch(r, f.n, f.mk(), f.k)
			ratio := srpt.ApproximationRatio(batch, f.k)
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
		}
		rows = append(rows, SRPTRow{
			N: f.n, K: f.k, SizeDist: f.name,
			WorstRatio: worst, MeanRatio: sum / float64(trials), Trials: trials,
		})
	}
	return rows
}

// AblationRow quantifies the busy-period fit design choice for one
// configuration.
type AblationRow struct {
	Rho, MuI       float64
	Policy         string
	Exact          float64
	Coxian3, Exp1  float64
	ErrCox, ErrExp float64
}

// BusyPeriodAblation compares the paper's 3-moment Coxian busy-period fit
// against the mean-only exponential replacement, both measured against the
// exact truncated chain.
func BusyPeriodAblation(k int, rho float64, muIs []float64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, muI := range muIs {
		s := ForLoad(k, rho, muI, 1.0)
		for _, pol := range []string{"IF", "EF"} {
			var alloc ctmc.Alloc
			analyze := mrt.IF
			if pol == "EF" {
				alloc = ctmc.EFAlloc
				analyze = mrt.EF
			} else {
				alloc = ctmc.IFAlloc
			}
			exact, err := s.SolveExact(alloc, 1e-10)
			if err != nil {
				return nil, err
			}
			cox, err := analyze(s.Params(), mrt.Coxian3Moment)
			if err != nil {
				return nil, err
			}
			expo, err := analyze(s.Params(), mrt.Exponential1Moment)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Rho: rho, MuI: muI, Policy: pol,
				Exact: exact.MeanT, Coxian3: cox.T, Exp1: expo.T,
				ErrCox: (cox.T - exact.MeanT) / exact.MeanT,
				ErrExp: (expo.T - exact.MeanT) / exact.MeanT,
			})
		}
	}
	return rows, nil
}
