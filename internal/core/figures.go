package core

import (
	"repro/internal/ctmc"
	"repro/internal/dist"
	"repro/internal/mrt"
	"repro/internal/srpt"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// The parameter-sweep drivers behind Figures 4-6 and the validation table
// live in internal/exp, which fans their grid points out across a worker
// pool. This file keeps the single-configuration experiments that need no
// sweep engine: the Theorem 6 counterexample, the Appendix A SRPT-k batch
// experiment and the busy-period fit ablation.

// Theorem6Result carries the exact counterexample values.
type Theorem6Result struct {
	MuI, MuE           float64
	IFTotal, EFTotal   float64
	IFExpect, EFExpect float64
}

// Theorem6 computes the counterexample of Section 4.3 by first-step
// analysis: k = 2, muE = 2 muI, two inelastic and one elastic job at time 0,
// no arrivals. The exact totals are 35/12/muI (IF) and 33/12/muI (EF).
func Theorem6(muI float64) (Theorem6Result, error) {
	m := ctmc.Model2D{K: 2, MuI: muI, MuE: 2 * muI}
	ifTotal, err := ctmc.BatchTotalResponse(m, ctmc.IFAlloc, 2, 1)
	if err != nil {
		return Theorem6Result{}, err
	}
	efTotal, err := ctmc.BatchTotalResponse(m, ctmc.EFAlloc, 2, 1)
	if err != nil {
		return Theorem6Result{}, err
	}
	return Theorem6Result{
		MuI: muI, MuE: 2 * muI,
		IFTotal: ifTotal, EFTotal: efTotal,
		IFExpect: 35.0 / 12 / muI, EFExpect: 33.0 / 12 / muI,
	}, nil
}

// SRPTRow is one instance family of the Appendix A experiment.
type SRPTRow struct {
	N, K       int
	SizeDist   string
	WorstRatio float64
	MeanRatio  float64
	Trials     int
}

// SRPTExperiment samples random batch instances and reports the SRPT-k
// total response time relative to the LP lower bound; Theorem 9 guarantees
// the ratio to optimal is at most 4.
func SRPTExperiment(trials int, seed uint64) []SRPTRow {
	type family struct {
		n, k int
		name string
		mk   func() dist.Distribution
	}
	families := []family{
		{8, 4, "exp(1)", func() dist.Distribution { return dist.NewExponential(1) }},
		{16, 4, "exp(1)", func() dist.Distribution { return dist.NewExponential(1) }},
		{16, 8, "pareto(1.5)", func() dist.Distribution { return dist.NewBoundedPareto(1.5, 0.1, 100) }},
		{32, 8, "uniform(0.5,1.5)", func() dist.Distribution { return dist.NewUniform(0.5, 1.5) }},
		{32, 16, "pareto(1.5)", func() dist.Distribution { return dist.NewBoundedPareto(1.5, 0.1, 100) }},
	}
	r := xrand.New(seed)
	var rows []SRPTRow
	for _, f := range families {
		worst, sum := 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			batch := workload.RandomBatch(r, f.n, f.mk(), f.k)
			ratio := srpt.ApproximationRatio(batch, f.k)
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
		}
		rows = append(rows, SRPTRow{
			N: f.n, K: f.k, SizeDist: f.name,
			WorstRatio: worst, MeanRatio: sum / float64(trials), Trials: trials,
		})
	}
	return rows
}

// AblationRow quantifies the busy-period fit design choice for one
// configuration.
type AblationRow struct {
	Rho, MuI       float64
	Policy         string
	Exact          float64
	Coxian3, Exp1  float64
	ErrCox, ErrExp float64
}

// BusyPeriodAblation compares the paper's 3-moment Coxian busy-period fit
// against the mean-only exponential replacement, both measured against the
// exact truncated chain.
func BusyPeriodAblation(k int, rho float64, muIs []float64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, muI := range muIs {
		s := ForLoad(k, rho, muI, 1.0)
		for _, pol := range []string{"IF", "EF"} {
			var alloc ctmc.Alloc
			analyze := mrt.IF
			if pol == "EF" {
				alloc = ctmc.EFAlloc
				analyze = mrt.EF
			} else {
				alloc = ctmc.IFAlloc
			}
			exact, err := s.SolveExact(alloc, 1e-10)
			if err != nil {
				return nil, err
			}
			cox, err := analyze(s.Params(), mrt.Coxian3Moment)
			if err != nil {
				return nil, err
			}
			expo, err := analyze(s.Params(), mrt.Exponential1Moment)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Rho: rho, MuI: muI, Policy: pol,
				Exact: exact.MeanT, Coxian3: cox.T, Exp1: expo.T,
				ErrCox: (cox.T - exact.MeanT) / exact.MeanT,
				ErrExp: (expo.T - exact.MeanT) / exact.MeanT,
			})
		}
	}
	return rows, nil
}
