package core

import (
	"math"
	"testing"
)

func TestForLoadHitsTargetRho(t *testing.T) {
	s := ForLoad(4, 0.7, 2, 1)
	if math.Abs(s.Rho()-0.7) > 1e-12 {
		t.Fatalf("rho %v", s.Rho())
	}
	if s.LambdaI != s.LambdaE {
		t.Fatal("figure parameterization requires lambdaI = lambdaE")
	}
}

func TestPolicyByName(t *testing.T) {
	s := ForLoad(4, 0.5, 1, 1)
	for _, name := range []string{"IF", "EF", "FCFS", "EQUI", "GREEDY", "DEFER", "SRPT", "THRESH:2"} {
		p, err := s.PolicyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p == nil {
			t.Fatalf("%s: nil policy", name)
		}
	}
	if _, err := s.PolicyByName("NOPE"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestTheorem6Driver(t *testing.T) {
	res, err := Theorem6(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.IFTotal-res.IFExpect) > 1e-9 || math.Abs(res.EFTotal-res.EFExpect) > 1e-9 {
		t.Fatalf("counterexample mismatch: %+v", res)
	}
}

func TestSRPTExperimentBounded(t *testing.T) {
	rows := SRPTExperiment(50, 3)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.WorstRatio > 4 {
			t.Fatalf("family %+v exceeded the factor-4 bound", r)
		}
		if r.MeanRatio < 1 {
			t.Fatalf("family %+v has ratio < 1: bound broken", r)
		}
	}
}

func TestBusyPeriodAblationDriver(t *testing.T) {
	rows, err := BusyPeriodAblation(4, 0.8, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.ErrCox) > math.Abs(r.ErrExp)+1e-12 {
			t.Fatalf("%s: 3-moment fit worse than 1-moment: %+v", r.Policy, r)
		}
		if math.Abs(r.ErrCox) > 0.01 {
			t.Fatalf("%s: 3-moment error %v exceeds 1%%", r.Policy, r.ErrCox)
		}
	}
}

func TestSimulateSmoke(t *testing.T) {
	s := ForLoad(4, 0.5, 1, 1)
	p, err := s.PolicyByName("IF")
	if err != nil {
		t.Fatal(err)
	}
	res := s.Simulate(p, SimOptions{Seed: 1, WarmupJobs: 1000, MaxJobs: 20000})
	if res.MeanT <= 0 || math.IsNaN(res.MeanT) {
		t.Fatalf("nonsense E[T] %v", res.MeanT)
	}
}

func TestNewSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid system accepted")
		}
	}()
	NewSystem(0, 1, 1, 1, 1)
}
