package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleForLoad shows the figure parameterization: fix the total load and
// the service rates, and the arrival rates follow.
func ExampleForLoad() {
	s := core.ForLoad(4, 0.7, 2.0, 1.0)
	fmt.Printf("lambdaI=%.3f lambdaE=%.3f rho=%.2f\n", s.LambdaI, s.LambdaE, s.Rho())
	// Output: lambdaI=1.867 lambdaE=1.867 rho=0.70
}

// ExampleSystem_Analyze runs the Section 5 matrix-analytic pipeline for
// both policies and prints which one Theorem 5 predicts to win.
func ExampleSystem_Analyze() {
	s := core.ForLoad(4, 0.7, 2.0, 1.0) // muI > muE: IF optimal
	ifRes, efRes, err := s.Analyze()
	if err != nil {
		panic(err)
	}
	fmt.Printf("IF beats EF: %v\n", ifRes.T < efRes.T)
	// Output: IF beats EF: true
}

// ExampleTheorem6 reproduces the counterexample of Section 4.3.
func ExampleTheorem6() {
	res, err := core.Theorem6(1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("IF=%.6f EF=%.6f\n", res.IFTotal, res.EFTotal)
	// Output: IF=2.916667 EF=2.750000
}
