// Package mdp computes the average-cost-optimal allocation policy for the
// paper's model by relative value iteration on the uniformized, truncated
// two-class chain — the MDP-based numerical approach the paper attributes
// to [7] (Berg, Dorsman, Harchol-Balter 2018).
//
// It serves two purposes in this reproduction. First, it independently
// verifies Theorem 5: when muI >= muE the computed optimal policy achieves
// exactly Inelastic-First's mean number in system. Second, it explores the
// regime the paper leaves open (muI < muE, Section 6): the optimal policy
// there is neither IF nor EF but a state-dependent switching curve, which
// the OptimalPolicy type exposes for inspection.
//
// The action space in state (i, j) is the number of servers given to
// inelastic jobs, aI in {0, ..., min(i, k)}, with the remaining k - aI
// servers going to the head-of-line elastic job when j > 0. Because the
// Bellman operator is linear in the allocation, an optimal stationary
// policy lies at a vertex of the allocation polytope, so this integer grid
// loses nothing relative to fractional allocations.
package mdp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ctmc"
)

// ErrNotConverged reports that value iteration hit its iteration cap.
var ErrNotConverged = errors.New("mdp: relative value iteration did not converge")

// Config configures the solver.
type Config struct {
	Model ctmc.Model2D
	// CapI, CapE truncate the state space; arrivals at the boundary are
	// dropped, matching ctmc.PolicyChain.
	CapI, CapE int
	// Tol is the span-seminorm convergence threshold on the relative
	// value function (default 1e-10).
	Tol float64
	// MaxIter caps the iterations (default 1_000_000).
	MaxIter int
}

// OptimalPolicy is the result of a solve.
type OptimalPolicy struct {
	CapI, CapE int
	K          int
	// AllocI[i][j] is the optimal number of servers for inelastic jobs in
	// state (i, j); elastic jobs receive K - AllocI[i][j] when j > 0.
	AllocI [][]int
	// MeanN is the optimal long-run average number of jobs in system.
	MeanN float64
	// MeanT is the optimal mean response time via Little's law.
	MeanT float64
	Iters int
}

// Alloc adapts the solved policy to the ctmc.Alloc interface so it can be
// re-evaluated with the stationary chain solver.
func (p *OptimalPolicy) Alloc(k, i, j int) (float64, float64) {
	ci := min(i, p.CapI)
	cj := min(j, p.CapE)
	ai := float64(p.AllocI[ci][cj])
	if ai > float64(i) {
		ai = float64(i)
	}
	ae := 0.0
	if j > 0 {
		ae = float64(k) - ai
	}
	return ai, ae
}

// MatchesIF reports the fraction of states in the inner half of the
// truncated grid in which the optimal allocation equals Inelastic-First's.
// The outer half is excluded deliberately: those states carry vanishing
// stationary probability, the relative value function converges far more
// slowly there, and dropped boundary arrivals distort the decision — so
// action comparisons in the far tail are noise.
func (p *OptimalPolicy) MatchesIF() float64 {
	match, total := 0, 0
	for i := 1; i < p.CapI/2; i++ {
		for j := 0; j < p.CapE/2; j++ {
			ifAlloc := min(i, p.K)
			total++
			if p.AllocI[i][j] == ifAlloc {
				match++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(match) / float64(total)
}

// Solve runs relative value iteration.
func Solve(cfg Config) (*OptimalPolicy, error) {
	m := cfg.Model
	if m.K < 1 || m.LambdaI <= 0 || m.LambdaE <= 0 || m.MuI <= 0 || m.MuE <= 0 {
		return nil, fmt.Errorf("mdp: invalid model %+v", m)
	}
	if m.Rho() >= 1 {
		return nil, fmt.Errorf("mdp: unstable model (rho=%g)", m.Rho())
	}
	if cfg.CapI < m.K || cfg.CapE < 1 {
		return nil, fmt.Errorf("mdp: truncation caps too small")
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 1_000_000
	}

	nI, nJ := cfg.CapI+1, cfg.CapE+1
	idx := func(i, j int) int { return i*nJ + j }
	n := nI * nJ

	// Uniformization constant: total event rate is at most
	// lambdaI + lambdaE + k*max(muI, muE).
	uni := m.LambdaI + m.LambdaE + float64(m.K)*math.Max(m.MuI, m.MuE)

	h := make([]float64, n)
	next := make([]float64, n)
	alloc := make([][]int, nI)
	for i := range alloc {
		alloc[i] = make([]int, nJ)
	}

	var gain float64
	for iter := 1; iter <= maxIter; iter++ {
		for i := 0; i < nI; i++ {
			for j := 0; j < nJ; j++ {
				s := idx(i, j)
				// Arrival terms are action-independent.
				base := float64(i+j) / uni // stage cost: E[N] contribution
				pIn := m.LambdaI / uni
				pEn := m.LambdaE / uni
				arr := 0.0
				if i < cfg.CapI {
					arr += pIn * h[idx(i+1, j)]
				} else {
					arr += pIn * h[s]
				}
				if j < cfg.CapE {
					arr += pEn * h[idx(i, j+1)]
				} else {
					arr += pEn * h[s]
				}
				rest := 1 - pIn - pEn

				// Iterate from the largest inelastic allocation down
				// so that ties (ubiquitous when muI = muE, where many
				// allocations are co-optimal) resolve toward the
				// GREEDY* convention of minimal elastic allocation.
				bestVal := math.Inf(1)
				maxA := min(i, m.K)
				bestA := maxA
				for a := maxA; a >= 0; a-- {
					aI := float64(a)
					aE := 0.0
					if j > 0 {
						aE = float64(m.K) - aI
					}
					pID := aI * m.MuI / uni
					pED := aE * m.MuE / uni
					val := arr
					if i > 0 {
						val += pID * h[idx(i-1, j)]
					}
					if j > 0 {
						val += pED * h[idx(i, j-1)]
					}
					val += (rest - pID - pED) * h[s]
					if val < bestVal-1e-15 {
						bestVal, bestA = val, a
					}
				}
				next[s] = base + bestVal
				alloc[i][j] = bestA
			}
		}
		// Span seminorm of the increment decides convergence; the gain is
		// the (asymptotically constant) increment times the
		// uniformization rate.
		lo, hi := math.Inf(1), math.Inf(-1)
		for s := 0; s < n; s++ {
			d := next[s] - h[s]
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		gain = (lo + hi) / 2 * uni
		// Re-center on the empty state to keep values bounded.
		offset := next[0]
		for s := 0; s < n; s++ {
			h[s] = next[s] - offset
		}
		if hi-lo < tol {
			meanN := gain
			lambda := m.LambdaI + m.LambdaE
			return &OptimalPolicy{
				CapI: cfg.CapI, CapE: cfg.CapE, K: m.K,
				AllocI: alloc,
				MeanN:  meanN,
				MeanT:  meanN / lambda,
				Iters:  iter,
			}, nil
		}
	}
	return nil, ErrNotConverged
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
