package mdp

import (
	"math"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/queueing"
)

func model(k int, rho, muI, muE float64) ctmc.Model2D {
	lI, lE := queueing.RatesForLoad(k, rho, muI, muE)
	return ctmc.Model2D{K: k, LambdaI: lI, LambdaE: lE, MuI: muI, MuE: muE}
}

// TestOptimalEqualsIFWhenInelasticSmaller is the numerical face of
// Theorem 5: for muI >= muE the MDP's optimal average cost equals IF's
// mean number in system.
func TestOptimalEqualsIFWhenInelasticSmaller(t *testing.T) {
	for _, tc := range []struct{ rho, muI, muE float64 }{
		{0.6, 1.0, 1.0},
		{0.6, 2.0, 1.0},
		{0.8, 1.5, 1.0},
	} {
		m := model(4, tc.rho, tc.muI, tc.muE)
		opt, err := Solve(Config{Model: m, CapI: 60, CapE: 60, Tol: 1e-11})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		ifPerf, err := ctmc.SolvePolicy(m, ctmc.IFAlloc, 60, 60)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt.MeanN-ifPerf.MeanN) > 1e-5*ifPerf.MeanN {
			t.Fatalf("%+v: optimal E[N]=%v, IF E[N]=%v — Theorem 5 says they must match",
				tc, opt.MeanN, ifPerf.MeanN)
		}
		// The decision rule itself should be IF almost everywhere —
		// but only when muI is strictly larger: at muI = muE many
		// allocations are exactly co-optimal (all of GREEDY* achieves
		// the same mean response time, Theorem 1), so value iteration's
		// tie resolution is noise-driven there.
		if tc.muI > tc.muE {
			if frac := opt.MatchesIF(); frac < 0.95 {
				t.Fatalf("%+v: optimal policy matches IF in only %.1f%% of states", tc, 100*frac)
			}
		}
	}
}

// TestOptimalNeverWorseThanIFOrEF: in every regime the optimal policy is at
// least as good as both headline policies.
func TestOptimalNeverWorseThanIFOrEF(t *testing.T) {
	for _, tc := range []struct{ rho, muI, muE float64 }{
		{0.7, 0.5, 1.0}, // open regime
		{0.7, 2.0, 1.0}, // IF-optimal regime
	} {
		m := model(4, tc.rho, tc.muI, tc.muE)
		opt, err := Solve(Config{Model: m, CapI: 80, CapE: 80, Tol: 1e-11})
		if err != nil {
			t.Fatal(err)
		}
		ifPerf, err := ctmc.SolvePolicy(m, ctmc.IFAlloc, 80, 80)
		if err != nil {
			t.Fatal(err)
		}
		efPerf, err := ctmc.SolvePolicy(m, ctmc.EFAlloc, 80, 80)
		if err != nil {
			t.Fatal(err)
		}
		if opt.MeanN > ifPerf.MeanN*(1+1e-6) || opt.MeanN > efPerf.MeanN*(1+1e-6) {
			t.Fatalf("%+v: optimal %v worse than IF %v or EF %v",
				tc, opt.MeanN, ifPerf.MeanN, efPerf.MeanN)
		}
	}
}

// TestOpenRegimeOptimalBeatsBoth: the interesting finding in the muI < muE
// regime — the optimal policy strictly beats both IF and EF (so neither is
// optimal there, extending Theorem 6's message beyond the no-arrivals
// counterexample).
func TestOpenRegimeOptimalBeatsBoth(t *testing.T) {
	m := model(4, 0.8, 0.4, 1.0)
	opt, err := Solve(Config{Model: m, CapI: 100, CapE: 100, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	ifPerf, err := ctmc.SolvePolicy(m, ctmc.IFAlloc, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	efPerf, err := ctmc.SolvePolicy(m, ctmc.EFAlloc, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(opt.MeanN < ifPerf.MeanN*(1-1e-4) && opt.MeanN < efPerf.MeanN*(1-1e-4)) {
		t.Fatalf("expected strict improvement: opt=%v IF=%v EF=%v",
			opt.MeanN, ifPerf.MeanN, efPerf.MeanN)
	}
}

// TestOptimalPolicyReEvaluation closes the loop: running the solved policy
// through the independent stationary chain solver must reproduce the MDP's
// average cost.
func TestOptimalPolicyReEvaluation(t *testing.T) {
	m := model(4, 0.7, 0.5, 1.0)
	opt, err := Solve(Config{Model: m, CapI: 80, CapE: 80, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	perf, err := ctmc.SolvePolicy(m, opt.Alloc, 80, 80)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perf.MeanN-opt.MeanN) > 1e-4*opt.MeanN {
		t.Fatalf("re-evaluated E[N] %v vs MDP gain %v", perf.MeanN, opt.MeanN)
	}
}

// TestMM1Degenerate: with one server and a single class dominating, the
// optimal cost approaches the M/M/1 value.
func TestMM1Degenerate(t *testing.T) {
	// Make elastic arrivals negligible.
	m := ctmc.Model2D{K: 1, LambdaI: 0.6, LambdaE: 1e-8, MuI: 1, MuE: 1}
	opt, err := Solve(Config{Model: m, CapI: 200, CapE: 2, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	want := queueing.NewMM1(0.6, 1).MeanJobs()
	if math.Abs(opt.MeanN-want) > 1e-4 {
		t.Fatalf("E[N] %v, want M/M/1 %v", opt.MeanN, want)
	}
}

func TestWorkConservingStructure(t *testing.T) {
	// The optimal policy should never idle servers that an eligible job
	// could use: in states with i >= k it must allocate all k to
	// inelastic or split with elastic — total min(i+..., k).
	m := model(4, 0.7, 1.5, 1.0)
	opt, err := Solve(Config{Model: m, CapI: 40, CapE: 40, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			ai, ae := opt.Alloc(4, i, j)
			total := ai + ae
			var want float64
			if j > 0 {
				want = 4
			} else {
				want = math.Min(float64(i), 4)
			}
			if math.Abs(total-want) > 1e-12 {
				t.Fatalf("optimal policy idles at (%d,%d): total %v, want %v", i, j, total, want)
			}
		}
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, err := Solve(Config{Model: ctmc.Model2D{K: 0}}); err == nil {
		t.Fatal("k=0 accepted")
	}
	m := ctmc.Model2D{K: 2, LambdaI: 3, LambdaE: 3, MuI: 1, MuE: 1}
	if _, err := Solve(Config{Model: m, CapI: 10, CapE: 10}); err == nil {
		t.Fatal("unstable model accepted")
	}
	ok := model(2, 0.5, 1, 1)
	if _, err := Solve(Config{Model: ok, CapI: 1, CapE: 0}); err == nil {
		t.Fatal("tiny caps accepted")
	}
}
