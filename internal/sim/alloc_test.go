package sim_test

// Allocation-regression gate for the engine hot path: steady-state stepping
// (advance + arrive, completions included) must stay allocation-free apart
// from unavoidable growth of internal buffers while the system is still
// warming up. The pin is <= 1 heap allocation per simulated event on the
// two-class preset (ISSUE 3 acceptance criterion); after the free list and
// buffers warm up the engine runs at 0.

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// steadyStateAllocs measures heap allocations per event (arrival or
// completion) in steady state under the given policy.
func steadyStateAllocs(t *testing.T, pol sim.Policy) float64 {
	t.Helper()
	model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
	src := model.Source(3)
	sys := sim.NewSystem(model.K, pol)
	// Warm up: populate the free list, the allocation buffers and the
	// event queue's backing array.
	for i := 0; i < 20_000; i++ {
		a, _ := src.Next()
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
	}
	const rounds = 2000
	before := sys.Metrics().TotalCompletions()
	perRound := testing.AllocsPerRun(rounds, func() {
		a, _ := src.Next()
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
	})
	// Each round is one arrival plus however many completions it flushed.
	completions := sys.Metrics().TotalCompletions() - before
	eventsPerRound := 1 + float64(completions)/float64(rounds+1)
	return perRound / eventsPerRound
}

func TestSteadyStateAllocsPerEvent(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  sim.Policy
	}{
		{"IF", policy.InelasticFirst{}},
		{"EF", policy.ElasticFirst{}},
		{"EQUI", policy.Equi{}},
		{"FCFS", &policy.FCFS{}},
		{"SRPT", &policy.SRPTK{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := steadyStateAllocs(t, tc.pol); got > 1 {
				t.Fatalf("steady-state stepping allocates %.3f/event under %s, want <= 1", got, tc.pol.Name())
			}
		})
	}
}

// TestSteadyStateAllocsMultiClass pins the same bound on a three-class
// capped mix under a maintained class ordering — the configuration the old
// internal/mcsim engine allocated on every event.
func TestSteadyStateAllocsMultiClass(t *testing.T) {
	mix := workload.ThreeClassCaps(8, 0.7)
	src := mix.Source(3)
	sys := sim.NewClassSystem(8, mix.Classes, &policy.LeastFlexibleFirst{})
	for i := 0; i < 20_000; i++ {
		a, _ := src.Next()
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
	}
	const rounds = 2000
	before := sys.Metrics().TotalCompletions()
	perRound := testing.AllocsPerRun(rounds, func() {
		a, _ := src.Next()
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
	})
	completions := sys.Metrics().TotalCompletions() - before
	perEvent := perRound / (1 + float64(completions)/float64(rounds+1))
	if perEvent > 1 {
		t.Fatalf("multi-class steady-state stepping allocates %.3f/event, want <= 1", perEvent)
	}
}

// BenchmarkEngineEvent measures the two-class hot path end to end (arrival
// draw + advance + completions) — the headline engine number recorded in
// BENCH_engine.json by scripts/bench.sh.
func BenchmarkEngineEvent(b *testing.B) {
	model := workload.ModelForLoad(4, 0.8, 1.0, 1.0)
	src := model.Source(1)
	sys := sim.NewSystem(model.K, policy.InelasticFirst{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := src.Next()
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
	}
	b.ReportMetric(float64(sys.Metrics().TotalCompletions())/b.Elapsed().Seconds(), "completions/sec")
}

// BenchmarkEngineEventMultiClass is the same measurement on the three-class
// capped mix — the configuration the deleted internal/mcsim engine used to
// serve (with per-event allocations; the unified engine runs it
// allocation-free).
func BenchmarkEngineEventMultiClass(b *testing.B) {
	mix := workload.ThreeClassCaps(8, 0.7)
	src := mix.Source(1)
	sys := sim.NewClassSystem(8, mix.Classes, &policy.LeastFlexibleFirst{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := src.Next()
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
	}
	b.ReportMetric(float64(sys.Metrics().TotalCompletions())/b.Elapsed().Seconds(), "completions/sec")
}
