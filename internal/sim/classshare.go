package sim

// The class-share fast path of the incremental engine: EQUI-style policies
// whose allocation is uniform within every class cannot use the ShareSet
// write-set protocol — every resident job holds a share, so an honest
// write-set is O(n) per event. But uniformity is itself the exploitable
// structure: when a water-filling share moves, it moves identically for
// every job of the class, so the engine can track whole classes instead of
// jobs.
//
// Each class carries a virtual-time coordinate vwork[c]: the work depleted
// per job of class c since the coordinate's anchor. A class-c job arriving
// when the coordinate reads v completes when the coordinate reaches
// vtarget = v + Size — a constant computed once at arrival. Within a class,
// completion order is vtarget order, so the live jobs sit in one min-heap
// per class keyed (vtarget, ID), and only the head needs a completion event
// in the future-event list. A policy refresh touches O(#classes) state:
// re-derive the per-class share vector (the water-filling delta), and for
// each class whose per-job rate or heap head changed, re-anchor that one
// head event. Per-job rate and servers fields are deliberately left zero in
// this mode; remaining work is derived on demand as vtarget - vwork[c].
//
// The coordinates are renormalized to zero whenever their class empties, so
// floating-point dust in vwork never outlives a busy period.

import (
	"fmt"
	"math"
)

// ClassSharePolicy is an optional Policy extension for policies whose
// allocation is uniform within each class (every class-c job receives the
// same share). ClassShares must write class c's per-job share into
// shares[c] for every nonempty class — exactly the value Allocate would
// write into each alloc.Classes[c][i]; the cross-engine equivalence suite
// holds the two faces together. The engine zeroes the slice beforehand;
// entries for empty classes are ignored. Implementations must be
// size-blind, like Allocate itself.
type ClassSharePolicy interface {
	Policy
	ClassShares(st *State, shares []float64)
}

// vtargetHeap is a per-class binary min-heap of jobs keyed (vtarget, ID).
// vtarget is fixed at arrival, so the heap needs no decrease-key: push on
// arrival, pop on completion.
type vtargetHeap struct {
	jobs []*Job
}

func vtargetLess(a, b *Job) bool {
	if a.vtarget != b.vtarget {
		return a.vtarget < b.vtarget
	}
	return a.ID < b.ID
}

func (h *vtargetHeap) len() int { return len(h.jobs) }

func (h *vtargetHeap) peek() *Job {
	if len(h.jobs) == 0 {
		return nil
	}
	return h.jobs[0]
}

func (h *vtargetHeap) push(j *Job) {
	h.jobs = append(h.jobs, j)
	i := len(h.jobs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !vtargetLess(h.jobs[i], h.jobs[parent]) {
			break
		}
		h.jobs[i], h.jobs[parent] = h.jobs[parent], h.jobs[i]
		i = parent
	}
}

func (h *vtargetHeap) pop() *Job {
	top := h.jobs[0]
	last := len(h.jobs) - 1
	h.jobs[0] = h.jobs[last]
	h.jobs[last] = nil
	h.jobs = h.jobs[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && vtargetLess(h.jobs[l], h.jobs[smallest]) {
			smallest = l
		}
		if r < n && vtargetLess(h.jobs[r], h.jobs[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.jobs[i], h.jobs[smallest] = h.jobs[smallest], h.jobs[i]
		i = smallest
	}
}

// classShareState is the engine-side state of the class-share path.
type classShareState struct {
	policy ClassSharePolicy
	// shares[c] is the current per-job share of class c; rate[c] the
	// resulting per-job service rate; vwork[c] the virtual-time coordinate;
	// heads[c] the job whose completion event is currently armed (nil when
	// none is).
	shares []float64
	rate   []float64
	vwork  []float64
	heads  []*Job
	vq     []vtargetHeap
}

func newClassShareState(p ClassSharePolicy, numClasses int) *classShareState {
	return &classShareState{
		policy: p,
		shares: make([]float64, numClasses),
		rate:   make([]float64, numClasses),
		vwork:  make([]float64, numClasses),
		heads:  make([]*Job, numClasses),
		vq:     make([]vtargetHeap, numClasses),
	}
}

// arrive registers a new job: its completion coordinate is fixed forever.
func (cs *classShareState) arrive(s *System, j *Job) {
	j.vtarget = cs.vwork[j.Class] + j.Size
	cs.vq[j.Class].push(j)
}

// remaining derives a live job's exact remaining work at the current
// coordinate reading.
func (cs *classShareState) remaining(j *Job) float64 {
	rem := j.vtarget - cs.vwork[j.Class]
	if rem < 0 {
		return 0
	}
	return rem
}

// advance moves every class's coordinate forward by dt of wall time at the
// per-job rates currently in effect — O(#classes).
func (cs *classShareState) advance(dt float64) {
	for c, r := range cs.rate {
		if r > 0 {
			cs.vwork[c] += r * dt
		}
	}
}

// refresh re-derives the share vector and re-anchors the head events of the
// classes whose per-job rate or head changed. Aggregates (incRate, incTotal)
// are recomputed from scratch — O(#classes) — so they can never drift.
func (cs *classShareState) refresh(s *System) {
	const eps = 1e-9
	for c := range cs.shares {
		cs.shares[c] = 0
	}
	cs.policy.ClassShares(&s.st, cs.shares)
	total := 0.0
	for c := range s.queues {
		n := len(s.queues[c])
		spec := &s.classes[c]
		if n == 0 {
			cs.shares[c] = 0
			cs.rate[c] = 0
			s.incRate[c] = 0
			continue
		}
		a := cs.shares[c]
		capC := spec.Cap()
		if a < -eps || a > capC+eps {
			panic(fmt.Sprintf("sim: policy %s allocated %v servers to a %s-class job (cap %v)",
				s.policy.Name(), a, spec.Speedup, capC))
		}
		a = clamp(a, 0, capC)
		cs.shares[c] = a
		rate := a
		if spec.Speedup.kind != speedupLinear && spec.Speedup.kind != speedupCapped {
			rate = spec.Speedup.Rate(a)
		}
		total += float64(n) * a
		s.incRate[c] = float64(n) * rate
		head := cs.vq[c].peek()
		if rate != cs.rate[c] || head != cs.heads[c] {
			// Re-anchor this class's one completion event. The old head's
			// entry (if any) goes stale via its generation bump; an event is
			// queued only while the class is actually being served.
			if old := cs.heads[c]; old != nil && old != head {
				old.gen++
			}
			cs.rate[c] = rate
			head.gen++
			if rate > 0 {
				t := s.clock + (head.vtarget-cs.vwork[c])/rate
				if t < s.clock {
					t = s.clock
				}
				s.evq.PushGen(t, head, head.gen)
			}
			cs.heads[c] = head
		}
	}
	if total > float64(s.k)+1e-6 {
		panic(fmt.Sprintf("sim: policy %s allocated %v servers on a %d-server system", s.policy.Name(), total, s.k))
	}
	s.incTotal = total
	s.metrics.busyRate = math.Min(total, float64(s.k))
}

// complete finishes head job j: pop it, settle its floating-point residual
// into Remaining (completeInc folds it out of the work aggregate), and
// shrink the class aggregates by one job's worth.
func (cs *classShareState) complete(s *System, j *Job) {
	c := j.Class
	if cs.vq[c].peek() != j {
		panic("sim: class-share completion is not the class head")
	}
	cs.vq[c].pop()
	j.Remaining = cs.remaining(j)
	s.incTotal -= cs.shares[c]
	s.incRate[c] -= cs.rate[c]
	cs.heads[c] = nil
	if cs.vq[c].len() == 0 {
		// Renormalize the empty class's coordinate so vwork dust cannot
		// accumulate across busy periods; no live vtarget references it.
		cs.vwork[c] = 0
		cs.rate[c] = 0
		cs.shares[c] = 0
		s.incRate[c] = 0
	}
}
