package sim

// The class-share fast path of the incremental engine: EQUI-style policies
// whose allocation is uniform within every class cannot use the ShareSet
// write-set protocol — every resident job holds a share, so an honest
// write-set is O(n) per event. But uniformity is itself the exploitable
// structure: when a water-filling share moves, it moves identically for
// every job of the class, so the engine can track whole classes instead of
// jobs.
//
// Each class carries a virtual-time coordinate vwork[c]: the work depleted
// per job of class c since the coordinate's anchor. A class-c job arriving
// when the coordinate reads v completes when the coordinate reaches
// vtarget = v + Size — a constant computed once at arrival. Within a class,
// completion order is vtarget order, so the live jobs sit in one min-heap
// per class keyed (vtarget, ID), and only the head needs a completion event
// in the future-event list. A policy refresh touches O(#classes) state:
// re-derive the per-class share vector (the water-filling delta), and for
// each class whose per-job rate or heap head changed, re-anchor that one
// head event. Per-job rate and servers fields are deliberately left zero in
// this mode; remaining work is derived on demand as vtarget - vwork[c].
//
// The coordinates are renormalized to zero whenever their class empties, so
// floating-point dust in vwork never outlives a busy period.

import (
	"fmt"
	"math"
	"math/bits"
)

// ClassSharePolicy is an optional Policy extension for policies whose
// allocation is uniform within each class (every class-c job receives the
// same share). ClassShares must write class c's per-job share into
// shares[c] for every nonempty class — exactly the value Allocate would
// write into each alloc.Classes[c][i]; the cross-engine equivalence suite
// holds the two faces together. The engine zeroes the slice beforehand;
// entries for empty classes are ignored. Implementations must be
// size-blind, like Allocate itself.
type ClassSharePolicy interface {
	Policy
	ClassShares(st *State, shares []float64)
}

// vtargetEntry is one inline vtarget-heap key: the job's completion
// coordinate and identity copied out of the Job struct, plus its arena
// handle. Comparisons touch only the heap's own contiguous memory — no
// pointer chase into the job working set, which profiles showed dominating
// the EQUI event cost at high occupancy.
type vtargetEntry struct {
	vtarget float64
	id      int64
	h       jobHandle
	_       int32
}

func vtargetEntryLess(a, b *vtargetEntry) bool {
	if a.vtarget != b.vtarget {
		return a.vtarget < b.vtarget
	}
	return a.id < b.id
}

// vtargetPQ is a per-class monotone priority queue (a radix heap) keyed
// (vtarget, ID). It exploits the one property a comparison heap cannot: the
// pop sequence is monotone. Completions consume ascending vtargets, and an
// arrival's vtarget = vwork + Size always lands at or above the coordinate,
// so keys never need to sort below the last popped minimum. Entries bucket
// by the most significant bit at which the key's float64 pattern differs
// from the reference key `last` (positive float64 bit patterns are
// order-isomorphic to their values). Push is O(1); pop re-buckets the
// lowest nonempty bucket only when bucket 0 drains, and every re-bucketed
// entry falls to a strictly lower bucket, so pops are O(1) amortized. A
// comparison heap at n = 10k is ~7 dependent cache misses per pop; the
// radix heap's bursts are sequential appends.
//
// The pop sequence is the unique (vtarget, ID) ascending order — ties
// resolved by a full-key scan of bucket 0 — so the internal layout is
// bit-invisible to the engine, exactly like the binary heap it replaces.
//
// One float edge: completion settles vwork to the head's vtarget only up to
// rounding, so the next arrival's key can land one ulp below `last`. Such
// keys go straight to bucket 0, which never re-buckets and is ordered with
// full-key compares, so ordering stays exact.
//
// Bucket 0 is kept as a small binary min-heap ordered (vtarget, ID) rather
// than an unordered pile: pushes and pops cost O(log |bucket 0|) sifts over
// hot contiguous memory and the minimum is always the root — no linear
// rescan after a pop, which profiling showed dominating the EQUI event cost
// at high occupancy (every completion pops, and every pop used to force a
// full bucket-0 scan).
const vtBuckets = 65 // bucket 0 (key <= last) + one per possible differing MSB

type vtargetPQ struct {
	bucket [vtBuckets][]vtargetEntry
	occ    uint64 // bit b-1 set iff bucket[b] nonempty (buckets 1..64)
	last   uint64 // reference key: bit pattern of the last popped minimum
	size   int
}

func (q *vtargetPQ) len() int { return q.size }

// b0up restores the bucket-0 heap invariant after an append at index i.
func (q *vtargetPQ) b0up(i int) {
	b0 := q.bucket[0]
	for i > 0 {
		parent := (i - 1) / 2
		if !vtargetEntryLess(&b0[i], &b0[parent]) {
			return
		}
		b0[i], b0[parent] = b0[parent], b0[i]
		i = parent
	}
}

// b0down restores the bucket-0 heap invariant after the root was replaced.
func (q *vtargetPQ) b0down() {
	b0 := q.bucket[0]
	n := len(b0)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && vtargetEntryLess(&b0[l], &b0[smallest]) {
			smallest = l
		}
		if r < n && vtargetEntryLess(&b0[r], &b0[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		b0[i], b0[smallest] = b0[smallest], b0[i]
		i = smallest
	}
}

func (q *vtargetPQ) bucketOf(k uint64) int {
	if k <= q.last {
		return 0
	}
	return bits.Len64(k ^ q.last)
}

func (q *vtargetPQ) push(e vtargetEntry) {
	i := q.bucketOf(math.Float64bits(e.vtarget))
	q.bucket[i] = append(q.bucket[i], e)
	if i == 0 {
		q.b0up(len(q.bucket[0]) - 1)
	} else {
		q.occ |= 1 << (i - 1)
	}
	q.size++
}

// settleMin refills a drained bucket 0: adopt the lowest nonempty bucket's
// minimum key as the new reference and re-bucket that bucket's entries
// (each falls strictly lower; at least the minimum lands in bucket 0, heap-
// pushed so bucket 0 stays ordered).
func (q *vtargetPQ) settleMin() {
	b := bits.TrailingZeros64(q.occ) + 1
	src := q.bucket[b]
	// The new reference only needs the minimum KEY — entries tying on
	// vtarget all fall into bucket 0 regardless of ID, where the heap
	// order resolves the (vtarget, ID) ties — so this pass is a pure float
	// min with no tie-break branches.
	mv := src[0].vtarget
	for i := 1; i < len(src); i++ {
		if src[i].vtarget < mv {
			mv = src[i].vtarget
		}
	}
	q.last = math.Float64bits(mv)
	q.bucket[b] = nil // self-append guard; restored below
	q.occ &^= 1 << (b - 1)
	for i := range src {
		k := math.Float64bits(src[i].vtarget)
		if k <= q.last {
			q.bucket[0] = append(q.bucket[0], src[i])
			q.b0up(len(q.bucket[0]) - 1)
			continue
		}
		j := bits.Len64(k ^ q.last)
		q.bucket[j] = append(q.bucket[j], src[i])
		q.occ |= 1 << (j - 1)
	}
	q.bucket[b] = src[:0]
}

// peek returns the minimum entry, or nil when empty. The pointer is only
// valid until the next push/pop.
func (q *vtargetPQ) peek() *vtargetEntry {
	if q.size == 0 {
		return nil
	}
	if len(q.bucket[0]) == 0 {
		q.settleMin()
	}
	return &q.bucket[0][0]
}

func (q *vtargetPQ) pop() vtargetEntry {
	if len(q.bucket[0]) == 0 {
		q.settleMin()
	}
	b0 := q.bucket[0]
	e := b0[0]
	last := len(b0) - 1
	b0[0] = b0[last]
	q.bucket[0] = b0[:last]
	if last > 1 {
		q.b0down()
	}
	q.size--
	if q.size == 0 {
		// The class is about to renormalize vwork to zero; reset the
		// reference so post-renormalization keys stay well above it.
		q.last = 0
	}
	return e
}

// classShareState is the engine-side state of the class-share path. It
// needs no future-event queue: at most one completion per class is ever in
// sight (the class head), so the armed head times live in the flat nextT
// array and the next event is the minimum over the classes — O(#classes)
// to peek, nothing to sift, push or stale.
type classShareState struct {
	policy ClassSharePolicy
	// shares[c] is the current per-job share of class c; rate[c] the
	// resulting per-job service rate; vwork[c] the virtual-time coordinate;
	// heads[c] the handle of the job whose completion event is currently
	// armed (-1 when none is); nextT[c] that job's armed absolute
	// completion time (+Inf when none is armed).
	shares []float64
	rate   []float64
	vwork  []float64
	heads  []jobHandle
	nextT  []float64
	vq     []vtargetPQ
	// maxRate[c] bounds the per-job service rate of class c over every
	// feasible allocation — the deferSafe margin.
	maxRate []float64
}

func newClassShareState(p ClassSharePolicy, s *System) *classShareState {
	numClasses := len(s.classes)
	cs := &classShareState{
		policy:  p,
		shares:  make([]float64, numClasses),
		rate:    make([]float64, numClasses),
		vwork:   make([]float64, numClasses),
		heads:   make([]jobHandle, numClasses),
		nextT:   make([]float64, numClasses),
		vq:      make([]vtargetPQ, numClasses),
		maxRate: make([]float64, numClasses),
	}
	for c := range cs.heads {
		cs.heads[c] = -1
		cs.nextT[c] = math.Inf(1)
		// A per-job share never exceeds min(cap, k); speedups are monotone,
		// so the rate at that share bounds every feasible rate.
		mr := min(s.caps[c], float64(s.k))
		if !s.idRate[c] {
			mr = s.classes[c].Speedup.Rate(mr)
		}
		cs.maxRate[c] = mr
	}
	return cs
}

// peekNext returns the earliest armed head completion, or (nil, +Inf) when
// no class is being served. Exact time ties resolve to the lowest class
// index.
func (cs *classShareState) peekNext(s *System) (*Job, float64) {
	best := -1
	bt := math.Inf(1)
	for c, t := range cs.nextT {
		if t < bt {
			best, bt = c, t
		}
	}
	if best < 0 {
		return nil, bt
	}
	return s.jobs.at(cs.heads[best]), bt
}

// deferSafe reports whether the policy refresh owed after a completion
// batch can wait for the next stepping call. It can unless some surviving
// class head sits so close to its completion coordinate that a re-derived
// share vector could complete it at the current instant (vtarget already
// reached, or near enough that clock + remaining/rate could round to
// clock): then the refresh must run now so the completion lands inside the
// current AdvanceTo, exactly as the eager engine and the rebuild engine
// would have it.
func (cs *classShareState) deferSafe(s *System) bool {
	ulp := math.Nextafter(s.clock, math.Inf(1)) - s.clock
	for c := range cs.vq {
		if cs.vq[c].len() == 0 {
			continue
		}
		head := cs.vq[c].peek()
		if head.vtarget-cs.vwork[c] <= 2*ulp*cs.maxRate[c] {
			return false
		}
	}
	return true
}

// arrive registers a new job: its completion coordinate is fixed forever.
func (cs *classShareState) arrive(s *System, j *Job) {
	j.vtarget = cs.vwork[j.Class] + j.Size
	cs.vq[j.Class].push(vtargetEntry{vtarget: j.vtarget, id: int64(j.ID), h: j.handle})
}

// remaining derives a live job's exact remaining work at the current
// coordinate reading.
func (cs *classShareState) remaining(j *Job) float64 {
	rem := j.vtarget - cs.vwork[j.Class]
	if rem < 0 {
		return 0
	}
	return rem
}

// advance moves every class's coordinate forward by dt of wall time at the
// per-job rates currently in effect — O(#classes).
func (cs *classShareState) advance(dt float64) {
	for c, r := range cs.rate {
		if r > 0 {
			cs.vwork[c] += r * dt
		}
	}
}

// refresh re-derives the share vector and re-anchors the head events of the
// classes whose per-job rate or head changed. Aggregates (incRate, incTotal)
// are recomputed from scratch — O(#classes) — so they can never drift.
func (cs *classShareState) refresh(s *System) {
	const eps = 1e-9
	for c := range cs.shares {
		cs.shares[c] = 0
	}
	cs.policy.ClassShares(&s.st, cs.shares)
	total := 0.0
	for c := range s.queues {
		n := len(s.queues[c])
		if n == 0 {
			cs.shares[c] = 0
			cs.rate[c] = 0
			s.incRate[c] = 0
			continue
		}
		a := cs.shares[c]
		capC := s.caps[c]
		if a < -eps || a > capC+eps {
			panic(fmt.Sprintf("sim: policy %s allocated %v servers to a %s-class job (cap %v)",
				s.policy.Name(), a, s.classes[c].Speedup, capC))
		}
		a = clamp(a, 0, capC)
		cs.shares[c] = a
		rate := a
		if !s.idRate[c] {
			rate = s.classes[c].Speedup.Rate(a)
		}
		total += float64(n) * a
		s.incRate[c] = float64(n) * rate
		head := cs.vq[c].peek()
		if rate != cs.rate[c] || head.h != cs.heads[c] {
			// Re-anchor this class's one completion time in place; a time is
			// armed only while the class is actually being served.
			cs.rate[c] = rate
			cs.heads[c] = head.h
			if rate > 0 {
				t := s.clock + (head.vtarget-cs.vwork[c])/rate
				if t < s.clock {
					t = s.clock
				}
				cs.nextT[c] = t
			} else {
				cs.nextT[c] = math.Inf(1)
			}
		}
	}
	if total > float64(s.k)+1e-6 {
		panic(fmt.Sprintf("sim: policy %s allocated %v servers on a %d-server system", s.policy.Name(), total, s.k))
	}
	s.incTotal = total
	s.metrics.busyRate = min(total, float64(s.k))
}

// complete finishes head job j: pop it, settle its floating-point residual
// into Remaining (completeInc folds it out of the work aggregate), and
// shrink the class aggregates by one job's worth.
func (cs *classShareState) complete(s *System, j *Job) {
	c := j.Class
	if top := cs.vq[c].peek(); top == nil || top.h != j.handle {
		panic("sim: class-share completion is not the class head")
	}
	cs.vq[c].pop()
	j.Remaining = cs.remaining(j)
	s.incTotal -= cs.shares[c]
	s.incRate[c] -= cs.rate[c]
	cs.heads[c] = -1
	cs.nextT[c] = math.Inf(1)
	if cs.vq[c].len() == 0 {
		// Renormalize the empty class's coordinate so vwork dust cannot
		// accumulate across busy periods; no live vtarget references it.
		cs.vwork[c] = 0
		cs.rate[c] = 0
		cs.shares[c] = 0
		s.incRate[c] = 0
	}
}
