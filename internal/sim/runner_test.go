package sim

import (
	"math"
	"testing"
)

func makeTrace(n int, gap float64) []Arrival {
	arr := make([]Arrival, n)
	for i := range arr {
		class := Inelastic
		if i%2 == 1 {
			class = Elastic
		}
		arr[i] = Arrival{Time: float64(i) * gap, Class: class, Size: 0.5}
	}
	return arr
}

func TestSliceSourceReplay(t *testing.T) {
	src := &SliceSource{Arrivals: makeTrace(5, 1)}
	var got []Arrival
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, a)
	}
	if len(got) != 5 {
		t.Fatalf("replayed %d arrivals", len(got))
	}
	src.Reset()
	if a, ok := src.Next(); !ok || a != got[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestRunDrainsWhenSourceEnds(t *testing.T) {
	res := Run(RunConfig{
		K:       2,
		Policy:  ifPolicy{},
		Source:  &SliceSource{Arrivals: makeTrace(10, 0.1)},
		MaxJobs: 1000,
	})
	if res.Completions != 10 {
		t.Fatalf("completed %d of 10", res.Completions)
	}
	if math.IsNaN(res.MeanT) || res.MeanT <= 0 {
		t.Fatalf("bad E[T] %v", res.MeanT)
	}
}

func TestRunStopsAtMaxJobs(t *testing.T) {
	res := Run(RunConfig{
		K:       2,
		Policy:  ifPolicy{},
		Source:  &SliceSource{Arrivals: makeTrace(1000, 10)}, // well separated
		MaxJobs: 100,
	})
	if res.Completions < 100 || res.Completions > 105 {
		t.Fatalf("completions %d, want about 100", res.Completions)
	}
}

func TestWarmupDiscardsEarlyJobs(t *testing.T) {
	// Jobs well separated in time: each has response 0.5. With warmup,
	// the mean is identical but the count reflects only post-warmup jobs.
	res := Run(RunConfig{
		K:          1,
		Policy:     ifPolicy{},
		Source:     &SliceSource{Arrivals: makeTrace(200, 10)},
		WarmupJobs: 50,
		MaxJobs:    100,
	})
	if res.Completions < 100 || res.Completions > 101 {
		t.Fatalf("post-warmup completions %d", res.Completions)
	}
	if math.Abs(res.MeanT-0.5) > 1e-9 {
		t.Fatalf("mean response %v, want 0.5", res.MeanT)
	}
}

func TestRunDeterminism(t *testing.T) {
	mk := func() Result {
		return Run(RunConfig{
			K:       2,
			Policy:  ifPolicy{},
			Source:  &SliceSource{Arrivals: makeTrace(500, 0.3)},
			MaxJobs: 500,
		})
	}
	a, b := mk(), mk()
	if a.MeanT != b.MeanT || a.MeanN != b.MeanN || a.Completions != b.Completions {
		t.Fatalf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]RunConfig{
		"nil source":  {K: 1, Policy: ifPolicy{}, MaxJobs: 10},
		"no max jobs": {K: 1, Policy: ifPolicy{}, Source: &SliceSource{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestResultString(t *testing.T) {
	res := Run(RunConfig{
		K:       1,
		Policy:  ifPolicy{},
		Source:  &SliceSource{Arrivals: makeTrace(4, 10)},
		MaxJobs: 4,
	})
	if res.String() == "" {
		t.Fatal("empty Result string")
	}
}

func TestWorkLedger(t *testing.T) {
	// Conservation: total size of arrivals = completed work + remaining.
	trace := makeTrace(50, 0.2)
	sys := NewSystem(2, ifPolicy{})
	total := 0.0
	for _, a := range trace {
		sys.AdvanceTo(a.Time)
		sys.Arrive(a)
		total += a.Size
	}
	sys.Drain(math.Inf(1))
	completedWork := sys.Metrics().CompletedWork()
	if math.Abs(total-completedWork) > 1e-9 {
		t.Fatalf("work ledger broken: arrived %v, completed %v", total, completedWork)
	}
}

func TestCompareWorkTrivial(t *testing.T) {
	// Identical policies dominate each other trivially.
	trace := makeTrace(100, 0.3)
	rep := CompareWork(2, trace, ifPolicy{}, ifPolicy{}, 1e-9)
	if !rep.Dominates() || rep.CompletedA != rep.CompletedB {
		t.Fatalf("self-comparison failed: %+v", rep)
	}
	if rep.Checked == 0 {
		t.Fatal("no checks performed")
	}
}

func TestCompareWorkDetectsViolation(t *testing.T) {
	// EF has more work than IF at some instant on this trace, so the
	// reversed comparison must produce violations (non-vacuity).
	trace := []Arrival{
		{Time: 0, Class: Inelastic, Size: 1},
		{Time: 0, Class: Elastic, Size: 2},
		{Time: 0.1, Class: Inelastic, Size: 1},
	}
	rep := CompareWork(2, trace, efPolicy{}, ifPolicy{}, 1e-9)
	if rep.Dominates() {
		t.Fatal("expected EF-vs-IF violations on this trace")
	}
}
