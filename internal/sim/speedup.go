package sim

import (
	"fmt"
	"math"
)

// speedupKind enumerates the built-in speedup-function families. The zero
// value is Linear, so a zero ClassSpec describes a fully elastic class.
type speedupKind int

const (
	speedupLinear speedupKind = iota
	speedupCapped
	speedupAmdahl
	speedupPower
)

// Speedup is a class's speedup function s(a): the service rate a single job
// of the class attains when allocated a servers. All built-in families
// satisfy the model's requirements from Sections 2 and 6 of the paper:
// s(0) = 0, s is nondecreasing and concave, and s(a) = a for a <= 1
// (a fractional allocation time-shares one server, so no function delivers
// more than linear speedup below one server).
//
// The paper's two classes are Linear (elastic: s(a) = a for all a) and
// Capped(1) (inelastic: s(a) = min(a, 1)). Capped(C) is the Section 2
// extension where a job can use up to C servers, and Amdahl/Power are the
// Section 6 partially elastic classes with diminishing returns.
type Speedup struct {
	kind speedupKind
	// c is the cap for Capped; sigma the serial fraction for Amdahl; alpha
	// the exponent for Power.
	c, sigma, alpha float64
}

// LinearSpeedup returns the fully elastic speedup s(a) = a.
func LinearSpeedup() Speedup { return Speedup{kind: speedupLinear} }

// CappedSpeedup returns s(a) = min(a, c): linear up to c servers, flat
// beyond. CappedSpeedup(1) is the paper's inelastic class.
func CappedSpeedup(c float64) Speedup {
	if !(c >= 1) {
		panic(fmt.Sprintf("sim: speedup cap must be >= 1 (got %v)", c))
	}
	return Speedup{kind: speedupCapped, c: c}
}

// InelasticSpeedup returns CappedSpeedup(1), the paper's inelastic class.
func InelasticSpeedup() Speedup { return CappedSpeedup(1) }

// AmdahlSpeedup returns Amdahl's law with serial fraction sigma in [0, 1):
// s(a) = a for a <= 1 and s(a) = 1/(sigma + (1-sigma)/a) beyond, which
// saturates at 1/sigma as a grows. Sigma 0 reduces to Linear.
func AmdahlSpeedup(sigma float64) Speedup {
	if sigma < 0 || sigma >= 1 {
		panic(fmt.Sprintf("sim: Amdahl serial fraction must be in [0,1) (got %v)", sigma))
	}
	return Speedup{kind: speedupAmdahl, sigma: sigma}
}

// PowerSpeedup returns the concave power-law s(a) = a for a <= 1 and
// s(a) = a^alpha beyond, with alpha in (0, 1]. Alpha 1 reduces to Linear.
func PowerSpeedup(alpha float64) Speedup {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("sim: power-law exponent must be in (0,1] (got %v)", alpha))
	}
	return Speedup{kind: speedupPower, alpha: alpha}
}

// Rate returns the service rate s(a) for an allocation of a servers. The
// engine guarantees a >= 0 (and a <= Cap() for capped classes) before
// calling.
func (s Speedup) Rate(a float64) float64 {
	switch s.kind {
	case speedupCapped:
		if a > s.c {
			return s.c
		}
		return a
	case speedupAmdahl:
		if a <= 1 {
			return a
		}
		return 1 / (s.sigma + (1-s.sigma)/a)
	case speedupPower:
		if a <= 1 {
			return a
		}
		return math.Pow(a, s.alpha)
	default: // linear
		return a
	}
}

// Cap returns the saturation allocation: the number of servers beyond which
// additional allocation yields no additional service rate. Capped classes
// return their cap; every strictly increasing family returns +Inf. Strict
// class-priority policies give each job up to Cap() servers.
func (s Speedup) Cap() float64 {
	if s.kind == speedupCapped {
		return s.c
	}
	return math.Inf(1)
}

// String names the speedup function.
func (s Speedup) String() string {
	switch s.kind {
	case speedupCapped:
		return fmt.Sprintf("capped(%g)", s.c)
	case speedupAmdahl:
		return fmt.Sprintf("amdahl(%g)", s.sigma)
	case speedupPower:
		return fmt.Sprintf("power(%g)", s.alpha)
	default:
		return "linear"
	}
}
