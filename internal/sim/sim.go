// Package sim implements the event-driven simulator for the paper's model,
// generalized to N job classes: k identical servers shared by jobs whose
// classes each carry a speedup function s(a) mapping a (possibly fractional)
// server allocation to a service rate. The paper's two-class model — elastic
// jobs that parallelize linearly and inelastic jobs capped at one server —
// is the preset returned by TwoClassSpecs (see preset.go); capped, Amdahl
// and power-law speedups model the Section 2 and Section 6 extensions
// (jobs elastic up to C servers, partial elasticity). An allocation policy
// is re-consulted at every arrival and departure, exactly as in the paper's
// preemptible fluid model.
//
// The engine exposes an explicit stepping API (Arrive / AdvanceTo) rather
// than a closed run loop so that two systems under different policies can be
// driven in lockstep over the same arrival sequence. That is how the
// Theorem 3 sample-path dominance experiments couple Inelastic-First against
// other policies: same arrivals, same sizes, work compared at the union of
// both systems' event times.
//
// Steady-state stepping is allocation-free: Job structs are recycled through
// a free list, the Allocation buffers handed to the policy are reused across
// events, and departures are selected through the internal/eventq future
// event list (ties resolve in class-then-FCFS order, matching the scan order
// of the historical two-class engine bit for bit).
//
// Two stepping engines are available (Options.Engine). The default rebuild
// engine depletes every job and rebuilds the future-event list at every
// event — O(n) per event in the occupancy n, bit-frozen by the golden set.
// The opt-in incremental engine (incremental.go) keeps completion events
// across steps, settles per-job remaining work lazily, and re-touches only
// jobs whose allocation actually changed — O(changed · log n) per event for
// the strict-priority policy family, which is what makes near-saturation
// (rho → 1) sweeps with thousands of resident jobs tractable.
package sim

import (
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/dist"
	"repro/internal/eventq"
)

// Class indexes a job class (an index into the system's ClassSpec slice).
// The two-class preset uses Inelastic (0) and Elastic (1).
type Class int

// ClassSpec describes one job class of a system.
type ClassSpec struct {
	// Name labels the class in reports. Optional.
	Name string
	// Speedup maps a server allocation to the class's service rate. The
	// zero value is linear (fully elastic).
	Speedup Speedup
	// MaxServers optionally bounds the allocation of a single job of this
	// class (the per-job parallelizability bound k_j of Appendix A); 0
	// means unbounded. For strictly increasing but saturating speedups
	// (Amdahl, power-law) it keeps strict-priority policies from parking
	// an entire cluster on one job far past its efficient operating point.
	MaxServers float64
	// Lambda is the class's Poisson arrival rate; used by the stochastic
	// run drivers (internal/workload) and ignored by the engine itself.
	Lambda float64
	// Size is the class's job-size distribution; used by the stochastic
	// run drivers and by size-aware class orderings (policy.SmallestMeanFirst).
	// Ignored by the engine itself and may be nil for replayed traces.
	Size dist.Distribution
}

// Cap returns the class's effective per-job allocation cap: the smaller of
// the speedup's saturation allocation and MaxServers (when set). The engine
// enforces it on every policy decision; class-priority policies give each
// job up to Cap servers.
func (c ClassSpec) Cap() float64 {
	capC := c.Speedup.Cap()
	if c.MaxServers > 0 && c.MaxServers < capC {
		capC = c.MaxServers
	}
	return capC
}

// Arrival is one externally scheduled job arrival.
type Arrival struct {
	Time  float64
	Class Class
	Size  float64
}

// Job is a job resident in the system. Policies receive jobs in FCFS order
// per class; the paper's policies are size-blind and must not read Remaining
// (it is exposed for instrumentation and for known-size baselines only).
// Under the incremental engine Remaining is settled lazily: it is exact in
// Completion snapshots and whenever the policy's Allocate (not
// AllocateSparse) runs, but may be stale between events for other readers.
// The pointer returned by Arrive is valid until the job completes; completed
// Job structs are recycled by the engine.
type Job struct {
	// The per-event hot fields lead the struct so the stepping loops (which
	// walk recycled, free-list-local jobs) touch one cache line per job:
	// Remaining and rate are read by every depletion, updated/gen by every
	// incremental settle and event push.
	Remaining float64
	rate      float64 // current service rate s(servers)
	servers   float64 // current server allocation

	// Incremental-engine state (unused by the rebuild engine): updated is
	// the time Remaining was last settled; round marks the last
	// sparse-allocation round that wrote this job. The job's future-event
	// entry is keyed by handle in the indexed event list (eventq.IndexedQueue),
	// which holds at most one entry per handle — no generation stamps needed.
	updated float64
	round   uint64

	// Class sits with the hot head (not with the other identity fields
	// below) because the sparse apply loop reads it on every written job —
	// keeping the whole {Remaining..Class, hpos, qpos} working set inside
	// the struct's first 64 bytes halves the cold-miss footprint when a
	// long-queued job is first promoted into service.
	Class Class

	// hpos is the job's position in the sparse SRPT path's indexed heap
	// (srpt_inc.go), -1 when absent; qpos is the job's index in its class
	// queue, maintained only by the queue-order-blind engine modes so
	// departures swap-remove in O(1); vtarget is the job's completion
	// coordinate on its class's virtual-time axis under the sparse EQUI
	// path (classshare.go).
	hpos    int32
	qpos    int32
	vtarget float64

	ID      int
	Arrival float64
	Size    float64

	// handle is the job's slot in the engine's arena (arena.go) — the
	// pointer-free address the future-event list and the EQUI vtarget heaps
	// store. Fixed when the slot is first carved out of a chunk; survives
	// recycling.
	handle jobHandle
}

// Rate returns the job's current service rate s(a).
func (j *Job) Rate() float64 { return j.rate }

// Servers returns the job's current server allocation a.
func (j *Job) Servers() float64 { return j.servers }

// State is the scheduler-visible system state: one FCFS queue per class.
// Slices are owned by the System; policies must not retain or mutate them.
type State struct {
	K       int
	Time    float64
	Classes []ClassSpec
	// Queues[c] holds the class-c jobs in FCFS (arrival) order.
	Queues [][]*Job
}

// Allocation receives the policy's decision: Classes[c][i] is the server
// share of State.Queues[c][i]. The engine zeroes the slices before each
// Allocate call and reuses their backing arrays across events.
type Allocation struct {
	Classes [][]float64
}

// Policy decides server allocations. Implementations must satisfy the model
// constraints: every share is >= 0, a class-c share is at most the class's
// saturation cap, and the shares sum to at most K. The engine verifies these
// bounds on every call.
type Policy interface {
	Name() string
	Allocate(st *State, alloc *Allocation)
}

// Completion records one finished job. Job carries the identity fields
// (ID, Class, Arrival, Size; Remaining is zero on a finished job) —
// materialized from the engine's compact per-completion record at the
// AdvanceTo/Drain boundary, so engine-internal scheduling state never
// rides along on the hot path.
type Completion struct {
	Job      Job
	Finished float64
}

// completionRecord is the engine-internal shape of one completion: ~40
// bytes against Completion's ~112, appended by both engines through the
// shared appendCompletion helper and expanded into full Completions only
// when AdvanceTo/Drain return to the caller (the RunObserved/recorder
// boundary).
type completionRecord struct {
	finished float64
	arrival  float64
	size     float64
	id       int
	class    Class
}

// Response returns the job's response time.
func (c Completion) Response() float64 { return c.Finished - c.Job.Arrival }

// Engine selects the stepping implementation of a System.
type Engine uint8

const (
	// EngineRebuild is the default engine: every event depletes all jobs
	// and rebuilds the future-event list. It is bit-frozen by the golden
	// set and remains the reference implementation.
	EngineRebuild Engine = iota
	// EngineIncremental keeps completion events across steps, settles
	// remaining work lazily and re-touches only jobs whose allocation
	// changed — O(changed · log n) per event for SparsePolicy policies.
	// It is deterministic with its own golden set; completion times agree
	// with the rebuild engine to floating-point reassociation (~1e-12
	// relative), not bit for bit.
	EngineIncremental
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	if e == EngineIncremental {
		return "incremental"
	}
	return "rebuild"
}

// ParseEngine resolves a flag/config spelling; the empty string means the
// default rebuild engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "rebuild":
		return EngineRebuild, nil
	case "incremental":
		return EngineIncremental, nil
	}
	return EngineRebuild, fmt.Errorf("sim: unknown engine %q (want rebuild or incremental)", s)
}

// Options configure a System beyond the model parameters.
type Options struct {
	// Engine selects the stepping engine; the zero value is EngineRebuild.
	Engine Engine
	// ForceDense disables the incremental engine's fast paths (the
	// SparsePolicy write-set protocol and the specialized EQUI/SRPT modes)
	// and runs every policy on the dense settle-all fallback. The fallback
	// is the oracle the differential test harness diffs the fast paths
	// against; this switch keeps it reachable forever. The SIM_FORCE_DENSE
	// environment variable (any nonempty value) has the same effect, so the
	// oracle can also be forced through CLIs and CI without a code change.
	ForceDense bool
}

// System is one simulated cluster under one policy.
type System struct {
	k       int
	classes []ClassSpec
	policy  Policy
	engine  Engine
	clock   float64
	nextID  int

	// queues[c] is the scheduler-visible FCFS window over qbase[c], starting
	// at offset qoff[c]. FCFS departures leave from the head by advancing
	// the window; when an append runs out of tail capacity and at least a
	// quarter of the backing has been abandoned at the front, the window
	// slides home in place instead of reallocating — steady-state stepping
	// therefore never regrows the queue backing (and never re-triggers the
	// GC through it).
	queues [][]*Job
	qbase  [][]*Job
	qoff   []int

	st    State
	alloc Allocation

	// caps[c] is classes[c].Cap() and idRate[c] reports whether the class's
	// speedup satisfies s(a) = a for feasible a (linear/capped), both
	// precomputed at construction — the class set is immutable, so the hot
	// loops skip the per-event dispatch through Speedup.
	caps   []float64
	idRate []bool

	// evq is the rebuild engine's future-event list, refilled from the live
	// job set at every event (its backing array is reused, so rebuilding is
	// allocation-free). It holds arena handles — no pointers, so heap swaps
	// write no barriers.
	evq eventq.Queue[jobHandle]

	// ievq is the incremental engine's future-event list for the sparse,
	// SRPT and dense paths: an indexed heap with at most one entry per
	// handle, rescheduled in place when a rate changes, so the heap depth is
	// the live event count (~k entries under the sparse paths) and no stale
	// entries ever accumulate. The class-share path bypasses it entirely —
	// its per-class head times live in classShareState.nextT.
	ievq eventq.IndexedQueue

	metrics Metrics

	// records collects the compact per-completion records of the current
	// AdvanceTo/Drain; completionsBuf is the materialized Completion slice
	// handed back to the caller, reused across calls. jobs is the arena
	// that owns and recycles every Job struct.
	records        []completionRecord
	completionsBuf []Completion
	jobs           jobArena
	numJobs        int

	allocDirty bool

	// Incremental-engine state (see incremental.go). sparse is the policy's
	// SparsePolicy facet when it has one; incRate/incWork are per-class
	// service-rate and remaining-work aggregates settled to clock; incTotal
	// is the allocated server total; incActive holds the jobs with nonzero
	// allocation (sparse and srpt paths) and incActiveBuf is its double
	// buffer. cs and srpt are the specialized EQUI/SRPT modes (classshare.go,
	// srpt_inc.go); at most one of sparse/cs/srpt is active. orderBlind marks
	// the modes whose policies never read FCFS queue positions, letting
	// departures swap-remove from the queue slices in O(1).
	sparse       SparsePolicy
	arrShadow    ArrivalShadowPolicy // sparse's shadowed-arrival facet, when offered
	cs           *classShareState
	srpt         *srptState
	orderBlind   bool
	incRate      []float64
	incWork      []float64
	incTotal     float64
	incActive    []*Job
	incActiveBuf []*Job
	incWrites    ShareSet
	incRound     uint64

	// incServed[c] counts class c's jobs in incActive as of the last sparse
	// apply; prefetchSink forces the service-boundary warmup loads in
	// completeInc to stay in the compiled code. Both are heuristic-only
	// state: no simulation quantity ever reads them.
	incServed    []int32
	prefetchSink uint64

	// incPrev is the raw write-set the last applySparse applied. While no
	// completion has intervened (incPrevValid), a refresh producing the
	// exact same writes is a proven no-op and skips the whole diff — the
	// common shape of the refresh that follows an arrival into a deep
	// backlog, where the served prefix is unchanged.
	incPrev      []ShareWrite
	incPrevValid bool
}

// NewClassSystem returns an empty system with k servers over the given job
// classes, governed by policy, using the default rebuild engine.
func NewClassSystem(k int, classes []ClassSpec, policy Policy) *System {
	return NewClassSystemOpts(k, classes, policy, Options{})
}

// NewClassSystemOpts is NewClassSystem with engine-level Options.
func NewClassSystemOpts(k int, classes []ClassSpec, policy Policy, opts Options) *System {
	if k < 1 {
		panic("sim: k must be >= 1")
	}
	if len(classes) == 0 {
		panic("sim: at least one class is required")
	}
	if policy == nil {
		panic("sim: nil policy")
	}
	s := &System{
		k:       k,
		classes: append([]ClassSpec(nil), classes...),
		policy:  policy,
		engine:  opts.Engine,
		queues:  make([][]*Job, len(classes)),
		qbase:   make([][]*Job, len(classes)),
		qoff:    make([]int, len(classes)),
	}
	s.alloc.Classes = make([][]float64, len(classes))
	s.st.K = k
	s.st.Classes = s.classes
	s.caps = make([]float64, len(classes))
	s.idRate = make([]bool, len(classes))
	for c := range s.classes {
		s.caps[c] = s.classes[c].Cap()
		kind := s.classes[c].Speedup.kind
		s.idRate[c] = kind == speedupLinear || kind == speedupCapped
	}
	s.metrics.init(len(classes))
	s.metrics.Reset(0)
	if s.engine == EngineIncremental {
		s.incRate = make([]float64, len(classes))
		s.incWork = make([]float64, len(classes))
		s.incServed = make([]int32, len(classes))
		if !opts.ForceDense && os.Getenv("SIM_FORCE_DENSE") == "" {
			switch p := policy.(type) {
			case ClassSharePolicy:
				s.cs = newClassShareState(p, s)
				s.orderBlind = true
			case RemainingOrderedPolicy:
				s.srpt = &srptState{}
				s.orderBlind = true
			default:
				s.sparse, _ = policy.(SparsePolicy)
				if s.sparse != nil {
					s.arrShadow, _ = policy.(ArrivalShadowPolicy)
				}
			}
		}
	}
	return s
}

// Engine returns the system's stepping engine.
func (s *System) Engine() Engine { return s.engine }

// K returns the number of servers.
func (s *System) K() int { return s.k }

// Classes returns the system's class specs. Callers must not mutate it.
func (s *System) Classes() []ClassSpec { return s.classes }

// NumClasses returns the number of job classes.
func (s *System) NumClasses() int { return len(s.classes) }

// Clock returns the current simulation time.
func (s *System) Clock() float64 { return s.clock }

// Policy returns the governing policy.
func (s *System) Policy() Policy { return s.policy }

// NumClass returns the number of class-c jobs in system (0 for a class the
// system does not have).
func (s *System) NumClass(c Class) int {
	if c < 0 || int(c) >= len(s.queues) {
		return 0
	}
	return len(s.queues[c])
}

// NumJobs returns the total number of jobs in system.
func (s *System) NumJobs() int { return s.numJobs }

// Work returns the total remaining work W(t).
func (s *System) Work() float64 {
	w := 0.0
	for c := range s.queues {
		w += s.WorkClass(Class(c))
	}
	return w
}

// WorkClass returns the remaining class-c work W_c(t) (0 for a class the
// system does not have). Under the incremental engine the value comes from
// the maintained per-class aggregate rather than a per-job scan, so it is
// O(1) and exact to floating-point reassociation.
func (s *System) WorkClass(c Class) float64 {
	if c < 0 || int(c) >= len(s.queues) {
		return 0
	}
	if s.engine == EngineIncremental {
		return s.incWork[c]
	}
	w := 0.0
	for _, j := range s.queues[c] {
		w += j.Remaining
	}
	return w
}

// Metrics returns the accumulated metrics.
func (s *System) Metrics() *Metrics { return &s.metrics }

// ResetMetrics discards accumulated statistics (e.g. at the end of warmup)
// without disturbing the system state.
func (s *System) ResetMetrics() { s.metrics.Reset(s.clock) }

// Arrive injects a job at the current clock. Size must be positive and the
// arrival cannot be in the system's past.
func (s *System) Arrive(a Arrival) *Job {
	if a.Time < s.clock-1e-12 {
		panic(fmt.Sprintf("sim: arrival at %v is before clock %v", a.Time, s.clock))
	}
	if a.Time > s.clock {
		if s.engine == EngineIncremental {
			s.advanceClockOnlyInc(a.Time)
		} else {
			s.advanceClockOnly(a.Time)
		}
	}
	if a.Size <= 0 {
		panic("sim: job size must be positive")
	}
	if a.Class < 0 || int(a.Class) >= len(s.classes) {
		panic(fmt.Sprintf("sim: arrival of unknown class %d on a %d-class system", a.Class, len(s.classes)))
	}
	// handle must survive recycling (alloc preserves it); no future-event
	// entry from the slot's previous life can linger — the engines
	// unschedule a job's event before releasing its slot. Every other field
	// is reset explicitly (cheaper than a full struct clear followed by
	// re-writing half the fields).
	j := s.jobs.alloc()
	j.Remaining = a.Size
	j.rate = 0
	j.servers = 0
	j.updated = s.clock
	j.round = 0
	j.vtarget = 0
	j.hpos = -1
	j.qpos = int32(len(s.queues[a.Class]))
	j.ID = s.nextID
	j.Class = a.Class
	j.Arrival = s.clock
	j.Size = a.Size
	s.nextID++
	s.pushQueue(a.Class, j)
	s.numJobs++
	s.metrics.arrivals[a.Class]++
	if s.engine == EngineIncremental {
		s.incWork[a.Class] += a.Size
		s.arriveInc(j)
		// Shadowed-arrival fast path: if the policy's last walk provably
		// stops before it would reach this job (ArrivalShadowPolicy), the
		// allocation is unchanged and the refresh is skipped outright. Only
		// valid while the last applied write-set is still in force —
		// completions clear incPrevValid.
		if s.arrShadow != nil && s.incPrevValid && s.incWrites.exhaustedAt >= 0 &&
			s.arrShadow.ArrivalShadowed(&s.st, s.incWrites.exhaustedAt, a.Class) {
			return j
		}
	}
	s.allocDirty = true
	return j
}

// AdvanceTo advances the simulation clock to time t, processing every
// completion in (clock, t]. It returns the completions in chronological
// order; the returned slice is reused by the next call.
func (s *System) AdvanceTo(t float64) []Completion {
	if t < s.clock-1e-12 {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before clock %v", t, s.clock))
	}
	if s.engine == EngineIncremental {
		return s.advanceToInc(t)
	}
	s.records = s.records[:0]
	for {
		s.refreshAllocation()
		done, tc := s.nextCompletion()
		// Process every completion at or before t — including ones that
		// land exactly on t or exactly on the current clock (simultaneous
		// completions depleted by a previous advance), which would
		// otherwise linger and stall lockstep drivers.
		if done != nil && tc <= t {
			s.advanceWork(tc - s.clock)
			s.complete(done)
			continue
		}
		if s.clock < t {
			s.advanceWork(t - s.clock)
		}
		break
	}
	// Clamp accumulated floating error so coupled runs stay aligned.
	s.clock = t
	return s.materializeCompletions()
}

// appendCompletion is the one completion append site shared by both
// engines: compact record, response statistics, slot recycling. Callers
// must have settled Remaining and removed the job from its queue.
func (s *System) appendCompletion(j *Job) {
	s.records = append(s.records, completionRecord{
		finished: s.clock, arrival: j.Arrival, size: j.Size, id: j.ID, class: j.Class,
	})
	s.metrics.recordCompletion(j, s.clock)
	s.jobs.release(j)
	s.numJobs--
	s.allocDirty = true
}

// materializeCompletions expands the compact records of the finished
// AdvanceTo into caller-visible Completions through one grown buffer —
// same-timestamp batches flush together, and the scheduling-internal Job
// fields the records dropped stay zero.
func (s *System) materializeCompletions() []Completion {
	if cap(s.completionsBuf) < len(s.records) {
		s.completionsBuf = make([]Completion, 0, max(len(s.records), 16))
	}
	out := s.completionsBuf[:len(s.records)]
	for i := range s.records {
		r := &s.records[i]
		o := &out[i]
		*o = Completion{Finished: r.finished}
		o.Job.ID = r.id
		o.Job.Class = r.class
		o.Job.Arrival = r.arrival
		o.Job.Size = r.size
	}
	s.completionsBuf = out
	return out
}

// Drain runs the system until it empties or the clock passes horizon,
// returning all completions.
func (s *System) Drain(horizon float64) []Completion {
	if s.engine == EngineIncremental {
		return s.drainInc(horizon)
	}
	s.records = s.records[:0]
	for s.NumJobs() > 0 && s.clock < horizon {
		s.refreshAllocation()
		done, tc := s.nextCompletion()
		if done == nil || tc > horizon {
			s.advanceWork(horizon - s.clock)
			s.clock = horizon
			break
		}
		s.advanceWork(tc - s.clock)
		s.clock = tc
		s.complete(done)
	}
	// Drain's result must survive subsequent stepping, so it gets its own
	// slice rather than the reused AdvanceTo buffer.
	return append([]Completion(nil), s.materializeCompletions()...)
}

// advanceClockOnly integrates metrics and work up to t assuming no
// completion occurs strictly before t; callers must guarantee that.
func (s *System) advanceClockOnly(t float64) {
	for s.clock < t {
		s.refreshAllocation()
		done, tc := s.nextCompletion()
		if done == nil || tc >= t {
			s.advanceWork(t - s.clock)
			break
		}
		s.advanceWork(tc - s.clock)
		s.complete(done)
	}
	s.clock = t
}

// refreshAllocation re-runs the policy if the job set changed.
func (s *System) refreshAllocation() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	s.st.Time = s.clock
	s.st.Queues = s.queues
	for c, q := range s.queues {
		s.alloc.Classes[c] = resizeZero(s.alloc.Classes[c], len(q))
	}
	s.policy.Allocate(&s.st, &s.alloc)
	s.applyAllocation()
}

func resizeZero(sl []float64, n int) []float64 {
	if cap(sl) < n {
		sl = make([]float64, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

func (s *System) applyAllocation() {
	const eps = 1e-9
	total := 0.0
	for c, q := range s.queues {
		spec := &s.classes[c]
		capC := s.caps[c]
		// Linear and capped speedups satisfy s(a) = a for every feasible
		// (clamped) allocation, so the dispatch through Speedup.Rate is
		// hoisted out of the hot loop.
		identityRate := s.idRate[c]
		ac := s.alloc.Classes[c]
		for i, j := range q {
			a := ac[i]
			if a < -eps || a > capC+eps {
				panic(fmt.Sprintf("sim: policy %s allocated %v servers to a %s-class job (cap %v)",
					s.policy.Name(), a, spec.Speedup, capC))
			}
			a = clamp(a, 0, capC)
			j.servers = a
			if identityRate {
				j.rate = a
			} else {
				j.rate = spec.Speedup.Rate(a)
			}
			total += a
		}
	}
	if total > float64(s.k)+1e-6 {
		panic(fmt.Sprintf("sim: policy %s allocated %v servers on a %d-server system", s.policy.Name(), total, s.k))
	}
	s.metrics.busyRate = math.Min(total, float64(s.k))
}

// nextCompletion returns the next finishing job under current rates and its
// absolute finish time, or (nil, +inf) when nothing is running. Candidates
// are rebuilt into the event queue in class-then-FCFS order; eventq breaks
// time ties by insertion order, so simultaneous completions resolve exactly
// like the historical linear scan (lowest class first, FCFS within a class).
func (s *System) nextCompletion() (*Job, float64) {
	s.evq.Clear()
	for _, q := range s.queues {
		for _, j := range q {
			switch {
			case j.Remaining <= 0:
				// Fully depleted but not yet removed (possible when an
				// allocation change lands exactly on a finish time):
				// completes immediately.
				s.evq.Append(s.clock, j.handle)
			case j.rate > 0:
				s.evq.Append(s.clock+j.Remaining/j.rate, j.handle)
			}
		}
	}
	if s.evq.Empty() {
		return nil, math.Inf(1)
	}
	s.evq.Fix()
	e := s.evq.Peek()
	return s.jobs.at(e.Payload), e.Time
}

// advanceWork depletes remaining sizes over dt at current rates and
// integrates metrics. The metric integrals and the depletion are fused into
// one walk per class — the accumulation order over jobs is identical to the
// historical separate integrate + deplete scans (work and rate sums read
// each job before it is depleted, in queue order), so the fusion is
// bit-invisible to the golden set while halving the pointer traffic of the
// rebuild engine's dominant loop.
func (s *System) advanceWork(dt float64) {
	if dt <= 0 {
		return
	}
	m := &s.metrics
	for c, q := range s.queues {
		r, w := 0.0, 0.0
		for _, j := range q {
			w += j.Remaining
			if j.rate > 0 {
				r += j.rate
				// max(0, rem-rate*dt) via a branch: math.Max is not inlined
				// and the operands here are never NaN or -0, so the branch is
				// bit-identical.
				rem := j.Remaining - j.rate*dt
				if rem < 0 {
					rem = 0
				}
				j.Remaining = rem
			}
		}
		m.areaN[c] += float64(len(q)) * dt
		// Between events the class's work declines linearly at its total
		// service rate, so the exact integral over the segment is the
		// trapezoid rule with the segment's constant depletion rate.
		m.areaW[c] += (w - 0.5*r*dt) * dt
	}
	m.areaBusy += m.busyRate * dt
	m.elapsed += dt
	if m.TrackOccupancy {
		key := [2]int{min(s.NumClass(0), occupancyCap), min(s.NumClass(1), occupancyCap)}
		m.occupancy[key] += dt
	}
	s.clock += dt
}

func (s *System) complete(j *Job) {
	j.Remaining = 0
	if !s.removeJobQueue(j.Class, j) {
		panic("sim: completing job not found in system")
	}
	s.appendCompletion(j)
}

// pushQueue appends j to its class queue. While the window has tail
// capacity this is a plain append; when it runs out, the live window either
// slides back to the front of the backing array in place (when head
// departures have abandoned at least a quarter of it — the steady-state
// case, no allocation) or moves to a doubled backing (the warmup case).
// Stale pointers beyond the window are left as-is: every Job lives in the
// arena, which out-lives them all, so there is nothing for the GC to pin.
func (s *System) pushQueue(c Class, j *Job) {
	q := s.queues[c]
	if len(q) < cap(q) {
		s.queues[c] = append(q, j)
		return
	}
	base, n := s.qbase[c], len(q)
	if off := s.qoff[c]; off > 0 && off >= len(base)/4 {
		copy(base, q)
		s.qoff[c] = 0
		q = base[:n]
	} else {
		grown := make([]*Job, max(64, 2*(n+1)))
		copy(grown, q)
		s.qbase[c] = grown
		s.qoff[c] = 0
		q = grown[:n]
	}
	s.queues[c] = append(q, j)
}

// removeJobQueue deletes j from its class's FCFS window preserving order,
// shifting whichever side of the hole is shorter. Completions cluster near
// the head of long queues (the served prefix under priority policies),
// where shifting the short left side and advancing the window makes the
// common case O(i) instead of O(n); pushQueue reclaims the abandoned front
// without reallocating.
func (s *System) removeJobQueue(c Class, j *Job) bool {
	jobs := s.queues[c]
	for i, cand := range jobs {
		if cand == j {
			if i < len(jobs)-1-i {
				copy(jobs[1:i+1], jobs[:i])
				s.queues[c] = jobs[1:]
				s.qoff[c]++
			} else {
				copy(jobs[i:], jobs[i+1:])
				s.queues[c] = jobs[:len(jobs)-1]
			}
			return true
		}
	}
	return false
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SortArrivals orders arrivals by time (stable), as required by Replay and
// the coupled-run drivers.
func SortArrivals(arrivals []Arrival) {
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Time < arrivals[j].Time })
}
