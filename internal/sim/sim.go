// Package sim implements the event-driven simulator for the paper's model:
// k identical servers shared by elastic jobs (which parallelize linearly
// across any number of servers, including fractional allocations) and
// inelastic jobs (capped at one server each). An allocation policy is
// re-consulted at every arrival and departure, exactly as in the paper's
// preemptible fluid model.
//
// The engine exposes an explicit stepping API (Arrive / AdvanceTo) rather
// than a closed run loop so that two systems under different policies can be
// driven in lockstep over the same arrival sequence. That is how the
// Theorem 3 sample-path dominance experiments couple Inelastic-First against
// other policies: same arrivals, same sizes, work compared at the union of
// both systems' event times.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Class labels a job as elastic or inelastic.
type Class int

const (
	// Inelastic jobs run on at most one server at a time.
	Inelastic Class = iota
	// Elastic jobs parallelize linearly across any allocation.
	Elastic
)

// String returns "inelastic" or "elastic".
func (c Class) String() string {
	if c == Inelastic {
		return "inelastic"
	}
	return "elastic"
}

// Arrival is one externally scheduled job arrival.
type Arrival struct {
	Time  float64
	Class Class
	Size  float64
}

// Job is a job resident in the system. Policies receive jobs in FCFS order
// per class; the paper's policies are size-blind and must not read Remaining
// (it is exposed for instrumentation and for known-size baselines only).
type Job struct {
	ID        int
	Class     Class
	Arrival   float64
	Size      float64
	Remaining float64
	rate      float64 // current server allocation
}

// Rate returns the job's current server allocation.
func (j *Job) Rate() float64 { return j.rate }

// State is the scheduler-visible system state. Slices are in FCFS order and
// owned by the System; policies must not retain or mutate them.
type State struct {
	K         int
	Time      float64
	Inelastic []*Job
	Elastic   []*Job
}

// Allocation receives the policy's decision. Entries align with the State
// slices. The engine zeroes the slices before each Allocate call.
type Allocation struct {
	Inelastic []float64
	Elastic   []float64
}

// Policy decides server allocations. Implementations must satisfy the model
// constraints: 0 <= alloc, inelastic allocations <= 1 each, total <= K.
// The engine verifies these bounds on every call.
type Policy interface {
	Name() string
	Allocate(st *State, alloc *Allocation)
}

// Completion records one finished job.
type Completion struct {
	Job      Job
	Finished float64
}

// Response returns the job's response time.
func (c Completion) Response() float64 { return c.Finished - c.Job.Arrival }

// System is one simulated cluster under one policy.
type System struct {
	k      int
	policy Policy
	clock  float64
	nextID int

	inelastic []*Job
	elastic   []*Job

	st    State
	alloc Allocation

	metrics Metrics

	// completionsBuf is reused across AdvanceTo calls.
	completionsBuf []Completion

	allocDirty bool
}

// NewSystem returns an empty system with k servers governed by policy.
func NewSystem(k int, policy Policy) *System {
	if k < 1 {
		panic("sim: k must be >= 1")
	}
	if policy == nil {
		panic("sim: nil policy")
	}
	s := &System{k: k, policy: policy}
	s.st.K = k
	s.metrics.Reset(0)
	return s
}

// K returns the number of servers.
func (s *System) K() int { return s.k }

// Clock returns the current simulation time.
func (s *System) Clock() float64 { return s.clock }

// Policy returns the governing policy.
func (s *System) Policy() Policy { return s.policy }

// NumInelastic returns the number of inelastic jobs in system.
func (s *System) NumInelastic() int { return len(s.inelastic) }

// NumElastic returns the number of elastic jobs in system.
func (s *System) NumElastic() int { return len(s.elastic) }

// NumJobs returns the total number of jobs in system.
func (s *System) NumJobs() int { return len(s.inelastic) + len(s.elastic) }

// Work returns the total remaining work W(t).
func (s *System) Work() float64 { return s.WorkInelastic() + s.WorkElastic() }

// WorkInelastic returns the remaining inelastic work W_I(t).
func (s *System) WorkInelastic() float64 {
	w := 0.0
	for _, j := range s.inelastic {
		w += j.Remaining
	}
	return w
}

// WorkElastic returns the remaining elastic work W_E(t).
func (s *System) WorkElastic() float64 {
	w := 0.0
	for _, j := range s.elastic {
		w += j.Remaining
	}
	return w
}

// Metrics returns the accumulated metrics.
func (s *System) Metrics() *Metrics { return &s.metrics }

// ResetMetrics discards accumulated statistics (e.g. at the end of warmup)
// without disturbing the system state.
func (s *System) ResetMetrics() { s.metrics.Reset(s.clock) }

// Arrive injects a job at the current clock. Size must be positive and the
// arrival cannot be in the system's past.
func (s *System) Arrive(a Arrival) *Job {
	if a.Time < s.clock-1e-12 {
		panic(fmt.Sprintf("sim: arrival at %v is before clock %v", a.Time, s.clock))
	}
	if a.Time > s.clock {
		s.advanceClockOnly(a.Time)
	}
	if a.Size <= 0 {
		panic("sim: job size must be positive")
	}
	j := &Job{ID: s.nextID, Class: a.Class, Arrival: s.clock, Size: a.Size, Remaining: a.Size}
	s.nextID++
	if a.Class == Inelastic {
		s.inelastic = append(s.inelastic, j)
	} else {
		s.elastic = append(s.elastic, j)
	}
	s.metrics.arrivals[a.Class]++
	s.allocDirty = true
	return j
}

// AdvanceTo advances the simulation clock to time t, processing every
// completion in (clock, t]. It returns the completions in chronological
// order; the returned slice is reused by the next call.
func (s *System) AdvanceTo(t float64) []Completion {
	if t < s.clock-1e-12 {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before clock %v", t, s.clock))
	}
	s.completionsBuf = s.completionsBuf[:0]
	for {
		s.refreshAllocation()
		done, tc := s.nextCompletion()
		// Process every completion at or before t — including ones that
		// land exactly on t or exactly on the current clock (simultaneous
		// completions depleted by a previous advance), which would
		// otherwise linger and stall lockstep drivers.
		if done != nil && tc <= t {
			s.advanceWork(tc - s.clock)
			s.complete(done)
			continue
		}
		if s.clock < t {
			s.advanceWork(t - s.clock)
		}
		break
	}
	// Clamp accumulated floating error so coupled runs stay aligned.
	s.clock = t
	return s.completionsBuf
}

// Drain runs the system until it empties or the clock passes horizon,
// returning all completions.
func (s *System) Drain(horizon float64) []Completion {
	var all []Completion
	for s.NumJobs() > 0 && s.clock < horizon {
		s.refreshAllocation()
		done, tc := s.nextCompletion()
		if done == nil || tc > horizon {
			s.advanceWork(horizon - s.clock)
			s.clock = horizon
			break
		}
		s.advanceWork(tc - s.clock)
		s.clock = tc
		s.completionsBuf = s.completionsBuf[:0]
		s.complete(done)
		all = append(all, s.completionsBuf...)
	}
	return all
}

// advanceClockOnly integrates metrics and work up to t assuming no
// completion occurs strictly before t; callers must guarantee that.
func (s *System) advanceClockOnly(t float64) {
	for s.clock < t {
		s.refreshAllocation()
		done, tc := s.nextCompletion()
		if done == nil || tc >= t {
			s.advanceWork(t - s.clock)
			break
		}
		s.advanceWork(tc - s.clock)
		s.complete(done)
	}
	s.clock = t
}

// refreshAllocation re-runs the policy if the job set changed.
func (s *System) refreshAllocation() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	s.st.Time = s.clock
	s.st.Inelastic = s.inelastic
	s.st.Elastic = s.elastic
	s.alloc.Inelastic = resizeZero(s.alloc.Inelastic, len(s.inelastic))
	s.alloc.Elastic = resizeZero(s.alloc.Elastic, len(s.elastic))
	s.policy.Allocate(&s.st, &s.alloc)
	s.applyAllocation()
}

func resizeZero(sl []float64, n int) []float64 {
	if cap(sl) < n {
		sl = make([]float64, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

func (s *System) applyAllocation() {
	const eps = 1e-9
	total := 0.0
	for i, j := range s.inelastic {
		a := s.alloc.Inelastic[i]
		if a < -eps || a > 1+eps {
			panic(fmt.Sprintf("sim: policy %s allocated %v servers to inelastic job", s.policy.Name(), a))
		}
		a = clamp(a, 0, 1)
		j.rate = a
		total += a
	}
	for i, j := range s.elastic {
		a := s.alloc.Elastic[i]
		if a < -eps {
			panic(fmt.Sprintf("sim: policy %s allocated negative servers", s.policy.Name()))
		}
		if a < 0 {
			a = 0
		}
		j.rate = a
		total += a
	}
	if total > float64(s.k)+1e-6 {
		panic(fmt.Sprintf("sim: policy %s allocated %v servers on a %d-server system", s.policy.Name(), total, s.k))
	}
	s.metrics.busyRate = math.Min(total, float64(s.k))
}

// nextCompletion returns the next finishing job under current rates and its
// absolute finish time, or (nil, +inf) when nothing is running.
func (s *System) nextCompletion() (*Job, float64) {
	best := math.Inf(1)
	var job *Job
	scan := func(jobs []*Job) {
		for _, j := range jobs {
			var t float64
			switch {
			case j.Remaining <= 0:
				// Fully depleted but not yet removed (possible when
				// an allocation change lands exactly on a finish
				// time): completes immediately.
				t = s.clock
			case j.rate > 0:
				t = s.clock + j.Remaining/j.rate
			default:
				continue
			}
			if t < best {
				best, job = t, j
			}
		}
	}
	scan(s.inelastic)
	scan(s.elastic)
	return job, best
}

// advanceWork depletes remaining sizes over dt at current rates and
// integrates metrics.
func (s *System) advanceWork(dt float64) {
	if dt <= 0 {
		return
	}
	s.metrics.integrate(s, dt)
	for _, j := range s.inelastic {
		if j.rate > 0 {
			j.Remaining = math.Max(0, j.Remaining-j.rate*dt)
		}
	}
	for _, j := range s.elastic {
		if j.rate > 0 {
			j.Remaining = math.Max(0, j.Remaining-j.rate*dt)
		}
	}
	s.clock += dt
}

func (s *System) complete(j *Job) {
	j.Remaining = 0
	removed := false
	if j.Class == Inelastic {
		s.inelastic, removed = removeJob(s.inelastic, j)
	} else {
		s.elastic, removed = removeJob(s.elastic, j)
	}
	if !removed {
		panic("sim: completing job not found in system")
	}
	s.completionsBuf = append(s.completionsBuf, Completion{Job: *j, Finished: s.clock})
	s.metrics.recordCompletion(j, s.clock)
	s.allocDirty = true
}

func removeJob(jobs []*Job, j *Job) ([]*Job, bool) {
	for i, cand := range jobs {
		if cand == j {
			copy(jobs[i:], jobs[i+1:])
			return jobs[:len(jobs)-1], true
		}
	}
	return jobs, false
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SortArrivals orders arrivals by time (stable), as required by Replay and
// the coupled-run drivers.
func SortArrivals(arrivals []Arrival) {
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].Time < arrivals[j].Time })
}
