package sim

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// ResponseRecorder collects per-class response-time samples for percentile
// reporting. Below Capacity samples per class it stores everything exactly;
// beyond that it switches to reservoir sampling (Vitter's algorithm R), so
// memory stays bounded on arbitrarily long runs while percentile estimates
// remain unbiased.
type ResponseRecorder struct {
	Capacity int
	rng      *xrand.Rand
	samples  [][]float64
	seen     []int64
}

// NewResponseRecorder returns a recorder for the two-class preset holding up
// to capacity samples per class.
func NewResponseRecorder(capacity int, seed uint64) *ResponseRecorder {
	return NewClassResponseRecorder(2, capacity, seed)
}

// NewClassResponseRecorder returns a recorder for numClasses job classes
// holding up to capacity samples per class.
func NewClassResponseRecorder(numClasses, capacity int, seed uint64) *ResponseRecorder {
	if capacity < 1 {
		panic("sim: recorder capacity must be positive")
	}
	if numClasses < 1 {
		panic("sim: recorder needs at least one class")
	}
	return &ResponseRecorder{
		Capacity: capacity,
		rng:      xrand.NewStream(seed, 999),
		samples:  make([][]float64, numClasses),
		seen:     make([]int64, numClasses),
	}
}

// Observe records one completion. Classes beyond the constructed count grow
// the recorder on demand, so a two-class recorder attached to an N-class
// run degrades gracefully instead of panicking.
func (rr *ResponseRecorder) Observe(c Completion) {
	class := c.Job.Class
	for int(class) >= len(rr.samples) {
		rr.samples = append(rr.samples, nil)
		rr.seen = append(rr.seen, 0)
	}
	rr.seen[class]++
	s := rr.samples[class]
	if len(s) < rr.Capacity {
		rr.samples[class] = append(s, c.Response())
		return
	}
	// Reservoir replacement with probability capacity/seen.
	idx := rr.rng.Intn(int(rr.seen[class]))
	if idx < rr.Capacity {
		s[idx] = c.Response()
	}
}

// Seen returns the number of completions observed for the class (0 for a
// class never observed).
func (rr *ResponseRecorder) Seen(c Class) int64 {
	if c < 0 || int(c) >= len(rr.seen) {
		return 0
	}
	return rr.seen[c]
}

// Quantile returns the q-quantile of the recorded class-c response times
// (NaN when empty or never observed).
func (rr *ResponseRecorder) Quantile(c Class, q float64) float64 {
	if c < 0 || int(c) >= len(rr.samples) {
		return math.NaN()
	}
	return quantile(append([]float64(nil), rr.samples[c]...), q)
}

// QuantileAll returns the q-quantile across all classes.
func (rr *ResponseRecorder) QuantileAll(q float64) float64 {
	var merged []float64
	for _, s := range rr.samples {
		merged = append(merged, s...)
	}
	return quantile(merged, q)
}

// quantile sorts its (owned) argument and interpolates the q-quantile.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RunWithRecorder is sim.Run with a percentile recorder attached to the
// post-warmup completion stream.
func RunWithRecorder(cfg RunConfig, rr *ResponseRecorder) Result {
	return RunObserved(cfg, rr.Observe)
}
