package sim

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// ResponseRecorder collects per-class response-time samples for percentile
// reporting. Below Capacity samples per class it stores everything exactly;
// beyond that it switches to reservoir sampling (Vitter's algorithm R), so
// memory stays bounded on arbitrarily long runs while percentile estimates
// remain unbiased.
type ResponseRecorder struct {
	Capacity int
	rng      *xrand.Rand
	samples  [2][]float64
	seen     [2]int64
}

// NewResponseRecorder returns a recorder holding up to capacity samples per
// class.
func NewResponseRecorder(capacity int, seed uint64) *ResponseRecorder {
	if capacity < 1 {
		panic("sim: recorder capacity must be positive")
	}
	return &ResponseRecorder{Capacity: capacity, rng: xrand.NewStream(seed, 999)}
}

// Observe records one completion.
func (rr *ResponseRecorder) Observe(c Completion) {
	class := c.Job.Class
	rr.seen[class]++
	s := rr.samples[class]
	if len(s) < rr.Capacity {
		rr.samples[class] = append(s, c.Response())
		return
	}
	// Reservoir replacement with probability capacity/seen.
	idx := rr.rng.Intn(int(rr.seen[class]))
	if idx < rr.Capacity {
		s[idx] = c.Response()
	}
}

// Seen returns the number of completions observed for the class.
func (rr *ResponseRecorder) Seen(c Class) int64 { return rr.seen[c] }

// Quantile returns the q-quantile of the recorded class-c response times
// (NaN when empty).
func (rr *ResponseRecorder) Quantile(c Class, q float64) float64 {
	s := rr.samples[c]
	if len(s) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// QuantileAll returns the q-quantile across both classes.
func (rr *ResponseRecorder) QuantileAll(q float64) float64 {
	merged := append(append([]float64(nil), rr.samples[0]...), rr.samples[1]...)
	if len(merged) == 0 {
		return math.NaN()
	}
	sort.Float64s(merged)
	pos := q * float64(len(merged)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return merged[lo]
	}
	frac := pos - float64(lo)
	return merged[lo]*(1-frac) + merged[hi]*frac
}

// RunWithRecorder is sim.Run with a percentile recorder attached to the
// post-warmup completion stream.
func RunWithRecorder(cfg RunConfig, rr *ResponseRecorder) Result {
	return RunObserved(cfg, rr.Observe)
}
