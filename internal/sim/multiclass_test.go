package sim_test

// Multi-class engine tests, ported from the former internal/mcsim package:
// the unified N-class engine must cover everything the specialized
// multi-class simulator did — arbitrary class counts, caps, renormalization
// identities and the Section 6 priority orderings — on top of being
// bit-identical to the two-class engine (golden_test.go).

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/policy"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/workload"
)

// twoClass builds the paper's two-class configuration with stochastic
// parameters attached: class 0 inelastic (cap 1), class 1 elastic.
func twoClass(lambdaI, muI, lambdaE, muE float64) []sim.ClassSpec {
	return []sim.ClassSpec{
		{Name: "inelastic", Speedup: sim.InelasticSpeedup(), Lambda: lambdaI, Size: dist.NewExponential(muI)},
		{Name: "elastic", Speedup: sim.LinearSpeedup(), Lambda: lambdaE, Size: dist.NewExponential(muE)},
	}
}

// runMix drives a complete stochastic simulation of the class set under the
// policy: Poisson arrivals per class, warmup discard, fixed measured
// completions.
func runMix(k int, classes []sim.ClassSpec, p sim.Policy, seed uint64, warmup, jobs int64) sim.Result {
	mix := workload.Mix{Name: "test", Classes: classes}
	return sim.Run(sim.RunConfig{
		K: k, Policy: p, Source: mix.Source(seed), Classes: classes,
		WarmupJobs: warmup, MaxJobs: jobs,
	})
}

// TestTwoClassPresetMatchesPriorityOrder replays an identical arrival
// sequence through the two-class preset (under IF) and an explicit
// ClassPriority{0,1} on the same specs, demanding identical completion
// counts and mean response times: the preset must be nothing more than a
// parameterization of the generic engine.
func TestTwoClassPresetMatchesPriorityOrder(t *testing.T) {
	model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
	trace := model.Trace(11, 20_000)

	preset := sim.NewSystem(4, policy.InelasticFirst{})
	for _, a := range trace {
		preset.AdvanceTo(a.Time)
		preset.Arrive(a)
	}
	preset.Drain(math.Inf(1))

	gen := sim.NewClassSystem(4, twoClass(model.LambdaI, model.MuI, model.LambdaE, model.MuE),
		policy.ClassPriority{Order: []int{0, 1}})
	for _, a := range trace {
		gen.AdvanceTo(a.Time)
		gen.Arrive(a)
	}
	gen.Drain(math.Inf(1))

	if gen.Metrics().TotalCompletions() != int64(len(trace)) {
		t.Fatalf("generalized engine completed %d of %d", gen.Metrics().TotalCompletions(), len(trace))
	}
	for c := sim.Class(0); c < 2; c++ {
		presetMean := preset.Metrics().MeanResponse(c)
		genMean := gen.Metrics().MeanResponse(c)
		if presetMean != genMean {
			t.Fatalf("class %d mean response: preset %v, ClassPriority %v", c, presetMean, genMean)
		}
	}
}

// TestElasticUpToCRenormalization checks the Section 2 remark: a system
// where "inelastic" jobs can use up to C servers is equivalent to the C = 1
// system after renormalizing servers into units of C. We verify the
// equivalence by simulating both and comparing mean response times.
func TestElasticUpToCRenormalization(t *testing.T) {
	const cFactor = 2
	k := 8
	lambda, muI, muE := 1.2, 1.0, 1.0
	// Original: k=8 servers, capped class can use up to 2 servers, so a
	// size-x job on 2 servers takes x/2. Renormalized: k=4 units, cap 1,
	// sizes halved (each unit processes at rate 2 in original terms).
	capped := []sim.ClassSpec{
		{Name: "capped", Speedup: sim.CappedSpeedup(cFactor), Lambda: lambda, Size: dist.NewExponential(muI)},
		{Name: "elastic", Speedup: sim.LinearSpeedup(), Lambda: lambda, Size: dist.NewExponential(muE)},
	}
	renorm := []sim.ClassSpec{
		{Name: "capped", Speedup: sim.CappedSpeedup(1), Lambda: lambda, Size: dist.NewExponential(muI * cFactor)},
		{Name: "elastic", Speedup: sim.LinearSpeedup(), Lambda: lambda, Size: dist.NewExponential(muE * cFactor)},
	}
	p := policy.ClassPriority{Order: []int{0, 1}}
	a := runMix(k, capped, p, 5, 10_000, 150_000)
	b := runMix(k/cFactor, renorm, p, 5, 10_000, 150_000)
	// Response times in the renormalized system are in halved time units.
	for c := 0; c < 2; c++ {
		orig := a.PerClassT[c]
		scaled := b.PerClassT[c] // sizes halved => same clock
		if math.Abs(orig-scaled) > 0.05*orig {
			t.Fatalf("class %d: capped system %v vs renormalized %v", c, orig, scaled)
		}
	}
}

// TestSingleClassMMk: one cap-1 class on k servers is an M/M/k.
func TestSingleClassMMk(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "jobs", Speedup: sim.InelasticSpeedup(), Lambda: 3.0, Size: dist.NewExponential(1)},
	}
	res := runMix(4, classes, policy.ClassPriority{Order: []int{0}}, 7, 20_000, 300_000)
	want := queueing.NewMMk(3.0, 1, 4).MeanResponse()
	if math.Abs(res.PerClassT[0]-want)/want > 0.03 {
		t.Fatalf("M/M/4 E[T]: %v, want %v", res.PerClassT[0], want)
	}
}

// TestThreeClassPriorityOrdering: with three classes of ascending mean size
// and caps {1, 4, inf} on k=8, the least-flexible-first and
// smallest-mean-first orders coincide and beat the reverse order.
func TestThreeClassPriorityOrdering(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "tiny-rigid", Speedup: sim.CappedSpeedup(1), Lambda: 1.5, Size: dist.NewExponential(4)},
		{Name: "mid-partial", Speedup: sim.CappedSpeedup(4), Lambda: 0.8, Size: dist.NewExponential(1)},
		{Name: "big-elastic", Speedup: sim.LinearSpeedup(), Lambda: 0.4, Size: dist.NewExponential(0.25)},
	}
	forward := runMix(8, classes, policy.ClassPriority{Order: []int{0, 1, 2}}, 3, 20_000, 250_000)
	reverse := runMix(8, classes, policy.ClassPriority{Order: []int{2, 1, 0}}, 3, 20_000, 250_000)
	if forward.MeanT >= reverse.MeanT {
		t.Fatalf("deferring flexible work should win: forward %v, reverse %v",
			forward.MeanT, reverse.MeanT)
	}
}

func TestSmallestMeanFirstOrdersClasses(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "big", Speedup: sim.InelasticSpeedup(), Lambda: 1, Size: dist.NewExponential(0.5)},
		{Name: "small", Speedup: sim.InelasticSpeedup(), Lambda: 1, Size: dist.NewExponential(5)},
	}
	// Both cap-1 on k=1 for discrimination.
	sys := sim.NewClassSystem(1, classes, &policy.SmallestMeanFirst{})
	sys.Arrive(sim.Arrival{Time: 0, Class: 0, Size: 10})
	sys.Arrive(sim.Arrival{Time: 0, Class: 1, Size: 1})
	sys.AdvanceTo(1.5)
	// The small-mean class (class 1) should have been served first and
	// completed at t=1.
	if got := sys.Metrics().MeanResponse(1); got != 1 {
		t.Fatalf("small class response %v, want 1", got)
	}
}

func TestLeastFlexibleFirstOrdersByCaps(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "elastic", Speedup: sim.LinearSpeedup(), Lambda: 1, Size: dist.NewExponential(1)},
		{Name: "rigid", Speedup: sim.InelasticSpeedup(), Lambda: 1, Size: dist.NewExponential(1)},
	}
	sys := sim.NewClassSystem(2, classes, &policy.LeastFlexibleFirst{})
	sys.Arrive(sim.Arrival{Time: 0, Class: 0, Size: 2}) // elastic
	sys.Arrive(sim.Arrival{Time: 0, Class: 1, Size: 1}) // rigid, must get a server
	sys.AdvanceTo(1.0)
	if got := sys.Metrics().MeanResponse(1); got != 1 {
		t.Fatalf("rigid job response %v, want 1 (LFF must serve it first)", got)
	}
}

func TestMultiClassWorkAndJobsAccounting(t *testing.T) {
	classes := twoClass(1, 1, 1, 1)
	sys := sim.NewClassSystem(4, classes, policy.ClassPriority{Order: []int{0, 1}})
	sys.Arrive(sim.Arrival{Time: 0, Class: 0, Size: 3})
	sys.Arrive(sim.Arrival{Time: 0, Class: 1, Size: 5})
	if sys.Work() != 8 || sys.NumJobs() != 2 {
		t.Fatalf("work %v jobs %d", sys.Work(), sys.NumJobs())
	}
	sys.AdvanceTo(1)
	// 1 server on the rigid job + 3 on the elastic: 8-4 = 4 left.
	if math.Abs(sys.Work()-4) > 1e-9 {
		t.Fatalf("work after 1s: %v", sys.Work())
	}
}

// TestAmdahlSaturation: a single Amdahl job with serial fraction 0.25 on a
// big cluster runs at most 4x; a size-4 job given all 16 servers finishes no
// earlier than t=1.06 (rate 1/(0.25+0.75/16) = 3.76).
func TestAmdahlSaturation(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "amdahl", Speedup: sim.AmdahlSpeedup(0.25), Lambda: 1, Size: dist.NewExponential(1)},
	}
	sys := sim.NewClassSystem(16, classes, policy.ClassPriority{Order: []int{0}})
	sys.Arrive(sim.Arrival{Time: 0, Class: 0, Size: 4})
	done := sys.Drain(100)
	if len(done) != 1 {
		t.Fatalf("completed %d jobs", len(done))
	}
	wantRate := 1 / (0.25 + 0.75/16)
	if got, want := done[0].Finished, 4/wantRate; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Amdahl finish time %v, want %v", got, want)
	}
}

// TestCappedClassRate: a cap-4 job allocated 4 servers runs at rate 4 and
// never faster, even when more servers are free.
func TestCappedClassRate(t *testing.T) {
	classes := []sim.ClassSpec{
		{Name: "cap4", Speedup: sim.CappedSpeedup(4), Lambda: 1, Size: dist.NewExponential(1)},
	}
	sys := sim.NewClassSystem(16, classes, policy.ClassPriority{Order: []int{0}})
	sys.Arrive(sim.Arrival{Time: 0, Class: 0, Size: 8})
	done := sys.Drain(100)
	if len(done) != 1 || math.Abs(done[0].Finished-2) > 1e-9 {
		t.Fatalf("capped completion %+v", done)
	}
}

func TestMultiClassPanicsOnBadInput(t *testing.T) {
	classes := twoClass(1, 1, 1, 1)
	for name, fn := range map[string]func(){
		"zero k":     func() { sim.NewClassSystem(0, classes, policy.ClassPriority{Order: []int{0, 1}}) },
		"nil pol":    func() { sim.NewClassSystem(2, classes, nil) },
		"no classes": func() { sim.NewClassSystem(2, nil, policy.ClassPriority{}) },
		"bad arrival": func() {
			s := sim.NewClassSystem(2, classes, policy.ClassPriority{Order: []int{0, 1}})
			s.Arrive(sim.Arrival{Time: 0, Class: 5, Size: 1})
		},
		"bad cap":    func() { sim.CappedSpeedup(0) },
		"bad amdahl": func() { sim.AmdahlSpeedup(1) },
		"bad power":  func() { sim.PowerSpeedup(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestRecorderGrowsForMultiClass: the legacy two-class recorder attached
// to an N-class run must grow instead of panicking, and per-class queries
// outside the observed range must degrade gracefully.
func TestRecorderGrowsForMultiClass(t *testing.T) {
	mix := workload.ThreeClassCaps(8, 0.5)
	rr := sim.NewResponseRecorder(1000, 7)
	res := sim.RunWithRecorder(sim.RunConfig{
		K: 8, Policy: policy.ClassPriority{Order: []int{0, 1, 2}},
		Source: mix.Source(7), Classes: mix.Classes,
		WarmupJobs: 500, MaxJobs: 5_000,
	}, rr)
	if res.Completions == 0 {
		t.Fatal("no completions")
	}
	if rr.Seen(2) == 0 {
		t.Fatal("class-2 completions not recorded")
	}
	if p := rr.Quantile(2, 0.5); math.IsNaN(p) || p <= 0 {
		t.Fatalf("class-2 median %v", p)
	}
	if rr.Seen(9) != 0 || !math.IsNaN(rr.Quantile(9, 0.5)) {
		t.Fatal("unobserved class queries must return zero/NaN")
	}
}

// TestSpeedupShapes pins the built-in speedup families' values and caps.
func TestSpeedupShapes(t *testing.T) {
	cases := []struct {
		s       sim.Speedup
		a, want float64
	}{
		{sim.LinearSpeedup(), 3, 3},
		{sim.LinearSpeedup(), 0.5, 0.5},
		{sim.CappedSpeedup(2), 0.5, 0.5},
		{sim.CappedSpeedup(2), 3, 2},
		{sim.InelasticSpeedup(), 7, 1},
		{sim.AmdahlSpeedup(0.5), 0.25, 0.25},
		{sim.AmdahlSpeedup(0.5), 2, 1 / (0.5 + 0.25)},
		{sim.PowerSpeedup(0.5), 4, 2},
		{sim.PowerSpeedup(0.5), 0.81, 0.81},
	}
	for _, c := range cases {
		if got := c.s.Rate(c.a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s.Rate(%g) = %v, want %v", c.s, c.a, got, c.want)
		}
	}
	if got := sim.CappedSpeedup(4).Cap(); got != 4 {
		t.Errorf("capped cap %v", got)
	}
	if !math.IsInf(sim.AmdahlSpeedup(0.25).Cap(), 1) || !math.IsInf(sim.LinearSpeedup().Cap(), 1) {
		t.Error("strictly increasing speedups must report an infinite cap")
	}
}
