package sim

import (
	"fmt"
	"math"
)

// ArrivalSource supplies a (finite or unbounded) time-ordered stream of
// arrivals.
type ArrivalSource interface {
	// Next returns the next arrival; ok is false when the stream ends.
	Next() (a Arrival, ok bool)
}

// SliceSource replays a fixed arrival slice. Arrivals must be time-ordered
// (use SortArrivals).
type SliceSource struct {
	Arrivals []Arrival
	pos      int
}

// Next implements ArrivalSource.
func (s *SliceSource) Next() (Arrival, bool) {
	if s.pos >= len(s.Arrivals) {
		return Arrival{}, false
	}
	a := s.Arrivals[s.pos]
	s.pos++
	return a, true
}

// Reset rewinds the source so the same trace can be replayed under another
// policy (the coupling used throughout the optimality experiments).
func (s *SliceSource) Reset() { s.pos = 0 }

// RunConfig configures a closed simulation run.
type RunConfig struct {
	K      int
	Policy Policy
	Source ArrivalSource
	// Classes describes the job classes; nil means the paper's two-class
	// preset (TwoClassSpecs).
	Classes []ClassSpec
	// WarmupJobs is the number of completions to observe before resetting
	// statistics (transient removal).
	WarmupJobs int64
	// MaxJobs stops the run after this many post-warmup completions.
	MaxJobs int64
	// Horizon optionally caps simulated time (0 means unbounded).
	Horizon float64
	// TrackOccupancy enables the time-weighted (i, j) state histogram.
	TrackOccupancy bool
	// Engine selects the stepping engine; the zero value is the default
	// rebuild engine (bit-frozen goldens). EngineIncremental opts into
	// O(changed · log n) stepping for high-occupancy runs.
	Engine Engine
}

func (cfg RunConfig) classes() []ClassSpec {
	if cfg.Classes == nil {
		return TwoClassSpecs()
	}
	return cfg.Classes
}

// Result summarizes one simulation run.
type Result struct {
	Policy  string
	K       int
	Metrics Metrics

	// MeanT is the overall mean response time; PerClassT the per-class
	// means (NaN for classes with no completions).
	MeanT     float64
	PerClassT []float64
	// MeanTI/MeanTE are the class 0/1 means — the per-class response times
	// of the two-class preset (NaN when the class does not exist).
	MeanTI, MeanTE float64
	// MeanN is the time-average number of jobs in system.
	MeanN float64
	// Completions counts post-warmup completed jobs.
	Completions int64
}

func (r Result) String() string {
	return fmt.Sprintf("%s: E[T]=%.4f (I: %.4f, E: %.4f), E[N]=%.4f over %d jobs",
		r.Policy, r.MeanT, r.MeanTI, r.MeanTE, r.MeanN, r.Completions)
}

// Run executes a complete simulation: feed arrivals, discard the warmup
// transient, measure until MaxJobs completions (or source exhaustion, after
// which the system drains).
func Run(cfg RunConfig) Result {
	if cfg.Source == nil {
		panic("sim: RunConfig.Source is nil")
	}
	if cfg.MaxJobs <= 0 {
		panic("sim: RunConfig.MaxJobs must be positive")
	}
	sys := NewClassSystemOpts(cfg.K, cfg.classes(), cfg.Policy, Options{Engine: cfg.Engine})
	sys.Metrics().TrackOccupancy = cfg.TrackOccupancy
	sys.ResetMetrics()
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = math.Inf(1)
	}

	warmupDone := cfg.WarmupJobs == 0
	var seen int64

	stop := func() bool {
		if !warmupDone {
			if seen >= cfg.WarmupJobs {
				sys.ResetMetrics()
				warmupDone = true
			}
			return false
		}
		return sys.Metrics().TotalCompletions() >= cfg.MaxJobs
	}

	for {
		a, ok := cfg.Source.Next()
		if !ok || a.Time > horizon {
			break
		}
		sys.AdvanceTo(a.Time)
		if !warmupDone {
			seen = sys.Metrics().TotalCompletions()
		}
		if stop() {
			return snapshot(sys, cfg)
		}
		sys.Arrive(a)
	}
	sys.Drain(horizon)
	return snapshot(sys, cfg)
}

func snapshot(sys *System, cfg RunConfig) Result {
	m := sys.Metrics()
	perClass := make([]float64, sys.NumClasses())
	for c := range perClass {
		perClass[c] = m.MeanResponse(Class(c))
	}
	return Result{
		Policy:      cfg.Policy.Name(),
		K:           cfg.K,
		Metrics:     m.Clone(),
		MeanT:       m.MeanResponseAll(),
		PerClassT:   perClass,
		MeanTI:      m.MeanResponse(Inelastic),
		MeanTE:      m.MeanResponse(Elastic),
		MeanN:       m.MeanJobsAll(),
		Completions: m.TotalCompletions(),
	}
}

// RunObserved is Run with a callback invoked for every post-warmup
// completion, in completion-time order — the hook the experiment layer uses
// to capture response-time series for batch-means CIs and MSER warmup
// trimming. Unlike Run, the system is not drained after source exhaustion,
// so the observed series covers exactly the measured steady-state window.
func RunObserved(cfg RunConfig, observe func(Completion)) Result {
	if cfg.Source == nil {
		panic("sim: RunConfig.Source is nil")
	}
	if cfg.MaxJobs <= 0 {
		panic("sim: RunConfig.MaxJobs must be positive")
	}
	sys := NewClassSystemOpts(cfg.K, cfg.classes(), cfg.Policy, Options{Engine: cfg.Engine})
	sys.Metrics().TrackOccupancy = cfg.TrackOccupancy
	sys.ResetMetrics()
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = math.Inf(1)
	}
	warmupDone := cfg.WarmupJobs == 0
	for {
		a, ok := cfg.Source.Next()
		if !ok || a.Time > horizon {
			break
		}
		for _, c := range sys.AdvanceTo(a.Time) {
			if warmupDone {
				observe(c)
			}
		}
		if !warmupDone && sys.Metrics().TotalCompletions() >= cfg.WarmupJobs {
			sys.ResetMetrics()
			warmupDone = true
		}
		if warmupDone && sys.Metrics().TotalCompletions() >= cfg.MaxJobs {
			break
		}
		sys.Arrive(a)
	}
	return snapshot(sys, cfg)
}

// NextEventTime returns the absolute time of the system's next internal
// completion under the current allocation, or +Inf when nothing is running.
// The coupled drivers use it to build the union event grid of two systems.
func (s *System) NextEventTime() float64 {
	if s.engine == EngineIncremental {
		s.refreshAllocationInc()
		_, t := s.peekLive()
		return t
	}
	s.refreshAllocation()
	_, t := s.nextCompletion()
	return t
}
