package sim

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// chaosPolicy makes arbitrary feasible allocations that change with every
// call: random subsets of inelastic jobs get random fractions of a server,
// random elastic jobs share whatever remains. It exists to fuzz the engine
// invariants under allocation patterns no sane policy would produce.
type chaosPolicy struct {
	r *xrand.Rand
}

func (chaosPolicy) Name() string { return "CHAOS" }

func (c chaosPolicy) Allocate(st *State, alloc *Allocation) {
	remaining := float64(st.K)
	for i := range st.Queues[Inelastic] {
		if remaining <= 0 {
			break
		}
		a := c.r.Float64() * math.Min(1, remaining)
		if c.r.Bernoulli(0.3) {
			a = 0 // sometimes starve a job outright
		}
		alloc.Classes[Inelastic][i] = a
		remaining -= a
	}
	for i := range st.Queues[Elastic] {
		if remaining <= 0 {
			break
		}
		a := c.r.Float64() * remaining
		alloc.Classes[Elastic][i] = a
		remaining -= a
	}
}

// TestEngineInvariantsUnderChaos drives the engine with the chaos policy
// and random arrivals, checking on every step: the clock never goes
// backward, remaining sizes stay in [0, size], work accounting closes, and
// every arrival eventually completes once the policy is replaced by a
// work-conserving one for draining.
func TestEngineInvariantsUnderChaos(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := xrand.NewStream(seed, 1)
		sys := NewSystem(3, chaosPolicy{r: xrand.NewStream(seed, 2)})
		clock := 0.0
		arrived := 0.0
		n := 0
		for i := 0; i < 2000; i++ {
			if sys.NumJobs() == 0 || r.Bernoulli(0.5) {
				clock += r.Exp(2)
				class := Inelastic
				if r.Bernoulli(0.5) {
					class = Elastic
				}
				size := r.Exp(1)
				sys.Arrive(Arrival{Time: clock, Class: class, Size: size})
				arrived += size
				n++
			} else {
				clock += r.Exp(4)
				sys.AdvanceTo(clock)
			}
			if sys.Clock() != clock {
				t.Fatalf("seed %d: clock drift %v vs %v", seed, sys.Clock(), clock)
			}
			for _, jobs := range sys.queues {
				for _, j := range jobs {
					if j.Remaining < 0 || j.Remaining > j.Size+1e-9 {
						t.Fatalf("seed %d: remaining %v outside [0, %v]", seed, j.Remaining, j.Size)
					}
				}
			}
			if w := sys.Work(); w < -1e-9 {
				t.Fatalf("seed %d: negative work %v", seed, w)
			}
		}
		// Chaos can starve jobs forever; swap in a work-conserving policy
		// to drain and close the ledger.
		sys.policy = ifPolicy{}
		sys.allocDirty = true
		sys.Drain(clock + 1e7)
		if sys.NumJobs() != 0 {
			t.Fatalf("seed %d: %d jobs stuck after drain", seed, sys.NumJobs())
		}
		done := sys.Metrics().CompletedWork()
		if math.Abs(done-arrived) > 1e-6*arrived {
			t.Fatalf("seed %d: ledger broken: arrived %v, completed %v", seed, arrived, done)
		}
		if sys.Metrics().TotalCompletions() != int64(n) {
			t.Fatalf("seed %d: %d completions for %d arrivals", seed, sys.Metrics().TotalCompletions(), n)
		}
	}
}

// fuzzEqui is an in-package mirror of the two-class EQUI water-filling
// (policy.Equi cannot be imported here without a cycle): equal split k/n,
// the inelastic share clamped at 1, the excess split over elastic jobs.
// Allocate and ClassShares run the identical arithmetic, which is the
// contract FuzzSparseShareSet exercises.
type fuzzEqui struct{}

func (fuzzEqui) Name() string { return "fuzz-EQUI" }

func (fuzzEqui) Allocate(st *State, alloc *Allocation) {
	n := len(st.Queues[Inelastic]) + len(st.Queues[Elastic])
	if n == 0 {
		return
	}
	share := float64(st.K) / float64(n)
	s0 := share
	if s0 > 1 {
		s0 = 1
	}
	for i := range st.Queues[Inelastic] {
		alloc.Classes[Inelastic][i] = s0
	}
	if ne := len(st.Queues[Elastic]); ne > 0 {
		per := (float64(st.K) - float64(len(st.Queues[Inelastic]))*s0) / float64(ne)
		for i := range st.Queues[Elastic] {
			alloc.Classes[Elastic][i] = per
		}
	}
}

func (fuzzEqui) ClassShares(st *State, shares []float64) {
	n := len(st.Queues[Inelastic]) + len(st.Queues[Elastic])
	if n == 0 {
		return
	}
	share := float64(st.K) / float64(n)
	s0 := share
	if s0 > 1 {
		s0 = 1
	}
	shares[Inelastic] = s0
	if ne := len(st.Queues[Elastic]); ne > 0 {
		shares[Elastic] = (float64(st.K) - float64(len(st.Queues[Inelastic]))*s0) / float64(ne)
	}
}

// fuzzSRPT mirrors policy.SRPTK's dense face: ascending settled remaining
// size, ties to the lower class then FCFS, each job up to its class cap.
type fuzzSRPT struct{}

func (fuzzSRPT) Name() string { return "fuzz-SRPT" }

func (fuzzSRPT) RemainingOrdered() {}

func (fuzzSRPT) Allocate(st *State, alloc *Allocation) {
	type ref struct {
		rem  float64
		c, i int
	}
	var jobs []ref
	for c, q := range st.Queues {
		for i, j := range q {
			jobs = append(jobs, ref{j.Remaining, c, i})
		}
	}
	for i := 1; i < len(jobs); i++ {
		for q := i; q > 0 && jobs[q].rem < jobs[q-1].rem; q-- {
			jobs[q], jobs[q-1] = jobs[q-1], jobs[q]
		}
	}
	remaining := float64(st.K)
	for _, j := range jobs {
		if remaining <= 0 {
			break
		}
		a := math.Min(st.Classes[j.c].Cap(), remaining)
		alloc.Classes[j.c][j.i] = a
		remaining -= a
	}
}

var (
	_ ClassSharePolicy       = fuzzEqui{}
	_ RemainingOrderedPolicy = fuzzSRPT{}
)

// fuzzCloseRel is a local 1e-9 relative comparison (the equivalence suite's
// closeRel lives in the external test package).
func fuzzCloseRel(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return diff <= 1e-9*scale
}

// checkShareInvariants asserts the conservation laws on a stepping system:
// no job or class holds a negative share or exceeds its class cap
// (MaxServers), the shares sum to at most k, and — when an elastic job is
// resident under a work-conserving policy — to exactly k.
func checkShareInvariants(t *testing.T, label string, sys *System) {
	t.Helper()
	// Shares are lazily refreshed engine state, stale between stepping calls
	// by design (the class-share path defers the post-completion re-derivation
	// to the next call when provably safe). Settle the pending refresh —
	// exactly what the next stepping call would do first — so the checker
	// reads the allocation the engine will actually integrate with.
	if sys.engine == EngineIncremental {
		sys.refreshAllocationInc()
	}
	k := float64(sys.k)
	total := 0.0
	if cs := sys.cs; cs != nil {
		for c, q := range sys.queues {
			if len(q) == 0 {
				continue
			}
			sh := cs.shares[c]
			if sh < 0 {
				t.Fatalf("%s: class %d holds negative share %v", label, c, sh)
			}
			if capC := sys.classes[c].Cap(); sh > capC+1e-9 {
				t.Fatalf("%s: class %d share %v exceeds cap %v", label, c, sh, capC)
			}
			total += float64(len(q)) * sh
		}
	} else {
		for c, q := range sys.queues {
			for _, j := range q {
				if j.servers < 0 {
					t.Fatalf("%s: job %d holds negative share %v", label, j.ID, j.servers)
				}
				if capC := sys.classes[c].Cap(); j.servers > capC+1e-9 {
					t.Fatalf("%s: job %d share %v exceeds cap %v", label, j.ID, j.servers, capC)
				}
				total += j.servers
			}
		}
	}
	if total > k+1e-6 {
		t.Fatalf("%s: shares sum to %v on a %v-server system", label, total, k)
	}
	if len(sys.queues[Elastic]) > 0 && total < k-1e-6 {
		t.Fatalf("%s: shares sum to %v with an elastic job resident, want %v (work conservation)", label, total, k)
	}
}

// runSparseShareFuzz drives one interleaving through the sparse fast path
// and the forced-dense fallback of the same policy, checking share
// invariants at every step and the per-job outcomes at the end. Completion
// ORDER is deliberately not compared: the quantized sizes make exact
// floating-point completion-time ties likely, and the two paths may resolve
// a cross-class tie differently; per-job completion times still must agree
// to 1e-9.
func runSparseShareFuzz(t *testing.T, mk func() Policy, data []byte) {
	const k = 3
	specs := TwoClassSpecs()
	sparse := NewClassSystemOpts(k, specs, mk(), Options{Engine: EngineIncremental})
	dense := NewClassSystemOpts(k, specs, mk(), Options{Engine: EngineIncremental, ForceDense: true})
	if dense.cs != nil || dense.srpt != nil || dense.sparse != nil {
		t.Fatal("ForceDense system still selected a fast path")
	}
	var sparseDone, denseDone []Completion
	clock := 0.0
	arrived := 0.0
	n := 0
	ops := len(data)
	if ops > 1024 {
		ops = 1024
	}
	for i := 0; i+1 < ops; i += 2 {
		op, val := data[i], data[i+1]
		if op%4 == 0 {
			// Advance: both systems step through the same completions.
			clock += float64(val%64+1) / 16
			sparseDone = append(sparseDone, sparse.AdvanceTo(clock)...)
			denseDone = append(denseDone, dense.AdvanceTo(clock)...)
		} else {
			// Arrival with a quantized size, so exact completion-time ties
			// across jobs and classes actually occur.
			class := Class(int(op) % 2)
			size := float64(val%8+1) / 4
			a := Arrival{Time: clock, Class: class, Size: size}
			sparse.Arrive(a)
			dense.Arrive(a)
			arrived += size
			n++
			// The engines refresh allocations lazily; force the refresh so
			// the invariant check below sees this arrival's share.
			sparse.AdvanceTo(clock)
			dense.AdvanceTo(clock)
		}
		checkShareInvariants(t, "sparse", sparse)
		checkShareInvariants(t, "dense", dense)
	}
	sparseDone = append(sparseDone, sparse.Drain(clock+1e9)...)
	denseDone = append(denseDone, dense.Drain(clock+1e9)...)
	if sparse.NumJobs() != 0 || dense.NumJobs() != 0 {
		t.Fatalf("jobs stuck after drain: sparse %d, dense %d", sparse.NumJobs(), dense.NumJobs())
	}
	if len(sparseDone) != n || len(denseDone) != n {
		t.Fatalf("%d arrivals: sparse completed %d, dense completed %d", n, len(sparseDone), len(denseDone))
	}
	// Order-insensitive differential check: same job set, same per-job
	// completion times to 1e-9.
	finish := make(map[int]float64, n)
	for _, c := range denseDone {
		finish[c.Job.ID] = c.Finished
	}
	for _, c := range sparseDone {
		dt, ok := finish[c.Job.ID]
		if !ok {
			t.Fatalf("sparse completed job %d unknown to the dense run", c.Job.ID)
		}
		if !fuzzCloseRel(c.Finished, dt) {
			t.Fatalf("job %d: sparse finished %v, dense %v", c.Job.ID, c.Finished, dt)
		}
		delete(finish, c.Job.ID)
	}
	sw, dw := sparse.Metrics().CompletedWork(), dense.Metrics().CompletedWork()
	if math.Abs(sw-arrived) > 1e-6*math.Max(arrived, 1) || !fuzzCloseRel(sw, dw) {
		t.Fatalf("work ledger: arrived %v, sparse completed %v, dense completed %v", arrived, sw, dw)
	}
}

// FuzzSparseShareSet drives random arrival/advance interleavings with
// quantized sizes through the incremental engine's EQUI class-share path
// and SRPT indexed-heap path, each against its forced-dense oracle.
func FuzzSparseShareSet(f *testing.F) {
	f.Add([]byte{1, 3, 1, 3, 0, 8, 1, 7, 0, 40})                                // burst then drain
	f.Add([]byte{2, 0, 3, 0, 2, 0, 3, 0, 0, 2, 0, 2, 0, 2, 0, 63})              // same-size ties across classes
	f.Add([]byte{0, 63, 1, 1, 0, 63, 2, 1, 0, 63})                              // idle gaps between singletons
	f.Add([]byte{1, 7, 1, 7, 1, 7, 1, 7, 1, 7, 1, 7, 1, 7, 1, 7, 0, 50, 0, 50}) // overload burst, one class
	f.Fuzz(func(t *testing.T, data []byte) {
		runSparseShareFuzz(t, func() Policy { return fuzzEqui{} }, data)
		runSparseShareFuzz(t, func() Policy { return fuzzSRPT{} }, data)
	})
}

// TestCoupledChaosVsIF runs CompareWork with the chaos policy as the rival.
// Chaos is not in class P (not work conserving, not FCFS), so total-work
// dominance is not guaranteed by Theorem 3 — but the driver itself must
// terminate and count consistently, which is what this test pins down.
func TestCoupledChaosVsIF(t *testing.T) {
	r := xrand.New(99)
	var trace []Arrival
	clock := 0.0
	for i := 0; i < 500; i++ {
		clock += r.Exp(2)
		class := Inelastic
		if r.Bernoulli(0.5) {
			class = Elastic
		}
		trace = append(trace, Arrival{Time: clock, Class: class, Size: r.Exp(1)})
	}
	rep := CompareWork(3, trace, ifPolicy{}, chaosPolicy{r: xrand.New(5)}, 1e-7)
	if rep.Checked == 0 {
		t.Fatal("coupled driver did no checks")
	}
	if rep.CompletedA != 500 {
		t.Fatalf("IF completed %d of 500", rep.CompletedA)
	}
}
