package sim

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// chaosPolicy makes arbitrary feasible allocations that change with every
// call: random subsets of inelastic jobs get random fractions of a server,
// random elastic jobs share whatever remains. It exists to fuzz the engine
// invariants under allocation patterns no sane policy would produce.
type chaosPolicy struct {
	r *xrand.Rand
}

func (chaosPolicy) Name() string { return "CHAOS" }

func (c chaosPolicy) Allocate(st *State, alloc *Allocation) {
	remaining := float64(st.K)
	for i := range st.Queues[Inelastic] {
		if remaining <= 0 {
			break
		}
		a := c.r.Float64() * math.Min(1, remaining)
		if c.r.Bernoulli(0.3) {
			a = 0 // sometimes starve a job outright
		}
		alloc.Classes[Inelastic][i] = a
		remaining -= a
	}
	for i := range st.Queues[Elastic] {
		if remaining <= 0 {
			break
		}
		a := c.r.Float64() * remaining
		alloc.Classes[Elastic][i] = a
		remaining -= a
	}
}

// TestEngineInvariantsUnderChaos drives the engine with the chaos policy
// and random arrivals, checking on every step: the clock never goes
// backward, remaining sizes stay in [0, size], work accounting closes, and
// every arrival eventually completes once the policy is replaced by a
// work-conserving one for draining.
func TestEngineInvariantsUnderChaos(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := xrand.NewStream(seed, 1)
		sys := NewSystem(3, chaosPolicy{r: xrand.NewStream(seed, 2)})
		clock := 0.0
		arrived := 0.0
		n := 0
		for i := 0; i < 2000; i++ {
			if sys.NumJobs() == 0 || r.Bernoulli(0.5) {
				clock += r.Exp(2)
				class := Inelastic
				if r.Bernoulli(0.5) {
					class = Elastic
				}
				size := r.Exp(1)
				sys.Arrive(Arrival{Time: clock, Class: class, Size: size})
				arrived += size
				n++
			} else {
				clock += r.Exp(4)
				sys.AdvanceTo(clock)
			}
			if sys.Clock() != clock {
				t.Fatalf("seed %d: clock drift %v vs %v", seed, sys.Clock(), clock)
			}
			for _, jobs := range sys.queues {
				for _, j := range jobs {
					if j.Remaining < 0 || j.Remaining > j.Size+1e-9 {
						t.Fatalf("seed %d: remaining %v outside [0, %v]", seed, j.Remaining, j.Size)
					}
				}
			}
			if w := sys.Work(); w < -1e-9 {
				t.Fatalf("seed %d: negative work %v", seed, w)
			}
		}
		// Chaos can starve jobs forever; swap in a work-conserving policy
		// to drain and close the ledger.
		sys.policy = ifPolicy{}
		sys.allocDirty = true
		sys.Drain(clock + 1e7)
		if sys.NumJobs() != 0 {
			t.Fatalf("seed %d: %d jobs stuck after drain", seed, sys.NumJobs())
		}
		done := sys.Metrics().CompletedWork()
		if math.Abs(done-arrived) > 1e-6*arrived {
			t.Fatalf("seed %d: ledger broken: arrived %v, completed %v", seed, arrived, done)
		}
		if sys.Metrics().TotalCompletions() != int64(n) {
			t.Fatalf("seed %d: %d completions for %d arrivals", seed, sys.Metrics().TotalCompletions(), n)
		}
	}
}

// TestCoupledChaosVsIF runs CompareWork with the chaos policy as the rival.
// Chaos is not in class P (not work conserving, not FCFS), so total-work
// dominance is not guaranteed by Theorem 3 — but the driver itself must
// terminate and count consistently, which is what this test pins down.
func TestCoupledChaosVsIF(t *testing.T) {
	r := xrand.New(99)
	var trace []Arrival
	clock := 0.0
	for i := 0; i < 500; i++ {
		clock += r.Exp(2)
		class := Inelastic
		if r.Bernoulli(0.5) {
			class = Elastic
		}
		trace = append(trace, Arrival{Time: clock, Class: class, Size: r.Exp(1)})
	}
	rep := CompareWork(3, trace, ifPolicy{}, chaosPolicy{r: xrand.New(5)}, 1e-7)
	if rep.Checked == 0 {
		t.Fatal("coupled driver did no checks")
	}
	if rep.CompletedA != 500 {
		t.Fatalf("IF completed %d of 500", rep.CompletedA)
	}
}
