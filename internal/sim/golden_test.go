package sim_test

// Cross-engine equivalence goldens: the frozen, bit-exact output of the
// two-class engine on fixed seeds. The files under testdata/ were generated
// by the pre-unification engine (internal/sim before the N-class refactor);
// the unified engine running the two-class preset must reproduce every bit
// of them. Regenerate with
//
//	go test ./internal/sim -run TestGoldenTwoClass -update
//
// only when an intentional semantic change to the engine is being made, and
// say so loudly in the PR.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files from the current engine")

// goldenPolicies are the policies frozen in the trace goldens. THRESH:2 and
// EQUI exercise fractional allocations; DEFER exercises idling; SRPT
// exercises size-aware ordering.
var goldenPolicies = []string{"IF", "EF", "FCFS", "EQUI", "DEFER", "SRPT", "THRESH:2"}

// hex encodes a float64 exactly (bit-for-bit) as a parseable string.
func hex(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

type goldenCompletion struct {
	ID       int    `json:"id"`
	Class    int    `json:"class"`
	Finished string `json:"finished"`
}

type goldenTrace struct {
	Policy      string             `json:"policy"`
	Completions []goldenCompletion `json:"completions"`
	MeanT       string             `json:"meanT"`
	MeanTI      string             `json:"meanTI"`
	MeanTE      string             `json:"meanTE"`
	MeanN       string             `json:"meanN"`
	MeanW       string             `json:"meanW"`
	Utilization string             `json:"utilization"`
	Count       int64              `json:"count"`
}

// goldenTracePrefix bounds the per-completion detail kept in the files; the
// aggregate statistics still cover the full run.
const goldenTracePrefix = 256

func computeGoldenTrace(t *testing.T, polName string) goldenTrace {
	return computeGoldenTraceEngine(t, polName, sim.EngineRebuild)
}

func computeGoldenTraceEngine(t *testing.T, polName string, engine sim.Engine) goldenTrace {
	t.Helper()
	model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
	pol, err := core.System{K: 4, LambdaI: model.LambdaI, LambdaE: model.LambdaE,
		MuI: model.MuI, MuE: model.MuE}.PolicyByName(polName)
	if err != nil {
		t.Fatal(err)
	}
	trace := model.Trace(11, 3000)
	sys := sim.NewClassSystemOpts(4, sim.TwoClassSpecs(), pol, sim.Options{Engine: engine})
	g := goldenTrace{Policy: polName}
	record := func(done []sim.Completion) {
		for _, c := range done {
			if len(g.Completions) < goldenTracePrefix {
				g.Completions = append(g.Completions, goldenCompletion{
					ID: c.Job.ID, Class: int(c.Job.Class), Finished: hex(c.Finished),
				})
			}
		}
	}
	for _, a := range trace {
		record(sys.AdvanceTo(a.Time))
		sys.Arrive(a)
	}
	record(sys.Drain(math.Inf(1)))
	m := sys.Metrics()
	g.MeanT = hex(m.MeanResponseAll())
	g.MeanTI = hex(m.MeanResponse(sim.Inelastic))
	g.MeanTE = hex(m.MeanResponse(sim.Elastic))
	g.MeanN = hex(m.MeanJobsAll())
	g.MeanW = hex(m.MeanWorkAll())
	g.Utilization = hex(m.Utilization(4))
	g.Count = m.TotalCompletions()
	return g
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name)
}

func writeGolden(t *testing.T, name string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, name string, v any) {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden %s (generate with -update): %v", name, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenTwoClassTraces replays a frozen 3000-arrival trace under each
// policy and demands bit-identical completion sequences and aggregate
// statistics against the pre-refactor engine's output.
func TestGoldenTwoClassTraces(t *testing.T) {
	for _, polName := range goldenPolicies {
		t.Run(polName, func(t *testing.T) {
			got := computeGoldenTrace(t, polName)
			name := "golden_trace_" + sanitize(polName) + ".json"
			if *update {
				writeGolden(t, name, got)
				return
			}
			var want goldenTrace
			readGolden(t, name, &want)
			if got.Count != want.Count {
				t.Fatalf("completions: got %d, want %d", got.Count, want.Count)
			}
			for _, pair := range [][3]string{
				{"MeanT", got.MeanT, want.MeanT},
				{"MeanTI", got.MeanTI, want.MeanTI},
				{"MeanTE", got.MeanTE, want.MeanTE},
				{"MeanN", got.MeanN, want.MeanN},
				{"MeanW", got.MeanW, want.MeanW},
				{"Utilization", got.Utilization, want.Utilization},
			} {
				if pair[1] != pair[2] {
					t.Errorf("%s: got %s, want %s", pair[0], pair[1], pair[2])
				}
			}
			if len(got.Completions) != len(want.Completions) {
				t.Fatalf("trace prefix length: got %d, want %d", len(got.Completions), len(want.Completions))
			}
			for i := range want.Completions {
				if got.Completions[i] != want.Completions[i] {
					t.Fatalf("completion %d: got %+v, want %+v", i, got.Completions[i], want.Completions[i])
				}
			}
		})
	}
}

// TestGoldenRunPipeline freezes the warmup/measurement driver output (the
// path exp and the cmds use): sim.Run with a warmup budget on the stochastic
// two-class model.
func TestGoldenRunPipeline(t *testing.T) {
	type cell struct {
		Policy      string `json:"policy"`
		MuI         string `json:"muI"`
		MeanT       string `json:"meanT"`
		MeanTI      string `json:"meanTI"`
		MeanTE      string `json:"meanTE"`
		MeanN       string `json:"meanN"`
		Completions int64  `json:"completions"`
	}
	var got []cell
	for _, muI := range []float64{0.5, 2.0} {
		for _, polName := range []string{"IF", "EF"} {
			model := workload.ModelForLoad(4, 0.7, muI, 1.0)
			pol, err := core.System{K: 4, LambdaI: model.LambdaI, LambdaE: model.LambdaE,
				MuI: model.MuI, MuE: model.MuE}.PolicyByName(polName)
			if err != nil {
				t.Fatal(err)
			}
			res := sim.Run(sim.RunConfig{
				K: 4, Policy: pol, Source: model.Source(7),
				WarmupJobs: 1000, MaxJobs: 10_000,
			})
			got = append(got, cell{
				Policy: polName, MuI: hex(muI),
				MeanT: hex(res.MeanT), MeanTI: hex(res.MeanTI), MeanTE: hex(res.MeanTE),
				MeanN: hex(res.MeanN), Completions: res.Completions,
			})
		}
	}
	const name = "golden_run_cells.json"
	if *update {
		writeGolden(t, name, got)
		return
	}
	var want []cell
	readGolden(t, name, &want)
	if len(got) != len(want) {
		t.Fatalf("cells: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
