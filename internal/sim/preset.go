package sim

import "strconv"

// This file holds the paper's two-class model as a preset over the N-class
// engine: class 0 is the inelastic class (speedup min(a, 1)) and class 1 is
// the elastic class (linear speedup). Every historical two-class entry point
// (NewSystem, NumInelastic, WorkElastic, ...) delegates to the generalized
// engine and is bit-identical to the pre-unification two-class simulator —
// pinned by the golden tests in golden_test.go.

const (
	// Inelastic is the preset's class 0: jobs run on at most one server.
	Inelastic Class = iota
	// Elastic is the preset's class 1: jobs parallelize linearly.
	Elastic
)

// String returns "inelastic"/"elastic" for the two-class preset indices and
// a numbered label otherwise (multi-class systems name classes via
// ClassSpec.Name).
func (c Class) String() string {
	switch c {
	case Inelastic:
		return "inelastic"
	case Elastic:
		return "elastic"
	default:
		return "class" + strconv.Itoa(int(c))
	}
}

// TwoClassSpecs returns the paper's two-class model: class 0 inelastic
// (capped at one server), class 1 elastic (linear speedup).
func TwoClassSpecs() []ClassSpec {
	return []ClassSpec{
		{Name: "inelastic", Speedup: InelasticSpeedup()},
		{Name: "elastic", Speedup: LinearSpeedup()},
	}
}

// NewSystem returns an empty two-class system with k servers governed by
// policy — the paper's model as a preset over the N-class engine.
func NewSystem(k int, policy Policy) *System {
	return NewClassSystem(k, TwoClassSpecs(), policy)
}

// NumInelastic returns the number of inelastic jobs in a two-class system.
func (s *System) NumInelastic() int { return s.NumClass(Inelastic) }

// NumElastic returns the number of elastic jobs in a two-class system.
func (s *System) NumElastic() int { return s.NumClass(Elastic) }

// WorkInelastic returns the remaining inelastic work W_I(t) of a two-class
// system.
func (s *System) WorkInelastic() float64 { return s.WorkClass(Inelastic) }

// WorkElastic returns the remaining elastic work W_E(t) of a two-class
// system.
func (s *System) WorkElastic() float64 { return s.WorkClass(Elastic) }
