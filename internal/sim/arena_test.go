package sim

// White-box tests for the arena job storage (arena.go). The first two pin
// the allocator's own contract — stable addresses, LIFO recycling, handle
// survival. TestArenaRecycleNoAlias pins the system-level promise the arena
// docs make: a recycled slot can never inherit a future event (or any other
// hot-structure reference) from its previous life. The real policies live
// in internal/policy, which imports this package, so the engine-driven
// tests use minimal in-file policies with the same two faces.

import (
	"testing"

	"repro/internal/xrand"
)

// TestArenaAllocStableAddresses allocates across several chunk boundaries
// and verifies that every job's address and handle survive arbitrary later
// growth — the property that lets *Job pointers cross the Policy API
// boundary while the hot structures hold int32 handles.
func TestArenaAllocStableAddresses(t *testing.T) {
	var a jobArena
	const n = 3*arenaChunkSize + 37
	ptrs := make([]*Job, n)
	for i := 0; i < n; i++ {
		j := a.alloc()
		if got := int(j.handle); got != i {
			t.Fatalf("fresh slot %d got handle %d", i, got)
		}
		ptrs[i] = j
	}
	for i, p := range ptrs {
		if a.at(jobHandle(i)) != p {
			t.Fatalf("slot %d moved after growth to %d slots", i, n)
		}
	}
}

// TestArenaRecycleLIFO verifies that release/alloc recycles slots in LIFO
// order (matching the old []*Job free list, so allocation order — and with
// it every golden trace — is unchanged) and that the handle field is the
// one thing a recycled slot keeps.
func TestArenaRecycleLIFO(t *testing.T) {
	var a jobArena
	jobs := make([]*Job, 8)
	for i := range jobs {
		jobs[i] = a.alloc()
	}
	released := []int{2, 5, 3}
	for _, i := range released {
		jobs[i].Remaining = 42 // stale garbage the next occupant must not trust
		a.release(jobs[i])
	}
	for k := len(released) - 1; k >= 0; k-- {
		want := jobs[released[k]]
		got := a.alloc()
		if got != want {
			t.Fatalf("recycle order broke: got slot %d, want %d (LIFO)", got.handle, want.handle)
		}
		if got.handle != want.handle || a.at(got.handle) != got {
			t.Fatalf("recycled slot lost its handle: %d", got.handle)
		}
		if got.Remaining != 42 {
			t.Fatalf("recycled slot was scrubbed; the contract is caller-resets")
		}
	}
	if j := a.alloc(); int(j.handle) != len(jobs) {
		t.Fatalf("empty free list should hand out fresh slot %d, got %d", len(jobs), j.handle)
	}
}

// arenaIFPolicy is a minimal inelastic-first clone: classes in index order,
// each job min(cap, remaining budget). Both faces make the same decision,
// so the incremental engine engages its sparse write-set path exactly as it
// does for the real class-priority family.
type arenaIFPolicy struct{}

func (arenaIFPolicy) Name() string { return "ARENA-IF" }

func (arenaIFPolicy) Allocate(st *State, alloc *Allocation) {
	remaining := float64(st.K)
	for c := range st.Queues {
		capC := st.Classes[c].Cap()
		for i := range st.Queues[c] {
			if remaining <= 0 {
				return
			}
			a := capC
			if remaining < a {
				a = remaining
			}
			alloc.Classes[c][i] = a
			remaining -= a
		}
	}
}

func (arenaIFPolicy) AllocateSparse(st *State, ws *ShareSet) {
	remaining := float64(st.K)
	for c := range st.Queues {
		capC := st.Classes[c].Cap()
		for _, j := range st.Queues[c] {
			if remaining <= 0 {
				ws.MarkExhausted(c)
				return
			}
			a := capC
			if remaining < a {
				a = remaining
			}
			ws.Add(j, a)
			remaining -= a
		}
	}
}

// arenaEquiPolicy is a minimal class-share policy — every resident job gets
// min(cap, k/N) — driving the EQUI-style vtarget-heap path, whose per-class
// heaps also store arena handles.
type arenaEquiPolicy struct{}

func (arenaEquiPolicy) Name() string { return "ARENA-EQ" }

func (arenaEquiPolicy) share(st *State, c int) float64 {
	n := 0
	for _, q := range st.Queues {
		n += len(q)
	}
	if n == 0 {
		return 0
	}
	sh := float64(st.K) / float64(n)
	if capC := st.Classes[c].Cap(); sh > capC {
		sh = capC
	}
	return sh
}

func (p arenaEquiPolicy) Allocate(st *State, alloc *Allocation) {
	for c := range st.Queues {
		sh := p.share(st, c)
		for i := range st.Queues[c] {
			alloc.Classes[c][i] = sh
		}
	}
}

func (p arenaEquiPolicy) ClassShares(st *State, shares []float64) {
	for c := range st.Queues {
		shares[c] = p.share(st, c)
	}
}

// checkNoAlias asserts that no handle on the arena free list is referenced
// by any hot structure: the indexed future-event list, the active set, or a
// class-share vtarget heap. Combined with the engines popping/removing a
// job's entry before release, this is exactly the no-alias guarantee the
// arena documents (a recycled slot can never inherit an event).
func checkNoAlias(t *testing.T, sys *System) {
	t.Helper()
	free := make(map[jobHandle]bool, len(sys.jobs.free))
	for _, h := range sys.jobs.free {
		if free[h] {
			t.Fatalf("handle %d is on the free list twice", h)
		}
		free[h] = true
	}
	for h := range free {
		if sys.ievq.Contains(h) {
			t.Fatalf("free handle %d still has a scheduled event", h)
		}
	}
	for _, j := range sys.incActive {
		if free[j.handle] {
			t.Fatalf("free handle %d is still in the active set", j.handle)
		}
	}
	for _, q := range sys.queues {
		for _, j := range q {
			if free[j.handle] {
				t.Fatalf("free handle %d is still resident in a queue", j.handle)
			}
		}
	}
	if cs := sys.cs; cs != nil {
		for c := range cs.vq {
			for _, b := range cs.vq[c].bucket {
				for i := range b {
					if free[b[i].h] {
						t.Fatalf("free handle %d is still in class %d's vtarget heap", b[i].h, c)
					}
				}
			}
		}
		for _, h := range cs.heads {
			if h >= 0 && free[h] {
				t.Fatalf("free handle %d is still an armed class head", h)
			}
		}
	}
}

// TestArenaRecycleNoAlias churns the incremental engine — thousands of
// completions recycling slots into new arrivals — and checks after every
// step that freed handles have vanished from every hot structure, on both
// the sparse write-set path and the class-share path.
func TestArenaRecycleNoAlias(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  Policy
	}{
		{"sparse", arenaIFPolicy{}},
		{"classshare", arenaEquiPolicy{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := NewClassSystemOpts(3, TwoClassSpecs(), tc.pol, Options{Engine: EngineIncremental})
			if tc.name == "sparse" && sys.sparse == nil {
				t.Fatal("sparse fast path did not engage")
			}
			if tc.name == "classshare" && sys.cs == nil {
				t.Fatal("class-share fast path did not engage")
			}
			rng := xrand.NewStream(11, 2)
			clock := 0.0
			recycled := 0
			for i := 0; i < 4000; i++ {
				if rng.Bernoulli(0.55) || sys.NumJobs() == 0 {
					c := Inelastic
					if rng.Bernoulli(0.5) {
						c = Elastic
					}
					sys.Arrive(Arrival{Time: clock, Class: c, Size: rng.Exp(1)})
				} else {
					clock += rng.Exp(2)
					recycled += len(sys.AdvanceTo(clock))
				}
				checkNoAlias(t, sys)
			}
			recycled += len(sys.Drain(clock + 1e9))
			checkNoAlias(t, sys)
			if sys.NumJobs() != 0 {
				t.Fatalf("%d jobs stuck after drain", sys.NumJobs())
			}
			if recycled < 1000 {
				t.Fatalf("churn too weak to test recycling: only %d completions", recycled)
			}
		})
	}
}
