package sim

// The remaining-size fast path of the incremental engine: SRPT-style
// policies order jobs by settled remaining size, which the dense fallback
// could only deliver by settling and re-sorting every resident job — O(n)
// per event. The engine implements the rule natively instead, around one
// observation: a job that is not being served has rate zero, so its
// remaining size is frozen. Only the <= k+1 served jobs have moving keys.
//
// All resident jobs live in one indexed min-heap keyed
// (Remaining, Class, ID) — the exact tie-break of the dense face's stable
// sort over class-then-FCFS enumeration. Each job carries its heap position
// (Job.hpos), so a policy refresh is: settle the served jobs and
// decrease-key each one (remaining work only shrinks, so a sift-up
// restores the heap), then pop winners off the top until the server budget
// is spent, hand them to the standard ShareSet diff, and push them back.
// Arrivals push, completions remove by position: every operation is
// O(log n), and the per-event total is O(k log n) regardless of occupancy.

// RemainingOrderedPolicy marks policies whose allocation rule is exactly:
// walk jobs by ascending settled remaining size (ties to the lower class,
// FCFS within a class), giving each job up to its class cap until the
// servers run out. The incremental engine executes the rule natively with
// an indexed heap instead of calling Allocate; the dense face must make
// the identical decision — the cross-engine equivalence suite holds the
// two together.
type RemainingOrderedPolicy interface {
	Policy
	RemainingOrdered()
}

func srptLess(a, b *Job) bool {
	if a.Remaining != b.Remaining {
		return a.Remaining < b.Remaining
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.ID < b.ID
}

// srptHeap is an indexed binary min-heap over all resident jobs. Job.hpos
// tracks each job's slot (-1 when absent), enabling decrease-key (fix) and
// positional removal.
type srptHeap struct {
	jobs []*Job
}

func (h *srptHeap) len() int { return len(h.jobs) }

func (h *srptHeap) push(j *Job) {
	j.hpos = int32(len(h.jobs))
	h.jobs = append(h.jobs, j)
	h.up(int(j.hpos))
}

func (h *srptHeap) pop() *Job {
	top := h.jobs[0]
	h.removeAt(0)
	return top
}

// remove deletes j from the heap by its tracked position.
func (h *srptHeap) remove(j *Job) {
	if j.hpos < 0 || int(j.hpos) >= len(h.jobs) || h.jobs[j.hpos] != j {
		panic("sim: srpt heap position out of sync")
	}
	h.removeAt(int(j.hpos))
}

// fix restores the invariant after j's key decreased (decrease-key). A
// served job's remaining size only shrinks between refreshes, so a sift-up
// is sufficient — and processing any set of key decreases one sift-up at a
// time is order-independent: a shrinking parent can never violate its
// children.
func (h *srptHeap) fix(j *Job) {
	h.up(int(j.hpos))
}

func (h *srptHeap) removeAt(i int) {
	last := len(h.jobs) - 1
	moved := h.jobs[last]
	h.jobs[i].hpos = -1
	h.jobs[i] = moved
	h.jobs[last] = nil
	h.jobs = h.jobs[:last]
	if i < last {
		moved.hpos = int32(i)
		h.down(i)
		h.up(i)
	}
}

func (h *srptHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !srptLess(h.jobs[i], h.jobs[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *srptHeap) down(i int) {
	n := len(h.jobs)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && srptLess(h.jobs[l], h.jobs[smallest]) {
			smallest = l
		}
		if r < n && srptLess(h.jobs[r], h.jobs[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *srptHeap) swap(i, j int) {
	h.jobs[i], h.jobs[j] = h.jobs[j], h.jobs[i]
	h.jobs[i].hpos = int32(i)
	h.jobs[j].hpos = int32(j)
}

// srptState is the engine-side state of the remaining-size path.
type srptState struct {
	heap    srptHeap
	scratch []*Job // winners of the current selection round
}

// arrive registers a new job (Remaining = Size, frozen until served).
func (sp *srptState) arrive(s *System, j *Job) {
	sp.heap.push(j)
}

// complete drops the finishing job out of the heap by position.
func (sp *srptState) complete(s *System, j *Job) {
	sp.heap.remove(j)
}

// refresh makes the policy's decision natively: decrease-key the settled
// served set, pop winners until the budget is spent, report them through
// the standard sparse write-set (the diff settles and re-queues exactly the
// jobs whose share changed), and push the winners back.
func (sp *srptState) refresh(s *System) {
	for _, j := range s.incActive {
		s.settleJob(j)
		sp.heap.fix(j)
	}
	s.incWrites.reset(len(s.classes))
	remaining := float64(s.k)
	sp.scratch = sp.scratch[:0]
	for remaining > 0 && sp.heap.len() > 0 {
		j := sp.heap.pop()
		sp.scratch = append(sp.scratch, j)
		a := min(s.caps[j.Class], remaining)
		s.incWrites.Add(j, a)
		remaining -= a
	}
	for _, j := range sp.scratch {
		sp.heap.push(j)
	}
	s.applySparse()
}
