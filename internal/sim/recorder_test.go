package sim

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestRecorderExactBelowCapacity(t *testing.T) {
	rr := NewResponseRecorder(100, 1)
	for i := 1; i <= 10; i++ {
		rr.Observe(Completion{
			Job:      Job{Class: Inelastic, Arrival: 0},
			Finished: float64(i),
		})
	}
	if rr.Seen(Inelastic) != 10 {
		t.Fatalf("seen %d", rr.Seen(Inelastic))
	}
	if got := rr.Quantile(Inelastic, 0); got != 1 {
		t.Fatalf("min %v", got)
	}
	if got := rr.Quantile(Inelastic, 1); got != 10 {
		t.Fatalf("max %v", got)
	}
	if got := rr.Quantile(Inelastic, 0.5); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("median %v", got)
	}
}

func TestRecorderEmptyIsNaN(t *testing.T) {
	rr := NewResponseRecorder(10, 1)
	if !math.IsNaN(rr.Quantile(Elastic, 0.5)) || !math.IsNaN(rr.QuantileAll(0.5)) {
		t.Fatal("empty recorder should be NaN")
	}
}

// TestReservoirUnbiased: with capacity << stream length, the reservoir
// median must track the true median of the stream distribution.
func TestReservoirUnbiased(t *testing.T) {
	rr := NewResponseRecorder(2000, 7)
	r := xrand.New(3)
	const n = 200000
	for i := 0; i < n; i++ {
		rr.Observe(Completion{
			Job:      Job{Class: Elastic, Arrival: 0},
			Finished: r.Exp(1), // response = Exp(1)
		})
	}
	if rr.Seen(Elastic) != n {
		t.Fatalf("seen %d", rr.Seen(Elastic))
	}
	// Exp(1) median is ln 2, p99 is ln 100.
	if got := rr.Quantile(Elastic, 0.5); math.Abs(got-math.Ln2) > 0.05 {
		t.Fatalf("reservoir median %v, want %v", got, math.Ln2)
	}
	if got := rr.Quantile(Elastic, 0.99); math.Abs(got-math.Log(100)) > 0.6 {
		t.Fatalf("reservoir p99 %v, want %v", got, math.Log(100))
	}
}

func TestRunWithRecorderMatchesRun(t *testing.T) {
	trace := makeTrace(2000, 0.3)
	runRes := Run(RunConfig{
		K: 2, Policy: ifPolicy{},
		Source: &SliceSource{Arrivals: append([]Arrival(nil), trace...)}, MaxJobs: 1500,
	})
	rr := NewResponseRecorder(10000, 1)
	recRes := RunWithRecorder(RunConfig{
		K: 2, Policy: ifPolicy{},
		Source: &SliceSource{Arrivals: append([]Arrival(nil), trace...)}, MaxJobs: 1500,
	}, rr)
	// Identical trace and policy: identical mean response over the
	// measured window (modulo the two runners' drain behavior, so compare
	// through the common completion count).
	if recRes.Completions == 0 || rr.Seen(Inelastic)+rr.Seen(Elastic) == 0 {
		t.Fatal("recorder run recorded nothing")
	}
	if math.IsNaN(rr.QuantileAll(0.5)) {
		t.Fatal("median NaN")
	}
	_ = runRes
}

func TestRecorderCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewResponseRecorder(0, 1)
}
