package sim_test

// Cross-engine equivalence suite: the rebuild and incremental engines must
// make identical scheduling decisions on identical traces. Completion
// sequences (job IDs and classes, in completion order) are diffed exactly;
// completion times and aggregate statistics are compared to 1e-9 relative —
// the engines round differently by construction (the rebuild engine
// re-derives every completion time at every event; the incremental engine
// anchors it at the last rate change), so bit-equality across engines is
// not attainable without re-introducing the O(n) scan. Each engine is
// individually bit-frozen by its own golden set.

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// equivTol is the relative tolerance for cross-engine float comparisons.
const equivTol = 1e-9

func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= equivTol*math.Max(scale, 1)
}

// equivPreset is one workload configuration of the equivalence matrix.
type equivPreset struct {
	name    string
	classes []sim.ClassSpec
	trace   []sim.Arrival
}

// equivPresets builds the four presets of the acceptance matrix: the
// paper's two-class model plus the three Section 6 mixes. Two-class specs
// carry size distributions (like exp cells do) so SMF resolves.
func equivPresets(t testing.TB, k int, rho float64, n int, seed uint64) []equivPreset {
	t.Helper()
	muI, muE := 1.5, 1.0
	model := workload.ModelForLoad(k, rho, muI, muE)
	two := sim.TwoClassSpecs()
	two[0].Lambda, two[0].Size = model.LambdaI, dist.NewExponential(muI)
	two[1].Lambda, two[1].Size = model.LambdaE, dist.NewExponential(muE)
	out := []equivPreset{{name: "twoclass", classes: two, trace: model.Trace(seed, n)}}
	for _, name := range workload.MixNames() {
		mix, err := workload.MixByName(name, k, rho)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, equivPreset{name: name, classes: mix.Classes, trace: mix.Trace(seed, n)})
	}
	return out
}

// equivPolicies returns every named policy applicable to the class set,
// including a non-trivial PRIO permutation (reverse class order).
func equivPolicies(t testing.TB, classes []sim.ClassSpec) []string {
	t.Helper()
	names := []string{"IF", "EF", "FCFS", "EQUI", "GREEDY", "DEFER", "SRPT", "LFF", "SMF", "THRESH:2"}
	prio := "PRIO:"
	for c := len(classes) - 1; c >= 0; c-- {
		if c < len(classes)-1 {
			prio += ","
		}
		prio += fmt.Sprint(c)
	}
	names = append(names, prio)
	var out []string
	for _, name := range names {
		pol, err := core.PolicyByName(name, 1.5, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if core.ValidatePolicyClasses(pol, classes) != nil {
			continue // e.g. THRESH/GREEDY on an N-class mix
		}
		out = append(out, name)
	}
	return out
}

// engineTrace drives one engine configuration over a fixed trace and drains
// it, returning the completion sequence and the system for metric checks.
func engineTrace(t testing.TB, opts sim.Options, k int, classes []sim.ClassSpec, polName string, trace []sim.Arrival) ([]sim.Completion, *sim.System) {
	t.Helper()
	pol, err := core.PolicyByName(polName, 1.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewClassSystemOpts(k, classes, pol, opts)
	var out []sim.Completion
	for _, a := range trace {
		out = append(out, sys.AdvanceTo(a.Time)...)
		sys.Arrive(a)
	}
	out = append(out, sys.Drain(math.Inf(1))...)
	return out, sys
}

// diffTraces reports the first divergence between two engine runs:
// completion ID/class sequences exact, times and aggregate statistics to
// equivTol relative.
func diffTraces(aName string, a []sim.Completion, aSys *sim.System, bName string, b []sim.Completion, bSys *sim.System, k int) error {
	if len(a) != len(b) {
		return fmt.Errorf("completion count: %s %d, %s %d", aName, len(a), bName, len(b))
	}
	for i := range a {
		if a[i].Job.ID != b[i].Job.ID || a[i].Job.Class != b[i].Job.Class {
			return fmt.Errorf("completion %d: %s job %d (class %d), %s job %d (class %d)",
				i, aName, a[i].Job.ID, a[i].Job.Class, bName, b[i].Job.ID, b[i].Job.Class)
		}
		if !closeRel(a[i].Finished, b[i].Finished) {
			return fmt.Errorf("completion %d (job %d): finish times diverge beyond %g: %s %v, %s %v",
				i, a[i].Job.ID, equivTol, aName, a[i].Finished, bName, b[i].Finished)
		}
	}
	am, bm := aSys.Metrics(), bSys.Metrics()
	for _, c := range []struct {
		name string
		a, b float64
	}{
		{"MeanT", am.MeanResponseAll(), bm.MeanResponseAll()},
		{"MeanN", am.MeanJobsAll(), bm.MeanJobsAll()},
		{"MeanW", am.MeanWorkAll(), bm.MeanWorkAll()},
		{"Util", am.Utilization(k), bm.Utilization(k)},
		{"CompletedWork", am.CompletedWork(), bm.CompletedWork()},
	} {
		if !closeRel(c.a, c.b) {
			return fmt.Errorf("%s: %s %v, %s %v", c.name, aName, c.a, bName, c.b)
		}
	}
	return nil
}

// diffEngines runs three engine configurations on one trace and reports the
// first divergence, if any: the rebuild engine, the incremental engine on
// its structure-specific fast paths (sparse write-sets, EQUI's class
// shares, SRPT's indexed heap), and the incremental engine pinned to its
// dense fallback via Options.ForceDense. The third run is the differential
// oracle of the sparse paths: every fast path must reproduce the dense
// fallback's decisions exactly, not just the rebuild engine's.
func diffEngines(t testing.TB, k int, classes []sim.ClassSpec, polName string, trace []sim.Arrival) error {
	t.Helper()
	reb, rebSys := engineTrace(t, sim.Options{Engine: sim.EngineRebuild}, k, classes, polName, trace)
	inc, incSys := engineTrace(t, sim.Options{Engine: sim.EngineIncremental}, k, classes, polName, trace)
	if err := diffTraces("rebuild", reb, rebSys, "incremental", inc, incSys, k); err != nil {
		return err
	}
	dense, denseSys := engineTrace(t, sim.Options{Engine: sim.EngineIncremental, ForceDense: true}, k, classes, polName, trace)
	return diffTraces("incremental", inc, incSys, "incremental/dense", dense, denseSys, k)
}

// TestEngineEquivalenceMatrix is the acceptance matrix: every preset
// (twoclass, threeclass, partialelastic, cappedladder) under every named
// policy applicable to it, on a fixed 2500-arrival trace at rho = 0.9.
func TestEngineEquivalenceMatrix(t *testing.T) {
	for _, p := range equivPresets(t, 4, 0.9, 2500, 17) {
		for _, polName := range equivPolicies(t, p.classes) {
			t.Run(p.name+"/"+polName, func(t *testing.T) {
				if err := diffEngines(t, 4, p.classes, polName, p.trace); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestEngineEquivalenceQuick is the testing/quick harness of the satellite:
// random (seed, k, rho, preset, policy) configurations drive random
// arrival/size streams through both engines; any divergence in the
// completion sequence fails. The rand source is fixed so the run is
// reproducible.
func TestEngineEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick equivalence harness is not -short")
	}
	check := func(seed uint64, kSel, presetSel, polSel uint8, rhoSel uint16) bool {
		k := 1 + int(kSel)%8
		rho := 0.3 + 0.65*float64(rhoSel)/math.MaxUint16
		presets := equivPresets(t, k, rho, 400, seed|1)
		p := presets[int(presetSel)%len(presets)]
		pols := equivPolicies(t, p.classes)
		polName := pols[int(polSel)%len(pols)]
		if err := diffEngines(t, k, p.classes, polName, p.trace); err != nil {
			t.Logf("seed=%d k=%d rho=%.4f preset=%s policy=%s: %v", seed, k, rho, p.name, polName, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateAllocsIncremental pins the incremental engine's hot path
// at <= 1 heap allocation per event — same gate as the rebuild engine
// (alloc_test.go), covering the sparse write-set protocol (IF, EF, LFF,
// FCFS), EQUI's class-share path and SRPT's indexed-heap path.
func TestSteadyStateAllocsIncremental(t *testing.T) {
	measure := func(t *testing.T, sys *sim.System, src sim.ArrivalSource) float64 {
		t.Helper()
		for i := 0; i < 20_000; i++ {
			a, _ := src.Next()
			sys.AdvanceTo(a.Time)
			sys.Arrive(a)
		}
		const rounds = 2000
		before := sys.Metrics().TotalCompletions()
		perRound := testing.AllocsPerRun(rounds, func() {
			a, _ := src.Next()
			sys.AdvanceTo(a.Time)
			sys.Arrive(a)
		})
		completions := sys.Metrics().TotalCompletions() - before
		return perRound / (1 + float64(completions)/float64(rounds+1))
	}
	for _, tc := range []struct {
		name string
		pol  sim.Policy
	}{
		{"IF", policy.InelasticFirst{}},
		{"EF", policy.ElasticFirst{}},
		{"FCFS", &policy.FCFS{}},
		{"EQUI", policy.Equi{}},
		{"SRPT", &policy.SRPTK{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
			sys := sim.NewClassSystemOpts(model.K, sim.TwoClassSpecs(), tc.pol, sim.Options{Engine: sim.EngineIncremental})
			if got := measure(t, sys, model.Source(3)); got > 1 {
				t.Fatalf("incremental steady-state stepping allocates %.3f/event under %s, want <= 1", got, tc.pol.Name())
			}
		})
	}
	t.Run("LFF-mix", func(t *testing.T) {
		mix := workload.ThreeClassCaps(8, 0.7)
		sys := sim.NewClassSystemOpts(8, mix.Classes, &policy.LeastFlexibleFirst{}, sim.Options{Engine: sim.EngineIncremental})
		if got := measure(t, sys, mix.Source(3)); got > 1 {
			t.Fatalf("incremental multi-class stepping allocates %.3f/event, want <= 1", got)
		}
	})
	// Arena path at held occupancy: with n jobs permanently resident the
	// slab allocator recycles one slot per event and every internal buffer
	// (indexed event queue, vtarget heaps, write sets) has reached its
	// steady-state footprint — stepping must be allocation-free no matter
	// how large the resident set is. n spans the cache-resident and the
	// arena-spanning (multiple 512-job chunks) regimes.
	for _, n := range []int{100, 10_000} {
		for _, tc := range []struct {
			name string
			pol  sim.Policy
		}{
			{"IF", policy.InelasticFirst{}},
			{"EQUI", policy.Equi{}},
			{"SRPT", &policy.SRPTK{}},
		} {
			t.Run(fmt.Sprintf("arena-n%d-%s", n, tc.name), func(t *testing.T) {
				sys := sim.NewClassSystemOpts(4, sim.TwoClassSpecs(), tc.pol, sim.Options{Engine: sim.EngineIncremental})
				rng := xrand.NewStream(7, 1)
				for i := 0; i < n; i++ {
					sys.Arrive(sim.Arrival{Time: 0, Class: sim.Inelastic, Size: rng.Exp(1)})
				}
				step := func() {
					tc := sys.NextEventTime()
					sys.AdvanceTo(tc)
					sys.Arrive(sim.Arrival{Time: tc, Class: sim.Inelastic, Size: rng.Exp(1)})
				}
				for i := 0; i < 1000; i++ {
					step() // warm the free list, heap backing and queue windows
				}
				// Each round is one completion plus one arrival; 0.05 leaves
				// headroom for a rare internal-buffer regrowth, nothing more.
				if got := testing.AllocsPerRun(2000, step); got > 0.05 {
					t.Fatalf("arena path at n=%d allocates %.4f/round under %s, want 0", n, got, tc.pol.Name())
				}
				if sys.NumJobs() != n {
					t.Fatalf("occupancy drifted: %d != %d", sys.NumJobs(), n)
				}
			})
		}
	}
}

// TestSteadyStateBytesIncremental pins the incremental engine's steady-state
// byte rate, not just its allocation count: TestSteadyStateAllocsIncremental
// would not notice a single allocation silently growing from 4 bytes to 4
// kilobytes. The bound is deliberately loose (64 B/event, versus ~4 B/event
// measured) so slab-growth amortization noise cannot flake it; a real
// per-event allocation of any structure would blow straight past it. GC is
// disabled during the measurement so TotalAlloc deltas are the only signal.
func TestSteadyStateBytesIncremental(t *testing.T) {
	const bound = 64.0
	for _, tc := range []struct {
		name string
		pol  sim.Policy
	}{
		{"IF", policy.InelasticFirst{}},
		{"EQUI", policy.Equi{}},
		{"SRPT", &policy.SRPTK{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model := workload.ModelForLoad(4, 0.8, 1.5, 1.0)
			sys := sim.NewClassSystemOpts(model.K, sim.TwoClassSpecs(), tc.pol, sim.Options{Engine: sim.EngineIncremental})
			src := model.Source(3)
			step := func() {
				a, _ := src.Next()
				sys.AdvanceTo(a.Time)
				sys.Arrive(a)
			}
			for i := 0; i < 20_000; i++ {
				step() // reach steady state: free list, heap backing, queue windows warm
			}
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			const rounds = 5000
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < rounds; i++ {
				step()
			}
			runtime.ReadMemStats(&after)
			perEvent := float64(after.TotalAlloc-before.TotalAlloc) / rounds
			if perEvent > bound {
				t.Fatalf("incremental steady-state stepping allocates %.1f B/event under %s, want <= %g", perEvent, tc.pol.Name(), bound)
			}
		})
	}
	// Arena path at held occupancy — the byte-rate analogue of the
	// arena-n* sub-tests in TestSteadyStateAllocsIncremental: the slab
	// never grows once n slots exist, so the steady-state byte rate must
	// stay bounded even with 10k jobs (20 chunks) resident. EQUI's bound
	// is looser: the radix heap's bucket arrays keep amortized-regrowing
	// as virtual time drifts through float exponent ranges (~100 B/round
	// measured at n=10k, spiky) — the pin is against anything resembling
	// per-event O(n) reallocation, which would be ~240 KB/round here.
	for _, n := range []int{100, 10_000} {
		for _, tc := range []struct {
			name  string
			pol   sim.Policy
			bound float64
		}{
			{"IF", policy.InelasticFirst{}, bound},
			{"EQUI", policy.Equi{}, 320},
		} {
			t.Run(fmt.Sprintf("arena-n%d-%s", n, tc.name), func(t *testing.T) {
				sys := sim.NewClassSystemOpts(4, sim.TwoClassSpecs(), tc.pol, sim.Options{Engine: sim.EngineIncremental})
				rng := xrand.NewStream(7, 1)
				for i := 0; i < n; i++ {
					sys.Arrive(sim.Arrival{Time: 0, Class: sim.Inelastic, Size: rng.Exp(1)})
				}
				step := func() {
					tc := sys.NextEventTime()
					sys.AdvanceTo(tc)
					sys.Arrive(sim.Arrival{Time: tc, Class: sim.Inelastic, Size: rng.Exp(1)})
				}
				for i := 0; i < 5000; i++ {
					step()
				}
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				const rounds = 20_000
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				for i := 0; i < rounds; i++ {
					step()
				}
				runtime.ReadMemStats(&after)
				perRound := float64(after.TotalAlloc-before.TotalAlloc) / rounds
				if perRound > tc.bound {
					t.Fatalf("arena path at n=%d allocates %.1f B/round under %s, want <= %g", n, perRound, tc.pol.Name(), tc.bound)
				}
			})
		}
	}
}

// benchOccupancy measures one engine's per-event cost with the occupancy
// held at exactly n: the system is preloaded with n inelastic jobs on k=4
// servers, then every iteration completes one job and admits a replacement
// at the completion instant. Under the rebuild engine each event rebuilds
// the n-entry future-event list and depletes all n jobs (O(n)); under the
// incremental engine only the changed jobs settle (O(changed · log n)).
func benchOccupancy(b *testing.B, n int, pol sim.Policy, engine sim.Engine) {
	sys := sim.NewClassSystemOpts(4, sim.TwoClassSpecs(), pol, sim.Options{Engine: engine})
	rng := xrand.NewStream(7, 1)
	for i := 0; i < n; i++ {
		sys.Arrive(sim.Arrival{Time: 0, Class: sim.Inelastic, Size: rng.Exp(1)})
	}
	step := func() {
		tc := sys.NextEventTime()
		sys.AdvanceTo(tc)
		sys.Arrive(sim.Arrival{Time: tc, Class: sim.Inelastic, Size: rng.Exp(1)})
	}
	for i := 0; i < 200; i++ {
		step() // warm the free list, heap backing and queue windows
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	if sys.NumJobs() != n {
		b.Fatalf("occupancy drifted: %d != %d", sys.NumJobs(), n)
	}
}

// benchEngines runs the occupancy benchmark for both engines under IF (the
// historical series — the bare rebuild/incremental names must keep their
// meaning so BENCH_engine.json stays comparable across entries) and under
// the two policies with structure-specific fast paths: EQUI (class-share
// water-filling) and SRPT (indexed heap). The EQUI and SRPT rebuild
// variants price what the fast paths replace — under SRPT the rebuild
// engine re-sorts all n jobs every event, so expect O(n^2)-ish ns/op.
func benchEngines(b *testing.B, n int) {
	b.Run("rebuild", func(b *testing.B) { benchOccupancy(b, n, policy.InelasticFirst{}, sim.EngineRebuild) })
	b.Run("incremental", func(b *testing.B) { benchOccupancy(b, n, policy.InelasticFirst{}, sim.EngineIncremental) })
	b.Run("rebuild-EQUI", func(b *testing.B) { benchOccupancy(b, n, policy.Equi{}, sim.EngineRebuild) })
	b.Run("incremental-EQUI", func(b *testing.B) { benchOccupancy(b, n, policy.Equi{}, sim.EngineIncremental) })
	b.Run("rebuild-SRPT", func(b *testing.B) { benchOccupancy(b, n, &policy.SRPTK{}, sim.EngineRebuild) })
	b.Run("incremental-SRPT", func(b *testing.B) { benchOccupancy(b, n, &policy.SRPTK{}, sim.EngineIncremental) })
}

// BenchmarkEngineEventN* pin the engines' per-event scaling in the resident
// job count — the numbers recorded in BENCH_engine.json by scripts/bench.sh
// and gated by `benchlog -check` in CI. The acceptance bar for this PR:
// incremental >= 10x fewer ns/op than rebuild at n = 10k for EQUI and SRPT,
// with 0 allocs/op in steady state.
func BenchmarkEngineEventN10(b *testing.B)  { benchEngines(b, 10) }
func BenchmarkEngineEventN100(b *testing.B) { benchEngines(b, 100) }
func BenchmarkEngineEventN1k(b *testing.B)  { benchEngines(b, 1000) }
func BenchmarkEngineEventN10k(b *testing.B) { benchEngines(b, 10_000) }
