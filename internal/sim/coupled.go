package sim

import (
	"fmt"
	"math"
)

// Violation records one point where a sample-path dominance claim failed.
type Violation struct {
	Time     float64
	Quantity string
	A, B     float64
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f: %s A=%.9f > B=%.9f", v.Time, v.Quantity, v.A, v.B)
}

// DominanceReport is the outcome of a coupled two-policy run.
type DominanceReport struct {
	PolicyA, PolicyB string
	Checked          int
	Violations       []Violation
	// Final response-time sums let callers compare aggregate performance
	// on the coupled trace.
	SumRespA, SumRespB float64
	CompletedA         int
	CompletedB         int
}

// Dominates reports whether policy A's total and class-0 work never
// exceeded policy B's on the coupled sample path.
func (r DominanceReport) Dominates() bool { return len(r.Violations) == 0 }

// CompareWork runs policies a and b in lockstep over the same arrival
// sequence (same times, same classes, same sizes — the coupling of
// Theorem 3) on the two-class preset and checks, at every event time of
// either system, that
//
//	W_a(t) <= W_b(t)   and   W_{I,a}(t) <= W_{I,b}(t).
//
// Both work processes are piecewise linear between events, so agreement at
// all event epochs of the union grid implies agreement at all times.
// Arrivals must be time-ordered. tol absorbs floating-point noise.
func CompareWork(k int, arrivals []Arrival, a, b Policy, tol float64) DominanceReport {
	return CompareWorkClasses(k, TwoClassSpecs(), arrivals, a, b, tol)
}

// CompareWorkClasses is CompareWork over an arbitrary class set: the coupled
// sample-path driver compares total work W(t) and the work of class 0 (the
// least flexible class in the canonical orderings, playing the role of W_I
// in Theorem 3).
func CompareWorkClasses(k int, classes []ClassSpec, arrivals []Arrival, a, b Policy, tol float64) DominanceReport {
	sysA := NewClassSystem(k, classes, a)
	sysB := NewClassSystem(k, classes, b)
	rep := DominanceReport{PolicyA: a.Name(), PolicyB: b.Name()}

	idx := 0
	check := func(t float64) {
		rep.Checked++
		if wa, wb := sysA.Work(), sysB.Work(); wa > wb+tol {
			rep.Violations = append(rep.Violations, Violation{Time: t, Quantity: "W", A: wa, B: wb})
		}
		if wa, wb := sysA.WorkClass(0), sysB.WorkClass(0); wa > wb+tol {
			rep.Violations = append(rep.Violations, Violation{Time: t, Quantity: "W_I", A: wa, B: wb})
		}
	}

	for {
		tArr := math.Inf(1)
		if idx < len(arrivals) {
			tArr = arrivals[idx].Time
		}
		tNext := math.Min(tArr, math.Min(sysA.NextEventTime(), sysB.NextEventTime()))
		if math.IsInf(tNext, 1) {
			break
		}
		for _, c := range sysA.AdvanceTo(tNext) {
			rep.SumRespA += c.Response()
			rep.CompletedA++
		}
		for _, c := range sysB.AdvanceTo(tNext) {
			rep.SumRespB += c.Response()
			rep.CompletedB++
		}
		check(tNext)
		if tNext == tArr {
			sysA.Arrive(arrivals[idx])
			sysB.Arrive(arrivals[idx])
			idx++
			check(tNext)
		}
	}
	return rep
}
