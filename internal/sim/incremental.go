package sim

// The incremental stepping engine (Options.Engine = EngineIncremental):
// per-event cost O(changed jobs · log n) instead of the rebuild engine's
// O(n), built from three pieces.
//
//  1. Lazy work depletion. Each job carries its current rate and the time
//     its Remaining was last settled (Job.updated); the rebuild engine's
//     full advanceWork scan disappears. Remaining is settled only when the
//     job's rate changes, when it completes, or when a dense (non-sparse)
//     policy is about to run and may read it.
//  2. An indexed future-event list (eventq.IndexedQueue), keyed by arena
//     handle. A rate change reschedules the job's one entry in place; a
//     preemption to zero removes it — the heap holds exactly the jobs with
//     a completion in sight, so it stays O(active set) deep under the
//     sparse paths however large the backlog grows, with no stale entries
//     to filter or compact. The class-share path does not use it at all:
//     its one-event-per-class structure lives in a flat per-class array of
//     armed times (classshare.go).
//  3. Policy change-sets. Policies implementing SparsePolicy report the
//     full set of jobs holding a nonzero share as an explicit write-set
//     (ShareSet). For the strict-priority family that set has at most
//     ~k + #classes entries regardless of occupancy, so diffing it against
//     the previous event's active set touches O(changed) jobs. EQUI-style
//     policies (uniform shares within a class) use the class-share path
//     instead (classshare.go): per-class virtual-time coordinates and one
//     head event per class, O(#classes) per event. SRPT-style policies
//     (RemainingOrderedPolicy) run on an engine-native indexed heap over
//     remaining sizes (srpt_inc.go), O(k log n) per event. Policies with
//     none of these facets — and every policy under Options.ForceDense or
//     SIM_FORCE_DENSE — fall back to a dense path: settle every job, run
//     Allocate on zeroed buffers, diff every entry. That is O(n) per event
//     but produces identical decisions, so every policy is correct under
//     either engine; the dense fallback doubles as the oracle the
//     differential test harness diffs all fast paths against.
//
// Per-class aggregates (incRate, incWork, incTotal) replace the metrics
// integrator's per-job scans; they are renormalized to exact zero whenever
// the system empties so floating-point dust cannot accumulate across busy
// periods.
//
// Determinism: the engine is exactly reproducible (its golden set pins it
// bit for bit), but it is NOT bit-identical to the rebuild engine. The
// rebuild engine re-derives every completion time from freshly depleted
// remaining work at every event; reproducing those roundings requires the
// very O(n) scan this engine removes. The two engines agree to ~1e-12
// relative — the cross-engine equivalence suite pins identical completion
// ID sequences and statistics to 1e-9.

import (
	"fmt"
	"math"
)

// ShareWrite is one entry of a sparse allocation: a job and its server
// share.
type ShareWrite struct {
	Job   *Job
	Share float64
}

// ShareSet receives a policy's sparse allocation: one Add per job that
// should hold a nonzero share this event. Jobs not added drop to zero.
// The backing storage is owned by the engine and reused across events.
// The served-class guard is epoch-stamped: reset bumps one counter instead
// of re-zeroing a per-class slice on every event.
type ShareSet struct {
	writes []ShareWrite
	served []uint64
	epoch  uint64
	// exhaustedAt is the policy-reported walk position at which the server
	// budget ran out this event (MarkExhausted), or -1 when the walk ended
	// with budget to spare. It is the policy's own decision — not a float
	// recomputation — which is what lets the shadowed-arrival fast path
	// (ArrivalShadowPolicy) stay bit-exact.
	exhaustedAt int
}

// Add records that j should receive share servers. A job must be added at
// most once per event; the engine panics on duplicates.
func (ws *ShareSet) Add(j *Job, share float64) {
	ws.writes = append(ws.writes, ShareWrite{Job: j, Share: share})
}

// Served reports whether MarkServed was called for class c this event —
// the sparse counterpart of the dense allocator's duplicate-order guard.
func (ws *ShareSet) Served(c int) bool { return ws.served[c] == ws.epoch }

// MarkServed flags class c as already walked this event.
func (ws *ShareSet) MarkServed(c int) { ws.served[c] = ws.epoch }

// MarkExhausted records that the policy's walk ran out of server budget at
// walk position pos (policy-defined; for the class-priority family it is
// the index into the class walk order). Every job the walk would have
// visited at or after this position received nothing. Policies implementing
// ArrivalShadowPolicy must call it exactly when their early-out triggers.
func (ws *ShareSet) MarkExhausted(pos int) { ws.exhaustedAt = pos }

// reset prepares the set for a new event: a fresh epoch invalidates every
// old MarkServed stamp in O(1) (stamps start at zero, epochs at one, so a
// brand-new slice is never spuriously served).
func (ws *ShareSet) reset(numClasses int) {
	ws.writes = ws.writes[:0]
	ws.exhaustedAt = -1
	ws.epoch++
	if cap(ws.served) < numClasses {
		ws.served = make([]uint64, numClasses)
	}
	ws.served = ws.served[:numClasses]
}

// SparsePolicy is an optional Policy extension consumed by the incremental
// engine. AllocateSparse must report exactly the jobs that Allocate would
// give a nonzero share, with the same shares — the cross-engine equivalence
// suite holds the two faces of every policy together. Implementations must
// be size-blind: Job.Remaining is NOT settled before AllocateSparse runs.
// Policies whose decision depends on n jobs at once should implement one of
// the structure-specific facets instead: ClassSharePolicy when shares are
// uniform within each class (EQUI's water-filling), or
// RemainingOrderedPolicy when the rule is ascending settled remaining size
// (SRPT-k). Policies with no facet at all run on the engine's dense
// fallback.
type SparsePolicy interface {
	Policy
	AllocateSparse(st *State, ws *ShareSet)
}

// ArrivalShadowPolicy is an optional SparsePolicy extension for policies
// that can prove an arrival leaves their decision untouched. A new arrival
// always joins the tail of its class's FCFS queue; if the policy's last
// walk ran out of budget at or before the point where that tail would be
// visited, the new job is shadowed — it receives nothing and no other
// job's share moves, so the engine skips the policy rerun entirely.
//
// ArrivalShadowed is consulted with exhaustedAt = the position the last
// AllocateSparse reported via ShareSet.MarkExhausted (never -1), and must
// answer from that mark alone: "is the tail of class c's queue at or after
// walk position exhaustedAt?" The engine only asks while the last applied
// write-set is still in force (no completion intervened), so the mark
// still describes the live allocation. Profiling note: on the N=10k
// occupancy benchmark this removes the full policy walk + write-set
// compare that every arrival-refresh otherwise pays just to discover
// nothing changed.
type ArrivalShadowPolicy interface {
	SparsePolicy
	ArrivalShadowed(st *State, exhaustedAt int, c Class) bool
}

// settleJob brings j.Remaining up to the current clock under its rate.
func (s *System) settleJob(j *Job) {
	if j.updated == s.clock {
		return
	}
	if j.rate > 0 {
		// Branch instead of math.Max (not inlined); operands are never NaN
		// or -0, so this is bit-identical.
		rem := j.Remaining - j.rate*(s.clock-j.updated)
		if rem < 0 {
			rem = 0
		}
		j.Remaining = rem
	}
	j.updated = s.clock
}

// settleAll settles every resident job — the dense-fallback prelude so a
// size-aware policy (SRPT) reads exact remaining sizes.
func (s *System) settleAll() {
	for _, q := range s.queues {
		for _, j := range q {
			s.settleJob(j)
		}
	}
}

// setShare applies one allocation change: settle the job at the boundary,
// update the class aggregates, bump the job's generation and push its fresh
// completion event. A no-op when the share is unchanged, which is what
// keeps the per-event work proportional to the change-set.
func (s *System) setShare(j *Job, a float64) {
	if a == j.servers {
		return
	}
	s.settleJob(j)
	rate := a
	if !s.idRate[j.Class] {
		rate = s.classes[j.Class].Speedup.Rate(a)
	}
	s.incTotal += a - j.servers
	s.incRate[j.Class] += rate - j.rate
	j.servers = a
	j.rate = rate
	switch {
	case j.Remaining <= 0:
		// Fully depleted but not yet removed (an allocation change landed
		// exactly on the finish time): completes immediately, like the
		// rebuild engine's zero-remaining Append.
		s.ievq.Set(s.clock, j.handle)
	case rate > 0:
		s.ievq.Set(s.clock+j.Remaining/rate, j.handle)
	default:
		// Preempted to zero with work left: no completion is in sight until
		// the job is served again.
		s.ievq.Remove(j.handle)
	}
}

// refreshAllocationInc re-runs the policy if the job set changed, through
// the fastest protocol the policy supports: the class-share path, the
// engine-native remaining-size path, the sparse write-set protocol, or the
// dense diff fallback.
func (s *System) refreshAllocationInc() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	s.st.Time = s.clock
	s.st.Queues = s.queues
	switch {
	case s.cs != nil:
		s.cs.refresh(s)
	case s.srpt != nil:
		s.srpt.refresh(s)
	case s.sparse != nil:
		s.incWrites.reset(len(s.classes))
		s.sparse.AllocateSparse(&s.st, &s.incWrites)
		s.applySparse()
	default:
		s.settleAll()
		for c, q := range s.queues {
			s.alloc.Classes[c] = resizeZero(s.alloc.Classes[c], len(q))
		}
		s.policy.Allocate(&s.st, &s.alloc)
		s.applyDense()
	}
	if s.incTotal > float64(s.k)+1e-6 {
		panic(fmt.Sprintf("sim: policy %s allocated %v servers on a %d-server system", s.policy.Name(), s.incTotal, s.k))
	}
	s.metrics.busyRate = min(s.incTotal, float64(s.k))
}

// applySparse diffs the policy's write-set against the previous active set.
// When the raw write-set is byte-identical to the one it applied last time
// and no completion has intervened, the decision is proven unchanged and
// the whole diff (round stamps, bounds checks, active-set rebuild) is
// skipped — the shape of every refresh that follows an arrival into a deep
// backlog.
func (s *System) applySparse() {
	const eps = 1e-9
	w := s.incWrites.writes
	if s.incPrevValid && len(w) == len(s.incPrev) {
		same := true
		for i := range w {
			if w[i] != s.incPrev[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	s.incRound++
	next := s.incActiveBuf[:0]
	for c := range s.incServed {
		s.incServed[c] = 0
	}
	for i := range w {
		j := w[i].Job
		if j.round == s.incRound {
			panic(fmt.Sprintf("sim: policy %s allocated job %d twice in one event", s.policy.Name(), j.ID))
		}
		j.round = s.incRound
		capC := s.caps[j.Class]
		a := w[i].Share
		if a < -eps || a > capC+eps {
			panic(fmt.Sprintf("sim: policy %s allocated %v servers to a %s-class job (cap %v)",
				s.policy.Name(), a, s.classes[j.Class].Speedup, capC))
		}
		// Inline setShare's no-change fast path: most written jobs keep the
		// share they already hold (the continuing served prefix), and the
		// compare here skips the call entirely.
		if a = clamp(a, 0, capC); a != j.servers {
			s.setShare(j, a)
		}
		if j.servers > 0 {
			next = append(next, j)
			s.incServed[j.Class]++
		}
	}
	// Jobs that held servers last event but were not written this event
	// drop to zero.
	for _, j := range s.incActive {
		if j.round != s.incRound {
			s.setShare(j, 0)
		}
	}
	s.incActive, s.incActiveBuf = next, s.incActive[:0]
	// Swap the write-set backing into the memo (and hand the memo's old
	// backing to the next AllocateSparse) instead of copying it.
	s.incPrev, s.incWrites.writes = w, s.incPrev[:0]
	s.incPrevValid = true
}

// applyDense diffs a fully materialized Allocation (the rebuild-style
// buffer) against every job's previous share — O(n), the correctness
// fallback for policies without a SparsePolicy facet.
func (s *System) applyDense() {
	const eps = 1e-9
	for c, q := range s.queues {
		capC := s.caps[c]
		for i, j := range q {
			a := s.alloc.Classes[c][i]
			if a < -eps || a > capC+eps {
				panic(fmt.Sprintf("sim: policy %s allocated %v servers to a %s-class job (cap %v)",
					s.policy.Name(), a, s.classes[c].Speedup, capC))
			}
			s.setShare(j, clamp(a, 0, capC))
		}
	}
}

// peekLive returns the next completion event without removing it, or
// (nil, +Inf) when nothing is running. The indexed queue (and the
// class-share path's per-class head times) hold no stale entries, so there
// is nothing to filter.
func (s *System) peekLive() (*Job, float64) {
	if s.cs != nil {
		return s.cs.peekNext(s)
	}
	if s.ievq.Empty() {
		return nil, math.Inf(1)
	}
	h, t := s.ievq.Peek()
	return s.jobs.at(h), t
}

// popEvent consumes the event peekLive returned. Under the class-share path
// the armed head time stays in place — cs.complete retires it when the
// completion is processed.
func (s *System) popEvent() {
	if s.cs == nil {
		s.ievq.Pop()
	}
}

// advanceTimeInc integrates metrics and the per-class aggregates up to t
// with no completion in between — O(#classes), no per-job work. The metric
// integrals and the aggregate depletion run fused in one per-class pass
// (the per-class terms are independent, so the fusion is bit-invisible);
// the integrals are the same segment formulas the rebuild engine computes
// from per-job scans, here read off the maintained aggregates.
func (s *System) advanceTimeInc(t float64) {
	dt := t - s.clock
	if dt <= 0 {
		return
	}
	m := &s.metrics
	for c := range s.incWork {
		// A class with no jobs, no residual work and no rate dust
		// contributes exactly zero to every term below — skipping it is
		// bit-identical, and a never-occupied class skips every event.
		if s.incWork[c] == 0 && s.incRate[c] == 0 && len(s.queues[c]) == 0 {
			continue
		}
		m.areaN[c] += float64(len(s.queues[c])) * dt
		// Between events the class's work declines linearly at its total
		// service rate: trapezoid rule with a constant depletion rate.
		m.areaW[c] += (s.incWork[c] - 0.5*s.incRate[c]*dt) * dt
		w := s.incWork[c] - s.incRate[c]*dt
		if w < 0 {
			w = 0
		}
		s.incWork[c] = w
	}
	m.areaBusy += m.busyRate * dt
	m.elapsed += dt
	if m.TrackOccupancy {
		key := [2]int{min(s.NumClass(0), occupancyCap), min(s.NumClass(1), occupancyCap)}
		m.occupancy[key] += dt
	}
	if s.cs != nil {
		s.cs.advance(dt)
	}
	s.clock = t
}

// arriveInc registers a fresh arrival with the active specialized mode.
func (s *System) arriveInc(j *Job) {
	switch {
	case s.cs != nil:
		s.cs.arrive(s, j)
	case s.srpt != nil:
		s.srpt.arrive(s, j)
	}
}

// completeInc finishes j at the current clock: settle, remove, record,
// recycle. The caller has already popped (or never armed) the job's event
// entry, so its handle leaves the engine with no event referencing it.
func (s *System) completeInc(j *Job) {
	if s.sparse != nil {
		// Warm the about-to-be-promoted jobs: the refresh that follows this
		// completion walks the first unserved job of some class (profiling
		// shows its cold Job struct dominating the sparse event cost at deep
		// backlogs). Starting the loads here overlaps their memory latency
		// with the completion bookkeeping and the policy walk. Heuristic
		// reads only — no simulation state depends on them.
		sink := s.prefetchSink
		for c, q := range s.queues {
			if n := int(s.incServed[c]); n < len(q) {
				sink += q[n].round
			}
		}
		s.prefetchSink = sink
	}
	if s.cs != nil {
		// Class-share jobs carry no per-job rate; their residual is derived
		// from the class coordinate and the class aggregates shrink by one
		// job's worth inside the mode hook.
		s.cs.complete(s, j)
	} else {
		s.settleJob(j)
		if s.srpt != nil {
			s.srpt.complete(s, j)
		}
	}
	// The event time was computed from the job's anchor, so the settled
	// residual is floating-point dust; fold it out of the class aggregate
	// so aggregates keep tracking the live set exactly.
	if w := s.incWork[j.Class] - j.Remaining; w > 0 {
		s.incWork[j.Class] = w
	} else {
		s.incWork[j.Class] = 0
	}
	j.Remaining = 0
	s.incTotal -= j.servers
	s.incRate[j.Class] -= j.rate
	s.metrics.busyRate = min(max(s.incTotal, 0), float64(s.k))
	j.servers, j.rate = 0, 0
	// Shares changed outside applySparse, so its last-writes memo is stale.
	s.incPrevValid = false
	q := s.queues[j.Class]
	switch {
	case s.orderBlind:
		// Order-blind modes maintain qpos, so departures swap-remove O(1).
		if int(j.qpos) >= len(q) || q[j.qpos] != j {
			panic("sim: queue position out of sync")
		}
		last := len(q) - 1
		moved := q[last]
		q[j.qpos] = moved
		moved.qpos = j.qpos
		s.queues[j.Class] = q[:last]
	case len(q) > 0 && q[0] == j:
		// FCFS-within-class completions leave from the head: O(1) by
		// advancing the window (pushQueue slides it home in place once
		// enough of the backing is abandoned, so no reallocation ever).
		s.queues[j.Class] = q[1:]
		s.qoff[j.Class]++
	default:
		if !s.removeJobQueue(j.Class, j) {
			panic("sim: completing job not found in system")
		}
	}
	if s.sparse != nil || s.srpt != nil {
		for i, a := range s.incActive {
			if a == j {
				last := len(s.incActive) - 1
				s.incActive[i] = s.incActive[last]
				s.incActive = s.incActive[:last]
				break
			}
		}
	}
	s.appendCompletion(j)
	if s.numJobs == 0 {
		// Renormalize at regeneration points so floating-point dust never
		// outlives a busy period.
		s.incTotal = 0
		s.metrics.busyRate = 0
		for c := range s.incRate {
			s.incRate[c], s.incWork[c] = 0, 0
		}
	}
}

// advanceToInc is AdvanceTo under the incremental engine: identical event
// semantics (completions in (clock, t], including ones landing exactly on
// the clock or on t), different bookkeeping.
func (s *System) advanceToInc(t float64) []Completion {
	s.records = s.records[:0]
	for {
		s.refreshAllocationInc()
		j, tc := s.peekLive()
		if j != nil && tc <= t {
			s.popEvent()
			s.advanceTimeInc(tc)
			s.completeInc(j)
			// Batch simultaneous completions: rates cannot change until the
			// policy re-runs, so every other live event at exactly tc is
			// already decided — complete them all now and re-invoke the
			// policy once for the whole timestamp instead of once per event.
			// Exact-time ties are what batch/fork-join workloads produce.
			for {
				j2, tc2 := s.peekLive()
				if j2 == nil || tc2 != tc {
					break
				}
				s.popEvent()
				s.completeInc(j2)
			}
			// Class-share refresh deferral: when the advance ends exactly at
			// this batch's timestamp and every surviving class head is
			// provably clear of the completion coordinate, the policy re-run
			// cannot produce another completion inside this AdvanceTo — so
			// it waits for the next stepping call, where it merges with the
			// refresh that call performs anyway (allocDirty stays set). For
			// the completion-then-arrival-at-the-same-instant shape of
			// lockstep drivers this halves the policy work per event.
			if s.cs != nil && tc == t && s.cs.deferSafe(s) {
				break
			}
			continue
		}
		if s.clock < t {
			s.advanceTimeInc(t)
		}
		break
	}
	// Clamp accumulated floating error so coupled runs stay aligned.
	s.clock = t
	return s.materializeCompletions()
}

// advanceClockOnlyInc mirrors advanceClockOnly: integrate up to t assuming
// no completion strictly before t; completions exactly at t wait for the
// next AdvanceTo, after the arrival at t has joined the queue.
func (s *System) advanceClockOnlyInc(t float64) {
	for s.clock < t {
		s.refreshAllocationInc()
		j, tc := s.peekLive()
		if j == nil || tc >= t {
			s.advanceTimeInc(t)
			break
		}
		s.popEvent()
		s.advanceTimeInc(tc)
		s.completeInc(j)
	}
	s.clock = t
}

// drainInc mirrors Drain under the incremental engine.
func (s *System) drainInc(horizon float64) []Completion {
	s.records = s.records[:0]
	for s.NumJobs() > 0 && s.clock < horizon {
		s.refreshAllocationInc()
		j, tc := s.peekLive()
		if j == nil || tc > horizon {
			s.advanceTimeInc(horizon)
			s.clock = horizon
			break
		}
		s.popEvent()
		s.advanceTimeInc(tc)
		s.completeInc(j)
	}
	return append([]Completion(nil), s.materializeCompletions()...)
}
