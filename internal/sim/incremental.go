package sim

// The incremental stepping engine (Options.Engine = EngineIncremental):
// per-event cost O(changed jobs · log n) instead of the rebuild engine's
// O(n), built from three pieces.
//
//  1. Lazy work depletion. Each job carries its current rate and the time
//     its Remaining was last settled (Job.updated); the rebuild engine's
//     full advanceWork scan disappears. Remaining is settled only when the
//     job's rate changes, when it completes, or when a dense (non-sparse)
//     policy is about to run and may read it.
//  2. An incremental future-event list. Completion events stay in the
//     internal/eventq heap across steps, stamped with the job's generation
//     (Job.gen). A rate change bumps the generation and pushes one fresh
//     event; entries whose stamp no longer matches are discarded when they
//     surface, and Compact reclaims them in bulk if they ever outnumber
//     live jobs 4:1.
//  3. Policy change-sets. Policies implementing SparsePolicy report the
//     full set of jobs holding a nonzero share as an explicit write-set
//     (ShareSet). For the strict-priority family that set has at most
//     ~k + #classes entries regardless of occupancy, so diffing it against
//     the previous event's active set touches O(changed) jobs. EQUI-style
//     policies (uniform shares within a class) use the class-share path
//     instead (classshare.go): per-class virtual-time coordinates and one
//     head event per class, O(#classes) per event. SRPT-style policies
//     (RemainingOrderedPolicy) run on an engine-native indexed heap over
//     remaining sizes (srpt_inc.go), O(k log n) per event. Policies with
//     none of these facets — and every policy under Options.ForceDense or
//     SIM_FORCE_DENSE — fall back to a dense path: settle every job, run
//     Allocate on zeroed buffers, diff every entry. That is O(n) per event
//     but produces identical decisions, so every policy is correct under
//     either engine; the dense fallback doubles as the oracle the
//     differential test harness diffs all fast paths against.
//
// Per-class aggregates (incRate, incWork, incTotal) replace the metrics
// integrator's per-job scans; they are renormalized to exact zero whenever
// the system empties so floating-point dust cannot accumulate across busy
// periods.
//
// Determinism: the engine is exactly reproducible (its golden set pins it
// bit for bit), but it is NOT bit-identical to the rebuild engine. The
// rebuild engine re-derives every completion time from freshly depleted
// remaining work at every event; reproducing those roundings requires the
// very O(n) scan this engine removes. The two engines agree to ~1e-12
// relative — the cross-engine equivalence suite pins identical completion
// ID sequences and statistics to 1e-9.

import (
	"fmt"
	"math"

	"repro/internal/eventq"
)

// ShareWrite is one entry of a sparse allocation: a job and its server
// share.
type ShareWrite struct {
	Job   *Job
	Share float64
}

// ShareSet receives a policy's sparse allocation: one Add per job that
// should hold a nonzero share this event. Jobs not added drop to zero.
// The backing storage is owned by the engine and reused across events.
type ShareSet struct {
	writes []ShareWrite
	served []bool
}

// Add records that j should receive share servers. A job must be added at
// most once per event; the engine panics on duplicates.
func (ws *ShareSet) Add(j *Job, share float64) {
	ws.writes = append(ws.writes, ShareWrite{Job: j, Share: share})
}

// Served reports whether MarkServed was called for class c this event —
// the sparse counterpart of the dense allocator's duplicate-order guard.
func (ws *ShareSet) Served(c int) bool { return ws.served[c] }

// MarkServed flags class c as already walked this event.
func (ws *ShareSet) MarkServed(c int) { ws.served[c] = true }

// reset prepares the set for a new event.
func (ws *ShareSet) reset(numClasses int) {
	ws.writes = ws.writes[:0]
	if cap(ws.served) < numClasses {
		ws.served = make([]bool, numClasses)
	}
	ws.served = ws.served[:numClasses]
	for i := range ws.served {
		ws.served[i] = false
	}
}

// SparsePolicy is an optional Policy extension consumed by the incremental
// engine. AllocateSparse must report exactly the jobs that Allocate would
// give a nonzero share, with the same shares — the cross-engine equivalence
// suite holds the two faces of every policy together. Implementations must
// be size-blind: Job.Remaining is NOT settled before AllocateSparse runs.
// Policies whose decision depends on n jobs at once should implement one of
// the structure-specific facets instead: ClassSharePolicy when shares are
// uniform within each class (EQUI's water-filling), or
// RemainingOrderedPolicy when the rule is ascending settled remaining size
// (SRPT-k). Policies with no facet at all run on the engine's dense
// fallback.
type SparsePolicy interface {
	Policy
	AllocateSparse(st *State, ws *ShareSet)
}

// settleJob brings j.Remaining up to the current clock under its rate.
func (s *System) settleJob(j *Job) {
	if j.updated == s.clock {
		return
	}
	if j.rate > 0 {
		// Branch instead of math.Max (not inlined); operands are never NaN
		// or -0, so this is bit-identical.
		rem := j.Remaining - j.rate*(s.clock-j.updated)
		if rem < 0 {
			rem = 0
		}
		j.Remaining = rem
	}
	j.updated = s.clock
}

// settleAll settles every resident job — the dense-fallback prelude so a
// size-aware policy (SRPT) reads exact remaining sizes.
func (s *System) settleAll() {
	for _, q := range s.queues {
		for _, j := range q {
			s.settleJob(j)
		}
	}
}

// setShare applies one allocation change: settle the job at the boundary,
// update the class aggregates, bump the job's generation and push its fresh
// completion event. A no-op when the share is unchanged, which is what
// keeps the per-event work proportional to the change-set.
func (s *System) setShare(j *Job, a float64, spec *ClassSpec) {
	if a == j.servers {
		return
	}
	s.settleJob(j)
	rate := a
	if spec.Speedup.kind != speedupLinear && spec.Speedup.kind != speedupCapped {
		rate = spec.Speedup.Rate(a)
	}
	s.incTotal += a - j.servers
	s.incRate[j.Class] += rate - j.rate
	j.servers = a
	j.rate = rate
	j.gen++
	switch {
	case j.Remaining <= 0:
		// Fully depleted but not yet removed (an allocation change landed
		// exactly on the finish time): completes immediately, like the
		// rebuild engine's zero-remaining Append.
		s.evq.PushGen(s.clock, j, j.gen)
	case rate > 0:
		s.evq.PushGen(s.clock+j.Remaining/rate, j, j.gen)
	}
}

// refreshAllocationInc re-runs the policy if the job set changed, through
// the fastest protocol the policy supports: the class-share path, the
// engine-native remaining-size path, the sparse write-set protocol, or the
// dense diff fallback.
func (s *System) refreshAllocationInc() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	s.st.Time = s.clock
	s.st.Queues = s.queues
	switch {
	case s.cs != nil:
		s.cs.refresh(s)
	case s.srpt != nil:
		s.srpt.refresh(s)
	case s.sparse != nil:
		s.incWrites.reset(len(s.classes))
		s.sparse.AllocateSparse(&s.st, &s.incWrites)
		s.applySparse()
	default:
		s.settleAll()
		for c, q := range s.queues {
			s.alloc.Classes[c] = resizeZero(s.alloc.Classes[c], len(q))
		}
		s.policy.Allocate(&s.st, &s.alloc)
		s.applyDense()
	}
	if s.incTotal > float64(s.k)+1e-6 {
		panic(fmt.Sprintf("sim: policy %s allocated %v servers on a %d-server system", s.policy.Name(), s.incTotal, s.k))
	}
	s.metrics.busyRate = math.Min(s.incTotal, float64(s.k))
	// Safety valve: if stale entries outnumber live jobs 4:1, reclaim them
	// in one pass. The closure captures nothing, so this stays
	// allocation-free; dequeue order of live entries is unchanged.
	if n := s.evq.Len(); n > 64 && n > 4*s.NumJobs() {
		s.evq.Compact(func(e eventq.Event[*Job]) bool { return e.Gen == e.Payload.gen })
	}
}

// applySparse diffs the policy's write-set against the previous active set.
func (s *System) applySparse() {
	const eps = 1e-9
	s.incRound++
	next := s.incActiveBuf[:0]
	for i := range s.incWrites.writes {
		w := &s.incWrites.writes[i]
		j := w.Job
		if j.round == s.incRound {
			panic(fmt.Sprintf("sim: policy %s allocated job %d twice in one event", s.policy.Name(), j.ID))
		}
		j.round = s.incRound
		spec := &s.classes[j.Class]
		capC := spec.Cap()
		a := w.Share
		if a < -eps || a > capC+eps {
			panic(fmt.Sprintf("sim: policy %s allocated %v servers to a %s-class job (cap %v)",
				s.policy.Name(), a, spec.Speedup, capC))
		}
		s.setShare(j, clamp(a, 0, capC), spec)
		if j.servers > 0 {
			next = append(next, j)
		}
	}
	// Jobs that held servers last event but were not written this event
	// drop to zero.
	for _, j := range s.incActive {
		if j.round != s.incRound {
			s.setShare(j, 0, &s.classes[j.Class])
		}
	}
	s.incActive, s.incActiveBuf = next, s.incActive[:0]
}

// applyDense diffs a fully materialized Allocation (the rebuild-style
// buffer) against every job's previous share — O(n), the correctness
// fallback for policies without a SparsePolicy facet.
func (s *System) applyDense() {
	const eps = 1e-9
	for c, q := range s.queues {
		spec := &s.classes[c]
		capC := spec.Cap()
		for i, j := range q {
			a := s.alloc.Classes[c][i]
			if a < -eps || a > capC+eps {
				panic(fmt.Sprintf("sim: policy %s allocated %v servers to a %s-class job (cap %v)",
					s.policy.Name(), a, spec.Speedup, capC))
			}
			s.setShare(j, clamp(a, 0, capC), spec)
		}
	}
}

// peekLive returns the next live completion event without removing it,
// discarding stale generations on the way, or (nil, +Inf) when nothing is
// running.
func (s *System) peekLive() (*Job, float64) {
	for !s.evq.Empty() {
		e := s.evq.Peek()
		j := e.Payload
		if e.Gen != j.gen {
			s.evq.Pop()
			continue
		}
		return j, e.Time
	}
	return nil, math.Inf(1)
}

// advanceTimeInc integrates metrics and the per-class aggregates up to t
// with no completion in between — O(#classes), no per-job work.
func (s *System) advanceTimeInc(t float64) {
	dt := t - s.clock
	if dt <= 0 {
		return
	}
	s.metrics.integrateInc(s, dt)
	for c := range s.incWork {
		w := s.incWork[c] - s.incRate[c]*dt
		if w < 0 {
			w = 0
		}
		s.incWork[c] = w
	}
	if s.cs != nil {
		s.cs.advance(dt)
	}
	s.clock = t
}

// arriveInc registers a fresh arrival with the active specialized mode.
func (s *System) arriveInc(j *Job) {
	switch {
	case s.cs != nil:
		s.cs.arrive(s, j)
	case s.srpt != nil:
		s.srpt.arrive(s, j)
	}
}

// completeInc finishes j at the current clock: settle, remove, record,
// recycle. The job's popped heap entry is already gone; the generation bump
// kills any other entries it may still have.
func (s *System) completeInc(j *Job) {
	if s.cs != nil {
		// Class-share jobs carry no per-job rate; their residual is derived
		// from the class coordinate and the class aggregates shrink by one
		// job's worth inside the mode hook.
		s.cs.complete(s, j)
	} else {
		s.settleJob(j)
		if s.srpt != nil {
			s.srpt.complete(s, j)
		}
	}
	// The event time was computed from the job's anchor, so the settled
	// residual is floating-point dust; fold it out of the class aggregate
	// so aggregates keep tracking the live set exactly.
	if w := s.incWork[j.Class] - j.Remaining; w > 0 {
		s.incWork[j.Class] = w
	} else {
		s.incWork[j.Class] = 0
	}
	j.Remaining = 0
	s.incTotal -= j.servers
	s.incRate[j.Class] -= j.rate
	s.metrics.busyRate = math.Min(math.Max(s.incTotal, 0), float64(s.k))
	j.servers, j.rate = 0, 0
	j.gen++
	q := s.queues[j.Class]
	switch {
	case s.orderBlind:
		// Order-blind modes maintain qpos, so departures swap-remove O(1).
		if int(j.qpos) >= len(q) || q[j.qpos] != j {
			panic("sim: queue position out of sync")
		}
		last := len(q) - 1
		moved := q[last]
		q[j.qpos] = moved
		moved.qpos = j.qpos
		q[last] = nil
		s.queues[j.Class] = q[:last]
	case len(q) > 0 && q[0] == j:
		// FCFS-within-class completions leave from the head: O(1) by
		// advancing the slice window (append reuses the tail capacity, so
		// reallocation is amortized O(1/n) per event).
		q[0] = nil
		s.queues[j.Class] = q[1:]
	default:
		var removed bool
		s.queues[j.Class], removed = removeJob(q, j)
		if !removed {
			panic("sim: completing job not found in system")
		}
	}
	if s.sparse != nil || s.srpt != nil {
		for i, a := range s.incActive {
			if a == j {
				last := len(s.incActive) - 1
				s.incActive[i] = s.incActive[last]
				s.incActive[last] = nil
				s.incActive = s.incActive[:last]
				break
			}
		}
	}
	s.completionsBuf = append(s.completionsBuf, Completion{Job: *j, Finished: s.clock})
	s.metrics.recordCompletion(j, s.clock)
	s.free = append(s.free, j)
	s.allocDirty = true
	if s.NumJobs() == 0 {
		// Renormalize at regeneration points so floating-point dust never
		// outlives a busy period.
		s.incTotal = 0
		s.metrics.busyRate = 0
		for c := range s.incRate {
			s.incRate[c], s.incWork[c] = 0, 0
		}
	}
}

// advanceToInc is AdvanceTo under the incremental engine: identical event
// semantics (completions in (clock, t], including ones landing exactly on
// the clock or on t), different bookkeeping.
func (s *System) advanceToInc(t float64) []Completion {
	s.completionsBuf = s.completionsBuf[:0]
	for {
		s.refreshAllocationInc()
		j, tc := s.peekLive()
		if j != nil && tc <= t {
			s.evq.Pop()
			s.advanceTimeInc(tc)
			s.completeInc(j)
			// Batch simultaneous completions: rates cannot change until the
			// policy re-runs, so every other live event at exactly tc is
			// already decided — complete them all now and re-invoke the
			// policy once for the whole timestamp instead of once per event.
			// Exact-time ties are what batch/fork-join workloads produce.
			for {
				j2, tc2 := s.peekLive()
				if j2 == nil || tc2 != tc {
					break
				}
				s.evq.Pop()
				s.completeInc(j2)
			}
			continue
		}
		if s.clock < t {
			s.advanceTimeInc(t)
		}
		break
	}
	// Clamp accumulated floating error so coupled runs stay aligned.
	s.clock = t
	return s.completionsBuf
}

// advanceClockOnlyInc mirrors advanceClockOnly: integrate up to t assuming
// no completion strictly before t; completions exactly at t wait for the
// next AdvanceTo, after the arrival at t has joined the queue.
func (s *System) advanceClockOnlyInc(t float64) {
	for s.clock < t {
		s.refreshAllocationInc()
		j, tc := s.peekLive()
		if j == nil || tc >= t {
			s.advanceTimeInc(t)
			break
		}
		s.evq.Pop()
		s.advanceTimeInc(tc)
		s.completeInc(j)
	}
	s.clock = t
}

// drainInc mirrors Drain under the incremental engine.
func (s *System) drainInc(horizon float64) []Completion {
	var all []Completion
	for s.NumJobs() > 0 && s.clock < horizon {
		s.refreshAllocationInc()
		j, tc := s.peekLive()
		if j == nil || tc > horizon {
			s.advanceTimeInc(horizon)
			s.clock = horizon
			break
		}
		s.evq.Pop()
		s.advanceTimeInc(tc)
		s.completionsBuf = s.completionsBuf[:0]
		s.completeInc(j)
		all = append(all, s.completionsBuf...)
	}
	return all
}
