package sim_test

// The incremental engine's own frozen golden set. The rebuild goldens
// (golden_test.go) pin the historical engine bit for bit; the incremental
// engine is deterministic but rounds differently (it does not re-derive
// completion times at every event — that per-event re-derivation IS the
// O(n) cost it removes), so it gets separate files. Regenerate with
//
//	go test ./internal/sim -run TestGoldenIncremental -update
//
// only for an intentional semantic change to the incremental engine, and
// say so loudly in the PR. Agreement BETWEEN the engines is pinned
// separately, to 1e-9, by engine_equiv_test.go.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestGoldenIncrementalTraces replays the same frozen 3000-arrival trace as
// the rebuild goldens under the incremental engine and demands bit-identical
// completion sequences and aggregate statistics across runs.
func TestGoldenIncrementalTraces(t *testing.T) {
	for _, polName := range goldenPolicies {
		t.Run(polName, func(t *testing.T) {
			got := computeGoldenTraceEngine(t, polName, sim.EngineIncremental)
			name := "golden_inc_trace_" + sanitize(polName) + ".json"
			if *update {
				writeGolden(t, name, got)
				return
			}
			var want goldenTrace
			readGolden(t, name, &want)
			if got.Count != want.Count {
				t.Fatalf("completions: got %d, want %d", got.Count, want.Count)
			}
			for _, pair := range [][3]string{
				{"MeanT", got.MeanT, want.MeanT},
				{"MeanTI", got.MeanTI, want.MeanTI},
				{"MeanTE", got.MeanTE, want.MeanTE},
				{"MeanN", got.MeanN, want.MeanN},
				{"MeanW", got.MeanW, want.MeanW},
				{"Utilization", got.Utilization, want.Utilization},
			} {
				if pair[1] != pair[2] {
					t.Errorf("%s: got %s, want %s", pair[0], pair[1], pair[2])
				}
			}
			if len(got.Completions) != len(want.Completions) {
				t.Fatalf("trace prefix length: got %d, want %d", len(got.Completions), len(want.Completions))
			}
			for i := range want.Completions {
				if got.Completions[i] != want.Completions[i] {
					t.Fatalf("completion %d: got %+v, want %+v", i, got.Completions[i], want.Completions[i])
				}
			}
		})
	}
}

// TestGoldenIncrementalRunPipeline freezes the warmup/measurement driver
// output under the incremental engine (the path exp uses when
// Sweep.Engine = "incremental").
func TestGoldenIncrementalRunPipeline(t *testing.T) {
	type cell struct {
		Policy      string `json:"policy"`
		MuI         string `json:"muI"`
		MeanT       string `json:"meanT"`
		MeanTI      string `json:"meanTI"`
		MeanTE      string `json:"meanTE"`
		MeanN       string `json:"meanN"`
		Completions int64  `json:"completions"`
	}
	var got []cell
	for _, muI := range []float64{0.5, 2.0} {
		for _, polName := range []string{"IF", "EF"} {
			model := workload.ModelForLoad(4, 0.7, muI, 1.0)
			pol, err := core.System{K: 4, LambdaI: model.LambdaI, LambdaE: model.LambdaE,
				MuI: model.MuI, MuE: model.MuE}.PolicyByName(polName)
			if err != nil {
				t.Fatal(err)
			}
			res := sim.Run(sim.RunConfig{
				K: 4, Policy: pol, Source: model.Source(7),
				WarmupJobs: 1000, MaxJobs: 10_000,
				Engine: sim.EngineIncremental,
			})
			got = append(got, cell{
				Policy: polName, MuI: hex(muI),
				MeanT: hex(res.MeanT), MeanTI: hex(res.MeanTI), MeanTE: hex(res.MeanTE),
				MeanN: hex(res.MeanN), Completions: res.Completions,
			})
		}
	}
	const name = "golden_inc_run_cells.json"
	if *update {
		writeGolden(t, name, got)
		return
	}
	var want []cell
	readGolden(t, name, &want)
	if len(got) != len(want) {
		t.Fatalf("cells: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
