package sim

import (
	"math"
	"testing"
)

// ifPolicy is a minimal Inelastic-First implementation local to this test
// package (the full policy set lives in internal/policy; duplicating three
// lines here avoids an import cycle between the packages' tests).
type ifPolicy struct{}

func (ifPolicy) Name() string { return "IF-test" }

func (ifPolicy) Allocate(st *State, alloc *Allocation) {
	remaining := float64(st.K)
	for i := range st.Queues[Inelastic] {
		if remaining <= 0 {
			break
		}
		alloc.Classes[Inelastic][i] = 1
		remaining--
	}
	if remaining > 0 && len(st.Queues[Elastic]) > 0 {
		alloc.Classes[Elastic][0] = remaining
	}
}

type efPolicy struct{}

func (efPolicy) Name() string { return "EF-test" }

func (efPolicy) Allocate(st *State, alloc *Allocation) {
	if len(st.Queues[Elastic]) > 0 {
		alloc.Classes[Elastic][0] = float64(st.K)
		return
	}
	for i := range st.Queues[Inelastic] {
		if i >= st.K {
			break
		}
		alloc.Classes[Inelastic][i] = 1
	}
}

func TestHandComputedScheduleIF(t *testing.T) {
	// k=2; inelastic size 1 and elastic size 2 both arrive at t=0.
	// IF: inelastic on 1 server finishes at 1; elastic runs at rate 1
	// until t=1 (1 unit done), then rate 2, finishing at 1.5.
	sys := NewSystem(2, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	sys.Arrive(Arrival{Time: 0, Class: Elastic, Size: 2})
	done := sys.Drain(100)
	if len(done) != 2 {
		t.Fatalf("completed %d jobs", len(done))
	}
	if done[0].Job.Class != Inelastic || math.Abs(done[0].Finished-1) > 1e-9 {
		t.Fatalf("first completion %+v", done[0])
	}
	if done[1].Job.Class != Elastic || math.Abs(done[1].Finished-1.5) > 1e-9 {
		t.Fatalf("second completion %+v", done[1])
	}
}

func TestHandComputedScheduleEF(t *testing.T) {
	// Same instance under EF: elastic on both servers finishes at 1;
	// inelastic waits, then finishes at 2.
	sys := NewSystem(2, efPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	sys.Arrive(Arrival{Time: 0, Class: Elastic, Size: 2})
	done := sys.Drain(100)
	if len(done) != 2 {
		t.Fatalf("completed %d jobs", len(done))
	}
	if done[0].Job.Class != Elastic || math.Abs(done[0].Finished-1) > 1e-9 {
		t.Fatalf("first completion %+v", done[0])
	}
	if done[1].Job.Class != Inelastic || math.Abs(done[1].Finished-2) > 1e-9 {
		t.Fatalf("second completion %+v", done[1])
	}
}

func TestPreemptionMidFlight(t *testing.T) {
	// k=1, IF: an elastic job of size 2 runs alone; at t=0.5 an inelastic
	// job of size 1 arrives and preempts it until t=1.5; the elastic job
	// resumes and finishes at 1.5 + 1.5 = 3.
	sys := NewSystem(1, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Elastic, Size: 2})
	got := sys.AdvanceTo(0.5)
	if len(got) != 0 {
		t.Fatal("unexpected completion before 0.5")
	}
	sys.Arrive(Arrival{Time: 0.5, Class: Inelastic, Size: 1})
	done := sys.Drain(100)
	if len(done) != 2 {
		t.Fatalf("completed %d jobs", len(done))
	}
	if done[0].Job.Class != Inelastic || math.Abs(done[0].Finished-1.5) > 1e-9 {
		t.Fatalf("inelastic completion %+v", done[0])
	}
	if math.Abs(done[1].Finished-3) > 1e-9 {
		t.Fatalf("elastic completion %+v", done[1])
	}
}

func TestResponseTimes(t *testing.T) {
	sys := NewSystem(2, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	sys.Arrive(Arrival{Time: 0, Class: Elastic, Size: 2})
	sys.Drain(100)
	m := sys.Metrics()
	if got := m.MeanResponse(Inelastic); math.Abs(got-1) > 1e-9 {
		t.Fatalf("inelastic E[T] %v", got)
	}
	if got := m.MeanResponse(Elastic); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("elastic E[T] %v", got)
	}
	if got := m.MeanResponseAll(); math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("overall E[T] %v", got)
	}
}

func TestWorkAccounting(t *testing.T) {
	sys := NewSystem(4, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 3})
	sys.Arrive(Arrival{Time: 0, Class: Elastic, Size: 5})
	if got := sys.Work(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("initial work %v", got)
	}
	sys.AdvanceTo(1)
	// One inelastic server + three elastic servers = rate 4 for 1 unit
	// of time: 8 - 4 = 4 remaining.
	if got := sys.Work(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("work after 1s %v", got)
	}
	if got := sys.WorkInelastic(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("inelastic work %v", got)
	}
}

func TestTimeAverages(t *testing.T) {
	// One inelastic job of size 2 on k=1 from t=0 to t=2; observe to t=4.
	sys := NewSystem(1, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 2})
	sys.AdvanceTo(4)
	m := sys.Metrics()
	// N(t)=1 on [0,2), 0 on [2,4): time-average 0.5.
	if got := m.MeanJobs(Inelastic); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mean jobs %v", got)
	}
	// W(t) decreases linearly 2->0 over [0,2): integral 2; average 0.5.
	if got := m.MeanWork(Inelastic); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mean work %v", got)
	}
	// Busy 1 server half the time.
	if got := m.Utilization(1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization %v", got)
	}
}

func TestArrivalDuringAdvance(t *testing.T) {
	// Arrive with a timestamp beyond the current clock: the engine must
	// integrate the gap before injecting.
	sys := NewSystem(1, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	sys.Arrive(Arrival{Time: 5, Class: Inelastic, Size: 1})
	if sys.Clock() != 5 {
		t.Fatalf("clock %v after timestamped arrival", sys.Clock())
	}
	// First job completed at t=1 during the implicit advance.
	if sys.NumJobs() != 1 {
		t.Fatalf("jobs in system %d", sys.NumJobs())
	}
	done := sys.Drain(100)
	if len(done) != 1 || math.Abs(done[0].Finished-6) > 1e-9 {
		t.Fatalf("drain completions %+v", done)
	}
	if got := sys.Metrics().TotalCompletions(); got != 2 {
		t.Fatalf("metrics completions %d", got)
	}
}

func TestAdvanceToPastPanics(t *testing.T) {
	sys := NewSystem(1, ifPolicy{})
	sys.AdvanceTo(5)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	sys.AdvanceTo(1)
}

func TestInvalidArrivalPanics(t *testing.T) {
	sys := NewSystem(1, ifPolicy{})
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive size did not panic")
		}
	}()
	sys.Arrive(Arrival{Time: 0, Class: Elastic, Size: 0})
}

type overAllocPolicy struct{}

func (overAllocPolicy) Name() string { return "over" }

func (overAllocPolicy) Allocate(st *State, alloc *Allocation) {
	for i := range st.Queues[Inelastic] {
		alloc.Classes[Inelastic][i] = 1
	}
	for i := range st.Queues[Elastic] {
		alloc.Classes[Elastic][i] = float64(st.K)
	}
}

func TestOverAllocationDetected(t *testing.T) {
	sys := NewSystem(2, overAllocPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	sys.Arrive(Arrival{Time: 0, Class: Elastic, Size: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation not detected")
		}
	}()
	sys.AdvanceTo(0.1)
}

type fatInelasticPolicy struct{}

func (fatInelasticPolicy) Name() string { return "fat" }

func (fatInelasticPolicy) Allocate(st *State, alloc *Allocation) {
	for i := range st.Queues[Inelastic] {
		alloc.Classes[Inelastic][i] = 2 // violates the one-server cap
	}
}

func TestInelasticCapEnforced(t *testing.T) {
	sys := NewSystem(4, fatInelasticPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("inelastic >1 server not detected")
		}
	}()
	sys.AdvanceTo(0.1)
}

func TestResetMetricsKeepsState(t *testing.T) {
	sys := NewSystem(1, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 2})
	sys.AdvanceTo(1)
	sys.ResetMetrics()
	if sys.NumJobs() != 1 {
		t.Fatal("ResetMetrics disturbed system state")
	}
	if sys.Metrics().TotalCompletions() != 0 || sys.Metrics().Elapsed() != 0 {
		t.Fatal("metrics not cleared")
	}
	done := sys.Drain(100)
	if len(done) != 1 || math.Abs(done[0].Finished-2) > 1e-9 {
		t.Fatalf("completion after reset %+v", done)
	}
}

func TestOccupancyHistogram(t *testing.T) {
	sys := NewSystem(1, ifPolicy{})
	sys.Metrics().TrackOccupancy = true
	sys.ResetMetrics()
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	sys.AdvanceTo(2)
	m := sys.Metrics()
	if p := m.OccupancyProb(1, 0); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(1,0) = %v, want 0.5", p)
	}
	if p := m.OccupancyProb(0, 0); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(0,0) = %v, want 0.5", p)
	}
}

func TestFIFOWithinClass(t *testing.T) {
	// Two inelastic jobs on k=1: the earlier one must be served first.
	sys := NewSystem(1, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 1})
	done := sys.Drain(100)
	if done[0].Job.ID != 0 || done[1].Job.ID != 1 {
		t.Fatalf("completion order %v, %v", done[0].Job.ID, done[1].Job.ID)
	}
	if math.Abs(done[0].Finished-1) > 1e-9 || math.Abs(done[1].Finished-2) > 1e-9 {
		t.Fatalf("finish times %v, %v", done[0].Finished, done[1].Finished)
	}
}

func TestDrainHorizon(t *testing.T) {
	sys := NewSystem(1, ifPolicy{})
	sys.Arrive(Arrival{Time: 0, Class: Inelastic, Size: 10})
	done := sys.Drain(3)
	if len(done) != 0 {
		t.Fatal("job should not finish before horizon")
	}
	if sys.Clock() != 3 {
		t.Fatalf("clock %v after bounded drain", sys.Clock())
	}
	if got := sys.Work(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("remaining work %v", got)
	}
}

func TestSortArrivals(t *testing.T) {
	arr := []Arrival{{Time: 3}, {Time: 1}, {Time: 2}}
	SortArrivals(arr)
	if arr[0].Time != 1 || arr[1].Time != 2 || arr[2].Time != 3 {
		t.Fatalf("sorted %v", arr)
	}
}

func TestClassString(t *testing.T) {
	if Inelastic.String() != "inelastic" || Elastic.String() != "elastic" {
		t.Fatal("class strings wrong")
	}
}
