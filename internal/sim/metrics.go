package sim

import "math"

// Metrics accumulates time-average and per-completion statistics for one
// System. Time averages (E[N], E[W], utilization) are exact integrals of the
// piecewise-constant/linear sample paths between events; response-time
// statistics are per completed job. Reset at the end of warmup to discard
// the transient.
type Metrics struct {
	start   float64
	elapsed float64

	// Time integrals.
	areaNI, areaNE float64
	areaWI, areaWE float64
	areaBusy       float64

	// busyRate is the current total allocated server rate, maintained by
	// the engine at each allocation change.
	busyRate float64

	arrivals    [2]int64
	completions [2]int64
	sumResp     [2]float64
	sumRespSq   [2]float64
	maxResp     [2]float64
	// completedWork sums the sizes of completed jobs, closing the
	// conservation ledger arrived = completed + remaining.
	completedWork float64

	// Occupancy histogram over (numInelastic, numElastic), time-weighted.
	// Enabled with TrackOccupancy; states beyond occupancyCap fold into
	// the cap boundary.
	TrackOccupancy bool
	occupancy      map[[2]int]float64
}

const occupancyCap = 4096

// Reset clears all statistics and restarts the observation window at now.
func (m *Metrics) Reset(now float64) {
	track := m.TrackOccupancy
	*m = Metrics{start: now, busyRate: m.busyRate, TrackOccupancy: track}
	if track {
		m.occupancy = make(map[[2]int]float64)
	}
}

func (m *Metrics) integrate(s *System, dt float64) {
	ni, ne := float64(s.NumInelastic()), float64(s.NumElastic())
	m.areaNI += ni * dt
	m.areaNE += ne * dt
	// Between events each class's work declines linearly at its total
	// allocated rate, so the exact integral over the segment is the
	// trapezoid rule with the segment's constant depletion rate.
	rI, rE := 0.0, 0.0
	for _, j := range s.inelastic {
		rI += j.rate
	}
	for _, j := range s.elastic {
		rE += j.rate
	}
	m.areaWI += (s.WorkInelastic() - 0.5*rI*dt) * dt
	m.areaWE += (s.WorkElastic() - 0.5*rE*dt) * dt
	m.areaBusy += m.busyRate * dt
	m.elapsed += dt
	if m.TrackOccupancy {
		key := [2]int{min(s.NumInelastic(), occupancyCap), min(s.NumElastic(), occupancyCap)}
		m.occupancy[key] += dt
	}
}

func (m *Metrics) recordCompletion(j *Job, now float64) {
	resp := now - j.Arrival
	c := j.Class
	m.completions[c]++
	m.sumResp[c] += resp
	m.sumRespSq[c] += resp * resp
	if resp > m.maxResp[c] {
		m.maxResp[c] = resp
	}
	m.completedWork += j.Size
}

// CompletedWork returns the total size of jobs completed in the observation
// window.
func (m *Metrics) CompletedWork() float64 { return m.completedWork }

// Elapsed returns the observed time span.
func (m *Metrics) Elapsed() float64 { return m.elapsed }

// Arrivals returns the number of arrivals of class c observed.
func (m *Metrics) Arrivals(c Class) int64 { return m.arrivals[c] }

// Completions returns the number of completions of class c observed.
func (m *Metrics) Completions(c Class) int64 { return m.completions[c] }

// TotalCompletions returns completions across both classes.
func (m *Metrics) TotalCompletions() int64 {
	return m.completions[Inelastic] + m.completions[Elastic]
}

// MeanResponse returns the mean response time of class c over completed
// jobs. It returns NaN when no job of the class completed.
func (m *Metrics) MeanResponse(c Class) float64 {
	if m.completions[c] == 0 {
		return math.NaN()
	}
	return m.sumResp[c] / float64(m.completions[c])
}

// MeanResponseAll returns the mean response time across both classes.
func (m *Metrics) MeanResponseAll() float64 {
	n := m.TotalCompletions()
	if n == 0 {
		return math.NaN()
	}
	return (m.sumResp[Inelastic] + m.sumResp[Elastic]) / float64(n)
}

// VarResponse returns the response-time variance for class c.
func (m *Metrics) VarResponse(c Class) float64 {
	n := float64(m.completions[c])
	if n < 2 {
		return math.NaN()
	}
	mean := m.sumResp[c] / n
	return m.sumRespSq[c]/n - mean*mean
}

// MaxResponse returns the largest observed response time for class c.
func (m *Metrics) MaxResponse(c Class) float64 { return m.maxResp[c] }

// MeanJobs returns the time-average number of class-c jobs in system.
func (m *Metrics) MeanJobs(c Class) float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	if c == Inelastic {
		return m.areaNI / m.elapsed
	}
	return m.areaNE / m.elapsed
}

// MeanJobsAll returns the time-average total number in system.
func (m *Metrics) MeanJobsAll() float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	return (m.areaNI + m.areaNE) / m.elapsed
}

// MeanWork returns the time-average remaining work of class c.
func (m *Metrics) MeanWork(c Class) float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	if c == Inelastic {
		return m.areaWI / m.elapsed
	}
	return m.areaWE / m.elapsed
}

// MeanWorkAll returns the time-average total remaining work E[W].
func (m *Metrics) MeanWorkAll() float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	return (m.areaWI + m.areaWE) / m.elapsed
}

// Utilization returns the time-average fraction of the k servers busy.
func (m *Metrics) Utilization(k int) float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	return m.areaBusy / (m.elapsed * float64(k))
}

// OccupancyProb returns the time-weighted probability of state (i, j). It
// returns 0 unless TrackOccupancy was set before the observation window.
func (m *Metrics) OccupancyProb(i, j int) float64 {
	if m.occupancy == nil || m.elapsed == 0 {
		return 0
	}
	return m.occupancy[[2]int{i, j}] / m.elapsed
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
