package sim

import "math"

// Metrics accumulates time-average and per-completion statistics for one
// System, one accumulator set per job class. Time averages (E[N], E[W],
// utilization) are exact integrals of the piecewise-constant/linear sample
// paths between events; response-time statistics are per completed job.
// Reset at the end of warmup to discard the transient. Per-class methods
// return NaN (or zero counts) for class indices the system does not have.
type Metrics struct {
	start   float64
	elapsed float64

	// Per-class time integrals and per-completion accumulators.
	areaN     []float64
	areaW     []float64
	arrivals  []int64
	completes []int64
	sumResp   []float64
	sumRespSq []float64
	maxResp   []float64

	areaBusy float64

	// busyRate is the current total allocated server rate, maintained by
	// the engine at each allocation change.
	busyRate float64

	// completedWork sums the sizes of completed jobs, closing the
	// conservation ledger arrived = completed + remaining.
	completedWork float64

	// Occupancy histogram over (n_0, n_1) — the (numInelastic, numElastic)
	// state of the two-class preset; on systems with more classes it tracks
	// classes 0 and 1 only. Time-weighted, enabled with TrackOccupancy;
	// states beyond occupancyCap fold into the cap boundary.
	TrackOccupancy bool
	occupancy      map[[2]int]float64
}

const occupancyCap = 4096

// init sizes the per-class accumulators; called once per System.
func (m *Metrics) init(numClasses int) {
	m.areaN = make([]float64, numClasses)
	m.areaW = make([]float64, numClasses)
	m.arrivals = make([]int64, numClasses)
	m.completes = make([]int64, numClasses)
	m.sumResp = make([]float64, numClasses)
	m.sumRespSq = make([]float64, numClasses)
	m.maxResp = make([]float64, numClasses)
}

// NumClasses returns the number of per-class accumulator sets.
func (m *Metrics) NumClasses() int { return len(m.areaN) }

// Reset clears all statistics and restarts the observation window at now.
func (m *Metrics) Reset(now float64) {
	m.start = now
	m.elapsed = 0
	for c := range m.areaN {
		m.areaN[c] = 0
		m.areaW[c] = 0
		m.arrivals[c] = 0
		m.completes[c] = 0
		m.sumResp[c] = 0
		m.sumRespSq[c] = 0
		m.maxResp[c] = 0
	}
	m.areaBusy = 0
	m.completedWork = 0
	if m.TrackOccupancy {
		m.occupancy = make(map[[2]int]float64)
	} else {
		m.occupancy = nil
	}
}

// Clone returns a deep copy (snapshot) of the metrics.
func (m *Metrics) Clone() Metrics {
	out := *m
	out.areaN = append([]float64(nil), m.areaN...)
	out.areaW = append([]float64(nil), m.areaW...)
	out.arrivals = append([]int64(nil), m.arrivals...)
	out.completes = append([]int64(nil), m.completes...)
	out.sumResp = append([]float64(nil), m.sumResp...)
	out.sumRespSq = append([]float64(nil), m.sumRespSq...)
	out.maxResp = append([]float64(nil), m.maxResp...)
	if m.occupancy != nil {
		out.occupancy = make(map[[2]int]float64, len(m.occupancy))
		for k, v := range m.occupancy {
			out.occupancy[k] = v
		}
	}
	return out
}

// The incremental engine's metric integrator lives fused inside
// System.advanceTimeInc (one pass with the aggregate depletion), like the
// rebuild engine's lives fused inside System.advanceWork.

func (m *Metrics) recordCompletion(j *Job, now float64) {
	resp := now - j.Arrival
	c := j.Class
	m.completes[c]++
	m.sumResp[c] += resp
	m.sumRespSq[c] += resp * resp
	if resp > m.maxResp[c] {
		m.maxResp[c] = resp
	}
	m.completedWork += j.Size
}

func (m *Metrics) hasClass(c Class) bool { return c >= 0 && int(c) < len(m.areaN) }

// CompletedWork returns the total size of jobs completed in the observation
// window.
func (m *Metrics) CompletedWork() float64 { return m.completedWork }

// Elapsed returns the observed time span.
func (m *Metrics) Elapsed() float64 { return m.elapsed }

// Arrivals returns the number of arrivals of class c observed.
func (m *Metrics) Arrivals(c Class) int64 {
	if !m.hasClass(c) {
		return 0
	}
	return m.arrivals[c]
}

// Completions returns the number of completions of class c observed.
func (m *Metrics) Completions(c Class) int64 {
	if !m.hasClass(c) {
		return 0
	}
	return m.completes[c]
}

// TotalCompletions returns completions across all classes.
func (m *Metrics) TotalCompletions() int64 {
	var n int64
	for _, c := range m.completes {
		n += c
	}
	return n
}

// MeanResponse returns the mean response time of class c over completed
// jobs. It returns NaN when no job of the class completed.
func (m *Metrics) MeanResponse(c Class) float64 {
	if !m.hasClass(c) || m.completes[c] == 0 {
		return math.NaN()
	}
	return m.sumResp[c] / float64(m.completes[c])
}

// MeanResponseAll returns the mean response time across all classes.
func (m *Metrics) MeanResponseAll() float64 {
	n := m.TotalCompletions()
	if n == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, s := range m.sumResp {
		sum += s
	}
	return sum / float64(n)
}

// VarResponse returns the response-time variance for class c.
func (m *Metrics) VarResponse(c Class) float64 {
	if !m.hasClass(c) {
		return math.NaN()
	}
	n := float64(m.completes[c])
	if n < 2 {
		return math.NaN()
	}
	mean := m.sumResp[c] / n
	return m.sumRespSq[c]/n - mean*mean
}

// MaxResponse returns the largest observed response time for class c.
func (m *Metrics) MaxResponse(c Class) float64 {
	if !m.hasClass(c) {
		return 0
	}
	return m.maxResp[c]
}

// MeanJobs returns the time-average number of class-c jobs in system.
func (m *Metrics) MeanJobs(c Class) float64 {
	if !m.hasClass(c) || m.elapsed == 0 {
		return math.NaN()
	}
	return m.areaN[c] / m.elapsed
}

// MeanJobsAll returns the time-average total number in system.
func (m *Metrics) MeanJobsAll() float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, a := range m.areaN {
		sum += a
	}
	return sum / m.elapsed
}

// MeanWork returns the time-average remaining work of class c.
func (m *Metrics) MeanWork(c Class) float64 {
	if !m.hasClass(c) || m.elapsed == 0 {
		return math.NaN()
	}
	return m.areaW[c] / m.elapsed
}

// MeanWorkAll returns the time-average total remaining work E[W].
func (m *Metrics) MeanWorkAll() float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, a := range m.areaW {
		sum += a
	}
	return sum / m.elapsed
}

// Utilization returns the time-average fraction of the k servers busy.
func (m *Metrics) Utilization(k int) float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	return m.areaBusy / (m.elapsed * float64(k))
}

// OccupancyProb returns the time-weighted probability of state (i, j). It
// returns 0 unless TrackOccupancy was set before the observation window.
func (m *Metrics) OccupancyProb(i, j int) float64 {
	if m.occupancy == nil || m.elapsed == 0 {
		return 0
	}
	return m.occupancy[[2]int{i, j}] / m.elapsed
}
