package sim

// Arena job storage. Jobs live in large fixed-size chunks of contiguous
// []Job memory owned by the engine, addressed by a dense int32 handle
// (chunk index in the high bits, slot in the low bits). The free list is a
// list of handles, not pointers, so recycling a job writes no pointer and
// incurs no GC write barrier; and because Job contains no pointer fields,
// the chunks themselves are pointer-free memory the garbage collector never
// scans. Pointers into the arena remain stable for a job's whole life —
// chunks are never moved or freed — so the *Job handed to policies at the
// Policy API boundary (State.Queues) is exactly as valid as it was when
// jobs were individually heap-allocated.
//
// Handles are what the hot structures store: the future-event lists carry
// pointer-free handle entries (no write barrier on heap swaps) and the EQUI
// path's per-class vtarget heaps carry inline {vtarget, id, handle} keys,
// so the event hot path walks cache-line-sequential memory instead of
// chasing pointers across the GC heap.
//
// Aliasing safety: a recycled slot can never inherit an event from its
// previous life. The incremental engine's indexed future-event list
// (eventq.IndexedQueue) holds at most one entry per handle and the engines
// pop or remove a job's entry before releasing its slot; the rebuild
// engine refills its event list from the live job set at every event. So
// by the time a handle re-enters circulation, no queue anywhere references
// it. TestArenaRecycleNoAlias pins this.

// jobHandle is a dense index into a jobArena: chunk in the high bits, slot
// within the chunk in the low bits.
type jobHandle = int32

const (
	arenaChunkBits = 9 // 512 jobs (~53 KB) per chunk
	arenaChunkSize = 1 << arenaChunkBits
	arenaChunkMask = arenaChunkSize - 1
)

// jobArena is the slab allocator behind the engine's job storage.
type jobArena struct {
	chunks [][]Job
	free   []jobHandle // recycled slots, LIFO — matches the old []*Job free list order
	n      jobHandle   // total slots ever handed out
}

// at resolves a handle to its job. The job's address is stable forever.
func (a *jobArena) at(h jobHandle) *Job {
	return &a.chunks[h>>arenaChunkBits][h&arenaChunkMask]
}

// alloc returns a job slot: the most recently released one when available
// (LIFO keeps the working set cache-hot), otherwise the next fresh slot —
// growing by one chunk at a time so steady-state stepping never allocates.
// Only the handle survives recycling; callers must reset every other field.
func (a *jobArena) alloc() *Job {
	if n := len(a.free); n > 0 {
		h := a.free[n-1]
		a.free = a.free[:n-1]
		return a.at(h)
	}
	h := a.n
	if int(h>>arenaChunkBits) == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Job, arenaChunkSize))
	}
	a.n++
	j := a.at(h)
	j.handle = h
	return j
}

// release returns a job's slot to the free list. The caller must have
// unscheduled the job's future-event entry first (the engines pop it as
// part of processing the completion), so the slot's next occupant can
// never inherit one.
func (a *jobArena) release(j *Job) {
	a.free = append(a.free, j.handle)
}
