// Package lru provides the size-bounded, least-recently-used cache that
// backs every in-memory result store of the serving stack: the experiment
// layer's cell cache (exp.MemCache), the fabric dispatcher's outcome cache
// (fabric.MemOutcomeCache) and the HTTP result service's response cache
// (internal/serve). All three used to grow without limit under sustained
// distinct-key load; this package gives them one shared eviction and
// accounting discipline instead of three ad-hoc ones.
//
// A Cache is bounded two ways at once — by entry count and by accounted
// bytes (callers pass each value's size at Put time) — and evicts from the
// cold end until both caps hold. Hits, misses, evictions and rejected
// oversized inserts are counted, so "is the cache the right size" is an
// observable question (surfaced by `psq stats` and resultd's /v1/stats), not
// a guess. All methods are safe for concurrent use.
package lru

import "sync"

// Stats is a point-in-time snapshot of a Cache's counters and occupancy.
type Stats struct {
	// Hits and Misses count Get outcomes since creation.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries displaced to satisfy the caps; Rejected
	// counts values never admitted because a single value exceeded the byte
	// cap on its own (admitting one would evict the whole cache for an
	// entry that cannot pay for itself).
	Evictions int64 `json:"evictions"`
	Rejected  int64 `json:"rejected"`
	// Entries and Bytes are current occupancy; MaxEntries and MaxBytes the
	// configured caps (0 = unlimited on that axis).
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	MaxEntries int   `json:"maxEntries,omitempty"`
	MaxBytes   int64 `json:"maxBytes,omitempty"`
}

// entry is one cache slot on the intrusive recency list (head = most
// recent).
type entry[V any] struct {
	key        string
	val        V
	size       int64
	prev, next *entry[V]
}

// Cache is a string-keyed LRU bounded by entry count and accounted bytes.
// The zero value is not usable; construct with New.
type Cache[V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	m          map[string]*entry[V]
	head, tail *entry[V]
	bytes      int64

	hits, misses, evictions, rejected int64
}

// New returns an empty cache capped at maxEntries entries and maxBytes
// accounted bytes; a cap <= 0 leaves that axis unbounded.
func New[V any](maxEntries int, maxBytes int64) *Cache[V] {
	return &Cache[V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		m:          make(map[string]*entry[V]),
	}
}

// Get returns the value for key and refreshes its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(key)
}

// GetBytes is Get with a []byte key, avoiding the string conversion
// allocation on hit paths that hold the key as raw request bytes (the map
// lookup via string(key) is allocation-free by compiler convention).
func (c *Cache[V]) GetBytes(key []byte) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[string(key)]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

func (c *Cache[V]) getLocked(key string) (V, bool) {
	e, ok := c.m[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or replaces key with the given value and accounted size,
// evicting cold entries until both caps hold. A value whose size alone
// exceeds the byte cap is rejected (counted, not stored): admitting it would
// flush the entire cache for an entry that still couldn't fit.
func (c *Cache[V]) Put(key string, val V, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && size > c.maxBytes {
		c.rejected++
		return
	}
	if e, ok := c.m[key]; ok {
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.moveToFront(e)
		c.evictOver()
		return
	}
	e := &entry[V]{key: key, val: val, size: size}
	c.m[key] = e
	c.bytes += size
	c.pushFront(e)
	c.evictOver()
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes returns the current accounted size.
func (c *Cache[V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats snapshots the counters and occupancy.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Rejected: c.rejected,
		Entries: len(c.m), Bytes: c.bytes,
		MaxEntries: c.maxEntries, MaxBytes: c.maxBytes,
	}
}

// evictOver drops cold-end entries until both caps hold.
func (c *Cache[V]) evictOver() {
	for c.tail != nil &&
		((c.maxEntries > 0 && len(c.m) > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		e := c.tail
		c.unlink(e)
		delete(c.m, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

func (c *Cache[V]) pushFront(e *entry[V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[V]) moveToFront(e *entry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
