package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestEntryCapEvictsColdest(t *testing.T) {
	c := New[int](3, 0)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 (coldest) should have been evicted")
	}
	for i := 1; i < 4; i++ {
		if v, ok := c.Get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("k%d = %d, %t; want %d, true", i, v, ok, i)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := New[int](2, 0)
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	c.Get("a") // a becomes most recent; b is now coldest
	c.Put("c", 3, 1)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted, not a")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was refreshed by Get and must survive")
	}
}

func TestByteCap(t *testing.T) {
	c := New[string](0, 100)
	c.Put("a", "x", 40)
	c.Put("b", "y", 40)
	c.Put("c", "z", 40) // 120 bytes: "a" must go
	if got := c.Bytes(); got != 80 {
		t.Fatalf("Bytes = %d, want 80", got)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte cap")
	}
	// Replacing a key re-accounts its size.
	c.Put("b", "Y", 10)
	if got := c.Bytes(); got != 50 {
		t.Fatalf("Bytes after resize = %d, want 50", got)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New[string](0, 100)
	c.Put("small", "v", 10)
	c.Put("huge", "V", 200)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("an entry larger than the byte cap must not be admitted")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("rejecting an oversized value must not evict existing entries")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Evictions != 0 {
		t.Fatalf("Stats = %+v, want Rejected=1 Evictions=0", st)
	}
}

func TestCountersAndGetBytes(t *testing.T) {
	c := New[int](4, 0)
	c.Put("a", 1, 1)
	if _, ok := c.GetBytes([]byte("a")); !ok {
		t.Fatal("GetBytes miss on existing key")
	}
	c.Get("nope")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("Hits/Misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.MaxEntries != 4 {
		t.Fatalf("Entries/MaxEntries = %d/%d, want 1/4", st.Entries, st.MaxEntries)
	}
}

func TestUnboundedAxes(t *testing.T) {
	c := New[int](0, 0)
	for i := 0; i < 10_000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1)
	}
	if c.Len() != 10_000 {
		t.Fatalf("unbounded cache evicted: Len = %d", c.Len())
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("unbounded cache recorded %d evictions", st.Evictions)
	}
}

// TestConcurrentChurn drives the cache from many goroutines under -race; the
// invariant checked at the end is that occupancy respects both caps.
func TestConcurrentChurn(t *testing.T) {
	c := New[int](64, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%200)
				if i%3 == 0 {
					c.Get(k)
				} else {
					c.Put(k, i, int64(i%40))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 64 || st.Bytes > 1024 {
		t.Fatalf("caps violated after churn: %+v", st)
	}
}
