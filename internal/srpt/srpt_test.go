package srpt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func jobs(specs ...[2]float64) []workload.BatchJob {
	out := make([]workload.BatchJob, len(specs))
	for i, s := range specs {
		out[i] = workload.BatchJob{Size: s[0], Cap: int(s[1])}
	}
	return out
}

func TestSingleJobFullyParallel(t *testing.T) {
	s := SRPTK(jobs([2]float64{8, 4}), 4)
	if math.Abs(s.TotalResponse-2) > 1e-9 {
		t.Fatalf("total response %v, want 2", s.TotalResponse)
	}
}

func TestSingleJobCapped(t *testing.T) {
	// Cap 2 on 4 processors: rate 2, size 8 -> completes at 4.
	s := SRPTK(jobs([2]float64{8, 2}), 4)
	if math.Abs(s.TotalResponse-4) > 1e-9 {
		t.Fatalf("total response %v, want 4", s.TotalResponse)
	}
}

func TestTwoJobsHandComputed(t *testing.T) {
	// k=2. Job A: size 1, cap 1. Job B: size 4, cap 2.
	// SRPT order: A first (1 proc), B gets the leftover 1 proc.
	// A finishes at 1 (B has 3 left), then B runs at rate 2: +1.5 -> 2.5.
	s := SRPTK(jobs([2]float64{1, 1}, [2]float64{4, 2}), 2)
	if math.Abs(s.CompletionTimes[0]-1) > 1e-9 {
		t.Fatalf("A completes at %v", s.CompletionTimes[0])
	}
	if math.Abs(s.CompletionTimes[1]-2.5) > 1e-9 {
		t.Fatalf("B completes at %v", s.CompletionTimes[1])
	}
	if math.Abs(s.TotalResponse-3.5) > 1e-9 || math.Abs(s.Makespan-2.5) > 1e-9 {
		t.Fatalf("totals %v/%v", s.TotalResponse, s.Makespan)
	}
}

func TestLPLowerBoundHandComputed(t *testing.T) {
	// k=2, one job size 4 cap 2: fractional completion 2, contribution
	// (0+2)/2 + 4/(2*2) = 1 + 1 = 2 (matches its actual response 2).
	lb := LPLowerBound(jobs([2]float64{4, 2}), 2)
	if math.Abs(lb-2) > 1e-9 {
		t.Fatalf("LP bound %v, want 2", lb)
	}
	// Two jobs sizes 2 and 4, caps 2, k=2: prefix completions 1, 3.
	// contributions: (0+1)/2 + 2/4 = 1; (1+3)/2 + 4/4 = 3. Total 4.
	lb = LPLowerBound(jobs([2]float64{2, 2}, [2]float64{4, 2}), 2)
	if math.Abs(lb-4) > 1e-9 {
		t.Fatalf("LP bound %v, want 4", lb)
	}
}

func TestLPIsALowerBound(t *testing.T) {
	r := xrand.New(31)
	size := dist.NewBoundedPareto(1.5, 0.5, 50)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(12)
		k := 1 + r.Intn(8)
		batch := workload.RandomBatch(r, n, size, k)
		lb := LPLowerBound(batch, k)
		got := SRPTK(batch, k).TotalResponse
		if got < lb-1e-9 {
			t.Fatalf("schedule beat the lower bound: %v < %v (n=%d k=%d)", got, lb, n, k)
		}
	}
}

// TestTheorem9FourApproximation checks SRPT-k <= 4*LP over a wide random
// family — stronger than the theorem (which bounds against OPT >= LP).
func TestTheorem9FourApproximation(t *testing.T) {
	r := xrand.New(77)
	worst := 0.0
	for trial := 0; trial < 2000; trial++ {
		n := 2 + r.Intn(20)
		k := 1 + r.Intn(16)
		var size dist.Distribution
		switch trial % 3 {
		case 0:
			size = dist.NewExponential(1)
		case 1:
			size = dist.NewBoundedPareto(1.5, 0.1, 100)
		default:
			size = dist.NewUniform(0.5, 1.5)
		}
		batch := workload.RandomBatch(r, n, size, k)
		ratio := ApproximationRatio(batch, k)
		if ratio > worst {
			worst = ratio
		}
		if ratio > 4 {
			t.Fatalf("approximation ratio %v > 4 on n=%d k=%d", ratio, n, k)
		}
	}
	if worst < 1 {
		t.Fatalf("worst ratio %v < 1: the bound or schedule is broken", worst)
	}
	t.Logf("worst observed SRPT-k/LP ratio: %.3f", worst)
}

func TestSRPTCloseToBestPermutation(t *testing.T) {
	r := xrand.New(5)
	size := dist.NewUniform(0.5, 5)
	for trial := 0; trial < 30; trial++ {
		batch := workload.RandomBatch(r, 6, size, 4)
		srptTotal := SRPTK(batch, 4).TotalResponse
		best := BestPriorityOrder(batch, 4).TotalResponse
		if srptTotal < best-1e-9 {
			t.Fatal("brute force missed the SRPT permutation")
		}
		// In the list-scheduling family, shortest-first is provably weak
		// by at most the approximation factor; empirically it is near
		// optimal.
		if srptTotal > 2*best {
			t.Fatalf("SRPT-k %v more than 2x the best permutation %v", srptTotal, best)
		}
	}
}

func TestListSchedulePermutationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad permutation accepted")
		}
	}()
	ListSchedule(jobs([2]float64{1, 1}), []int{0, 1}, 2)
}

func TestInvalidJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size job accepted")
		}
	}()
	SRPTK(jobs([2]float64{0, 1}), 2)
}

// TestWorkConservationProperty: makespan must be at least total-work/k and
// at least the capped runtime of any single job.
func TestWorkConservationProperty(t *testing.T) {
	r := xrand.New(13)
	size := dist.NewExponential(0.5)
	f := func(nq, kq uint8) bool {
		n := int(nq%10) + 1
		k := int(kq%8) + 1
		batch := workload.RandomBatch(r, n, size, k)
		s := SRPTK(batch, k)
		work := 0.0
		for _, j := range batch {
			work += j.Size
			if s.Makespan < j.Size/float64(j.Cap)-1e-9 {
				return false
			}
		}
		return s.Makespan >= work/float64(k)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
