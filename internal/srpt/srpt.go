// Package srpt implements the Appendix A experiment: worst-case batch
// scheduling of parallelizable jobs that all arrive at time 0.
//
// Each job j has inherent size x_j and a parallelizability cap k_j: given
// k' <= k processors it is processed at rate min(k_j, k'). The SRPT-k
// generalization sorts jobs by inherent size and assigns processors greedily
// in that priority order. Theorem 9 of the paper proves, by dual fitting
// against an LP relaxation, that this schedule's total response time is at
// most 4 times optimal. This package provides the schedule, the LP lower
// bound (in closed form for the relaxation), and a brute-force
// best-priority-order baseline for small instances.
package srpt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/workload"
)

// Schedule is the outcome of running a batch schedule.
type Schedule struct {
	// CompletionTimes aligns with the input job order.
	CompletionTimes []float64
	// TotalResponse is the sum of completion times (all jobs arrive at 0).
	TotalResponse float64
	// Makespan is the last completion.
	Makespan float64
}

// SRPTK runs the paper's SRPT-k list schedule on k unit-speed processors:
// jobs in increasing order of inherent size, each taking up to its cap, the
// remainder flowing to later jobs. Allocation is recomputed at every
// completion. It panics on invalid jobs.
func SRPTK(jobs []workload.BatchJob, k int) Schedule {
	order := prioritize(jobs)
	return listSchedule(jobs, order, k)
}

// ListSchedule runs the same greedy processor assignment with an arbitrary
// priority order (a permutation of job indices). Exposed so that the
// brute-force baseline and the benchmarks can explore the policy family.
func ListSchedule(jobs []workload.BatchJob, order []int, k int) Schedule {
	if len(order) != len(jobs) {
		panic("srpt: order must be a permutation of the job indices")
	}
	return listSchedule(jobs, order, k)
}

func prioritize(jobs []workload.BatchJob) []int {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Size < jobs[order[b]].Size
	})
	return order
}

func listSchedule(jobs []workload.BatchJob, order []int, k int) Schedule {
	if k < 1 {
		panic("srpt: k must be >= 1")
	}
	remaining := make([]float64, len(jobs))
	for i, j := range jobs {
		if j.Size <= 0 || j.Cap < 1 {
			panic(fmt.Sprintf("srpt: invalid job %+v", j))
		}
		remaining[i] = j.Size
	}
	completion := make([]float64, len(jobs))
	clock := 0.0
	left := len(jobs)
	rates := make([]float64, len(jobs))
	for left > 0 {
		// Assign processors in priority order.
		free := float64(k)
		for i := range rates {
			rates[i] = 0
		}
		for _, idx := range order {
			if remaining[idx] <= 0 || free <= 0 {
				continue
			}
			r := math.Min(float64(jobs[idx].Cap), free)
			rates[idx] = r
			free -= r
		}
		// Advance to the next completion.
		dt := math.Inf(1)
		for i, r := range rates {
			if r > 0 {
				if d := remaining[i] / r; d < dt {
					dt = d
				}
			}
		}
		if math.IsInf(dt, 1) {
			panic("srpt: no job running with jobs remaining")
		}
		clock += dt
		for i, r := range rates {
			if r <= 0 || remaining[i] <= 0 {
				continue
			}
			remaining[i] -= r * dt
			if remaining[i] <= 1e-12*jobs[i].Size {
				remaining[i] = 0
				completion[i] = clock
				left--
			}
		}
	}
	s := Schedule{CompletionTimes: completion}
	for _, c := range completion {
		s.TotalResponse += c
		if c > s.Makespan {
			s.Makespan = c
		}
	}
	return s
}

// LPLowerBound evaluates the optimal value of the LP relaxation from
// Appendix A in closed form. The relaxation drops the per-job cap from the
// machine constraint, so its optimum processes jobs one at a time on a
// speed-k aggregate machine in SRPT order; with jobs sorted by size and
// C_j the prefix-sum completion, each job contributes
//
//	(S_j + C_j)/2 + x_j/(2 k_j),
//
// where S_j is the start (previous prefix). The result lower-bounds the
// total response time of every feasible schedule.
func LPLowerBound(jobs []workload.BatchJob, k int) float64 {
	order := prioritize(jobs)
	total := 0.0
	prefix := 0.0
	for _, idx := range order {
		x := jobs[idx].Size
		start := prefix / float64(k)
		prefix += x
		end := prefix / float64(k)
		total += (start+end)/2 + x/(2*float64(jobs[idx].Cap))
	}
	return total
}

// BestPriorityOrder exhaustively searches all priority permutations (n <= 9
// to bound cost) and returns the best list schedule found. It is a baseline
// showing how loose the factor-4 guarantee is in practice.
func BestPriorityOrder(jobs []workload.BatchJob, k int) Schedule {
	n := len(jobs)
	if n > 9 {
		panic("srpt: brute force limited to 9 jobs")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	best := Schedule{TotalResponse: math.Inf(1)}
	permute(order, 0, func(perm []int) {
		s := listSchedule(jobs, perm, k)
		if s.TotalResponse < best.TotalResponse {
			cp := append([]float64(nil), s.CompletionTimes...)
			best = Schedule{CompletionTimes: cp, TotalResponse: s.TotalResponse, Makespan: s.Makespan}
		}
	})
	return best
}

func permute(order []int, i int, visit func([]int)) {
	if i == len(order) {
		visit(order)
		return
	}
	for j := i; j < len(order); j++ {
		order[i], order[j] = order[j], order[i]
		permute(order, i+1, visit)
		order[i], order[j] = order[j], order[i]
	}
}

// ApproximationRatio returns SRPT-k's total response divided by the LP
// lower bound; Theorem 9 guarantees the true ratio to optimal is <= 4, so
// this value (an upper bound on that ratio) being <= 4 on a family of
// instances is consistent with — though stronger than — the theorem.
func ApproximationRatio(jobs []workload.BatchJob, k int) float64 {
	return SRPTK(jobs, k).TotalResponse / LPLowerBound(jobs, k)
}
