package queueing

// PreemptiveMM1 is a single-server queue with two classes under
// preemptive-resume priority: class H (high) preempts class L (low), each
// Poisson with exponential service.
//
// It is the k = 1 specialization of the paper's Elastic-First policy
// (elastic jobs are the high-priority class) and therefore provides an
// exact end-to-end oracle for the analysis pipeline at k = 1, with no
// busy-period approximation in the way.
type PreemptiveMM1 struct {
	LambdaH, MuH float64
	LambdaL, MuL float64
}

// NewPreemptiveMM1 returns the descriptor; it panics on non-positive rates.
func NewPreemptiveMM1(lambdaH, muH, lambdaL, muL float64) PreemptiveMM1 {
	if lambdaH <= 0 || muH <= 0 || lambdaL <= 0 || muL <= 0 {
		panic("queueing: priority queue rates must be positive")
	}
	return PreemptiveMM1{LambdaH: lambdaH, MuH: muH, LambdaL: lambdaL, MuL: muL}
}

// RhoH returns the high-class load.
func (q PreemptiveMM1) RhoH() float64 { return q.LambdaH / q.MuH }

// Rho returns the total load.
func (q PreemptiveMM1) Rho() float64 { return q.RhoH() + q.LambdaL/q.MuL }

// Stable reports whether both classes are stable.
func (q PreemptiveMM1) Stable() bool { return q.Rho() < 1 }

// MeanResponseHigh returns E[T_H]: the high class sees a plain M/M/1.
func (q PreemptiveMM1) MeanResponseHigh() float64 {
	return NewMM1(q.LambdaH, q.MuH).MeanResponse()
}

// MeanResponseLow returns E[T_L] under preemptive-resume priority
// (mean-value analysis; see Harchol-Balter, "Performance Modeling and
// Design of Computer Systems", ch. 32):
//
//	E[T_L] = E[S_L]/(1-rhoH) + E[R]/((1-rhoH)(1-rhoH-rhoL)),
//
// where E[R] = lambdaH E[S_H^2]/2 + lambdaL E[S_L^2]/2 is the mean residual
// work an arrival finds.
func (q PreemptiveMM1) MeanResponseLow() float64 {
	if !q.Stable() {
		panic("queueing: unstable priority queue")
	}
	rhoH := q.RhoH()
	rho := q.Rho()
	meanResidual := q.LambdaH/(q.MuH*q.MuH) + q.LambdaL/(q.MuL*q.MuL)
	return (1/q.MuL)/(1-rhoH) + meanResidual/((1-rhoH)*(1-rho))
}

// MeanResponse returns the overall arrival-weighted mean response time.
func (q PreemptiveMM1) MeanResponse() float64 {
	lh, ll := q.LambdaH, q.LambdaL
	return (lh*q.MeanResponseHigh() + ll*q.MeanResponseLow()) / (lh + ll)
}
