package queueing

import (
	"math"
	"testing"
)

func TestPreemptiveHighClassIsMM1(t *testing.T) {
	q := NewPreemptiveMM1(0.3, 1, 0.2, 0.5)
	want := NewMM1(0.3, 1).MeanResponse()
	if math.Abs(q.MeanResponseHigh()-want) > 1e-12 {
		t.Fatalf("high class %v, want %v", q.MeanResponseHigh(), want)
	}
}

func TestPreemptiveReducesToMM1WhenClassesEqual(t *testing.T) {
	// With muH = muL the overall mean response time is the plain M/M/1
	// value (scheduling order does not matter for exponential sizes with
	// equal rates and a work-conserving server).
	q := NewPreemptiveMM1(0.3, 1, 0.4, 1)
	want := NewMM1(0.7, 1).MeanResponse()
	if math.Abs(q.MeanResponse()-want) > 1e-12 {
		t.Fatalf("overall %v, want M/M/1 %v", q.MeanResponse(), want)
	}
}

func TestPreemptiveLowSlowerThanHigh(t *testing.T) {
	q := NewPreemptiveMM1(0.3, 1, 0.3, 1)
	if q.MeanResponseLow() <= q.MeanResponseHigh() {
		t.Fatal("low class cannot be faster than high class at equal rates")
	}
}

func TestPreemptiveLowLoadLimit(t *testing.T) {
	// As both loads vanish, each class's response approaches its own
	// service time.
	q := NewPreemptiveMM1(1e-9, 2, 1e-9, 0.5)
	if math.Abs(q.MeanResponseHigh()-0.5) > 1e-6 {
		t.Fatalf("high %v, want 0.5", q.MeanResponseHigh())
	}
	if math.Abs(q.MeanResponseLow()-2) > 1e-6 {
		t.Fatalf("low %v, want 2", q.MeanResponseLow())
	}
}

func TestPreemptiveUnstablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unstable queue did not panic")
		}
	}()
	NewPreemptiveMM1(0.8, 1, 0.5, 1).MeanResponseLow()
}
