package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1Basics(t *testing.T) {
	q := NewMM1(0.5, 1)
	if q.Rho() != 0.5 || !q.Stable() {
		t.Fatal("rho/stability wrong")
	}
	if got := q.MeanResponse(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("E[T] = %v, want 2", got)
	}
	if got := q.MeanJobs(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("E[N] = %v, want 1", got)
	}
}

func TestMM1LittleConsistency(t *testing.T) {
	f := func(lq, mq uint16) bool {
		lambda := 0.01 + float64(lq)/65536*0.98
		mu := lambda/0.99 + float64(mq)/65536*5 // guarantees rho < 0.99
		q := NewMM1(lambda, mu)
		if !q.Stable() {
			return true
		}
		return math.Abs(q.MeanJobs()-lambda*q.MeanResponse()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMM1StationarySums(t *testing.T) {
	q := NewMM1(0.7, 1)
	sum, en := 0.0, 0.0
	for n := 0; n < 2000; n++ {
		p := q.StationaryProb(n)
		sum += p
		en += float64(n) * p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary probabilities sum to %v", sum)
	}
	if math.Abs(en-q.MeanJobs()) > 1e-6 {
		t.Fatalf("E[N] from distribution %v, formula %v", en, q.MeanJobs())
	}
}

func TestMM1BusyPeriodKnown(t *testing.T) {
	// lambda=0.5, mu=1: E[B]=2, E[B^2]=16, E[B^3]=288.
	q := NewMM1(0.5, 1)
	m1, m2, m3 := q.BusyPeriodMoments()
	if math.Abs(m1-2) > 1e-12 || math.Abs(m2-16) > 1e-12 || math.Abs(m3-288) > 1e-9 {
		t.Fatalf("busy period moments (%v, %v, %v)", m1, m2, m3)
	}
}

func TestMM1BusyPeriodLowLoadLimit(t *testing.T) {
	// As lambda -> 0 the busy period approaches Exp(mu).
	q := NewMM1(1e-9, 2)
	m1, m2, m3 := q.BusyPeriodMoments()
	if math.Abs(m1-0.5) > 1e-6 || math.Abs(m2-0.5) > 1e-6 || math.Abs(m3-0.75) > 1e-6 {
		t.Fatalf("low-load busy period (%v, %v, %v)", m1, m2, m3)
	}
}

func TestMM1UnstablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unstable M/M/1 did not panic")
		}
	}()
	NewMM1(2, 1).MeanResponse()
}

func TestMMkReducesToMM1(t *testing.T) {
	a := NewMMk(0.6, 1, 1)
	b := NewMM1(0.6, 1)
	if math.Abs(a.MeanResponse()-b.MeanResponse()) > 1e-12 {
		t.Fatalf("M/M/1 vs M/M/k(k=1): %v vs %v", b.MeanResponse(), a.MeanResponse())
	}
	// For k=1 Erlang-C equals rho.
	if math.Abs(a.ErlangC()-0.6) > 1e-12 {
		t.Fatalf("Erlang-C for k=1 is %v, want 0.6", a.ErlangC())
	}
}

func TestMMkKnownValue(t *testing.T) {
	// Classic textbook case: k=2, lambda=1.5, mu=1 => rho=0.75.
	// ErlangC = (a^k/k!) / ((1-rho) sum + a^k/k!) with a=1.5:
	// P0 = 1/(1 + 1.5 + 1.125/(0.25)) = 1/7; Pwait = (1.125/0.25)*P0... use
	// direct closed form: C(2,1.5) = 0.6428571...
	q := NewMMk(1.5, 1, 2)
	want := (1.125 / 0.25) / (1 + 1.5 + 1.125/0.25) // = 4.5/7
	if got := q.ErlangC(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Erlang-C %v, want %v", got, want)
	}
	wantT := want/(2-1.5) + 1
	if got := q.MeanResponse(); math.Abs(got-wantT) > 1e-12 {
		t.Fatalf("E[T] %v, want %v", got, wantT)
	}
}

func TestMMkStationarySums(t *testing.T) {
	q := NewMMk(3.2, 1, 4)
	sum, en := 0.0, 0.0
	for n := 0; n < 4000; n++ {
		p := q.StationaryProb(n)
		sum += p
		en += float64(n) * p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary sum %v", sum)
	}
	if math.Abs(en-q.MeanJobs()) > 1e-6 {
		t.Fatalf("E[N] from distribution %v, formula %v", en, q.MeanJobs())
	}
}

func TestMMkErlangCInUnitInterval(t *testing.T) {
	f := func(kq uint8, lq uint16) bool {
		k := int(kq%16) + 1
		rho := 0.05 + 0.9*float64(lq)/65536
		q := NewMMk(rho*float64(k), 1, k)
		c := q.ErlangC()
		return c > 0 && c < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMMkWaitMonotoneInK(t *testing.T) {
	// With per-server utilization held fixed, more servers means less
	// waiting (economies of scale).
	prev := math.Inf(1)
	for k := 1; k <= 16; k++ {
		q := NewMMk(0.8*float64(k), 1, k)
		w := q.MeanWait()
		if w >= prev {
			t.Fatalf("E[W] not decreasing at k=%d: %v >= %v", k, w, prev)
		}
		prev = w
	}
}

func TestSystemLoad(t *testing.T) {
	// k=4, lambdaI=lambdaE=1, muI=muE=1 => rho = 1/4 + 1/4 = 0.5.
	if got := SystemLoad(4, 1, 1, 1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("system load %v", got)
	}
}

func TestRatesForLoadRoundTrip(t *testing.T) {
	f := func(rq, m1q, m2q uint16) bool {
		rho := 0.05 + 0.9*float64(rq)/65536
		muI := 0.1 + 3.4*float64(m1q)/65536
		muE := 0.1 + 3.4*float64(m2q)/65536
		lI, lE := RatesForLoad(4, rho, muI, muE)
		if lI != lE {
			return false
		}
		return math.Abs(SystemLoad(4, lI, muI, lE, muE)-rho) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatesForLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rho >= 1 did not panic")
		}
	}()
	RatesForLoad(4, 1.0, 1, 1)
}

func TestLittleHelpers(t *testing.T) {
	if LittleN(2, 3) != 6 || LittleT(2, 6) != 3 {
		t.Fatal("Little's law helpers wrong")
	}
}
