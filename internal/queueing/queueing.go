// Package queueing provides closed-form results from classical queueing
// theory that the paper's analysis pipeline composes with matrix-analytic
// solutions.
//
// Under Elastic-First, elastic jobs see an M/M/1 queue with service rate
// k*muE (Observation 1 in Section 5.2); under Inelastic-First, inelastic
// jobs see an M/M/k queue (Appendix D). The busy-period moments feed the
// Coxian fit of the busy-period transformation. The same formulas double as
// oracles for simulator and CTMC-solver tests.
package queueing

import (
	"fmt"
	"math"
)

// MM1 describes an M/M/1 queue with Poisson arrival rate Lambda and
// exponential service rate Mu.
type MM1 struct {
	Lambda, Mu float64
}

// NewMM1 returns an M/M/1 descriptor; it panics unless both rates are
// positive.
func NewMM1(lambda, mu float64) MM1 {
	if lambda <= 0 || mu <= 0 {
		panic("queueing: M/M/1 rates must be positive")
	}
	return MM1{Lambda: lambda, Mu: mu}
}

// Rho returns the utilization lambda/mu.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// Stable reports whether the queue is stable (rho < 1).
func (q MM1) Stable() bool { return q.Rho() < 1 }

// MeanJobs returns E[N] = rho/(1-rho). It panics when unstable.
func (q MM1) MeanJobs() float64 {
	q.mustBeStable()
	rho := q.Rho()
	return rho / (1 - rho)
}

// MeanResponse returns E[T] = 1/(mu-lambda). It panics when unstable.
func (q MM1) MeanResponse() float64 {
	q.mustBeStable()
	return 1 / (q.Mu - q.Lambda)
}

// StationaryProb returns P{N = n} = (1-rho) rho^n.
func (q MM1) StationaryProb(n int) float64 {
	q.mustBeStable()
	rho := q.Rho()
	return (1 - rho) * math.Pow(rho, float64(n))
}

// BusyPeriodMoments returns the first three raw moments of the M/M/1 busy
// period: the time from an arrival into an empty system until the system
// next empties. These are the M/G/1 busy-period formulas specialized to
// exponential service:
//
//	E[B]   = E[S]/(1-rho)
//	E[B^2] = E[S^2]/(1-rho)^3
//	E[B^3] = E[S^3]/(1-rho)^4 + 3 lambda E[S^2]^2/(1-rho)^5
func (q MM1) BusyPeriodMoments() (m1, m2, m3 float64) {
	q.mustBeStable()
	rho := q.Rho()
	s1 := 1 / q.Mu
	s2 := 2 / (q.Mu * q.Mu)
	s3 := 6 / (q.Mu * q.Mu * q.Mu)
	m1 = s1 / (1 - rho)
	m2 = s2 / math.Pow(1-rho, 3)
	m3 = s3/math.Pow(1-rho, 4) + 3*q.Lambda*s2*s2/math.Pow(1-rho, 5)
	return m1, m2, m3
}

func (q MM1) mustBeStable() {
	if !q.Stable() {
		panic(fmt.Sprintf("queueing: unstable M/M/1 (rho=%g)", q.Rho()))
	}
}

// MMk describes an M/M/k queue: Poisson arrivals at rate Lambda, K servers,
// each serving at exponential rate Mu, FCFS.
type MMk struct {
	Lambda, Mu float64
	K          int
}

// NewMMk returns an M/M/k descriptor; it panics on non-positive parameters.
func NewMMk(lambda, mu float64, k int) MMk {
	if lambda <= 0 || mu <= 0 || k < 1 {
		panic("queueing: M/M/k requires positive rates and k >= 1")
	}
	return MMk{Lambda: lambda, Mu: mu, K: k}
}

// Rho returns the per-server utilization lambda/(k*mu).
func (q MMk) Rho() float64 { return q.Lambda / (float64(q.K) * q.Mu) }

// Stable reports whether the queue is stable.
func (q MMk) Stable() bool { return q.Rho() < 1 }

// ErlangC returns the probability that an arriving job must queue,
// P{wait > 0}, computed with the numerically stable iterative form of the
// Erlang-C formula.
func (q MMk) ErlangC() float64 {
	q.mustBeStable()
	a := q.Lambda / q.Mu // offered load in Erlangs
	k := q.K
	// Iteratively compute the Erlang-B blocking probability, then convert.
	b := 1.0
	for i := 1; i <= k; i++ {
		b = a * b / (float64(i) + a*b)
	}
	rho := q.Rho()
	return b / (1 - rho*(1-b))
}

// MeanWait returns the mean queueing delay E[W] (time before service).
func (q MMk) MeanWait() float64 {
	q.mustBeStable()
	return q.ErlangC() / (float64(q.K)*q.Mu - q.Lambda)
}

// MeanResponse returns E[T] = E[W] + 1/mu.
func (q MMk) MeanResponse() float64 {
	return q.MeanWait() + 1/q.Mu
}

// MeanJobs returns E[N] via Little's law.
func (q MMk) MeanJobs() float64 {
	return q.Lambda * q.MeanResponse()
}

// StationaryProb returns P{N = n} for the M/M/k birth-death chain.
func (q MMk) StationaryProb(n int) float64 {
	q.mustBeStable()
	p0 := q.probEmpty()
	a := q.Lambda / q.Mu
	if n <= q.K {
		return p0 * math.Pow(a, float64(n)) / factorialF(n)
	}
	return p0 * math.Pow(a, float64(n)) /
		(factorialF(q.K) * math.Pow(float64(q.K), float64(n-q.K)))
}

func (q MMk) probEmpty() float64 {
	a := q.Lambda / q.Mu
	rho := q.Rho()
	sum := 0.0
	term := 1.0 // a^0/0!
	for i := 0; i < q.K; i++ {
		sum += term
		term *= a / float64(i+1)
	}
	// term is now a^k/k!.
	sum += term / (1 - rho)
	return 1 / sum
}

func (q MMk) mustBeStable() {
	if !q.Stable() {
		panic(fmt.Sprintf("queueing: unstable M/M/k (rho=%g)", q.Rho()))
	}
}

func factorialF(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// LittleN returns E[N] = lambda * E[T].
func LittleN(lambda, meanResponse float64) float64 { return lambda * meanResponse }

// LittleT returns E[T] = E[N] / lambda.
func LittleT(lambda, meanJobs float64) float64 { return meanJobs / lambda }

// SystemLoad returns the two-class load of the paper's model (Eq. 1):
// rho = lambdaI/(k muI) + lambdaE/(k muE).
func SystemLoad(k int, lambdaI, muI, lambdaE, muE float64) float64 {
	return lambdaI/(float64(k)*muI) + lambdaE/(float64(k)*muE)
}

// RatesForLoad returns the per-class arrival rates (lambdaI, lambdaE) that
// achieve total system load rho on k servers with lambdaI = lambdaE, the
// convention used in every figure of the paper. From Eq. 1 with
// lambdaI = lambdaE = lambda:
//
//	lambda = rho * k / (1/muI + 1/muE)
func RatesForLoad(k int, rho, muI, muE float64) (lambdaI, lambdaE float64) {
	if rho <= 0 || rho >= 1 {
		panic("queueing: RatesForLoad requires 0 < rho < 1")
	}
	lambda := rho * float64(k) / (1/muI + 1/muE)
	return lambda, lambda
}
