package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Fatalf("var %v, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Var()) {
		t.Fatal("empty summary should be NaN")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	r := xrand.New(3)
	f := func(nq uint8) bool {
		n := int(nq%50) + 2
		var s Summary
		data := make([]float64, n)
		for i := range data {
			data[i] = r.Normal()*10 + 5
			s.Add(data[i])
		}
		mean := 0.0
		for _, v := range data {
			mean += v
		}
		mean /= float64(n)
		variance := 0.0
		for _, v := range data {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(n - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-variance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCI95Coverage(t *testing.T) {
	// The 95% CI of the mean of iid normals should cover the truth about
	// 95% of the time.
	r := xrand.New(17)
	covered := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		var s Summary
		for i := 0; i < 100; i++ {
			s.Add(r.Normal() + 7)
		}
		if math.Abs(s.Mean()-7) <= s.CI95() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.93 || rate > 0.97 {
		t.Fatalf("CI coverage %v, want about 0.95", rate)
	}
}

func TestBatchMeans(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i % 10)
	}
	s, err := BatchMeans(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every batch of 10 has mean 4.5.
	if math.Abs(s.Mean()-4.5) > 1e-12 || s.Var() != 0 {
		t.Fatalf("batch means %v var %v", s.Mean(), s.Var())
	}
	if _, err := BatchMeans(series, 1); err == nil {
		t.Fatal("accepted 1 batch")
	}
	if _, err := BatchMeans(series[:5], 10); err == nil {
		t.Fatal("accepted short series")
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{4, 1, 3, 2}
	if Quantile(data, 0) != 1 || Quantile(data, 1) != 4 {
		t.Fatal("extremes wrong")
	}
	if math.Abs(Quantile(data, 0.5)-2.5) > 1e-12 {
		t.Fatalf("median %v", Quantile(data, 0.5))
	}
	// Input must be untouched.
	if data[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestComparison(t *testing.T) {
	c := Comparison{NameA: "IF", NameB: "EF", A: 1.0, B: 1.5}
	if c.Winner(0.01) != "IF" {
		t.Fatal("winner wrong")
	}
	if math.Abs(c.Speedup()-1.5) > 1e-12 {
		t.Fatalf("speedup %v", c.Speedup())
	}
	tie := Comparison{NameA: "a", NameB: "b", A: 1.0, B: 1.005}
	if tie.Winner(0.01) != "tie" {
		t.Fatal("tie not detected")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bucket %d count %d", i, c)
		}
	}
	if h.OutOfRange() != 2 || h.Total() != 12 {
		t.Fatalf("out-of-range %d total %d", h.OutOfRange(), h.Total())
	}
}

func TestRelDiff(t *testing.T) {
	if RelDiff(11, 10) != 0.1 {
		t.Fatalf("RelDiff %v", RelDiff(11, 10))
	}
}
