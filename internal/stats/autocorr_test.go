package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func ar1(r *xrand.Rand, n int, phi float64) []float64 {
	out := make([]float64, n)
	x := 0.0
	for i := range out {
		x = phi*x + r.Normal()
		out[i] = x
	}
	return out
}

func TestAutocorrelationLagZeroIsOne(t *testing.T) {
	r := xrand.New(1)
	s := ar1(r, 1000, 0.5)
	if math.Abs(Autocorrelation(s, 0)-1) > 1e-12 {
		t.Fatalf("rho(0) = %v", Autocorrelation(s, 0))
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient phi has rho(h) = phi^h.
	r := xrand.New(2)
	s := ar1(r, 200000, 0.7)
	for h := 1; h <= 4; h++ {
		want := math.Pow(0.7, float64(h))
		got := Autocorrelation(s, h)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("rho(%d) = %v, want %v", h, got, want)
		}
	}
}

func TestAutocorrelationIIDNearZero(t *testing.T) {
	r := xrand.New(3)
	s := make([]float64, 100000)
	for i := range s {
		s[i] = r.Normal()
	}
	if rho := Autocorrelation(s, 1); math.Abs(rho) > 0.01 {
		t.Fatalf("iid rho(1) = %v", rho)
	}
}

func TestIntegratedAutocorrTimeAR1(t *testing.T) {
	// tau for AR(1) is (1+phi)/(1-phi): phi=0.5 -> 3.
	r := xrand.New(4)
	s := ar1(r, 400000, 0.5)
	tau := IntegratedAutocorrTime(s)
	if math.Abs(tau-3) > 0.3 {
		t.Fatalf("tau = %v, want about 3", tau)
	}
	ess := EffectiveSampleSize(s)
	if math.Abs(ess-float64(len(s))/tau) > 1e-9 {
		t.Fatalf("ESS inconsistent: %v", ess)
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	if !math.IsNaN(Autocorrelation([]float64{1, 1, 1}, 1)) {
		t.Fatal("constant series should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{1, 2}, 5)) {
		t.Fatal("out-of-range lag should be NaN")
	}
	if !math.IsNaN(IntegratedAutocorrTime([]float64{1, 2})) {
		t.Fatal("tiny series should be NaN")
	}
}
