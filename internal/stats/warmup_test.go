package stats

import (
	"math"
	"testing"
)

// noise is a tiny deterministic LCG so the tests need no RNG dependency.
func noise(state *uint64) float64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return float64(*state>>11) / (1 << 53)
}

func TestMSERTrimConstantSeries(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 3.5
	}
	if d := MSERTrim(series); d != 0 {
		t.Fatalf("constant series trimmed at %d, want 0", d)
	}
}

func TestMSERTrimShortSeries(t *testing.T) {
	if d := MSERTrim([]float64{1, 2, 3}); d != 0 {
		t.Fatalf("short series trimmed at %d, want 0", d)
	}
	if d := MSER5Trim(make([]float64, 19)); d != 0 {
		t.Fatalf("short batched series trimmed at %d, want 0", d)
	}
}

func TestMSERTrimFindsTransient(t *testing.T) {
	// 60 inflated observations, then 540 stationary ones: the minimizer
	// must land near the changepoint, never deep inside the tail.
	var state uint64 = 7
	series := make([]float64, 600)
	for i := range series {
		base := 1.0
		if i < 60 {
			base = 10 - float64(i)*0.15 // decaying transient
		}
		series[i] = base + 0.1*noise(&state)
	}
	d := MSERTrim(series)
	if d < 40 || d > 90 {
		t.Fatalf("trim point %d not near the 60-observation transient", d)
	}
}

func TestMSER5TrimBatchGranularityAndBound(t *testing.T) {
	var state uint64 = 11
	series := make([]float64, 1000)
	for i := range series {
		base := 1.0
		if i < 100 {
			base = 25.0
		}
		series[i] = base + 0.2*noise(&state)
	}
	d := MSER5Trim(series)
	if d%5 != 0 {
		t.Fatalf("MSER5 trim %d not a multiple of the batch size", d)
	}
	if d < 95 || d > 150 {
		t.Fatalf("trim point %d not near the 100-observation transient", d)
	}
	if d > len(series)/2+5 {
		t.Fatalf("trim %d exceeds the n/2 cap", d)
	}
}

func TestMSERTrimStationaryStaysSmall(t *testing.T) {
	// With no transient the rule should discard (almost) nothing.
	var state uint64 = 3
	series := make([]float64, 500)
	for i := range series {
		series[i] = 2 + noise(&state)
	}
	d := MSERTrim(series)
	if d > 50 {
		t.Fatalf("stationary series trimmed at %d; expected a small prefix", d)
	}
	if math.IsNaN(float64(d)) {
		t.Fatal("unreachable")
	}
}
