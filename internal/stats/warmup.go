package stats

import "math"

// MSERTrim returns the warmup truncation index chosen by the marginal
// standard error rule (MSER, White 1997): the prefix length d in [0, n/2]
// minimizing
//
//	MSER(d) = sum_{i=d}^{n-1} (x_i - mean(x_d..x_{n-1}))^2 / (n-d)^2,
//
// i.e. the truncation point that makes the remaining sample's standard
// error smallest. Initialization bias inflates the suffix variance, so the
// minimizer sits just past the transient. The search is capped at n/2: if
// MSER wants to discard more than half the series, the run is too short for
// the rule to be meaningful and callers should simulate longer. Degenerate
// inputs (n < 4) return 0.
func MSERTrim(series []float64) int {
	n := len(series)
	if n < 4 {
		return 0
	}
	// Suffix sums let each candidate d be scored in O(1).
	suffSum := make([]float64, n+1)
	suffSq := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffSum[i] = suffSum[i+1] + series[i]
		suffSq[i] = suffSq[i+1] + series[i]*series[i]
	}
	best, bestVal := 0, math.Inf(1)
	for d := 0; d <= n/2; d++ {
		m := float64(n - d)
		mean := suffSum[d] / m
		ss := suffSq[d] - m*mean*mean
		if ss < 0 {
			ss = 0 // cancellation noise
		}
		if v := ss / (m * m); v < bestVal {
			bestVal, best = v, d
		}
	}
	return best
}

// MSER5Trim is the batched variant standard in the simulation literature:
// the series is reduced to means of non-overlapping batches of 5 before
// applying MSERTrim, which smooths observation-level noise that would
// otherwise make the rule too eager. The returned index is in original
// (unbatched) observations. Series shorter than 20 observations return 0.
func MSER5Trim(series []float64) int {
	const batch = 5
	n := len(series) / batch
	if n < 4 {
		return 0
	}
	batched := make([]float64, n)
	for b := range batched {
		sum := 0.0
		for i := 0; i < batch; i++ {
			sum += series[b*batch+i]
		}
		batched[b] = sum / batch
	}
	return MSERTrim(batched) * batch
}
