// Package stats provides the summary statistics used by the experiment
// harness: streaming moments, confidence intervals via batch means (the
// standard method for autocorrelated steady-state simulation output), and
// paired comparisons.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming first/second moments with Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (NaN when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Var returns the unbiased sample variance (NaN when n < 2).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 { return s.StdDev() / math.Sqrt(float64(s.n)) }

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// CI95 returns the 95% normal-approximation confidence half-width.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.2g (95%%)", s.n, s.Mean(), s.CI95())
}

// BatchMeans splits a correlated series into nbatch contiguous batches and
// returns the Summary of the batch means, whose CI is (approximately) valid
// despite autocorrelation within batches.
func BatchMeans(series []float64, nbatch int) (*Summary, error) {
	if nbatch < 2 {
		return nil, fmt.Errorf("stats: need at least 2 batches")
	}
	if len(series) < 2*nbatch {
		return nil, fmt.Errorf("stats: series of %d too short for %d batches", len(series), nbatch)
	}
	per := len(series) / nbatch
	var out Summary
	for b := 0; b < nbatch; b++ {
		sum := 0.0
		for _, v := range series[b*per : (b+1)*per] {
			sum += v
		}
		out.Add(sum / float64(per))
	}
	return &out, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of the data by linear
// interpolation; the input is not modified.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelDiff returns (a-b)/b, the relative difference used throughout the
// experiment reports.
func RelDiff(a, b float64) float64 { return (a - b) / b }

// Comparison reports a paired comparison of two policies' metrics.
type Comparison struct {
	NameA, NameB string
	A, B         float64
}

// Winner returns the name of the smaller (better, for response times)
// metric, or "tie" within tol relative difference.
func (c Comparison) Winner(tol float64) string {
	if math.Abs(c.A-c.B) <= tol*math.Min(c.A, c.B) {
		return "tie"
	}
	if c.A < c.B {
		return c.NameA
	}
	return c.NameB
}

// Speedup returns B/A, how many times faster A is than B.
func (c Comparison) Speedup() float64 { return c.B / c.A }

// Histogram is a fixed-width bucket histogram over [Low, High).
type Histogram struct {
	Low, High float64
	Counts    []int64
	under     int64
	over      int64
}

// NewHistogram returns a histogram with n buckets spanning [low, high).
func NewHistogram(low, high float64, n int) *Histogram {
	if high <= low || n < 1 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Low: low, High: high, Counts: make([]int64, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Low:
		h.under++
	case x >= h.High:
		h.over++
	default:
		idx := int((x - h.Low) / (h.High - h.Low) * float64(len(h.Counts)))
		if idx == len(h.Counts) {
			idx--
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.under + h.over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// OutOfRange returns the count of observations outside [Low, High).
func (h *Histogram) OutOfRange() int64 { return h.under + h.over }
