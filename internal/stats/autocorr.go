package stats

import "math"

// Autocorrelation returns the lag-h sample autocorrelation of the series.
// It returns NaN for degenerate inputs (constant series, h out of range).
func Autocorrelation(series []float64, h int) float64 {
	n := len(series)
	if h < 0 || h >= n || n < 2 {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-h; i++ {
		num += (series[i] - mean) * (series[i+h] - mean)
	}
	for _, v := range series {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// IntegratedAutocorrTime estimates the integrated autocorrelation time
// tau = 1 + 2 sum_h rho(h), truncating the sum at the first non-positive
// autocorrelation (Geyer's initial positive sequence heuristic, simplified).
// Response-time sequences from the simulator are strongly correlated at
// high load; tau quantifies how much, and n/tau is the effective sample
// size behind a confidence interval.
func IntegratedAutocorrTime(series []float64) float64 {
	n := len(series)
	if n < 4 {
		return math.NaN()
	}
	tau := 1.0
	for h := 1; h < n/2; h++ {
		rho := Autocorrelation(series, h)
		if math.IsNaN(rho) || rho <= 0 {
			break
		}
		tau += 2 * rho
	}
	return tau
}

// EffectiveSampleSize returns n/tau.
func EffectiveSampleSize(series []float64) float64 {
	tau := IntegratedAutocorrTime(series)
	if math.IsNaN(tau) || tau <= 0 {
		return math.NaN()
	}
	return float64(len(series)) / tau
}
