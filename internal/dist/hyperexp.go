package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// HyperExp is a finite mixture of exponentials: with probability Probs[i]
// a variate is Exp(Rates[i]). Hyperexponentials capture any squared
// coefficient of variation >= 1 and serve as the paper's two-moment
// busy-period stand-in (the ablation point between the one-moment
// exponential and the three-moment Coxian of Section 5.2).
type HyperExp struct {
	Probs, Rates []float64
}

// NewHyperExp returns the mixture with the given branch probabilities and
// rates. It panics unless the slices have equal nonzero length, the
// probabilities are nonnegative and sum to 1 (within 1e-12), and every
// rate is finite and positive.
func NewHyperExp(probs, rates []float64) HyperExp {
	if len(probs) == 0 || len(probs) != len(rates) {
		panic(fmt.Sprintf("dist: NewHyperExp branch mismatch: %d probs, %d rates",
			len(probs), len(rates)))
	}
	sum := 0.0
	for i, p := range probs {
		if !(p >= 0) || !isFinitePos(rates[i]) {
			panic(fmt.Sprintf("dist: NewHyperExp branch %d: prob=%v rate=%v", i, p, rates[i]))
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		panic(fmt.Sprintf("dist: NewHyperExp probabilities sum to %v, want 1", sum))
	}
	return HyperExp{Probs: append([]float64(nil), probs...), Rates: append([]float64(nil), rates...)}
}

// Mean returns sum_i Probs[i]/Rates[i].
func (h HyperExp) Mean() float64 {
	m := 0.0
	for i, p := range h.Probs {
		m += p / h.Rates[i]
	}
	return m
}

// Moment returns E[X^k] = sum_i Probs[i] * k! / Rates[i]^k.
func (h HyperExp) Moment(k int) float64 {
	checkMomentOrder(k)
	kf := factorial(k)
	m := 0.0
	for i, p := range h.Probs {
		m += p * kf / math.Pow(h.Rates[i], float64(k))
	}
	return m
}

// CDF returns 1 - sum_i Probs[i] * exp(-Rates[i]*x) for x >= 0.
func (h HyperExp) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	tail := 0.0
	for i, p := range h.Probs {
		tail += p * math.Exp(-h.Rates[i]*x)
	}
	return 1 - tail
}

// Quantile inverts the CDF numerically (the mixture has no closed-form
// inverse for more than one distinct rate).
func (h HyperExp) Quantile(p float64) float64 {
	checkProb(p)
	if p >= 1 {
		return math.Inf(1)
	}
	return bisectQuantile(h.CDF, p, h.Mean())
}

// Sample picks a branch by its probability, then draws from that branch's
// exponential. Two xrand draws per variate.
func (h HyperExp) Sample(r *xrand.Rand) float64 {
	u := r.Float64()
	acc := 0.0
	for i, p := range h.Probs {
		acc += p
		if u < acc {
			return r.Exp(h.Rates[i])
		}
	}
	// Guard against probabilities summing to 1-epsilon.
	return r.Exp(h.Rates[len(h.Rates)-1])
}

// FitHyperExpBalanced fits a two-branch hyperexponential to the first two
// raw moments (m1, m2) under the balanced-means convention
// Probs[0]/Rates[0] = Probs[1]/Rates[1], the standard two-moment fit used
// for the busy-period ablation. Writing cv2 = m2/m1^2 - 1, the fit is
//
//	Probs = (1 ± sqrt((cv2-1)/(cv2+1))) / 2,  Rates[i] = 2*Probs[i]/m1,
//
// which requires cv2 >= 1 (equivalently m2 >= 2*m1^2); cv2 = 1 collapses
// to the exponential. Infeasible or non-finite moments return an error —
// never NaN/Inf parameters.
func FitHyperExpBalanced(m1, m2 float64) (HyperExp, error) {
	if !isFinitePos(m1) || !isFinitePos(m2) {
		return HyperExp{}, fmt.Errorf("dist: FitHyperExpBalanced(m1=%v, m2=%v): moments must be finite and positive", m1, m2)
	}
	cv2 := m2/(m1*m1) - 1
	if cv2 < 1 {
		return HyperExp{}, fmt.Errorf("dist: FitHyperExpBalanced(m1=%v, m2=%v): cv2=%v < 1 is infeasible for a hyperexponential", m1, m2, cv2)
	}
	d := math.Sqrt((cv2 - 1) / (cv2 + 1))
	p1, p2 := (1+d)/2, (1-d)/2
	h := HyperExp{
		Probs: []float64{p1, p2},
		Rates: []float64{2 * p1 / m1, 2 * p2 / m1},
	}
	if !isFinitePos(h.Rates[0]) || !isFinitePos(h.Rates[1]) {
		return HyperExp{}, fmt.Errorf("dist: FitHyperExpBalanced(m1=%v, m2=%v): degenerate branch rates", m1, m2)
	}
	return h, nil
}
