// Package dist is the probability-distribution layer of the BergHMWW20
// (SPAA '20, "Optimal Resource Allocation for Elastic and Inelastic Jobs")
// reproduction.
//
// The paper's stochastic model draws job sizes from exponential
// distributions (the M/M/k analysis of Sections 4-5), while the motivating
// scenarios of Section 1.3 and the Appendix A batch experiments also use
// bounded-Pareto (heavy-tailed ML training jobs) and uniform sizes. The
// Section 5.2 transformation replaces the M/M/1 busy period with a
// two-phase Coxian matched on its first three moments (Figures 3c and 7c);
// the one-moment exponential and two-moment balanced hyperexponential
// stand-ins exist as the ablation baselines that quantify why three
// moments are needed.
//
// Every distribution implements the Distribution interface: analytic
// moments (Mean, Moment), the distribution function and its inverse
// (CDF, Quantile), and reproducible sampling (Sample) driven by the
// repository's deterministic xrand streams. Fitters (FitCoxian2,
// FitHyperExpBalanced, FitCoxian) return errors for infeasible targets
// rather than NaN/Inf parameters, in the spirit of large simulation
// fleets that validate every stochastic input before running.
package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Distribution is a nonnegative continuous distribution with analytic
// moments, an invertible CDF, and deterministic sampling.
type Distribution interface {
	// Mean returns E[X], identical to Moment(1).
	Mean() float64
	// Moment returns the k-th raw moment E[X^k] for k >= 0.
	Moment(k int) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p for p in [0, 1).
	// Quantile(1) returns the supremum of the support (possibly +Inf).
	Quantile(p float64) float64
	// Sample draws one variate using r as the sole source of randomness.
	Sample(r *xrand.Rand) float64
}

// checkMomentOrder panics unless k is a valid moment order.
func checkMomentOrder(k int) {
	if k < 0 {
		panic(fmt.Sprintf("dist: Moment called with negative order %d", k))
	}
}

// checkProb panics unless p is a probability.
func checkProb(p float64) {
	if !(p >= 0 && p <= 1) { // catches NaN too
		panic(fmt.Sprintf("dist: Quantile called with p=%v outside [0,1]", p))
	}
}

// factorial returns k! as a float64; k is small (moment orders).
func factorial(k int) float64 {
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}

// binom returns the binomial coefficient C(n, k) as a float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// isFinitePos reports whether v is a finite, strictly positive float.
func isFinitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// relDiff returns |got-want| / |want| (or |got| when want == 0).
func relDiff(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// bisectQuantile inverts a monotone CDF numerically. It brackets the
// quantile by doubling from scale (a positive magnitude such as the mean)
// and then bisects to full float64 resolution. Used by the phase-type
// distributions whose CDFs have no closed-form inverse.
func bisectQuantile(cdf func(float64) float64, p, scale float64) float64 {
	if p <= 0 {
		return 0
	}
	if !isFinitePos(scale) {
		scale = 1
	}
	lo, hi := 0.0, scale
	for cdf(hi) < p {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	// Bisection: ~90 iterations reaches the last ulp for any magnitude.
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break
		}
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
