package dist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// Property tests via testing/quick. Each property receives a uint64 seed
// from quick and derives well-conditioned random parameters through the
// repository's own deterministic xrand, so failures replay exactly from
// the reported seed.

var quickCfg = &quick.Config{MaxCount: 300}

// randomDists builds one instance of every distribution family from seed.
func randomDists(seed uint64) []Distribution {
	r := xrand.New(seed)
	rate := 0.1 + 5*r.Float64()
	lo := 0.1 + r.Float64()
	hi := lo + 0.5 + 5*r.Float64()
	alpha := 0.5 + 3*r.Float64()
	d := math.Sqrt(r.Float64()) // hyperexp imbalance in [0,1)
	p1 := (1 + d) / 2
	mu1 := 0.2 + 4*r.Float64()
	mu2 := 0.2 + 4*r.Float64()
	cox := Coxian2{Mu1: mu1, Mu2: mu2, P: r.Float64()}
	nPhases := 2 + r.Intn(6)
	rates := make([]float64, nPhases)
	cont := make([]float64, nPhases-1)
	for i := range rates {
		rates[i] = 0.2 + 4*r.Float64()
	}
	for i := range cont {
		cont[i] = r.Float64()
	}
	return []Distribution{
		NewExponential(rate),
		NewUniform(lo, hi),
		NewBoundedPareto(alpha, lo, hi),
		NewHyperExp([]float64{p1, 1 - p1}, []float64{2 * p1 / 1.0, 2 * (1 - p1) / 1.0}),
		cox,
		NewCoxian(rates, cont),
	}
}

// TestPropertyQuantileRoundTrip: CDF(Quantile(p)) ≈ p on the interior of
// the probability range for every family.
func TestPropertyQuantileRoundTrip(t *testing.T) {
	prop := func(seed uint64, praw uint16) bool {
		p := (float64(praw) + 0.5) / (math.MaxUint16 + 1) // p in (0,1)
		for _, d := range randomDists(seed) {
			q := d.Quantile(p)
			if math.IsNaN(q) || q < 0 {
				t.Logf("seed %d: %T Quantile(%v) = %v", seed, d, p, q)
				return false
			}
			if math.Abs(d.CDF(q)-p) > 1e-9 {
				t.Logf("seed %d: %T CDF(Quantile(%v)) = %v", seed, d, p, d.CDF(q))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyCDFMonotone: x1 <= x2 implies CDF(x1) <= CDF(x2), and CDF
// stays inside [0,1] with no NaN, over a range spanning the whole support.
func TestPropertyCDFMonotone(t *testing.T) {
	prop := func(seed uint64, a, b uint16) bool {
		for _, d := range randomDists(seed) {
			// Map the two raw values onto [0, ~10x mean] and order them.
			scale := 10 * d.Mean() / math.MaxUint16
			x1, x2 := float64(a)*scale, float64(b)*scale
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			f1, f2 := d.CDF(x1), d.CDF(x2)
			if math.IsNaN(f1) || math.IsNaN(f2) || f1 < 0 || f2 > 1 || f1 > f2+1e-12 {
				t.Logf("seed %d: %T CDF(%v)=%v CDF(%v)=%v", seed, d, x1, f1, x2, f2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyQuantileMonotone: p1 <= p2 implies Quantile(p1) <= Quantile(p2).
func TestPropertyQuantileMonotone(t *testing.T) {
	prop := func(seed uint64, a, b uint16) bool {
		p1 := (float64(a) + 0.5) / (math.MaxUint16 + 1)
		p2 := (float64(b) + 0.5) / (math.MaxUint16 + 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		for _, d := range randomDists(seed) {
			if d.Quantile(p1) > d.Quantile(p2)+1e-12 {
				t.Logf("seed %d: %T Quantile(%v)=%v > Quantile(%v)=%v",
					seed, d, p1, d.Quantile(p1), p2, d.Quantile(p2))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyMomentOrdering: Mean == Moment(1), the Cauchy-Schwarz bound
// E[X^2] >= E[X]^2, and Lyapunov's inequality E[X^2]^3 <= E[X^3]^2 for
// nonnegative variates. All moments must be finite and positive.
func TestPropertyMomentOrdering(t *testing.T) {
	prop := func(seed uint64) bool {
		for _, d := range randomDists(seed) {
			m1, m2, m3 := d.Moment(1), d.Moment(2), d.Moment(3)
			if !isFinitePos(m1) || !isFinitePos(m2) || !isFinitePos(m3) {
				t.Logf("seed %d: %T non-finite moments (%v, %v, %v)", seed, d, m1, m2, m3)
				return false
			}
			if relDiff(d.Mean(), m1) > 1e-12 {
				t.Logf("seed %d: %T Mean %v != Moment(1) %v", seed, d, d.Mean(), m1)
				return false
			}
			if m2 < m1*m1*(1-1e-12) {
				t.Logf("seed %d: %T E[X^2]=%v < E[X]^2=%v", seed, d, m2, m1*m1)
				return false
			}
			if m2*m2*m2 > m3*m3*(1+1e-9) {
				t.Logf("seed %d: %T Lyapunov violated: m2^3=%v > m3^2=%v", seed, d, m2*m2*m2, m3*m3)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertySampleSupport: samples are finite, nonnegative, and inside
// the family's support.
func TestPropertySampleSupport(t *testing.T) {
	prop := func(seed uint64) bool {
		r := xrand.New(seed ^ 0xabcdef)
		for _, d := range randomDists(seed) {
			for i := 0; i < 64; i++ {
				x := d.Sample(r)
				if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
					t.Logf("seed %d: %T sample %v", seed, d, x)
					return false
				}
				switch v := d.(type) {
				case Uniform:
					if x < v.Lo || x > v.Hi {
						t.Logf("seed %d: uniform sample %v outside [%v,%v]", seed, x, v.Lo, v.Hi)
						return false
					}
				case BoundedPareto:
					if x < v.Lo || x > v.Hi {
						t.Logf("seed %d: pareto sample %v outside [%v,%v]", seed, x, v.Lo, v.Hi)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyFitRoundTrips: the fitters reproduce their targets for every
// feasible random input.
func TestPropertyFitRoundTrips(t *testing.T) {
	prop := func(seed uint64) bool {
		r := xrand.New(seed)
		mean := 0.05 + 10*r.Float64()
		cv2 := 0.02 + 5*r.Float64()

		c, err := FitCoxian(mean, cv2)
		if err != nil {
			t.Logf("seed %d: FitCoxian(%v, %v): %v", seed, mean, cv2, err)
			return false
		}
		m1, m2 := c.Moment(1), c.Moment(2)
		if relDiff(m1, mean) > 1e-9 || relDiff(m2/(m1*m1)-1, cv2) > 1e-8 {
			t.Logf("seed %d: FitCoxian(%v, %v) gave mean %v cv2 %v", seed, mean, cv2, m1, m2/(m1*m1)-1)
			return false
		}

		if cv2 >= 1 {
			h, err := FitHyperExpBalanced(mean, (1+cv2)*mean*mean)
			if err != nil {
				t.Logf("seed %d: FitHyperExpBalanced: %v", seed, err)
				return false
			}
			if relDiff(h.Moment(1), mean) > 1e-9 || relDiff(h.Moment(2), (1+cv2)*mean*mean) > 1e-9 {
				t.Logf("seed %d: hyperexp moments (%v, %v)", seed, h.Moment(1), h.Moment(2))
				return false
			}
			// A fitted hyperexponential's first three moments are Coxian2-
			// representable; the three-moment fit must round-trip them.
			c2, err := FitCoxian2(h.Moment(1), h.Moment(2), h.Moment(3))
			if err != nil {
				t.Logf("seed %d: FitCoxian2 on hyperexp moments: %v", seed, err)
				return false
			}
			for k := 1; k <= 3; k++ {
				if relDiff(c2.Moment(k), h.Moment(k)) > 1e-6 {
					t.Logf("seed %d: FitCoxian2 Moment(%d) %v vs %v", seed, k, c2.Moment(k), h.Moment(k))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
